#!/usr/bin/env sh
# ci.sh — the repository's tier-1 gate plus the hot-path discipline
# checks. Run locally before pushing; .github/workflows/ci.yml runs the
# same steps.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

echo "==> alloc-regression gates (hot path must not allocate)"
go test -run 'ZeroAllocs' -v ./internal/core/ ./internal/sim/ ./internal/fabric/

echo "==> determinism golden"
go test -run 'TestFigure3Deterministic' -v ./internal/experiments/

echo "==> scheduler equivalence (calendar vs heap differential)"
go test -run 'TestEventQueueDifferential|TestEngineSchedulersEquivalent' -v ./internal/sim/

echo "==> event-queue fuzz smoke"
go test -run '^$' -fuzz 'FuzzEventQueueOrdering' -fuzztime 10s ./internal/sim/

echo "==> fault-campaign smoke (seeded flaps, staged recovery, watchdog)"
go test -race -run 'TestCampaignSmokeCI' -v ./internal/faults/

echo "CI OK"

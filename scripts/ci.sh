#!/usr/bin/env sh
# ci.sh — the repository's tier-1 gate plus the hot-path discipline
# checks. Run locally before pushing; .github/workflows/ci.yml runs the
# same steps.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

echo "==> go test -shuffle=on (order-independence of the suite)"
go test -shuffle=on ./...

echo "==> alloc-regression gates (hot path must not allocate)"
# The always-on auditor's cheap hooks ride the same runs: this gate
# also proves they keep the steady-state injection path allocation-free.
go test -run 'ZeroAllocs' -v ./internal/core/ ./internal/sim/ ./internal/fabric/ ./internal/check/

echo "==> determinism golden (sequential and sharded engines)"
go test -run 'TestFigure3Deterministic|TestFigure3GoldenSharded' -v ./internal/experiments/

echo "==> determinism golden under -check (auditor must not perturb results)"
go test -count=1 -run 'TestFigure3GoldenChecked' -v ./internal/experiments/

echo "==> determinism golden with fusion off (per-hop oracle reproduces the artifact)"
go test -count=1 -run 'TestFigure3GoldenUnfused' -v ./internal/experiments/

echo "==> hop-fusion differential (fused vs unfused bit-exact; trace/tamper de-fusion)"
# The experiments matrix covers wheel geometries, both schedulers,
# shard counts, -check, a fault campaign and a contention storm; the
# fabric tests pin the runtime arm/disarm transitions. The ZeroAllocs
# gate above already holds the unfused oracle to the same 0 allocs/op
# bar (TestSwitchHopZeroAllocsUnfused matches its pattern).
go test -count=1 -run 'TestFusion|TestTamperDefuses|TestDefuseIsSticky' -v ./internal/fabric/
go test -count=1 -run 'TestFusion' -v ./internal/experiments/

echo "==> determinism golden with the scan arbiter (rescan oracle reproduces the artifact)"
go test -count=1 -run 'TestFigure3GoldenScanArb' -v ./internal/experiments/

echo "==> wake-arbiter differential (wake vs scan bit-exact; tamper forces scan)"
# The experiments matrix covers wheel geometries, both schedulers,
# shard counts, fused/unfused engines, -check, a fault campaign and a
# hot-spot contention storm; the fabric tests pin the runtime
# arm/disarm transitions and the lockstep rr-parity property. The
# ZeroAllocs gate above already holds both arbiters to 0 allocs/op
# (TestSwitchHopZeroAllocsScanArb and the congested wake-path burst
# TestArbWakeZeroAllocsCongested match its pattern).
go test -count=1 -run 'TestArb' -v ./internal/fabric/
GOMAXPROCS=4 go test -race -count=1 -run 'TestArb' -v ./internal/experiments/

echo "==> mutation smoke (every seeded model break trips its named invariant)"
go test -count=1 -run 'TestMutation' -v ./internal/check/

echo "==> topology fuzz corpus (Figure 3 geometries route deadlock-free)"
go test -run '^$' -fuzz 'FuzzIrregularTopology' -fuzztime 5s ./internal/topology/

echo "==> cross-family fuzz smoke (fat-tree and torus escape CDGs stay acyclic)"
go test -run '^$' -fuzz 'FuzzFatTreeTopology' -fuzztime 5s ./internal/topology/
go test -run '^$' -fuzz 'FuzzTorusTopology' -fuzztime 5s ./internal/topology/

echo "==> cross-family differential (fat-tree + torus goldens: sequential vs shard vs -check vs unfused)"
# Engine conformance pins each family's routing contract; the sweep
# goldens pin the simulations bit-exactly across execution strategies,
# with the shard arm forced onto real worker goroutines.
go test -count=1 -run 'TestEngineConformance|TestTorusEscapeAvoidsWraps|TestStructuredBuildersDegradeToUpDown' -v ./internal/routing/
GOMAXPROCS=4 go test -race -count=1 \
  -run 'TestFamilySweepsDeterministic|TestFamilySweepsEngineInvariant' -v ./internal/experiments/
go test -count=1 -run 'TestMetamorphicLMCInvarianceFamilies' -v ./internal/check/
go test -count=1 -run 'TestFamilyReportGolden|TestFamilyDotOutput' -v ./cmd/ibtopo/

echo "==> scheduler equivalence (calendar vs heap differential)"
go test -run 'TestEventQueueDifferential|TestEngineSchedulersEquivalent' -v ./internal/sim/

echo "==> event-queue fuzz smoke"
go test -run '^$' -fuzz 'FuzzEventQueueOrdering' -fuzztime 10s ./internal/sim/

echo "==> fault-campaign smoke (seeded flaps, staged recovery, watchdog)"
go test -race -run 'TestCampaignSmokeCI' -v ./internal/faults/

echo "==> sharded-engine differential (bit-exact vs sequential, worker goroutines forced)"
# GOMAXPROCS=4 forces the shard coordinator onto its worker-goroutine
# path even on single-core runners (at GOMAXPROCS=1 it runs shards
# inline); -count=1 defeats the test cache, which ignores env changes.
# The matrix covers the channel-aware windows, outbox batching and the
# time board: wheel geometries × shard counts × both partitioners,
# plus the fault campaign and -check goldens.
GOMAXPROCS=4 go test -race -count=1 \
  -run 'TestShardEngineBitExact|TestShardModeValidation' -v ./internal/experiments/
GOMAXPROCS=4 go test -race -count=1 -run 'TestShard|TestPartition|TestLookahead|TestChannelDelayMatrix' ./internal/fabric/
GOMAXPROCS=4 go test -race -count=1 -run 'TestTimeBoard' ./internal/sim/

echo "==> channel-bound soundness (live cross-shard mail vs the delay matrix)"
GOMAXPROCS=4 go test -race -count=1 -run 'TestChannelBounds' -v ./internal/experiments/

echo "==> relaxed-exactness smoke (-lag: deterministic, auditor-clean, statistically close to the exact oracle)"
GOMAXPROCS=4 go test -race -count=1 -run 'TestRelaxed' -v ./internal/experiments/

echo "==> crash-tolerance suite (SIGKILL mid-job, torn-store audit, byte-identical resume)"
GOMAXPROCS=4 go test -race -count=1 -run 'TestWorkerSIGKILL|TestCampaign|TestResume|TestCorrupt|TestHungWorker|TestStore' -v ./internal/campaign/

echo "==> campaign smoke (SIGTERM the coordinator mid-run, resume, diff vs clean + in-process oracle, zero torn files)"
CAMPDIR=$(mktemp -d)
trap 'rm -rf "$CAMPDIR"' EXIT
go build -race -o "$CAMPDIR/ibcamp" ./cmd/ibcamp
go build -race -o "$CAMPDIR/ibbench" ./cmd/ibbench
"$CAMPDIR/ibbench" -emit-campaign "$CAMPDIR/camp.json" \
  -sizes 8 -topos 3 -loads 2 -warmup 10000 -measure 50000
# Clean uninterrupted run — the reference aggregate.
"$CAMPDIR/ibcamp" run -spec "$CAMPDIR/camp.json" -store "$CAMPDIR/store-clean" -q \
  > "$CAMPDIR/agg-clean.txt"
# The sequential in-process oracle must reproduce it byte-for-byte.
"$CAMPDIR/ibbench" -exp campaign -campaign "$CAMPDIR/camp.json" > "$CAMPDIR/agg-oracle.txt"
cmp "$CAMPDIR/agg-clean.txt" "$CAMPDIR/agg-oracle.txt"
# Interrupted run: SIGTERM the coordinator mid-campaign...
"$CAMPDIR/ibcamp" run -spec "$CAMPDIR/camp.json" -store "$CAMPDIR/store-resume" -q \
  > "$CAMPDIR/agg-interrupted.txt" 2>/dev/null &
CAMP_PID=$!
sleep 0.3
kill -TERM "$CAMP_PID" 2>/dev/null || true
wait "$CAMP_PID" || true
# ...then resume into the same store: byte-identical to the clean run.
"$CAMPDIR/ibcamp" run -spec "$CAMPDIR/camp.json" -store "$CAMPDIR/store-resume" -q \
  > "$CAMPDIR/agg-resumed.txt"
cmp "$CAMPDIR/agg-clean.txt" "$CAMPDIR/agg-resumed.txt"
# Zero torn files, every artifact hash-verified (verify exits 1 otherwise).
"$CAMPDIR/ibcamp" verify -store "$CAMPDIR/store-resume"
rm -rf "$CAMPDIR"
trap - EXIT

echo "CI OK"

#!/usr/bin/env sh
# bench.sh — run the hot-path benchmark suite and record a
# benchstat-comparable baseline.
#
# Usage: scripts/bench.sh [count]
#
# Writes four artifacts at the repo root:
#   BENCH_hotpath.txt  — raw `go test -bench` output; feed two of these
#                        to benchstat to compare revisions.
#   BENCH_hotpath.json — parsed {benchmark: {ns_op, b_op, allocs_op}}
#                        for trajectory tracking across PRs.
#   BENCH_eventq.txt   — event-queue depth sweep: calendar vs heap at
#                        1k/16k/256k standing events, plus the
#                        end-to-end Figure 3 regeneration.
#   BENCH_eventq.json  — the sweep parsed, with the pre-calendar
#                        (binary-heap, PR 1) baselines embedded so one
#                        file carries the before/after comparison.
#   BENCH_fusion.txt   — hop-fusion differential: the fused fast path
#                        against the -fuse=off per-hop event oracle, at
#                        the single-traversal and end-to-end levels.
#   BENCH_fusion.json  — the differential parsed, with fused/unfused
#                        speedup columns.
#   BENCH_arb.txt      — arbitration differential: the wake-list
#                        arbiter (default) against the -arb=scan
#                        round-robin rescan oracle, uncongested and
#                        hot-spot congested, medians of >=3 counts.
#   BENCH_arb.json     — the differential parsed, with wake speedup
#                        columns per regime.
#
# The suite covers the three hot-path layers (table lookup, engine
# push/pop, one switch traversal) plus the end-to-end Figure 3
# regeneration whose allocs/op the alloc-regression tests gate.
set -eu

cd "$(dirname "$0")/.."
count="${1:-1}"

out_txt=BENCH_hotpath.txt
out_json=BENCH_hotpath.json

{
  go test -run '^$' -bench 'BenchmarkLookup$' -benchmem -count "$count" ./internal/core/
  go test -run '^$' -bench 'BenchmarkEnginePushPop' -benchmem -count "$count" ./internal/sim/
  go test -run '^$' -bench 'BenchmarkSwitchHop$' -benchmem -count "$count" ./internal/fabric/
  go test -run '^$' -bench 'BenchmarkFigure3$|BenchmarkSimulationEngine$' -benchmem -benchtime 3x -count "$count" .
} | tee "$out_txt"

awk '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3; b[name] = $5; al[name] = $7
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
  }
  END {
    printf "{\n"
    for (i = 1; i <= n; i++) {
      k = order[i]
      printf "  \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n",
        k, ns[k], b[k], al[k], (i < n ? "," : "")
    }
    printf "}\n"
  }
' "$out_txt" > "$out_json"

# Event-queue depth sweep. BenchmarkEventQueueDepth pits the calendar
# queue against the heap at three standing depths; the depth=1k point
# of the heap reproduces the old BenchmarkEnginePushPopDepth regime.
# The sweep reuses one engine per sub-benchmark, so allocs/op doubles
# as the zero-steady-state-allocation check at every depth.
eq_txt=BENCH_eventq.txt
eq_json=BENCH_eventq.json

{
  go test -run '^$' -bench 'BenchmarkEnginePushPopDepth$|BenchmarkEventQueueDepth' \
    -benchmem -count "$count" ./internal/sim/
  go test -run '^$' -bench 'BenchmarkFigure3$' -benchmem -benchtime 3x -count "$count" .
} | tee "$eq_txt"

awk '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3; b[name] = $5; al[name] = $7
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
  }
  END {
    printf "{\n"
    printf "  \"baseline_pr1_heap\": {\n"
    printf "    \"BenchmarkEnginePushPopDepth\": {\"ns_op\": 159.8, \"b_op\": 0, \"allocs_op\": 0},\n"
    printf "    \"BenchmarkFigure3\": {\"ns_op\": 423900000}\n"
    printf "  },\n"
    printf "  \"current\": {\n"
    for (i = 1; i <= n; i++) {
      k = order[i]
      printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n",
        k, ns[k], b[k], al[k], (i < n ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
  }
' "$eq_txt" > "$eq_json"

# Hop-fusion differential. The fused and unfused engines are
# bit-identical in results (the fusion differential suite enforces
# it), so the pair is purely a wall-clock measurement: the unfused
# numbers are the per-hop event oracle, and the speedup columns are
# what fusing the uncongested arrival→route→arbitrate→depart chain
# into single dispatches buys at each level.
fu_txt=BENCH_fusion.txt
fu_json=BENCH_fusion.json

{
  go test -run '^$' -bench 'BenchmarkSwitchHop$|BenchmarkSwitchHopUnfused$' \
    -benchmem -count "$count" ./internal/fabric/
  go test -run '^$' -bench 'BenchmarkFigure3$|BenchmarkFigure3Unfused$' \
    -benchmem -benchtime 3x -count "$count" .
} | tee "$fu_txt"

awk '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3; b[name] = $5; al[name] = $7
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
  }
  END {
    printf "{\n"
    for (i = 1; i <= n; i++) {
      k = order[i]
      printf "  \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},\n",
        k, ns[k], b[k], al[k]
    }
    hop = "BenchmarkSwitchHop"; hopu = "BenchmarkSwitchHopUnfused"
    fig = "BenchmarkFigure3"; figu = "BenchmarkFigure3Unfused"
    printf "  \"fusion_speedup\": {"
    if (ns[hop] > 0 && ns[hopu] > 0)
      printf "\"switch_hop\": %.3f", ns[hopu] / ns[hop]
    if (ns[fig] > 0 && ns[figu] > 0)
      printf ", \"figure3\": %.3f", ns[figu] / ns[fig]
    printf "}\n"
    printf "}\n"
  }
' "$fu_txt" > "$fu_json"

# Arbitration differential. The wake-list arbiter and the scanning
# oracle are bit-identical in results (the arbiter differential suite
# enforces it), so the pair is purely a wall-clock measurement. Four
# regimes: a single uncongested traversal (BenchmarkSwitchHop vs
# BenchmarkSwitchHopScanArb), a contended 4-packet burst fighting for
# one link (BenchmarkArbCongested/{wake,scan}), the end-to-end
# Figure 3 panel (BenchmarkFigure3 vs BenchmarkFigure3ArbScan), and a
# saturated hot-spot run (BenchmarkArbHotSpot/{wake,scan}) — the
# congested regimes are where retiring the O(points^2) rescan pays.
# Runs at a minimum of 3 counts and reports MEDIAN ns/op.
arb_txt=BENCH_arb.txt
arb_json=BENCH_arb.json

arb_count="$count"
[ "$arb_count" -lt 3 ] && arb_count=3

{
  go test -run '^$' -bench 'BenchmarkSwitchHop$|BenchmarkSwitchHopScanArb$|BenchmarkArbCongested' \
    -benchmem -count "$arb_count" ./internal/fabric/
  go test -run '^$' -bench 'BenchmarkFigure3$|BenchmarkFigure3ArbScan$|BenchmarkArbHotSpot' \
    -benchmem -benchtime 3x -count "$arb_count" .
} | tee "$arb_txt"

awk '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    cnt[name]++
    samples[name, cnt[name]] = $3
    b[name] = $5; al[name] = $7
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
  }
  function median(key,    m, i, j, tmp, vals) {
    m = cnt[key]
    for (i = 1; i <= m; i++) vals[i] = samples[key, i] + 0
    for (i = 1; i <= m; i++)
      for (j = i + 1; j <= m; j++)
        if (vals[j] < vals[i]) { tmp = vals[i]; vals[i] = vals[j]; vals[j] = tmp }
    if (m % 2) return vals[(m + 1) / 2]
    return (vals[m / 2] + vals[m / 2 + 1]) / 2
  }
  function speedup(wake, scan,    mw, ms) {
    mw = median(wake); ms = median(scan)
    if (mw > 0 && ms > 0) return ms / mw
    return 0
  }
  END {
    printf "{\n"
    printf "  \"metric\": \"median ns/op of %d counts\",\n", cnt[order[1]]
    for (i = 1; i <= n; i++) {
      k = order[i]
      printf "  \"%s\": {\"ns_op\": %.0f, \"b_op\": %s, \"allocs_op\": %s},\n",
        k, median(k), b[k], al[k]
    }
    printf "  \"wake_speedup\": {"
    printf "\"switch_hop\": %.3f", speedup("BenchmarkSwitchHop", "BenchmarkSwitchHopScanArb")
    printf ", \"congested_burst\": %.3f", speedup("BenchmarkArbCongested/wake", "BenchmarkArbCongested/scan")
    printf ", \"figure3\": %.3f", speedup("BenchmarkFigure3", "BenchmarkFigure3ArbScan")
    printf ", \"hot_spot\": %.3f", speedup("BenchmarkArbHotSpot/wake", "BenchmarkArbHotSpot/scan")
    printf "}\n"
    printf "}\n"
  }
' "$arb_txt" > "$arb_json"

# Sharded-engine scaling sweep. BenchmarkFigure3Shards regenerates the
# 64-switch Figure 3 panel sequentially, at 2/4/8 exact shards and at
# the validated relaxed lag; results are bit-identical in exact mode
# (the shard differential suite enforces it), so the sweep is purely a
# wall-clock measurement. The sweep runs at a minimum of 3 counts and
# reports MEDIAN ns/op, once per GOMAXPROCS setting (1 and 4, capped
# nowhere — on a host with fewer cores the 4-proc numbers measure
# oversubscribed scheduling, and the JSON records the real core count
# so readers can tell). Speedup and parallel-efficiency columns are
# computed per GOMAXPROCS against that setting's own sequential
# median; efficiency divides by min(shards, gomaxprocs), the most
# parallelism the setting permits.
sh_txt=BENCH_shard.txt
sh_json=BENCH_shard.json

shard_count="$count"
[ "$shard_count" -lt 3 ] && shard_count=3
cores=$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -1 )

: > "$sh_txt"
for gmp in 1 4; do
  echo "# GOMAXPROCS=$gmp (host cores: $cores)" | tee -a "$sh_txt"
  GOMAXPROCS="$gmp" go test -run '^$' -bench 'BenchmarkFigure3Shards' \
    -benchmem -benchtime 1x -count "$shard_count" . | tee -a "$sh_txt"
done

awk -v cores="$cores" '
  /^# GOMAXPROCS=/ { gmp = $2; sub(/^GOMAXPROCS=/, "", gmp); if (!(gmp in gseen)) { gorder[++gn] = gmp; gseen[gmp] = 1 } }
  /^BenchmarkFigure3Shards\// {
    name = $1
    # go test appends "-GOMAXPROCS" (omitted at 1); strip exactly that
    # so "lag=200" is not mistaken for a proc suffix.
    sub("-" gmp "$", "", name)
    sub(/^BenchmarkFigure3Shards\//, "", name)
    key = gmp SUBSEP name
    cnt[key]++
    samples[key, cnt[key]] = $3
    b[key] = $5; al[key] = $7
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
  }
  function median(key,    m, i, j, tmp, vals) {
    m = cnt[key]
    for (i = 1; i <= m; i++) vals[i] = samples[key, i] + 0
    for (i = 1; i <= m; i++)
      for (j = i + 1; j <= m; j++)
        if (vals[j] < vals[i]) { tmp = vals[i]; vals[i] = vals[j]; vals[j] = tmp }
    if (m % 2) return vals[(m + 1) / 2]
    return (vals[m / 2] + vals[m / 2 + 1]) / 2
  }
  END {
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkFigure3Shards (64-switch Figure 3 panel)\",\n"
    printf "  \"cores\": %s,\n", cores
    printf "  \"counts_per_point\": %d,\n", cnt[gorder[1] SUBSEP order[1]]
    printf "  \"metric\": \"median ns/op\",\n"
    printf "  \"gomaxprocs\": {\n"
    for (g = 1; g <= gn; g++) {
      gmp = gorder[g]
      printf "    \"%s\": {\n", gmp
      seqkey = gmp SUBSEP "seq"
      seqns = median(seqkey)
      for (i = 1; i <= n; i++) {
        k = order[i]
        key = gmp SUBSEP k
        med = median(key)
        printf "      \"%s\": {\"ns_op\": %.0f, \"b_op\": %s, \"allocs_op\": %s", k, med, b[key], al[key]
        if (k != "seq" && seqns > 0 && med > 0) {
          shards = k; sub(/^shards=/, "", shards); sub(/[^0-9].*$/, "", shards)
          limit = (shards < gmp ? shards : gmp)
          speedup = seqns / med
          printf ", \"speedup_vs_seq\": %.3f, \"parallel_efficiency\": %.3f", speedup, speedup / limit
        }
        printf "}%s\n", (i < n ? "," : "")
      }
      printf "    }%s\n", (g < gn ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
  }
' "$sh_txt" > "$sh_json"

echo "wrote $out_txt, $out_json, $eq_txt, $eq_json, $fu_txt, $fu_json, $arb_txt, $arb_json, $sh_txt and $sh_json"

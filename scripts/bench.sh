#!/usr/bin/env sh
# bench.sh — run the hot-path benchmark suite and record a
# benchstat-comparable baseline.
#
# Usage: scripts/bench.sh [count]
#
# Writes two artifacts at the repo root:
#   BENCH_hotpath.txt  — raw `go test -bench` output; feed two of these
#                        to benchstat to compare revisions.
#   BENCH_hotpath.json — parsed {benchmark: {ns_op, b_op, allocs_op}}
#                        for trajectory tracking across PRs.
#
# The suite covers the three hot-path layers (table lookup, engine
# push/pop, one switch traversal) plus the end-to-end Figure 3
# regeneration whose allocs/op the alloc-regression tests gate.
set -eu

cd "$(dirname "$0")/.."
count="${1:-1}"

out_txt=BENCH_hotpath.txt
out_json=BENCH_hotpath.json

{
  go test -run '^$' -bench 'BenchmarkLookup$' -benchmem -count "$count" ./internal/core/
  go test -run '^$' -bench 'BenchmarkEnginePushPop' -benchmem -count "$count" ./internal/sim/
  go test -run '^$' -bench 'BenchmarkSwitchHop$' -benchmem -count "$count" ./internal/fabric/
  go test -run '^$' -bench 'BenchmarkFigure3$|BenchmarkSimulationEngine$' -benchmem -benchtime 3x -count "$count" .
} | tee "$out_txt"

awk '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3; b[name] = $5; al[name] = $7
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
  }
  END {
    printf "{\n"
    for (i = 1; i <= n; i++) {
      k = order[i]
      printf "  \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n",
        k, ns[k], b[k], al[k], (i < n ? "," : "")
    }
    printf "}\n"
  }
' "$out_txt" > "$out_json"

echo "wrote $out_txt and $out_json"

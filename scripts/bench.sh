#!/usr/bin/env sh
# bench.sh — run the hot-path benchmark suite and record a
# benchstat-comparable baseline.
#
# Usage: scripts/bench.sh [count]
#
# Writes four artifacts at the repo root:
#   BENCH_hotpath.txt  — raw `go test -bench` output; feed two of these
#                        to benchstat to compare revisions.
#   BENCH_hotpath.json — parsed {benchmark: {ns_op, b_op, allocs_op}}
#                        for trajectory tracking across PRs.
#   BENCH_eventq.txt   — event-queue depth sweep: calendar vs heap at
#                        1k/16k/256k standing events, plus the
#                        end-to-end Figure 3 regeneration.
#   BENCH_eventq.json  — the sweep parsed, with the pre-calendar
#                        (binary-heap, PR 1) baselines embedded so one
#                        file carries the before/after comparison.
#   BENCH_fusion.txt   — hop-fusion differential: the fused fast path
#                        against the -fuse=off per-hop event oracle, at
#                        the single-traversal and end-to-end levels.
#   BENCH_fusion.json  — the differential parsed, with fused/unfused
#                        speedup columns.
#
# The suite covers the three hot-path layers (table lookup, engine
# push/pop, one switch traversal) plus the end-to-end Figure 3
# regeneration whose allocs/op the alloc-regression tests gate.
set -eu

cd "$(dirname "$0")/.."
count="${1:-1}"

out_txt=BENCH_hotpath.txt
out_json=BENCH_hotpath.json

{
  go test -run '^$' -bench 'BenchmarkLookup$' -benchmem -count "$count" ./internal/core/
  go test -run '^$' -bench 'BenchmarkEnginePushPop' -benchmem -count "$count" ./internal/sim/
  go test -run '^$' -bench 'BenchmarkSwitchHop$' -benchmem -count "$count" ./internal/fabric/
  go test -run '^$' -bench 'BenchmarkFigure3$|BenchmarkSimulationEngine$' -benchmem -benchtime 3x -count "$count" .
} | tee "$out_txt"

awk '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3; b[name] = $5; al[name] = $7
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
  }
  END {
    printf "{\n"
    for (i = 1; i <= n; i++) {
      k = order[i]
      printf "  \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n",
        k, ns[k], b[k], al[k], (i < n ? "," : "")
    }
    printf "}\n"
  }
' "$out_txt" > "$out_json"

# Event-queue depth sweep. BenchmarkEventQueueDepth pits the calendar
# queue against the heap at three standing depths; the depth=1k point
# of the heap reproduces the old BenchmarkEnginePushPopDepth regime.
# The sweep reuses one engine per sub-benchmark, so allocs/op doubles
# as the zero-steady-state-allocation check at every depth.
eq_txt=BENCH_eventq.txt
eq_json=BENCH_eventq.json

{
  go test -run '^$' -bench 'BenchmarkEnginePushPopDepth$|BenchmarkEventQueueDepth' \
    -benchmem -count "$count" ./internal/sim/
  go test -run '^$' -bench 'BenchmarkFigure3$' -benchmem -benchtime 3x -count "$count" .
} | tee "$eq_txt"

awk '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3; b[name] = $5; al[name] = $7
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
  }
  END {
    printf "{\n"
    printf "  \"baseline_pr1_heap\": {\n"
    printf "    \"BenchmarkEnginePushPopDepth\": {\"ns_op\": 159.8, \"b_op\": 0, \"allocs_op\": 0},\n"
    printf "    \"BenchmarkFigure3\": {\"ns_op\": 423900000}\n"
    printf "  },\n"
    printf "  \"current\": {\n"
    for (i = 1; i <= n; i++) {
      k = order[i]
      printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n",
        k, ns[k], b[k], al[k], (i < n ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
  }
' "$eq_txt" > "$eq_json"

# Hop-fusion differential. The fused and unfused engines are
# bit-identical in results (the fusion differential suite enforces
# it), so the pair is purely a wall-clock measurement: the unfused
# numbers are the per-hop event oracle, and the speedup columns are
# what fusing the uncongested arrival→route→arbitrate→depart chain
# into single dispatches buys at each level.
fu_txt=BENCH_fusion.txt
fu_json=BENCH_fusion.json

{
  go test -run '^$' -bench 'BenchmarkSwitchHop$|BenchmarkSwitchHopUnfused$' \
    -benchmem -count "$count" ./internal/fabric/
  go test -run '^$' -bench 'BenchmarkFigure3$|BenchmarkFigure3Unfused$' \
    -benchmem -benchtime 3x -count "$count" .
} | tee "$fu_txt"

awk '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3; b[name] = $5; al[name] = $7
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
  }
  END {
    printf "{\n"
    for (i = 1; i <= n; i++) {
      k = order[i]
      printf "  \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},\n",
        k, ns[k], b[k], al[k]
    }
    hop = "BenchmarkSwitchHop"; hopu = "BenchmarkSwitchHopUnfused"
    fig = "BenchmarkFigure3"; figu = "BenchmarkFigure3Unfused"
    printf "  \"fusion_speedup\": {"
    if (ns[hop] > 0 && ns[hopu] > 0)
      printf "\"switch_hop\": %.3f", ns[hopu] / ns[hop]
    if (ns[fig] > 0 && ns[figu] > 0)
      printf ", \"figure3\": %.3f", ns[figu] / ns[fig]
    printf "}\n"
    printf "}\n"
  }
' "$fu_txt" > "$fu_json"

# Sharded-engine scaling sweep. BenchmarkFigure3Shards regenerates the
# 64-switch Figure 3 panel sequentially and at 2/4/8 shards; results
# are bit-identical (the shard differential suite enforces it), so the
# sweep is purely a wall-clock measurement. The JSON embeds speedup
# and parallel-efficiency columns against the sequential point plus
# the host's core count — on a single-core host the sharded engine
# runs its inline path and the sweep measures coordination overhead,
# not speedup (see EXPERIMENTS.md).
sh_txt=BENCH_shard.txt
sh_json=BENCH_shard.json

go test -run '^$' -bench 'BenchmarkFigure3Shards' -benchmem -benchtime 1x \
  -count "$count" . | tee "$sh_txt"

cores=$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -1 )

awk -v cores="$cores" '
  /^BenchmarkFigure3Shards\// {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^BenchmarkFigure3Shards\//, "", name)
    ns[name] = $3; b[name] = $5; al[name] = $7
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
  }
  END {
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkFigure3Shards (64-switch Figure 3 panel)\",\n"
    printf "  \"cores\": %s,\n", cores
    printf "  \"sweep\": {\n"
    for (i = 1; i <= n; i++) {
      k = order[i]
      printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s", k, ns[k], b[k], al[k]
      if (k != "seq" && ns["seq"] > 0) {
        shards = k; sub(/^shards=/, "", shards)
        speedup = ns["seq"] / ns[k]
        printf ", \"speedup_vs_seq\": %.3f, \"parallel_efficiency\": %.3f", speedup, speedup / shards
      }
      printf "}%s\n", (i < n ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
  }
' "$sh_txt" > "$sh_json"

echo "wrote $out_txt, $out_json, $eq_txt, $eq_json, $fu_txt, $fu_json, $sh_txt and $sh_json"

package ibasim_test

import (
	"fmt"
	"os"

	"ibasim"
)

// The simplest use: simulate one workload and read the paper's two
// observables.
func ExampleSimulate() {
	cfg := ibasim.DefaultConfig()
	cfg.Switches = 8
	cfg.Load = 0.01

	res, err := ibasim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("accepted traffic: %.4f bytes/ns/switch\n", res.AcceptedPerSwitch)
	fmt.Printf("average latency:  %.0f ns\n", res.AvgLatencyNs)
}

// Sweeping offered load yields the latency/accepted-traffic curves of
// the paper's Figure 3; Throughput reads the saturation plateau.
func ExampleSweep() {
	cfg := ibasim.DefaultConfig()
	points, err := ibasim.Sweep(cfg, ibasim.Loads(0.005, 0.2, 6))
	if err != nil {
		panic(err)
	}
	fmt.Printf("saturation throughput: %.4f bytes/ns/switch\n", ibasim.Throughput(points))
}

// CompareRouting runs the paper's headline experiment: enhanced
// switches carrying fully adaptive traffic versus a stock
// deterministic subnet, on the same topology and workload.
func ExampleCompareRouting() {
	cfg := ibasim.DefaultConfig()
	cfg.Switches = 16

	cmp, err := ibasim.CompareRouting(cfg, ibasim.Loads(0.005, 0.25, 6))
	if err != nil {
		panic(err)
	}
	fmt.Printf("throughput factor: %.2f\n", cmp.Factor)
}

// The source-selected multipath baseline of §1: plain switches, the
// source picks one of several deterministic paths per packet.
func ExampleConfig_sourceMultipath() {
	cfg := ibasim.DefaultConfig()
	cfg.AdaptiveSwitches = false
	cfg.AdaptiveFraction = 0
	cfg.SourceMultipath = 2

	res, err := ibasim.Simulate(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("accepted: %.4f\n", res.AcceptedPerSwitch)
}

// SimulateTraced dumps packet lifecycle events — handy for seeing how
// often the adaptive options actually win over the escape path.
func ExampleSimulateTraced() {
	cfg := ibasim.DefaultConfig()
	cfg.Switches = 8

	res, err := ibasim.SimulateTraced(cfg, 0, nil) // aggregates only
	if err != nil {
		panic(err)
	}
	fmt.Printf("adaptive forwarding share: %.0f%%\n", res.AdaptiveShare*100)
}

// The experiment harnesses regenerate the paper's tables directly.
func ExampleRunTable2() {
	if err := ibasim.RunTable2(ibasim.Quick, 4, 2, os.Stdout); err != nil {
		panic(err)
	}
}

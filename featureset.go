package ibasim

import (
	"fmt"

	"ibasim/internal/experiments"
)

// FeatureSet names the cross-cutting run features whose combinations
// are constrained: the execution engine, its shard count, packet
// tracing, and the invariant auditor's heavy checks. The CLIs and the
// library API all funnel flag combinations through Validate before
// building anything, so an unsupported pairing fails up front with
// one canonical message instead of surfacing mid-run from whichever
// layer happens to notice first.
type FeatureSet struct {
	Engine      string // "", "seq" or "shard"
	Shards      int    // >1 only meaningful with Engine "shard"
	LagNs       int64  // -lag: relaxed-exactness window slack, shard engine only
	PacketTrace bool   // -packet-trace: per-packet lifecycle recorder
	Check       bool   // -check: heavy invariant scans (compatible with everything)
	Campaign    bool   // run executes inside an ibcamp campaign worker
	Arb         string // -arb: "", "wake" or "scan" crossbar arbiter
	Topo        string // -topo: "", "irregular", "fattree:K,N" or "torus:AxB[xC]"

	// SourceMultipath mirrors Config.SourceMultipath: >1 selects the
	// source-selected multipath baseline, which programs alternative
	// up*/down* tie-break variants and therefore only exists on the
	// irregular family.
	SourceMultipath int
}

// featureRule is one row of the compatibility table: a combination
// predicate and the error it earns. Rows are checked in order; the
// first match wins, so put the most fundamental conflicts first.
type featureRule struct {
	name    string
	applies func(FeatureSet) bool
	err     func(FeatureSet) error
}

// featureRules is the complete compatibility table. Check appears in
// no row by design: the auditor attaches to the same observer seams
// on both engines and its heavy ticks run in the control engine's
// single-threaded phases, so it composes with every other feature —
// the featureset test pins that absence.
var featureRules = []featureRule{
	{
		name: "engine-known",
		applies: func(f FeatureSet) bool {
			switch f.Engine {
			case "", "seq", "shard":
				return false
			}
			return true
		},
		err: func(f FeatureSet) error {
			return fmt.Errorf("ibasim: unknown engine %q (want seq or shard)", f.Engine)
		},
	},
	{
		name:    "shards-require-shard-engine",
		applies: func(f FeatureSet) bool { return f.Shards > 1 && f.Engine != "shard" },
		err: func(f FeatureSet) error {
			return fmt.Errorf("ibasim: shards=%d requires engine \"shard\"", f.Shards)
		},
	},
	{
		name:    "lag-non-negative",
		applies: func(f FeatureSet) bool { return f.LagNs < 0 },
		err: func(f FeatureSet) error {
			return fmt.Errorf("ibasim: negative lag %dns", f.LagNs)
		},
	},
	{
		// Lag widens the conservative windows of the shard barrier; on
		// the sequential engine there are no windows to widen, so a lag
		// request there is a misconfiguration, not a no-op.
		name:    "lag-requires-shard-engine",
		applies: func(f FeatureSet) bool { return f.LagNs > 0 && f.Engine != "shard" },
		err: func(f FeatureSet) error {
			return fmt.Errorf("ibasim: lag=%dns requires engine \"shard\"", f.LagNs)
		},
	},
	{
		// The tracer hangs off the Network-level hooks, which sharded
		// runs leave to the per-shard observer chain; attaching it
		// there would race with the shard workers.
		name:    "trace-requires-sequential",
		applies: func(f FeatureSet) bool { return f.PacketTrace && f.Engine == "shard" },
		err: func(f FeatureSet) error {
			return fmt.Errorf("ibasim: packet tracing requires the sequential engine")
		},
	},
	{
		// A campaign worker's stdout carries the coordinator protocol
		// (heartbeats, the ok line) and its result must serialize to
		// the engine-invariant artifact; the tracer satisfies neither.
		name:    "trace-unsupported-in-campaign",
		applies: func(f FeatureSet) bool { return f.PacketTrace && f.Campaign },
		err: func(f FeatureSet) error {
			return fmt.Errorf("ibasim: packet tracing is unsupported inside campaign workers")
		},
	},
	{
		// The arbiter is a knob with exactly two bit-identical
		// settings; it composes with everything (tracing included —
		// the wake arbiter preserves exact event sequences), so its
		// only row is the name check. Tamper models force the scan
		// arbiter at runtime (fabric.SetTamper), not here: tampering
		// is a test-only seam with no CLI surface.
		name: "arb-known",
		applies: func(f FeatureSet) bool {
			switch f.Arb {
			case "", "wake", "scan":
				return false
			}
			return true
		},
		err: func(f FeatureSet) error {
			return fmt.Errorf("ibasim: unknown arbiter %q (want wake or scan)", f.Arb)
		},
	},
	{
		// The -topo grammar is the single source of truth for family
		// selection; a typo'd family must fail here, not deep inside a
		// generator with a shape error.
		name: "topo-known",
		applies: func(f FeatureSet) bool {
			_, err := experiments.ParseFamily(f.Topo)
			return err != nil
		},
		err: func(f FeatureSet) error {
			_, err := experiments.ParseFamily(f.Topo)
			return err
		},
	},
	{
		// Source multipath programs k up*/down* tie-break variants of
		// one link orientation; the structured families' escape routings
		// have no such variant notion, so the baseline is irregular-only.
		name: "multipath-requires-irregular",
		applies: func(f FeatureSet) bool {
			if f.SourceMultipath <= 1 {
				return false
			}
			fam, err := experiments.ParseFamily(f.Topo)
			return err == nil && !fam.Irregular()
		},
		err: func(f FeatureSet) error {
			return fmt.Errorf("ibasim: source multipath requires the irregular family, not -topo %s", f.Topo)
		},
	},
}

// Validate applies the compatibility table and returns the first
// conflict, or nil when the combination is supported.
func (f FeatureSet) Validate() error {
	for _, r := range featureRules {
		if r.applies(f) {
			return r.err(f)
		}
	}
	return nil
}

// features assembles the Config's feature selection; packetTrace is
// supplied by the entry point (SimulateTraced) rather than the Config.
func (c Config) features(packetTrace bool) FeatureSet {
	return FeatureSet{
		Engine: c.Engine, Shards: c.Shards, LagNs: c.LagNs, PacketTrace: packetTrace,
		Check: c.Check, Arb: c.Arb, Topo: c.Topology, SourceMultipath: c.SourceMultipath,
	}
}

// Package faults is the deterministic fault-injection subsystem: it
// schedules link and switch failures, repairs and staged
// subnet-manager recoveries on the simulation clock, and runs two
// runtime invariant watchdogs (credit conservation, forward progress)
// that fail a wedged run loudly instead of letting it hang.
//
// A Campaign is a parsed description of what goes wrong and when. It
// comes from a compact spec string (CLI-friendly) or a JSON file, and
// every source of randomness (the rand: directive) is drawn from an
// explicit seed, so a campaign replays byte-identically.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"ibasim/internal/sim"
)

// Kind enumerates campaign event types.
type Kind uint8

const (
	LinkDown Kind = iota
	LinkUp
	SwitchDown
	SwitchUp
	Reconfig
)

func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case SwitchDown:
		return "switch-down"
	case SwitchUp:
		return "switch-up"
	case Reconfig:
		return "reconfig"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "link-down":
		return LinkDown, nil
	case "link-up":
		return LinkUp, nil
	case "switch-down":
		return SwitchDown, nil
	case "switch-up":
		return SwitchUp, nil
	case "reconfig":
		return Reconfig, nil
	}
	return 0, fmt.Errorf("faults: unknown event kind %q", s)
}

// Event is one scheduled campaign action. A and B name the link ends
// of LinkDown/LinkUp; Switch names the target of SwitchDown/SwitchUp;
// Reconfig uses neither.
type Event struct {
	At     sim.Time
	Kind   Kind
	A, B   int
	Switch int
}

// RandomFlaps asks Apply to synthesize N link flaps (down, then up
// DownFor later) on links and instants drawn uniformly from the fault
// seed within [From, To). N == 0 disables it.
type RandomFlaps struct {
	N       int
	DownFor sim.Time
	From    sim.Time
	To      sim.Time
}

// Campaign is a full fault schedule plus the recovery-model and
// watchdog parameters it runs under.
type Campaign struct {
	Events []Event

	Random RandomFlaps

	// AutoReconfig, when > 0, schedules a staged reconfiguration this
	// long after every fault and repair event (the SM's sweep period
	// reacting to a trap). Explicit reconfig events compose with it;
	// coincident reconfigs are deduplicated.
	AutoReconfig sim.Time

	// SweepDelay and PerSwitchDelay time the staged recovery (see
	// subnet.StagedOptions); zero values take the subnet defaults.
	SweepDelay     sim.Time
	PerSwitchDelay sim.Time

	// Watchdog configures the runtime invariant checkers; zero fields
	// take defaults. Watchdog.Fatal defaults to false here — runners
	// that want a loud failure set it.
	Watchdog WatchdogConfig
}

// Parse reads the compact campaign spec grammar: semicolon-separated
// directives, times in simulated nanoseconds.
//
//	down@T:A-B         fail link A-B at T
//	up@T:A-B           repair link A-B at T
//	flap@T:A-B:DUR     fail at T, repair at T+DUR
//	swdown@T:S         fail switch S whole at T
//	swup@T:S           repair switch S at T
//	reconfig@T         staged SM reconfiguration starting at T
//	rand:N:DUR@T0-T1   N seeded random link flaps of DUR within [T0,T1)
//	autoreconfig:GAP   staged reconfig GAP after every fault/repair
//	sweep:SD:PSD       staged timing: sweep delay SD, per-switch PSD
//	watchdog:SE:HZ     watchdog sample period SE, progress horizon HZ
//
// Example: "down@20000:0-3;up@120000:0-3;autoreconfig:2000"
func Parse(spec string) (*Campaign, error) {
	c := &Campaign{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if err := c.parseDirective(part); err != nil {
			return nil, err
		}
	}
	if len(c.Events) == 0 && c.Random.N == 0 {
		return nil, fmt.Errorf("faults: campaign %q schedules no events", spec)
	}
	return c, nil
}

func (c *Campaign) parseDirective(part string) error {
	head, tail, hasAt := strings.Cut(part, "@")
	fields := strings.Split(head, ":")
	op := fields[0]
	bad := func() error { return fmt.Errorf("faults: bad directive %q", part) }
	switch op {
	case "down", "up", "flap", "swdown", "swup", "reconfig":
		if !hasAt || len(fields) != 1 {
			return bad()
		}
		args := strings.Split(tail, ":")
		t, err := parseTime(args[0])
		if err != nil {
			return bad()
		}
		switch op {
		case "reconfig":
			if len(args) != 1 {
				return bad()
			}
			c.Events = append(c.Events, Event{At: t, Kind: Reconfig})
		case "swdown", "swup":
			if len(args) != 2 {
				return bad()
			}
			s, err := strconv.Atoi(args[1])
			if err != nil {
				return bad()
			}
			k := SwitchDown
			if op == "swup" {
				k = SwitchUp
			}
			c.Events = append(c.Events, Event{At: t, Kind: k, Switch: s})
		default: // down, up, flap
			if (op == "flap" && len(args) != 3) || (op != "flap" && len(args) != 2) {
				return bad()
			}
			a, b, err := parseLink(args[1])
			if err != nil {
				return bad()
			}
			switch op {
			case "down":
				c.Events = append(c.Events, Event{At: t, Kind: LinkDown, A: a, B: b})
			case "up":
				c.Events = append(c.Events, Event{At: t, Kind: LinkUp, A: a, B: b})
			case "flap":
				dur, err := parseTime(args[2])
				if err != nil || dur <= 0 {
					return bad()
				}
				c.Events = append(c.Events,
					Event{At: t, Kind: LinkDown, A: a, B: b},
					Event{At: t + dur, Kind: LinkUp, A: a, B: b})
			}
		}
	case "rand":
		if !hasAt || len(fields) != 3 {
			return bad()
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n <= 0 {
			return bad()
		}
		dur, err := parseTime(fields[2])
		if err != nil || dur <= 0 {
			return bad()
		}
		lo, hi, ok := strings.Cut(tail, "-")
		if !ok {
			return bad()
		}
		t0, err := parseTime(lo)
		if err != nil {
			return bad()
		}
		t1, err := parseTime(hi)
		if err != nil || t1 <= t0 {
			return bad()
		}
		c.Random = RandomFlaps{N: n, DownFor: dur, From: t0, To: t1}
	case "autoreconfig":
		if hasAt || len(fields) != 2 {
			return bad()
		}
		gap, err := parseTime(fields[1])
		if err != nil || gap <= 0 {
			return bad()
		}
		c.AutoReconfig = gap
	case "sweep":
		if hasAt || len(fields) != 3 {
			return bad()
		}
		sd, err1 := parseTime(fields[1])
		psd, err2 := parseTime(fields[2])
		if err1 != nil || err2 != nil || sd < 0 || psd < 0 {
			return bad()
		}
		c.SweepDelay, c.PerSwitchDelay = sd, psd
	case "watchdog":
		if hasAt || len(fields) != 3 {
			return bad()
		}
		se, err1 := parseTime(fields[1])
		hz, err2 := parseTime(fields[2])
		if err1 != nil || err2 != nil || se <= 0 || hz <= 0 {
			return bad()
		}
		c.Watchdog.SampleEvery, c.Watchdog.Horizon = se, hz
	default:
		return bad()
	}
	return nil
}

func parseTime(s string) (sim.Time, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("faults: bad time %q", s)
	}
	return sim.Time(v), nil
}

func parseLink(s string) (int, int, error) {
	lo, hi, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("faults: bad link %q", s)
	}
	a, err1 := strconv.Atoi(lo)
	b, err2 := strconv.Atoi(hi)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("faults: bad link %q", s)
	}
	return a, b, nil
}

// jsonCampaign is the JSON-file form of a Campaign; all durations are
// simulated nanoseconds.
type jsonCampaign struct {
	Events []struct {
		AtNs   int64  `json:"atNs"`
		Kind   string `json:"kind"`
		A      int    `json:"a"`
		B      int    `json:"b"`
		Switch int    `json:"switch"`
	} `json:"events"`
	RandomFlaps *struct {
		N         int   `json:"n"`
		DownForNs int64 `json:"downForNs"`
		FromNs    int64 `json:"fromNs"`
		ToNs      int64 `json:"toNs"`
	} `json:"randomFlaps"`
	AutoReconfigNs   int64 `json:"autoReconfigNs"`
	SweepDelayNs     int64 `json:"sweepDelayNs"`
	PerSwitchDelayNs int64 `json:"perSwitchDelayNs"`
	Watchdog         *struct {
		SampleEveryNs int64 `json:"sampleEveryNs"`
		HorizonNs     int64 `json:"horizonNs"`
	} `json:"watchdog"`
}

// jsonRule is one row of the campaign-JSON validation table, in the
// FeatureSet style: an ordered list of (predicate, error) pairs
// checked first-match-wins, so every rejection carries one canonical
// message naming the offending JSON path. The decoder layer above the
// table already rejects malformed syntax, NaN/Infinity (not JSON),
// fractional or overflowing times, and unknown fields — each with the
// line:column where decoding stopped.
type jsonRule struct {
	name    string
	applies func(*jsonCampaign) bool
	err     func(*jsonCampaign) error
}

// firstEvent returns the index of the first event failing pred, or -1.
func (jc *jsonCampaign) firstEvent(pred func(atNs int64, kind string) bool) int {
	for i, e := range jc.Events {
		if pred(e.AtNs, e.Kind) {
			return i
		}
	}
	return -1
}

var jsonRules = []jsonRule{
	{
		name: "event-kind-known",
		applies: func(jc *jsonCampaign) bool {
			return jc.firstEvent(func(_ int64, k string) bool { _, err := parseKind(k); return err != nil }) >= 0
		},
		err: func(jc *jsonCampaign) error {
			i := jc.firstEvent(func(_ int64, k string) bool { _, err := parseKind(k); return err != nil })
			return fmt.Errorf("faults: campaign JSON: events[%d].kind: unknown event kind %q", i, jc.Events[i].Kind)
		},
	},
	{
		name: "event-time-non-negative",
		applies: func(jc *jsonCampaign) bool {
			return jc.firstEvent(func(at int64, _ string) bool { return at < 0 }) >= 0
		},
		err: func(jc *jsonCampaign) error {
			i := jc.firstEvent(func(at int64, _ string) bool { return at < 0 })
			return fmt.Errorf("faults: campaign JSON: events[%d].atNs = %d is negative", i, jc.Events[i].AtNs)
		},
	},
	{
		name:    "random-flaps-count-positive",
		applies: func(jc *jsonCampaign) bool { return jc.RandomFlaps != nil && jc.RandomFlaps.N <= 0 },
		err: func(jc *jsonCampaign) error {
			return fmt.Errorf("faults: campaign JSON: randomFlaps.n = %d must be positive", jc.RandomFlaps.N)
		},
	},
	{
		name:    "random-flaps-duration-positive",
		applies: func(jc *jsonCampaign) bool { return jc.RandomFlaps != nil && jc.RandomFlaps.DownForNs <= 0 },
		err: func(jc *jsonCampaign) error {
			return fmt.Errorf("faults: campaign JSON: randomFlaps.downForNs = %d must be positive", jc.RandomFlaps.DownForNs)
		},
	},
	{
		name:    "random-flaps-window-sane",
		applies: func(jc *jsonCampaign) bool {
			return jc.RandomFlaps != nil && (jc.RandomFlaps.FromNs < 0 || jc.RandomFlaps.ToNs <= jc.RandomFlaps.FromNs)
		},
		err: func(jc *jsonCampaign) error {
			return fmt.Errorf("faults: campaign JSON: randomFlaps window [fromNs=%d, toNs=%d) is empty or negative",
				jc.RandomFlaps.FromNs, jc.RandomFlaps.ToNs)
		},
	},
	{
		name:    "auto-reconfig-non-negative",
		applies: func(jc *jsonCampaign) bool { return jc.AutoReconfigNs < 0 },
		err: func(jc *jsonCampaign) error {
			return fmt.Errorf("faults: campaign JSON: autoReconfigNs = %d is negative", jc.AutoReconfigNs)
		},
	},
	{
		name:    "sweep-delay-non-negative",
		applies: func(jc *jsonCampaign) bool { return jc.SweepDelayNs < 0 },
		err: func(jc *jsonCampaign) error {
			return fmt.Errorf("faults: campaign JSON: sweepDelayNs = %d is negative", jc.SweepDelayNs)
		},
	},
	{
		name:    "per-switch-delay-non-negative",
		applies: func(jc *jsonCampaign) bool { return jc.PerSwitchDelayNs < 0 },
		err: func(jc *jsonCampaign) error {
			return fmt.Errorf("faults: campaign JSON: perSwitchDelayNs = %d is negative", jc.PerSwitchDelayNs)
		},
	},
	{
		name: "watchdog-non-negative",
		applies: func(jc *jsonCampaign) bool {
			return jc.Watchdog != nil && (jc.Watchdog.SampleEveryNs < 0 || jc.Watchdog.HorizonNs < 0)
		},
		err: func(jc *jsonCampaign) error {
			return fmt.Errorf("faults: campaign JSON: watchdog {sampleEveryNs=%d, horizonNs=%d} has a negative field",
				jc.Watchdog.SampleEveryNs, jc.Watchdog.HorizonNs)
		},
	},
	{
		name: "schedules-something",
		applies: func(jc *jsonCampaign) bool {
			return len(jc.Events) == 0 && jc.RandomFlaps == nil
		},
		err: func(jc *jsonCampaign) error {
			return fmt.Errorf("faults: campaign JSON schedules no events")
		},
	},
}

// lineCol converts a byte offset into 1-based line:column for decoder
// error positions.
func lineCol(data []byte, off int64) (line, col int) {
	line, col = 1, 1
	for i := int64(0); i < off && i < int64(len(data)); i++ {
		if data[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// decodeErr wraps a decoder failure with the position where decoding
// stopped. Syntax and type errors carry their own offset; everything
// else (unknown fields, number overflow) uses the decoder's input
// offset, which points just past the offending token.
func decodeErr(data []byte, dec *json.Decoder, err error) error {
	off := dec.InputOffset()
	switch e := err.(type) {
	case *json.SyntaxError:
		off = e.Offset
	case *json.UnmarshalTypeError:
		off = e.Offset
	}
	line, col := lineCol(data, off)
	return fmt.Errorf("faults: bad campaign JSON at line %d col %d: %w", line, col, err)
}

// ParseJSON decodes the JSON-file campaign format strictly: unknown
// fields, non-JSON numbers (NaN/Infinity), fractional or overflowing
// times and trailing garbage are rejected with the position where
// decoding stopped; decoded values then pass the ordered jsonRules
// validation table, whose errors name the offending JSON path. A
// malformed campaign fails loudly here instead of silently zeroing
// fields and simulating the wrong failure schedule.
func ParseJSON(data []byte) (*Campaign, error) {
	var jc jsonCampaign
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jc); err != nil {
		return nil, decodeErr(data, dec, err)
	}
	if dec.More() {
		line, col := lineCol(data, dec.InputOffset())
		return nil, fmt.Errorf("faults: bad campaign JSON at line %d col %d: trailing data after campaign object", line, col)
	}
	for _, r := range jsonRules {
		if r.applies(&jc) {
			return nil, r.err(&jc)
		}
	}
	c := &Campaign{
		AutoReconfig:   sim.Time(jc.AutoReconfigNs),
		SweepDelay:     sim.Time(jc.SweepDelayNs),
		PerSwitchDelay: sim.Time(jc.PerSwitchDelayNs),
	}
	for _, e := range jc.Events {
		k, _ := parseKind(e.Kind) // kind validated by the rules table
		c.Events = append(c.Events, Event{At: sim.Time(e.AtNs), Kind: k, A: e.A, B: e.B, Switch: e.Switch})
	}
	if jc.RandomFlaps != nil {
		c.Random = RandomFlaps{
			N:       jc.RandomFlaps.N,
			DownFor: sim.Time(jc.RandomFlaps.DownForNs),
			From:    sim.Time(jc.RandomFlaps.FromNs),
			To:      sim.Time(jc.RandomFlaps.ToNs),
		}
	}
	if jc.Watchdog != nil {
		c.Watchdog.SampleEvery = sim.Time(jc.Watchdog.SampleEveryNs)
		c.Watchdog.Horizon = sim.Time(jc.Watchdog.HorizonNs)
	}
	return c, nil
}

// Load resolves a -faults CLI argument: "@path" reads a JSON campaign
// file, anything else is parsed as a spec string.
func Load(arg string) (*Campaign, error) {
	if strings.HasPrefix(arg, "@") {
		data, err := os.ReadFile(strings.TrimPrefix(arg, "@"))
		if err != nil {
			return nil, fmt.Errorf("faults: %w", err)
		}
		return ParseJSON(data)
	}
	return Parse(arg)
}

// expand returns the campaign's full, sorted event list: explicit
// events, seeded random flaps, and auto-reconfig follow-ups. The sort
// is stable on (time, original order), so equal-time events fire in
// spec order — expansion is fully deterministic for a given seed.
func (c *Campaign) expand(numLinks func() int, linkAt func(i int) (a, b int), seed uint64) []Event {
	events := append([]Event(nil), c.Events...)
	if c.Random.N > 0 {
		rng := sim.NewRNG(seed ^ 0x4641554C5453) // package tag
		span := int(c.Random.To - c.Random.From)
		for i := 0; i < c.Random.N; i++ {
			a, b := linkAt(rng.Intn(numLinks()))
			t := c.Random.From + sim.Time(rng.Intn(span))
			events = append(events,
				Event{At: t, Kind: LinkDown, A: a, B: b},
				Event{At: t + c.Random.DownFor, Kind: LinkUp, A: a, B: b})
		}
	}
	if c.AutoReconfig > 0 {
		seen := map[sim.Time]bool{}
		for _, e := range events {
			if e.Kind == Reconfig {
				seen[e.At] = true
			}
		}
		var auto []Event
		for _, e := range events {
			if e.Kind == Reconfig {
				continue
			}
			at := e.At + c.AutoReconfig
			if !seen[at] {
				seen[at] = true
				auto = append(auto, Event{At: at, Kind: Reconfig})
			}
		}
		events = append(events, auto...)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}

package faults

import (
	"errors"
	"fmt"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
	"ibasim/internal/subnet"
)

// Injector is a campaign applied to one network: it owns the
// scheduled fault events and accumulates the degraded-mode
// observables a run reports.
type Injector struct {
	net   *fabric.Network
	ropts subnet.Options
	sweep subnet.StagedOptions

	// FaultsInjected counts executed link-down and switch-down events;
	// Repairs counts link-up and switch-up events; ReconfigsStarted
	// and ReconfigsDone count staged recoveries scheduled and
	// completed.
	FaultsInjected   int
	Repairs          int
	ReconfigsStarted int
	ReconfigsDone    int

	// FirstFaultAt is when the first fault executed (-1 before any);
	// LastReconfigDoneAt is when the most recent staged recovery
	// finished reprogramming (-1 before any).
	FirstFaultAt       sim.Time
	LastReconfigDoneAt sim.Time

	// RecoveryLatency is the time from the first fault to the first
	// delivery at or after a completed reconfiguration — the ISSUE's
	// recovery-latency observable. -1 until observed.
	RecoveryLatency sim.Time

	// RerouteDrops counts buffered packets the staged reconfigs had to
	// discard as unroutable.
	RerouteDrops int

	// shardFirst[i] is the earliest qualifying DeliveredAt observed by
	// shard i's delivery hook (-1 until seen); nil in sequential mode.
	// Finalize folds the latches into RecoveryLatency.
	shardFirst []sim.Time

	errs []error
}

// Apply validates the campaign against the network's topology,
// expands randomized elements from seed, and schedules every event on
// the network's engine. ropts carries the routing parameters (MR,
// root, multipath) reconfigurations reuse. Apply chains the network's
// OnDelivered hook to observe recovery latency; call it after any
// metrics collector has attached.
func Apply(net *fabric.Network, c *Campaign, seed uint64, ropts subnet.Options) (*Injector, error) {
	st := subnet.DefaultStagedOptions()
	if c.SweepDelay > 0 || c.PerSwitchDelay > 0 {
		st.SweepDelay, st.PerSwitchDelay = c.SweepDelay, c.PerSwitchDelay
	}
	inj := &Injector{
		net:                net,
		ropts:              ropts,
		sweep:              st,
		FirstFaultAt:       -1,
		LastReconfigDoneAt: -1,
		RecoveryLatency:    -1,
	}
	topo := net.Topo
	if c.Random.N > 0 && len(topo.Links) == 0 {
		return nil, errors.New("faults: random flaps on a topology with no inter-switch links")
	}
	events := c.expand(
		func() int { return len(topo.Links) },
		func(i int) (int, int) { l := topo.Links[i]; return l.A, l.B },
		seed,
	)
	// Validate every event before scheduling anything.
	for _, e := range events {
		switch e.Kind {
		case LinkDown, LinkUp:
			if !topo.HasLink(e.A, e.B) {
				return nil, fmt.Errorf("faults: no link %d-%d in the topology", e.A, e.B)
			}
		case SwitchDown, SwitchUp:
			if e.Switch < 0 || e.Switch >= topo.NumSwitches {
				return nil, fmt.Errorf("faults: switch %d out of range [0,%d)", e.Switch, topo.NumSwitches)
			}
		}
	}
	for _, e := range events {
		e := e
		net.Engine.At(e.At, func() { inj.execute(e) })
	}
	if shards := net.ShardCount(); shards > 1 {
		// Per-shard delivery latches: each shard records its earliest
		// qualifying delivery single-threadedly; Finalize takes the
		// minimum, which equals the sequential first-qualifying
		// delivery time (execution order is timestamp order, and the
		// qualification state only changes in control phases that are
		// barrier-ordered against the shard windows).
		inj.shardFirst = make([]sim.Time, shards)
		for i := range inj.shardFirst {
			inj.shardFirst[i] = -1
			i := i
			net.ChainShardHooks(i, fabric.ShardHooks{
				OnDelivered: func(p *ib.Packet) { inj.observeShardDelivery(i, p) },
			})
		}
		return inj, nil
	}
	prevDelivered := net.OnDelivered
	net.OnDelivered = func(p *ib.Packet) {
		inj.observeDelivery(p)
		if prevDelivered != nil {
			prevDelivered(p)
		}
	}
	return inj, nil
}

func (inj *Injector) execute(e Event) {
	now := inj.net.Engine.Now()
	fail := func(err error) {
		inj.errs = append(inj.errs, fmt.Errorf("faults: %s at t=%d: %w", e.Kind, now, err))
	}
	switch e.Kind {
	case LinkDown:
		if err := inj.net.SetLinkDown(e.A, e.B); err != nil {
			fail(err)
			return
		}
		inj.noteFault(now)
	case LinkUp:
		if err := inj.net.SetLinkUp(e.A, e.B); err != nil {
			fail(err)
			return
		}
		inj.Repairs++
	case SwitchDown:
		if err := inj.net.SetSwitchDown(e.Switch); err != nil {
			fail(err)
			return
		}
		inj.noteFault(now)
	case SwitchUp:
		if err := inj.net.SetSwitchUp(e.Switch); err != nil {
			fail(err)
			return
		}
		inj.Repairs++
	case Reconfig:
		st := inj.sweep
		st.OnDone = func(dropped int) {
			inj.ReconfigsDone++
			inj.RerouteDrops += dropped
			inj.LastReconfigDoneAt = inj.net.Engine.Now()
		}
		if _, err := subnet.ReconfigureStaged(inj.net, inj.ropts, st); err != nil {
			fail(err)
			return
		}
		inj.ReconfigsStarted++
	}
}

func (inj *Injector) noteFault(now sim.Time) {
	inj.FaultsInjected++
	if inj.FirstFaultAt < 0 {
		inj.FirstFaultAt = now
	}
}

// observeDelivery captures the recovery latency: the first delivery at
// or after the first completed reconfiguration, measured from the
// first fault.
func (inj *Injector) observeDelivery(p *ib.Packet) {
	if inj.RecoveryLatency >= 0 || inj.LastReconfigDoneAt < 0 || inj.FirstFaultAt < 0 {
		return
	}
	if p.DeliveredAt >= inj.LastReconfigDoneAt {
		inj.RecoveryLatency = p.DeliveredAt - inj.FirstFaultAt
	}
}

// observeShardDelivery is the sharded counterpart of observeDelivery:
// it latches the shard's earliest qualifying delivery time.
func (inj *Injector) observeShardDelivery(shard int, p *ib.Packet) {
	if inj.shardFirst[shard] >= 0 || inj.LastReconfigDoneAt < 0 || inj.FirstFaultAt < 0 {
		return
	}
	if p.DeliveredAt >= inj.LastReconfigDoneAt {
		inj.shardFirst[shard] = p.DeliveredAt
	}
}

// Finalize folds the per-shard delivery latches into RecoveryLatency
// (no-op in sequential mode). Call once, after the run completes.
func (inj *Injector) Finalize() {
	for _, t := range inj.shardFirst {
		if t >= 0 && (inj.RecoveryLatency < 0 || t-inj.FirstFaultAt < inj.RecoveryLatency) {
			inj.RecoveryLatency = t - inj.FirstFaultAt
		}
	}
}

// Err returns the first campaign-execution error (a reconfiguration
// that could not route the surviving topology, for example), or nil.
func (inj *Injector) Err() error {
	if len(inj.errs) == 0 {
		return nil
	}
	return inj.errs[0]
}

// Stats reads the network's fault counters (drops, retries, losses),
// summed over all execution contexts in sharded mode.
func (inj *Injector) Stats() fabric.FaultStats { return inj.net.FaultTotals() }

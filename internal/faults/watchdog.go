package faults

import (
	"fmt"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// WatchdogConfig controls the runtime invariant checkers. The zero
// value disables the watchdog; withDefaults fills sampling parameters
// for an enabled one.
type WatchdogConfig struct {
	// SampleEvery is the audit tick period.
	SampleEvery sim.Time
	// Horizon is how long a non-empty buffer may keep the same head
	// packet before the forward-progress checker flags it.
	Horizon sim.Time
	// Fatal makes the watchdog panic with the first Violation instead
	// of recording it (the "fail loudly instead of hanging" mode;
	// runners recover it into an error).
	Fatal bool
}

// Enabled reports whether the watchdog should run at all.
func (c WatchdogConfig) Enabled() bool { return c.SampleEvery > 0 || c.Horizon > 0 }

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 5_000
	}
	if c.Horizon <= 0 {
		c.Horizon = 100_000
	}
	return c
}

// Violation is one invariant breach the watchdog observed. It
// implements error so Fatal mode can panic with it and runners can
// surface it directly.
type Violation struct {
	At     sim.Time
	Kind   string // "credit-conservation", "forward-progress", "deadlock"
	Detail string
}

func (v Violation) Error() string {
	return fmt.Sprintf("faults: watchdog: %s at t=%d: %s", v.Kind, v.At, v.Detail)
}

// maxViolations bounds the recorded list so a systemic breach (every
// buffer stuck) doesn't balloon memory; Samples keeps counting.
const maxViolations = 64

// bufKey identifies one watched service point: a (switch, port, VL)
// input buffer or a host source queue.
type bufKey struct {
	host bool
	sw   int
	port ib.PortID
	vl   int
}

// bufSig is the progress signature of a service point: if a non-empty
// buffer keeps the same head packet (and the host keeps the same
// injection count) across Horizon, nothing is moving through it.
type bufSig struct {
	headID   uint64
	depth    int
	injected uint64
	since    sim.Time // when this signature was first observed
	flagged  bool     // already reported; suppress until the signature changes
}

// Watchdog samples runtime invariants on the simulation clock:
//
//   - credit conservation: the paper's C_XYA/C_XYE split identities and
//     the in-flight credit bound, via Network.CheckCreditConservation.
//   - forward progress: every non-empty buffer must change its head
//     packet within Horizon, else the fabric is wedged (a routing or
//     flow-control deadlock) and the run fails loudly instead of
//     spinning to the time horizon with nothing delivered.
//   - deadlock: if the event queue drains while packets are still in
//     flight, nothing can ever move them again.
type Watchdog struct {
	net *fabric.Network
	cfg WatchdogConfig

	ticker     *sim.Ticker
	sigs       map[bufKey]*bufSig
	violations []Violation
}

// NewWatchdog builds a watchdog for net. Call Start to begin sampling.
func NewWatchdog(net *fabric.Network, cfg WatchdogConfig) *Watchdog {
	w := &Watchdog{
		net:  net,
		cfg:  cfg.withDefaults(),
		sigs: make(map[bufKey]*bufSig),
	}
	w.ticker = sim.NewTicker(net.Engine, w.cfg.SampleEvery, w.tick)
	return w
}

// Start schedules the first audit tick.
func (w *Watchdog) Start() { w.ticker.Start() }

// Stop prevents further ticks (the one already scheduled becomes a
// no-op).
func (w *Watchdog) Stop() { w.ticker.Stop() }

// Violations returns the recorded invariant breaches (capped at 64).
func (w *Watchdog) Violations() []Violation { return w.violations }

// Samples returns how many audit ticks have run.
func (w *Watchdog) Samples() uint64 { return w.ticker.Ticks() }

func (w *Watchdog) tick(now sim.Time) (stop bool) {
	if err := w.net.CheckCreditConservation(); err != nil {
		w.report(Violation{At: now, Kind: "credit-conservation", Detail: err.Error()})
	}
	w.checkProgress(now)

	// The tick just popped; if every queue is now empty (the control
	// engine's plus, in sharded mode, the shard queues and mailboxes)
	// the watchdog is the only thing left alive. Stop rescheduling —
	// and if packets are still in flight, nothing can ever move them:
	// that is a deadlock, reported immediately rather than discovered
	// at the horizon.
	if w.net.PendingEvents() == 0 {
		if inFlight := w.net.InFlight(); inFlight > 0 {
			w.report(Violation{
				At:     now,
				Kind:   "deadlock",
				Detail: fmt.Sprintf("event queue empty with %d packets in flight", inFlight),
			})
		}
		return true
	}
	return false
}

// checkProgress compares every service point's signature against the
// previous samples and flags any non-empty buffer whose head has not
// moved within Horizon.
func (w *Watchdog) checkProgress(now sim.Time) {
	for s, sw := range w.net.Switches {
		s := s
		sw.ScanBuffers(func(port ib.PortID, vl int, depth int, headID uint64) {
			w.observe(now, bufKey{sw: s, port: port, vl: vl}, headID, depth, 0,
				func() string {
					return fmt.Sprintf("switch %d port %d VL %d: head packet %d stuck for %dns (depth %d)",
						s, port, vl, headID, now-w.sigs[bufKey{sw: s, port: port, vl: vl}].since, depth)
				})
		})
	}
	for hid, h := range w.net.Hosts {
		hid := hid
		h2 := h
		w.observe(now, bufKey{host: true, sw: hid}, h.HeadID(), h.QueueLen(), h.Injected,
			func() string {
				return fmt.Sprintf("host %d: source-queue head packet %d stuck for %dns (depth %d)",
					hid, h2.HeadID(), now-w.sigs[bufKey{host: true, sw: hid}].since, h2.QueueLen())
			})
	}
}

// observe updates one service point's signature, reporting a
// forward-progress violation when a non-empty buffer's signature has
// been stable for at least Horizon.
func (w *Watchdog) observe(now sim.Time, k bufKey, headID uint64, depth int, injected uint64, detail func() string) {
	sig := w.sigs[k]
	if sig == nil {
		sig = &bufSig{}
		w.sigs[k] = sig
		sig.headID, sig.depth, sig.injected, sig.since = headID, depth, injected, now
		return
	}
	if sig.headID != headID || sig.depth != depth || sig.injected != injected {
		sig.headID, sig.depth, sig.injected, sig.since = headID, depth, injected, now
		sig.flagged = false
		return
	}
	if depth == 0 || sig.flagged || now-sig.since < w.cfg.Horizon {
		return
	}
	sig.flagged = true
	w.report(Violation{At: now, Kind: "forward-progress", Detail: detail()})
}

func (w *Watchdog) report(v Violation) {
	if w.cfg.Fatal {
		panic(v)
	}
	if len(w.violations) < maxViolations {
		w.violations = append(w.violations, v)
	}
}

package faults_test

import (
	"reflect"
	"strings"
	"testing"

	"ibasim/internal/experiments"
	"ibasim/internal/fabric"
	"ibasim/internal/faults"
	"ibasim/internal/ib"
	"ibasim/internal/subnet"
	"ibasim/internal/topology"
	"ibasim/internal/traffic"
)

func irregularTopo(t testing.TB, n, k int, seed uint64) *topology.Topology {
	t.Helper()
	topo, err := topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches: n, HostsPerSwitch: 4, InterSwitch: k, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func campaignSpec(t testing.TB, topo *topology.Topology, mr int, camp *faults.Campaign, faultSeed uint64) experiments.RunSpec {
	t.Helper()
	cfg := fabric.DefaultConfig()
	cfg.AdaptiveSwitches = true
	return experiments.RunSpec{
		Topo:    topo,
		LMC:     1,
		MR:      mr,
		Fabric:  cfg,
		Traffic: traffic.Config{Pattern: traffic.Uniform{NumHosts: topo.NumHosts()}, PacketSize: 32, AdaptiveFraction: 1, LoadBytesPerNsPerHost: 0.02, Seed: 1},
		Warmup:  30_000, Measure: 250_000, DrainGrace: 80_000,
		Seed:      1,
		Faults:    camp,
		FaultSeed: faultSeed,
	}
}

func TestParseSpec(t *testing.T) {
	c, err := faults.Parse("down@20000:0-3; up@120000:0-3; flap@5000:1-2:300; swdown@7000:4; swup@8000:4; reconfig@9000; rand:2:1500@10000-20000; autoreconfig:2000; sweep:4000:500; watchdog:3000:90000")
	if err != nil {
		t.Fatal(err)
	}
	want := []faults.Event{
		{At: 20_000, Kind: faults.LinkDown, A: 0, B: 3},
		{At: 120_000, Kind: faults.LinkUp, A: 0, B: 3},
		{At: 5_000, Kind: faults.LinkDown, A: 1, B: 2},
		{At: 5_300, Kind: faults.LinkUp, A: 1, B: 2},
		{At: 7_000, Kind: faults.SwitchDown, Switch: 4},
		{At: 8_000, Kind: faults.SwitchUp, Switch: 4},
		{At: 9_000, Kind: faults.Reconfig},
	}
	if !reflect.DeepEqual(c.Events, want) {
		t.Fatalf("events = %+v, want %+v", c.Events, want)
	}
	if c.Random != (faults.RandomFlaps{N: 2, DownFor: 1_500, From: 10_000, To: 20_000}) {
		t.Fatalf("random = %+v", c.Random)
	}
	if c.AutoReconfig != 2_000 || c.SweepDelay != 4_000 || c.PerSwitchDelay != 500 {
		t.Fatalf("recovery params = %d/%d/%d", c.AutoReconfig, c.SweepDelay, c.PerSwitchDelay)
	}
	if c.Watchdog.SampleEvery != 3_000 || c.Watchdog.Horizon != 90_000 {
		t.Fatalf("watchdog = %+v", c.Watchdog)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",                      // no events
		"autoreconfig:2000",     // recovery params only, no events
		"down@20000",            // missing link
		"down@x:0-1",            // bad time
		"flap@100:0-1",          // flap needs a duration
		"flap@100:0-1:0",        // zero duration
		"swdown@100",            // missing switch
		"rand:3:500@9000",       // missing range end
		"rand:0:500@1000-2000",  // zero count
		"watchdog:0:100",        // zero sample period
		"teleport@100:0-1",      // unknown op
		"down@-5:0-1",           // negative time
		"reconfig@100:7",        // reconfig takes no operand
		"sweep:100",             // missing per-switch delay
		"rand:2:1500@9000-9000", // empty window
		"up@100:0-1;durp@5:0-1", // trailing bad directive
	}
	for _, spec := range bad {
		if _, err := faults.Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestParseJSON(t *testing.T) {
	data := []byte(`{
		"events": [
			{"atNs": 20000, "kind": "link-down", "a": 0, "b": 3},
			{"atNs": 50000, "kind": "switch-down", "switch": 2},
			{"atNs": 90000, "kind": "reconfig"}
		],
		"randomFlaps": {"n": 3, "downForNs": 1500, "fromNs": 1000, "toNs": 8000},
		"autoReconfigNs": 2500,
		"sweepDelayNs": 4000,
		"perSwitchDelayNs": 500,
		"watchdog": {"sampleEveryNs": 2000, "horizonNs": 80000}
	}`)
	c, err := faults.ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Events) != 3 || c.Events[1].Kind != faults.SwitchDown || c.Events[1].Switch != 2 {
		t.Fatalf("events = %+v", c.Events)
	}
	if c.Random.N != 3 || c.AutoReconfig != 2_500 || c.Watchdog.Horizon != 80_000 {
		t.Fatalf("campaign = %+v", c)
	}
	if _, err := faults.ParseJSON([]byte(`{"events":[{"atNs":1,"kind":"melt"}]}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := faults.ParseJSON([]byte(`{}`)); err == nil {
		t.Fatal("empty campaign accepted")
	}
}

// TestParseJSONStrict pins the hardened loader: unknown fields,
// non-JSON numbers, fractional times and out-of-range values are
// rejected with positional messages instead of being silently zeroed
// or truncated, in the ordered-rules style of the FeatureSet table.
func TestParseJSONStrict(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string // required error substring
	}{
		{"unknown-top-level-field",
			`{"events":[{"atNs":1,"kind":"reconfig"}],"autoReconfgNs":100}`,
			`unknown field "autoReconfgNs"`},
		{"unknown-event-field",
			`{"events":[{"atNs":1,"kind":"reconfig","swich":2}]}`,
			`unknown field "swich"`},
		{"nan-time",
			`{"events":[{"atNs":NaN,"kind":"reconfig"}]}`,
			"line 1 col"},
		{"fractional-time",
			`{"events":[{"atNs":1.5,"kind":"reconfig"}]}`,
			"line 1 col"},
		{"overflow-time",
			`{"events":[{"atNs":1e400,"kind":"reconfig"}]}`,
			"line 1 col"},
		{"trailing-garbage",
			`{"events":[{"atNs":1,"kind":"reconfig"}]} true`,
			"trailing data"},
		{"negative-event-time",
			`{"events":[{"atNs":5,"kind":"reconfig"},{"atNs":-3,"kind":"reconfig"}]}`,
			"events[1].atNs = -3 is negative"},
		{"unknown-kind-positional",
			`{"events":[{"atNs":5,"kind":"reconfig"},{"atNs":6,"kind":"melt"}]}`,
			`events[1].kind: unknown event kind "melt"`},
		{"negative-auto-reconfig",
			`{"events":[{"atNs":1,"kind":"reconfig"}],"autoReconfigNs":-1}`,
			"autoReconfigNs = -1 is negative"},
		{"negative-sweep-delay",
			`{"events":[{"atNs":1,"kind":"reconfig"}],"sweepDelayNs":-7}`,
			"sweepDelayNs = -7 is negative"},
		{"negative-watchdog",
			`{"events":[{"atNs":1,"kind":"reconfig"}],"watchdog":{"sampleEveryNs":-2,"horizonNs":10}}`,
			"watchdog {sampleEveryNs=-2, horizonNs=10} has a negative field"},
		{"zero-flap-count",
			`{"randomFlaps":{"n":0,"downForNs":10,"fromNs":0,"toNs":100}}`,
			"randomFlaps.n = 0 must be positive"},
		{"zero-flap-duration",
			`{"randomFlaps":{"n":2,"downForNs":0,"fromNs":0,"toNs":100}}`,
			"randomFlaps.downForNs = 0 must be positive"},
		{"empty-flap-window",
			`{"randomFlaps":{"n":2,"downForNs":10,"fromNs":100,"toNs":100}}`,
			"randomFlaps window [fromNs=100, toNs=100) is empty or negative"},
		{"negative-flap-window",
			`{"randomFlaps":{"n":2,"downForNs":10,"fromNs":-5,"toNs":100}}`,
			"randomFlaps window [fromNs=-5, toNs=100) is empty or negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := faults.ParseJSON([]byte(tc.data))
			if err == nil {
				t.Fatalf("ParseJSON(%s) accepted", tc.data)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParseJSON(%s) = %v, want error containing %q", tc.data, err, tc.want)
			}
		})
	}

	// Positional reporting: the error for a second-line defect names
	// line 2.
	multi := "{\n\"events\": [{\"atNs\": 1.5, \"kind\": \"reconfig\"}]\n}"
	if _, err := faults.ParseJSON([]byte(multi)); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("multi-line positional error = %v, want line 2", err)
	}
}

// TestCampaignDegradedModeRerunsByteIdentical is the ISSUE's
// acceptance campaign: seeded random flaps plus a switch outage longer
// than the send timeout. Two runs must agree exactly; the run must see
// drops, retries and a finite recovery latency with a clean watchdog.
func TestCampaignDegradedModeRerunsByteIdentical(t *testing.T) {
	topo := irregularTopo(t, 16, 4, 42)
	spec := "rand:3:20000@40000-120000; swdown@50000:3; swup@200000:3; reconfig@210000; watchdog:5000:300000"
	run := func() experiments.RunResult {
		camp, err := faults.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := experiments.Run(campaignSpec(t, topo, 2, camp, 7))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("seeded campaign not reproducible:\nfirst  %+v\nsecond %+v", first, second)
	}
	d := first.Degraded
	if d.FaultsInjected == 0 || d.Repairs == 0 || d.Reconfigs == 0 {
		t.Fatalf("campaign did not execute: %+v", d)
	}
	if d.Dropped() == 0 || d.Retries == 0 {
		t.Fatalf("expected drops and retries under a switch outage, got %+v", d)
	}
	if d.RecoveryLatencyNs < 0 {
		t.Fatalf("recovery latency never observed: %+v", d)
	}
	if d.WatchdogViolations != 0 {
		t.Fatalf("watchdog violations: %d (%s)", d.WatchdogViolations, d.FirstViolation)
	}
	if d.WatchdogSamples == 0 {
		t.Fatal("watchdog never sampled")
	}
}

// TestCampaignSmokeCI is the CI smoke campaign: a short seeded flap
// storm with auto-reconfiguration on a 16-switch irregular topology.
// It must replay byte-identically and keep every invariant clean.
// scripts/ci.sh runs exactly this test under -race.
func TestCampaignSmokeCI(t *testing.T) {
	topo := irregularTopo(t, 16, 4, 42)
	run := func() experiments.RunResult {
		camp, err := faults.Parse("rand:4:15000@40000-150000; autoreconfig:8000")
		if err != nil {
			t.Fatal(err)
		}
		spec := campaignSpec(t, topo, 2, camp, 11)
		spec.Measure = 150_000
		res, err := experiments.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("flap campaign not reproducible:\nfirst  %+v\nsecond %+v", first, second)
	}
	d := first.Degraded
	if d.FaultsInjected != 4 || d.Repairs != 4 {
		t.Fatalf("expected 4 flaps, got %+v", d)
	}
	if d.Reconfigs == 0 {
		t.Fatalf("auto-reconfig never completed: %+v", d)
	}
	if d.WatchdogViolations != 0 {
		t.Fatalf("watchdog violations: %d (%s)", d.WatchdogViolations, d.FirstViolation)
	}
	if first.PacketsMeasured == 0 {
		t.Fatal("no traffic measured")
	}
}

// TestDeadlockFailsLoudly wedges a packet behind a dead link with
// retries disabled: the event queue drains with the packet still in
// flight, and the watchdog must flag a deadlock instead of letting the
// run end silently.
func TestDeadlockFailsLoudly(t *testing.T) {
	topo, err := topology.Line(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ib.NewAddressPlan(topo.NumHosts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fabric.NewNetwork(topo, plan, fabric.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subnet.Configure(net, subnet.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if err := net.SetLinkDown(0, 1); err != nil {
		t.Fatal(err)
	}
	dog := faults.NewWatchdog(net, faults.WatchdogConfig{SampleEvery: 1_000, Horizon: 50_000})
	dog.Start()
	net.Hosts[0].Inject(net.NewPacket(0, 4, 32, false)) // must cross the dead link
	net.Engine.Run(1_000_000)

	if net.InFlight() == 0 {
		t.Fatal("packet escaped the wedge; test topology broken")
	}
	vs := dog.Violations()
	if len(vs) == 0 {
		t.Fatal("watchdog saw no violation in a deadlocked run")
	}
	if vs[0].Kind != "deadlock" {
		t.Fatalf("violation kind = %q (%s), want deadlock", vs[0].Kind, vs[0].Detail)
	}
	if vs[0].At >= 50_000 {
		t.Fatalf("deadlock flagged at t=%d, after the horizon", vs[0].At)
	}
}

// TestFatalWatchdogFailsRunLoudly: with Watchdog.Fatal set, an
// unrecovered switch outage must turn into a returned error from the
// runner (the recovered panic), not a hang or a silent result.
func TestFatalWatchdogFailsRunLoudly(t *testing.T) {
	topo := irregularTopo(t, 16, 4, 42)
	camp, err := faults.Parse("swdown@40000:3")
	if err != nil {
		t.Fatal(err)
	}
	camp.Watchdog.Fatal = true
	_, err = experiments.Run(campaignSpec(t, topo, 2, camp, 1))
	if err == nil {
		t.Fatal("fatal watchdog produced no error")
	}
	if !strings.Contains(err.Error(), "faults: watchdog:") {
		t.Fatalf("error = %v, want a watchdog violation", err)
	}
}

// TestDisconnectingCampaignError golden-tests the message a campaign
// reports when its reconfiguration finds the surviving topology
// disconnected (ibsim prints it verbatim and exits nonzero).
func TestDisconnectingCampaignError(t *testing.T) {
	topo := irregularTopo(t, 8, 4, 1)
	camp, err := faults.Parse("swdown@1000:3; reconfig@2000")
	if err != nil {
		t.Fatal(err)
	}
	spec := campaignSpec(t, topo, 2, camp, 1)
	spec.Measure = 10_000
	_, err = experiments.Run(spec)
	if err == nil {
		t.Fatal("disconnecting campaign reported no error")
	}
	const want = "faults: reconfig at t=2000: subnet: failures disconnect the network"
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err.Error(), want)
	}
}

func TestApplyValidatesEvents(t *testing.T) {
	topo := irregularTopo(t, 8, 4, 1)
	for _, spec := range []string{
		"down@100:0-7",  // no such link (0-7 not guaranteed) — validated below
		"swdown@100:99", // switch out of range
		"swdown@100:-1", // negative switch
	} {
		camp, err := faults.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		// Skip the link case if the generator happened to wire 0-7.
		if camp.Events[0].Kind == faults.LinkDown && topo.HasLink(camp.Events[0].A, camp.Events[0].B) {
			continue
		}
		rs := campaignSpec(t, topo, 2, camp, 1)
		if _, err := experiments.Run(rs); err == nil {
			t.Errorf("campaign %q accepted on topology without its target", spec)
		}
	}
}

// TestExpandDeterministic: the same seed yields the same random flap
// schedule; different seeds yield a different one.
func TestExpandDeterministic(t *testing.T) {
	topo := irregularTopo(t, 16, 4, 42)
	camp, err := faults.Parse("rand:5:2000@10000-90000; autoreconfig:3000")
	if err != nil {
		t.Fatal(err)
	}
	spec := campaignSpec(t, topo, 2, camp, 21)
	spec.Measure = 60_000
	a, err := experiments.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same fault seed diverged:\n%+v\n%+v", a, b)
	}
	spec.FaultSeed = 22
	c, err := experiments.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Degraded, c.Degraded) && a.AvgLatencyNs == c.AvgLatencyNs {
		t.Fatal("different fault seeds produced identical runs")
	}
}

package trace

import (
	"bytes"
	"strings"
	"testing"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
	"ibasim/internal/subnet"
	"ibasim/internal/topology"
)

func tracedNet(t *testing.T, capacity int) (*fabric.Network, *Recorder) {
	t.Helper()
	topo, err := topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches: 8, HostsPerSwitch: 4, InterSwitch: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ib.NewAddressPlan(topo.NumHosts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fabric.NewNetwork(topo, plan, fabric.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subnet.Configure(net, subnet.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(capacity)
	rec.Attach(net)
	return net, rec
}

func TestRecorderCapturesLifecycle(t *testing.T) {
	net, rec := tracedNet(t, 1024)
	pkt := net.NewPacket(0, 31, 32, true)
	net.Hosts[0].Inject(pkt)
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(events) < 3 { // created + >=1 hop + delivered
		t.Fatalf("only %d events", len(events))
	}
	if events[0].Kind != Created {
		t.Fatalf("first event %v", events[0].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != Delivered {
		t.Fatalf("last event %v", last.Kind)
	}
	hops := 0
	for _, e := range events {
		if e.Kind == Hop {
			hops++
		}
	}
	if hops != pkt.Hops {
		t.Fatalf("traced %d hops, packet reports %d", hops, pkt.Hops)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	net, rec := tracedNet(t, 8)
	r := sim.NewRNG(2)
	for i := 0; i < 100; i++ {
		src := r.Intn(32)
		dst := r.Intn(32)
		if dst == src {
			dst = (dst + 1) % 32
		}
		net.Hosts[src].Inject(net.NewPacket(src, dst, 32, true))
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Events()); got != 8 {
		t.Fatalf("retained %d events with capacity 8", got)
	}
	if rec.Total() <= 8 {
		t.Fatalf("Total = %d, want > capacity", rec.Total())
	}
	// Retained events must be in non-decreasing time order.
	events := rec.Events()
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("ring events out of order")
		}
	}
}

func TestRecorderFilter(t *testing.T) {
	net, rec := tracedNet(t, 1024)
	rec.Filter = func(e Event) bool { return e.Kind == Delivered }
	net.Hosts[0].Inject(net.NewPacket(0, 31, 32, false))
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, e := range rec.Events() {
		if e.Kind != Delivered {
			t.Fatalf("filter leaked %v", e.Kind)
		}
	}
}

func TestRecorderChainsExistingCallbacks(t *testing.T) {
	net, _ := tracedNet(t, 16)
	// tracedNet attached a recorder; attach a second observer BEFORE
	// it would be the realistic order, so instead attach another
	// recorder on top and verify both see events.
	rec2 := NewRecorder(16)
	rec2.Attach(net)
	net.Hosts[0].Inject(net.NewPacket(0, 31, 32, true))
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if rec2.Total() == 0 {
		t.Fatal("second recorder saw nothing")
	}
}

func TestAdaptiveShare(t *testing.T) {
	net, rec := tracedNet(t, 4096)
	r := sim.NewRNG(3)
	for i := 0; i < 500; i++ {
		src := r.Intn(32)
		dst := r.Intn(32)
		if dst == src {
			dst = (dst + 1) % 32
		}
		net.Hosts[src].Inject(net.NewPacket(src, dst, 32, true))
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	share := rec.AdaptiveShare()
	if share <= 0 || share > 1 {
		t.Fatalf("AdaptiveShare = %v", share)
	}
}

func TestDumpFormat(t *testing.T) {
	net, rec := tracedNet(t, 64)
	net.Hosts[0].Inject(net.NewPacket(0, 31, 32, true))
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"created", "hop", "delivered", "pkt="} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

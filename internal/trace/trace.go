// Package trace records packet lifecycle events (creation, per-switch
// forwarding, delivery) from a running fabric, for debugging routing
// behaviour and for the ibsim -trace flag. The recorder keeps a
// bounded ring of events so tracing a saturated run cannot exhaust
// memory.
package trace

import (
	"fmt"
	"io"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	Created Kind = iota
	Hop
	Delivered
)

func (k Kind) String() string {
	switch k {
	case Created:
		return "created"
	case Hop:
		return "hop"
	case Delivered:
		return "delivered"
	default:
		return "unknown"
	}
}

// Event is one recorded observation.
type Event struct {
	At       sim.Time
	Kind     Kind
	Packet   uint64
	Src, Dst int
	Switch   int       // Hop only
	Port     ib.PortID // Hop only
	Adaptive bool      // Hop: an adaptive routing option was used
}

// String renders the event as one trace line.
func (e Event) String() string {
	switch e.Kind {
	case Hop:
		mode := "escape"
		if e.Adaptive {
			mode = "adaptive"
		}
		return fmt.Sprintf("%10d %-9s pkt=%d %d->%d sw=%d port=%d via=%s",
			int64(e.At), e.Kind, e.Packet, e.Src, e.Dst, e.Switch, e.Port, mode)
	default:
		return fmt.Sprintf("%10d %-9s pkt=%d %d->%d",
			int64(e.At), e.Kind, e.Packet, e.Src, e.Dst)
	}
}

// Recorder captures events into a bounded ring buffer.
type Recorder struct {
	ring  []Event
	next  int
	full  bool
	total uint64

	// Filter, when set, drops events for which it returns false.
	Filter func(Event) bool

	// AdaptiveHops and EscapeHops count forwarding decisions by kind,
	// a cheap aggregate view of how often the adaptive options win.
	AdaptiveHops uint64
	EscapeHops   uint64
}

// NewRecorder allocates a recorder holding the last capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{ring: make([]Event, capacity)}
}

// Attach hooks the recorder onto a network, chaining callbacks already
// installed (a metrics collector, for instance) so both observers see
// every event. Attaching forces per-hop de-fusion (Network.Defuse):
// a tracer's contract is the exact per-hop event sequence, so the
// hop-fusion fast path must stand down rather than silently eliding
// events — the recorded sequence is identical with -fuse on or off.
func (r *Recorder) Attach(net *fabric.Network) {
	net.Defuse()
	prevCreated := net.OnCreated
	prevDelivered := net.OnDelivered
	prevHop := net.OnHop
	net.OnCreated = func(p *ib.Packet) {
		if prevCreated != nil {
			prevCreated(p)
		}
		r.record(Event{At: p.CreatedAt, Kind: Created, Packet: p.ID, Src: p.Src, Dst: p.Dst})
	}
	net.OnDelivered = func(p *ib.Packet) {
		if prevDelivered != nil {
			prevDelivered(p)
		}
		r.record(Event{At: p.DeliveredAt, Kind: Delivered, Packet: p.ID, Src: p.Src, Dst: p.Dst})
	}
	net.OnHop = func(p *ib.Packet, sw int, out ib.PortID, adaptive bool) {
		if prevHop != nil {
			prevHop(p, sw, out, adaptive)
		}
		if adaptive {
			r.AdaptiveHops++
		} else {
			r.EscapeHops++
		}
		r.record(Event{
			At: net.Engine.Now(), Kind: Hop, Packet: p.ID,
			Src: p.Src, Dst: p.Dst, Switch: sw, Port: out, Adaptive: adaptive,
		})
	}
}

func (r *Recorder) record(e Event) {
	if r.Filter != nil && !r.Filter(e) {
		return
	}
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.total++
}

// Total returns how many events were recorded (including evicted).
func (r *Recorder) Total() uint64 { return r.total }

// Events returns the retained events in recording order.
func (r *Recorder) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.ring[:r.next]...)
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Dump writes the retained events, one per line.
func (r *Recorder) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// AdaptiveShare returns the fraction of switch forwarding decisions
// that used an adaptive routing option.
func (r *Recorder) AdaptiveShare() float64 {
	total := r.AdaptiveHops + r.EscapeHops
	if total == 0 {
		return 0
	}
	return float64(r.AdaptiveHops) / float64(total)
}

package routing_test

// Cross-family routing-engine conformance suite: one table of
// shapes per family, one set of contract assertions. Every engine —
// up*/down* over irregular graphs, D-mod-K over fat-trees,
// dimension-order over tori — must satisfy the same Engine contract:
// an acyclic escape CDG (Duato's condition, the deadlock-freedom
// guarantee), legal escape tables, minimal adaptive option sets, and,
// for families that promise it, a minimal escape path that appears in
// its own adaptive option set.

import (
	"fmt"
	"strings"
	"testing"

	"ibasim/internal/routing"
	"ibasim/internal/topology"
)

// conformanceCase is one family+shape under test. build produces the
// pristine fabric; builder is the family's routing.Builder for it.
type conformanceCase struct {
	name    string
	engine  string // Engine.Name() expected on the pristine fabric
	build   func() (*topology.Topology, error)
	builder func() routing.Builder
}

func conformanceCases() []conformanceCase {
	var cases []conformanceCase
	for _, seed := range []uint64{1, 2, 3, 7} {
		spec := topology.IrregularSpec{NumSwitches: 16, HostsPerSwitch: 4, InterSwitch: 4, Seed: seed}
		cases = append(cases, conformanceCase{
			name:    fmt.Sprintf("updown/irregular-seed%d", seed),
			engine:  "updown",
			build:   func() (*topology.Topology, error) { return topology.GenerateIrregular(spec) },
			builder: func() routing.Builder { return routing.UpDownBuilder(-1) },
		})
	}
	for _, ft := range []topology.FatTreeSpec{
		{Arity: 2, Levels: 2}, {Arity: 2, Levels: 3}, {Arity: 2, Levels: 4},
		{Arity: 3, Levels: 2}, {Arity: 3, Levels: 3}, {Arity: 4, Levels: 2},
	} {
		ft := ft
		cases = append(cases, conformanceCase{
			name:    ft.String(),
			engine:  "fattree",
			build:   func() (*topology.Topology, error) { return topology.GenerateFatTree(ft) },
			builder: func() routing.Builder { return routing.FatTreeBuilder(ft) },
		})
	}
	for _, to := range []topology.TorusSpec{
		{Dims: []int{2, 2}, HostsPerSwitch: 1},
		{Dims: []int{4, 4}, HostsPerSwitch: 1},
		{Dims: []int{3, 5}, HostsPerSwitch: 2},
		{Dims: []int{2, 3, 4}, HostsPerSwitch: 1},
		{Dims: []int{4, 4, 2}, HostsPerSwitch: 1},
	} {
		to := to
		cases = append(cases, conformanceCase{
			name:    to.String(),
			engine:  "torus",
			build:   func() (*topology.Topology, error) { return topology.GenerateTorus(to) },
			builder: func() routing.Builder { return routing.TorusBuilder(to) },
		})
	}
	return cases
}

// TestEngineConformance runs the full contract against every family
// and shape in the table.
func TestEngineConformance(t *testing.T) {
	for _, tc := range conformanceCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			topo, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			eng, err := tc.builder()(topo)
			if err != nil {
				t.Fatal(err)
			}
			if eng.Name() != tc.engine {
				t.Fatalf("pristine fabric built engine %q, want %q", eng.Name(), tc.engine)
			}

			// Contract 1: deadlock-free escape CDG (Duato's condition).
			if err := eng.Verify(); err != nil {
				t.Fatalf("escape CDG cyclic: %v", err)
			}
			det := eng.Deterministic()
			if err := routing.VerifyDeadlockFreeAll([]*routing.Deterministic{det}); err != nil {
				t.Fatalf("VerifyDeadlockFreeAll: %v", err)
			}

			// Contract 2: legal, loop-free escape tables with consistent
			// path lengths.
			if err := det.Validate(); err != nil {
				t.Fatalf("escape tables invalid: %v", err)
			}

			// Contract 3: adaptive options are exactly the minimal next
			// hops and every routed pair has an escape hop.
			fa := eng.Adaptive()
			if err := fa.Validate(); err != nil {
				t.Fatalf("adaptive options invalid: %v", err)
			}

			// Contract 4: every routed destination is host-bearing and
			// reachable, and vice versa.
			dists := topo.AllDistances()
			for d := 0; d < topo.NumSwitches; d++ {
				if det.Routes(d) != (topo.HostCount(d) > 0) {
					t.Fatalf("Routes(%d)=%v but HostCount=%d", d, det.Routes(d), topo.HostCount(d))
				}
				if det.Routes(d) && !routing.MinimalPathExists(topo, 0, d) {
					t.Fatalf("destination %d routed but unreachable", d)
				}
			}

			// Contract 5 (conditional): families advertising a minimal
			// escape must deliver shortest-path escape tables whose hop is
			// one of the minimal adaptive options; non-minimal families
			// must still never beat the shortest path.
			for s := 0; s < topo.NumSwitches; s++ {
				for d := 0; d < topo.NumSwitches; d++ {
					if s == d || !det.Routes(d) {
						continue
					}
					if det.PathLen[s][d] < dists[s][d] {
						t.Fatalf("escape path %d->%d length %d beats shortest %d", s, d, det.PathLen[s][d], dists[s][d])
					}
					if !eng.MinimalEscape() {
						continue
					}
					if det.PathLen[s][d] != dists[s][d] {
						t.Fatalf("minimal-escape engine inflates %d->%d: table %d, shortest %d", s, d, det.PathLen[s][d], dists[s][d])
					}
					if !contains(fa.Options(s, d, 0), fa.Escape(s, d)) {
						t.Fatalf("escape hop %d of %d->%d missing from adaptive options %v", fa.Escape(s, d), s, d, fa.Options(s, d, 0))
					}
				}
			}

			// Contract 6: SL assignment stays within the fabric's single
			// data SL for every pair (the current engines all use SL 0).
			for s := 0; s < topo.NumSwitches; s++ {
				for d := 0; d < topo.NumSwitches; d++ {
					if sl := eng.SL(s, d); sl != 0 {
						t.Fatalf("SL(%d,%d)=%d, want 0", s, d, sl)
					}
				}
			}
		})
	}
}

// TestTorusEscapeAvoidsWraps pins the property that makes the
// dimension-order escape CDG acyclic without extra virtual channels:
// the escape tables route over mesh links only, never a wraparound.
func TestTorusEscapeAvoidsWraps(t *testing.T) {
	for _, spec := range []topology.TorusSpec{
		{Dims: []int{4, 4}, HostsPerSwitch: 1},
		{Dims: []int{3, 5}, HostsPerSwitch: 1},
		{Dims: []int{3, 3, 4}, HostsPerSwitch: 1},
	} {
		topo, err := topology.GenerateTorus(spec)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := routing.TorusBuilder(spec)(topo)
		if err != nil {
			t.Fatal(err)
		}
		det := eng.Deterministic()
		for s := 0; s < topo.NumSwitches; s++ {
			for d := 0; d < topo.NumSwitches; d++ {
				hop := det.NextHop[s][d]
				if hop < 0 || s == d {
					continue
				}
				if spec.IsWrapLink(s, hop) {
					t.Fatalf("%s: escape %d->%d uses wrap link %s--%s",
						spec, s, d, spec.Name(s), spec.Name(hop))
				}
			}
		}
	}
}

// TestStructuredBuildersDegradeToUpDown pins the fault-tolerance seam:
// when the fabric no longer matches the pristine family shape (a link
// has failed), the family builders fall back to topology-agnostic
// up*/down* so reconfiguration keeps working mid-campaign.
func TestStructuredBuildersDegradeToUpDown(t *testing.T) {
	ft := topology.FatTreeSpec{Arity: 2, Levels: 3}
	ftTopo, err := topology.GenerateFatTree(ft)
	if err != nil {
		t.Fatal(err)
	}
	to := topology.TorusSpec{Dims: []int{4, 4}, HostsPerSwitch: 2}
	toTopo, err := topology.GenerateTorus(to)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		builder routing.Builder
		topo    *topology.Topology
	}{
		{"fattree", routing.FatTreeBuilder(ft), ftTopo},
		{"torus", routing.TorusBuilder(to), toTopo},
	}
	for _, tc := range cases {
		degraded := tc.topo.Without(tc.topo.Links[0])
		eng, err := tc.builder(degraded)
		if err != nil {
			t.Fatalf("%s: degraded build failed: %v", tc.name, err)
		}
		if eng.Name() != "updown" {
			t.Fatalf("%s: degraded fabric got engine %q, want updown fallback", tc.name, eng.Name())
		}
		if err := eng.Verify(); err != nil {
			t.Fatalf("%s: fallback escape CDG cyclic: %v", tc.name, err)
		}
		if err := eng.Adaptive().Validate(); err != nil {
			t.Fatalf("%s: fallback adaptive options invalid: %v", tc.name, err)
		}
	}
}

// TestFormatCycleNamed pins the family-aware cycle rendering the CDG
// verifier emits: coordinates for tori, level/position for fat-trees,
// bare IDs when no names exist.
func TestFormatCycleNamed(t *testing.T) {
	spec := topology.TorusSpec{Dims: []int{3, 3}, HostsPerSwitch: 1}
	topo, err := topology.GenerateTorus(spec)
	if err != nil {
		t.Fatal(err)
	}
	n := topo.NumSwitches
	cycle := []int{routing.ChannelID(0, 1, n), routing.ChannelID(1, 2, n)}
	got := routing.FormatCycleNamed(cycle, n, topo.NodeName)
	want := " ((0,0)->(1,0)) ((1,0)->(2,0))"
	if got != want {
		t.Fatalf("named cycle %q, want %q", got, want)
	}
	anon := routing.FormatCycle(cycle, n)
	if !strings.Contains(anon, "(0->1)") || !strings.Contains(anon, "(1->2)") {
		t.Fatalf("anonymous cycle %q lacks numeric channels", anon)
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

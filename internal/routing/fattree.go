package routing

import (
	"fmt"

	"ibasim/internal/topology"
)

// This file implements the fat-tree family: D-mod-K deterministic
// escape routing over a k-ary n-tree (the scheme the related work
// evaluates on structured HPC fabrics). Write a switch as (level l,
// within-level position w) with w's base-k digits w_0..w_{n-2}; hosts
// attach only to the level-0 leaves, so tables route exclusively to
// leaf destinations.
//
// Toward the leaf at position v:
//
//   - a switch whose digits agree with v at every position >= l has an
//     all-down path: the unique minimal descent rewrites digit l-1 to
//     v_{l-1} one level per hop (l hops total);
//   - every other switch ascends, and D-mod-K picks the up-neighbour
//     that sets digit l to v_l — the ascent choice is a pure function
//     of the destination, which is what spreads distinct destinations
//     across distinct roots and keeps the tables destination-indexed.
//
// The turning level is L = 1 + (highest digit position where w and v
// disagree): digit i can only be rewritten crossing level i+1, so every
// path must climb to at least L, and ours climbs exactly to L. Path
// length is therefore (L-l) + L, the graph distance — D-mod-K escape
// paths are minimal, so the escape hop always appears among the minimal
// adaptive options (MinimalEscape() == true; the conformance suite
// asserts both).
//
// Deadlock freedom: every table path is up moves then down moves on the
// level orientation, so escape channel dependencies go up-up, up-down,
// or down-down, never down-up; levels strictly increase along up
// channels and strictly decrease along down channels, hence the escape
// CDG is acyclic. Verify() re-checks this mechanically.

// NewFatTreeTables computes the D-mod-K destination-indexed tables for
// a pristine k-ary n-tree. Destinations without hosts (levels >= 1)
// get no entries (NextHop -1), mirroring forwarding tables that are
// indexed by host LIDs only.
func NewFatTreeTables(t *topology.Topology, spec topology.FatTreeSpec) (*Deterministic, error) {
	if !topology.MatchesFatTree(t, spec) {
		return nil, fmt.Errorf("routing: topology is not the pristine fat-tree %s", spec)
	}
	n := t.NumSwitches
	next := make([][]int, n)
	dist := make([][]int, n)
	for s := range next {
		next[s] = make([]int, n)
		dist[s] = make([]int, n)
		for d := range next[s] {
			next[s][d] = -1
			dist[s][d] = -1
		}
	}
	for d := 0; d < n; d++ {
		if spec.SwitchLevel(d) != 0 {
			continue // host-less spine switch: no destination entries
		}
		for s := 0; s < n; s++ {
			if s == d {
				dist[s][d] = 0
				continue
			}
			l := spec.SwitchLevel(s)
			w := spec.SwitchPos(s)
			// Highest digit position where s's and d's positions differ.
			hi := -1
			for i := spec.Levels - 2; i >= 0; i-- {
				if spec.Digit(s, i) != spec.Digit(d, i) {
					hi = i
					break
				}
			}
			if hi < l {
				// Digits >= l agree: descend, fixing digit l-1.
				down := spec.SetDigit(w, l-1, spec.Digit(d, l-1))
				next[s][d] = spec.SwitchID(l-1, down)
				dist[s][d] = l
			} else {
				// Ascend; D-mod-K sets digit l to the destination's.
				up := spec.SetDigit(w, l, spec.Digit(d, l))
				next[s][d] = spec.SwitchID(l+1, up)
				turn := hi + 1
				dist[s][d] = (turn - l) + turn
			}
		}
	}
	return &Deterministic{Topo: t, NextHop: next, PathLen: dist}, nil
}

// FatTreeBuilder returns the fat-tree family builder. On the pristine
// fabric it installs D-mod-K escape tables with the full minimal
// adaptive option sets (all k upward paths below the turning level).
// On a degraded fabric — fault campaigns knock links out — the regular
// structure D-mod-K depends on is gone, so the builder falls back to
// up*/down* on the surviving graph, exactly like the irregular family.
func FatTreeBuilder(spec topology.FatTreeSpec) Builder {
	return func(t *topology.Topology) (Engine, error) {
		if !topology.MatchesFatTree(t, spec) {
			return UpDownBuilder(-1)(t)
		}
		det, err := NewFatTreeTables(t, spec)
		if err != nil {
			return nil, err
		}
		return &engine{name: "fattree", det: det, fa: NewFA(det), minimal: true}, nil
	}
}

package routing

import (
	"testing"
	"testing/quick"

	"ibasim/internal/topology"
)

func TestEscapeCDGAcyclicPaperSizes(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		for _, k := range []int{4, 6} {
			top := irregular(t, n, k, uint64(n*k))
			det := mustUD(t, top).Tables()
			if err := VerifyDeadlockFree(det); err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
		}
	}
}

func TestFindCycleDetectsKnownCycle(t *testing.T) {
	dep := map[int][]int{1: {2}, 2: {3}, 3: {1}}
	cycle := FindCycle(dep)
	if cycle == nil {
		t.Fatal("missed a 3-cycle")
	}
	if cycle[0] != cycle[len(cycle)-1] {
		t.Fatalf("cycle %v does not close", cycle)
	}
	if len(cycle) != 4 {
		t.Fatalf("cycle %v has wrong length", cycle)
	}
	// Each consecutive pair must be a real edge.
	for i := 0; i+1 < len(cycle); i++ {
		found := false
		for _, n := range dep[cycle[i]] {
			if n == cycle[i+1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("cycle %v uses non-edge %d->%d", cycle, cycle[i], cycle[i+1])
		}
	}
}

func TestFindCycleAcyclicGraph(t *testing.T) {
	dep := map[int][]int{1: {2, 3}, 2: {4}, 3: {4}, 4: nil}
	if c := FindCycle(dep); c != nil {
		t.Fatalf("false cycle %v in a DAG", c)
	}
}

func TestFindCycleSelfLoop(t *testing.T) {
	dep := map[int][]int{7: {7}}
	if c := FindCycle(dep); c == nil {
		t.Fatal("missed self-loop")
	}
}

func TestFindCycleEmpty(t *testing.T) {
	if c := FindCycle(map[int][]int{}); c != nil {
		t.Fatalf("cycle %v in empty graph", c)
	}
}

func TestEscapeCDGCoversUsedChannels(t *testing.T) {
	// Every multi-hop route contributes its first channel's dependency.
	top := irregular(t, 16, 4, 31)
	det := mustUD(t, top).Tables()
	dep := EscapeCDG(det)
	n := top.NumSwitches
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			m := det.NextHop[s][d]
			if m == d {
				continue
			}
			c1 := channelID(s, m, n)
			c2 := channelID(m, det.NextHop[m][d], n)
			found := false
			for _, c := range dep[c1] {
				if c == c2 {
					found = true
				}
			}
			if !found {
				t.Fatalf("dependency (%d->%d)->(%d->%d) missing", s, m, m, det.NextHop[m][d])
			}
		}
	}
}

// TestDeadlockFreedomProperty is the paper's §3 deadlock-freedom claim
// checked mechanically across random topologies: the escape network's
// channel dependency graph is always acyclic.
func TestDeadlockFreedomProperty(t *testing.T) {
	f := func(seed uint64, dense bool) bool {
		k := 4
		if dense {
			k = 6
		}
		top, err := topology.GenerateIrregular(topology.IrregularSpec{
			NumSwitches: 16, HostsPerSwitch: 4, InterSwitch: k, Seed: seed,
		})
		if err != nil {
			return false
		}
		det := mustUD(t, top).Tables()
		return VerifyDeadlockFree(det) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTables64(b *testing.B) {
	top := irregular(b, 64, 4, 1)
	ud := mustUD(b, top)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ud.Tables()
	}
}

func BenchmarkNewFA64(b *testing.B) {
	top := irregular(b, 64, 4, 1)
	det := mustUD(b, top).Tables()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewFA(det)
	}
}

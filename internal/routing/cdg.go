package routing

import "fmt"

// This file implements the channel dependency graph (CDG) analysis
// used to verify deadlock freedom. Following Duato's theory (which §3
// of the paper invokes), the FA routing is deadlock-free iff its
// escape sub-network is: packets blocked on adaptive queues can always
// select the escape option, and the escape network — the up*/down*
// routing on escape queues — must have an acyclic channel dependency
// graph.
//
// A channel here is a directed inter-switch link (a -> b). The escape
// routing induces a dependency c1 -> c2 when some packet held by c1
// may request c2 next, i.e. when the deterministic tables route some
// destination over c1 = (s, m) and then c2 = (m, x).

// ChannelID encodes the directed link a->b of an n-switch topology as
// a single integer. FindCycle results over CDGs built with it decode
// with (c/n, c%n); FormatCycle renders them.
func ChannelID(a, b, n int) int { return a*n + b }

// channelID is the package-internal alias kept for existing callers.
func channelID(a, b, n int) int { return ChannelID(a, b, n) }

// CDGFromNextHops builds a channel dependency graph from an arbitrary
// next-hop relation: for every destination d in [0, numDests) and
// switch s, next(s, d) returns the next switch on the escape path
// toward d, with ok=false when s does not forward d further (s is the
// destination's switch, or has no route). A packet holding channel
// (s, m) that must travel on to x induces the dependency
// (s→m) → (m→x). The runtime auditor uses this against the LIVE
// forwarding tables (destinations are hosts, next hops read from the
// programmed escape slots); EscapeCDG uses it against a computed
// up*/down* routing (destinations are switches).
func CDGFromNextHops(numSwitches, numDests int, next func(s, d int) (int, bool)) map[int][]int {
	depSet := make(map[int]map[int]bool)
	for d := 0; d < numDests; d++ {
		for s := 0; s < numSwitches; s++ {
			m, ok := next(s, d)
			if !ok {
				continue
			}
			x, ok := next(m, d)
			if !ok {
				continue // delivered at m, no further channel needed
			}
			c1 := ChannelID(s, m, numSwitches)
			c2 := ChannelID(m, x, numSwitches)
			if depSet[c1] == nil {
				depSet[c1] = make(map[int]bool)
			}
			depSet[c1][c2] = true
		}
	}
	dep := make(map[int][]int, len(depSet))
	for c, set := range depSet {
		for c2 := range set {
			dep[c] = append(dep[c], c2)
		}
	}
	return dep
}

// EscapeCDG builds the dependency adjacency of the escape network:
// dep[c1] lists the channels some packet can request while holding c1.
// Destinations are the host-bearing switches — the only switches
// forwarding tables hold routes to (families like the fat-tree leave
// host-less spine switches without destination entries).
func EscapeCDG(det *Deterministic) map[int][]int {
	n := det.Topo.NumSwitches
	return CDGFromNextHops(n, n, func(s, d int) (int, bool) {
		if s == d || !det.Routes(d) {
			return 0, false
		}
		hop := det.NextHop[s][d]
		if hop < 0 {
			return 0, false
		}
		return hop, true
	})
}

// FindCycle returns a cycle in the dependency graph as a channel-ID
// sequence (first == last), or nil if the graph is acyclic.
func FindCycle(dep map[int][]int) []int {
	const (
		white = 0 // unvisited
		gray  = 1 // on stack
		black = 2 // done
	)
	color := make(map[int]int)
	parent := make(map[int]int)
	var cycleStart, cycleEnd = -1, -1

	var dfs func(c int) bool
	dfs = func(c int) bool {
		color[c] = gray
		for _, nxt := range dep[c] {
			switch color[nxt] {
			case white:
				parent[nxt] = c
				if dfs(nxt) {
					return true
				}
			case gray:
				cycleStart, cycleEnd = nxt, c
				return true
			}
		}
		color[c] = black
		return false
	}
	for c := range dep {
		if color[c] == white && dfs(c) {
			// Reconstruct the cycle by walking parents back from
			// cycleEnd to cycleStart.
			cycle := []int{cycleStart}
			for v := cycleEnd; v != cycleStart; v = parent[v] {
				cycle = append(cycle, v)
			}
			cycle = append(cycle, cycleStart)
			// Reverse into forward order.
			for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
				cycle[i], cycle[j] = cycle[j], cycle[i]
			}
			return cycle
		}
	}
	return nil
}

// VerifyDeadlockFree asserts that the escape network's CDG is acyclic
// and returns a descriptive error naming the offending cycle if not.
func VerifyDeadlockFree(det *Deterministic) error {
	return VerifyDeadlockFreeAll([]*Deterministic{det})
}

// VerifyDeadlockFreeAll checks the union channel dependency graph of
// several deterministic routings sharing one network — the situation
// of source-selected multipath, where every packet follows one of the
// routings end to end. The union must be acyclic for the mixture to
// be deadlock-free.
func VerifyDeadlockFreeAll(dets []*Deterministic) error {
	if len(dets) == 0 {
		return nil
	}
	union := make(map[int][]int)
	for _, det := range dets {
		for c, deps := range EscapeCDG(det) {
			union[c] = append(union[c], deps...)
		}
	}
	cycle := FindCycle(union)
	if cycle == nil {
		return nil
	}
	topo := dets[0].Topo
	return fmt.Errorf("routing: escape CDG cycle:%s", FormatCycleNamed(cycle, topo.NumSwitches, topo.NodeName))
}

// FormatCycle renders a FindCycle result over ChannelID-encoded
// channels as " (a->b) (b->c) ..." for diagnostics.
func FormatCycle(cycle []int, n int) string {
	return FormatCycleNamed(cycle, n, nil)
}

// FormatCycleNamed renders a cycle with family-aware channel labels:
// name maps a switch ID to its display label (tree level/position,
// torus coordinates — topology.Topology.NodeName). A nil name falls
// back to bare switch IDs.
func FormatCycleNamed(cycle []int, n int, name func(int) string) string {
	if name == nil {
		name = func(s int) string { return fmt.Sprintf("%d", s) }
	}
	out := ""
	for _, c := range cycle {
		out += fmt.Sprintf(" (%s->%s)", name(c/n), name(c%n))
	}
	return out
}

package routing

import (
	"fmt"

	"ibasim/internal/topology"
)

// Deterministic is a destination-indexed deterministic routing
// function: the escape routing a family's Engine stores at the first
// LID of each destination's address range. The up*/down* family fills
// UD; structured families (fat-tree, torus) leave it nil and rely on
// their own construction argument plus the mechanical CDG check.
type Deterministic struct {
	Topo *topology.Topology
	// UD is the up*/down* structure behind the tables, when the escape
	// routing is up*/down*; nil for other families.
	UD *UpDown
	// NextHop[s][d] is the neighbour switch s forwards to for
	// destination switch d (-1 when s == d, or when d carries no hosts
	// and the family computes no route to it).
	NextHop [][]int
	// PathLen[s][d] is the hop count of the table path from s to d.
	PathLen [][]int
}

// Routes reports whether the tables route traffic toward destination
// switch d: families only compute routes to host-bearing switches
// (forwarding tables are indexed by destination LIDs, and only hosts
// have LIDs), so pairs with a host-less d are skipped by validation
// and CDG construction.
func (r *Deterministic) Routes(d int) bool { return r.Topo.HostCount(d) > 0 }

// Path returns the switch sequence from src to dst following the
// tables, including both endpoints. It errors if the tables do not
// converge within NumSwitches hops (which would indicate a routing
// loop and is asserted against in tests).
func (r *Deterministic) Path(src, dst int) ([]int, error) {
	n := r.Topo.NumSwitches
	path := []int{src}
	cur := src
	for cur != dst {
		nxt := r.NextHop[cur][dst]
		if nxt < 0 {
			return nil, fmt.Errorf("routing: no next hop from %d to %d", cur, dst)
		}
		path = append(path, nxt)
		cur = nxt
		if len(path) > n {
			return nil, fmt.Errorf("routing: loop routing %d -> %d: %v", src, dst, path)
		}
	}
	return path, nil
}

// Legal reports whether the switch sequence is a legal up*/down* path:
// zero or more up moves followed by zero or more down moves, with no
// up move after a down move. Only meaningful when UD is set.
func (r *Deterministic) Legal(path []int) bool {
	goneDown := false
	for i := 0; i+1 < len(path); i++ {
		up := r.UD.IsUp(path[i], path[i+1])
		if up && goneDown {
			return false
		}
		if !up {
			goneDown = true
		}
	}
	return true
}

// Validate checks every source/destination pair the family routes:
// the table path exists, is loop-free, matches PathLen, and — for
// up*/down* tables — is legal up*/down*.
func (r *Deterministic) Validate() error {
	n := r.Topo.NumSwitches
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d || !r.Routes(d) {
				continue
			}
			p, err := r.Path(s, d)
			if err != nil {
				return err
			}
			if r.UD != nil && !r.Legal(p) {
				return fmt.Errorf("routing: illegal up*/down* path %v", p)
			}
			if len(p)-1 != r.PathLen[s][d] {
				return fmt.Errorf("routing: PathLen[%d][%d] = %d but path %v",
					s, d, r.PathLen[s][d], p)
			}
		}
	}
	return nil
}

// AvgPathLength returns the mean table-path length over routed ordered
// pairs and the mean shortest-path length, exposing how non-minimal
// the escape routing is on this topology (the effect the paper
// attributes the FA gains to).
func (r *Deterministic) AvgPathLength() (table, shortest float64) {
	n := r.Topo.NumSwitches
	dists := r.Topo.AllDistances()
	var tSum, sSum, count int
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d || !r.Routes(d) {
				continue
			}
			tSum += r.PathLen[s][d]
			sSum += dists[s][d]
			count++
		}
	}
	if count == 0 {
		return 0, 0
	}
	return float64(tSum) / float64(count), float64(sSum) / float64(count)
}

package routing

import "fmt"

// Deterministic is the destination-indexed up*/down* routing function:
// the escape/deterministic routing the paper stores at the first LID
// of each destination's address range.
type Deterministic struct {
	UD *UpDown
	// NextHop[s][d] is the neighbour switch s forwards to for
	// destination switch d (-1 when s == d).
	NextHop [][]int
	// PathLen[s][d] is the hop count of the table path from s to d.
	PathLen [][]int
}

// Path returns the switch sequence from src to dst following the
// tables, including both endpoints. It errors if the tables do not
// converge within NumSwitches hops (which would indicate a routing
// loop and is asserted against in tests).
func (r *Deterministic) Path(src, dst int) ([]int, error) {
	n := r.UD.Topo.NumSwitches
	path := []int{src}
	cur := src
	for cur != dst {
		nxt := r.NextHop[cur][dst]
		if nxt < 0 {
			return nil, fmt.Errorf("routing: no next hop from %d to %d", cur, dst)
		}
		path = append(path, nxt)
		cur = nxt
		if len(path) > n {
			return nil, fmt.Errorf("routing: loop routing %d -> %d: %v", src, dst, path)
		}
	}
	return path, nil
}

// Legal reports whether the switch sequence is a legal up*/down* path:
// zero or more up moves followed by zero or more down moves, with no
// up move after a down move.
func (r *Deterministic) Legal(path []int) bool {
	goneDown := false
	for i := 0; i+1 < len(path); i++ {
		up := r.UD.IsUp(path[i], path[i+1])
		if up && goneDown {
			return false
		}
		if !up {
			goneDown = true
		}
	}
	return true
}

// Validate checks every source/destination pair: the table path
// exists, is loop-free, and is legal up*/down*.
func (r *Deterministic) Validate() error {
	n := r.UD.Topo.NumSwitches
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			p, err := r.Path(s, d)
			if err != nil {
				return err
			}
			if !r.Legal(p) {
				return fmt.Errorf("routing: illegal up*/down* path %v", p)
			}
			if len(p)-1 != r.PathLen[s][d] {
				return fmt.Errorf("routing: PathLen[%d][%d] = %d but path %v",
					s, d, r.PathLen[s][d], p)
			}
		}
	}
	return nil
}

// AvgPathLength returns the mean table-path length over ordered pairs
// and the mean shortest-path length, exposing how non-minimal
// up*/down* is on this topology (the effect the paper attributes the
// FA gains to).
func (r *Deterministic) AvgPathLength() (table, shortest float64) {
	n := r.UD.Topo.NumSwitches
	dists := r.UD.Topo.AllDistances()
	var tSum, sSum, count int
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			tSum += r.PathLen[s][d]
			sSum += dists[s][d]
			count++
		}
	}
	if count == 0 {
		return 0, 0
	}
	return float64(tSum) / float64(count), float64(sSum) / float64(count)
}

// Package routing computes the routing functions the paper evaluates:
// the deterministic up*/down* algorithm (used both standalone and as
// the FA escape path) and the minimal adaptive option sets of the
// Fully Adaptive (FA) algorithm, all expressed as destination-indexed
// next-hop information suitable for IBA forwarding tables. It also
// provides a channel-dependency-graph cycle checker used to verify
// deadlock freedom of generated routings.
package routing

import (
	"fmt"

	"ibasim/internal/topology"
)

// UpDown holds the spanning-tree structure and link orientation of the
// up*/down* routing algorithm for one topology. A link's "up" end is
// the end closer to the root of a BFS spanning tree (ties broken by
// lower switch ID), exactly as in the Autonet scheme the paper cites.
type UpDown struct {
	Topo  *topology.Topology
	Root  int
	Level []int // BFS level of each switch (root = 0)
}

// NewUpDown builds the up*/down* structure rooted at the switch with
// the highest inter-switch degree (ties broken by lowest ID), a common
// heuristic that keeps tree depth low; the paper does not prescribe a
// root-selection rule.
func NewUpDown(t *topology.Topology) (*UpDown, error) {
	if !t.Connected() {
		return nil, fmt.Errorf("routing: up*/down* requires a connected topology")
	}
	root := 0
	for s := 1; s < t.NumSwitches; s++ {
		if t.Degree(s) > t.Degree(root) {
			root = s
		}
	}
	return NewUpDownRooted(t, root)
}

// NewUpDownRooted builds the up*/down* structure with an explicit root.
func NewUpDownRooted(t *topology.Topology, root int) (*UpDown, error) {
	if root < 0 || root >= t.NumSwitches {
		return nil, fmt.Errorf("routing: root %d out of range", root)
	}
	if !t.Connected() {
		return nil, fmt.Errorf("routing: up*/down* requires a connected topology")
	}
	level := t.Distances(root)
	return &UpDown{Topo: t, Root: root, Level: level}, nil
}

// IsUp reports whether traversing from switch `from` to adjacent
// switch `to` is an "up" move (toward the root). Direction is total:
// every link has exactly one up end.
func (u *UpDown) IsUp(from, to int) bool {
	if u.Level[to] != u.Level[from] {
		return u.Level[to] < u.Level[from]
	}
	// Same BFS level: lower ID is the up end (arbitrary but fixed).
	return to < from
}

// upNeighbors returns neighbours reachable via an up move from s.
func (u *UpDown) upNeighbors(s int) []int {
	var out []int
	for _, n := range u.Topo.Neighbors(s) {
		if u.IsUp(s, n) {
			out = append(out, n)
		}
	}
	return out
}

// downNeighbors returns neighbours reachable via a down move from s.
func (u *UpDown) downNeighbors(s int) []int {
	var out []int
	for _, n := range u.Topo.Neighbors(s) {
		if !u.IsUp(s, n) {
			out = append(out, n)
		}
	}
	return out
}

// Tables computes the destination-indexed deterministic next hops:
// NextHop[s][d] is the neighbour switch to which switch s forwards a
// packet destined to (a host on) switch d, or -1 when s == d.
//
// IBA forwarding tables are indexed by destination only, so the next
// hop cannot depend on how a packet arrived; the table path from every
// source through these next hops must itself be a legal up*/down* path
// (up moves, then down moves). The construction is the conservative
// closed-descend-set one:
//
//   - every switch with an all-down path to d descends along a
//     shortest all-down path (the descend set is closed under these
//     next hops, so a packet that starts descending keeps descending);
//   - every other switch climbs via the up-link that minimizes the
//     total table-path length.
//
// Legality and deadlock freedom are immediate; the cost is occasional
// non-minimality, which is the documented weakness of up*/down* that
// the paper's adaptive mechanism exploits.
func (u *UpDown) Tables() *Deterministic { return u.TablesVariant(0) }

// TablesVariant computes an alternative deterministic routing: variant
// v breaks ties among equal-length legal paths differently (neighbour
// exploration order is rotated by v), yielding distinct
// destination-indexed tables that are all legal up*/down* on the same
// link orientation. Because every variant's paths conform to the same
// up*/down* relation, any mixture of variants — the source-selected
// multipath scheme the paper's introduction discusses — remains
// deadlock-free (VerifyDeadlockFreeAll checks the union CDG
// mechanically).
func (u *UpDown) TablesVariant(variant int) *Deterministic {
	n := u.Topo.NumSwitches
	next := make([][]int, n)
	dist := make([][]int, n) // table-path length from s to d
	for s := range next {
		next[s] = make([]int, n)
		dist[s] = make([]int, n)
	}
	for d := 0; d < n; d++ {
		nd, dd := u.tablesFor(d, variant)
		for s := 0; s < n; s++ {
			next[s][d] = nd[s]
			dist[s][d] = dd[s]
		}
	}
	return &Deterministic{Topo: u.Topo, UD: u, NextHop: next, PathLen: dist}
}

// rotated returns s's neighbours rotated by the variant, the
// tie-breaking knob of TablesVariant. Rotating by the switch ID as
// well decorrelates choices across switches.
func (u *UpDown) rotated(s, variant int) []int {
	ns := u.Topo.Neighbors(s)
	if variant == 0 || len(ns) < 2 {
		return ns
	}
	k := (variant + s) % len(ns)
	out := make([]int, 0, len(ns))
	out = append(out, ns[k:]...)
	out = append(out, ns[:k]...)
	return out
}

// tablesFor computes next hops and table-path lengths toward a single
// destination switch d.
func (u *UpDown) tablesFor(d, variant int) (next, dist []int) {
	n := u.Topo.NumSwitches
	next = make([]int, n)
	dist = make([]int, n)
	for i := range next {
		next[i] = -1
		dist[i] = -1
	}
	dist[d] = 0

	// Phase 1: all-down distances to d via reverse BFS over up moves.
	// Moving from s down to m means m -> s is an up move; so explore
	// from d along edges (x -> y) where y sees x as a down neighbour,
	// i.e. x is up of y... concretely: y can take a down step to x iff
	// IsUp(x, y) (y is the up end means x->y is up, so y->x is down).
	queue := []int{d}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range u.rotated(x, variant) {
			// y -> x is a down move iff x is NOT up of... a move y->x
			// is down iff IsUp(y, x) is false for direction from y to
			// x: IsUp(y, x) true means x is toward root. Down means
			// x is away from root: !IsUp(y, x).
			if !u.IsUp(y, x) && dist[y] == -1 {
				dist[y] = dist[x] + 1
				next[y] = x
				queue = append(queue, y)
			}
		}
	}

	// Phase 2: switches without an all-down path (dist still -1) climb
	// via an up-link. Up moves strictly decrease the (level, id) key,
	// so processing switches in ascending (level, id) order computes
	// each climber after all its up-neighbours; every climb chain ends
	// in the descend set because the root always belongs to it (the
	// root reaches every switch by reversing BFS-parent up-paths).
	order := make([]int, 0, n)
	for s := 0; s < n; s++ {
		order = append(order, s)
	}
	// Sort by (level, id) ascending; insertion sort keeps this
	// dependency-free and n is small (<= 64 in the paper's configs).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if u.Level[a] < u.Level[b] || (u.Level[a] == u.Level[b] && a < b) {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	for _, s := range order {
		if dist[s] != -1 || s == d {
			continue // descend-set assignments are final
		}
		for _, m := range u.rotated(s, variant) {
			if !u.IsUp(s, m) || dist[m] == -1 {
				continue
			}
			if cand := dist[m] + 1; dist[s] == -1 || cand < dist[s] {
				dist[s] = cand
				next[s] = m
			}
		}
	}
	return next, dist
}

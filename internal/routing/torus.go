package routing

import (
	"fmt"

	"ibasim/internal/topology"
)

// This file implements the torus family: dimension-order escape
// routing restricted to the MESH links, with the wraparound links left
// to the adaptive options (the deadlock-avoidance structure the
// OutFlank line of related work builds on).
//
// Escape tables correct dimension 0 first, then 1, then 2, always
// stepping toward the destination coordinate without crossing a wrap
// boundary. Dependencies between escape channels therefore only go
// from lower-dimension channels to equal-or-higher-dimension channels,
// and within one dimension every channel chain moves monotonically in
// one direction along an open (wrap-free) path — the classic argument
// that dimension-order routing on a mesh has an acyclic CDG. Verify()
// re-checks it mechanically.
//
// Adaptive options come from NewFA over the FULL wrapped graph, so they
// use wrap links freely and can be shorter than the escape path
// (MinimalEscape() == false: mesh DOR is minimal on the mesh, not on
// the torus). Duato's theory does not care: packets blocked on cyclic
// adaptive channels always have the acyclic escape path to drain into.

// NewTorusTables computes the mesh-restricted dimension-order tables
// for a pristine torus. PathLen is the mesh distance (sum of
// coordinate deltas without wrap).
func NewTorusTables(t *topology.Topology, spec topology.TorusSpec) (*Deterministic, error) {
	if !topology.MatchesTorus(t, spec) {
		return nil, fmt.Errorf("routing: topology is not the pristine torus %s", spec)
	}
	n := t.NumSwitches
	next := make([][]int, n)
	dist := make([][]int, n)
	for s := range next {
		next[s] = make([]int, n)
		dist[s] = make([]int, n)
		for d := range next[s] {
			next[s][d] = -1
			dist[s][d] = -1
		}
	}
	for d := 0; d < n; d++ {
		cd := spec.Coord(d)
		for s := 0; s < n; s++ {
			if s == d {
				dist[s][d] = 0
				continue
			}
			cs := spec.Coord(s)
			sum := 0
			for i := range cs {
				delta := cs[i] - cd[i]
				if delta < 0 {
					delta = -delta
				}
				sum += delta
			}
			dist[s][d] = sum
			for i := range cs {
				if cs[i] == cd[i] {
					continue
				}
				nc := make([]int, len(cs))
				copy(nc, cs)
				if cd[i] > cs[i] {
					nc[i]++
				} else {
					nc[i]--
				}
				next[s][d] = spec.SwitchID(nc)
				break
			}
		}
	}
	return &Deterministic{Topo: t, NextHop: next, PathLen: dist}, nil
}

// TorusBuilder returns the torus family builder: mesh-restricted
// dimension-order escape plus wrapped-minimal adaptive options on the
// pristine fabric, falling back to up*/down* on the surviving graph
// once faults break the regular structure. Only spec.Dims matter; host
// attachment is taken from the topology being configured.
func TorusBuilder(spec topology.TorusSpec) Builder {
	return func(t *topology.Topology) (Engine, error) {
		spec := spec
		spec.HostsPerSwitch = t.HostsPerSwitch
		if !topology.MatchesTorus(t, spec) {
			return UpDownBuilder(-1)(t)
		}
		det, err := NewTorusTables(t, spec)
		if err != nil {
			return nil, err
		}
		return &engine{name: "torus", det: det, fa: NewFA(det)}, nil
	}
}

package routing

import (
	"fmt"

	"ibasim/internal/topology"
)

// FA is the Fully Adaptive routing function of §3: for each
// (switch, destination switch) pair it provides
//
//   - Escape[s][d]: the up*/down* deterministic next hop (always
//     usable, guarantees deadlock freedom through the escape queues);
//   - Adaptive[s][d]: every neighbour on a minimal path toward d
//     (fully adaptive minimal options, served through adaptive queues).
//
// Minimality of the adaptive options is what bounds livelock: a packet
// only makes non-minimal moves on the escape path, and escape moves
// are taken only when no minimal option has room (§3's preference for
// minimal paths).
type FA struct {
	Det *Deterministic
	// Adaptive[s][d] lists minimal next-hop switches from s toward d,
	// sorted ascending; empty when s == d.
	Adaptive [][][]int
}

// NewFA computes the FA routing function on top of a deterministic
// escape routing (up*/down*, D-mod-K, dimension-order, ...). Adaptive
// options are the minimal next hops of the full topology regardless of
// family; only host-bearing destinations get option sets, matching the
// escape tables.
func NewFA(det *Deterministic) *FA {
	t := det.Topo
	n := t.NumSwitches
	dists := t.AllDistances()
	adaptive := make([][][]int, n)
	for s := 0; s < n; s++ {
		adaptive[s] = make([][]int, n)
		for d := 0; d < n; d++ {
			if s == d || !det.Routes(d) {
				continue
			}
			var opts []int
			for _, m := range t.Neighbors(s) { // sorted, so opts sorted
				if dists[m][d] == dists[s][d]-1 {
					opts = append(opts, m)
				}
			}
			adaptive[s][d] = opts
		}
	}
	return &FA{Det: det, Adaptive: adaptive}
}

// Escape returns the escape (up*/down*) next hop from s toward d.
func (f *FA) Escape(s, d int) int { return f.Det.NextHop[s][d] }

// Options returns the adaptive next hops from s toward d capped at
// maxOptions entries (the paper's "MR" — maximum routing options per
// switch); maxOptions <= 0 means uncapped.
func (f *FA) Options(s, d, maxOptions int) []int {
	opts := f.Adaptive[s][d]
	if maxOptions > 0 && len(opts) > maxOptions {
		opts = opts[:maxOptions]
	}
	return opts
}

// Validate checks FA invariants for every pair: adaptive options are
// exactly the minimal next hops, and the escape hop exists.
func (f *FA) Validate() error {
	t := f.Det.Topo
	dists := t.AllDistances()
	for s := 0; s < t.NumSwitches; s++ {
		for d := 0; d < t.NumSwitches; d++ {
			if s == d || !f.Det.Routes(d) {
				continue
			}
			if f.Escape(s, d) < 0 {
				return fmt.Errorf("routing: missing escape hop %d -> %d", s, d)
			}
			for _, m := range f.Adaptive[s][d] {
				if dists[m][d] != dists[s][d]-1 {
					return fmt.Errorf("routing: non-minimal adaptive option %d from %d to %d", m, s, d)
				}
			}
			if len(f.Adaptive[s][d]) == 0 {
				return fmt.Errorf("routing: no adaptive option %d -> %d (graph connected, so impossible)", s, d)
			}
		}
	}
	return nil
}

// OptionsHistogram returns the distribution of routing-option counts
// over (switch, destination) pairs with s != d: hist[k] is the number
// of pairs offering exactly k = min(#minimal next hops, cap) options.
// This is the quantity behind the paper's Table 2 ("average percentage
// of routing options at each switch for each destination", capped at
// MR); internal/experiments formats it into the table's rows.
func (f *FA) OptionsHistogram(cap int) []int {
	hist := make([]int, cap+1) // hist[k] = pairs with k options
	t := f.Det.Topo
	for s := 0; s < t.NumSwitches; s++ {
		for d := 0; d < t.NumSwitches; d++ {
			if s == d || !f.Det.Routes(d) {
				continue
			}
			k := len(f.Adaptive[s][d])
			if k > cap {
				k = cap
			}
			if k < 1 {
				k = 1
			}
			hist[k]++
		}
	}
	return hist
}

// MinimalPathExists reports whether dst is reachable from src (always
// true on validated topologies; used by property tests).
func MinimalPathExists(t *topology.Topology, src, dst int) bool {
	return t.Distances(src)[dst] >= 0
}

package routing

import "ibasim/internal/topology"

// Engine is the pluggable routing-function family contract: everything
// the subnet manager needs to program forwarding tables and everything
// the analysis/verification layers need to reason about the result.
// One Engine instance is built per configured topology; all methods are
// read-only after construction.
//
// The contract (also documented in DESIGN.md):
//
//   - Deterministic() is the escape routing: destination-indexed next
//     hops stored at the first LID of every destination's address
//     range. Its escape CDG must be acyclic (Verify enforces it); by
//     Duato's theory that alone makes the full adaptive function
//     deadlock-free, no matter how cyclic the adaptive options are.
//   - Adaptive() supplies the minimal adaptive option sets programmed
//     into the remaining LID slots.
//   - SL(src, dst) is the service level packets between the two hosts
//     travel at. Every current family returns 0 (the whole fabric runs
//     on one data VL); the seam exists so VL-partitioned schemes can
//     plug in without touching the subnet manager.
//   - MinimalEscape() reports whether the family guarantees its escape
//     paths are minimal (fat-tree D-mod-K: yes; up*/down* and
//     mesh-restricted torus DOR: no). The conformance suite keys the
//     minimality assertions off it.
//   - Verify() runs the family's deadlock-freedom check — for every
//     current family the mechanical escape-CDG acyclicity test.
type Engine interface {
	// Name tags the family for reports ("updown", "fattree", "torus").
	Name() string
	Deterministic() *Deterministic
	Adaptive() *FA
	SL(src, dst int) int
	MinimalEscape() bool
	Verify() error
}

// Builder constructs a family's Engine for one discovered topology.
// The subnet manager calls it at configuration time and again after
// every reconfiguration; builders for structured families detect a
// degraded fabric (failed links) and fall back to up*/down* on the
// surviving graph, which is how fault campaigns run unchanged on every
// family.
type Builder func(t *topology.Topology) (Engine, error)

// engine is the shared Engine implementation: all current families are
// fully described by their tables, option sets, and minimality flag.
type engine struct {
	name    string
	det     *Deterministic
	fa      *FA
	minimal bool
}

func (e *engine) Name() string                 { return e.name }
func (e *engine) Deterministic() *Deterministic { return e.det }
func (e *engine) Adaptive() *FA                { return e.fa }
func (e *engine) SL(src, dst int) int          { return 0 }
func (e *engine) MinimalEscape() bool          { return e.minimal }
func (e *engine) Verify() error                { return VerifyDeadlockFree(e.det) }

// UpDownBuilder returns the up*/down* family builder — the escape
// routing of the paper's irregular-network evaluation. root >= 0 forces
// the spanning-tree root; -1 selects the default highest-degree root.
func UpDownBuilder(root int) Builder {
	return func(t *topology.Topology) (Engine, error) {
		var ud *UpDown
		var err error
		if root >= 0 {
			ud, err = NewUpDownRooted(t, root)
		} else {
			ud, err = NewUpDown(t)
		}
		if err != nil {
			return nil, err
		}
		det := ud.Tables()
		return &engine{name: "updown", det: det, fa: NewFA(det)}, nil
	}
}

package routing

import (
	"testing"
	"testing/quick"

	"ibasim/internal/topology"
)

func TestTablesVariantZeroEqualsTables(t *testing.T) {
	top := irregular(t, 16, 4, 61)
	ud := mustUD(t, top)
	a, b := ud.Tables(), ud.TablesVariant(0)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if a.NextHop[s][d] != b.NextHop[s][d] {
				t.Fatalf("variant 0 differs at (%d,%d)", s, d)
			}
		}
	}
}

func TestTablesVariantsAllLegal(t *testing.T) {
	top := irregular(t, 16, 4, 62)
	ud := mustUD(t, top)
	for v := 0; v < 4; v++ {
		det := ud.TablesVariant(v)
		if err := det.Validate(); err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		if err := VerifyDeadlockFree(det); err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
	}
}

func TestTablesVariantsDiffer(t *testing.T) {
	// On a reasonably connected topology, at least one (s,d) pair
	// must route differently between variants 0 and 1 — otherwise the
	// multipath baseline degenerates to single-path.
	top := irregular(t, 32, 4, 63)
	ud := mustUD(t, top)
	a, b := ud.TablesVariant(0), ud.TablesVariant(1)
	differ := false
	for s := 0; s < 32 && !differ; s++ {
		for d := 0; d < 32; d++ {
			if a.NextHop[s][d] != b.NextHop[s][d] {
				differ = true
				break
			}
		}
	}
	if !differ {
		t.Fatal("variants 0 and 1 produced identical tables")
	}
}

func TestTablesVariantsSamePathLengthClass(t *testing.T) {
	// Variants only re-break ties; every variant's table paths follow
	// the same construction, so path lengths match the descend/climb
	// structure: equal all-down distances and equal climb distances.
	top := irregular(t, 16, 4, 64)
	ud := mustUD(t, top)
	a, b := ud.TablesVariant(0), ud.TablesVariant(2)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if a.PathLen[s][d] != b.PathLen[s][d] {
				t.Fatalf("variant path lengths differ at (%d,%d): %d vs %d",
					s, d, a.PathLen[s][d], b.PathLen[s][d])
			}
		}
	}
}

// TestVariantUnionDeadlockFreeProperty is the safety argument for the
// source-multipath baseline: the union CDG of several tie-break
// variants on one up*/down* orientation stays acyclic.
func TestVariantUnionDeadlockFreeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		top, err := topology.GenerateIrregular(topology.IrregularSpec{
			NumSwitches: 16, HostsPerSwitch: 4, InterSwitch: 4, Seed: seed,
		})
		if err != nil {
			return false
		}
		ud := mustUD(t, top)
		dets := []*Deterministic{
			ud.TablesVariant(0), ud.TablesVariant(1),
			ud.TablesVariant(2), ud.TablesVariant(3),
		}
		return VerifyDeadlockFreeAll(dets) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDeadlockFreeAllEmpty(t *testing.T) {
	if err := VerifyDeadlockFreeAll(nil); err != nil {
		t.Fatal(err)
	}
}

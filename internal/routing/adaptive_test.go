package routing

import (
	"testing"
	"testing/quick"

	"ibasim/internal/topology"
)

func mustFA(t testing.TB, top *topology.Topology) *FA {
	t.Helper()
	return NewFA(mustUD(t, top).Tables())
}

func TestFAValidatePaperSizes(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		fa := mustFA(t, irregular(t, n, 4, uint64(n)*13))
		if err := fa.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestFAAdaptiveOptionsAreMinimal(t *testing.T) {
	top := irregular(t, 16, 4, 21)
	fa := mustFA(t, top)
	dists := top.AllDistances()
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			for _, m := range fa.Adaptive[s][d] {
				if dists[m][d] != dists[s][d]-1 {
					t.Fatalf("option %d from %d to %d not minimal", m, s, d)
				}
			}
		}
	}
}

func TestFAAdaptiveOptionsComplete(t *testing.T) {
	// Every minimal next hop must be offered (fully adaptive).
	top := irregular(t, 16, 4, 22)
	fa := mustFA(t, top)
	dists := top.AllDistances()
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			want := 0
			for _, m := range top.Neighbors(s) {
				if dists[m][d] == dists[s][d]-1 {
					want++
				}
			}
			if got := len(fa.Adaptive[s][d]); got != want {
				t.Fatalf("options(%d,%d) = %d, want %d", s, d, got, want)
			}
		}
	}
}

func TestFAOptionsCap(t *testing.T) {
	top := irregular(t, 32, 6, 23)
	fa := mustFA(t, top)
	for s := 0; s < 32; s++ {
		for d := 0; d < 32; d++ {
			if s == d {
				continue
			}
			if got := len(fa.Options(s, d, 2)); got > 2 {
				t.Fatalf("Options cap 2 returned %d options", got)
			}
			all := fa.Options(s, d, 0)
			if len(all) != len(fa.Adaptive[s][d]) {
				t.Fatal("uncapped Options truncated")
			}
		}
	}
}

func TestFAEscapeMatchesDeterministic(t *testing.T) {
	top := irregular(t, 16, 4, 24)
	det := mustUD(t, top).Tables()
	fa := NewFA(det)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if fa.Escape(s, d) != det.NextHop[s][d] {
				t.Fatalf("escape(%d,%d) != deterministic next hop", s, d)
			}
		}
	}
}

func TestFADirectNeighborSingleOption(t *testing.T) {
	// When d is adjacent to s, the only minimal option is d itself.
	top := irregular(t, 8, 4, 25)
	fa := mustFA(t, top)
	for s := 0; s < 8; s++ {
		for _, d := range top.Neighbors(s) {
			opts := fa.Adaptive[s][d]
			if len(opts) != 1 || opts[0] != d {
				t.Fatalf("adjacent options(%d,%d) = %v, want [%d]", s, d, opts, d)
			}
		}
	}
}

func TestOptionsHistogramSumsToPairs(t *testing.T) {
	top := irregular(t, 16, 4, 26)
	fa := mustFA(t, top)
	hist := fa.OptionsHistogram(4)
	total := 0
	for _, c := range hist {
		total += c
	}
	if want := 16 * 15; total != want {
		t.Fatalf("histogram total = %d, want %d", total, want)
	}
	if hist[0] != 0 {
		t.Fatalf("histogram reports %d pairs with zero options", hist[0])
	}
}

func TestOptionsHistogramConnectivityEffect(t *testing.T) {
	// The paper's Table 2 observation: higher connectivity yields more
	// pairs with >= 2 routing options. Compare degree 4 vs 6 at 32
	// switches (averaged over a few seeds to damp noise).
	multi := func(k int) float64 {
		tot, multi := 0, 0
		for seed := uint64(0); seed < 5; seed++ {
			top := irregular(t, 32, k, 900+seed)
			hist := mustFA(t, top).OptionsHistogram(4)
			for opts, c := range hist {
				tot += c
				if opts >= 2 {
					multi += c
				}
			}
		}
		return float64(multi) / float64(tot)
	}
	if m4, m6 := multi(4), multi(6); m6 <= m4 {
		t.Fatalf("6-link multi-option share %.3f not above 4-link %.3f", m6, m4)
	}
}

// TestFAPropertyAcrossSeeds: option sets valid on random topologies.
func TestFAPropertyAcrossSeeds(t *testing.T) {
	f := func(seed uint64) bool {
		top, err := topology.GenerateIrregular(topology.IrregularSpec{
			NumSwitches: 16, HostsPerSwitch: 4, InterSwitch: 4, Seed: seed,
		})
		if err != nil {
			return false
		}
		return mustFA(t, top).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

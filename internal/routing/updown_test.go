package routing

import (
	"testing"
	"testing/quick"

	"ibasim/internal/topology"
)

func irregular(t testing.TB, n, k int, seed uint64) *topology.Topology {
	t.Helper()
	top, err := topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches: n, HostsPerSwitch: 4, InterSwitch: k, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func mustUD(t testing.TB, top *topology.Topology) *UpDown {
	t.Helper()
	ud, err := NewUpDown(top)
	if err != nil {
		t.Fatal(err)
	}
	return ud
}

func TestUpDownRootHasLevelZero(t *testing.T) {
	top := irregular(t, 16, 4, 1)
	ud := mustUD(t, top)
	if ud.Level[ud.Root] != 0 {
		t.Fatalf("root level = %d", ud.Level[ud.Root])
	}
	for s, l := range ud.Level {
		if l < 0 {
			t.Fatalf("switch %d unreachable from root", s)
		}
	}
}

func TestUpDownRootedRejectsBadRoot(t *testing.T) {
	top := irregular(t, 8, 4, 1)
	if _, err := NewUpDownRooted(top, -1); err == nil {
		t.Fatal("negative root accepted")
	}
	if _, err := NewUpDownRooted(top, 8); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestUpDownRejectsDisconnected(t *testing.T) {
	top := topology.New(4, 4, 8)
	if err := top.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := top.AddLink(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewUpDown(top); err == nil {
		t.Fatal("disconnected topology accepted")
	}
}

func TestLinkDirectionIsTotal(t *testing.T) {
	top := irregular(t, 16, 4, 7)
	ud := mustUD(t, top)
	for _, l := range top.Links {
		up1 := ud.IsUp(l.A, l.B)
		up2 := ud.IsUp(l.B, l.A)
		if up1 == up2 {
			t.Fatalf("link (%d,%d): both directions report up=%v", l.A, l.B, up1)
		}
	}
}

func TestUpMovesDecreaseLevelKey(t *testing.T) {
	top := irregular(t, 32, 4, 3)
	ud := mustUD(t, top)
	for _, l := range top.Links {
		from, to := l.A, l.B
		if !ud.IsUp(from, to) {
			from, to = to, from
		}
		// from -> to is up: (level, id) must strictly decrease.
		if ud.Level[to] > ud.Level[from] ||
			(ud.Level[to] == ud.Level[from] && to > from) {
			t.Fatalf("up move %d->%d does not decrease (level,id)", from, to)
		}
	}
}

func TestTablesAllPairsLegal(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		top := irregular(t, n, 4, uint64(n))
		det := mustUD(t, top).Tables()
		if err := det.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestTablesLinePathIsDirect(t *testing.T) {
	top, err := topology.Line(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	ud, err := NewUpDownRooted(top, 0)
	if err != nil {
		t.Fatal(err)
	}
	det := ud.Tables()
	p, err := det.Path(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestTablesSelfHasNoHop(t *testing.T) {
	top := irregular(t, 8, 4, 2)
	det := mustUD(t, top).Tables()
	for s := 0; s < 8; s++ {
		if det.NextHop[s][s] != -1 {
			t.Fatalf("NextHop[%d][%d] = %d, want -1", s, s, det.NextHop[s][s])
		}
		if det.PathLen[s][s] != 0 {
			t.Fatalf("PathLen[%d][%d] = %d, want 0", s, s, det.PathLen[s][s])
		}
	}
}

func TestTablePathsNeverShorterThanShortest(t *testing.T) {
	top := irregular(t, 16, 4, 11)
	det := mustUD(t, top).Tables()
	dists := top.AllDistances()
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			if det.PathLen[s][d] < dists[s][d] {
				t.Fatalf("table path %d->%d shorter than shortest path", s, d)
			}
		}
	}
}

func TestLegalDetectsIllegalPath(t *testing.T) {
	top, err := topology.Line(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ud, err := NewUpDownRooted(top, 1)
	if err != nil {
		t.Fatal(err)
	}
	det := ud.Tables()
	// With root 1: moving 1->0 is down (away from root), then 0->1 is
	// up: a down-then-up sequence must be illegal.
	if det.Legal([]int{1, 0, 1, 2}) {
		t.Fatal("down-then-up path reported legal")
	}
	if !det.Legal([]int{0, 1, 2, 3}) {
		t.Fatal("legal path reported illegal")
	}
}

func TestUpDownRootCongestionSignature(t *testing.T) {
	// The paper attributes up*/down* scaling problems to root
	// congestion and non-minimal paths; verify table paths are on
	// average at least as long as shortest paths on a large topology.
	top := irregular(t, 64, 4, 5)
	det := mustUD(t, top).Tables()
	table, shortest := det.AvgPathLength()
	if table < shortest {
		t.Fatalf("avg table path %v < avg shortest %v", table, shortest)
	}
}

// TestTablesPropertyLegalAcrossSeeds validates legality and loop
// freedom over randomly seeded topologies — the repository-wide core
// correctness property of the escape routing.
func TestTablesPropertyLegalAcrossSeeds(t *testing.T) {
	f := func(seed uint64) bool {
		top, err := topology.GenerateIrregular(topology.IrregularSpec{
			NumSwitches: 16, HostsPerSwitch: 4, InterSwitch: 4, Seed: seed,
		})
		if err != nil {
			return false
		}
		det := mustUD(t, top).Tables()
		return det.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

package reorder

import (
	"testing"
	"testing/quick"

	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

func pkt(id uint64, src, dst int, seq uint64) *ib.Packet {
	return &ib.Packet{ID: id, Src: src, Dst: dst, SeqNo: seq}
}

func TestInOrderPassesThrough(t *testing.T) {
	b := NewBuffer()
	for seq := uint64(0); seq < 10; seq++ {
		out := b.Deliver(pkt(seq+1, 0, 1, seq), sim.Time(seq))
		if len(out) != 1 || out[0].SeqNo != seq {
			t.Fatalf("seq %d: out = %v", seq, out)
		}
	}
	if b.Parked != 0 || b.PassedThru != 10 {
		t.Fatalf("stats: %+v", b)
	}
	if b.ParkedFraction() != 0 {
		t.Fatal("parked fraction nonzero")
	}
}

func TestEarlyPacketParksAndReleases(t *testing.T) {
	b := NewBuffer()
	if out := b.Deliver(pkt(2, 0, 1, 1), 100); out != nil {
		t.Fatalf("early packet released: %v", out)
	}
	if b.Held() != 1 {
		t.Fatalf("Held = %d", b.Held())
	}
	out := b.Deliver(pkt(1, 0, 1, 0), 150)
	if len(out) != 2 || out[0].SeqNo != 0 || out[1].SeqNo != 1 {
		t.Fatalf("release run = %v", out)
	}
	if b.Held() != 0 {
		t.Fatalf("Held = %d after release", b.Held())
	}
	if b.ReorderDelay != 50 {
		t.Fatalf("ReorderDelay = %v, want 50", b.ReorderDelay)
	}
	if b.AvgReorderDelay() != 50 {
		t.Fatalf("AvgReorderDelay = %v", b.AvgReorderDelay())
	}
}

func TestLongInversionRun(t *testing.T) {
	b := NewBuffer()
	// Deliver 9..1 first, then 0: everything must release at once, in
	// order.
	for seq := uint64(9); seq >= 1; seq-- {
		if out := b.Deliver(pkt(seq, 0, 1, seq), 10); out != nil {
			t.Fatalf("seq %d released early", seq)
		}
	}
	if b.Held() != 9 {
		t.Fatalf("Held = %d, want 9", b.Held())
	}
	out := b.Deliver(pkt(100, 0, 1, 0), 20)
	if len(out) != 10 {
		t.Fatalf("released %d packets, want 10", len(out))
	}
	for i, p := range out {
		if p.SeqNo != uint64(i) {
			t.Fatalf("out[%d].SeqNo = %d", i, p.SeqNo)
		}
	}
	// Peak occupancy is the end-of-timestamp sample: 9 packets were
	// parked at t=10, released at t=20.
	b.Finalize()
	if b.PeakHeld != 9 {
		t.Fatalf("PeakHeld = %d, want 9", b.PeakHeld)
	}
}

// TestPeakIsEndOfTimestampSample: parks that resolve within the same
// simulated instant do not count toward the peak — only the occupancy
// left when time moves on does, so the sample is independent of the
// dispatch order of equal-time deliveries.
func TestPeakIsEndOfTimestampSample(t *testing.T) {
	b := NewBuffer()
	b.Deliver(pkt(2, 0, 1, 1), 10) // parked...
	b.Deliver(pkt(1, 0, 1, 0), 10) // ...and released within t=10
	b.Deliver(pkt(4, 0, 1, 3), 20) // parked across the boundary
	b.Finalize()
	if b.PeakHeld != 1 {
		t.Fatalf("PeakHeld = %d, want 1 (same-instant park must not count)", b.PeakHeld)
	}
	b.Finalize() // idempotent
	if b.PeakHeld != 1 {
		t.Fatalf("PeakHeld after second Finalize = %d", b.PeakHeld)
	}
}

// TestMergePeakMatchesCombinedBuffer: splitting disjoint flows across
// step-tracked buffers and merging reproduces the peak a single buffer
// seeing the union would report.
func TestMergePeakMatchesCombinedBuffer(t *testing.T) {
	type d struct {
		id  uint64
		src int
		seq uint64
		at  sim.Time
	}
	// Flow A = (0,1), flow B = (2,1). Interleaved timestamps with
	// overlapping occupancy: A holds {10..30}, B holds {20..40}.
	deliveries := []d{
		{1, 0, 2, 10}, {2, 0, 1, 10}, // A parks two at t=10
		{3, 2, 1, 20}, // B parks one at t=20
		{4, 2, 2, 25}, // B parks another at t=25
		{5, 0, 0, 30}, // A releases all three at t=30
		{6, 2, 0, 40}, // B releases all three at t=40
	}
	combined := NewBuffer()
	bufA, bufB := NewBuffer(), NewBuffer()
	bufA.TrackSteps, bufB.TrackSteps = true, true
	for _, x := range deliveries {
		p := pkt(x.id, x.src, 1, x.seq)
		combined.Deliver(p, x.at)
		if x.src == 0 {
			bufA.Deliver(pkt(x.id, x.src, 1, x.seq), x.at)
		} else {
			bufB.Deliver(pkt(x.id, x.src, 1, x.seq), x.at)
		}
	}
	combined.Finalize()
	bufA.Finalize()
	bufB.Finalize()
	if got := MergePeak([]*Buffer{bufA, bufB}); got != combined.PeakHeld {
		t.Fatalf("MergePeak = %d, combined PeakHeld = %d", got, combined.PeakHeld)
	}
	if combined.PeakHeld != 4 {
		t.Fatalf("combined PeakHeld = %d, want 4 (A's 2 + B's 2 overlap at t=25)", combined.PeakHeld)
	}
}

func TestFlowsAreIndependent(t *testing.T) {
	b := NewBuffer()
	if out := b.Deliver(pkt(1, 0, 1, 1), 0); out != nil {
		t.Fatal("flow (0,1) seq 1 released early")
	}
	// A different flow's seq 0 is unaffected by the parked packet.
	out := b.Deliver(pkt(2, 2, 1, 0), 0)
	if len(out) != 1 {
		t.Fatalf("independent flow blocked: %v", out)
	}
	// Reverse direction is a distinct flow too.
	out = b.Deliver(pkt(3, 1, 0, 0), 0)
	if len(out) != 1 {
		t.Fatalf("reverse flow blocked: %v", out)
	}
}

// TestReorderPropertyAnyPermutationReleasesAllInOrder: whatever the
// arrival order of a flow's packets, every packet is eventually
// released exactly once and in sequence order.
func TestReorderPropertyAnyPermutationReleasesAllInOrder(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		const n = 30
		order := make([]int, n)
		rng.Perm(order)
		b := NewBuffer()
		var released []uint64
		for i, seqIdx := range order {
			for _, p := range b.Deliver(pkt(uint64(i+1), 3, 4, uint64(seqIdx)), sim.Time(i)) {
				released = append(released, p.SeqNo)
			}
		}
		if len(released) != n || b.Held() != 0 {
			return false
		}
		for i, seq := range released {
			if seq != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	b := NewBuffer()
	b.Deliver(pkt(1, 0, 1, 2), 10) // parked
	b.Deliver(pkt(2, 0, 1, 1), 20) // parked
	b.Deliver(pkt(3, 0, 1, 0), 30) // releases all three
	if b.Parked != 2 || b.PassedThru != 1 {
		t.Fatalf("Parked=%d PassedThru=%d", b.Parked, b.PassedThru)
	}
	if got := b.ParkedFraction(); got < 0.66 || got > 0.67 {
		t.Fatalf("ParkedFraction = %v", got)
	}
	// Delays: seq2 waited 20, seq1 waited 10 -> avg 15.
	if b.AvgReorderDelay() != 15 {
		t.Fatalf("AvgReorderDelay = %v", b.AvgReorderDelay())
	}
}

func TestEmptyBufferStats(t *testing.T) {
	b := NewBuffer()
	if b.AvgReorderDelay() != 0 || b.ParkedFraction() != 0 || b.Held() != 0 {
		t.Fatal("empty buffer has nonzero stats")
	}
}

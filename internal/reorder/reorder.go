// Package reorder implements destination-side packet reordering, the
// companion mechanism §1 of the paper sketches for traffic that needs
// in-order delivery but still wants adaptive routing: "in-order
// packets could also use adaptive routing if packets were reordered at
// the destination host before being delivered."
//
// A Buffer tracks, per (source, destination) flow, the next expected
// sequence number; packets arriving early are parked until their
// predecessors show up. The cost of adaptivity for ordered traffic is
// then visible as buffer occupancy and added delivery latency, both of
// which the Buffer reports.
package reorder

import (
	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

type flowKey struct{ src, dst int }

// Buffer reassembles sequence order per flow.
type Buffer struct {
	expected map[flowKey]uint64
	held     map[flowKey]map[uint64]*ib.Packet

	// Stats.
	Parked       uint64 // packets that had to wait
	PassedThru   uint64 // packets released immediately
	CurrentHeld  int
	PeakHeld     int
	ReorderDelay sim.Time // total extra waiting summed over parked packets

	arrival map[uint64]sim.Time // packet ID -> arrival time, for delay accounting
}

// NewBuffer returns an empty reorder buffer.
func NewBuffer() *Buffer {
	return &Buffer{
		expected: make(map[flowKey]uint64),
		held:     make(map[flowKey]map[uint64]*ib.Packet),
		arrival:  make(map[uint64]sim.Time),
	}
}

// Deliver accepts a packet arriving at the destination at time now and
// returns the packets releasable in order (possibly none, possibly a
// run ending with previously parked successors). Packets of a flow
// must carry the per-flow SeqNo the fabric assigns at injection.
func (b *Buffer) Deliver(p *ib.Packet, now sim.Time) []*ib.Packet {
	key := flowKey{src: p.Src, dst: p.Dst}
	next := b.expected[key]
	if p.SeqNo != next {
		// Early: park it. (Late duplicates cannot happen — the fabric
		// neither drops nor duplicates — so SeqNo > next always.)
		if b.held[key] == nil {
			b.held[key] = make(map[uint64]*ib.Packet)
		}
		b.held[key][p.SeqNo] = p
		b.arrival[p.ID] = now
		b.Parked++
		b.CurrentHeld++
		if b.CurrentHeld > b.PeakHeld {
			b.PeakHeld = b.CurrentHeld
		}
		return nil
	}
	// In order: release it and any parked run behind it.
	out := []*ib.Packet{p}
	b.PassedThru++
	next++
	for {
		q, ok := b.held[key][next]
		if !ok {
			break
		}
		delete(b.held[key], next)
		b.CurrentHeld--
		b.ReorderDelay += now - b.arrival[q.ID]
		delete(b.arrival, q.ID)
		out = append(out, q)
		next++
	}
	b.expected[key] = next
	return out
}

// Held returns the number of packets currently parked.
func (b *Buffer) Held() int { return b.CurrentHeld }

// AvgReorderDelay returns the mean extra waiting of parked packets.
func (b *Buffer) AvgReorderDelay() float64 {
	if b.Parked == 0 {
		return 0
	}
	return float64(b.ReorderDelay) / float64(b.Parked)
}

// ParkedFraction returns the share of deliveries that had to wait.
func (b *Buffer) ParkedFraction() float64 {
	total := b.Parked + b.PassedThru
	if total == 0 {
		return 0
	}
	return float64(b.Parked) / float64(total)
}

// Package reorder implements destination-side packet reordering, the
// companion mechanism §1 of the paper sketches for traffic that needs
// in-order delivery but still wants adaptive routing: "in-order
// packets could also use adaptive routing if packets were reordered at
// the destination host before being delivered."
//
// A Buffer tracks, per (source, destination) flow, the next expected
// sequence number; packets arriving early are parked until their
// predecessors show up. The cost of adaptivity for ordered traffic is
// then visible as buffer occupancy and added delivery latency, both of
// which the Buffer reports.
package reorder

import (
	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

type flowKey struct{ src, dst int }

// Step records the buffer occupancy after the last delivery of one
// simulated timestamp (see Buffer.TrackSteps).
type Step struct {
	At   sim.Time
	Held int
}

// Buffer reassembles sequence order per flow.
type Buffer struct {
	expected map[flowKey]uint64
	held     map[flowKey]map[uint64]*ib.Packet

	// expectedDense replaces the expected map when the host count is
	// known up front (NewBufferForHosts): one slot per (src, dst) pair,
	// indexed src*numHosts+dst. The expected counter is read and
	// written on every delivery, and at a sweep's packet rates the map
	// hash and growth churn were a measurable slice of the run; the
	// held/arrival maps stay maps — they are only touched by the parked
	// minority. numHosts == 0 means the map representation is in use.
	expectedDense []uint64
	numHosts      int

	// Stats.
	Parked       uint64 // packets that had to wait
	PassedThru   uint64 // packets released immediately
	CurrentHeld  int
	PeakHeld     int      // peak end-of-timestamp occupancy; final after Finalize
	ReorderDelay sim.Time // total extra waiting summed over parked packets

	// TrackSteps, when set before the first Deliver, logs the
	// occupancy after each distinct delivery timestamp. Sharded runs
	// enable it on the per-shard buffers so MergePeak can reconstruct
	// the global occupancy profile exactly.
	TrackSteps bool
	steps      []Step

	// Peak occupancy is sampled once per simulated timestamp, at the
	// occupancy left after the last delivery of that timestamp — not
	// at every park. Mid-timestamp transients depend on the dispatch
	// order of equal-time deliveries at different hosts, which is the
	// one thing a sharded run does not reproduce; end-of-timestamp
	// occupancy is order-free, so both engines report the same peak.
	lastAt  sim.Time
	hasLast bool

	arrival map[uint64]sim.Time // packet ID -> arrival time, for delay accounting

	// out is the release-run scratch returned by Deliver, reused
	// across calls so an in-order delivery allocates nothing.
	out []*ib.Packet
}

// NewBuffer returns an empty reorder buffer.
func NewBuffer() *Buffer {
	return &Buffer{
		expected: make(map[flowKey]uint64),
		held:     make(map[flowKey]map[uint64]*ib.Packet),
		arrival:  make(map[uint64]sim.Time),
	}
}

// NewBufferForHosts returns an empty reorder buffer for a subnet of
// numHosts hosts, storing the per-flow expected counters densely (see
// Buffer.expectedDense). Src and Dst of every delivered packet must be
// below numHosts.
func NewBufferForHosts(numHosts int) *Buffer {
	return &Buffer{
		expectedDense: make([]uint64, numHosts*numHosts),
		numHosts:      numHosts,
		held:          make(map[flowKey]map[uint64]*ib.Packet),
		arrival:       make(map[uint64]sim.Time),
	}
}

// closeStep samples the occupancy at the end of the timestamp that
// just finished (lastAt).
func (b *Buffer) closeStep() {
	if b.CurrentHeld > b.PeakHeld {
		b.PeakHeld = b.CurrentHeld
	}
	if b.TrackSteps {
		b.steps = append(b.steps, Step{At: b.lastAt, Held: b.CurrentHeld})
	}
}

// Deliver accepts a packet arriving at the destination at time now and
// returns the packets releasable in order (possibly none, possibly a
// run ending with previously parked successors). Packets of a flow
// must carry the per-flow SeqNo the fabric assigns at injection. The
// returned slice is reused by the next Deliver call; callers that need
// to keep it must copy. Call Finalize after the last delivery to close
// the peak-occupancy accounting.
func (b *Buffer) Deliver(p *ib.Packet, now sim.Time) []*ib.Packet {
	if b.hasLast && now != b.lastAt {
		b.closeStep()
	}
	b.lastAt, b.hasLast = now, true
	key := flowKey{src: p.Src, dst: p.Dst}
	var next uint64
	di := -1
	if b.numHosts > 0 {
		di = p.Src*b.numHosts + p.Dst
		next = b.expectedDense[di]
	} else {
		next = b.expected[key]
	}
	if p.SeqNo != next {
		// Early: park it. (Late duplicates cannot happen — the fabric
		// neither drops nor duplicates — so SeqNo > next always.)
		if b.held[key] == nil {
			b.held[key] = make(map[uint64]*ib.Packet)
		}
		b.held[key][p.SeqNo] = p
		b.arrival[p.ID] = now
		b.Parked++
		b.CurrentHeld++
		return nil
	}
	// In order: release it and any parked run behind it.
	out := append(b.out[:0], p)
	b.PassedThru++
	next++
	for {
		q, ok := b.held[key][next]
		if !ok {
			break
		}
		delete(b.held[key], next)
		b.CurrentHeld--
		b.ReorderDelay += now - b.arrival[q.ID]
		delete(b.arrival, q.ID)
		out = append(out, q)
		next++
	}
	if di >= 0 {
		b.expectedDense[di] = next
	} else {
		b.expected[key] = next
	}
	b.out = out
	return out
}

// Finalize closes the last timestamp's occupancy sample. Idempotent;
// PeakHeld (and the step log) are complete afterwards.
func (b *Buffer) Finalize() {
	if b.hasLast {
		b.closeStep()
		b.hasLast = false
	}
}

// Steps returns the occupancy step log (TrackSteps must have been set;
// call Finalize first).
func (b *Buffer) Steps() []Step { return b.steps }

// MergePeak reconstructs the peak end-of-timestamp occupancy of the
// union of several finalized, step-tracked buffers holding disjoint
// flow sets (the per-shard buffers of a sharded run). Because the
// flows are disjoint, the global occupancy at any time is the sum of
// the per-buffer occupancies, which only changes at step times; the
// walk visits the union of step times in order and takes the maximum.
func MergePeak(bufs []*Buffer) int {
	idx := make([]int, len(bufs))
	cur := make([]int, len(bufs))
	peak, sum := 0, 0
	for {
		next := sim.Forever
		for i, b := range bufs {
			if idx[i] < len(b.steps) && b.steps[idx[i]].At < next {
				next = b.steps[idx[i]].At
			}
		}
		if next == sim.Forever {
			return peak
		}
		for i, b := range bufs {
			if idx[i] < len(b.steps) && b.steps[idx[i]].At == next {
				sum += b.steps[idx[i]].Held - cur[i]
				cur[i] = b.steps[idx[i]].Held
				idx[i]++
			}
		}
		if sum > peak {
			peak = sum
		}
	}
}

// Held returns the number of packets currently parked.
func (b *Buffer) Held() int { return b.CurrentHeld }

// AvgReorderDelay returns the mean extra waiting of parked packets.
func (b *Buffer) AvgReorderDelay() float64 {
	if b.Parked == 0 {
		return 0
	}
	return float64(b.ReorderDelay) / float64(b.Parked)
}

// ParkedFraction returns the share of deliveries that had to wait.
func (b *Buffer) ParkedFraction() float64 {
	total := b.Parked + b.PassedThru
	if total == 0 {
		return 0
	}
	return float64(b.Parked) / float64(total)
}

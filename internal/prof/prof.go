// Package prof wires the standard Go profilers into the command-line
// tools. Both ibsim and ibbench register -cpuprofile, -memprofile and
// -trace flags through Flags; the resulting pprof/trace files feed
// `go tool pprof` and `go tool trace` directly, which is how the
// scheduler and hot-path work in this repository is measured against
// real workloads rather than microbenchmarks alone.
package prof

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sync/atomic"
)

// Hot-path phase labels. The fabric wraps its forwarding phases in
// Phase(...) so CPU profiles and execution traces attribute samples to
// the route/arbitrate/depart stages — and, separately, to the fused
// fast path — instead of one undifferentiated switch body.
const (
	PhaseRoute     = "route"     // switch.receive: table access + buffer insert
	PhaseArbitrate = "arbitrate" // legacy delay-0 allocation pass
	PhaseDepart    = "depart"    // startTx: credit reserve + event fan-out
	PhaseFused     = "fused"     // fused kick: inline allocation/injection pass
)

// hotPhases gates the Phase wrappers. Labeling costs a goroutine-label
// swap per call, far too hot for the default run, so the fabric checks
// HotPhasesEnabled (one atomic load) and calls Phase only while a CPU
// profile or execution trace is actually being captured; Config.Start
// flips the gate for its lifetime.
var hotPhases atomic.Bool

// SetHotPhases arms or disarms the hot-path phase labels. Exposed for
// tests; production callers let Config.Start manage it.
func SetHotPhases(on bool) { hotPhases.Store(on) }

// HotPhasesEnabled reports whether hot-path phase labeling is armed.
func HotPhasesEnabled() bool { return hotPhases.Load() }

// phaseCtxs caches one labeled context per known phase so steady-state
// labeling does not rebuild the label set per call.
var phaseCtxs = map[string]context.Context{
	PhaseRoute:     phaseCtx(PhaseRoute),
	PhaseArbitrate: phaseCtx(PhaseArbitrate),
	PhaseDepart:    phaseCtx(PhaseDepart),
	PhaseFused:     phaseCtx(PhaseFused),
}

// phaseCtx builds the labeled context carrying phase=name.
func phaseCtx(name string) context.Context {
	return pprof.WithLabels(context.Background(), pprof.Labels("phase", name))
}

// Phase runs f with the goroutine labeled phase=name, so profile
// samples taken inside attribute to that phase. Callers should gate on
// HotPhasesEnabled — Phase itself always labels.
func Phase(name string, f func()) {
	ctx, ok := phaseCtxs[name]
	if !ok {
		ctx = phaseCtx(name)
	}
	pprof.Do(ctx, pprof.Labels(), func(context.Context) { f() })
}

// Config holds the three profile destinations; empty means disabled.
type Config struct {
	CPU   string
	Mem   string
	Trace string
}

// Flags registers the profiling flags on the default flag set. Call
// before flag.Parse.
func Flags() *Config {
	c := &Config{}
	flag.StringVar(&c.CPU, "cpuprofile", "", "write a CPU profile (pprof) to this file")
	flag.StringVar(&c.Mem, "memprofile", "", "write a heap allocation profile (pprof) to this file at exit")
	flag.StringVar(&c.Trace, "trace", "", "write a runtime execution trace to this file")
	return c
}

// Start begins the configured profiles and returns the stop function
// that finalizes them (defer it in main). The heap profile is written
// at stop time, after a GC, so it reflects live steady-state memory.
func (c *Config) Start() (stop func(), err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
	}
	if c.CPU != "" {
		if cpuF, err = os.Create(c.CPU); err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err = pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	if c.Trace != "" {
		if traceF, err = os.Create(c.Trace); err != nil {
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err = trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	if c.CPU != "" || c.Trace != "" {
		// Arm the hot-path phase labels only while samples are actually
		// being captured; the fabric's forwarding path checks the gate
		// with one atomic load.
		SetHotPhases(true)
	}
	return func() {
		SetHotPhases(false)
		cleanup()
		if c.Mem != "" {
			f, err := os.Create(c.Mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}

// Package prof wires the standard Go profilers into the command-line
// tools. Both ibsim and ibbench register -cpuprofile, -memprofile and
// -trace flags through Flags; the resulting pprof/trace files feed
// `go tool pprof` and `go tool trace` directly, which is how the
// scheduler and hot-path work in this repository is measured against
// real workloads rather than microbenchmarks alone.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config holds the three profile destinations; empty means disabled.
type Config struct {
	CPU   string
	Mem   string
	Trace string
}

// Flags registers the profiling flags on the default flag set. Call
// before flag.Parse.
func Flags() *Config {
	c := &Config{}
	flag.StringVar(&c.CPU, "cpuprofile", "", "write a CPU profile (pprof) to this file")
	flag.StringVar(&c.Mem, "memprofile", "", "write a heap allocation profile (pprof) to this file at exit")
	flag.StringVar(&c.Trace, "trace", "", "write a runtime execution trace to this file")
	return c
}

// Start begins the configured profiles and returns the stop function
// that finalizes them (defer it in main). The heap profile is written
// at stop time, after a GC, so it reflects live steady-state memory.
func (c *Config) Start() (stop func(), err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
	}
	if c.CPU != "" {
		if cpuF, err = os.Create(c.CPU); err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err = pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	if c.Trace != "" {
		if traceF, err = os.Create(c.Trace); err != nil {
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err = trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		cleanup()
		if c.Mem != "" {
			f, err := os.Create(c.Mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}

package subnet

import (
	"fmt"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/routing"
	"ibasim/internal/sim"
	"ibasim/internal/topology"
)

// StagedOptions models the timing of a real subnet-manager recovery:
// the SM does not learn about a fault instantly, and it reprograms
// forwarding tables one switch at a time over the management network
// (one VS command set per switch), not atomically.
type StagedOptions struct {
	// SweepDelay is the time between ReconfigureStaged being invoked
	// (the fault instant, typically) and the SM having swept the
	// subnet, computed new routes and started reprogramming.
	SweepDelay sim.Time

	// PerSwitchDelay is the VS-command latency of reprogramming one
	// switch; switch i is reprogrammed SweepDelay + (i+1)*PerSwitchDelay
	// after the call, in ascending switch-ID order.
	PerSwitchDelay sim.Time

	// OnDone, if set, runs right after the last switch is reprogrammed.
	// dropped is the total number of buffered packets the per-switch
	// reroutes had to discard as unroutable.
	OnDone func(dropped int)
}

// DefaultStagedOptions uses a 5 µs sweep and 1 µs per switch — small
// against the paper's measurement windows but long enough that the
// transient is observable.
func DefaultStagedOptions() StagedOptions {
	return StagedOptions{SweepDelay: 5_000, PerSwitchDelay: 1_000}
}

// Staged describes a scheduled staged reconfiguration.
type Staged struct {
	// FA is the adaptive routing function computed on the surviving
	// topology (what the tables will hold once the sweep completes).
	FA *routing.FA

	// StartAt is when table programming begins (sweep end); DoneAt is
	// when the last switch's table is in place.
	StartAt, DoneAt sim.Time
}

// blockProgram is one destination's precomputed table block for one
// switch.
type blockProgram struct {
	base     ib.LID
	escape   ib.PortID
	adaptive []ib.PortID
}

// ReconfigureStaged reacts to failed cables the way subnet.Reconfigure
// does, but spread over simulated time instead of atomically: the
// failure set (the given links plus every link already down, as a real
// sweep would discover) is routed around, and the new tables are
// installed one switch at a time on the network's event clock.
//
// From the sweep's start until a given switch is reprogrammed, that
// switch forwards on its escape (up*/down*) option only — its adaptive
// options were computed against the dead topology and are not trusted.
// Escape paths stale-referencing a failed link leave packets parked on
// the dead port until that switch's reprogram+reroute; packets whose
// DLID the new tables cannot route are dropped and counted (the
// host-side retry policy, fabric.Config.Retry, re-injects them).
//
// The call itself only validates, computes routes and schedules the
// sweep; the returned Staged reports when programming starts and
// completes. Duplicate links in failed are tolerated.
func ReconfigureStaged(net *fabric.Network, opts Options, st StagedOptions, failed ...topology.Link) (*Staged, error) {
	if st.SweepDelay < 0 || st.PerSwitchDelay < 0 {
		return nil, fmt.Errorf("subnet: negative staged-reconfig delay %+v", st)
	}
	for _, l := range failed {
		if err := net.SetLinkDown(l.A, l.B); err != nil {
			return nil, err
		}
	}
	// A sweep discovers every dead cable, not only the ones this call
	// names — including links downed by earlier faults or whole-switch
	// failures.
	down := net.DownLinks()
	reduced := net.Topo.Without(down...)
	if !reduced.Connected() {
		return nil, fmt.Errorf("subnet: failures disconnect the network")
	}

	eng, err := buildEngine(reduced, opts)
	if err != nil {
		return nil, err
	}
	fa := eng.Adaptive()

	block := net.Plan.RangeSize()
	mr := opts.MaxRoutingOptions
	if mr <= 0 {
		mr = block
	}
	if mr > block {
		return nil, fmt.Errorf("subnet: MR %d exceeds LID range size %d", mr, block)
	}
	// Compute every switch's new table now (the SM's route computation);
	// the scheduled events only install the results.
	programs := make([][]blockProgram, len(net.Switches))
	for s := range net.Switches {
		progs := make([]blockProgram, 0, net.Topo.NumHosts())
		for dst := 0; dst < net.Topo.NumHosts(); dst++ {
			escape, adaptive, err := reducedRouteEntries(net, reduced, fa, s, dst, mr)
			if err != nil {
				return nil, err
			}
			progs = append(progs, blockProgram{base: net.Plan.BaseLID(dst), escape: escape, adaptive: adaptive})
		}
		programs[s] = progs
	}

	now := net.Engine.Now()
	staged := &Staged{
		FA:      fa,
		StartAt: now + st.SweepDelay,
		DoneAt:  now + st.SweepDelay + sim.Time(len(net.Switches))*st.PerSwitchDelay,
	}

	// Sweep end: every switch's table is now known-stale; restrict all
	// of them to escape forwarding until each is reprogrammed.
	net.Engine.Schedule(st.SweepDelay, func() {
		for _, sw := range net.Switches {
			sw.SetEscapeOnly(true)
		}
	})
	droppedTotal := 0
	for s, sw := range net.Switches {
		s, sw := s, sw
		at := st.SweepDelay + sim.Time(s+1)*st.PerSwitchDelay
		net.Engine.Schedule(at, func() {
			for _, p := range programs[s] {
				if err := program(sw.Table(), p.base, block, p.escape, p.adaptive, sw.Enhanced()); err != nil {
					// The plan geometry was validated above; a write
					// failure here is a programming bug, not a runtime
					// condition.
					panic(fmt.Sprintf("subnet: staged reprogram switch %d: %v", s, err))
				}
			}
			sw.SetEscapeOnly(false)
			droppedTotal += sw.Reroute()
			if s == len(net.Switches)-1 && st.OnDone != nil {
				st.OnDone(droppedTotal)
			}
		})
	}
	return staged, nil
}

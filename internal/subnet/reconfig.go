package subnet

import (
	"fmt"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/routing"
	"ibasim/internal/topology"
)

// Reconfigure reacts to failed cables the way an IBA subnet manager
// does after a sweep discovers a topology change: it recomputes
// routing on the surviving graph, reprograms every forwarding table
// (port numbering is unchanged — ports are physical), and re-routes
// packets already buffered in switches so none keeps waiting on a
// dead port. The failed links must leave the switch graph connected.
//
// The reconfiguration is modelled as atomic at the current simulated
// instant. Real subnet managers reprogram switches one VS-command at a
// time; ReconfigureStaged models that transient (sweep delay,
// per-switch programming latency, escape-only forwarding on stale
// switches). Duplicate links in failed are tolerated: the failure set
// is deduplicated and re-failing a dead link is a no-op.
func Reconfigure(net *fabric.Network, opts Options, failed ...topology.Link) (*routing.FA, error) {
	for _, l := range failed {
		if err := net.SetLinkDown(l.A, l.B); err != nil {
			return nil, err
		}
	}
	reduced := net.Topo.Without(failed...)
	if !reduced.Connected() {
		return nil, fmt.Errorf("subnet: failures disconnect the network")
	}

	eng, err := buildEngine(reduced, opts)
	if err != nil {
		return nil, err
	}
	fa := eng.Adaptive()

	block := net.Plan.RangeSize()
	mr := opts.MaxRoutingOptions
	if mr <= 0 {
		mr = block
	}
	if mr > block {
		return nil, fmt.Errorf("subnet: MR %d exceeds LID range size %d", mr, block)
	}
	for s, sw := range net.Switches {
		for dst := 0; dst < net.Topo.NumHosts(); dst++ {
			escape, adaptive, err := reducedRouteEntries(net, reduced, fa, s, dst, mr)
			if err != nil {
				return nil, err
			}
			base := net.Plan.BaseLID(dst)
			if err := program(sw.Table(), base, block, escape, adaptive, sw.Enhanced()); err != nil {
				return nil, err
			}
		}
	}
	for _, sw := range net.Switches {
		sw.Reroute()
	}
	return fa, nil
}

// reducedRouteEntries mirrors routeEntries but resolves hops on the
// reduced topology while mapping ports through the original wiring.
func reducedRouteEntries(net *fabric.Network, reduced *topology.Topology, fa *routing.FA, s, dst, mr int) (escape ib.PortID, adaptive []ib.PortID, err error) {
	d := net.Topo.HostSwitch(dst)
	if d == s {
		p := net.HostPort(dst)
		return p, []ib.PortID{p}, nil
	}
	escapeHop := fa.Escape(s, d)
	escape, err = net.PortToNeighbor(s, escapeHop)
	if err != nil {
		return 0, nil, err
	}
	for _, hop := range fa.Options(s, d, mr-1) {
		p, err := net.PortToNeighbor(s, hop)
		if err != nil {
			return 0, nil, err
		}
		adaptive = append(adaptive, p)
	}
	return escape, adaptive, nil
}

package subnet

import (
	"testing"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/topology"
)

func buildNet(t *testing.T, n, k int, seed uint64, lmc uint, adaptive bool) *fabric.Network {
	t.Helper()
	topo, err := topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches: n, HostsPerSwitch: 4, InterSwitch: k, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return netFromTopo(t, topo, lmc, adaptive)
}

func netFromTopo(t *testing.T, topo *topology.Topology, lmc uint, adaptive bool) *fabric.Network {
	t.Helper()
	plan, err := ib.NewAddressPlan(topo.NumHosts(), lmc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fabric.DefaultConfig()
	cfg.AdaptiveSwitches = adaptive
	net, err := fabric.NewNetwork(topo, plan, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestConfigureProgramsEverySlot(t *testing.T) {
	net := buildNet(t, 8, 4, 1, 2, true)
	opts := Options{MaxRoutingOptions: 4, Root: -1}
	if _, err := Configure(net, opts); err != nil {
		t.Fatal(err)
	}
	for _, sw := range net.Switches {
		for dst := 0; dst < net.Topo.NumHosts(); dst++ {
			base := net.Plan.BaseLID(dst)
			for off := 0; off < net.Plan.RangeSize(); off++ {
				if sw.Table().Get(base+ib.LID(off)) == ib.InvalidPort {
					t.Fatalf("switch %d LID %d unprogrammed", sw.ID(), base+ib.LID(off))
				}
			}
		}
	}
}

func TestConfigureEscapeSlotIsUpDownHop(t *testing.T) {
	net := buildNet(t, 16, 4, 2, 1, true)
	fa, err := Configure(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for s, sw := range net.Switches {
		for dst := 0; dst < net.Topo.NumHosts(); dst++ {
			d := net.Topo.HostSwitch(dst)
			want := net.HostPort(dst)
			if d != s {
				hop := fa.Escape(s, d)
				p, err := net.PortToNeighbor(s, hop)
				if err != nil {
					t.Fatal(err)
				}
				want = p
			}
			if got := sw.Table().Get(net.Plan.BaseLID(dst)); got != want {
				t.Fatalf("switch %d dst %d escape slot = %d, want %d", s, dst, got, want)
			}
		}
	}
}

func TestConfigureAdaptiveSlotsAreMinimalHops(t *testing.T) {
	net := buildNet(t, 16, 4, 3, 2, true)
	fa, err := Configure(net, Options{MaxRoutingOptions: 4, Root: -1})
	if err != nil {
		t.Fatal(err)
	}
	dists := net.Topo.AllDistances()
	for s, sw := range net.Switches {
		for dst := 0; dst < net.Topo.NumHosts(); dst++ {
			d := net.Topo.HostSwitch(dst)
			if d == s {
				continue
			}
			_, adaptive, err := sw.Table().Lookup(net.Plan.DLIDFor(dst, true))
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range adaptive {
				// Map the port back to a neighbour and check minimality.
				found := false
				for _, hop := range net.Topo.Neighbors(s) {
					hp, err := net.PortToNeighbor(s, hop)
					if err != nil {
						t.Fatal(err)
					}
					if hp == p {
						found = true
						if dists[hop][d] != dists[s][d]-1 {
							t.Fatalf("switch %d dst %d: adaptive port %d not minimal", s, dst, p)
						}
					}
				}
				if !found {
					t.Fatalf("switch %d dst %d: adaptive port %d is not an inter-switch port", s, dst, p)
				}
			}
			_ = fa
		}
	}
}

func TestConfigureDeterministicOnlySwitchesUniformSlots(t *testing.T) {
	// Baseline subnets store the escape port at every slot (§4.2).
	net := buildNet(t, 8, 4, 4, 2, false)
	if _, err := Configure(net, Options{MaxRoutingOptions: 4, Root: -1}); err != nil {
		t.Fatal(err)
	}
	for _, sw := range net.Switches {
		for dst := 0; dst < net.Topo.NumHosts(); dst++ {
			base := net.Plan.BaseLID(dst)
			first := sw.Table().Get(base)
			for off := 1; off < net.Plan.RangeSize(); off++ {
				if got := sw.Table().Get(base + ib.LID(off)); got != first {
					t.Fatalf("switch %d dst %d slot %d = %d, want %d", sw.ID(), dst, off, got, first)
				}
			}
		}
	}
}

func TestConfigureRejectsMROverLMC(t *testing.T) {
	net := buildNet(t, 8, 4, 5, 1, true) // block size 2
	if _, err := Configure(net, Options{MaxRoutingOptions: 3, Root: -1}); err == nil {
		t.Fatal("MR 3 accepted with LMC 1")
	}
}

func TestConfigureExplicitRoot(t *testing.T) {
	net := buildNet(t, 8, 4, 6, 1, true)
	fa, err := Configure(net, Options{MaxRoutingOptions: 2, Root: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fa.Det.UD.Root != 3 {
		t.Fatalf("root = %d, want 3", fa.Det.UD.Root)
	}
}

func TestConfigureZeroMRFillsBlock(t *testing.T) {
	net := buildNet(t, 8, 4, 7, 2, true)
	if _, err := Configure(net, Options{MaxRoutingOptions: 0, Root: -1}); err != nil {
		t.Fatal(err)
	}
	// With MR=0 ("fill the block"), destinations with several minimal
	// hops should expose more than one adaptive option somewhere.
	multi := false
	for _, sw := range net.Switches {
		for dst := 0; dst < net.Topo.NumHosts(); dst++ {
			_, adaptive, err := sw.Table().Lookup(net.Plan.DLIDFor(dst, true))
			if err != nil {
				t.Fatal(err)
			}
			if len(adaptive) > 1 {
				multi = true
			}
		}
	}
	if !multi {
		t.Fatal("no destination exposes multiple adaptive options")
	}
}

package subnet

import (
	"testing"

	"ibasim/internal/ib"
	"ibasim/internal/sim"
	"ibasim/internal/topology"
)

func TestReconfigureAvoidsFailedLink(t *testing.T) {
	net := buildNet(t, 16, 4, 1, 1, true)
	if _, err := Configure(net, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	failed := net.Topo.Links[0]
	if _, err := Reconfigure(net, DefaultOptions(), failed); err != nil {
		t.Fatal(err)
	}
	if !net.LinkIsDown(failed.A, failed.B) {
		t.Fatal("failed link not marked down")
	}
	// No forwarding-table entry may reference the dead ports.
	pa, err := net.PortToNeighbor(failed.A, failed.B)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := net.PortToNeighbor(failed.B, failed.A)
	if err != nil {
		t.Fatal(err)
	}
	for dst := 0; dst < net.Topo.NumHosts(); dst++ {
		base := net.Plan.BaseLID(dst)
		for off := 0; off < net.Plan.RangeSize(); off++ {
			if net.Switches[failed.A].Table().Get(base+ib.LID(off)) == pa {
				t.Fatalf("switch %d still routes dst %d over dead port", failed.A, dst)
			}
			if net.Switches[failed.B].Table().Get(base+ib.LID(off)) == pb {
				t.Fatalf("switch %d still routes dst %d over dead port", failed.B, dst)
			}
		}
	}
}

func TestReconfigureRejectsDisconnection(t *testing.T) {
	// A line topology disconnects when any link fails.
	topo, err := topology.Line(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	net := netFromTopo(t, topo, 1, true)
	if _, err := Configure(net, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := Reconfigure(net, DefaultOptions(), topo.Links[1]); err == nil {
		t.Fatal("disconnecting failure accepted")
	}
}

func TestTrafficSurvivesReconfiguration(t *testing.T) {
	net := buildNet(t, 16, 4, 3, 1, true)
	if _, err := Configure(net, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(11)
	hosts := net.Topo.NumHosts()
	delivered := 0
	net.OnDelivered = func(_ *ib.Packet) { delivered++ }
	inject := func(n int) {
		for i := 0; i < n; i++ {
			src, dst := rng.Intn(hosts), rng.Intn(hosts)
			if src == dst {
				dst = (dst + 1) % hosts
			}
			net.Hosts[src].Inject(net.NewPacket(src, dst, 32, rng.Bool(0.5)))
		}
	}

	// Phase 1: traffic on the intact network, partially drained so
	// packets are buffered mid-flight when the failure hits.
	inject(800)
	net.Engine.Run(5_000)

	// Fail one link and reconfigure immediately.
	failed := net.Topo.Links[2]
	if _, err := Reconfigure(net, DefaultOptions(), failed); err != nil {
		t.Fatal(err)
	}

	// Phase 2: more traffic on the degraded network.
	inject(800)
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1600 {
		t.Fatalf("delivered %d, want 1600", delivered)
	}
	// The dead cable carried nothing after the reconfiguration; since
	// packets in flight complete, allow the ones already serialized.
	if err := net.CreditsIntact(); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigureMultipleFailures(t *testing.T) {
	net := buildNet(t, 32, 6, 5, 1, true)
	if _, err := Configure(net, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	fails := []topology.Link{net.Topo.Links[0], net.Topo.Links[10], net.Topo.Links[20]}
	if _, err := Reconfigure(net, DefaultOptions(), fails...); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(13)
	hosts := net.Topo.NumHosts()
	delivered := 0
	net.OnDelivered = func(_ *ib.Packet) { delivered++ }
	for i := 0; i < 1000; i++ {
		src, dst := rng.Intn(hosts), rng.Intn(hosts)
		if src == dst {
			dst = (dst + 1) % hosts
		}
		net.Hosts[src].Inject(net.NewPacket(src, dst, 32, true))
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1000 {
		t.Fatalf("delivered %d, want 1000", delivered)
	}
}

// TestReconfigureInvalidatesLookupCache guards the AdaptiveTable block
// cache against stale decodes: a Lookup performed before the subnet
// manager reprograms a switch must not pin the superseded option set.
// After Reconfigure, fresh lookups have to agree with the linear
// (subnet-manager) view of the reprogrammed table and must not offer
// any dead port.
func TestReconfigureInvalidatesLookupCache(t *testing.T) {
	net := buildNet(t, 16, 4, 1, 1, true)
	if _, err := Configure(net, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// Warm every switch's decoded-block cache for every destination,
	// as steady-state traffic would.
	warm := func() {
		for _, sw := range net.Switches {
			for dst := 0; dst < net.Topo.NumHosts(); dst++ {
				if _, _, err := sw.Table().Lookup(net.Plan.AdaptiveLID(dst)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	warm()

	failed := net.Topo.Links[0]
	if _, err := Reconfigure(net, DefaultOptions(), failed); err != nil {
		t.Fatal(err)
	}
	deadPort := func(s int) (ib.PortID, bool) {
		switch s {
		case failed.A:
			p, err := net.PortToNeighbor(failed.A, failed.B)
			if err != nil {
				t.Fatal(err)
			}
			return p, true
		case failed.B:
			p, err := net.PortToNeighbor(failed.B, failed.A)
			if err != nil {
				t.Fatal(err)
			}
			return p, true
		}
		return 0, false
	}
	for s, sw := range net.Switches {
		dead, hasDead := deadPort(s)
		for dst := 0; dst < net.Topo.NumHosts(); dst++ {
			base := net.Plan.BaseLID(dst)
			escape, adaptive, err := sw.Table().Lookup(net.Plan.AdaptiveLID(dst))
			if err != nil {
				t.Fatal(err)
			}
			if escape != sw.Table().Get(base) {
				t.Fatalf("switch %d dst %d: cached escape %d != linear view %d",
					s, dst, escape, sw.Table().Get(base))
			}
			if hasDead {
				if escape == dead {
					t.Fatalf("switch %d dst %d: stale cache still escapes over dead port %d", s, dst, dead)
				}
				for _, p := range adaptive {
					if p == dead {
						t.Fatalf("switch %d dst %d: stale cache still offers dead port %d", s, dst, dead)
					}
				}
			}
		}
	}
}

package subnet

import (
	"testing"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
	"ibasim/internal/topology"
)

// mixedNet builds a subnet where half the switches are stock
// deterministic (§4.2's mixed population).
func mixedNet(t *testing.T, n int, seed uint64) *fabric.Network {
	t.Helper()
	topo, err := topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches: n, HostsPerSwitch: 4, InterSwitch: 4, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ib.NewAddressPlan(topo.NumHosts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fabric.DefaultConfig()
	for s := 0; s < n; s += 2 {
		cfg.DeterministicOnly = append(cfg.DeterministicOnly, s)
	}
	net, err := fabric.NewNetwork(topo, plan, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestMixedPopulationTableLayout(t *testing.T) {
	net := mixedNet(t, 8, 1)
	if _, err := Configure(net, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	for _, sw := range net.Switches {
		uniform := sw.ID()%2 == 0 // even switches are deterministic-only
		for dst := 0; dst < net.Topo.NumHosts(); dst++ {
			base := net.Plan.BaseLID(dst)
			same := sw.Table().Get(base) == sw.Table().Get(base+1)
			if uniform && !same {
				t.Fatalf("det-only switch %d has distinct slots for dst %d", sw.ID(), dst)
			}
		}
		if got := sw.Enhanced(); got == uniform {
			t.Fatalf("switch %d Enhanced() = %v", sw.ID(), got)
		}
	}
}

func TestMixedPopulationTrafficDrains(t *testing.T) {
	net := mixedNet(t, 16, 3)
	if _, err := Configure(net, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	hosts := net.Topo.NumHosts()
	delivered := 0
	net.OnDelivered = func(_ *ib.Packet) { delivered++ }
	for i := 0; i < 2500; i++ {
		src, dst := rng.Intn(hosts), rng.Intn(hosts)
		if src == dst {
			dst = (dst + 1) % hosts
		}
		net.Hosts[src].Inject(net.NewPacket(src, dst, 32, rng.Bool(0.6)))
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if delivered != 2500 {
		t.Fatalf("delivered %d, want 2500", delivered)
	}
	if err := net.CreditsIntact(); err != nil {
		t.Fatal(err)
	}
}

func TestMixedPopulationOnlyEnhancedAdapt(t *testing.T) {
	net := mixedNet(t, 8, 5)
	if _, err := Configure(net, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	adaptiveAt := map[int]bool{}
	net.OnHop = func(_ *ib.Packet, sw int, _ ib.PortID, adaptive bool) {
		if adaptive {
			adaptiveAt[sw] = true
		}
	}
	rng := sim.NewRNG(9)
	hosts := net.Topo.NumHosts()
	for i := 0; i < 2000; i++ {
		src, dst := rng.Intn(hosts), rng.Intn(hosts)
		if src == dst {
			dst = (dst + 1) % hosts
		}
		net.Hosts[src].Inject(net.NewPacket(src, dst, 32, true))
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	for sw := range adaptiveAt {
		if sw%2 == 0 {
			t.Fatalf("deterministic-only switch %d made an adaptive decision", sw)
		}
	}
	if len(adaptiveAt) == 0 {
		t.Fatal("no adaptive decisions anywhere despite enhanced switches")
	}
}

func TestDeterministicOnlyOutOfRangeRejected(t *testing.T) {
	topo, err := topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches: 8, HostsPerSwitch: 4, InterSwitch: 4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ib.NewAddressPlan(topo.NumHosts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fabric.DefaultConfig()
	cfg.DeterministicOnly = []int{99}
	if _, err := fabric.NewNetwork(topo, plan, cfg, 1); err == nil {
		t.Fatal("out-of-range DeterministicOnly accepted")
	}
}

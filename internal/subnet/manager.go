// Package subnet plays the role of the IBA subnet manager: at
// initialization time it computes the routing function over the
// discovered topology, assigns every destination port its LID range
// (done via ib.AddressPlan when the network is built), and fills each
// switch's linear forwarding table — storing the different routing
// choices of a destination "in a range of addresses of the forwarding
// tables, as if they were different destinations" (§4.1).
package subnet

import (
	"fmt"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/routing"
	"ibasim/internal/topology"
)

// Options configures table computation.
type Options struct {
	// MaxRoutingOptions is the paper's MR: the total number of routing
	// options programmed per destination at each switch, counting the
	// escape option. It must fit the network's LID range size
	// (MR <= 2^LMC). Zero means "fill every slot the LMC allows".
	MaxRoutingOptions int

	// Root forces the up*/down* root switch; -1 selects the default
	// (highest-degree) root.
	Root int

	// Engine selects the routing family builder (fat-tree D-mod-K,
	// torus dimension-order, ...). nil means up*/down* rooted per Root —
	// the paper's irregular-network configuration. Reconfiguration
	// passes the surviving topology back through the same builder;
	// structured-family builders detect the broken structure and fall
	// back to up*/down* on their own.
	Engine routing.Builder

	// SourceMultipath programs this many alternative deterministic
	// up*/down* routings into each destination's LID block instead of
	// the FA layout — the baseline the paper's introduction discusses
	// (path selected at the source, plain switches). Requires the
	// network's Config.SourceMultipath to match. 0 disables it.
	SourceMultipath int
}

// DefaultOptions requests two routing options (one escape, one
// adaptive), the paper's Figure-3 configuration, with automatic root
// selection.
func DefaultOptions() Options { return Options{MaxRoutingOptions: 2, Root: -1} }

// Configure computes up*/down* and FA routing for the network's
// topology and programs every switch's forwarding table. It returns
// the FA routing function for analysis (Table 2, path statistics).
//
// Slot layout per destination host (base address b, block size 2^LMC):
//
//	b+0: escape option — the up*/down* deterministic next hop;
//	b+1 .. b+MR-1: adaptive options — minimal next hops;
//	remaining slots: cycle-filled with the adaptive options so every
//	address of the block is programmed (a spec requirement: any DLID
//	in the range must route).
//
// When the network's switches are plain deterministic (the baseline),
// every slot of a block stores the escape port, exactly what §4.2
// prescribes for mixing deterministic-only switches into the subnet.
func Configure(net *fabric.Network, opts Options) (*routing.FA, error) {
	eng, err := buildEngine(net.Topo, opts)
	if err != nil {
		return nil, err
	}
	fa := eng.Adaptive()

	if opts.SourceMultipath > 1 {
		ud := eng.Deterministic().UD
		if ud == nil {
			return nil, fmt.Errorf("subnet: source multipath needs up*/down* variants, not the %s engine", eng.Name())
		}
		if err := configureMultipath(net, ud, opts.SourceMultipath); err != nil {
			return nil, err
		}
		return fa, nil
	}

	block := net.Plan.RangeSize()
	mr := opts.MaxRoutingOptions
	if mr <= 0 {
		mr = block
	}
	if mr > block {
		return nil, fmt.Errorf("subnet: MR %d exceeds LID range size %d (raise LMC)", mr, block)
	}

	for s, sw := range net.Switches {
		for dst := 0; dst < net.Topo.NumHosts(); dst++ {
			escape, adaptive, err := routeEntries(net, fa, s, dst, mr)
			if err != nil {
				return nil, err
			}
			base := net.Plan.BaseLID(dst)
			if err := program(sw.Table(), base, block, escape, adaptive, sw.Enhanced()); err != nil {
				return nil, err
			}
		}
	}
	return fa, nil
}

// buildEngine constructs and verifies the routing engine for one
// topology per the options: the configured family builder, or the
// up*/down* default. Verification (escape-CDG acyclicity) always runs
// before any table is written.
func buildEngine(topo *topology.Topology, opts Options) (routing.Engine, error) {
	build := opts.Engine
	if build == nil {
		build = routing.UpDownBuilder(opts.Root)
	}
	eng, err := build(topo)
	if err != nil {
		return nil, err
	}
	if err := eng.Verify(); err != nil {
		return nil, err
	}
	return eng, nil
}

// configureMultipath programs k alternative deterministic up*/down*
// routings (tie-break variants on one link orientation) into the first
// k slots of every destination block and cycle-fills the rest. All
// variants conform to the same up*/down* relation, so their mixture is
// deadlock-free; VerifyDeadlockFreeAll re-checks the union CDG
// mechanically before any table is written.
func configureMultipath(net *fabric.Network, ud *routing.UpDown, k int) error {
	block := net.Plan.RangeSize()
	if k > block {
		return fmt.Errorf("subnet: %d source paths exceed LID range size %d (raise LMC)", k, block)
	}
	if net.Cfg.SourceMultipath != k {
		return fmt.Errorf("subnet: network configured for %d source paths, manager for %d",
			net.Cfg.SourceMultipath, k)
	}
	variants := make([]*routing.Deterministic, k)
	for v := range variants {
		variants[v] = ud.TablesVariant(v)
		if err := variants[v].Validate(); err != nil {
			return fmt.Errorf("subnet: variant %d: %w", v, err)
		}
	}
	if err := routing.VerifyDeadlockFreeAll(variants); err != nil {
		return err
	}
	for s, sw := range net.Switches {
		for dst := 0; dst < net.Topo.NumHosts(); dst++ {
			d := net.Topo.HostSwitch(dst)
			base := net.Plan.BaseLID(dst)
			for off := 0; off < block; off++ {
				port := net.HostPort(dst)
				if d != s {
					hop := variants[off%k].NextHop[s][d]
					p, err := net.PortToNeighbor(s, hop)
					if err != nil {
						return err
					}
					port = p
				}
				if err := sw.Table().Set(base+ib.LID(off), port); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// routeEntries resolves the escape port and up to mr-1 adaptive ports
// for destination host dst as seen from switch s.
//
// In mixed subnets (§4.2) adaptive options leading to a
// deterministic-only switch are NOT programmed. A stock switch's VL
// buffer has a single service point, so packets parked behind its head
// inherit the head's dependencies; if adaptive (non-up*/down*) moves
// could deliver packets into that buffer, its dependencies would no
// longer be chains of consecutive up*/down* table moves and the escape
// network's acyclicity — the whole deadlock-freedom argument — would
// break (we reproduced exactly that hang before adding this filter;
// TestMixedPopulationTrafficDrains pins it). Restricting adaptivity to
// enhanced-to-enhanced hops keeps every packet in a stock switch on a
// pure table path.
func routeEntries(net *fabric.Network, fa *routing.FA, s, dst, mr int) (ib.PortID, []ib.PortID, error) {
	d := net.Topo.HostSwitch(dst)
	if d == s {
		// Local delivery: the host-facing port is the only option.
		p := net.HostPort(dst)
		return p, []ib.PortID{p}, nil
	}
	escapeHop := fa.Escape(s, d)
	escape, err := net.PortToNeighbor(s, escapeHop)
	if err != nil {
		return 0, nil, err
	}
	var adaptive []ib.PortID
	for _, hop := range fa.Options(s, d, mr-1) {
		if !net.Switches[hop].Enhanced() && d != hop {
			continue
		}
		p, err := net.PortToNeighbor(s, hop)
		if err != nil {
			return 0, nil, err
		}
		adaptive = append(adaptive, p)
	}
	return escape, adaptive, nil
}

// program writes one destination's block of table slots.
func program(tab interface {
	Set(ib.LID, ib.PortID) error
}, base ib.LID, block int, escape ib.PortID, adaptive []ib.PortID, enhanced bool) error {
	if err := tab.Set(base, escape); err != nil {
		return err
	}
	for off := 1; off < block; off++ {
		p := escape
		if enhanced && len(adaptive) > 0 {
			p = adaptive[(off-1)%len(adaptive)]
		}
		if err := tab.Set(base+ib.LID(off), p); err != nil {
			return err
		}
	}
	return nil
}

package subnet

import (
	"strings"
	"testing"

	"ibasim/internal/ib"
	"ibasim/internal/topology"
)

func TestStagedEscapeOnlyTransientAndCompletion(t *testing.T) {
	net := buildNet(t, 8, 4, 1, 1, true)
	if _, err := Configure(net, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	failed := net.Topo.Links[0]
	done := -1
	st := StagedOptions{SweepDelay: 2_000, PerSwitchDelay: 500, OnDone: func(dropped int) { done = dropped }}
	staged, err := ReconfigureStaged(net, DefaultOptions(), st, failed)
	if err != nil {
		t.Fatal(err)
	}
	if want := net.Engine.Now() + 2_000 + 8*500; staged.DoneAt != want {
		t.Fatalf("DoneAt = %d, want %d", staged.DoneAt, want)
	}

	// Before the sweep completes nothing has changed.
	net.Engine.Run(1_999)
	for _, sw := range net.Switches {
		if sw.EscapeOnly() {
			t.Fatal("escape-only before the sweep delay elapsed")
		}
	}
	// Inside the transient every switch forwards escape-only.
	net.Engine.Run(2_200)
	for _, sw := range net.Switches {
		if !sw.EscapeOnly() {
			t.Fatalf("switch %d not escape-only during the transient", sw.ID())
		}
	}
	// After DoneAt the fabric is fully reprogrammed and adaptive again.
	net.Engine.Run(staged.DoneAt + 1)
	for _, sw := range net.Switches {
		if sw.EscapeOnly() {
			t.Fatalf("switch %d still escape-only after recovery", sw.ID())
		}
	}
	if done < 0 {
		t.Fatal("OnDone never called")
	}
	// The reprogrammed tables avoid the dead ports.
	pa, err := net.PortToNeighbor(failed.A, failed.B)
	if err != nil {
		t.Fatal(err)
	}
	for dst := 0; dst < net.Topo.NumHosts(); dst++ {
		base := net.Plan.BaseLID(dst)
		for off := 0; off < net.Plan.RangeSize(); off++ {
			if net.Switches[failed.A].Table().Get(base+ib.LID(off)) == pa {
				t.Fatalf("switch %d still routes dst %d over dead port", failed.A, dst)
			}
		}
	}
}

func TestStagedRejectsDisconnection(t *testing.T) {
	topo, err := topology.Line(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	net := netFromTopo(t, topo, 1, true)
	if _, err := Configure(net, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	_, err = ReconfigureStaged(net, DefaultOptions(), DefaultStagedOptions(), topo.Links[1])
	if err == nil {
		t.Fatal("disconnecting failure accepted")
	}
	if !strings.Contains(err.Error(), "subnet: failures disconnect the network") {
		t.Fatalf("error = %v", err)
	}
}

// TestReconfigureDuplicateFailedLinks: re-reporting an already-failed
// link (as repeated SM sweeps do) must be an idempotent no-op.
func TestReconfigureDuplicateFailedLinks(t *testing.T) {
	net := buildNet(t, 16, 4, 1, 1, true)
	if _, err := Configure(net, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	failed := net.Topo.Links[0]
	if _, err := Reconfigure(net, DefaultOptions(), failed, failed, failed); err != nil {
		t.Fatalf("duplicate failed links rejected: %v", err)
	}
	if !net.LinkIsDown(failed.A, failed.B) {
		t.Fatal("failed link not marked down")
	}
	// Reconfiguring again with the same (already applied) failure set
	// must also succeed.
	if _, err := Reconfigure(net, DefaultOptions(), failed); err != nil {
		t.Fatalf("re-reconfigure of a known failure rejected: %v", err)
	}
}

func TestStagedDuplicateFailedLinks(t *testing.T) {
	net := buildNet(t, 16, 4, 1, 1, true)
	if _, err := Configure(net, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	failed := net.Topo.Links[0]
	if _, err := ReconfigureStaged(net, DefaultOptions(), DefaultStagedOptions(), failed, failed); err != nil {
		t.Fatalf("duplicate failed links rejected: %v", err)
	}
	net.Engine.RunUntilIdle()
}

func TestReconfigureRejectsMROverRange(t *testing.T) {
	net := buildNet(t, 8, 4, 1, 1, true) // LMC 1 → LID range size 2
	if _, err := Configure(net, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MaxRoutingOptions = net.Plan.RangeSize() + 1
	_, err := Reconfigure(net, opts, net.Topo.Links[0])
	if err == nil {
		t.Fatal("MR over LID range accepted")
	}
	if !strings.Contains(err.Error(), "exceeds LID range size") {
		t.Fatalf("error = %v", err)
	}
}

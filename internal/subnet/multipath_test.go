package subnet

import (
	"testing"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
	"ibasim/internal/topology"
)

func buildMultipathNet(t *testing.T, n, k int, seed uint64, lmc uint, paths int) *fabric.Network {
	t.Helper()
	topo, err := topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches: n, HostsPerSwitch: 4, InterSwitch: k, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ib.NewAddressPlan(topo.NumHosts(), lmc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fabric.DefaultConfig()
	cfg.AdaptiveSwitches = false
	cfg.SourceMultipath = paths
	net, err := fabric.NewNetwork(topo, plan, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestMultipathProgramsAllSlots(t *testing.T) {
	net := buildMultipathNet(t, 16, 4, 1, 2, 4)
	if _, err := Configure(net, Options{Root: -1, SourceMultipath: 4}); err != nil {
		t.Fatal(err)
	}
	for _, sw := range net.Switches {
		for dst := 0; dst < net.Topo.NumHosts(); dst++ {
			base := net.Plan.BaseLID(dst)
			for off := 0; off < 4; off++ {
				if sw.Table().Get(base+ib.LID(off)) == ib.InvalidPort {
					t.Fatalf("switch %d slot %d unprogrammed", sw.ID(), off)
				}
			}
		}
	}
}

func TestMultipathRejectsMismatch(t *testing.T) {
	net := buildMultipathNet(t, 8, 4, 2, 2, 2)
	if _, err := Configure(net, Options{Root: -1, SourceMultipath: 4}); err == nil {
		t.Fatal("manager/network path-count mismatch accepted")
	}
}

func TestMultipathRejectsTooManyPaths(t *testing.T) {
	net := buildMultipathNet(t, 8, 4, 3, 1, 4) // block size 2 < 4 paths
	if _, err := Configure(net, Options{Root: -1, SourceMultipath: 4}); err == nil {
		t.Fatal("4 paths accepted with LMC 1")
	}
}

func TestMultipathTrafficDrainsAndUsesAlternatives(t *testing.T) {
	net := buildMultipathNet(t, 16, 4, 4, 1, 2)
	if _, err := Configure(net, Options{Root: -1, SourceMultipath: 2}); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(5)
	hosts := net.Topo.NumHosts()
	dlids := map[ib.LID]bool{}
	delivered := 0
	net.OnDelivered = func(p *ib.Packet) {
		delivered++
		dlids[p.DLID] = true
	}
	for i := 0; i < 1500; i++ {
		src, dst := rng.Intn(hosts), rng.Intn(hosts)
		if src == dst {
			dst = (dst + 1) % hosts
		}
		net.Hosts[src].Inject(net.NewPacket(src, dst, 32, false))
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1500 {
		t.Fatalf("delivered %d, want 1500", delivered)
	}
	// Both DLID offsets must appear: the sources really select among
	// alternative paths.
	odd, even := false, false
	for lid := range dlids {
		if lid&1 == 1 {
			odd = true
		} else {
			even = true
		}
	}
	if !odd || !even {
		t.Fatal("only one path slot ever used")
	}
	if err := net.CreditsIntact(); err != nil {
		t.Fatal(err)
	}
}

func TestMultipathOverloadDrains(t *testing.T) {
	net := buildMultipathNet(t, 16, 4, 6, 2, 4)
	if _, err := Configure(net, Options{Root: -1, SourceMultipath: 4}); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	hosts := net.Topo.NumHosts()
	for i := 0; i < 4000; i++ {
		src, dst := rng.Intn(hosts), rng.Intn(hosts)
		if src == dst {
			dst = (dst + 1) % hosts
		}
		net.Hosts[src].Inject(net.NewPacket(src, dst, 256, false))
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
}

package fabric_test

import (
	"testing"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// TestMixedTrafficOverloadDrains is the regression test for a deadlock
// found during the Figure 3 reproduction: with mixed deterministic and
// adaptive traffic, an escape-queue service point that *stalls* behind
// a deterministic packet in the adaptive region (instead of serving
// it, per §4.4's pointer) reintroduces circular waits and wedges the
// network. A saturating mixed burst must always drain.
func TestMixedTrafficOverloadDrains(t *testing.T) {
	for _, size := range []int{16, 32} {
		for _, adaptiveShare := range []float64{0.25, 0.5, 0.75} {
			net := irregularNet(t, size, 4, uint64(size)*7, fabric.DefaultConfig(), 2, 1)
			rng := sim.NewRNG(uint64(size) + uint64(adaptiveShare*100))
			hosts := net.Topo.NumHosts()
			for i := 0; i < 60*hosts; i++ {
				src, dst := rng.Intn(hosts), rng.Intn(hosts)
				if src == dst {
					dst = (dst + 1) % hosts
				}
				net.Hosts[src].Inject(net.NewPacket(src, dst, 32, rng.Bool(adaptiveShare)))
			}
			if err := net.Drain(); err != nil {
				t.Fatalf("size=%d adaptive=%.0f%%: %v", size, adaptiveShare*100, err)
			}
			if err := net.CreditsIntact(); err != nil {
				t.Fatalf("size=%d adaptive=%.0f%%: %v", size, adaptiveShare*100, err)
			}
		}
	}
}

// TestMixedSustainedLoadMakesProgress runs sustained mixed traffic
// past saturation and asserts deliveries keep happening in every
// window — the live-progress property the deadlock violated (a drain
// test alone can miss wedges that a sustained generator provokes).
func TestMixedSustainedLoadMakesProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained simulation")
	}
	net := irregularNet(t, 32, 4, 11, fabric.DefaultConfig(), 2, 1)
	rng := sim.NewRNG(3)
	hosts := net.Topo.NumHosts()
	delivered := uint64(0)
	net.OnDelivered = func(_ *ib.Packet) { delivered++ }

	// Inject at ~2x the deterministic saturation rate, 50% adaptive,
	// in 20 windows of 50 us; each window must deliver something.
	var inject func()
	inject = func() {
		for h := 0; h < hosts; h++ {
			src := h
			dst := rng.Intn(hosts)
			if dst == src {
				dst = (dst + 1) % hosts
			}
			net.Hosts[src].Inject(net.NewPacket(src, dst, 32, rng.Bool(0.5)))
		}
		if net.Engine.Now() < 1_000_000 {
			net.Engine.Schedule(500, inject)
		}
	}
	net.Engine.Schedule(0, inject)

	var last uint64
	for w := 1; w <= 20; w++ {
		net.Engine.Run(sim.Time(w) * 50_000)
		if delivered == last {
			t.Fatalf("window %d: no deliveries (wedged at %d)", w, delivered)
		}
		last = delivered
	}
}

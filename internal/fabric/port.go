package fabric

import (
	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// node is anything that owns output ports and must be re-examined when
// one of them frees up or receives credits back. kick schedules the
// re-examination as a coalesced delay-0 event; inlinePass runs it
// synchronously — the hop-fusion dispatch picks inlinePass when engine
// quiescence proves the delay-0 event would run immediately next
// anyway (see pool.go).
type node interface {
	kick()
	inlinePass()
}

// outPort is the transmitting side of one directed channel: it tracks
// the link's busy time and the credit count of the peer's input buffer
// per VL (IBA's credit-based flow control is per-VL, §5.1).
type outPort struct {
	owner node
	ctx   *execCtx // the owner's execution context: credit returns run here
	id    ib.PortID

	// ownerSw is the owning switch when the port belongs to one (nil
	// for host CA ports): credit returns wake its credit-waiter list
	// before the follow-up allocation pass (see wake.go).
	ownerSw *Switch

	// Exactly one of peerSwitch/peerHost is set.
	peerSwitch *Switch
	peerPort   ib.PortID // input port number on peerSwitch
	peerHost   *Host

	credits   []int // per VL: credits available at the peer buffer
	busyUntil sim.Time

	// busyAccum integrates link occupancy for utilization reporting.
	busyAccum sim.Time
	// txPackets counts packets sent through this port.
	txPackets uint64

	// down marks a failed cable: the port never transmits again until
	// the subnet manager brings it back.
	down bool
}

func (o *outPort) free(now sim.Time) bool { return !o.down && o.busyUntil <= now }

// inPort is the receiving side: per-VL buffers plus the reverse
// reference used to send credit updates back upstream.
type inPort struct {
	id       ib.PortID
	vls      []*vlBuffer
	upstream *outPort // the transmitter feeding this port
}

package fabric_test

import (
	"testing"
	"testing/quick"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// TestDrainPropertyRandomWorkloads is the package's broadest safety
// net: across random topologies, packet sizes, adaptive shares and
// burst shapes, every finite workload drains completely with flow
// control conserved. Any deadlock, credit leak, loss or duplication
// regression trips it.
func TestDrainPropertyRandomWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized simulations")
	}
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		size := []int{8, 16}[rng.Intn(2)]
		links := []int{4, 6}[rng.Intn(2)]
		pktSize := []int{32, 64, 200, 256}[rng.Intn(4)]
		adaptiveShare := rng.Float64()
		burst := 200 + rng.Intn(800)

		net := irregularNet(t, size, links, seed, fabric.DefaultConfig(), 2, 1)
		hosts := net.Topo.NumHosts()
		delivered := 0
		net.OnDelivered = func(_ *ib.Packet) { delivered++ }
		for i := 0; i < burst; i++ {
			src, dst := rng.Intn(hosts), rng.Intn(hosts)
			if src == dst {
				dst = (dst + 1) % hosts
			}
			net.Hosts[src].Inject(net.NewPacket(src, dst, pktSize, rng.Bool(adaptiveShare)))
		}
		if err := net.Drain(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if delivered != burst {
			t.Logf("seed %d: delivered %d of %d", seed, delivered, burst)
			return false
		}
		if err := net.CreditsIntact(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

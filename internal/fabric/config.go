// Package fabric is the register-transfer-level model of an IBA
// subnet: switches with per-VL input buffers, credit-based link-level
// flow control, virtual cut-through switching, serial links with
// propagation delay, and channel adapters (hosts) that inject and sink
// packets. It realizes both a plain spec-compliant deterministic
// subnet and the paper's enhanced switches (interleaved multi-option
// forwarding tables, adaptive/escape logical queues inside each VL
// buffer, credit-split output selection).
package fabric

import (
	"fmt"

	"ibasim/internal/core"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// Config gathers the switch and link parameters of a simulation. The
// zero value is not valid; start from DefaultConfig.
type Config struct {
	// NumVLs is the number of data virtual lanes per port. The
	// paper's evaluation uses a single data VL (VLs are reserved for
	// QoS separation, which it does not exercise).
	NumVLs int

	// BufferCredits is C_max: the capacity, in 64-byte credits, of
	// each (input port, VL) buffer. It must hold at least two MTU
	// packets so each logical queue can store a whole packet (§4.4).
	BufferCredits int

	// MTU is the maximum packet size in bytes.
	MTU int

	// Split divides each VL buffer into the adaptive and escape
	// logical queues. Ignored by plain deterministic switches.
	Split core.CreditSplit

	// Selection configures when/how the output port is chosen (§4.3).
	Selection core.SelectionConfig

	// AdaptiveSwitches enables the paper's switch enhancements. When
	// false the fabric behaves as a stock IBA subnet: one routing
	// option per DLID, single logical queue per VL.
	AdaptiveSwitches bool

	// SourceMultipath enables the baseline the paper's introduction
	// dismisses: each destination's LID block holds this many
	// *deterministic* alternative paths and the source picks one per
	// packet at random. Requires plain switches (AdaptiveSwitches
	// false); 0 or 1 disables it.
	SourceMultipath int

	// DeterministicOnly lists switch IDs that stay stock even when
	// AdaptiveSwitches is true — §4.2's mixed subnet: "a given system
	// may have both switches that support adaptive routing and
	// switches that only support deterministic routing". The subnet
	// manager stores the same output port at every table address of
	// these switches.
	DeterministicOnly []int

	// Retry configures the host-side fault-recovery behaviour: a send
	// timeout on the source queue head and a bounded
	// exponential-backoff re-injection of packets the fabric dropped.
	// The zero value disables both (packets dropped by the fabric are
	// lost), preserving the paper's loss-free steady-state model.
	Retry RetryConfig

	// EngineOpts configures the simulation engine's event scheduler
	// (implementation, wheel geometry, storage arena). NewNetwork
	// prepends a span hint derived from the link timing so the default
	// calendar geometry covers the per-hop event horizon; options set
	// here are applied afterwards and win. Sharded networks build every
	// shard engine with the same resolved options (arena included).
	EngineOpts []sim.EngineOption

	// PacketArena, when set, recycles packet slab blocks from finished
	// runs (returned via Network.Recycle) into this network's packet
	// allocation. Sweeps set one arena for all their load points; see
	// the PacketArena safety contract.
	PacketArena *PacketArena

	// Shards selects the conservative-parallel execution mode: 0 or 1
	// runs the classic sequential engine; >= 2 partitions switches and
	// hosts into that many shards (clamped to the switch count), each
	// with its own event queue, advanced in lockstep lookahead windows
	// (see shard.go). Results are bit-identical to the sequential
	// engine. Requires status-aware selection and no source multipath —
	// the RNG-free forwarding paths.
	Shards int

	// Partition picks the switch partitioner for sharded mode:
	// PartitionBFS (default, "" means BFS) or PartitionRoundRobin.
	Partition string

	// Lag opts a sharded run into relaxed exactness: every shard's
	// conservative window bound is widened by this many simulated
	// nanoseconds, and cross-shard events arriving behind a shard's
	// local clock are clamped to it. 0 (the default) keeps sharded
	// execution bit-identical to the sequential engine. Positive lag
	// trades bounded, statistically validated metric error for fewer
	// barriers on tightly coupled partitions; runs stay deterministic
	// for a fixed (config, lag, shard count) and data-race-free, and
	// the invariant auditor still applies. Requires Shards > 1.
	Lag sim.Time

	// Fuse arms the hop-fusion fast path (on in DefaultConfig): a kick
	// event dispatched while its engine is quiescent at that timestamp
	// runs the allocation/injection pass inline instead of scheduling
	// the delay-0 event, eliding two queue round-trips per uncongested
	// hop. Results are bit-identical either way — the unfused engine
	// (Fuse false, the -fuse=off CLI flag) is kept as the differential
	// oracle. Fusion disarms itself at runtime when a packet tracer
	// attaches (Network.Defuse) or a tamper model is installed.
	Fuse bool

	// Arb selects the crossbar arbiter: ArbWake (the default; "" means
	// wake) drains an event-driven wait-list pending set, ArbScan is
	// the full round-robin rescan kept as the differential oracle (the
	// -arb=scan CLI flag). Results are bit-identical either way — see
	// wake.go for the equivalence argument. The wake arbiter disarms
	// itself at runtime while a tamper model (or a Tamper* mutation
	// hook) is active, since those mutate forwarding state without
	// firing the corresponding wakes.
	Arb string

	// RoutingDelay, PropagationDelay and link rate come from
	// internal/ib's constants; they are fixed by the paper's model.
}

// Arbiter modes for Config.Arb.
const (
	ArbWake = "wake"
	ArbScan = "scan"
)

// arbWake reports whether the config selects the wake-list arbiter.
func (c Config) arbWake() bool { return c.Arb == "" || c.Arb == ArbWake }

// DefaultBackoffCap is the documented ceiling on the exponential
// retry backoff when RetryConfig.BackoffMax is left zero: ~1.05 ms of
// simulated time (1<<20 ns). Before this cap existed the doubling grew
// unbounded — a policy with a large retry budget and no explicit max
// could push a re-injection arbitrarily far past the measurement
// window (and, at 60+ attempts, overflow sim.Time). Every backoff
// computation now saturates at EffectiveBackoffCap.
const DefaultBackoffCap sim.Time = 1 << 20

// RetryConfig bounds how hard a source works to get a packet through
// a faulty fabric before declaring it lost.
type RetryConfig struct {
	// MaxRetries is how many times a dropped packet is re-injected at
	// its source before it counts as lost. 0 disables retries.
	MaxRetries int

	// BackoffBase is the delay before the first re-injection; each
	// further attempt doubles it (exponential backoff), capped at
	// BackoffMax — or at DefaultBackoffCap when BackoffMax is zero, so
	// the delay never grows unbounded.
	BackoffBase sim.Time
	BackoffMax  sim.Time

	// SendTimeout drops (and, with MaxRetries > 0, retries) the source
	// queue head after it has waited this long without the link
	// becoming usable — the escape hatch for sources whose uplink or
	// whole switch died. 0 disables the timeout.
	SendTimeout sim.Time
}

// Enabled reports whether any retry machinery is active.
func (r RetryConfig) Enabled() bool { return r.MaxRetries > 0 || r.SendTimeout > 0 }

// EffectiveBackoffCap is the ceiling backoff saturates at: BackoffMax
// when set, DefaultBackoffCap otherwise.
func (r RetryConfig) EffectiveBackoffCap() sim.Time {
	if r.BackoffMax > 0 {
		return r.BackoffMax
	}
	return DefaultBackoffCap
}

// backoff returns the re-injection delay for the given attempt number
// (1-based), saturating at EffectiveBackoffCap.
func (r RetryConfig) backoff(attempt int) sim.Time {
	cap := r.EffectiveBackoffCap()
	d := r.BackoffBase
	if d <= 0 {
		d = 1
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= cap {
			return cap
		}
	}
	if d > cap {
		d = cap
	}
	return d
}

// DefaultRetry returns the fault-campaign retry policy: 8 attempts,
// 1 µs base backoff capped at 64 µs, 100 µs send timeout.
func DefaultRetry() RetryConfig {
	return RetryConfig{MaxRetries: 8, BackoffBase: 1_000, BackoffMax: 64_000, SendTimeout: 100_000}
}

// DefaultConfig returns the paper's evaluation parameters: 1 VL,
// buffers of two MTUs (so each logical queue holds one full packet),
// MTU 256 B, equal adaptive/escape split, arbitration-time
// status-aware selection, enhanced switches.
func DefaultConfig() Config {
	credits := 2 * ib.Credits(ib.DefaultMTU) * 2 // 2 MTU per logical queue
	return Config{
		NumVLs:           1,
		BufferCredits:    credits,
		MTU:              ib.DefaultMTU,
		Split:            core.SplitHalf(credits),
		Selection:        core.DefaultSelection(),
		AdaptiveSwitches: true,
		Fuse:             true,
		Arb:              ArbWake,
	}
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if c.NumVLs < 1 || c.NumVLs > ib.MaxVLs {
		return fmt.Errorf("fabric: NumVLs %d out of range", c.NumVLs)
	}
	if c.MTU <= 0 {
		return fmt.Errorf("fabric: MTU %d", c.MTU)
	}
	if c.BufferCredits < 2*ib.Credits(c.MTU) {
		return fmt.Errorf("fabric: %d credits cannot hold two %d-byte packets (§4.4 requires one per logical queue)",
			c.BufferCredits, c.MTU)
	}
	if c.Split.CMax != c.BufferCredits {
		return fmt.Errorf("fabric: split CMax %d != BufferCredits %d", c.Split.CMax, c.BufferCredits)
	}
	if c.Split.CEscape < ib.Credits(c.MTU) || c.Split.CAdaptiveCap() < ib.Credits(c.MTU) {
		return fmt.Errorf("fabric: split %+v cannot hold an MTU packet per logical queue", c.Split)
	}
	if c.Retry.MaxRetries < 0 || c.Retry.BackoffBase < 0 || c.Retry.BackoffMax < 0 || c.Retry.SendTimeout < 0 {
		return fmt.Errorf("fabric: negative retry parameter %+v", c.Retry)
	}
	if c.SourceMultipath > 1 && c.AdaptiveSwitches {
		return fmt.Errorf("fabric: source multipath is a plain-switch baseline; disable AdaptiveSwitches")
	}
	if c.Shards < 0 {
		return fmt.Errorf("fabric: negative shard count %d", c.Shards)
	}
	switch c.Partition {
	case "", PartitionBFS, PartitionRoundRobin:
	default:
		return fmt.Errorf("fabric: unknown partition strategy %q", c.Partition)
	}
	switch c.Arb {
	case "", ArbWake, ArbScan:
	default:
		return fmt.Errorf("fabric: unknown arbiter %q (want %q or %q)", c.Arb, ArbWake, ArbScan)
	}
	if err := validateShardMode(c); err != nil {
		return err
	}
	return nil
}

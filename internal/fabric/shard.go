package fabric

import (
	"fmt"
	"runtime"
	"slices"

	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// Conservative-parallel sharded execution.
//
// The fabric's switches and hosts are partitioned into P shards, each
// owning its own sim.Engine, event/entry freelists and counters. A
// coordinator advances all shards in lockstep time windows of width
// lookahead = the minimum delay any cross-shard event can carry
// (packet arrivals and credit returns cross a link, so at least the
// propagation delay; host-side retry re-injections can cross with the
// backoff base). Within a window every event a shard dispatches that
// targets another shard is deferred into a per-(src,dst) mailbox and
// merged into the target's queue at the window barrier, sorted by the
// canonical (at, schedAt, srcShard, pushOrder) key — so each shard's
// queue receives exactly the same totally ordered event stream a
// sequential run would have produced, and the simulation is bit-exact
// regardless of P or worker interleaving. The control engine
// (Network.Engine) keeps the fault injector, watchdog and staged
// subnet-manager events; whenever it has an event due, every engine is
// aligned on that timestamp and the whole timestamp executes
// single-threaded in merged (at, schedAt) order, which lets control
// code touch any shard's state safely.

// execCtx is the per-shard execution context. A sequential network has
// exactly one (the control context, id -1) shared by every switch and
// host; a sharded network has one per shard plus the control context.
// All hot-path state that PR 1 hung off the Network (freelists,
// counters, hook dispatch) lives here so shards never contend.
type execCtx struct {
	net *Network
	id  int // shard index, or -1 for the control/sequential context
	eng *sim.Engine

	// Hot-path event freelist (see pool.go) and the struct-of-arrays
	// store for buffered-packet state (see vlbuffer.go). Single-threaded
	// per context: each context's engine dispatches sequentially.
	evFree []*fabricEvent
	slab   entrySlab

	// fusedKicks counts kick events whose delay-0 pass ran inline
	// (hop fusion); Network.FusedKicks sums.
	fusedKicks uint64

	// pktSlab is the tail of the current packet allocation block;
	// NewPacket carves packets from it (see execCtx.getPacket).
	// pktBlocks remembers every block this context consumed so
	// Network.Recycle can hand them back to the sweep's PacketArena.
	pktSlab   []ib.Packet
	pktBlocks [][]ib.Packet

	// faults points at this context's drop/retry counters. The
	// sequential and control contexts share the Network's exported
	// Faults field; shard contexts keep their own and FaultTotals sums.
	faults *FaultStats

	// moved counts packet movements in this context; Network.Moved sums.
	moved uint64

	// nextID numbers packets created by this context's hosts; IDs are
	// strided by shard count so they stay globally unique (and reduce
	// to the sequential 1,2,3,... numbering when there is one context).
	nextID uint64

	// Per-shard observer hooks. When nil, dispatch falls back to the
	// Network-level hooks — the sequential path is unchanged. Sharded
	// collectors register per-shard children here (ChainShardHooks);
	// the Network-level hooks must stay nil in sharded runs.
	onCreated   func(*ib.Packet)
	onDelivered func(*ib.Packet)
	onHop       func(p *ib.Packet, sw int, out ib.PortID, adaptive bool)
	onDropped   func(p *ib.Packet, reason DropReason)

	// outbox[d] buffers events this shard produced for shard d during
	// the current window; the coordinator drains them at the barrier.
	// nil for the control context, which imports directly (it only
	// runs while every shard is parked on a barrier).
	outbox [][]mail
}

// mail is one deferred cross-shard event with its canonical ordering
// key: (at, schedAt) is the event's dispatch key, (src, idx) breaks
// the remaining ties deterministically by producing shard and
// per-window push order.
type mail struct {
	at      sim.Time
	schedAt sim.Time
	src     int
	idx     int
	ev      *fabricEvent
}

func mailLess(a, b mail) int {
	switch {
	case a.at != b.at:
		if a.at < b.at {
			return -1
		}
		return 1
	case a.schedAt != b.schedAt:
		if a.schedAt < b.schedAt {
			return -1
		}
		return 1
	case a.src != b.src:
		return a.src - b.src
	default:
		return a.idx - b.idx
	}
}

// dispatch schedules a pooled event after delay on the target context.
// Local events go straight onto this context's engine (the sequential
// fast path — target is always the local context when the network has
// one shard). Cross-shard events are deferred into the window mailbox;
// control-context events import directly, which is safe because the
// control engine only runs while the shards are barrier-parked and
// clock-aligned.
func (c *execCtx) dispatch(delay sim.Time, target *execCtx, ev *fabricEvent) {
	ev.ctx = target
	if target == c {
		c.eng.ScheduleAction(delay, ev)
		return
	}
	now := c.eng.Now()
	if c.id < 0 {
		target.eng.PushAt(now+delay, now, ev)
		return
	}
	box := c.outbox[target.id]
	c.outbox[target.id] = append(box, mail{at: now + delay, schedAt: now, src: c.id, idx: len(box), ev: ev})
}

// PartitionKind names a switch-partitioning strategy.
const (
	// PartitionBFS (the default) walks the topology breadth-first from
	// switch 0 and deals contiguous BFS runs into shards, keeping
	// neighbourhoods together so fewer links are cut than round-robin.
	PartitionBFS = "bfs"
	// PartitionRoundRobin assigns switch s to shard s mod P — the
	// simplest disjoint cover, useful as a stress partition because it
	// cuts nearly every link.
	PartitionRoundRobin = "roundrobin"
)

// partitionSwitches maps every switch to a shard in [0, shards).
// Hosts follow their attached switch. Both strategies produce a
// disjoint cover with every shard non-empty (shards is pre-clamped to
// the switch count).
func partitionSwitches(topo interface {
	// Structural subset of *topology.Topology used here; keeps the
	// partitioner trivially testable.
	Neighbors(int) []int
}, numSwitches, shards int, kind string) []int {
	part := make([]int, numSwitches)
	if kind == PartitionRoundRobin {
		for s := range part {
			part[s] = s % shards
		}
		return part
	}
	// BFS order from switch 0, restarting at the lowest unvisited
	// switch for disconnected leftovers; then cut the order into
	// near-equal contiguous blocks (first blocks one larger when the
	// count does not divide evenly).
	order := make([]int, 0, numSwitches)
	seen := make([]bool, numSwitches)
	queue := make([]int, 0, numSwitches)
	for start := 0; start < numSwitches; start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			order = append(order, s)
			for _, nb := range topo.Neighbors(s) {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	base, extra := numSwitches/shards, numSwitches%shards
	idx := 0
	for shard := 0; shard < shards; shard++ {
		n := base
		if shard < extra {
			n++
		}
		for i := 0; i < n; i++ {
			part[order[idx]] = shard
			idx++
		}
	}
	return part
}

// computeLookahead returns the conservative window width: the minimum
// simulated delay any event can carry across a shard boundary. Packet
// arrivals, deliveries and credit returns all cross on a wire and
// carry at least the propagation delay (drop paths return credits
// after exactly PropagationDelay, which undercuts serialization+
// propagation). Host-side retry re-injections (dropPacket → requeue at
// the source) can connect ANY two shards regardless of cut links, with
// the backoff base as their minimum delay, so an enabled retry policy
// caps the window too. Returns Forever when nothing can cross (single
// shard).
func computeLookahead(cfg Config, shards int) sim.Time {
	if shards <= 1 {
		return sim.Forever
	}
	la := sim.Time(ib.PropagationDelay)
	if cfg.Retry.MaxRetries > 0 || cfg.Retry.SendTimeout > 0 {
		b := cfg.Retry.BackoffBase
		if b <= 0 {
			b = 1
		}
		if b < la {
			la = b
		}
	}
	return la
}

// ShardCount returns the number of shards (0 when sequential).
func (n *Network) ShardCount() int { return len(n.shards) }

// Lookahead returns the conservative window width of a sharded
// network, or Forever when sequential or single-shard.
func (n *Network) Lookahead() sim.Time { return n.lookahead }

// ShardOfSwitch returns the shard owning switch s (0 when sequential).
func (n *Network) ShardOfSwitch(s int) int {
	if len(n.shards) == 0 {
		return 0
	}
	return n.Switches[s].ctx.id
}

// ShardOfHost returns the shard owning host h (0 when sequential).
func (n *Network) ShardOfHost(h int) int {
	if len(n.shards) == 0 {
		return 0
	}
	return n.Hosts[h].ctx.id
}

// ShardHooks carries per-shard observer callbacks (see ChainShardHooks).
type ShardHooks struct {
	OnCreated   func(*ib.Packet)
	OnDelivered func(*ib.Packet)
	OnHop       func(p *ib.Packet, sw int, out ib.PortID, adaptive bool)
	OnDropped   func(p *ib.Packet, reason DropReason)
}

// ChainShardHooks registers observer callbacks on one shard, chaining
// after any callbacks already present (same contract as the
// Network-level hooks). In sharded runs collectors must attach one
// (single-threaded) child per shard through this instead of the
// Network-level hooks, which would race across workers.
func (n *Network) ChainShardHooks(shard int, h ShardHooks) {
	c := n.shards[shard]
	if h.OnCreated != nil {
		if prev := c.onCreated; prev != nil {
			next := h.OnCreated
			c.onCreated = func(p *ib.Packet) { prev(p); next(p) }
		} else {
			c.onCreated = h.OnCreated
		}
	}
	if h.OnDelivered != nil {
		if prev := c.onDelivered; prev != nil {
			next := h.OnDelivered
			c.onDelivered = func(p *ib.Packet) { prev(p); next(p) }
		} else {
			c.onDelivered = h.OnDelivered
		}
	}
	if h.OnHop != nil {
		if prev := c.onHop; prev != nil {
			next := h.OnHop
			c.onHop = func(p *ib.Packet, sw int, out ib.PortID, adaptive bool) {
				prev(p, sw, out, adaptive)
				next(p, sw, out, adaptive)
			}
		} else {
			c.onHop = h.OnHop
		}
	}
	if h.OnDropped != nil {
		if prev := c.onDropped; prev != nil {
			next := h.OnDropped
			c.onDropped = func(p *ib.Packet, reason DropReason) { prev(p, reason); next(p, reason) }
		} else {
			c.onDropped = h.OnDropped
		}
	}
}

// FaultTotals sums the degraded-mode counters over every context. On a
// sequential network it equals the exported Faults field.
func (n *Network) FaultTotals() FaultStats {
	t := n.Faults
	for _, s := range n.shards {
		t.DroppedUnroutable += s.faults.DroppedUnroutable
		t.DroppedOnDeadPort += s.faults.DroppedOnDeadPort
		t.DroppedTimeout += s.faults.DroppedTimeout
		t.Retries += s.faults.Retries
		t.Lost += s.faults.Lost
	}
	return t
}

// PendingEvents counts events scheduled anywhere: the control engine,
// every shard engine, and undrained window mailboxes. The deadlock
// watchdog uses it — a shard-local Pending() of zero says nothing when
// a neighbouring shard still holds the credit return that will wake
// this one.
func (n *Network) PendingEvents() int {
	p := n.Engine.Pending()
	for _, s := range n.shards {
		p += s.eng.Pending()
		for _, box := range s.outbox {
			p += len(box)
		}
	}
	return p
}

// Processed sums dispatched events over every engine.
func (n *Network) Processed() uint64 {
	p := n.Engine.Processed()
	for _, s := range n.shards {
		p += s.eng.Processed()
	}
	return p
}

// Recycle returns every engine's queue storage to the arena the
// network was built with (sim.WithArena), shard queues included, so a
// sweep's next network reuses all of them; packet slab blocks go back
// to Cfg.PacketArena the same way. The caller asserts the run is over
// and nothing retains a *ib.Packet from it. Without arenas it is a
// no-op; calling it twice is safe.
func (n *Network) Recycle() {
	n.Engine.Recycle()
	for _, s := range n.shards {
		s.eng.Recycle()
	}
	if a := n.Cfg.PacketArena; a != nil {
		a.put(n.ctl.pktBlocks)
		n.ctl.pktBlocks, n.ctl.pktSlab = nil, nil
		for _, s := range n.shards {
			a.put(s.pktBlocks)
			s.pktBlocks, s.pktSlab = nil, nil
		}
	}
}

// Run advances the simulation to the horizon: sequentially on the one
// engine, or through the conservative-parallel coordinator when the
// network was built with Cfg.Shards > 1. Both produce bit-identical
// results.
func (n *Network) Run(horizon sim.Time) {
	if len(n.shards) == 0 {
		n.Engine.Run(horizon)
		return
	}
	n.runSharded(horizon)
}

// shardWorkers are the persistent window-execution goroutines of one
// sharded run. All synchronization is channel-based: the send of a
// window end publishes every coordinator-side write (mailbox imports,
// control-phase mutations) to the worker, and the completion send
// publishes the worker's writes back — which is exactly the
// happens-before structure the race detector verifies in the
// differential tests.
type shardWorkers struct {
	start []chan sim.Time
	done  chan int
}

func startWorkers(shards []*execCtx) *shardWorkers {
	w := &shardWorkers{
		start: make([]chan sim.Time, len(shards)),
		done:  make(chan int, len(shards)),
	}
	for i := range shards {
		w.start[i] = make(chan sim.Time)
		go func(c *execCtx, start <-chan sim.Time) {
			for end := range start {
				c.eng.RunBefore(end)
				w.done <- c.id
			}
		}(shards[i], w.start[i])
	}
	return w
}

func (w *shardWorkers) stop() {
	for _, ch := range w.start {
		close(ch)
	}
}

// runSharded is the coordinator loop. Invariants:
//   - between iterations every mailbox is empty and every pending
//     event sits in some engine's queue;
//   - t, the earliest pending timestamp anywhere, only ever grows;
//   - events cross shard boundaries with delay >= lookahead, so a
//     window [t, t+lookahead) can run shard-local without ever
//     receiving an event it should already have dispatched.
func (n *Network) runSharded(horizon sim.Time) {
	var w *shardWorkers
	if len(n.shards) > 1 && runtime.GOMAXPROCS(0) > 1 {
		w = startWorkers(n.shards)
		defer w.stop()
	}
	active := make([]int, 0, len(n.shards))
	for {
		t := n.Engine.NextEventTime()
		for _, s := range n.shards {
			if nt := s.eng.NextEventTime(); nt < t {
				t = nt
			}
		}
		if t > horizon || t == sim.Forever {
			break
		}
		if n.Engine.NextEventTime() == t {
			// Control work due: align everyone on t and execute the
			// whole timestamp single-threaded in merged order, so
			// control events (fault flips, staged reprogramming,
			// watchdog audits) interleave with shard events exactly as
			// the one-queue sequential run interleaves them.
			n.runMergedAt(t)
			n.drainOutboxes()
			continue
		}
		endEx := sim.Forever
		if n.lookahead < sim.Forever && t <= sim.Forever-n.lookahead {
			endEx = t + n.lookahead
		}
		if ctl := n.Engine.NextEventTime(); ctl < endEx {
			endEx = ctl
		}
		if horizon < sim.Forever && horizon+1 < endEx {
			endEx = horizon + 1
		}
		active = active[:0]
		for i, s := range n.shards {
			if s.eng.NextEventTime() < endEx {
				active = append(active, i)
			}
		}
		if w == nil || len(active) < 2 {
			for _, i := range active {
				n.shards[i].eng.RunBefore(endEx)
			}
		} else {
			for _, i := range active {
				w.start[i] <- endEx
			}
			for range active {
				<-w.done
			}
		}
		n.drainOutboxes()
	}
	// Mirror the sequential clock contract: every engine finishes at
	// the time of the last dispatched event anywhere (utilization
	// reports divide by it). Nothing pending can predate it.
	end := n.Engine.Now()
	for _, s := range n.shards {
		if now := s.eng.Now(); now > end {
			end = now
		}
	}
	if n.Engine.Now() < end {
		n.Engine.AdvanceTo(end)
	}
	for _, s := range n.shards {
		if s.eng.Now() < end {
			s.eng.AdvanceTo(end)
		}
	}
}

// runMergedAt aligns every engine on timestamp t and dispatches all
// events at exactly t, across the control and shard engines, in global
// (at, schedAt, engine) order — the control engine ordering first
// among exact key ties, matching the sequential engine's behaviour of
// dispatching an event stream in one queue. Events the timestamp
// spawns at t itself (delay-0 kicks) join the merge; later events stay
// queued; cross-shard events go to the mailboxes as usual and are
// drained by the caller.
func (n *Network) runMergedAt(t sim.Time) {
	// Hop fusion keys off "no other event at Now in MY queue"; during a
	// merged phase a same-timestamp event on another engine (a control
	// fault flip, say) may interleave between a kick and its delay-0
	// pass, so the fast path must stand down for the whole phase.
	n.inMerged = true
	defer func() { n.inMerged = false }()
	n.Engine.AdvanceTo(t)
	for _, s := range n.shards {
		s.eng.AdvanceTo(t)
	}
	for {
		var best *sim.Engine
		bestAt := sim.Forever
		var bestSched sim.Time
		consider := func(e *sim.Engine) {
			at, schedAt, ok := e.PeekKey()
			if !ok || at != t {
				return
			}
			if at < bestAt || (at == bestAt && schedAt < bestSched) {
				best, bestAt, bestSched = e, at, schedAt
			}
		}
		consider(n.Engine)
		for _, s := range n.shards {
			consider(s.eng)
		}
		if best == nil {
			return
		}
		best.Step()
	}
}

// drainOutboxes merges every window mailbox into its target shard's
// queue in canonical (at, schedAt, srcShard, pushOrder) order. Runs on
// the coordinator with all workers parked.
func (n *Network) drainOutboxes() {
	for d, dst := range n.shards {
		scratch := n.mailScratch[:0]
		for _, s := range n.shards {
			if box := s.outbox[d]; len(box) > 0 {
				scratch = append(scratch, box...)
				clear(box)
				s.outbox[d] = box[:0]
			}
		}
		if len(scratch) == 0 {
			continue
		}
		slices.SortFunc(scratch, mailLess)
		for i := range scratch {
			dst.eng.PushAt(scratch[i].at, scratch[i].schedAt, scratch[i].ev)
		}
		clear(scratch)
		n.mailScratch = scratch[:0]
	}
}

// buildShards partitions the network and creates the per-shard
// execution contexts. Called by NewNetwork after wiring; engineOpts
// are the exact options the control engine was built with, so every
// shard queue shares the geometry (and arena, when one is configured).
func (n *Network) buildShards(engineOpts []sim.EngineOption) error {
	shards := n.Cfg.Shards
	if shards > len(n.Switches) {
		shards = len(n.Switches)
	}
	if shards <= 1 {
		return nil
	}
	kind := n.Cfg.Partition
	if kind == "" {
		kind = PartitionBFS
	}
	part := partitionSwitches(n.Topo, n.Topo.NumSwitches, shards, kind)
	n.partition = part
	n.lookahead = computeLookahead(n.Cfg, shards)
	n.shards = make([]*execCtx, shards)
	for i := range n.shards {
		n.shards[i] = &execCtx{
			net:    n,
			id:     i,
			eng:    sim.NewEngine(engineOpts...),
			outbox: make([][]mail, shards),
		}
		n.shards[i].faults = &FaultStats{}
	}
	for s, sw := range n.Switches {
		sw.ctx = n.shards[part[s]]
	}
	for h, host := range n.Hosts {
		host.ctx = n.shards[part[n.Topo.HostSwitch(h)]]
	}
	return nil
}

// validateShardMode rejects configurations whose forwarding draws on
// the network-global RNG: static (non-status-aware) adaptive selection
// and source multipath both consume n.rng per packet/hop, and a
// per-shard consumption order cannot reproduce the sequential stream.
// Status-aware selection — the paper's default — is RNG-free in the
// forwarding path.
func validateShardMode(c Config) error {
	if c.Shards <= 1 {
		return nil
	}
	if !c.Selection.StatusAware {
		return fmt.Errorf("fabric: Shards > 1 requires status-aware selection (static selection draws the shared RNG per hop)")
	}
	if c.SourceMultipath > 1 {
		return fmt.Errorf("fabric: Shards > 1 is incompatible with SourceMultipath (per-packet shared RNG draw)")
	}
	return nil
}

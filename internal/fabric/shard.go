package fabric

import (
	"fmt"
	"math/bits"
	"runtime"
	"slices"

	"ibasim/internal/ib"
	"ibasim/internal/sim"
	"ibasim/internal/topology"
)

// Conservative-parallel sharded execution.
//
// The fabric's switches and hosts are partitioned into P shards, each
// owning its own sim.Engine, event/entry freelists and counters. A
// coordinator advances the shards through channel-aware conservative
// windows: for every ordered shard pair (j, i) the partition induces a
// minimum delay chanDist[j][i] that any event produced by j and
// targeting i must carry (the propagation delay of a cut link, capped
// by the retry backoff floor when a retry policy lets dropped packets
// requeue across arbitrary pairs; Forever when no channel connects the
// pair). Shard i may then safely run to
//
//	safe(i) = min over all j of (next(j) + chanDist[j][i])
//
// where next(j) is the earliest pending timestamp anywhere in shard j
// (engine queue or staged mail) — the classic Chandy–Misra–Bryant
// channel bound. Lightly-coupled shards therefore stop lockstepping on
// the global min-propagation constant: a shard with no incoming
// channel from the current straggler keeps running.
//
// Cross-shard events are deferred into per-(src,dst) outboxes whose
// backing arrays are swapped — not copied — into the destination's
// staging inbox at the barrier; each destination merges and imports its
// staged mail itself at the start of its next window, in the canonical
// (at, schedAt, srcShard, pushOrder) order, so each shard's queue
// receives exactly the same totally ordered event stream a sequential
// run would have produced and the simulation is bit-exact regardless
// of P or worker interleaving. (The one wrinkle — a staged mail whose
// producing timestamp the destination has not yet executed past — is
// handled by the held-mail rule in flushInbox.) The control engine
// (Network.Engine) keeps the fault injector, watchdog and staged
// subnet-manager events; whenever it has an event due, every engine is
// aligned on that timestamp and the whole timestamp executes
// single-threaded in merged (at, schedAt) order, which lets control
// code touch any shard's state safely.
//
// An opt-in relaxed-exactness mode (Config.Lag > 0) widens every
// window bound by the configured lag and clamps late imports to the
// destination's local clock. Runs remain data-race-free and pass the
// invariant auditor, but event interleavings near window edges may
// differ from the sequential oracle, so results are validated
// statistically rather than bit-for-bit (see the relaxed-mode tests in
// internal/experiments).

// execCtx is the per-shard execution context. A sequential network has
// exactly one (the control context, id -1) shared by every switch and
// host; a sharded network has one per shard plus the control context.
// All hot-path state that PR 1 hung off the Network (freelists,
// counters, hook dispatch) lives here so shards never contend.
type execCtx struct {
	net *Network
	id  int // shard index, or -1 for the control/sequential context
	eng *sim.Engine

	// Hot-path event freelist (see pool.go) and the struct-of-arrays
	// store for buffered-packet state (see vlbuffer.go). Single-threaded
	// per context: each context's engine dispatches sequentially.
	evFree []*fabricEvent
	slab   entrySlab

	// fusedKicks counts kick events whose delay-0 pass ran inline
	// (hop fusion); Network.FusedKicks sums.
	fusedKicks uint64

	// pktSlab is the tail of the current packet allocation block;
	// NewPacket carves packets from it (see execCtx.getPacket).
	// pktBlocks remembers every block this context consumed so
	// Network.Recycle can hand them back to the sweep's PacketArena.
	pktSlab   []ib.Packet
	pktBlocks [][]ib.Packet

	// faults points at this context's drop/retry counters. The
	// sequential and control contexts share the Network's exported
	// Faults field; shard contexts keep their own and FaultTotals sums.
	faults *FaultStats

	// moved counts packet movements in this context; Network.Moved sums.
	moved uint64

	// nextID numbers packets created by this context's hosts; IDs are
	// strided by shard count so they stay globally unique (and reduce
	// to the sequential 1,2,3,... numbering when there is one context).
	nextID uint64

	// Per-shard observer hooks. When nil, dispatch falls back to the
	// Network-level hooks — the sequential path is unchanged. Sharded
	// collectors register per-shard children here (ChainShardHooks);
	// the Network-level hooks must stay nil in sharded runs.
	onCreated   func(*ib.Packet)
	onDelivered func(*ib.Packet)
	onHop       func(p *ib.Packet, sw int, out ib.PortID, adaptive bool)
	onDropped   func(p *ib.Packet, reason DropReason)

	// outbox[d] buffers events this shard produced for shard d during
	// the current window; the coordinator swaps the filled backing
	// arrays into d's staging inbox at the barrier. nil for the control
	// context, which imports directly (it only runs while every shard
	// is parked on a barrier).
	outbox []mailbox

	// inbox stages mail swapped in from other shards' outboxes until
	// this shard imports it at the start of its next window
	// (flushInbox). Written by the coordinator between windows and by
	// this shard's worker during them, never both at once.
	inbox staging

	// Execution statistics for the imbalance report (ShardStats).
	// statWindows/statStalled/statMailsOut are coordinator-written
	// between barriers; statMailsIn/statHeld are worker-written during
	// windows — disjoint fields, so no two goroutines ever race on one.
	statWindows  uint64
	statStalled  uint64
	statMailsOut uint64
	statMailsIn  uint64
	statHeld     uint64
}

// mailbox is one (src,dst) window outbox: the mail buffered this
// window plus the minimum timestamp in it, maintained on append so the
// barrier can merge channel clocks without scanning.
type mailbox struct {
	box   []mail
	minAt sim.Time
}

// staging is a shard's inbound mail buffer between the barrier that
// swaps producer outboxes in and the window start that imports them.
// pending holds mail already merged into canonical order by a previous
// flush; slices holds raw producer arrays not yet merged; minAt is the
// minimum timestamp across both (Forever when empty) and participates
// in the shard's next-event time; spent collects consumed producer
// arrays for the coordinator's free pool.
type staging struct {
	slices  [][]mail
	pending []mail
	minAt   sim.Time
	spent   [][]mail
}

// mail is one deferred cross-shard event with its canonical ordering
// key: (at, schedAt) is the event's dispatch key, (src, idx) breaks
// the remaining ties deterministically by producing shard and
// per-window push order.
type mail struct {
	at      sim.Time
	schedAt sim.Time
	src     int
	idx     int
	ev      *fabricEvent
}

func mailLess(a, b mail) int {
	switch {
	case a.at != b.at:
		if a.at < b.at {
			return -1
		}
		return 1
	case a.schedAt != b.schedAt:
		if a.schedAt < b.schedAt {
			return -1
		}
		return 1
	case a.src != b.src:
		return a.src - b.src
	default:
		return a.idx - b.idx
	}
}

// dispatch schedules a pooled event after delay on the target context.
// Local events go straight onto this context's engine (the sequential
// fast path — target is always the local context when the network has
// one shard). Cross-shard events are deferred into the window mailbox;
// control-context events import directly, which is safe because the
// control engine only runs while the shards are barrier-parked and
// clock-aligned.
func (c *execCtx) dispatch(delay sim.Time, target *execCtx, ev *fabricEvent) {
	ev.ctx = target
	if target == c {
		c.eng.ScheduleAction(delay, ev)
		return
	}
	now := c.eng.Now()
	if c.id < 0 {
		target.eng.PushAt(now+delay, now, ev)
		return
	}
	ob := &c.outbox[target.id]
	at := now + delay
	if at < ob.minAt {
		ob.minAt = at
	}
	ob.box = append(ob.box, mail{at: at, schedAt: now, src: c.id, idx: len(ob.box), ev: ev})
}

// PartitionKind names a switch-partitioning strategy.
const (
	// PartitionBFS (the default) walks the topology breadth-first from
	// switch 0 and deals contiguous BFS runs into shards, keeping
	// neighbourhoods together so fewer links are cut than round-robin.
	PartitionBFS = "bfs"
	// PartitionRoundRobin assigns switch s to shard s mod P — the
	// simplest disjoint cover, useful as a stress partition because it
	// cuts nearly every link.
	PartitionRoundRobin = "roundrobin"
)

// partitionSwitches maps every switch to a shard in [0, shards).
// Hosts follow their attached switch. Both strategies produce a
// disjoint cover with every shard non-empty (shards is pre-clamped to
// the switch count).
func partitionSwitches(topo interface {
	// Structural subset of *topology.Topology used here; keeps the
	// partitioner trivially testable.
	Neighbors(int) []int
}, numSwitches, shards int, kind string) []int {
	part := make([]int, numSwitches)
	if kind == PartitionRoundRobin {
		for s := range part {
			part[s] = s % shards
		}
		return part
	}
	// BFS order from switch 0, restarting at the lowest unvisited
	// switch for disconnected leftovers; then cut the order into
	// near-equal contiguous blocks (first blocks one larger when the
	// count does not divide evenly).
	order := make([]int, 0, numSwitches)
	seen := make([]bool, numSwitches)
	queue := make([]int, 0, numSwitches)
	for start := 0; start < numSwitches; start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			order = append(order, s)
			for _, nb := range topo.Neighbors(s) {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	base, extra := numSwitches/shards, numSwitches%shards
	idx := 0
	for shard := 0; shard < shards; shard++ {
		n := base
		if shard < extra {
			n++
		}
		for i := 0; i < n; i++ {
			part[order[idx]] = shard
			idx++
		}
	}
	return part
}

// retryFloor is the minimum simulated delay a retry requeue can carry:
// the backoff base, capped by the effective backoff ceiling when that
// is lower (an unset BackoffMax saturates at DefaultBackoffCap),
// floored at 1 (backoff clamps non-positive bases to 1).
func retryFloor(r RetryConfig) sim.Time {
	b := r.BackoffBase
	if cap := r.EffectiveBackoffCap(); cap < b {
		b = cap
	}
	if b <= 0 {
		b = 1
	}
	return b
}

// computeLookahead returns the conservative window width a lockstep
// coordinator would use: the minimum simulated delay any event can
// carry across any shard boundary. Packet arrivals, deliveries and
// credit returns all cross on a wire and carry at least the
// propagation delay (drop paths return credits after exactly
// PropagationDelay, which undercuts serialization+propagation).
// Host-side retry re-injections (dropPacket → requeue at the source)
// can connect ANY two shards regardless of cut links, with the backoff
// floor as their minimum delay, so an enabled retry policy caps the
// window too. Returns Forever when nothing can cross (single shard).
// The coordinator itself now uses the per-channel matrix
// (channelDelayMatrix), of which this is the global minimum; the
// accessor survives as the summary number surfaced by the CLIs.
func computeLookahead(cfg Config, shards int) sim.Time {
	if shards <= 1 {
		return sim.Forever
	}
	la := sim.Time(ib.PropagationDelay)
	if cfg.Retry.Enabled() {
		if b := retryFloor(cfg.Retry); b < la {
			la = b
		}
	}
	return la
}

// channelDelayMatrix computes, for every ordered shard pair (j, i), a
// conservative lower bound on the timestamp distance (at - schedAt) of
// any event shard j can produce for shard i:
//
//   - every topology link cut by the partition carries packet receives
//     and credit returns in both directions with at least the
//     propagation delay (the drop path returns credits after exactly
//     PropagationDelay, undercutting serialization+propagation);
//   - an enabled retry policy lets a switch-side drop requeue the
//     packet at its source host, connecting ANY ordered pair with the
//     backoff floor as its minimum delay;
//   - pairs with no channel stay Forever and never constrain windows.
//
// The direct-channel graph is then closed under shortest paths
// (Floyd–Warshall, saturating at Forever): an influence chain
// j → k → i can span a single barrier round — j mails k during the
// same window in which i runs ahead, and k relays next window — so i's
// bound must charge j's earliest pending work the whole path delay,
// not just a direct channel. Only pairs in different connected
// components of the channel graph stay Forever. The diagonal is
// initialized to Forever, NOT zero, so the closure leaves the shortest
// cycle through each shard there: shard i's own pending event can echo
// off a neighbour and return (i mails j, j reacts, j mails i), so i's
// window is bounded by next(i) + that round-trip too — the j == i term
// of the window formula.
//
// The matrix is built once from the full topology and deliberately NOT
// tightened when links go down: faults only remove traffic from a
// channel, never add a faster one, and staged reconfiguration rewrites
// forwarding tables, not physical links — so the static matrix stays a
// sound lower bound for the whole run (fault campaigns included).
func channelDelayMatrix(links []topology.Link, part []int, shards int, retry RetryConfig) [][]sim.Time {
	backing := make([]sim.Time, shards*shards)
	dist := make([][]sim.Time, shards)
	for i := range dist {
		dist[i] = backing[i*shards : (i+1)*shards]
		for j := range dist[i] {
			dist[i][j] = sim.Forever
		}
	}
	prop := sim.Time(ib.PropagationDelay)
	for _, l := range links {
		a, b := part[l.A], part[l.B]
		if a == b {
			continue
		}
		if prop < dist[a][b] {
			dist[a][b] = prop
		}
		if prop < dist[b][a] {
			dist[b][a] = prop
		}
	}
	if retry.Enabled() {
		rf := retryFloor(retry)
		for i := range dist {
			for j := range dist[i] {
				if i != j && rf < dist[i][j] {
					dist[i][j] = rf
				}
			}
		}
	}
	for k := 0; k < shards; k++ {
		for i := 0; i < shards; i++ {
			dik := dist[i][k]
			if dik == sim.Forever {
				continue
			}
			for j := 0; j < shards; j++ {
				if via := satAdd(dik, dist[k][j]); via < dist[i][j] {
					dist[i][j] = via
				}
			}
		}
	}
	return dist
}

// satAdd adds two non-negative times, saturating at Forever.
func satAdd(a, b sim.Time) sim.Time {
	if s := a + b; s >= a {
		return s
	}
	return sim.Forever
}

// ShardCount returns the number of shards (0 when sequential).
func (n *Network) ShardCount() int { return len(n.shards) }

// Lookahead returns the global minimum cross-shard delay of a sharded
// network (the width a lockstep window would have), or Forever when
// sequential or single-shard. The coordinator's actual windows are
// per-shard and usually wider — see ChannelBounds.
func (n *Network) Lookahead() sim.Time { return n.lookahead }

// ChannelBounds returns a copy of the per-channel minimum-delay matrix
// bounds[src][dst] used by the coordinator, or nil when sequential.
// Forever marks pairs with no channel.
func (n *Network) ChannelBounds() [][]sim.Time {
	if n.chanDist == nil {
		return nil
	}
	out := make([][]sim.Time, len(n.chanDist))
	for i, row := range n.chanDist {
		out[i] = append([]sim.Time(nil), row...)
	}
	return out
}

// SetMailObserver installs a diagnostic callback invoked once per
// cross-shard mail as the coordinator swaps it toward its destination
// (coordinator goroutine, barriers only). Test seam for the
// channel-bound soundness suite; nil disables.
func (n *Network) SetMailObserver(fn func(src, dst int, at, schedAt sim.Time)) {
	n.onMail = fn
}

// ShardOfSwitch returns the shard owning switch s (0 when sequential).
func (n *Network) ShardOfSwitch(s int) int {
	if len(n.shards) == 0 {
		return 0
	}
	return n.Switches[s].ctx.id
}

// ShardOfHost returns the shard owning host h (0 when sequential).
func (n *Network) ShardOfHost(h int) int {
	if len(n.shards) == 0 {
		return 0
	}
	return n.Hosts[h].ctx.id
}

// ShardStat is one shard's share of a sharded run's execution: how
// much work it dispatched, how often the coordinator woke it, and how
// much mail it exchanged. An execution artifact — partition quality
// made observable — not a simulation observable: bit-exactness
// differentials must ignore it (the same result reached via different
// shard counts reports different stats).
type ShardStat struct {
	Shard    int    // shard index
	Switches int    // switches owned
	Hosts    int    // hosts owned
	Events   uint64 // events dispatched by this shard's engine
	Windows  uint64 // windows the coordinator activated it for
	Stalled  uint64 // barriers it sat out with work pending (window bound reached)
	MailsOut uint64 // cross-shard events it produced
	MailsIn  uint64 // cross-shard events it imported
	Held     uint64 // windows cut short by the held-mail exactness rule
}

// ShardStats reports the per-shard imbalance counters of the last (or
// current) run, or nil when sequential.
func (n *Network) ShardStats() []ShardStat {
	if len(n.shards) == 0 {
		return nil
	}
	out := make([]ShardStat, len(n.shards))
	for i, s := range n.shards {
		out[i] = ShardStat{
			Shard:    i,
			Events:   s.eng.Processed(),
			Windows:  s.statWindows,
			Stalled:  s.statStalled,
			MailsOut: s.statMailsOut,
			MailsIn:  s.statMailsIn,
			Held:     s.statHeld,
		}
	}
	for _, p := range n.partition {
		out[p].Switches++
	}
	for h := range n.Hosts {
		out[n.partition[n.Topo.HostSwitch(h)]].Hosts++
	}
	return out
}

// ShardHooks carries per-shard observer callbacks (see ChainShardHooks).
type ShardHooks struct {
	OnCreated   func(*ib.Packet)
	OnDelivered func(*ib.Packet)
	OnHop       func(p *ib.Packet, sw int, out ib.PortID, adaptive bool)
	OnDropped   func(p *ib.Packet, reason DropReason)
}

// ChainShardHooks registers observer callbacks on one shard, chaining
// after any callbacks already present (same contract as the
// Network-level hooks). In sharded runs collectors must attach one
// (single-threaded) child per shard through this instead of the
// Network-level hooks, which would race across workers.
func (n *Network) ChainShardHooks(shard int, h ShardHooks) {
	c := n.shards[shard]
	if h.OnCreated != nil {
		if prev := c.onCreated; prev != nil {
			next := h.OnCreated
			c.onCreated = func(p *ib.Packet) { prev(p); next(p) }
		} else {
			c.onCreated = h.OnCreated
		}
	}
	if h.OnDelivered != nil {
		if prev := c.onDelivered; prev != nil {
			next := h.OnDelivered
			c.onDelivered = func(p *ib.Packet) { prev(p); next(p) }
		} else {
			c.onDelivered = h.OnDelivered
		}
	}
	if h.OnHop != nil {
		if prev := c.onHop; prev != nil {
			next := h.OnHop
			c.onHop = func(p *ib.Packet, sw int, out ib.PortID, adaptive bool) {
				prev(p, sw, out, adaptive)
				next(p, sw, out, adaptive)
			}
		} else {
			c.onHop = h.OnHop
		}
	}
	if h.OnDropped != nil {
		if prev := c.onDropped; prev != nil {
			next := h.OnDropped
			c.onDropped = func(p *ib.Packet, reason DropReason) { prev(p, reason); next(p, reason) }
		} else {
			c.onDropped = h.OnDropped
		}
	}
}

// FaultTotals sums the degraded-mode counters over every context. On a
// sequential network it equals the exported Faults field.
func (n *Network) FaultTotals() FaultStats {
	t := n.Faults
	for _, s := range n.shards {
		t.DroppedUnroutable += s.faults.DroppedUnroutable
		t.DroppedOnDeadPort += s.faults.DroppedOnDeadPort
		t.DroppedTimeout += s.faults.DroppedTimeout
		t.Retries += s.faults.Retries
		t.Lost += s.faults.Lost
		if s.faults.MaxAttempts > t.MaxAttempts {
			t.MaxAttempts = s.faults.MaxAttempts
		}
	}
	return t
}

// PendingEvents counts events scheduled anywhere: the control engine,
// every shard engine, undrained window outboxes and staged inbox mail.
// The deadlock watchdog uses it — a shard-local Pending() of zero says
// nothing when a neighbouring shard still holds the credit return that
// will wake this one.
func (n *Network) PendingEvents() int {
	p := n.Engine.Pending()
	for _, s := range n.shards {
		p += s.eng.Pending()
		for i := range s.outbox {
			p += len(s.outbox[i].box)
		}
		p += len(s.inbox.pending)
		for _, sl := range s.inbox.slices {
			p += len(sl)
		}
	}
	return p
}

// Processed sums dispatched events over every engine.
func (n *Network) Processed() uint64 {
	p := n.Engine.Processed()
	for _, s := range n.shards {
		p += s.eng.Processed()
	}
	return p
}

// Recycle returns every engine's queue storage to the arena the
// network was built with (sim.WithArena), shard queues included, so a
// sweep's next network reuses all of them; packet slab blocks go back
// to Cfg.PacketArena the same way. The caller asserts the run is over
// and nothing retains a *ib.Packet from it. Without arenas it is a
// no-op; calling it twice is safe.
func (n *Network) Recycle() {
	n.Engine.Recycle()
	for _, s := range n.shards {
		s.eng.Recycle()
	}
	if a := n.Cfg.PacketArena; a != nil {
		a.put(n.ctl.pktBlocks)
		n.ctl.pktBlocks, n.ctl.pktSlab = nil, nil
		for _, s := range n.shards {
			a.put(s.pktBlocks)
			s.pktBlocks, s.pktSlab = nil, nil
		}
	}
}

// Run advances the simulation to the horizon: sequentially on the one
// engine, or through the conservative-parallel coordinator when the
// network was built with Cfg.Shards > 1. Both produce bit-identical
// results (unless Cfg.Lag opts into relaxed exactness).
func (n *Network) Run(horizon sim.Time) {
	if len(n.shards) == 0 {
		n.Engine.Run(horizon)
		return
	}
	n.runSharded(horizon)
}

// shardNext is the earliest pending timestamp anywhere in this shard:
// its engine queue or its staged (not yet imported) mail.
func (c *execCtx) shardNext() sim.Time {
	nt := c.eng.NextEventTime()
	if m := c.inbox.minAt; m < nt {
		nt = m
	}
	return nt
}

// flushInbox merges and imports this shard's staged mail due before
// end, in canonical (at, schedAt, src, idx) order, and returns the
// (possibly lowered) window end the shard may safely run to.
//
// Exactness hold: a staged mail whose schedAt this shard has not yet
// executed past could still be preceded — in the sequential oracle's
// tie order — by a local event with the identical (at, schedAt) key
// that an event pending at or before schedAt has yet to schedule
// (locals always win those ties: they are scheduled while the shard
// executes schedAt, before the barrier that would import the mail). So
// such a mail is held and the window is cut short at its timestamp; by
// the next window the shard has executed past schedAt and the mail
// imports behind every such local. effNext tracks the earliest
// timestamp this shard could still execute, including mails imported
// earlier in this very flush.
//
// In relaxed mode (Config.Lag > 0) the hold is skipped and late mail
// is clamped to the local clock — bounded metric error is accepted in
// exchange for wider windows.
func (c *execCtx) flushInbox(end sim.Time) sim.Time {
	st := &c.inbox
	if len(st.slices) > 0 {
		for _, sl := range st.slices {
			st.pending = append(st.pending, sl...)
			clear(sl)
			st.spent = append(st.spent, sl[:0])
		}
		st.slices = st.slices[:0]
		slices.SortFunc(st.pending, mailLess)
	}
	if len(st.pending) == 0 {
		st.minAt = sim.Forever
		return end
	}
	if st.pending[0].at >= end {
		st.minAt = st.pending[0].at
		return end
	}
	eng := c.eng
	relaxed := c.net.lag > 0
	effNext := eng.NextEventTime()
	i := 0
	for ; i < len(st.pending); i++ {
		m := st.pending[i]
		if m.at >= end {
			break
		}
		if relaxed {
			at, schedAt := m.at, m.schedAt
			if now := eng.Now(); at < now {
				at = now
				if schedAt > at {
					schedAt = at
				}
			}
			eng.PushAt(at, schedAt, m.ev)
			continue
		}
		if m.schedAt >= effNext {
			end = m.at
			c.statHeld++
			break
		}
		eng.PushAt(m.at, m.schedAt, m.ev)
		if m.at < effNext {
			effNext = m.at
		}
	}
	c.statMailsIn += uint64(i)
	if i > 0 {
		rem := copy(st.pending, st.pending[i:])
		clear(st.pending[rem:])
		st.pending = st.pending[:rem]
	}
	if len(st.pending) > 0 {
		st.minAt = st.pending[0].at
	} else {
		st.minAt = sim.Forever
	}
	return end
}

// maskScanAll is the outbox-mask sentinel for "more than 64 shards:
// scan my outboxes". Unreachable as a real mask (a shard never mails
// itself, so its own bit is always clear when the count fits).
const maskScanAll = ^uint64(0)

// publishBoard records this shard's engine next-event time and outbox
// destinations on the coordinator's time board. Called by the worker
// at window end so the coordinator reads one padded cell per shard
// instead of touching every engine's queue header.
func (c *execCtx) publishBoard() {
	b := c.net.board
	if b == nil {
		return
	}
	var mask uint64
	if len(c.outbox) > 64 {
		mask = maskScanAll
	} else {
		for d := range c.outbox {
			if len(c.outbox[d].box) > 0 {
				mask |= 1 << uint(d)
			}
		}
	}
	b.Publish(c.id, c.eng.NextEventTime(), mask)
}

// shardWorkers are the persistent window-execution goroutines of one
// sharded run. All synchronization is channel-based: the send of a
// window end publishes every coordinator-side write (inbox swaps,
// control-phase mutations) to the worker, and the completion send
// publishes the worker's writes back — which is exactly the
// happens-before structure the race detector verifies in the
// differential tests. The time-board atomics ride on top purely to
// keep the coordinator's barrier reads off the workers' cache lines.
type shardWorkers struct {
	start []chan sim.Time
	done  chan int
}

func startWorkers(shards []*execCtx) *shardWorkers {
	w := &shardWorkers{
		start: make([]chan sim.Time, len(shards)),
		done:  make(chan int, len(shards)),
	}
	for i := range shards {
		w.start[i] = make(chan sim.Time)
		go func(c *execCtx, start <-chan sim.Time) {
			for end := range start {
				end = c.flushInbox(end)
				c.eng.RunBefore(end)
				c.publishBoard()
				w.done <- c.id
			}
		}(shards[i], w.start[i])
	}
	return w
}

func (w *shardWorkers) stop() {
	for _, ch := range w.start {
		close(ch)
	}
}

// runSharded is the channel-aware coordinator loop. Invariants:
//   - between iterations every outbox is empty; every pending event
//     sits in some engine's queue or a staging inbox, and each shard's
//     next[] reflects both;
//   - t, the earliest pending timestamp anywhere, only ever grows;
//   - shard i's window never reaches next(j) + chanDist[j][i] for any
//     j, so it cannot run past the earliest instant an event from j
//     could arrive — and since all bounds are computed at a barrier
//     with outboxes drained, transitive influence is covered by the
//     intermediate shard's own term (see channelDelayMatrix).
//
// Progress: the shard holding the global minimum t always gets a
// window strictly past t (every incoming bound is at least t + the
// channel's positive delay, and the held-mail rule only cuts a window
// to a timestamp strictly after the engine's next event), so every
// iteration dispatches at least one event or terminates.
func (n *Network) runSharded(horizon sim.Time) {
	var w *shardWorkers
	if len(n.shards) > 1 && runtime.GOMAXPROCS(0) > 1 {
		w = startWorkers(n.shards)
		defer w.stop()
	}
	P := len(n.shards)
	engNext := make([]sim.Time, P)
	next := make([]sim.Time, P)
	ends := make([]sim.Time, P)
	active := make([]int, 0, P)
	fresh := false // board cells are current for the shards in active
	for {
		ctl := n.Engine.NextEventTime()
		if fresh {
			// Only the shards that just ran moved their engines; their
			// workers republished the padded board cells. Everyone
			// else's cached engNext is still exact.
			for _, i := range active {
				engNext[i] = n.board.Next(i)
			}
		} else {
			for i, s := range n.shards {
				engNext[i] = s.eng.NextEventTime()
			}
		}
		t := ctl
		for i, s := range n.shards {
			nt := engNext[i]
			if m := s.inbox.minAt; m < nt {
				nt = m
			}
			next[i] = nt
			if nt < t {
				t = nt
			}
		}
		if t > horizon || t == sim.Forever {
			break
		}
		if ctl == t {
			// Control work due: flush every shard's staged mail with
			// timestamps at t (all of it is importable — its producers
			// executed strictly earlier), align everyone on t and
			// execute the whole timestamp single-threaded in merged
			// order, so control events (fault flips, staged
			// reprogramming, watchdog audits) interleave with shard
			// events exactly as the one-queue sequential run
			// interleaves them.
			for _, s := range n.shards {
				s.flushInbox(t + 1)
			}
			n.runMergedAt(t)
			n.drainOutboxes(nil)
			fresh = false
			continue
		}
		// Channel-aware per-shard windows: shard i runs to the minimum
		// over incoming channels of (neighbour's earliest pending work
		// + channel delay bound), capped by the control engine and the
		// horizon. Shards with no due work before their bound simply
		// sit the barrier out — the fast-forward over empty windows is
		// implicit in t jumping to the global minimum.
		for i := 0; i < P; i++ {
			e := sim.Forever
			for j := 0; j < P; j++ {
				d := n.chanDist[j][i]
				if d == sim.Forever || next[j] == sim.Forever {
					continue
				}
				if b := satAdd(next[j], d); b < e {
					e = b
				}
			}
			if n.lag > 0 {
				e = satAdd(e, n.lag)
			}
			if ctl < e {
				e = ctl
			}
			if horizon < sim.Forever && horizon+1 < e {
				e = horizon + 1
			}
			ends[i] = e
		}
		active = active[:0]
		for i, s := range n.shards {
			if next[i] < ends[i] {
				s.statWindows++
				active = append(active, i)
			} else if next[i] < sim.Forever {
				s.statStalled++
			}
		}
		if w == nil || len(active) < 2 {
			for _, i := range active {
				s := n.shards[i]
				end := s.flushInbox(ends[i])
				s.eng.RunBefore(end)
			}
			fresh = false
		} else {
			for _, i := range active {
				w.start[i] <- ends[i]
			}
			for range active {
				<-w.done
			}
			fresh = true
		}
		n.drainOutboxes(activeMasks(fresh, active))
	}
	// Mirror the sequential clock contract: every engine finishes at
	// the time of the last dispatched event anywhere (utilization
	// reports divide by it). Nothing pending can predate it.
	end := n.Engine.Now()
	for _, s := range n.shards {
		if now := s.eng.Now(); now > end {
			end = now
		}
	}
	if n.Engine.Now() < end {
		n.Engine.AdvanceTo(end)
	}
	for _, s := range n.shards {
		if s.eng.Now() < end {
			s.eng.AdvanceTo(end)
		}
	}
}

// activeMasks returns the shard set whose published board masks are
// current (worker path just ran), or nil to make drainOutboxes scan.
func activeMasks(fresh bool, active []int) []int {
	if fresh {
		return active
	}
	return nil
}

// runMergedAt aligns every engine on timestamp t and dispatches all
// events at exactly t, across the control and shard engines, in global
// (at, schedAt, engine) order — the control engine ordering first
// among exact key ties, matching the sequential engine's behaviour of
// dispatching an event stream in one queue. Events the timestamp
// spawns at t itself (delay-0 kicks) join the merge; later events stay
// queued; cross-shard events go to the outboxes as usual and are
// drained by the caller.
func (n *Network) runMergedAt(t sim.Time) {
	// Hop fusion keys off "no other event at Now in MY queue"; during a
	// merged phase a same-timestamp event on another engine (a control
	// fault flip, say) may interleave between a kick and its delay-0
	// pass, so the fast path must stand down for the whole phase.
	n.inMerged = true
	defer func() { n.inMerged = false }()
	n.Engine.AdvanceTo(t)
	for _, s := range n.shards {
		s.eng.AdvanceTo(t)
	}
	for {
		var best *sim.Engine
		bestAt := sim.Forever
		var bestSched sim.Time
		consider := func(e *sim.Engine) {
			at, schedAt, ok := e.PeekKey()
			if !ok || at != t {
				return
			}
			if at < bestAt || (at == bestAt && schedAt < bestSched) {
				best, bestAt, bestSched = e, at, schedAt
			}
		}
		consider(n.Engine)
		for _, s := range n.shards {
			consider(s.eng)
		}
		if best == nil {
			return
		}
		best.Step()
	}
}

// drainOutboxes swaps every filled window outbox into its destination
// shard's staging inbox (backing arrays move, mail is not copied) and
// recycles producer arrays the destinations consumed. Runs on the
// coordinator with all workers parked. masked, when non-nil, names the
// shards whose published board masks identify their filled outboxes,
// saving the O(P²) empty-box scan; nil scans everything.
func (n *Network) drainOutboxes(masked []int) {
	for _, s := range n.shards {
		if len(s.inbox.spent) > 0 {
			n.boxFree = append(n.boxFree, s.inbox.spent...)
			s.inbox.spent = s.inbox.spent[:0]
		}
	}
	if masked != nil {
		for _, si := range masked {
			src := n.shards[si]
			mask := n.board.Mask(si)
			if mask == maskScanAll {
				n.drainFrom(src)
				continue
			}
			for mask != 0 {
				d := bits.TrailingZeros64(mask)
				mask &^= 1 << uint(d)
				n.moveBox(src, d)
			}
		}
		return
	}
	for _, s := range n.shards {
		n.drainFrom(s)
	}
}

func (n *Network) drainFrom(src *execCtx) {
	for d := range src.outbox {
		if len(src.outbox[d].box) > 0 {
			n.moveBox(src, d)
		}
	}
}

// moveBox hands src's filled outbox for shard d to d's staging inbox
// and replaces it from the free pool (or with nil: append allocates on
// first use and the array recirculates forever after).
func (n *Network) moveBox(src *execCtx, d int) {
	ob := &src.outbox[d]
	if len(ob.box) == 0 {
		return
	}
	if n.onMail != nil {
		for i := range ob.box {
			n.onMail(src.id, d, ob.box[i].at, ob.box[i].schedAt)
		}
	}
	src.statMailsOut += uint64(len(ob.box))
	dst := n.shards[d]
	dst.inbox.slices = append(dst.inbox.slices, ob.box)
	if ob.minAt < dst.inbox.minAt {
		dst.inbox.minAt = ob.minAt
	}
	if k := len(n.boxFree); k > 0 {
		ob.box = n.boxFree[k-1]
		n.boxFree = n.boxFree[:k-1]
	} else {
		ob.box = nil
	}
	ob.minAt = sim.Forever
}

// buildShards partitions the network and creates the per-shard
// execution contexts. Called by NewNetwork after wiring; engineOpts
// are the exact options the control engine was built with, so every
// shard queue shares the geometry (and arena, when one is configured).
func (n *Network) buildShards(engineOpts []sim.EngineOption) error {
	shards := n.Cfg.Shards
	if shards > len(n.Switches) {
		shards = len(n.Switches)
	}
	if shards <= 1 {
		return nil
	}
	kind := n.Cfg.Partition
	if kind == "" {
		kind = PartitionBFS
	}
	part := partitionSwitches(n.Topo, n.Topo.NumSwitches, shards, kind)
	n.partition = part
	n.lookahead = computeLookahead(n.Cfg, shards)
	n.chanDist = channelDelayMatrix(n.Topo.Links, part, shards, n.Cfg.Retry)
	n.board = sim.NewTimeBoard(shards)
	n.lag = n.Cfg.Lag
	n.shards = make([]*execCtx, shards)
	for i := range n.shards {
		n.shards[i] = &execCtx{
			net:    n,
			id:     i,
			eng:    sim.NewEngine(engineOpts...),
			outbox: make([]mailbox, shards),
		}
		for d := range n.shards[i].outbox {
			n.shards[i].outbox[d].minAt = sim.Forever
		}
		n.shards[i].inbox.minAt = sim.Forever
		n.shards[i].faults = &FaultStats{}
	}
	for s, sw := range n.Switches {
		sw.ctx = n.shards[part[s]]
	}
	for h, host := range n.Hosts {
		host.ctx = n.shards[part[n.Topo.HostSwitch(h)]]
	}
	return nil
}

// validateShardMode rejects configurations whose forwarding draws on
// the network-global RNG: static (non-status-aware) adaptive selection
// and source multipath both consume n.rng per packet/hop, and a
// per-shard consumption order cannot reproduce the sequential stream.
// Status-aware selection — the paper's default — is RNG-free in the
// forwarding path.
func validateShardMode(c Config) error {
	if c.Shards <= 1 {
		if c.Lag > 0 {
			return fmt.Errorf("fabric: Lag (relaxed exactness) requires Shards > 1")
		}
		return nil
	}
	if c.Lag < 0 {
		return fmt.Errorf("fabric: Lag must be >= 0, got %d", c.Lag)
	}
	if !c.Selection.StatusAware {
		return fmt.Errorf("fabric: Shards > 1 requires status-aware selection (static selection draws the shared RNG per hop)")
	}
	if c.SourceMultipath > 1 {
		return fmt.Errorf("fabric: Shards > 1 is incompatible with SourceMultipath (per-packet shared RNG draw)")
	}
	return nil
}

package fabric

// In-package hot-path tests: the per-hop forwarding path must not
// allocate at steady state. These live inside package fabric (rather
// than fabric_test) because they drive switch.receive directly and the
// subnet manager cannot be imported here without a cycle, so the
// forwarding tables are programmed by hand.

import (
	"testing"

	"ibasim/internal/ib"
	"ibasim/internal/topology"
)

// hotpathNet wires a 2-switch line (4 hosts each, LMC 1) and programs
// every table slot of each destination block with the single correct
// port — the minimal fabric on which a packet exercises the full
// enhanced-switch path: table lookup, arbitration, credit-split
// checks, transmission, credit return, delivery.
func hotpathNet(tb testing.TB) *Network { return hotpathNetCfg(tb, DefaultConfig()) }

// hotpathNetCfg is hotpathNet with a caller-supplied fabric config —
// the unfused-variant tests flip Cfg.Fuse off to pin the per-hop event
// oracle to the same zero-alloc bar.
func hotpathNetCfg(tb testing.TB, cfg Config) *Network {
	tb.Helper()
	topo, err := topology.Line(2, 4)
	if err != nil {
		tb.Fatal(err)
	}
	plan, err := ib.NewAddressPlan(topo.NumHosts(), 1)
	if err != nil {
		tb.Fatal(err)
	}
	net, err := NewNetwork(topo, plan, cfg, 1)
	if err != nil {
		tb.Fatal(err)
	}
	for s, sw := range net.Switches {
		for dst := 0; dst < topo.NumHosts(); dst++ {
			var port ib.PortID
			if topo.HostSwitch(dst) == s {
				port = net.HostPort(dst)
			} else {
				port, err = net.PortToNeighbor(s, topo.HostSwitch(dst))
				if err != nil {
					tb.Fatal(err)
				}
			}
			base := plan.BaseLID(dst)
			for off := 0; off < plan.RangeSize(); off++ {
				if err := sw.Table().Set(base+ib.LID(off), port); err != nil {
					tb.Fatal(err)
				}
			}
		}
	}
	return net
}

// TestSwitchHopZeroAllocsSteadyState is the alloc regression gate for
// the forwarding path: once table caches, object pools and slice
// capacities are warm, forwarding a packet across both switches to its
// destination CA — including the arbitration passes, credit returns
// and the delivery event — must perform zero heap allocations.
func TestSwitchHopZeroAllocsSteadyState(t *testing.T) {
	net := hotpathNet(t)
	sw := net.Switches[0]
	pkt := net.NewPacket(0, 7, 32, true)
	hop := func() {
		sw.receive(0, 0, pkt)
		net.Engine.RunUntilIdle()
	}
	for i := 0; i < 100; i++ { // warm pools, caches, backing arrays
		hop()
	}
	if allocs := testing.AllocsPerRun(200, hop); allocs != 0 {
		t.Fatalf("steady-state forwarding allocates %v objects per traversal, want 0", allocs)
	}
}

// TestSwitchHopZeroAllocsDeterministic covers the stock-switch path
// (exact-DLID lookup, escape-only service) with a deterministic-service
// packet on enhanced switches.
func TestSwitchHopZeroAllocsDeterministic(t *testing.T) {
	net := hotpathNet(t)
	sw := net.Switches[0]
	pkt := net.NewPacket(0, 5, 32, false)
	hop := func() {
		sw.receive(0, 0, pkt)
		net.Engine.RunUntilIdle()
	}
	for i := 0; i < 100; i++ {
		hop()
	}
	if allocs := testing.AllocsPerRun(200, hop); allocs != 0 {
		t.Fatalf("steady-state deterministic forwarding allocates %v objects, want 0", allocs)
	}
}

// TestInjectZeroAllocsSteadyState extends the gate to the injection
// path: creating a packet, queueing it at the source CA and running it
// through to delivery. Packet storage comes from the context's slab
// (one allocation per pktSlabSize packets) and the source queue reuses
// its backing array, so the amortized per-packet figure must be the
// slab refill alone — well under 0.01 objects.
func TestInjectZeroAllocsSteadyState(t *testing.T) {
	net := hotpathNet(t)
	h := net.Hosts[0]
	inject := func() {
		h.Inject(net.NewPacket(0, 7, 32, true))
		net.Engine.RunUntilIdle()
	}
	for i := 0; i < 600; i++ { // warm pools and span a slab boundary
		inject()
	}
	if allocs := testing.AllocsPerRun(2*pktSlabSize, inject); allocs > 2.5/pktSlabSize {
		t.Fatalf("steady-state injection allocates %v objects per packet, want at most the amortized slab refill (%v)", allocs, 2.5/pktSlabSize)
	}
}

// BenchmarkSwitchHop measures one full two-switch traversal (receive
// at the ingress switch through delivery at the destination CA) at
// steady state.
func BenchmarkSwitchHop(b *testing.B) {
	net := hotpathNet(b)
	sw := net.Switches[0]
	pkt := net.NewPacket(0, 7, 32, true)
	hop := func() {
		sw.receive(0, 0, pkt)
		net.Engine.RunUntilIdle()
	}
	for i := 0; i < 100; i++ {
		hop()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hop()
	}
}

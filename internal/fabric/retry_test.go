package fabric

// In-package retry-policy tests: backoff is unexported. The end-to-end
// retry behaviour (timeout expiry, requeue, loss accounting) is pinned
// by faultpath_test.go; these cover the delay arithmetic, in
// particular the documented ceiling that keeps the exponential growth
// bounded when no explicit BackoffMax is configured.

import (
	"testing"

	"ibasim/internal/sim"
)

func TestBackoffCapsAtExplicitMax(t *testing.T) {
	r := RetryConfig{MaxRetries: 10, BackoffBase: 100, BackoffMax: 700}
	want := []sim.Time{100, 200, 400, 700, 700, 700}
	for i, w := range want {
		if got := r.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestBackoffCapsAtDefaultWhenMaxUnset(t *testing.T) {
	// Before DefaultBackoffCap, an unset BackoffMax let the doubling
	// run away: attempt 40 from base 1000 would be ~5.5e14 ns and
	// attempt 70 would overflow sim.Time. Every attempt now saturates
	// at the documented ceiling.
	r := RetryConfig{MaxRetries: 100, BackoffBase: 1_000}
	if got := r.EffectiveBackoffCap(); got != DefaultBackoffCap {
		t.Fatalf("EffectiveBackoffCap = %d, want DefaultBackoffCap %d", got, DefaultBackoffCap)
	}
	for _, attempt := range []int{1, 2, 11, 12, 40, 70, 1000} {
		got := r.backoff(attempt)
		if got > DefaultBackoffCap {
			t.Fatalf("backoff(%d) = %d exceeds DefaultBackoffCap %d", attempt, got, DefaultBackoffCap)
		}
		if got <= 0 {
			t.Fatalf("backoff(%d) = %d (overflow?)", attempt, got)
		}
	}
	if got := r.backoff(1000); got != DefaultBackoffCap {
		t.Errorf("backoff(1000) = %d, want saturation at %d", got, DefaultBackoffCap)
	}
	// Below the cap the doubling is untouched.
	if got := r.backoff(3); got != 4_000 {
		t.Errorf("backoff(3) = %d, want 4000", got)
	}
}

func TestBackoffZeroBaseClampsToOne(t *testing.T) {
	r := RetryConfig{MaxRetries: 3}
	if got := r.backoff(1); got != 1 {
		t.Errorf("backoff(1) with zero base = %d, want 1", got)
	}
}

func TestRetryFloorUsesEffectiveCap(t *testing.T) {
	// A base above the default cap floors at the cap, not the base:
	// the shard lookahead must not assume a delay the capped backoff
	// can no longer guarantee.
	r := RetryConfig{MaxRetries: 2, BackoffBase: 2 * DefaultBackoffCap}
	if got := retryFloor(r); got != DefaultBackoffCap {
		t.Errorf("retryFloor = %d, want %d", got, DefaultBackoffCap)
	}
}

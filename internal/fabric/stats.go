package fabric

import (
	"fmt"
	"sort"

	"ibasim/internal/ib"
)

// LinkStat reports one directed inter-switch channel's activity.
type LinkStat struct {
	From, To    int     // switch IDs
	Utilization float64 // busy fraction of elapsed simulated time
	Packets     uint64
}

// LinkStats returns per-channel utilization for every directed
// inter-switch link, sorted descending by utilization. It reads the
// engine clock, so call it after (or during) a run.
func (n *Network) LinkStats() []LinkStat {
	now := float64(n.Engine.Now())
	var out []LinkStat
	for _, sw := range n.Switches {
		for _, o := range sw.out {
			if o == nil || o.peerSwitch == nil {
				continue
			}
			u := 0.0
			if now > 0 {
				u = float64(o.busyAccum) / now
			}
			out = append(out, LinkStat{
				From:        sw.id,
				To:          o.peerSwitch.id,
				Utilization: u,
				Packets:     o.txPackets,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Utilization != out[j].Utilization {
			return out[i].Utilization > out[j].Utilization
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// UtilizationSummary aggregates LinkStats into the numbers a report
// needs: mean and peak inter-switch utilization, plus the imbalance
// ratio (peak/mean) that exposes up*/down* root congestion.
type UtilizationSummary struct {
	Mean, Peak float64
	Imbalance  float64
}

// Utilization computes the summary over all directed inter-switch
// links.
func (n *Network) Utilization() UtilizationSummary {
	stats := n.LinkStats()
	if len(stats) == 0 {
		return UtilizationSummary{}
	}
	var sum, peak float64
	for _, s := range stats {
		sum += s.Utilization
		if s.Utilization > peak {
			peak = s.Utilization
		}
	}
	mean := sum / float64(len(stats))
	imb := 0.0
	if mean > 0 {
		imb = peak / mean
	}
	return UtilizationSummary{Mean: mean, Peak: peak, Imbalance: imb}
}

// String formats the summary.
func (u UtilizationSummary) String() string {
	return fmt.Sprintf("links: mean %.1f%%, peak %.1f%%, imbalance %.2fx",
		100*u.Mean, 100*u.Peak, u.Imbalance)
}

// PortFor exposes the (switch, neighbour) -> port mapping for tools;
// it mirrors PortToNeighbor but panics on non-adjacency, for use in
// contexts where adjacency is already established.
func (n *Network) PortFor(s, neighbor int) ib.PortID {
	p, err := n.PortToNeighbor(s, neighbor)
	if err != nil {
		panic(err)
	}
	return p
}

package fabric

import (
	"fmt"

	"ibasim/internal/ib"
)

// Tamper deliberately mis-implements one paper rule in the forwarding
// path. It exists ONLY for the mutation smoke suite in internal/check:
// each flag recreates a plausible implementation bug (the kind a
// refactor could introduce silently), and the suite asserts the
// invariant auditor catches it by name. All flags default to false and
// the branches that read them are plain bool tests, so the hot path —
// and the bit-exact goldens — are unaffected when the struct is zero.
type Tamper struct {
	// SkipAdaptiveRoomCheck admits a packet to an adaptive queue when
	// only TOTAL room exists, i.e. it uses C_XY where §4.4 demands
	// C_XYA = max(0, C_XY − C_0) — the "whole packet must fit in the
	// adaptive region" rule is skipped. Detected as adaptive-admission.
	SkipAdaptiveRoomCheck bool

	// NoEscapeFallback drops the §4.4 escape fallback for adaptive
	// packets that carry adaptive options: when no adaptive option is
	// eligible the packet just waits, re-introducing the deadlock the
	// escape sub-network exists to break. Detected as deadlock.
	NoEscapeFallback bool

	// AdaptiveDeterministic routes LSB=0 (deterministic service)
	// packets through the adaptive options of their LID block, as if
	// the §4.2 service-mode bit were ignored. Destroys the in-order
	// guarantee; detected as deterministic-order.
	AdaptiveDeterministic bool
}

// SetTamper installs a fault model for the mutation suite. Passing the
// zero Tamper restores honest forwarding. A non-zero tamper forces
// per-hop de-fusion: the mutation suite asserts on exact degraded
// event sequences, and the fusion fast path's exactness argument only
// covers honest forwarding. The zero Tamper re-arms fusion (unless
// the config or a tracer disabled it).
func (n *Network) SetTamper(t Tamper) {
	n.tamper = t
	n.applyFuse()
	// A tamper model also forces the scan arbiter: the wake arbiter's
	// exactness argument (wake.go) only covers honest forwarding. The
	// zero Tamper re-arms it (with a wholesale wake).
	n.applyArb()
}

// TamperCredits forges flow-control state: it adds delta (possibly
// negative) to the credit counter of switch s's output port toward
// neighbor, VL vl, without touching the peer buffer — the
// transmitter's view of the channel now lies. Mutation-suite hook:
// a positive delta invents credits (credit-bound), a negative one
// leaks them (credits-intact once drained).
func (n *Network) TamperCredits(s, neighbor, vl, delta int) error {
	port, err := n.PortToNeighbor(s, neighbor)
	if err != nil {
		return err
	}
	o := n.Switches[s].out[port]
	if o == nil {
		return fmt.Errorf("fabric: switch %d port %d unwired", s, port)
	}
	if vl < 0 || vl >= len(o.credits) {
		return fmt.Errorf("fabric: vl %d out of range [0,%d)", vl, len(o.credits))
	}
	// Credits changed without the credit-return wake: the wait lists
	// can no longer be trusted, so fall back to the scan arbiter.
	n.forceScanArb()
	o.credits[vl] += delta
	return nil
}

// TamperOccupancy corrupts the occupancy counter of the input buffer
// of switch s's port facing neighbor, VL vl, without adding or
// removing entries. Mutation-suite hook for the credit-occupancy
// invariant (occ must equal the sum of entry credits).
func (n *Network) TamperOccupancy(s, neighbor, vl, delta int) error {
	port, err := n.PortToNeighbor(s, neighbor)
	if err != nil {
		return err
	}
	in := n.Switches[s].in[port]
	if in == nil {
		return fmt.Errorf("fabric: switch %d port %d unwired", s, port)
	}
	if vl < 0 || vl >= len(in.vls) {
		return fmt.Errorf("fabric: vl %d out of range [0,%d)", vl, len(in.vls))
	}
	n.forceScanArb()
	in.vls[vl].occupied += delta
	return nil
}

// TamperSplit overwrites the configured credit split with an
// ill-formed one, bypassing Config.Validate — the mutation-suite
// stand-in for a misconfigured C_0. The forwarding arithmetic keeps
// using the corrupted split; the credit-split well-formedness check
// must flag it.
func (n *Network) TamperSplit(cMax, cEscape int) {
	n.forceScanArb()
	n.Cfg.Split.CMax = cMax
	n.Cfg.Split.CEscape = cEscape
}

// TamperSwapTableSlots swaps, for every switch and every destination
// LID block, the escape slot (block base) with the first adaptive
// slot — the §4.1 interleaved-table layout misordered by one. The
// escape path then follows minimal adaptive hops instead of up*/down*,
// which is exactly the cyclic-dependency hazard Duato's condition
// exists to exclude. Detected as escape-cdg-acyclic.
func (n *Network) TamperSwapTableSlots() {
	n.forceScanArb()
	for _, sw := range n.Switches {
		tab := sw.Table()
		for h := 0; h < n.Topo.NumHosts(); h++ {
			base := n.Plan.BaseLID(h)
			if n.Plan.RangeSize() < 2 {
				continue
			}
			escape, adaptive := tab.Get(base), tab.Get(base+1)
			if escape == ib.InvalidPort || adaptive == ib.InvalidPort || escape == adaptive {
				continue
			}
			tab.Set(base, adaptive)
			tab.Set(base+1, escape)
		}
	}
}

package fabric

import "fmt"

// CheckCreditConservation verifies the flow-control invariants that
// must hold at ANY simulated instant, packets in flight or not — the
// runtime counterpart of CreditsIntact (which requires an idle
// network). For every directed channel and VL, with c the credits the
// transmitter believes are available and occ the credits actually
// stored in the peer's buffer:
//
//	0 <= c <= CMax            (credits neither negative nor invented)
//	c + occ <= CMax           (in-flight packets/updates only lower it)
//	occ == Σ entry credits    (buffer occupancy bookkeeping is exact)
//
// and the paper's §4.4 split identities on the observed availability:
//
//	C_XYA = max(0, c − C_0),  C_XYE = min(C_0, c),  C_XYA + C_XYE = c
//
// The fault watchdog samples this on a tick; a violation means the
// fabric corrupted credit state (e.g. a drop path forgot to return
// buffer space), which would eventually masquerade as congestion or
// deadlock.
func (n *Network) CheckCreditConservation() error {
	cmax := n.Cfg.BufferCredits
	split := n.Cfg.Split
	check := func(o *outPort, owner string) error {
		if o == nil {
			return nil
		}
		for vl, c := range o.credits {
			if c < 0 || c > cmax {
				return fmt.Errorf("fabric: %s port %d vl %d: %d credits outside [0,%d]",
					owner, o.id, vl, c, cmax)
			}
			a, e := split.Adaptive(c), split.Escape(c)
			if a+e != c || a < 0 || a > split.CAdaptiveCap() || e < 0 || e > split.CEscape {
				return fmt.Errorf("fabric: %s port %d vl %d: split identity broken: c=%d C_XYA=%d C_XYE=%d (C_0=%d)",
					owner, o.id, vl, c, a, e, split.CEscape)
			}
			if o.peerSwitch != nil {
				buf := o.peerSwitch.in[o.peerPort].vls[vl]
				sum := 0
				for _, be := range buf.entries {
					sum += be.pkt.Credits()
				}
				if sum != buf.occupied {
					return fmt.Errorf("fabric: %s port %d vl %d: peer buffer claims %d credits occupied, entries hold %d",
						owner, o.id, vl, buf.occupied, sum)
				}
				if c+buf.occupied > cmax {
					return fmt.Errorf("fabric: %s port %d vl %d: credits %d + peer occupancy %d exceed capacity %d",
						owner, o.id, vl, c, buf.occupied, cmax)
				}
			}
		}
		return nil
	}
	for _, sw := range n.Switches {
		for _, o := range sw.out {
			if err := check(o, fmt.Sprintf("switch %d", sw.id)); err != nil {
				return err
			}
		}
	}
	for _, h := range n.Hosts {
		if err := check(h.out, fmt.Sprintf("host %d", h.id)); err != nil {
			return err
		}
	}
	return nil
}

package fabric

import (
	"fmt"

	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// Credit-audit invariant classes. AuditCredits reports breaches under
// these names; internal/check re-exports them as its invariant
// catalog (fabric cannot import check without a cycle, so the strings
// are defined at the point the checks run).
const (
	// AuditCreditBound: 0 <= c and c + occ <= CMax per (port, VL).
	AuditCreditBound = "credit-bound"
	// AuditCreditSplit: the §4.4 identities C_XYA = max(0, c − C_0),
	// C_XYE = min(C_0, c), C_XYA + C_XYE = c, plus well-formedness of
	// the configured split (0 < C_0 < CMax = BufferCredits).
	AuditCreditSplit = "credit-split"
	// AuditCreditOccupancy: a buffer's occupied counter equals the sum
	// of its entries' credits.
	AuditCreditOccupancy = "credit-occupancy"
)

// AuditCredits verifies the flow-control invariants that must hold at
// ANY simulated instant, packets in flight or not — the runtime
// counterpart of CreditsIntact (which requires an idle network). For
// every directed channel and VL, with c the credits the transmitter
// believes are available and occ the credits actually stored in the
// peer's buffer:
//
//	0 <= c <= CMax            (credits neither negative nor invented)
//	c + occ <= CMax           (in-flight packets/updates only lower it)
//	occ == Σ entry credits    (buffer occupancy bookkeeping is exact)
//
// and the paper's §4.4 split identities on the observed availability:
//
//	C_XYA = max(0, c − C_0),  C_XYE = min(C_0, c),  C_XYA + C_XYE = c
//
// Unlike an error return, the report callback sees EVERY breach (with
// its invariant class), so an auditor can attribute a corruption to
// the specific rule it violated. The fault watchdog samples the
// first-error wrapper CheckCreditConservation on a tick; a violation
// means the fabric corrupted credit state (e.g. a drop path forgot to
// return buffer space), which would eventually masquerade as
// congestion or deadlock.
func (n *Network) AuditCredits(report func(class, detail string)) {
	cmax := n.Cfg.BufferCredits
	split := n.Cfg.Split
	if split.CEscape <= 0 || split.CEscape >= split.CMax || split.CMax != cmax {
		report(AuditCreditSplit, fmt.Sprintf(
			"split ill-formed: CMax=%d CEscape=%d BufferCredits=%d (want 0 < C_0 < CMax = BufferCredits)",
			split.CMax, split.CEscape, cmax))
	}
	check := func(o *outPort, owner string) {
		if o == nil {
			return
		}
		for vl, c := range o.credits {
			if c < 0 || c > cmax {
				report(AuditCreditBound, fmt.Sprintf("%s port %d vl %d: %d credits outside [0,%d]",
					owner, o.id, vl, c, cmax))
			}
			a, e := split.Adaptive(c), split.Escape(c)
			if a+e != c || a < 0 || a > split.CAdaptiveCap() || e < 0 || e > split.CEscape {
				report(AuditCreditSplit, fmt.Sprintf("%s port %d vl %d: split identity broken: c=%d C_XYA=%d C_XYE=%d (C_0=%d)",
					owner, o.id, vl, c, a, e, split.CEscape))
			}
			if o.peerSwitch != nil {
				buf := o.peerSwitch.in[o.peerPort].vls[vl]
				sum := 0
				// Recompute from the packets, not the slab's cached
				// credits column, so the audit stays independent of the
				// bookkeeping it checks.
				for _, id := range buf.ids {
					sum += buf.slab.pkt[id].Credits()
				}
				if sum != buf.occupied {
					report(AuditCreditOccupancy, fmt.Sprintf("%s port %d vl %d: peer buffer claims %d credits occupied, entries hold %d",
						owner, o.id, vl, buf.occupied, sum))
				}
				if c+buf.occupied > cmax {
					report(AuditCreditBound, fmt.Sprintf("%s port %d vl %d: credits %d + peer occupancy %d exceed capacity %d",
						owner, o.id, vl, c, buf.occupied, cmax))
				}
			}
		}
	}
	for _, sw := range n.Switches {
		for _, o := range sw.out {
			check(o, fmt.Sprintf("switch %d", sw.id))
		}
	}
	for _, h := range n.Hosts {
		check(h.out, fmt.Sprintf("host %d", h.id))
	}
}

// CheckCreditConservation is the first-error wrapper over AuditCredits
// kept for the fault watchdog: it returns the first breach as an error
// (class prefixed), or nil when every credit invariant holds.
func (n *Network) CheckCreditConservation() error {
	var first error
	n.AuditCredits(func(class, detail string) {
		if first == nil {
			first = fmt.Errorf("fabric: %s: %s", class, detail)
		}
	})
	return first
}

// AuditHopView exposes the post-decrement transmitter state the OnHop
// hook needs to re-check the §4.4 admission rules. OnHop fires
// synchronously inside startTx, immediately after the packet's
// credits were reserved and with no intervening event, so the
// pre-decision availability the selector saw is exactly
// credits + pkt.Credits(). hostFacing distinguishes delivery ports
// (CA drains at line rate, total room is the admission condition)
// from inter-switch ports (adaptive region must hold the whole
// packet). ok is false for an unwired port or unmappable SL.
func (sw *Switch) AuditHopView(out ib.PortID, sl int) (now sim.Time, credits int, hostFacing, ok bool) {
	if int(out) >= len(sw.out) {
		return 0, 0, false, false
	}
	o := sw.out[out]
	if o == nil {
		return 0, 0, false, false
	}
	vl, err := sw.sl2vl.VL(0, int(out), sl)
	if err != nil {
		return 0, 0, false, false
	}
	return sw.ctx.eng.Now(), o.credits[vl], o.peerHost != nil, true
}

// NeighborAt resolves an inter-switch output port of switch s to the
// adjacent switch it is wired to (the inverse of PortToNeighbor).
// ok is false for host-facing or unwired ports. The live-table escape
// CDG audit uses it to turn programmed forwarding ports back into
// topology channels.
func (n *Network) NeighborAt(s int, port ib.PortID) (neighbor int, ok bool) {
	if s < 0 || s >= len(n.Switches) {
		return 0, false
	}
	sw := n.Switches[s]
	if int(port) >= len(sw.out) {
		return 0, false
	}
	o := sw.out[port]
	if o == nil || o.peerSwitch == nil {
		return 0, false
	}
	return o.peerSwitch.id, true
}

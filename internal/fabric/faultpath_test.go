package fabric_test

import (
	"testing"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/topology"
)

// TestSetLinkDownUpIdempotent: re-failing a dead link and re-repairing
// a healthy one are no-ops, and the down flag is symmetric.
func TestSetLinkDownUpIdempotent(t *testing.T) {
	net := irregularNet(t, 8, 4, 1, fabric.DefaultConfig(), 2, 1)
	l := net.Topo.Links[0]

	if net.LinkIsDown(l.A, l.B) || net.LinkIsDown(l.B, l.A) {
		t.Fatal("fresh link reported down")
	}
	for i := 0; i < 3; i++ { // repeated downs are idempotent
		if err := net.SetLinkDown(l.A, l.B); err != nil {
			t.Fatal(err)
		}
	}
	if !net.LinkIsDown(l.A, l.B) || !net.LinkIsDown(l.B, l.A) {
		t.Fatal("LinkIsDown not symmetric after SetLinkDown")
	}
	if got := net.DownLinks(); len(got) != 1 || got[0] != l {
		t.Fatalf("DownLinks = %v, want [%v]", got, l)
	}
	for i := 0; i < 3; i++ { // repeated ups are idempotent
		if err := net.SetLinkUp(l.A, l.B); err != nil {
			t.Fatal(err)
		}
	}
	if net.LinkIsDown(l.A, l.B) || net.LinkIsDown(l.B, l.A) {
		t.Fatal("link still down after SetLinkUp")
	}
	if err := net.SetLinkDown(l.A, 99); err == nil {
		t.Fatal("nonexistent link accepted")
	}
}

// TestSwitchDownDropsArrivalsAndConservesCredits: killing a switch
// mid-traffic drops in-flight arrivals as dead-port (counted, no
// panic) and every drop returns its credits upstream.
func TestSwitchDownDropsArrivalsAndConservesCredits(t *testing.T) {
	cfg := fabric.DefaultConfig()
	cfg.Retry = fabric.RetryConfig{MaxRetries: 1, BackoffBase: 200, BackoffMax: 200, SendTimeout: 3_000}
	net := lineNet(t, 2, cfg)

	// A stream of packets from switch 0's hosts to switch 1's hosts
	// keeps the inter-switch link busy when the switch dies.
	for i := 0; i < 10; i++ {
		src, dst := i%4, 4+i%4
		net.Hosts[src].Inject(net.NewPacket(src, dst, 32, true))
	}
	net.Engine.At(500, func() {
		if err := net.SetSwitchDown(1); err != nil {
			t.Error(err)
		}
	})
	net.Engine.RunUntilIdle()

	fs := net.Faults
	if fs.DroppedOnDeadPort == 0 {
		t.Fatalf("no dead-port drops despite in-flight traffic: %+v", fs)
	}
	if fs.Retries == 0 {
		t.Fatalf("dropped packets never retried: %+v", fs)
	}
	// Packets routed toward the dead switch park in switch 0; the
	// conservation identities must hold even mid-wedge.
	if err := net.CheckCreditConservation(); err != nil {
		t.Fatalf("credit conservation after drops: %v", err)
	}
	// Killing a dead switch again is an idempotent no-op.
	before := net.Faults
	if err := net.SetSwitchDown(1); err != nil {
		t.Fatal(err)
	}
	if net.Faults != before {
		t.Fatalf("repeated SetSwitchDown changed counters: %+v -> %+v", before, net.Faults)
	}

	// Revival kicks the neighbors: every parked and retried packet
	// completes its journey.
	if err := net.SetSwitchUp(1); err != nil {
		t.Fatal(err)
	}
	if err := net.SetSwitchUp(1); err != nil { // idempotent
		t.Fatal(err)
	}
	if net.SwitchIsDown(1) {
		t.Fatal("switch still down after SetSwitchUp")
	}
	net.Engine.RunUntilIdle()
	if net.InFlight() != 0 {
		t.Fatalf("%d packets still in flight after revival", net.InFlight())
	}
	if err := net.CreditsIntact(); err != nil {
		t.Fatal(err)
	}
	if err := net.SetSwitchDown(99); err == nil {
		t.Fatal("nonexistent switch accepted")
	}
}

// TestSendTimeoutRetriesThenLoses: a host whose switch is dead times
// out its queue head, retries with backoff, and finally counts the
// packet lost — all without touching working code paths.
func TestSendTimeoutRetriesThenLoses(t *testing.T) {
	cfg := fabric.DefaultConfig()
	cfg.Retry = fabric.RetryConfig{MaxRetries: 2, BackoffBase: 100, BackoffMax: 400, SendTimeout: 1_000}
	net := lineNet(t, 2, cfg)
	if err := net.SetSwitchDown(0); err != nil {
		t.Fatal(err)
	}
	var drops []fabric.DropReason
	net.OnDropped = func(_ *ib.Packet, reason fabric.DropReason) { drops = append(drops, reason) }
	net.Hosts[0].Inject(net.NewPacket(0, 4, 32, true))
	net.Engine.RunUntilIdle()

	fs := net.Faults
	if fs.DroppedTimeout != 3 || fs.Retries != 2 || fs.Lost != 1 {
		t.Fatalf("timeout/retry accounting = %+v, want 3 timeouts, 2 retries, 1 lost", fs)
	}
	if len(drops) != 3 {
		t.Fatalf("OnDropped fired %d times, want 3", len(drops))
	}
	for _, r := range drops {
		if r != fabric.DropTimeout {
			t.Fatalf("drop reason %v, want %v", r, fabric.DropTimeout)
		}
	}
	if net.InFlight() != 0 {
		t.Fatalf("%d packets still queued", net.InFlight())
	}
}

// TestUnroutableLookupDropsInsteadOfPanic: a packet reaching a switch
// with no programmed route for its DLID is counted and discarded, not
// a crash.
func TestUnroutableLookupDropsInsteadOfPanic(t *testing.T) {
	topo, err := topology.Line(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ib.NewAddressPlan(topo.NumHosts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fabric.NewNetwork(topo, plan, fabric.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// No subnet.Configure: every forwarding table is unprogrammed.
	net.Hosts[0].Inject(net.NewPacket(0, 4, 32, false))
	net.Engine.RunUntilIdle()
	if net.Faults.DroppedUnroutable != 1 {
		t.Fatalf("unroutable drops = %d, want 1", net.Faults.DroppedUnroutable)
	}
	if err := net.CheckCreditConservation(); err != nil {
		t.Fatal(err)
	}
}

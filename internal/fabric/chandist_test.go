package fabric

import (
	"testing"

	"ibasim/internal/ib"
	"ibasim/internal/sim"
	"ibasim/internal/topology"
)

// The channel delay matrix is the shard coordinator's safety argument:
// chanDist[j][i] must lower-bound the timestamp distance (at - schedAt)
// of every event shard j can hand shard i, including multi-hop
// influence chains and the echo of a shard's own event off a neighbour
// (the diagonal). These tests pin the construction analytically; the
// experiments package checks it against live cross-shard traffic.

const prop = sim.Time(ib.PropagationDelay)

func TestChannelDelayMatrixDirectCut(t *testing.T) {
	// Two shards joined by one cut link: each direction is exactly the
	// propagation delay, and each diagonal is the round-trip echo.
	links := []topology.Link{{A: 0, B: 1}}
	part := []int{0, 1}
	d := channelDelayMatrix(links, part, 2, RetryConfig{})
	want := [][]sim.Time{
		{2 * prop, prop},
		{prop, 2 * prop},
	}
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Errorf("dist[%d][%d] = %v, want %v", i, j, d[i][j], want[i][j])
			}
		}
	}
}

func TestChannelDelayMatrixInternalLinksIgnored(t *testing.T) {
	// A link inside one shard contributes no channel: with nothing cut,
	// every entry — diagonal included — stays Forever.
	links := []topology.Link{{A: 0, B: 1}}
	part := []int{0, 0}
	d := channelDelayMatrix(links, part, 2, RetryConfig{})
	for i := range d {
		for j := range d[i] {
			if d[i][j] != sim.Forever {
				t.Errorf("dist[%d][%d] = %v, want Forever", i, j, d[i][j])
			}
		}
	}
}

func TestChannelDelayMatrixPathClosure(t *testing.T) {
	// A three-shard line 0–1–2: the ends have no direct link, but an
	// influence chain 0→1→2 can span one barrier round, so the closure
	// must charge the path sum, not leave Forever.
	links := []topology.Link{{A: 0, B: 1}, {A: 1, B: 2}}
	part := []int{0, 1, 2}
	d := channelDelayMatrix(links, part, 3, RetryConfig{})
	if d[0][2] != 2*prop || d[2][0] != 2*prop {
		t.Errorf("end-to-end = %v/%v, want %v", d[0][2], d[2][0], 2*prop)
	}
	if d[0][1] != prop || d[1][2] != prop {
		t.Errorf("direct hops perturbed: %v %v", d[0][1], d[1][2])
	}
	// The middle shard's echo can bounce off either neighbour.
	if d[1][1] != 2*prop {
		t.Errorf("middle diagonal = %v, want %v", d[1][1], 2*prop)
	}
	// The end shards' shortest cycle is also one round-trip.
	if d[0][0] != 2*prop || d[2][2] != 2*prop {
		t.Errorf("end diagonals = %v/%v, want %v", d[0][0], d[2][2], 2*prop)
	}
}

func TestChannelDelayMatrixDisconnected(t *testing.T) {
	// Shard 2 shares no cut link: every channel touching it stays
	// Forever and the connected pair keeps its bound.
	links := []topology.Link{{A: 0, B: 1}}
	part := []int{0, 1, 2}
	d := channelDelayMatrix(links, part, 3, RetryConfig{})
	for _, pair := range [][2]int{{0, 2}, {2, 0}, {1, 2}, {2, 1}, {2, 2}} {
		if d[pair[0]][pair[1]] != sim.Forever {
			t.Errorf("dist[%d][%d] = %v, want Forever", pair[0], pair[1], d[pair[0]][pair[1]])
		}
	}
	if d[0][1] != prop {
		t.Errorf("connected pair = %v, want %v", d[0][1], prop)
	}
}

func TestChannelDelayMatrixRetryFloor(t *testing.T) {
	// An enabled retry policy connects EVERY ordered pair: a drop
	// anywhere can requeue at a source anywhere after the backoff
	// floor. The floor also shortens existing channels when smaller.
	links := []topology.Link{{A: 0, B: 1}}
	part := []int{0, 1, 2}
	retry := RetryConfig{MaxRetries: 3, BackoffBase: 40}
	d := channelDelayMatrix(links, part, 3, retry)
	if d[0][1] != 40 || d[1][0] != 40 {
		t.Errorf("cut pair = %v/%v, want retry floor 40", d[0][1], d[1][0])
	}
	if d[0][2] != 40 || d[2][1] != 40 {
		t.Errorf("retry-only pair = %v/%v, want 40", d[0][2], d[2][1])
	}
	// Diagonal: shortest cycle through retry edges is two hops.
	if d[2][2] != 80 {
		t.Errorf("diagonal = %v, want 80", d[2][2])
	}

	// BackoffMax below BackoffBase caps the first re-injection too.
	retry = RetryConfig{MaxRetries: 3, BackoffBase: 1_000, BackoffMax: 60}
	d = channelDelayMatrix(links, part, 3, retry)
	if d[0][2] != 60 {
		t.Errorf("capped floor = %v, want 60", d[0][2])
	}

	// A zero base clamps to 1 tick, never 0 — a zero channel would
	// collapse every window.
	retry = RetryConfig{MaxRetries: 1}
	d = channelDelayMatrix(links, part, 3, retry)
	if d[0][2] != 1 {
		t.Errorf("zero-base floor = %v, want 1", d[0][2])
	}
	if rf := retryFloor(retry); rf != 1 {
		t.Errorf("retryFloor = %v, want 1", rf)
	}
}

// TestChannelDelayMatrixFaultSoundness pins the static-matrix design
// decision: the coordinator builds bounds from the FULL topology and
// never tightens them when links fail. That is sound exactly when
// removing links can only raise (never lower) every entry — the full
// matrix then lower-bounds the reduced one, hence every delay the
// degraded fabric can still produce.
func TestChannelDelayMatrixFaultSoundness(t *testing.T) {
	topo := topology.MustGenerateIrregular(topology.IrregularSpec{
		NumSwitches: 12, HostsPerSwitch: 4, InterSwitch: 4, Seed: 5,
	})
	part := partitionSwitches(topo, topo.NumSwitches, 4, PartitionBFS)
	retry := DefaultRetry()
	full := channelDelayMatrix(topo.Links, part, 4, retry)
	// Knock out growing prefixes of the link list, including enough to
	// disconnect shards; the reduced matrix must dominate entrywise.
	for cut := 1; cut <= len(topo.Links); cut += 3 {
		reduced := channelDelayMatrix(topo.Links[cut:], part, 4, retry)
		for i := range full {
			for j := range full[i] {
				if full[i][j] > reduced[i][j] {
					t.Fatalf("cut=%d: full[%d][%d]=%v exceeds reduced %v — static matrix would be unsound under faults",
						cut, i, j, full[i][j], reduced[i][j])
				}
			}
		}
	}
	// And without retry the same monotonicity must hold (no universal
	// floor masking a violation).
	full = channelDelayMatrix(topo.Links, part, 4, RetryConfig{})
	for cut := 1; cut <= len(topo.Links); cut += 3 {
		reduced := channelDelayMatrix(topo.Links[cut:], part, 4, RetryConfig{})
		for i := range full {
			for j := range full[i] {
				if full[i][j] > reduced[i][j] {
					t.Fatalf("cut=%d (no retry): full[%d][%d]=%v exceeds reduced %v",
						cut, i, j, full[i][j], reduced[i][j])
				}
			}
		}
	}
}

func TestSatAdd(t *testing.T) {
	cases := []struct{ a, b, want sim.Time }{
		{0, 0, 0},
		{100, 228, 328},
		{sim.Forever, 1, sim.Forever},
		{1, sim.Forever, sim.Forever},
		{sim.Forever, sim.Forever, sim.Forever},
	}
	for _, c := range cases {
		if got := satAdd(c.a, c.b); got != c.want {
			t.Errorf("satAdd(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

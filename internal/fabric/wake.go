package fabric

import (
	"math/bits"

	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// Event-driven wait-list arbitration. The scanning arbiter
// (arbitrateScan) probes every non-empty service point on every kick
// and repeats the full round-robin scan until a pass makes no
// progress — O(points) worth of chooseOutput work per pass even when
// every head is blocked. But the §4.4 admission rules mean a blocked
// entry can only become servable when one *specific* condition
// changes: its output link frees, credits return on a specific
// (output port, VL), or its readyAt arrives. The wake arbiter
// (arbitrateWake) exploits that: a failed probe classifies its
// blocking conditions and registers the service point on the precise
// wait list, and the events that change those conditions wake only
// the registered points into a pending set that arbitrate drains in
// exactly the order the full scan would have served them.
//
// Exactness argument (why wake-mode results are byte-identical to the
// scan, including the RNG stream and the rr trajectory):
//
//  1. Failed probes are side-effect-free. chooseOutput on a blocked
//     entry mutates nothing and draws no RNG — core.PickAdaptive
//     returns -1 without an Intn call when no option is eligible, and
//     the status-aware bestAdaptive path never draws. So eliding the
//     failing probes the scan would have repeated changes no state.
//  2. Within one arbitrate call (fixed now), a serve can only worsen
//     every OTHER point's conditions: it consumes output credits,
//     extends an output link's busyUntil, and everything it schedules
//     (credit returns, the peer receive, the ser-kick) lands strictly
//     in the future. Only the served point itself can improve (its
//     next head surfaces), and a served point keeps its pending bit,
//     so it is re-probed on the next pass exactly as the scan would.
//     Hence a point that failed earlier in the call cannot have
//     become servable, and skipping it is observationally identical.
//  3. Across calls, every condition change is co-located with a wake:
//     packet arrival -> receive sets the point's pending bit; credit
//     return -> evCreditReturn calls wakeCredits on the owning switch
//     before the follow-up pass runs; link free -> transmit always
//     schedules a switch kick at exactly busyUntil, and the arbitrate
//     that kick triggers sweeps the link-waiter list first; readyAt ->
//     the arrival kick at +RoutingDelay (and the time-parked sweep)
//     covers it. Control-plane mutations that can improve conditions
//     wholesale (SetLinkUp, SetSwitchUp, SetEscapeOnly(false),
//     Reroute, re-arming the wake mode) wake every point.
//  4. Registration uses the first-failing condition per routing
//     option, mirroring chooseOutput's evaluation order; that is
//     self-correcting — a wake re-probes the point, and if a
//     different condition now blocks it, the re-probe re-registers
//     there. Stale registrations (left behind by wakeAll or by a
//     point moving on) cause only spurious wakes, which are harmless
//     by (1).
//
// Tampered runs force the scan arbiter (applyArb): the mutation hooks
// mutate credits/occupancy behind the fabric's back without waking
// anyone, and the exactness argument only covers honest forwarding —
// mirroring how tamper models defuse hop fusion.

// pointMask is a bitmask over a switch's service points. Switches can
// have more than 64 points (ports x VLs), so it is multi-word; all
// masks are preallocated at wiring time and never grow.
type pointMask []uint64

func newPointMask(n int) pointMask { return make(pointMask, (n+63)/64) }

func (m pointMask) set(i int)       { m[i>>6] |= 1 << (uint(i) & 63) }
func (m pointMask) clear(i int)     { m[i>>6] &^= 1 << (uint(i) & 63) }
func (m pointMask) test(i int) bool { return m[i>>6]&(1<<(uint(i)&63)) != 0 }

// or merges other into m; zero clears every bit.
func (m pointMask) or(other pointMask) {
	for w := range m {
		m[w] |= other[w]
	}
}

func (m pointMask) zero() {
	for w := range m {
		m[w] = 0
	}
}

// setAll sets bits 0..n-1.
func (m pointMask) setAll(n int) {
	for w := range m {
		m[w] = ^uint64(0)
	}
	if rem := uint(n) & 63; rem != 0 {
		m[len(m)-1] = (1 << rem) - 1
	}
}

// initWakeState preallocates every switch's wait-list structures out
// of network-level backing arrays, carved after wiring is final (the
// service-point slices exist by then). The state is dozens of tiny
// slices per switch — one mask per waitable condition — and
// allocating them individually dominated network-construction
// allocations; one arena per network keeps construction cheap and
// every slice sized for its worst case, so steady-state operation
// never allocates.
func (n *Network) initWakeState() {
	nvl := n.Cfg.NumVLs
	var words, times, ints, ports, bools, masks int
	for _, sw := range n.Switches {
		np := len(sw.points)
		w := (np + 63) / 64
		wired := 0
		for _, o := range sw.out {
			if o != nil {
				wired++
			}
		}
		words += w * (2 + wired*(1+nvl))
		times += np
		ints += np + len(sw.in)*nvl
		ports += len(sw.out)
		bools += len(sw.out)
		masks += len(sw.out) * (1 + nvl)
	}
	wordArena := make([]uint64, words)
	timeArena := make([]sim.Time, times)
	intArena := make([]int32, ints)
	portArena := make([]ib.PortID, ports)
	boolArena := make([]bool, bools)
	maskArena := make([]pointMask, masks)
	takeMask := func(w int) pointMask {
		m := pointMask(wordArena[:w:w])
		wordArena = wordArena[w:]
		return m
	}
	for _, sw := range n.Switches {
		np := len(sw.points)
		w := (np + 63) / 64
		nout := len(sw.out)
		nin := len(sw.in)
		sw.pending = takeMask(w)
		sw.parkedMask = takeMask(w)
		sw.parkAt, timeArena = timeArena[:np:np], timeArena[np:]
		sw.timeParked, intArena = intArena[:0:np], intArena[np:]
		sw.linkWaiters, maskArena = maskArena[:nout:nout], maskArena[nout:]
		sw.creditWaiters, maskArena = maskArena[:nout*nvl:nout*nvl], maskArena[nout*nvl:]
		for p := range sw.out {
			if sw.out[p] == nil {
				continue
			}
			sw.linkWaiters[p] = takeMask(w)
			for vl := 0; vl < nvl; vl++ {
				sw.creditWaiters[p*nvl+vl] = takeMask(w)
			}
		}
		sw.waitPorts, portArena = portArena[:0:nout], portArena[nout:]
		sw.portListed, boolArena = boolArena[:nout:nout], boolArena[nout:]
		sw.pointIdx, intArena = intArena[:nin*nvl:nin*nvl], intArena[nin*nvl:]
		for i := range sw.pointIdx {
			sw.pointIdx[i] = -1
		}
		for j, sp := range sw.points {
			sw.pointIdx[int(sp.port)*nvl+sp.vl] = int32(j)
		}
	}
}

// wakeArrival marks the service point of (port, vl) pending — a packet
// was pushed there. The call sites gate on Network.wake: the scan
// oracle must not pay bookkeeping it never reads, and a mid-run
// scan->wake transition is made sound by applyArb's wholesale wake
// instead.
func (sw *Switch) wakeArrival(port ib.PortID, vl int) {
	sw.pending.set(int(sw.pointIdx[int(port)*sw.net.Cfg.NumVLs+vl]))
}

// wakeCredits wakes every point waiting for credits on (port, vl).
// Called by evCreditReturn right after the credit increment, before
// the follow-up allocation pass runs.
func (sw *Switch) wakeCredits(port ib.PortID, vl int) {
	w := sw.creditWaiters[int(port)*sw.net.Cfg.NumVLs+vl]
	sw.pending.or(w)
	w.zero()
}

// wakeAllPoints marks every service point pending — the wholesale wake
// for control-plane transitions (link/switch repair, table rewrite,
// escape-only exit, wake-mode re-arm) whose effects are not tied to
// one wait list. Stale wait-list registrations are left behind; they
// only cause spurious (side-effect-free) re-probes.
func (sw *Switch) wakeAllPoints() {
	if sw.pending == nil {
		return // pre-wiring (initWakeState has not run yet)
	}
	sw.pending.setAll(len(sw.points))
}

// parkOnLink registers point j on the link-free wait list of output
// port p. The port is entered into the sweep list once; transmit's
// ser-kick guarantees an arbitrate runs at every busyUntil expiry, so
// the entry-time sweep is the wake. A down port stays listed (its
// link never frees); SetLinkUp/SetSwitchUp wake wholesale.
func (sw *Switch) parkOnLink(j int, p ib.PortID) {
	sw.linkWaiters[p].set(j)
	if !sw.portListed[p] {
		sw.portListed[p] = true
		sw.waitPorts = append(sw.waitPorts, p)
	}
	sw.parks++
}

// parkOnCredits registers point j on the credit wait list of
// (output port, VL).
func (sw *Switch) parkOnCredits(j int, p ib.PortID, vl, nvl int) {
	sw.creditWaiters[int(p)*nvl+vl].set(j)
	sw.parks++
}

// timePark parks point j until at. A point already parked keeps the
// EARLIER of the two times: after a head serve, the new head (or the
// escape entry) may need a wake before the previously recorded one,
// and a mask-only dedupe would miss it.
func (sw *Switch) timePark(j int, at sim.Time) {
	if sw.parkedMask.test(j) {
		if at < sw.parkAt[j] {
			sw.parkAt[j] = at
		}
		return
	}
	sw.parkedMask.set(j)
	sw.parkAt[j] = at
	sw.timeParked = append(sw.timeParked, int32(j))
	sw.parks++
}

// sweepWaiters promotes wait-list entries whose condition now holds
// into the pending set: output ports whose link has freed since they
// were listed, and time-parked points whose readyAt has arrived.
// Swap-removal is order-independent — promotion only sets pending
// bits, and the drain orders by rr, not by list position.
func (sw *Switch) sweepWaiters(now sim.Time) {
	for i := 0; i < len(sw.waitPorts); {
		p := sw.waitPorts[i]
		if o := sw.out[p]; o.free(now) {
			sw.pending.or(sw.linkWaiters[p])
			sw.linkWaiters[p].zero()
			sw.portListed[p] = false
			last := len(sw.waitPorts) - 1
			sw.waitPorts[i] = sw.waitPorts[last]
			sw.waitPorts = sw.waitPorts[:last]
			continue
		}
		i++
	}
	for i := 0; i < len(sw.timeParked); {
		j := sw.timeParked[i]
		if sw.parkAt[j] <= now {
			sw.pending.set(int(j))
			sw.parkedMask.clear(int(j))
			last := len(sw.timeParked) - 1
			sw.timeParked[i] = sw.timeParked[last]
			sw.timeParked = sw.timeParked[:last]
			continue
		}
		i++
	}
}

// arbitrateWake is the wake-list allocation pass: sweep the wait
// lists, then drain the pending set in the scan's round-robin order,
// repeating (like the scan's progress loop) until a pass serves
// nothing. Points that served keep their pending bit and are
// re-probed next pass; points that failed are cleared and parked on
// their blocking conditions. Same rr origin, same trailing rr
// advance, same occupancy short-circuits as arbitrateScan — see the
// exactness argument at the top of this file.
func (sw *Switch) arbitrateWake() {
	points := sw.points
	n := len(points)
	if n == 0 {
		return
	}
	if sw.occupancy == 0 {
		// Empty switch: the scan's only effect is the rr advance. The
		// wait lists are not swept — any stale entries are bounded (at
		// most one per point) and get swept by the next non-empty pass.
		sw.rr++
		if sw.rr == n {
			sw.rr = 0
		}
		return
	}
	now := sw.ctx.eng.Now()
	if len(sw.waitPorts) != 0 || len(sw.timeParked) != 0 {
		sw.sweepWaiters(now)
	}
	for progress := true; progress && sw.occupancy > 0; {
		progress = false
		for i := 0; i < n; {
			j := sw.rr + i
			if j >= n {
				j -= n
			}
			// Pending bits at and above j within j's mask word; bits past
			// n-1 are never set, so trailing zeros locate real points.
			w := sw.pending[j>>6] >> (uint(j) & 63)
			if w == 0 {
				// Skip the rest of the word — but not past the wrap
				// point, where offsets continue at j=0.
				skip := 64 - (j & 63)
				if lim := n - j; skip > lim {
					skip = lim
				}
				i += skip
				continue
			}
			if tz := bits.TrailingZeros64(w); tz > 0 {
				i += tz
				continue
			}
			buf := sw.bufs[j]
			if len(buf.ids) == 0 {
				// Stale pending bit (buffer drained since it was set).
				sw.pending.clear(j)
				i++
				continue
			}
			if sw.tryServeWake(buf, j, now) {
				progress = true
				if sw.occupancy == 0 {
					break
				}
			}
			i++
		}
	}
	sw.rr++
	if sw.rr == n {
		sw.rr = 0
	}
}

// tryServeWake mirrors tryServe — probe the buffer head, then the
// (recomputed) escape-service entry — and on a fully failed visit
// clears the point's pending bit and registers both entries'
// blocking conditions. A visit that served anything keeps the bit:
// the next pass re-probes, exactly like the scan.
func (sw *Switch) tryServeWake(buf *vlBuffer, j int, now sim.Time) bool {
	served := false
	slab := buf.slab
	var headWait, escWait sim.Time             // readyAt still in the future
	var headBlocked, escBlocked int32 = -1, -1 // ready but nothing could fire
	if id := buf.head(); id >= 0 {
		if slab.readyAt[id] <= now {
			if out, asAdaptive, ok := sw.chooseOutput(id, now); ok {
				sw.startTx(buf, 0, sw.points[j], out, asAdaptive)
				served = true
			} else {
				headBlocked = id
			}
		} else {
			headWait = slab.readyAt[id]
		}
	}
	if idx, id := buf.escapeService(); id >= 0 && idx > 0 {
		if slab.readyAt[id] <= now {
			if out, asAdaptive, ok := sw.chooseOutput(id, now); ok {
				sw.startTx(buf, idx, sw.points[j], out, asAdaptive)
				served = true
			} else {
				escBlocked = id
			}
		} else {
			escWait = slab.readyAt[id]
		}
	}
	if served {
		return true
	}
	sw.pending.clear(j)
	if headWait > 0 {
		sw.timePark(j, headWait)
	}
	if escWait > 0 {
		sw.timePark(j, escWait)
	}
	if headBlocked >= 0 {
		sw.parkBlocked(j, headBlocked, now)
	}
	if escBlocked >= 0 {
		sw.parkBlocked(j, escBlocked, now)
	}
	return false
}

// parkBlocked registers point j on the wait list of each condition
// that blocked entry id, mirroring chooseOutput's evaluation order:
// for every routing option the entry may use, the first-failing
// condition (link busy before credits, as free() is checked first).
// Options on unwired ports register nothing — wiring is static, and
// the table rewrites that could replace them (Reroute) wake
// wholesale. Tamper-specific chooseOutput branches need no mirror:
// the wake arbiter only runs with a zero tamper model.
func (sw *Switch) parkBlocked(j int, id int32, now sim.Time) {
	slab := &sw.ctx.slab
	nvl := sw.net.Cfg.NumVLs
	if chosen := slab.chosen[id]; chosen != ib.InvalidPort {
		// Immediate selection: the decision is fixed; only the chosen
		// option's conditions matter.
		o := sw.out[chosen]
		if o == nil {
			return
		}
		if !o.free(now) {
			sw.parkOnLink(j, chosen)
			return
		}
		sw.parkOnCredits(j, chosen, sw.outVL(int(slab.sl[id]), chosen), nvl)
		return
	}
	if slab.flags[id]&entryPktAdaptive != 0 && len(slab.adaptive[id]) > 0 && sw.enhanced && !sw.escapeOnly {
		sl := int(slab.sl[id])
		for _, p := range slab.adaptive[id] {
			o := sw.out[p]
			if o == nil {
				continue
			}
			if !o.free(now) {
				sw.parkOnLink(j, p)
			} else {
				sw.parkOnCredits(j, p, sw.outVL(sl, p), nvl)
			}
		}
	}
	// Escape fallback (always probed by chooseOutput when the entry
	// reaches here — wake mode never runs under NoEscapeFallback).
	esc := slab.escape[id]
	o := sw.out[esc]
	if o == nil {
		return
	}
	if !o.free(now) {
		sw.parkOnLink(j, esc)
		return
	}
	sw.parkOnCredits(j, esc, int(slab.escVL[id]), nvl)
}

package fabric

import (
	"fmt"

	"ibasim/internal/ib"
	"ibasim/internal/prof"
	"ibasim/internal/sim"
)

// Host models one end node's channel adapter port: an injection queue
// feeding the link to its switch, and a sink that accounts deliveries.
// Source queues are unbounded — the paper measures accepted traffic
// versus offered load, so injection backpressure shows up as queueing
// delay rather than drops.
type Host struct {
	net *Network
	ctx *execCtx // execution context (shard) owning this host
	id  int

	out *outPort // link toward the attached switch

	// queue[qhead:] is the live source queue. Popping advances qhead
	// instead of re-slicing so the backing array survives the
	// empty↔shallow oscillation of an unsaturated host (re-slicing
	// walks the base pointer forward and forces append to reallocate
	// roughly once per packet); pushes compact the consumed prefix
	// away once it dominates, keeping the array bounded by the peak
	// standing depth.
	queue      []*ib.Packet
	qhead      int
	injPending bool

	// injectFn is the host's recurring delay-0 event closure, bound
	// once at wiring so scheduling it never allocates.
	injectFn func()

	// timeoutFn and timeoutArmed implement the send timeout of
	// Cfg.Retry: at most one expiry check is in flight, armed for the
	// deadline of the current queue head. Inactive (never scheduled)
	// when Retry.SendTimeout is 0.
	timeoutFn    func()
	timeoutArmed sim.Time // deadline the pending check covers; 0 = none

	// nextSeq numbers generated packets per destination (indexed by
	// destination host ID), so the deliver side can verify in-order
	// arrival of deterministic traffic. A dense slice: every host
	// eventually talks to most destinations under the paper's traffic
	// patterns, and the per-packet map hash was measurable.
	nextSeq []uint64

	// Injected and Delivered count packets for quick accounting;
	// detailed metrics hang off the Network callbacks.
	Injected  uint64
	Delivered uint64
}

// ID returns the host's global index.
func (h *Host) ID() int { return h.id }

// Engine returns the simulation engine this host's events run on: the
// network's engine sequentially, the owning shard's engine in sharded
// mode. Traffic generators schedule injection events on it.
func (h *Host) Engine() *sim.Engine { return h.ctx.eng }

// QueueLen returns the number of packets waiting in the source queue.
func (h *Host) QueueLen() int { return len(h.queue) - h.qhead }

// HeadID returns the ID of the packet at the source-queue head, or 0
// when the queue is empty (watchdog progress probe).
func (h *Host) HeadID() uint64 {
	if h.QueueLen() == 0 {
		return 0
	}
	return h.queue[h.qhead].ID
}

// qPush appends to the source queue, compacting the consumed prefix
// first when it has grown past half the backing array.
func (h *Host) qPush(pkt *ib.Packet) {
	if h.qhead > 32 && h.qhead*2 >= len(h.queue) {
		n := copy(h.queue, h.queue[h.qhead:])
		for i := n; i < len(h.queue); i++ {
			h.queue[i] = nil
		}
		h.queue = h.queue[:n]
		h.qhead = 0
	}
	h.queue = append(h.queue, pkt)
}

// qPop removes and returns the queue head; the caller must have
// checked QueueLen() > 0.
func (h *Host) qPop() *ib.Packet {
	pkt := h.queue[h.qhead]
	h.queue[h.qhead] = nil // release the reference for GC
	h.qhead++
	if h.qhead == len(h.queue) {
		h.queue = h.queue[:0]
		h.qhead = 0
	}
	return pkt
}

// Inject hands a generated packet to the CA. The packet's Src must be
// this host; DLID and Adaptive must already agree with the network's
// address plan (traffic generators use Network.NewPacket, which
// guarantees this).
func (h *Host) Inject(pkt *ib.Packet) {
	if pkt.Src != h.id {
		panic(fmt.Sprintf("fabric: packet %v injected at host %d", pkt, h.id))
	}
	pkt.SeqNo = h.nextSeq[pkt.Dst]
	h.nextSeq[pkt.Dst]++
	pkt.QueuedAt = h.ctx.eng.Now()
	h.qPush(pkt)
	if h.ctx.onCreated != nil {
		h.ctx.onCreated(pkt)
	} else if h.net.OnCreated != nil {
		h.net.OnCreated(pkt)
	}
	h.armSendTimeout()
	// The injection analog of the hop-fusion fast path: Inject runs
	// inside some dispatched event (a traffic-generator firing), and
	// when that event is alone on its timestamp the delay-0 injection
	// pass kick would schedule is popped immediately next — so it runs
	// inline instead. Quiescence also implies injPending is false.
	if h.net.fuse && !h.net.inMerged && h.ctx.eng.Quiescent() {
		h.ctx.fusedKicks++
		if prof.HotPhasesEnabled() {
			prof.Phase(prof.PhaseFused, h.tryInject)
			return
		}
		h.tryInject()
		return
	}
	h.kick()
}

// requeue re-enters a packet the fabric dropped (fault-recovery
// retry): it keeps its identity and SeqNo but restarts its journey.
func (h *Host) requeue(pkt *ib.Packet) {
	pkt.Hops = 0
	pkt.QueuedAt = h.ctx.eng.Now()
	h.qPush(pkt)
	h.armSendTimeout()
	h.kick()
}

// kick schedules an injection attempt at the current time (coalesced).
func (h *Host) kick() {
	if h.injPending {
		return
	}
	h.injPending = true
	h.ctx.eng.Schedule(0, h.injectFn)
}

// inlinePass runs the injection attempt synchronously — the hop-fusion
// analog of Switch.inlinePass (see pool.go).
func (h *Host) inlinePass() { h.tryInject() }

// finishWiring binds the host's recurring event closures once the
// link to its switch exists.
func (h *Host) finishWiring() {
	h.injectFn = func() {
		h.injPending = false
		h.tryInject()
	}
	h.timeoutFn = func() {
		h.timeoutArmed = 0
		h.expireHead()
		h.armSendTimeout()
	}
}

// armSendTimeout schedules (at most one) expiry check for the current
// queue head's deadline. No-op when the timeout is disabled or a check
// already covers an earlier-or-equal deadline.
func (h *Host) armSendTimeout() {
	to := h.net.Cfg.Retry.SendTimeout
	if to <= 0 || h.QueueLen() == 0 {
		return
	}
	deadline := h.queue[h.qhead].QueuedAt + to
	if h.timeoutArmed != 0 && h.timeoutArmed <= deadline {
		return
	}
	h.timeoutArmed = deadline
	now := h.ctx.eng.Now()
	delay := deadline - now
	if delay < 0 {
		delay = 0
	}
	h.ctx.eng.Schedule(delay, h.timeoutFn)
}

// expireHead drops every queue-head packet whose send deadline has
// passed (the link stayed down or starved past Retry.SendTimeout).
func (h *Host) expireHead() {
	to := h.net.Cfg.Retry.SendTimeout
	if to <= 0 {
		return
	}
	now := h.ctx.eng.Now()
	for h.QueueLen() > 0 && now-h.queue[h.qhead].QueuedAt >= to {
		h.ctx.dropPacket(h.qPop(), DropTimeout)
	}
}

// tryInject starts transmitting queued packets while the link is free
// and the switch's input buffer has room for the whole packet.
func (h *Host) tryInject() {
	now := h.ctx.eng.Now()
	for h.QueueLen() > 0 {
		pkt := h.queue[h.qhead]
		if !h.out.free(now) {
			return
		}
		vl := pkt.SL % h.net.Cfg.NumVLs
		if !h.net.Cfg.Split.CanUseEscape(h.out.credits[vl], pkt.Credits()) {
			return
		}
		h.qPop()
		h.out.credits[vl] -= pkt.Credits()
		ser := ib.SerializationTime(pkt.Size)
		h.out.busyUntil = now + ser
		h.out.busyAccum += ser
		h.out.txPackets++
		pkt.InjectedAt = now
		h.Injected++
		h.ctx.moved++

		h.ctx.scheduleReceive(ib.PropagationDelay, h.out.peerSwitch, h.out.peerPort, vl, pkt)
		h.ctx.scheduleHostKick(ser, h)
		return // the link is now busy; the ser-kick continues the queue
	}
}

// deliver sinks a packet arriving at this host.
func (h *Host) deliver(pkt *ib.Packet) {
	if pkt.Dst != h.id {
		panic(fmt.Sprintf("fabric: packet %v delivered to host %d", pkt, h.id))
	}
	pkt.DeliveredAt = h.ctx.eng.Now()
	h.Delivered++
	h.ctx.moved++
	if h.ctx.onDelivered != nil {
		h.ctx.onDelivered(pkt)
	} else if h.net.OnDelivered != nil {
		h.net.OnDelivered(pkt)
	}
}

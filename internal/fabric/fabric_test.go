package fabric_test

import (
	"testing"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
	"ibasim/internal/subnet"
	"ibasim/internal/topology"
)

// buildNet wires a network over the topology and programs its tables.
func buildNet(t testing.TB, topo *topology.Topology, cfg fabric.Config, mr int, lmc uint) *fabric.Network {
	t.Helper()
	plan, err := ib.NewAddressPlan(topo.NumHosts(), lmc)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fabric.NewNetwork(topo, plan, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := subnet.DefaultOptions()
	opts.MaxRoutingOptions = mr
	if _, err := subnet.Configure(net, opts); err != nil {
		t.Fatal(err)
	}
	return net
}

func lineNet(t testing.TB, switches int, cfg fabric.Config) *fabric.Network {
	t.Helper()
	topo, err := topology.Line(switches, 4)
	if err != nil {
		t.Fatal(err)
	}
	return buildNet(t, topo, cfg, 2, 1)
}

func irregularNet(t testing.TB, n, k int, seed uint64, cfg fabric.Config, mr int, lmc uint) *fabric.Network {
	t.Helper()
	topo, err := topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches: n, HostsPerSwitch: 4, InterSwitch: k, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buildNet(t, topo, cfg, mr, lmc)
}

func TestSinglePacketTimingTwoSwitches(t *testing.T) {
	// Host on switch 0 to host on switch 1 over a 2-switch line with a
	// 32-byte packet. Expected schedule:
	//   t=0    injection transmission starts (ser = 32 B * 4 ns = 128)
	//   t=100  header at switch 0 (propagation)
	//   t=200  routing done, transmission to switch 1 starts
	//   t=300  header at switch 1
	//   t=400  routing done, transmission to destination CA starts
	//   t=628  tail delivered (400 + 128 + 100)
	net := lineNet(t, 2, fabric.DefaultConfig())
	pkt := net.NewPacket(0, 4, 32, false)
	var deliveredAt sim.Time = -1
	net.OnDelivered = func(p *ib.Packet) { deliveredAt = p.DeliveredAt }
	net.Hosts[0].Inject(pkt)
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if deliveredAt != 628 {
		t.Fatalf("delivered at %v, want 628", deliveredAt)
	}
	if pkt.Hops != 2 {
		t.Fatalf("hops = %d, want 2", pkt.Hops)
	}
}

func TestSinglePacketSameSwitch(t *testing.T) {
	// Host 0 -> host 1, both on switch 0: one switch traversal.
	// t=0 inject, t=100 header, t=200 tx to CA, t=428 delivered.
	net := lineNet(t, 2, fabric.DefaultConfig())
	pkt := net.NewPacket(0, 1, 32, false)
	net.Hosts[0].Inject(pkt)
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if pkt.DeliveredAt != 428 {
		t.Fatalf("delivered at %v, want 428", pkt.DeliveredAt)
	}
	if pkt.Hops != 1 {
		t.Fatalf("hops = %d, want 1", pkt.Hops)
	}
}

func TestLargePacketTiming(t *testing.T) {
	// 256-byte packet, same switch: ser = 1024 ns.
	// t=200 tx to CA, delivered 200 + 1024 + 100 = 1324.
	net := lineNet(t, 2, fabric.DefaultConfig())
	pkt := net.NewPacket(0, 1, 256, false)
	net.Hosts[0].Inject(pkt)
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if pkt.DeliveredAt != 1324 {
		t.Fatalf("delivered at %v, want 1324", pkt.DeliveredAt)
	}
}

func TestAllPacketsDeliveredNoLossNoDup(t *testing.T) {
	net := irregularNet(t, 8, 4, 3, fabric.DefaultConfig(), 2, 1)
	rng := sim.NewRNG(99)
	seen := map[uint64]int{}
	injected := 0
	net.OnDelivered = func(p *ib.Packet) { seen[p.ID]++ }
	hosts := net.Topo.NumHosts()
	for i := 0; i < 500; i++ {
		src := rng.Intn(hosts)
		dst := rng.Intn(hosts)
		if dst == src {
			dst = (dst + 1) % hosts
		}
		pkt := net.NewPacket(src, dst, 32, rng.Bool(0.5))
		net.Hosts[src].Inject(pkt)
		injected++
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != injected {
		t.Fatalf("delivered %d distinct packets, want %d", len(seen), injected)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("packet %d delivered %d times", id, n)
		}
	}
}

func TestCreditConservationAfterDrain(t *testing.T) {
	net := irregularNet(t, 8, 4, 5, fabric.DefaultConfig(), 2, 1)
	rng := sim.NewRNG(7)
	hosts := net.Topo.NumHosts()
	for i := 0; i < 300; i++ {
		src, dst := rng.Intn(hosts), rng.Intn(hosts)
		if src == dst {
			dst = (dst + 1) % hosts
		}
		net.Hosts[src].Inject(net.NewPacket(src, dst, 256, rng.Bool(0.7)))
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := net.CreditsIntact(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicInOrderDelivery(t *testing.T) {
	// All-deterministic traffic between one hot pair must arrive in
	// sequence order despite congestion from background flows.
	net := irregularNet(t, 8, 4, 11, fabric.DefaultConfig(), 2, 1)
	lastSeq := map[[2]int]uint64{}
	var violations int
	net.OnDelivered = func(p *ib.Packet) {
		if p.Adaptive {
			return
		}
		key := [2]int{p.Src, p.Dst}
		if last, ok := lastSeq[key]; ok && p.SeqNo <= last {
			violations++
		}
		lastSeq[key] = p.SeqNo
	}
	rng := sim.NewRNG(13)
	hosts := net.Topo.NumHosts()
	for i := 0; i < 400; i++ {
		// Deterministic stream 0 -> last host, random background.
		net.Hosts[0].Inject(net.NewPacket(0, hosts-1, 32, false))
		src := rng.Intn(hosts)
		dst := rng.Intn(hosts)
		if src == dst {
			dst = (dst + 1) % hosts
		}
		if src != 0 {
			net.Hosts[src].Inject(net.NewPacket(src, dst, 32, true))
		}
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("%d in-order violations for deterministic traffic", violations)
	}
}

func TestAdaptiveOverloadDrains(t *testing.T) {
	// Saturating burst of 100% adaptive traffic must still drain —
	// the escape-path deadlock-freedom argument made executable.
	net := irregularNet(t, 16, 4, 17, fabric.DefaultConfig(), 2, 1)
	rng := sim.NewRNG(23)
	hosts := net.Topo.NumHosts()
	for i := 0; i < 3000; i++ {
		src, dst := rng.Intn(hosts), rng.Intn(hosts)
		if src == dst {
			dst = (dst + 1) % hosts
		}
		net.Hosts[src].Inject(net.NewPacket(src, dst, 256, true))
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := net.CreditsIntact(); err != nil {
		t.Fatal(err)
	}
}

func TestHotspotOverloadDrains(t *testing.T) {
	// Everyone floods one destination: maximum tree contention.
	net := irregularNet(t, 8, 4, 29, fabric.DefaultConfig(), 2, 1)
	hosts := net.Topo.NumHosts()
	for round := 0; round < 40; round++ {
		for src := 1; src < hosts; src++ {
			net.Hosts[src].Inject(net.NewPacket(src, 0, 256, true))
		}
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestPlainDeterministicSubnet(t *testing.T) {
	cfg := fabric.DefaultConfig()
	cfg.AdaptiveSwitches = false
	net := irregularNet(t, 8, 4, 31, cfg, 2, 1)
	rng := sim.NewRNG(37)
	hosts := net.Topo.NumHosts()
	delivered := 0
	net.OnDelivered = func(p *ib.Packet) { delivered++ }
	for i := 0; i < 500; i++ {
		src, dst := rng.Intn(hosts), rng.Intn(hosts)
		if src == dst {
			dst = (dst + 1) % hosts
		}
		// Baseline subnets carry deterministic DLIDs.
		net.Hosts[src].Inject(net.NewPacket(src, dst, 32, false))
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if delivered != 500 {
		t.Fatalf("delivered %d, want 500", delivered)
	}
}

func TestHopsBoundedByDiameterPlusTables(t *testing.T) {
	// Deterministic packets follow the up*/down* table path exactly;
	// adaptive packets may take escape detours but must stay within a
	// sane bound (escape path length from any intermediate switch).
	net := irregularNet(t, 16, 4, 41, fabric.DefaultConfig(), 2, 1)
	maxHops := 0
	net.OnDelivered = func(p *ib.Packet) {
		if p.Hops > maxHops {
			maxHops = p.Hops
		}
	}
	rng := sim.NewRNG(43)
	hosts := net.Topo.NumHosts()
	for i := 0; i < 2000; i++ {
		src, dst := rng.Intn(hosts), rng.Intn(hosts)
		if src == dst {
			dst = (dst + 1) % hosts
		}
		net.Hosts[src].Inject(net.NewPacket(src, dst, 32, true))
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	bound := 4 * net.Topo.NumSwitches // generous livelock guard
	if maxHops > bound {
		t.Fatalf("max hops %d exceeds bound %d", maxHops, bound)
	}
}

func TestLatencyNeverBelowAnalyticMinimum(t *testing.T) {
	// Minimum possible latency for a 32 B packet crossing h switches:
	// injection ser overlap aside, each switch adds routing delay and
	// each link propagation; tail delivery adds one serialization.
	net := irregularNet(t, 8, 4, 47, fabric.DefaultConfig(), 2, 1)
	var bad int
	net.OnDelivered = func(p *ib.Packet) {
		minLat := sim.Time(p.Hops)*(ib.RoutingDelay+ib.PropagationDelay) +
			ib.PropagationDelay + ib.SerializationTime(p.Size)
		if p.Latency() < minLat {
			bad++
		}
	}
	rng := sim.NewRNG(53)
	hosts := net.Topo.NumHosts()
	for i := 0; i < 1000; i++ {
		src, dst := rng.Intn(hosts), rng.Intn(hosts)
		if src == dst {
			dst = (dst + 1) % hosts
		}
		net.Hosts[src].Inject(net.NewPacket(src, dst, 32, rng.Bool(0.5)))
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d packets beat the analytic latency minimum", bad)
	}
}

func TestImmediateSelectionModesDrain(t *testing.T) {
	for _, aware := range []bool{true, false} {
		cfg := fabric.DefaultConfig()
		cfg.Selection.AtArbitration = false
		cfg.Selection.StatusAware = aware
		net := irregularNet(t, 8, 4, 59, cfg, 2, 1)
		rng := sim.NewRNG(61)
		hosts := net.Topo.NumHosts()
		for i := 0; i < 800; i++ {
			src, dst := rng.Intn(hosts), rng.Intn(hosts)
			if src == dst {
				dst = (dst + 1) % hosts
			}
			net.Hosts[src].Inject(net.NewPacket(src, dst, 32, true))
		}
		if err := net.Drain(); err != nil {
			t.Fatalf("aware=%v: %v", aware, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := fabric.DefaultConfig()
	cfg.NumVLs = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("NumVLs 0 accepted")
	}
	cfg = fabric.DefaultConfig()
	cfg.BufferCredits = 4 // cannot hold two MTU packets
	if err := cfg.Validate(); err == nil {
		t.Fatal("tiny buffer accepted")
	}
	cfg = fabric.DefaultConfig()
	cfg.MTU = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("MTU 0 accepted")
	}
}

func TestNewNetworkRejectsMismatchedPlan(t *testing.T) {
	topo, err := topology.Line(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ib.NewAddressPlan(4, 1) // topology has 8 hosts
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fabric.NewNetwork(topo, plan, fabric.DefaultConfig(), 1); err == nil {
		t.Fatal("mismatched plan accepted")
	}
}

func TestMultiVLConfiguration(t *testing.T) {
	cfg := fabric.DefaultConfig()
	cfg.NumVLs = 2
	net := irregularNet(t, 8, 4, 67, cfg, 2, 1)
	rng := sim.NewRNG(71)
	hosts := net.Topo.NumHosts()
	delivered := 0
	net.OnDelivered = func(p *ib.Packet) { delivered++ }
	for i := 0; i < 400; i++ {
		src, dst := rng.Intn(hosts), rng.Intn(hosts)
		if src == dst {
			dst = (dst + 1) % hosts
		}
		pkt := net.NewPacket(src, dst, 32, true)
		pkt.SL = i % 2 // spread across both VLs
		net.Hosts[src].Inject(pkt)
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if delivered != 400 {
		t.Fatalf("delivered %d, want 400", delivered)
	}
}

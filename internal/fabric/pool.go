package fabric

import (
	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// Hot-path object pools. Every packet hop schedules a handful of
// events (peer receive, credit return, delivery) and buffers one
// bufEntry; allocating those on the heap per hop dominated the
// simulator's allocation profile. Both pools are plain freelists on
// the Network rather than sync.Pools: each Network owns exactly one
// single-threaded engine, so no locking is needed, and freelist reuse
// is deterministic — it cannot perturb event ordering across runs.

// Event kinds dispatched by fabricEvent.Do.
const (
	evReceive      uint8 = iota // packet head arrives at a switch input port
	evDeliver                   // packet tail arrives at the destination CA
	evCreditReturn              // flow-control update reaches the transmitter
)

// fabricEvent is a pooled sim.Action carrying the payload of one
// hot-path event. The same struct type serves all three kinds; unused
// fields stay nil/zero. It releases itself back to its network's pool
// before running the payload, so a hop's event storage is recycled by
// the very events it schedules.
type fabricEvent struct {
	net  *Network
	kind uint8

	sw   *Switch    // evReceive target
	host *Host      // evDeliver target
	out  *outPort   // evCreditReturn target
	port ib.PortID  // evReceive input port
	vl   int        // input/output VL
	n    int        // credits returned
	pkt  *ib.Packet // in-flight packet
}

// Do dispatches the event. Payload fields are copied to locals and the
// struct is returned to the pool first, so work scheduled by the
// payload can reuse it immediately.
func (ev *fabricEvent) Do() {
	kind, sw, host, out, port, vl, n, pkt := ev.kind, ev.sw, ev.host, ev.out, ev.port, ev.vl, ev.n, ev.pkt
	ev.net.putEvent(ev)
	switch kind {
	case evReceive:
		sw.receive(port, vl, pkt)
	case evDeliver:
		host.deliver(pkt)
	case evCreditReturn:
		out.returnCredits(vl, n)
	}
}

func (n *Network) getEvent() *fabricEvent {
	if last := len(n.evFree) - 1; last >= 0 {
		ev := n.evFree[last]
		n.evFree = n.evFree[:last]
		return ev
	}
	return &fabricEvent{net: n}
}

func (n *Network) putEvent(ev *fabricEvent) {
	*ev = fabricEvent{net: ev.net} // drop packet/port references for GC
	n.evFree = append(n.evFree, ev)
}

// scheduleReceive schedules a packet head arrival at (sw, port, vl)
// after delay, without allocating once the pool is warm.
func (n *Network) scheduleReceive(delay sim.Time, sw *Switch, port ib.PortID, vl int, pkt *ib.Packet) {
	ev := n.getEvent()
	ev.kind, ev.sw, ev.port, ev.vl, ev.pkt = evReceive, sw, port, vl, pkt
	n.Engine.ScheduleAction(delay, ev)
}

// scheduleDeliver schedules a packet delivery at the destination CA.
func (n *Network) scheduleDeliver(delay sim.Time, h *Host, pkt *ib.Packet) {
	ev := n.getEvent()
	ev.kind, ev.host, ev.pkt = evDeliver, h, pkt
	n.Engine.ScheduleAction(delay, ev)
}

// scheduleCreditReturn schedules a flow-control update of credits
// credits on (o, vl).
func (n *Network) scheduleCreditReturn(delay sim.Time, o *outPort, vl, credits int) {
	ev := n.getEvent()
	ev.kind, ev.out, ev.vl, ev.n = evCreditReturn, o, vl, credits
	n.Engine.ScheduleAction(delay, ev)
}

// getEntry takes a bufEntry from the pool (or allocates one cold).
// Callers must set every routing field; the entry arrives zeroed with
// chosen already at InvalidPort.
func (n *Network) getEntry() *bufEntry {
	if last := len(n.entryFree) - 1; last >= 0 {
		e := n.entryFree[last]
		n.entryFree = n.entryFree[:last]
		return e
	}
	return &bufEntry{chosen: ib.InvalidPort}
}

// putEntry recycles a bufEntry after its packet left the buffer. The
// adaptive slice reference is dropped (it belongs to the forwarding
// table's block cache, never to the entry).
func (n *Network) putEntry(e *bufEntry) {
	*e = bufEntry{chosen: ib.InvalidPort}
	n.entryFree = append(n.entryFree, e)
}

package fabric

import (
	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// Hot-path object pools. Every packet hop schedules a handful of
// events (peer receive, credit return, delivery) and buffers one
// bufEntry; allocating those on the heap per hop dominated the
// simulator's allocation profile. Both pools are plain freelists on
// the execution context rather than sync.Pools: each context's engine
// dispatches sequentially, so no locking is needed, and freelist reuse
// is deterministic — it cannot perturb event ordering across runs.
// When an event crosses a shard boundary its storage migrates with it:
// ev.ctx is retargeted at dispatch, so the release always happens on
// the goroutine that owns the freelist it lands in.

// Event kinds dispatched by fabricEvent.Do.
const (
	evReceive      uint8 = iota // packet head arrives at a switch input port
	evDeliver                   // packet tail arrives at the destination CA
	evCreditReturn              // flow-control update reaches the transmitter
	evRequeue                   // retry policy re-enters a dropped packet at its source
)

// fabricEvent is a pooled sim.Action carrying the payload of one
// hot-path event. The same struct type serves all kinds; unused fields
// stay nil/zero. It releases itself back to its context's pool before
// running the payload, so a hop's event storage is recycled by the
// very events it schedules.
type fabricEvent struct {
	ctx  *execCtx // context the event executes (and is released) on
	kind uint8

	sw   *Switch    // evReceive target
	host *Host      // evDeliver / evRequeue target
	out  *outPort   // evCreditReturn target
	port ib.PortID  // evReceive input port
	vl   int        // input/output VL
	n    int        // credits returned
	pkt  *ib.Packet // in-flight packet
}

// Do dispatches the event. Payload fields are copied to locals and the
// struct is returned to the pool first, so work scheduled by the
// payload can reuse it immediately.
func (ev *fabricEvent) Do() {
	c, kind, sw, host, out, port, vl, n, pkt := ev.ctx, ev.kind, ev.sw, ev.host, ev.out, ev.port, ev.vl, ev.n, ev.pkt
	c.putEvent(ev)
	switch kind {
	case evReceive:
		sw.receive(port, vl, pkt)
	case evDeliver:
		host.deliver(pkt)
	case evCreditReturn:
		out.returnCredits(vl, n)
	case evRequeue:
		host.requeue(pkt)
	}
}

func (c *execCtx) getEvent() *fabricEvent {
	if last := len(c.evFree) - 1; last >= 0 {
		ev := c.evFree[last]
		c.evFree = c.evFree[:last]
		return ev
	}
	return &fabricEvent{}
}

func (c *execCtx) putEvent(ev *fabricEvent) {
	*ev = fabricEvent{} // drop packet/port references for GC
	c.evFree = append(c.evFree, ev)
}

// scheduleReceive schedules a packet head arrival at (sw, port, vl)
// after delay, without allocating once the pool is warm.
func (c *execCtx) scheduleReceive(delay sim.Time, sw *Switch, port ib.PortID, vl int, pkt *ib.Packet) {
	ev := c.getEvent()
	ev.kind, ev.sw, ev.port, ev.vl, ev.pkt = evReceive, sw, port, vl, pkt
	c.dispatch(delay, sw.ctx, ev)
}

// scheduleDeliver schedules a packet delivery at the destination CA.
func (c *execCtx) scheduleDeliver(delay sim.Time, h *Host, pkt *ib.Packet) {
	ev := c.getEvent()
	ev.kind, ev.host, ev.pkt = evDeliver, h, pkt
	c.dispatch(delay, h.ctx, ev)
}

// scheduleCreditReturn schedules a flow-control update of credits
// credits on (o, vl); it executes on the port owner's context.
func (c *execCtx) scheduleCreditReturn(delay sim.Time, o *outPort, vl, credits int) {
	ev := c.getEvent()
	ev.kind, ev.out, ev.vl, ev.n = evCreditReturn, o, vl, credits
	c.dispatch(delay, o.ctx, ev)
}

// scheduleRequeue schedules the retry re-injection of a dropped packet
// at its source host.
func (c *execCtx) scheduleRequeue(delay sim.Time, h *Host, pkt *ib.Packet) {
	ev := c.getEvent()
	ev.kind, ev.host, ev.pkt = evRequeue, h, pkt
	c.dispatch(delay, h.ctx, ev)
}

// pktSlabSize is how many packets one allocation block holds. Packets
// are not recycled — observers (reorder buffers, tracers, tests) may
// hold a delivered packet long after the fabric last touches it, so
// reuse would need a liveness protocol. Slab allocation keeps every
// packet valid for the network's lifetime while cutting the allocator
// to one call per block instead of one per packet; a block is freed as
// a whole when the run's last reference to it drops.
const pktSlabSize = 512

// getPacket carves the next packet from the context's slab. Only the
// context's own goroutine calls this (packet creation runs on the
// source host's engine), so no locking is needed, and the carve order
// is deterministic.
func (c *execCtx) getPacket() *ib.Packet {
	if len(c.pktSlab) == 0 {
		c.pktSlab = make([]ib.Packet, pktSlabSize)
	}
	pkt := &c.pktSlab[0]
	c.pktSlab = c.pktSlab[1:]
	return pkt
}

// getEntry takes a bufEntry from the pool (or allocates one cold).
// Callers must set every routing field; the entry arrives zeroed with
// chosen already at InvalidPort.
func (c *execCtx) getEntry() *bufEntry {
	if last := len(c.entryFree) - 1; last >= 0 {
		e := c.entryFree[last]
		c.entryFree = c.entryFree[:last]
		return e
	}
	return &bufEntry{chosen: ib.InvalidPort}
}

// putEntry recycles a bufEntry after its packet left the buffer. The
// adaptive slice reference is dropped (it belongs to the forwarding
// table's block cache, never to the entry).
func (c *execCtx) putEntry(e *bufEntry) {
	*e = bufEntry{chosen: ib.InvalidPort}
	c.entryFree = append(c.entryFree, e)
}

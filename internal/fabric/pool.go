package fabric

import (
	"sync"

	"ibasim/internal/ib"
	"ibasim/internal/prof"
	"ibasim/internal/sim"
)

// Hot-path object pools. Every packet hop schedules a handful of
// events (peer receive, credit return, delivery, follow-up kicks) and
// buffers one slab entry; allocating those on the heap per hop
// dominated the simulator's allocation profile. The event pool is a
// plain freelist on the execution context rather than a sync.Pool:
// each context's engine dispatches sequentially, so no locking is
// needed, and freelist reuse is deterministic — it cannot perturb
// event ordering across runs. When an event crosses a shard boundary
// its storage migrates with it: ev.ctx is retargeted at dispatch, so
// the release always happens on the goroutine that owns the freelist
// it lands in. Buffered-packet state lives in the context's
// struct-of-arrays entrySlab (see vlbuffer.go).

// Event kinds dispatched by fabricEvent.Do.
const (
	evReceive      uint8 = iota // packet head arrives at a switch input port
	evDeliver                   // packet tail arrives at the destination CA
	evCreditReturn              // flow-control update reaches the transmitter
	evRequeue                   // retry policy re-enters a dropped packet at its source
	evSwitchKick                // delayed allocation-pass kick (routing done / link freed)
	evHostKick                  // delayed injection kick (host link freed)
)

// fabricEvent is a pooled sim.Action carrying the payload of one
// hot-path event. The same struct type serves all kinds; unused fields
// stay nil/zero. It releases itself back to its context's pool before
// running the payload, so a hop's event storage is recycled by the
// very events it schedules.
type fabricEvent struct {
	ctx  *execCtx // context the event executes (and is released) on
	kind uint8

	sw   *Switch    // evReceive / evSwitchKick target
	host *Host      // evDeliver / evRequeue / evHostKick target
	out  *outPort   // evCreditReturn target
	port ib.PortID  // evReceive input port
	vl   int        // input/output VL
	n    int        // credits returned
	pkt  *ib.Packet // in-flight packet
}

// Do dispatches the event. Payload fields are copied to locals and the
// struct is returned to the pool first, so work scheduled by the
// payload can reuse it immediately.
//
// The two kick kinds carry the hop-fusion fast path. A kick's only
// legacy job is to schedule the delay-0 allocation/injection pass
// (coalesced through arbPending/injPending). When the engine is
// quiescent at this timestamp — the kick is the last event at Now —
// that delay-0 event would be popped immediately next with no
// intervening dispatch, so the pass runs inline instead and the
// delay-0 event is elided: same state reads, same pushes in the same
// relative order, two fewer queue round-trips per uncongested hop.
// Quiescence also proves the pending flag is clear (a pending delay-0
// pass would itself be an event at Now). The fast path is fenced off
// whenever exact per-hop event sequences are observable: fusion
// disabled (-fuse=off), a packet tracer attached (Network.Defuse), a
// tamper model installed, or the sharded coordinator's merged control
// phase, where same-timestamp events on *other* engines may interleave
// between the kick and its delay-0 pass.
func (ev *fabricEvent) Do() {
	c, kind, sw, host, out, port, vl, n, pkt := ev.ctx, ev.kind, ev.sw, ev.host, ev.out, ev.port, ev.vl, ev.n, ev.pkt
	c.putEvent(ev)
	switch kind {
	case evReceive:
		if prof.HotPhasesEnabled() {
			prof.Phase(prof.PhaseRoute, func() { sw.receive(port, vl, pkt) })
			return
		}
		sw.receive(port, vl, pkt)
	case evDeliver:
		host.deliver(pkt)
	case evCreditReturn:
		// Same fusion argument as the kick kinds: returnCredits' only
		// follow-up is the owner's coalesced delay-0 pass, so when this
		// event is alone at Now the pass runs inline. (evCreditReturn
		// executes on the port owner's context, so c.eng is the engine
		// whose quiescence matters.)
		out.credits[vl] += n
		if c.net.wake && out.ownerSw != nil {
			out.ownerSw.wakeCredits(out.id, vl)
		}
		if c.net.fuse && !c.net.inMerged && c.eng.Quiescent() {
			c.fusedKicks++
			if prof.HotPhasesEnabled() {
				prof.Phase(prof.PhaseFused, out.owner.inlinePass)
				return
			}
			out.owner.inlinePass()
			return
		}
		out.owner.kick()
	case evRequeue:
		host.requeue(pkt)
	case evSwitchKick:
		if sw.net.fuse && !sw.net.inMerged && c.eng.Quiescent() {
			c.fusedKicks++
			if prof.HotPhasesEnabled() {
				prof.Phase(prof.PhaseFused, sw.arbitrate)
				return
			}
			sw.arbitrate()
			return
		}
		sw.kick()
	case evHostKick:
		if host.net.fuse && !host.net.inMerged && c.eng.Quiescent() {
			c.fusedKicks++
			if prof.HotPhasesEnabled() {
				prof.Phase(prof.PhaseFused, host.tryInject)
				return
			}
			host.tryInject()
			return
		}
		host.kick()
	}
}

func (c *execCtx) getEvent() *fabricEvent {
	if last := len(c.evFree) - 1; last >= 0 {
		ev := c.evFree[last]
		c.evFree = c.evFree[:last]
		return ev
	}
	return &fabricEvent{}
}

func (c *execCtx) putEvent(ev *fabricEvent) {
	*ev = fabricEvent{} // drop packet/port references for GC
	c.evFree = append(c.evFree, ev)
}

// scheduleReceive schedules a packet head arrival at (sw, port, vl)
// after delay, without allocating once the pool is warm.
func (c *execCtx) scheduleReceive(delay sim.Time, sw *Switch, port ib.PortID, vl int, pkt *ib.Packet) {
	ev := c.getEvent()
	ev.kind, ev.sw, ev.port, ev.vl, ev.pkt = evReceive, sw, port, vl, pkt
	c.dispatch(delay, sw.ctx, ev)
}

// scheduleDeliver schedules a packet delivery at the destination CA.
func (c *execCtx) scheduleDeliver(delay sim.Time, h *Host, pkt *ib.Packet) {
	ev := c.getEvent()
	ev.kind, ev.host, ev.pkt = evDeliver, h, pkt
	c.dispatch(delay, h.ctx, ev)
}

// scheduleCreditReturn schedules a flow-control update of credits
// credits on (o, vl); it executes on the port owner's context.
func (c *execCtx) scheduleCreditReturn(delay sim.Time, o *outPort, vl, credits int) {
	ev := c.getEvent()
	ev.kind, ev.out, ev.vl, ev.n = evCreditReturn, o, vl, credits
	c.dispatch(delay, o.ctx, ev)
}

// scheduleRequeue schedules the retry re-injection of a dropped packet
// at its source host.
func (c *execCtx) scheduleRequeue(delay sim.Time, h *Host, pkt *ib.Packet) {
	ev := c.getEvent()
	ev.kind, ev.host, ev.pkt = evRequeue, h, pkt
	c.dispatch(delay, h.ctx, ev)
}

// scheduleSwitchKick schedules a pooled allocation-pass kick for sw
// after delay. Kicks are always context-local (a node only kicks
// itself on a delay), so this bypasses dispatch's shard routing. The
// pooled action occupies the exact queue position the old bound-method
// closure did — same push site, same sequence number — so replacing
// the closure cannot perturb dispatch order.
func (c *execCtx) scheduleSwitchKick(delay sim.Time, sw *Switch) {
	ev := c.getEvent()
	ev.kind, ev.sw, ev.ctx = evSwitchKick, sw, c
	c.eng.ScheduleAction(delay, ev)
}

// scheduleHostKick schedules a pooled injection kick for h after delay.
func (c *execCtx) scheduleHostKick(delay sim.Time, h *Host) {
	ev := c.getEvent()
	ev.kind, ev.host, ev.ctx = evHostKick, h, c
	c.eng.ScheduleAction(delay, ev)
}

// pktSlabSize is how many packets one allocation block holds. Packets
// are not recycled — observers (reorder buffers, tracers, tests) may
// hold a delivered packet long after the fabric last touches it, so
// reuse would need a liveness protocol. Slab allocation keeps every
// packet valid for the network's lifetime while cutting the allocator
// to one call per block instead of one per packet; a block is freed as
// a whole when the run's last reference to it drops.
const pktSlabSize = 512

// getPacket carves the next packet from the context's slab. Only the
// context's own goroutine calls this (packet creation runs on the
// source host's engine), so no locking is needed, and the carve order
// is deterministic.
func (c *execCtx) getPacket() *ib.Packet {
	if len(c.pktSlab) == 0 {
		c.pktSlab = c.net.pktBlock()
		c.pktBlocks = append(c.pktBlocks, c.pktSlab)
	}
	pkt := &c.pktSlab[0]
	c.pktSlab = c.pktSlab[1:]
	return pkt
}

// pktBlock returns a fresh packet block: recycled from the configured
// arena when one is set (stale contents are fine — NewPacket overwrites
// the whole struct), freshly allocated otherwise.
func (n *Network) pktBlock() []ib.Packet {
	if a := n.Cfg.PacketArena; a != nil {
		if b := a.get(); b != nil {
			return b
		}
	}
	return make([]ib.Packet, pktSlabSize)
}

// PacketArena recycles packet slab blocks between the runs of a sweep,
// the packet-memory analog of sim.QueueArena: the load points of a
// sweep each allocate tens of thousands of packets, and handing a
// finished run's blocks to the next cuts the dominant share of the
// sweep's GC pressure. Thread-safe — load points run on a worker pool.
//
// Safety contract: blocks come back via Network.Recycle, whose caller
// asserts the run is over and no *ib.Packet reference survives it
// (observers drain with the network). Reusing a block while a packet
// in it is still referenced would silently corrupt that packet.
type PacketArena struct {
	mu     sync.Mutex
	blocks [][]ib.Packet
}

// NewPacketArena returns an empty arena.
func NewPacketArena() *PacketArena { return &PacketArena{} }

func (a *PacketArena) get() []ib.Packet {
	a.mu.Lock()
	defer a.mu.Unlock()
	if last := len(a.blocks) - 1; last >= 0 {
		b := a.blocks[last]
		a.blocks[last] = nil
		a.blocks = a.blocks[:last]
		return b
	}
	return nil
}

func (a *PacketArena) put(blocks [][]ib.Packet) {
	if len(blocks) == 0 {
		return
	}
	a.mu.Lock()
	a.blocks = append(a.blocks, blocks...)
	a.mu.Unlock()
}

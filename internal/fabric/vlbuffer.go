package fabric

import (
	"fmt"

	"ibasim/internal/core"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// Buffered-packet state lives in a struct-of-arrays slab, one per
// execution context, indexed by dense int32 entry IDs. The arbitration
// scan, the escape-service walk and the credit-occupancy audit touch
// one or two fields of many entries; with the old array-of-structs
// freelist every touch dragged a whole cache line of unrelated fields
// (and a pointer dereference) through the cache. The slab keeps each
// hot field contiguous, and the hottest per-packet reads (credits, SL,
// the adaptive-service bit) are cached here at arrival so the scan
// never chases the *ib.Packet at all.

// Entry flag bits (entrySlab.flags).
const (
	// entryPktAdaptive caches pkt.Adaptive: the packet travels in
	// adaptive service mode (LSB of its DLID set).
	entryPktAdaptive uint8 = 1 << iota
	// entryChosenAdaptive records which §4.4 credit rule the fixed
	// immediate-selection choice must satisfy.
	entryChosenAdaptive
)

// entrySlabChunk is how many entries one growth step adds. Growth only
// happens while the standing buffered-packet population reaches a new
// high-water mark; at steady state the free list recycles IDs and the
// arrays never move.
const entrySlabChunk = 256

// entrySlab is the struct-of-arrays store for one execution context's
// buffered packets. Single-threaded per context (each context's engine
// dispatches sequentially), so no locking; free-list reuse is
// deterministic and cannot perturb event ordering across runs.
type entrySlab struct {
	pkt     []*ib.Packet
	readyAt []sim.Time // head arrival + routing delay; earliest service

	// Routing options returned by the forwarding-table access. The
	// adaptive slice aliases the table's block cache, never the entry.
	escape   []ib.PortID
	adaptive [][]ib.PortID

	// chosen is the fixed output selected at routing time when the
	// switch uses immediate selection (§4.3); InvalidPort when the
	// decision is deferred to arbitration.
	chosen []ib.PortID

	// credits and sl cache pkt.Credits() and pkt.SL; flags caches
	// pkt.Adaptive and carries the chosen-rule bit.
	credits []int32
	sl      []int32
	flags   []uint8

	// escVL caches the SLtoVL-resolved VL of the entry's escape
	// option, set at arrival (and refreshed by Reroute) so the escape
	// probes skip the vlOf multiply-and-index.
	escVL []int8

	free []int32
}

// alloc returns a free entry ID with every field zeroed (chosen at
// InvalidPort); the caller fills the routing state.
func (s *entrySlab) alloc() int32 {
	if last := len(s.free) - 1; last >= 0 {
		id := s.free[last]
		s.free = s.free[:last]
		return id
	}
	return s.grow()
}

// grow extends every column by one chunk, queues the fresh IDs on the
// free list and returns the first of them.
func (s *entrySlab) grow() int32 {
	base := int32(len(s.pkt))
	s.pkt = append(s.pkt, make([]*ib.Packet, entrySlabChunk)...)
	s.readyAt = append(s.readyAt, make([]sim.Time, entrySlabChunk)...)
	s.escape = append(s.escape, make([]ib.PortID, entrySlabChunk)...)
	s.adaptive = append(s.adaptive, make([][]ib.PortID, entrySlabChunk)...)
	s.chosen = append(s.chosen, make([]ib.PortID, entrySlabChunk)...)
	s.credits = append(s.credits, make([]int32, entrySlabChunk)...)
	s.sl = append(s.sl, make([]int32, entrySlabChunk)...)
	s.flags = append(s.flags, make([]uint8, entrySlabChunk)...)
	s.escVL = append(s.escVL, make([]int8, entrySlabChunk)...)
	for id := base; id < base+entrySlabChunk; id++ {
		s.chosen[id] = ib.InvalidPort
	}
	// Stack the chunk in reverse so IDs pop in ascending order.
	for id := base + entrySlabChunk - 1; id > base; id-- {
		s.free = append(s.free, id)
	}
	return base
}

// release recycles an entry after its packet left the buffer, dropping
// the packet and adaptive references for GC.
func (s *entrySlab) release(id int32) {
	s.pkt[id] = nil
	s.readyAt[id] = 0
	s.escape[id] = 0
	s.adaptive[id] = nil
	s.chosen[id] = ib.InvalidPort
	s.credits[id] = 0
	s.sl[id] = 0
	s.flags[id] = 0
	s.escVL[id] = 0
	s.free = append(s.free, id)
}

// vlBuffer models the physical buffer of one (input port, VL) pair,
// logically divided per Figure 2: the first Split.CAdaptiveCap()
// credits form the adaptive queue, the rest the escape queue. It is a
// single FIFO with two service points:
//
//   - the buffer head (head of the adaptive queue), always servable;
//   - the escape head: the first packet whose storage starts inside
//     the escape region, servable independently (its own connection
//     to the internal crossbar).
//
// Departures shift later packets toward the head, which is exactly the
// escape→adaptive queue transition §4.4 describes (and §3 proves
// harmless for deadlock freedom).
//
// ids holds slab entry IDs in FIFO order; slab points at the owning
// switch's context slab (stamped by finishWiring, after sharding has
// fixed context ownership).
type vlBuffer struct {
	slab     *entrySlab
	split    core.CreditSplit
	ids      []int32
	occupied int // credits currently stored

	// Memoized escapeService result. The walk is a pure function of the
	// FIFO contents (per-entry credits and the adaptive bit are fixed at
	// arrival), so it only changes when ids does: push and removeAt mark
	// the cache dirty, and the saturated arbitration loop — which probes
	// the escape connection on every pass over an unchanged buffer —
	// pays the walk once instead of per probe. escIdx escCacheDirty
	// means recompute.
	escIdx int
	escID  int32

	// adaptiveQueues reports whether the switch splits this buffer at
	// all; plain deterministic switches expose only the buffer head.
	adaptiveQueues bool
}

// escCacheDirty marks the memoized escape-service point as stale; any
// valid result is either -1 (nothing to serve) or a FIFO index >= 0.
const escCacheDirty = -2

func newVLBuffer(split core.CreditSplit, adaptiveQueues bool) *vlBuffer {
	return &vlBuffer{split: split, adaptiveQueues: adaptiveQueues, escIdx: escCacheDirty}
}

// push appends an arriving packet. It panics if the packet does not
// fit: the upstream credit accounting must have prevented that, so an
// overflow is a flow-control bug, not a runtime condition.
func (b *vlBuffer) push(id int32) {
	c := int(b.slab.credits[id])
	if b.occupied+c > b.split.CMax {
		panic(fmt.Sprintf("fabric: VL buffer overflow: %d+%d > %d (flow control violated)",
			b.occupied, c, b.split.CMax))
	}
	b.ids = append(b.ids, id)
	b.occupied += c
	b.escIdx = escCacheDirty
}

// head returns the buffer-head service point's entry ID, or -1 when
// empty.
func (b *vlBuffer) head() int32 {
	if len(b.ids) == 0 {
		return -1
	}
	return b.ids[0]
}

// escapeService returns the entry the escape-queue crossbar connection
// serves and its index, or (-1, -1) when it has nothing to do (or the
// switch does not split buffers). Normally this is the escape head —
// the first packet stored past the adaptive region. §4.4's in-order
// pointer redirects the connection when a deterministic packet is
// still waiting in the adaptive region ahead of the escape head: that
// packet "must be forwarded before any other packet stored in the
// escape queue", so the connection serves it instead. Redirecting
// (rather than stalling) keeps the escape network's progress guarantee
// intact — a stalled escape connection would reintroduce the circular
// waits the escape queues exist to break.
func (b *vlBuffer) escapeService() (int, int32) {
	if b.escIdx != escCacheDirty {
		return b.escIdx, b.escID
	}
	b.escIdx, b.escID = b.escapeWalk()
	return b.escIdx, b.escID
}

// escapeWalk recomputes the escape-service point from the FIFO.
func (b *vlBuffer) escapeWalk() (int, int32) {
	if !b.adaptiveQueues {
		return -1, -1
	}
	offset := 0
	firstDet := -1
	adCap := b.split.CAdaptiveCap()
	credits, flags := b.slab.credits, b.slab.flags
	for i, id := range b.ids {
		if offset >= adCap {
			// id is the escape head.
			if firstDet >= 0 {
				return firstDet, b.ids[firstDet]
			}
			return i, id
		}
		if firstDet < 0 && flags[id]&entryPktAdaptive == 0 {
			firstDet = i
		}
		offset += int(credits[id])
	}
	return -1, -1
}

// removeAt dequeues the entry at index i (0 = buffer head; the escape
// head may be interior — RAM-based VL buffers allow that, §4.4).
func (b *vlBuffer) removeAt(i int) int32 {
	id := b.ids[i]
	b.ids = append(b.ids[:i], b.ids[i+1:]...)
	b.occupied -= int(b.slab.credits[id])
	b.escIdx = escCacheDirty
	return id
}

// len returns the number of buffered packets.
func (b *vlBuffer) len() int { return len(b.ids) }

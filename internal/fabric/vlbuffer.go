package fabric

import (
	"fmt"

	"ibasim/internal/core"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// bufEntry is one packet held in a VL input buffer together with its
// routing state.
type bufEntry struct {
	pkt     *ib.Packet
	readyAt sim.Time // head arrival + routing delay; earliest service

	// Routing options returned by the forwarding-table access.
	escape   ib.PortID
	adaptive []ib.PortID

	// chosen is the fixed output selected at routing time when the
	// switch uses immediate selection (§4.3); InvalidPort when the
	// decision is deferred to arbitration.
	chosen ib.PortID
	// chosenIsAdaptive records which credit rule the fixed choice
	// must satisfy.
	chosenIsAdaptive bool
}

// vlBuffer models the physical buffer of one (input port, VL) pair,
// logically divided per Figure 2: the first Split.CAdaptiveCap()
// credits form the adaptive queue, the rest the escape queue. It is a
// single FIFO with two service points:
//
//   - the buffer head (head of the adaptive queue), always servable;
//   - the escape head: the first packet whose storage starts inside
//     the escape region, servable independently (its own connection
//     to the internal crossbar).
//
// Departures shift later packets toward the head, which is exactly the
// escape→adaptive queue transition §4.4 describes (and §3 proves
// harmless for deadlock freedom).
type vlBuffer struct {
	split    core.CreditSplit
	entries  []*bufEntry
	occupied int // credits currently stored

	// adaptiveQueues reports whether the switch splits this buffer at
	// all; plain deterministic switches expose only the buffer head.
	adaptiveQueues bool
}

func newVLBuffer(split core.CreditSplit, adaptiveQueues bool) *vlBuffer {
	return &vlBuffer{split: split, adaptiveQueues: adaptiveQueues}
}

// push appends an arriving packet. It panics if the packet does not
// fit: the upstream credit accounting must have prevented that, so an
// overflow is a flow-control bug, not a runtime condition.
func (b *vlBuffer) push(e *bufEntry) {
	c := e.pkt.Credits()
	if b.occupied+c > b.split.CMax {
		panic(fmt.Sprintf("fabric: VL buffer overflow: %d+%d > %d (flow control violated)",
			b.occupied, c, b.split.CMax))
	}
	b.entries = append(b.entries, e)
	b.occupied += c
}

// head returns the buffer-head service point, or nil when empty.
func (b *vlBuffer) head() *bufEntry {
	if len(b.entries) == 0 {
		return nil
	}
	return b.entries[0]
}

// escapeService returns the entry the escape-queue crossbar connection
// serves and its index, or (-1, nil) when it has nothing to do (or the
// switch does not split buffers). Normally this is the escape head —
// the first packet stored past the adaptive region. §4.4's in-order
// pointer redirects the connection when a deterministic packet is
// still waiting in the adaptive region ahead of the escape head: that
// packet "must be forwarded before any other packet stored in the
// escape queue", so the connection serves it instead. Redirecting
// (rather than stalling) keeps the escape network's progress guarantee
// intact — a stalled escape connection would reintroduce the circular
// waits the escape queues exist to break.
func (b *vlBuffer) escapeService() (int, *bufEntry) {
	if !b.adaptiveQueues {
		return -1, nil
	}
	offset := 0
	firstDet := -1
	for i, e := range b.entries {
		if offset >= b.split.CAdaptiveCap() {
			// e is the escape head.
			if firstDet >= 0 {
				return firstDet, b.entries[firstDet]
			}
			return i, e
		}
		if firstDet < 0 && !e.pkt.Adaptive {
			firstDet = i
		}
		offset += e.pkt.Credits()
	}
	return -1, nil
}

// removeAt dequeues the entry at index i (0 = buffer head; the escape
// head may be interior — RAM-based VL buffers allow that, §4.4).
func (b *vlBuffer) removeAt(i int) *bufEntry {
	e := b.entries[i]
	b.entries = append(b.entries[:i], b.entries[i+1:]...)
	b.occupied -= e.pkt.Credits()
	return e
}

// len returns the number of buffered packets.
func (b *vlBuffer) len() int { return len(b.entries) }

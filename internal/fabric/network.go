package fabric

import (
	"fmt"

	"ibasim/internal/core"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
	"ibasim/internal/topology"
)

// Network assembles switches, hosts and links over a topology and
// drives them with one discrete-event engine. Forwarding tables start
// unprogrammed; the subnet manager (internal/subnet) fills them before
// traffic flows, mirroring IBA initialization.
type Network struct {
	Engine *sim.Engine
	Topo   *topology.Topology
	Plan   *ib.AddressPlan
	Cfg    Config

	Switches []*Switch
	Hosts    []*Host

	rng *sim.RNG

	// ctl is the control (and, when Cfg.Shards <= 1, the only)
	// execution context; its engine is the exported Engine. The rest
	// exists only in sharded mode (see shard.go): the partition map,
	// the global-min lookahead summary, the per-channel delay-bound
	// matrix chanDist[src][dst], the padded barrier time board, the
	// relaxed-exactness lag, the recycled outbox backing arrays and
	// the mail-observer test seam.
	ctl       *execCtx
	shards    []*execCtx
	partition []int
	lookahead sim.Time
	chanDist  [][]sim.Time
	board     *sim.TimeBoard
	lag       sim.Time
	boxFree   [][]mail
	onMail    func(src, dst int, at, schedAt sim.Time)

	// OnCreated fires when a packet enters a source queue; OnDelivered
	// when it reaches its destination CA; OnHop when a switch starts
	// forwarding a packet (switch ID, output port, whether an adaptive
	// routing option was used). Metrics collectors and tracers attach
	// here; attachers must chain any callback already present.
	OnCreated   func(*ib.Packet)
	OnDelivered func(*ib.Packet)
	OnHop       func(p *ib.Packet, sw int, out ib.PortID, adaptive bool)

	// OnDropped fires when the fabric discards a packet (unroutable
	// DLID, dead port/switch, or source send timeout). Same chaining
	// contract as the other hooks. A dropped packet may still be
	// re-injected by its source under Cfg.Retry; OnDropped fires once
	// per drop, not once per loss.
	OnDropped func(p *ib.Packet, reason DropReason)

	// Faults accumulates the degraded-mode counters of the sequential
	// and control contexts. All zero on a fault-free run. Sharded runs
	// keep per-shard counters too; FaultTotals sums everything.
	Faults FaultStats

	// tamper holds the mutation-suite fault model (see tamper.go). Zero
	// in every real run; the forwarding path reads it with plain bool
	// tests so honest runs pay nothing.
	tamper Tamper

	// fuse is the hop-fusion runtime switch the kick dispatch reads:
	// Cfg.Fuse, forced off while an observer demands per-hop events
	// (defused) or a tamper model is installed. inMerged marks the
	// sharded coordinator's merged control phase, where same-timestamp
	// events on other engines make the single-queue quiescence test
	// unsound (see pool.go and runMergedAt).
	fuse     bool
	defused  bool
	inMerged bool

	// wake is the arbiter runtime switch: Cfg.Arb resolves to the
	// wake-list arbiter, forced to the scan oracle while a tamper
	// model is installed or a Tamper* mutation hook has fired
	// (mutated, sticky) — those mutate forwarding state behind the
	// wait lists' back.
	wake    bool
	mutated bool
}

// applyFuse recomputes the runtime fusion switch from its inputs.
func (n *Network) applyFuse() {
	n.fuse = n.Cfg.Fuse && !n.defused && n.tamper == (Tamper{})
}

// applyArb recomputes the arbiter runtime switch. Re-arming the wake
// arbiter mid-run (a tamper model removed) wakes every point: the
// wake hooks are gated off while scanning — the scan oracle must not
// pay the bookkeeping it never reads — so the wholesale wake is what
// makes a scan->wake transition sound (every point is re-probed, and
// the failing ones rebuild their wait-list registrations).
func (n *Network) applyArb() {
	was := n.wake
	n.wake = n.Cfg.arbWake() && n.tamper == (Tamper{}) && !n.mutated
	if n.wake && !was {
		for _, sw := range n.Switches {
			sw.wakeAllPoints()
		}
	}
}

// forceScanArb permanently falls back to the scan arbiter: a Tamper*
// mutation hook changed credits/occupancy/tables without firing the
// wakes the wait lists rely on. Sticky, like Defuse.
func (n *Network) forceScanArb() {
	n.mutated = true
	n.wake = false
}

// ArbWake reports whether the wake-list arbiter is currently armed.
func (n *Network) ArbWake() bool { return n.wake }

// ArbParks sums, over every switch, the wait-list registrations the
// wake arbiter made. Tests use it to prove the wake path engaged (or
// was forced off).
func (n *Network) ArbParks() uint64 {
	var p uint64
	for _, sw := range n.Switches {
		p += sw.parks
	}
	return p
}

// Defuse permanently disables hop fusion on this network, restoring
// the one-event-per-phase hot path. Observers that assert on the exact
// per-hop event sequence (the packet tracer) call it when they attach;
// it is sticky for the network's lifetime.
func (n *Network) Defuse() {
	n.defused = true
	n.fuse = false
}

// Fused reports whether the hop-fusion fast path is currently armed.
func (n *Network) Fused() bool { return n.fuse }

// FusedKicks sums, over every execution context, the kick events whose
// delay-0 allocation/injection pass ran inline instead of being
// scheduled. Tests use it to prove the fast path engaged (or was
// forced off).
func (n *Network) FusedKicks() uint64 {
	k := n.ctl.fusedKicks
	for _, s := range n.shards {
		k += s.fusedKicks
	}
	return k
}

// DropReason classifies why the fabric discarded a packet.
type DropReason uint8

const (
	// DropUnroutable: the forwarding-table access found no programmed
	// port for the packet's DLID (mid-reconfiguration transient).
	DropUnroutable DropReason = iota
	// DropDeadPort: the packet sat in (or arrived at) a failed switch.
	DropDeadPort
	// DropTimeout: the source queue head waited past Retry.SendTimeout.
	DropTimeout

	// NumDropReasons sizes per-reason counter arrays.
	NumDropReasons
)

func (r DropReason) String() string {
	switch r {
	case DropUnroutable:
		return "unroutable"
	case DropDeadPort:
		return "dead-port"
	case DropTimeout:
		return "send-timeout"
	}
	return fmt.Sprintf("drop-reason(%d)", uint8(r))
}

// FaultStats are the degraded-mode counters of one network.
type FaultStats struct {
	// DroppedUnroutable, DroppedOnDeadPort and DroppedTimeout count
	// packet drops by reason; Dropped() is their sum.
	DroppedUnroutable uint64
	DroppedOnDeadPort uint64
	DroppedTimeout    uint64

	// Retries counts re-injections of dropped packets at their source;
	// Lost counts packets discarded for good (retry budget exhausted
	// or retries disabled). MaxAttempts is the highest per-packet
	// re-injection count any single packet reached — the flaky-run
	// diagnostic campaigns surface (a run whose MaxAttempts brushes
	// the retry budget was close to losing traffic).
	Retries     uint64
	Lost        uint64
	MaxAttempts int
}

// Dropped returns the total number of drop events.
func (f FaultStats) Dropped() uint64 {
	return f.DroppedUnroutable + f.DroppedOnDeadPort + f.DroppedTimeout
}

// Moved returns the total number of packet movements (injections,
// hops, deliveries, drops) so far — a monotone progress clock for
// deadlock detection. Sums every execution context.
func (n *Network) Moved() uint64 {
	m := n.ctl.moved
	for _, s := range n.shards {
		m += s.moved
	}
	return m
}

// dropPacket accounts one discarded packet and, when the retry policy
// allows, schedules its re-injection at the source with exponential
// backoff.
func (c *execCtx) dropPacket(pkt *ib.Packet, reason DropReason) {
	switch reason {
	case DropUnroutable:
		c.faults.DroppedUnroutable++
	case DropDeadPort:
		c.faults.DroppedOnDeadPort++
	case DropTimeout:
		c.faults.DroppedTimeout++
	}
	c.moved++
	if c.onDropped != nil {
		c.onDropped(pkt, reason)
	} else if c.net.OnDropped != nil {
		c.net.OnDropped(pkt, reason)
	}
	rp := c.net.Cfg.Retry
	if rp.MaxRetries > 0 && pkt.Attempts < rp.MaxRetries {
		pkt.Attempts++
		c.faults.Retries++
		if pkt.Attempts > c.faults.MaxAttempts {
			c.faults.MaxAttempts = pkt.Attempts
		}
		c.scheduleRequeue(rp.backoff(pkt.Attempts), c.net.Hosts[pkt.Src], pkt)
		return
	}
	c.faults.Lost++
}

// NewNetwork wires a subnet over the topology. The LMC is chosen by
// the caller through plan (LMC 0 = no adaptive addressing). Seed
// feeds the selection/traffic RNG, not the topology.
func NewNetwork(topo *topology.Topology, plan *ib.AddressPlan, cfg Config, seed uint64) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if plan.NumHosts != topo.NumHosts() {
		return nil, fmt.Errorf("fabric: plan has %d hosts, topology %d", plan.NumHosts, topo.NumHosts())
	}
	// Hop events land at most routing + propagation + MTU
	// serialization time ahead; sizing the scheduler's wheel to a
	// generous multiple of that horizon keeps steady-state forwarding
	// traffic out of the overflow heap, leaving it the exponential
	// inter-arrival tail. Explicit cfg.EngineOpts apply after the hint
	// and override it. (A smaller wheel with hop-scale buckets was
	// tried and loses ~20% on saturated sweeps: wide buckets push the
	// sort and cursor-bucket insert costs past what the shorter
	// empty-slot walk saves.)
	hopHorizon := ib.RoutingDelay + ib.PropagationDelay + ib.SerializationTime(cfg.MTU)
	engineOpts := make([]sim.EngineOption, 0, len(cfg.EngineOpts)+1)
	engineOpts = append(engineOpts, sim.WithSpanHint(16*hopHorizon))
	engineOpts = append(engineOpts, cfg.EngineOpts...)
	net := &Network{
		Engine: sim.NewEngine(engineOpts...),
		Topo:   topo,
		Plan:   plan,
		Cfg:    cfg,
		rng:    sim.NewRNG(seed ^ 0x4641425249435F), // package tag
	}
	net.ctl = &execCtx{net: net, id: -1, eng: net.Engine, faults: &net.Faults}
	net.applyFuse()
	net.applyArb()

	detOnly := make(map[int]bool, len(cfg.DeterministicOnly))
	for _, s := range cfg.DeterministicOnly {
		if s < 0 || s >= topo.NumSwitches {
			return nil, fmt.Errorf("fabric: DeterministicOnly switch %d out of range", s)
		}
		detOnly[s] = true
	}
	numPorts := topo.SwitchPorts
	for s := 0; s < topo.NumSwitches; s++ {
		table, err := core.NewAdaptiveTable(plan.MaxLID(), plan.LMC)
		if err != nil {
			return nil, err
		}
		sl2vl, err := ib.NewSLtoVLTable(numPorts, ib.MaxVLs, cfg.NumVLs)
		if err != nil {
			return nil, err
		}
		net.Switches = append(net.Switches, &Switch{
			net:      net,
			ctx:      net.ctl,
			id:       s,
			enhanced: cfg.AdaptiveSwitches && !detOnly[s],
			table:    table,
			sl2vl:    sl2vl,
			in:       make([]*inPort, numPorts),
			out:      make([]*outPort, numPorts),
		})
	}
	for h := 0; h < topo.NumHosts(); h++ {
		net.Hosts = append(net.Hosts, &Host{net: net, ctx: net.ctl, id: h, nextSeq: make([]uint64, topo.NumHosts())})
	}

	// Wire host links: host h occupies its switch's host-port slot
	// (ports 0..HostCount-1 face hosts; uniform attachment reduces to
	// port h mod HostsPerSwitch).
	for h, host := range net.Hosts {
		sw := net.Switches[topo.HostSwitch(h)]
		port := ib.PortID(topo.HostPortIndex(h))
		host.out = &outPort{
			owner:      host,
			id:         0,
			peerSwitch: sw,
			peerPort:   port,
			credits:    net.fullCredits(),
		}
		sw.in[port] = &inPort{
			id:       port,
			vls:      net.newVLBuffers(sw.enhanced),
			upstream: host.out,
		}
		sw.out[port] = &outPort{
			owner:    sw,
			ownerSw:  sw,
			id:       port,
			peerHost: host,
			credits:  net.fullCredits(),
		}
	}

	// Wire inter-switch links: switch s uses the ports after its host
	// ports, one per neighbour in ascending neighbour order.
	portOf := func(s, neighbor int) (ib.PortID, error) {
		for i, n := range topo.Neighbors(s) {
			if n == neighbor {
				return ib.PortID(topo.InterSwitchPortBase(s) + i), nil
			}
		}
		return 0, fmt.Errorf("fabric: %d not adjacent to %d", neighbor, s)
	}
	for _, l := range topo.Links {
		pa, err := portOf(l.A, l.B)
		if err != nil {
			return nil, err
		}
		pb, err := portOf(l.B, l.A)
		if err != nil {
			return nil, err
		}
		if int(pa) >= numPorts || int(pb) >= numPorts {
			return nil, fmt.Errorf("fabric: link %+v exceeds %d ports", l, numPorts)
		}
		a, b := net.Switches[l.A], net.Switches[l.B]
		net.wire(a, pa, b, pb)
		net.wire(b, pb, a, pa)
	}
	// Partition into shards (no-op for Cfg.Shards <= 1), then stamp
	// every output port with its owner's execution context so credit
	// returns route to the right engine.
	if err := net.buildShards(engineOpts); err != nil {
		return nil, err
	}
	for _, sw := range net.Switches {
		for _, o := range sw.out {
			if o != nil {
				o.ctx = sw.ctx
			}
		}
	}
	for _, h := range net.Hosts {
		h.out.ctx = h.ctx
	}
	// Wiring is final: freeze the per-node hot-path state (cached
	// service points, bound event closures).
	for _, sw := range net.Switches {
		sw.finishWiring()
	}
	net.initWakeState()
	for _, h := range net.Hosts {
		h.finishWiring()
	}
	return net, nil
}

// wire creates the directed channel from (a, pa) to (b, pb).
func (n *Network) wire(a *Switch, pa ib.PortID, b *Switch, pb ib.PortID) {
	o := &outPort{
		owner:      a,
		ownerSw:    a,
		id:         pa,
		peerSwitch: b,
		peerPort:   pb,
		credits:    n.fullCredits(),
	}
	a.out[pa] = o
	b.in[pb] = &inPort{
		id:       pb,
		vls:      n.newVLBuffers(b.enhanced),
		upstream: o,
	}
}

func (n *Network) fullCredits() []int {
	c := make([]int, n.Cfg.NumVLs)
	for i := range c {
		c[i] = n.Cfg.BufferCredits
	}
	return c
}

// newVLBuffers builds the per-VL input buffers of one switch port;
// enhanced switches split each buffer into adaptive and escape
// logical queues, stock switches keep a single queue.
func (n *Network) newVLBuffers(enhanced bool) []*vlBuffer {
	vls := make([]*vlBuffer, n.Cfg.NumVLs)
	for i := range vls {
		vls[i] = newVLBuffer(n.Cfg.Split, enhanced)
	}
	return vls
}

// NewPacket builds a packet from src to dst with the service mode
// encoded in the DLID per the address plan, stamped with the current
// simulated time. The caller injects it at Hosts[src]. In source
// multipath mode the adaptive flag is ignored and the DLID selects one
// of the alternative deterministic paths uniformly at random — the
// source-node path selection of the paper's introduction.
func (n *Network) NewPacket(src, dst, size int, adaptive bool) *ib.Packet {
	// Packet creation runs on the source host's context (the traffic
	// generator schedules injections on the host's engine). IDs are
	// strided by shard count so they stay globally unique; with one
	// context the numbering reduces to the sequential 1, 2, 3, ...
	c := n.Hosts[src].ctx
	c.nextID++
	id := c.nextID
	if stride := len(n.shards); stride > 1 {
		id = id*uint64(stride) + uint64(c.id)
	}
	dlid := n.Plan.DLIDFor(dst, adaptive)
	if k := n.Cfg.SourceMultipath; k > 1 {
		adaptive = false
		dlid = n.Plan.BaseLID(dst) + ib.LID(n.rng.Intn(k))
	}
	pkt := c.getPacket()
	*pkt = ib.Packet{
		ID:        id,
		Src:       src,
		Dst:       dst,
		SLID:      n.Plan.BaseLID(src),
		DLID:      dlid,
		Size:      size,
		Adaptive:  adaptive && n.Plan.LMC > 0,
		CreatedAt: c.eng.Now(),
	}
	return pkt
}

// PortToNeighbor returns switch s's output port wired to the adjacent
// switch n (ports follow ascending neighbour order after the host
// ports).
func (n *Network) PortToNeighbor(s, neighbor int) (ib.PortID, error) {
	for i, m := range n.Topo.Neighbors(s) {
		if m == neighbor {
			return ib.PortID(n.Topo.InterSwitchPortBase(s) + i), nil
		}
	}
	return 0, fmt.Errorf("fabric: switch %d not adjacent to %d", neighbor, s)
}

// HostPort returns the port of the host's switch that faces the host.
func (n *Network) HostPort(host int) ib.PortID {
	return ib.PortID(n.Topo.HostPortIndex(host))
}

// InFlight counts packets buffered in switches or source queues —
// zero once a finite workload has fully drained.
func (n *Network) InFlight() int {
	total := 0
	for _, sw := range n.Switches {
		total += sw.queuedPackets()
	}
	for _, h := range n.Hosts {
		total += h.QueueLen()
	}
	return total
}

// CreditsIntact verifies flow-control conservation: with no packet in
// flight, every output port must see the full credit count of its
// peer buffer. A mismatch means credits were lost or duplicated.
func (n *Network) CreditsIntact() error {
	check := func(o *outPort, owner string) error {
		if o == nil {
			return nil
		}
		for vl, c := range o.credits {
			if c != n.Cfg.BufferCredits {
				return fmt.Errorf("fabric: %s port %d vl %d has %d credits, want %d",
					owner, o.id, vl, c, n.Cfg.BufferCredits)
			}
		}
		return nil
	}
	for _, sw := range n.Switches {
		for _, o := range sw.out {
			if err := check(o, fmt.Sprintf("switch %d", sw.id)); err != nil {
				return err
			}
		}
	}
	for _, h := range n.Hosts {
		if err := check(h.out, fmt.Sprintf("host %d", h.id)); err != nil {
			return err
		}
	}
	return nil
}

// Drain runs the simulation until every event has fired, then
// verifies nothing is left in any buffer. It is the standard way tests
// finish a finite workload.
func (n *Network) Drain() error {
	n.Run(sim.Forever)
	if f := n.InFlight(); f != 0 {
		return fmt.Errorf("fabric: %d packets stuck after drain (deadlock?)", f)
	}
	return nil
}

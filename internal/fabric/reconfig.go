package fabric

import (
	"fmt"

	"ibasim/internal/ib"
)

// SetLinkDown marks the inter-switch cable between a and b as failed
// in both directions: neither output port will start another
// transmission. Packets already serialized or in flight complete
// normally (planned removal semantics: the cable is unplugged after
// the current packet drains). The forwarding tables still reference
// the dead ports until the subnet manager reconfigures the network —
// call subnet.Reconfigure promptly afterwards.
func (n *Network) SetLinkDown(a, b int) error {
	pa, err := n.PortToNeighbor(a, b)
	if err != nil {
		return err
	}
	pb, err := n.PortToNeighbor(b, a)
	if err != nil {
		return err
	}
	n.Switches[a].out[pa].down = true
	n.Switches[b].out[pb].down = true
	return nil
}

// LinkIsDown reports whether the cable between a and b has failed.
func (n *Network) LinkIsDown(a, b int) bool {
	pa, err := n.PortToNeighbor(a, b)
	if err != nil {
		return false
	}
	return n.Switches[a].out[pa].down
}

// Reroute re-runs the forwarding-table access for every packet
// buffered in the switch, replacing routing decisions that may
// reference ports whose cables have failed. The subnet manager calls
// this on every switch after reprogramming tables; without it,
// already-routed packets would wait forever on dead ports.
func (sw *Switch) Reroute() {
	for _, in := range sw.in {
		if in == nil {
			continue
		}
		for _, buf := range in.vls {
			for _, e := range buf.entries {
				if sw.enhanced {
					escape, adaptive, err := sw.table.Lookup(e.pkt.DLID)
					if err != nil {
						panic(fmt.Sprintf("fabric: reroute switch %d: %v", sw.id, err))
					}
					e.escape, e.adaptive = escape, adaptive
					if e.chosen != ib.InvalidPort {
						// Immediate-selection decisions are remade.
						e.chosen = ib.InvalidPort
						sw.selectImmediate(e)
					}
				} else {
					p := sw.table.Get(e.pkt.DLID)
					if p == ib.InvalidPort {
						panic(fmt.Sprintf("fabric: reroute switch %d: DLID %d unprogrammed", sw.id, e.pkt.DLID))
					}
					e.escape = p
				}
			}
		}
	}
	sw.kick()
}

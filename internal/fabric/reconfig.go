package fabric

import (
	"fmt"

	"ibasim/internal/ib"
	"ibasim/internal/topology"
)

func errSwitchRange(s, n int) error {
	return fmt.Errorf("fabric: switch %d out of range [0,%d)", s, n)
}

// SetLinkDown marks the inter-switch cable between a and b as failed
// in both directions: neither output port will start another
// transmission. Packets already serialized or in flight complete
// normally (planned removal semantics: the cable is unplugged after
// the current packet drains). The forwarding tables still reference
// the dead ports until the subnet manager reconfigures the network —
// call subnet.Reconfigure (or ReconfigureStaged) afterwards.
//
// Failing an already-failed link is an idempotent no-op.
func (n *Network) SetLinkDown(a, b int) error {
	pa, err := n.PortToNeighbor(a, b)
	if err != nil {
		return err
	}
	pb, err := n.PortToNeighbor(b, a)
	if err != nil {
		return err
	}
	n.Switches[a].out[pa].down = true
	n.Switches[b].out[pb].down = true
	return nil
}

// SetLinkUp repairs the cable between a and b: both directions may
// transmit again and any traffic parked on the ports resumes. The
// forwarding tables keep routing around the link until the subnet
// manager reconfigures. Repairing a healthy link is an idempotent
// no-op.
func (n *Network) SetLinkUp(a, b int) error {
	pa, err := n.PortToNeighbor(a, b)
	if err != nil {
		return err
	}
	pb, err := n.PortToNeighbor(b, a)
	if err != nil {
		return err
	}
	n.Switches[a].out[pa].down = false
	n.Switches[b].out[pb].down = false
	// A repaired link can unblock any point (down ports never sweep
	// free): wake wholesale before the allocation passes run.
	n.Switches[a].wakeAllPoints()
	n.Switches[b].wakeAllPoints()
	n.Switches[a].kick()
	n.Switches[b].kick()
	return nil
}

// LinkIsDown reports whether the cable between a and b has failed.
// It is symmetric: LinkIsDown(a, b) == LinkIsDown(b, a), and false
// for non-adjacent pairs.
func (n *Network) LinkIsDown(a, b int) bool {
	pa, err := n.PortToNeighbor(a, b)
	if err != nil {
		return false
	}
	return n.Switches[a].out[pa].down
}

// DownLinks returns the topology links whose cables are currently
// failed — the failure set a subnet-manager sweep would discover now.
func (n *Network) DownLinks() []topology.Link {
	var down []topology.Link
	for _, l := range n.Topo.Links {
		if n.LinkIsDown(l.A, l.B) {
			down = append(down, l)
		}
	}
	return down
}

// SetSwitchDown fails switch s whole: every cable touching it (host
// and inter-switch) goes down in both directions, buffered packets
// are discarded with their credits returned upstream (drain
// semantics — the RAM loses power, the flow-control state does not
// lie about it), and packets still on the wire toward s are dropped
// on arrival. Idempotent.
func (n *Network) SetSwitchDown(s int) error {
	sw, err := n.switchByID(s)
	if err != nil {
		return err
	}
	if sw.dead {
		return nil
	}
	sw.dead = true
	for _, o := range sw.out {
		if o == nil {
			continue
		}
		o.down = true
		if o.peerSwitch != nil {
			// The reverse direction: the neighbour's transmitter into s.
			o.peerSwitch.out[o.peerPort].down = true
		} else if o.peerHost != nil {
			o.peerHost.out.down = true
		}
	}
	// Drain: every buffered packet is lost; the upstream transmitters
	// get their credits back so conservation audits stay exact.
	slab := &sw.ctx.slab
	for _, in := range sw.in {
		if in == nil {
			continue
		}
		for vl, buf := range in.vls {
			for buf.len() > 0 {
				id := buf.removeAt(0)
				sw.occupancy--
				pkt := slab.pkt[id]
				sw.ctx.scheduleCreditReturn(ib.PropagationDelay, in.upstream, vl, pkt.Credits())
				sw.ctx.dropPacket(pkt, DropDeadPort)
				slab.release(id)
			}
		}
	}
	return nil
}

// SetSwitchUp repairs switch s: its buffers come back empty, and all
// its cables are re-enabled (a repaired switch returns with working
// ports; combine with explicit SetLinkDown if a specific cable should
// stay failed). The forwarding tables of the rest of the subnet still
// route around s until the subnet manager reconfigures. Idempotent.
func (n *Network) SetSwitchUp(s int) error {
	sw, err := n.switchByID(s)
	if err != nil {
		return err
	}
	if !sw.dead {
		return nil
	}
	sw.dead = false
	for _, o := range sw.out {
		if o == nil {
			continue
		}
		o.down = false
		if o.peerSwitch != nil {
			// The neighbour's transmitter toward s re-enabled: any of
			// its points may unblock.
			o.peerSwitch.out[o.peerPort].down = false
			o.peerSwitch.wakeAllPoints()
			o.peerSwitch.kick()
		} else if o.peerHost != nil {
			o.peerHost.out.down = false
			o.peerHost.kick()
		}
	}
	sw.wakeAllPoints()
	sw.kick()
	return nil
}

// SwitchIsDown reports whether switch s has failed whole.
func (n *Network) SwitchIsDown(s int) bool {
	sw, err := n.switchByID(s)
	return err == nil && sw.dead
}

func (n *Network) switchByID(s int) (*Switch, error) {
	if s < 0 || s >= len(n.Switches) {
		return nil, errSwitchRange(s, len(n.Switches))
	}
	return n.Switches[s], nil
}

// Reroute re-runs the forwarding-table access for every packet
// buffered in the switch, replacing routing decisions that may
// reference ports whose cables have failed. The subnet manager calls
// this on every switch after reprogramming tables; without it,
// already-routed packets would wait forever on dead ports.
//
// Entries whose DLID the reprogrammed table cannot route (possible in
// mid-reconfiguration transients) are dropped and counted instead of
// panicking; Reroute returns how many packets it discarded.
func (sw *Switch) Reroute() (dropped int) {
	slab := &sw.ctx.slab
	for _, in := range sw.in {
		if in == nil {
			continue
		}
		for vl, buf := range in.vls {
			for i := 0; i < buf.len(); {
				id := buf.ids[i]
				if sw.enhanced {
					escape, adaptive, err := sw.table.Lookup(slab.pkt[id].DLID)
					if err != nil {
						sw.dropBuffered(buf, i, in, vl)
						dropped++
						continue
					}
					slab.escape[id], slab.adaptive[id] = escape, adaptive
					if slab.chosen[id] != ib.InvalidPort {
						// Immediate-selection decisions are remade.
						slab.chosen[id] = ib.InvalidPort
						sw.selectImmediate(id)
					}
				} else {
					p := sw.table.Get(slab.pkt[id].DLID)
					if p == ib.InvalidPort {
						sw.dropBuffered(buf, i, in, vl)
						dropped++
						continue
					}
					slab.escape[id] = p
				}
				// The escape option may have moved: refresh its cached VL.
				slab.escVL[id] = int8(sw.outVL(int(slab.sl[id]), slab.escape[id]))
				i++
			}
		}
	}
	// Rewritten routing decisions invalidate every wait-list
	// registration made against the old ones: wake wholesale.
	sw.wakeAllPoints()
	sw.kick()
	return dropped
}

// dropBuffered discards the buffered entry at index i as unroutable,
// returning its credits upstream.
func (sw *Switch) dropBuffered(buf *vlBuffer, i int, in *inPort, vl int) {
	slab := &sw.ctx.slab
	id := buf.removeAt(i)
	sw.occupancy--
	pkt := slab.pkt[id]
	sw.ctx.scheduleCreditReturn(ib.PropagationDelay, in.upstream, vl, pkt.Credits())
	sw.ctx.dropPacket(pkt, DropUnroutable)
	slab.release(id)
}

package fabric

// In-package tests for the hop-fusion runtime switch: the fast path
// must engage by default, stand down whenever an observer or tamper
// model needs honest per-hop events, and hold the unfused oracle to
// the same zero-allocation bar as the fused path.

import (
	"testing"
)

// runHotpathTraffic pushes a packet through the two-switch line and
// drains the engine; the minimal traversal every fusion test reuses.
func runHotpathTraffic(net *Network) {
	sw := net.Switches[0]
	pkt := net.NewPacket(0, 7, 32, true)
	sw.receive(0, 0, pkt)
	net.Engine.RunUntilIdle()
}

// TestFusionDefaultEngages proves the fast path is live out of the
// box: a default-config network reports Fused and actually fuses kick
// events while forwarding.
func TestFusionDefaultEngages(t *testing.T) {
	net := hotpathNet(t)
	if !net.Fused() {
		t.Fatal("default-config network is not fused")
	}
	runHotpathTraffic(net)
	if k := net.FusedKicks(); k == 0 {
		t.Error("traffic on a fused network produced no fused kicks")
	}
}

// TestFusionConfigOff pins the -fuse=false escape hatch: with
// Cfg.Fuse cleared the network never fuses, whatever the traffic.
func TestFusionConfigOff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fuse = false
	net := hotpathNetCfg(t, cfg)
	if net.Fused() {
		t.Fatal("Fuse=false network reports fused")
	}
	runHotpathTraffic(net)
	if k := net.FusedKicks(); k != 0 {
		t.Errorf("unfused network recorded %d fused kicks, want 0", k)
	}
}

// TestTamperDefuses pins the mutation-suite interaction: installing
// any non-zero tamper model forces per-hop de-fusion (the tampered
// forwarding path must be observable event by event), and restoring
// the zero Tamper re-arms fusion.
func TestTamperDefuses(t *testing.T) {
	net := hotpathNet(t)
	net.SetTamper(Tamper{SkipAdaptiveRoomCheck: true})
	if net.Fused() {
		t.Fatal("tampered network still fused")
	}
	before := net.FusedKicks()
	runHotpathTraffic(net)
	if k := net.FusedKicks(); k != before {
		t.Errorf("tampered network fused %d kicks", k-before)
	}
	net.SetTamper(Tamper{})
	if !net.Fused() {
		t.Fatal("zero Tamper did not re-arm fusion")
	}
	before = net.FusedKicks()
	runHotpathTraffic(net)
	if k := net.FusedKicks(); k == before {
		t.Error("re-armed network fused no kicks")
	}
}

// TestDefuseIsSticky: Defuse (the tracer's attach hook) outlives a
// tamper reset — once an observer demanded per-hop events, fusion
// stays off for the network's lifetime.
func TestDefuseIsSticky(t *testing.T) {
	net := hotpathNet(t)
	net.Defuse()
	if net.Fused() {
		t.Fatal("defused network reports fused")
	}
	net.SetTamper(Tamper{SkipAdaptiveRoomCheck: true})
	net.SetTamper(Tamper{})
	if net.Fused() {
		t.Fatal("tamper reset re-armed a defused network")
	}
	runHotpathTraffic(net)
	if k := net.FusedKicks(); k != 0 {
		t.Errorf("defused network recorded %d fused kicks, want 0", k)
	}
}

// TestSwitchHopZeroAllocsUnfused holds the per-hop event oracle to the
// same allocation bar as the fused path: the -fuse=false engine is the
// differential baseline and must stay benchmark-comparable.
func TestSwitchHopZeroAllocsUnfused(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fuse = false
	net := hotpathNetCfg(t, cfg)
	sw := net.Switches[0]
	pkt := net.NewPacket(0, 7, 32, true)
	hop := func() {
		sw.receive(0, 0, pkt)
		net.Engine.RunUntilIdle()
	}
	for i := 0; i < 100; i++ {
		hop()
	}
	if allocs := testing.AllocsPerRun(200, hop); allocs != 0 {
		t.Fatalf("unfused steady-state forwarding allocates %v objects per traversal, want 0", allocs)
	}
}

// BenchmarkSwitchHopUnfused measures the per-hop event oracle on the
// BenchmarkSwitchHop traversal; the delta against BenchmarkSwitchHop
// is what hop fusion buys.
func BenchmarkSwitchHopUnfused(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Fuse = false
	net := hotpathNetCfg(b, cfg)
	sw := net.Switches[0]
	pkt := net.NewPacket(0, 7, 32, true)
	hop := func() {
		sw.receive(0, 0, pkt)
		net.Engine.RunUntilIdle()
	}
	for i := 0; i < 100; i++ {
		hop()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hop()
	}
}

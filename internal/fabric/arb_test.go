package fabric

// In-package tests for the wake-list arbiter runtime switch: wake mode
// must engage by default and actually park blocked service points, the
// -arb=scan oracle must never park, tamper models must force the scan
// arbiter (stickily for the raw mutation hooks), and the two arbiters
// must hold identical micro-state — rr cursor, buffer contents,
// credits, link busy times — through arbitrary congested traffic.

import (
	"math/rand"
	"testing"

	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// runArbCongestion pushes a contended burst through the two-switch
// line: all four hosts on switch 0 send to host 7, so every head
// competes for the single inter-switch link and the losers block.
func runArbCongestion(net *Network) {
	sw := net.Switches[0]
	for src := 0; src < 4; src++ {
		pkt := net.NewPacket(src, 7, 64, true)
		sw.receive(net.HostPort(src), 0, pkt)
	}
	net.Engine.RunUntilIdle()
}

// TestArbDefaultEngages proves the wake arbiter is live out of the
// box: a default-config network reports ArbWake and congested traffic
// actually parks blocked service points on the wait lists.
func TestArbDefaultEngages(t *testing.T) {
	net := hotpathNet(t)
	if !net.ArbWake() {
		t.Fatal("default-config network does not use the wake arbiter")
	}
	runArbCongestion(net)
	if net.ArbParks() == 0 {
		t.Error("congested traffic on a wake-arbiter network parked no service points")
	}
	if got := net.InFlight(); got != 0 {
		t.Errorf("%d packets in flight after drain, want 0", got)
	}
}

// TestArbConfigScan pins the -arb=scan escape hatch: the scanning
// oracle never touches the wait lists, whatever the traffic.
func TestArbConfigScan(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Arb = ArbScan
	net := hotpathNetCfg(t, cfg)
	if net.ArbWake() {
		t.Fatal("Arb=scan network reports the wake arbiter")
	}
	runArbCongestion(net)
	if p := net.ArbParks(); p != 0 {
		t.Errorf("scan-arbiter network recorded %d parks, want 0", p)
	}
}

// TestArbTamperForcesScan pins the mutation-suite interaction:
// installing any non-zero tamper model forces the scan arbiter (the
// tamper hooks mutate credits and occupancy without waking waiters),
// and restoring the zero Tamper re-arms wake mode.
func TestArbTamperForcesScan(t *testing.T) {
	net := hotpathNet(t)
	net.SetTamper(Tamper{SkipAdaptiveRoomCheck: true})
	if net.ArbWake() {
		t.Fatal("tampered network still runs the wake arbiter")
	}
	net.SetTamper(Tamper{})
	if !net.ArbWake() {
		t.Fatal("zero Tamper did not re-arm the wake arbiter")
	}
	runArbCongestion(net)
	if net.ArbParks() == 0 {
		t.Error("re-armed wake arbiter parked no service points")
	}
}

// TestArbMutationHookIsSticky: the raw state-mutation hooks
// (TamperCredits and friends) bypass SetTamper, so they latch the scan
// arbiter for the network's lifetime — a later tamper reset must not
// re-arm wake mode over silently skewed credits.
func TestArbMutationHookIsSticky(t *testing.T) {
	net := hotpathNet(t)
	if err := net.TamperCredits(0, 1, 0, -1); err != nil {
		t.Fatal(err)
	}
	if net.ArbWake() {
		t.Fatal("TamperCredits left the wake arbiter armed")
	}
	net.SetTamper(Tamper{})
	if net.ArbWake() {
		t.Fatal("tamper reset re-armed the wake arbiter after a raw credit mutation")
	}
	if err := net.TamperCredits(0, 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	runArbCongestion(net)
	if p := net.ArbParks(); p != 0 {
		t.Errorf("latched scan arbiter recorded %d parks, want 0", p)
	}
}

// TestArbEmptyFastPathRRParity pins the occupancy==0 short-circuit:
// on an idle switch both arbiters' only observable effect is the
// round-robin advance, and their cursors stay in lockstep.
func TestArbEmptyFastPathRRParity(t *testing.T) {
	wakeNet := hotpathNet(t)
	cfg := DefaultConfig()
	cfg.Arb = ArbScan
	scanNet := hotpathNetCfg(t, cfg)
	wa, sc := wakeNet.Switches[0], scanNet.Switches[0]
	n := len(wa.points)
	for k := 1; k <= 2*n+3; k++ {
		wa.arbitrate()
		sc.arbitrate()
		if wa.rr != sc.rr {
			t.Fatalf("after %d empty passes rr diverged: wake %d, scan %d", k, wa.rr, sc.rr)
		}
		if want := k % n; wa.rr != want {
			t.Fatalf("after %d empty passes rr=%d, want %d", k, wa.rr, want)
		}
	}
	if wakeNet.ArbParks() != 0 {
		t.Error("empty-switch fast path touched the wait lists")
	}
}

// requireArbStateEqual compares the complete arbitration-visible state
// of two networks: per-switch rr cursor and occupancy, every buffer's
// entry sequence, and every output port's credits and busy horizon.
func requireArbStateEqual(t *testing.T, wake, scan *Network, tag string) {
	t.Helper()
	for s := range wake.Switches {
		wa, sc := wake.Switches[s], scan.Switches[s]
		if wa.rr != sc.rr {
			t.Fatalf("%s: switch %d rr diverged: wake %d, scan %d", tag, s, wa.rr, sc.rr)
		}
		if wa.occupancy != sc.occupancy {
			t.Fatalf("%s: switch %d occupancy diverged: wake %d, scan %d", tag, s, wa.occupancy, sc.occupancy)
		}
		for j := range wa.bufs {
			wb, sb := wa.bufs[j], sc.bufs[j]
			if len(wb.ids) != len(sb.ids) {
				t.Fatalf("%s: switch %d point %d holds %d entries under wake, %d under scan", tag, s, j, len(wb.ids), len(sb.ids))
			}
			for k := range wb.ids {
				if wb.ids[k] != sb.ids[k] {
					t.Fatalf("%s: switch %d point %d entry %d diverged: wake id %d, scan id %d", tag, s, j, k, wb.ids[k], sb.ids[k])
				}
			}
		}
		for p := range wa.out {
			wo, so := wa.out[p], sc.out[p]
			if wo == nil {
				continue
			}
			if wo.busyUntil != so.busyUntil {
				t.Fatalf("%s: switch %d port %d busyUntil diverged: wake %d, scan %d", tag, s, p, wo.busyUntil, so.busyUntil)
			}
			for vl := range wo.credits {
				if wo.credits[vl] != so.credits[vl] {
					t.Fatalf("%s: switch %d port %d vl %d credits diverged: wake %d, scan %d", tag, s, p, vl, wo.credits[vl], so.credits[vl])
				}
			}
		}
	}
}

// TestArbLockstepParity is the round-robin parity property test: a
// seeded random admission schedule — bursty enough to mix served and
// failed probes in single arbitrate passes — is scheduled identically
// on a wake-arbiter and a scan-arbiter network, both engines step
// event by event in lockstep, and the full arbitration state must
// match at every checkpoint. Any missed wake, spurious serve or rr
// drift diverges the state within a few events of the fault.
func TestArbLockstepParity(t *testing.T) {
	wakeNet := hotpathNet(t)
	cfg := DefaultConfig()
	cfg.Arb = ArbScan
	scanNet := hotpathNetCfg(t, cfg)
	if !wakeNet.ArbWake() || scanNet.ArbWake() {
		t.Fatal("arbiter modes not as configured")
	}

	rng := rand.New(rand.NewSource(42))
	const bursts = 40
	at := int64(0)
	for i := 0; i < bursts; i++ {
		at += int64(rng.Intn(4000))
		burst := 1 + rng.Intn(6)
		for k := 0; k < burst; k++ {
			src := rng.Intn(8)
			dst := rng.Intn(8)
			if dst == src {
				dst = (dst + 1) % 8
			}
			size := 32 + rng.Intn(192)
			adaptive := rng.Intn(4) > 0
			inject := func(net *Network) func() {
				return func() { net.Hosts[src].Inject(net.NewPacket(src, dst, size, adaptive)) }
			}
			wakeNet.Engine.At(sim.Time(at), inject(wakeNet))
			scanNet.Engine.At(sim.Time(at), inject(scanNet))
		}
	}

	steps := 0
	for {
		wp := wakeNet.Engine.Step()
		sp := scanNet.Engine.Step()
		if wp != sp {
			t.Fatalf("engines diverged after %d steps: wake pending=%v, scan pending=%v", steps, wp, sp)
		}
		if !wp {
			break
		}
		steps++
		if steps%50 == 0 {
			requireArbStateEqual(t, wakeNet, scanNet, "mid-run")
		}
	}
	requireArbStateEqual(t, wakeNet, scanNet, "drained")
	if wakeNet.InFlight() != 0 || scanNet.InFlight() != 0 {
		t.Fatalf("packets still in flight after drain: wake %d, scan %d", wakeNet.InFlight(), scanNet.InFlight())
	}
	if wakeNet.ArbParks() == 0 {
		t.Error("parity traffic parked no service points; the test exercised nothing")
	}
	if scanNet.ArbParks() != 0 {
		t.Error("scan-arbiter network touched the wait lists")
	}
}

// TestSwitchHopZeroAllocsScanArb holds the scanning oracle to the
// zero-alloc bar: it is the differential baseline for every arbiter
// benchmark and must stay comparable.
func TestSwitchHopZeroAllocsScanArb(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Arb = ArbScan
	net := hotpathNetCfg(t, cfg)
	sw := net.Switches[0]
	pkt := net.NewPacket(0, 7, 32, true)
	hop := func() {
		sw.receive(0, 0, pkt)
		net.Engine.RunUntilIdle()
	}
	for i := 0; i < 100; i++ {
		hop()
	}
	if allocs := testing.AllocsPerRun(200, hop); allocs != 0 {
		t.Fatalf("scan-arbiter steady-state forwarding allocates %v objects per traversal, want 0", allocs)
	}
}

// TestArbWakeZeroAllocsCongested is the wake-arbiter alloc gate on the
// path that actually exercises the wait lists: a contended burst that
// parks and wakes service points every traversal. All wait-list
// storage is preallocated at wiring time, so steady state must not
// allocate.
func TestArbWakeZeroAllocsCongested(t *testing.T) {
	net := hotpathNet(t)
	sw := net.Switches[0]
	pkts := make([]*ib.Packet, 4)
	for i := range pkts {
		pkts[i] = net.NewPacket(i, 7, 64, true)
	}
	burst := func() {
		for i, pkt := range pkts {
			sw.receive(net.HostPort(i), 0, pkt)
		}
		net.Engine.RunUntilIdle()
	}
	for i := 0; i < 100; i++ {
		burst()
	}
	before := net.ArbParks()
	if allocs := testing.AllocsPerRun(200, burst); allocs != 0 {
		t.Fatalf("congested wake-arbiter steady state allocates %v objects per burst, want 0", allocs)
	}
	if net.ArbParks() == before {
		t.Error("congested bursts parked no service points; the gate exercised nothing")
	}
}

// BenchmarkSwitchHopScanArb measures the scanning arbiter on the
// BenchmarkSwitchHop traversal; the delta against BenchmarkSwitchHop
// is what the wake lists buy on an uncongested hop.
func BenchmarkSwitchHopScanArb(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Arb = ArbScan
	net := hotpathNetCfg(b, cfg)
	sw := net.Switches[0]
	pkt := net.NewPacket(0, 7, 32, true)
	hop := func() {
		sw.receive(0, 0, pkt)
		net.Engine.RunUntilIdle()
	}
	for i := 0; i < 100; i++ {
		hop()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hop()
	}
}

// BenchmarkArbCongested measures a contended 4-packet burst — every
// head fighting for one inter-switch link — under each arbiter. This
// is the shape the wake lists exist for: the scan re-probes every
// blocked head on every kick, the wake arbiter probes each head once
// per condition change.
func BenchmarkArbCongested(b *testing.B) {
	for _, mode := range []string{ArbWake, ArbScan} {
		b.Run(mode, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Arb = mode
			net := hotpathNetCfg(b, cfg)
			sw := net.Switches[0]
			pkts := make([]*ib.Packet, 4)
			for i := range pkts {
				pkts[i] = net.NewPacket(i, 7, 64, true)
			}
			burst := func() {
				for i, pkt := range pkts {
					sw.receive(net.HostPort(i), 0, pkt)
				}
				net.Engine.RunUntilIdle()
			}
			for i := 0; i < 100; i++ {
				burst()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				burst()
			}
		})
	}
}

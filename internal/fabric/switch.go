package fabric

import (
	"fmt"

	"ibasim/internal/core"
	"ibasim/internal/ib"
	"ibasim/internal/prof"
	"ibasim/internal/sim"
)

// Switch is one IBA switch. Host-facing ports are numbered
// 0..HostsPerSwitch-1; inter-switch ports follow in neighbour order.
// Packets are routed on (head) arrival by a forwarding-table access,
// become servable RoutingDelay later, and leave through a crossbar
// allocation pass (arbitrate) that honours the credit rules of §4.4.
type Switch struct {
	net *Network
	ctx *execCtx // execution context (shard) owning this switch
	id  int

	// enhanced marks a switch with the paper's extensions; stock
	// switches route by exact-DLID linear lookup and keep single
	// queues per VL (§4.2 allows mixing both kinds in one subnet).
	enhanced bool

	// dead marks a whole-switch failure: arriving packets are dropped
	// and every port stays silent until SetSwitchUp.
	dead bool

	// escapeOnly restricts forwarding to the escape (up*/down*) option
	// while the switch's table is stale during a staged
	// reconfiguration — adaptive moves computed against the old
	// topology are not trusted until the SM reprograms this switch.
	escapeOnly bool

	table *core.AdaptiveTable
	sl2vl *ib.SLtoVLTable

	in  []*inPort  // indexed by port; nil when the port is unwired
	out []*outPort // indexed by port; nil when the port is unwired

	// points caches the wired (port, VL) service points. The topology
	// is static after wiring, so the slice is built once (finishWiring)
	// instead of on every allocation pass. bufs is the parallel buffer
	// pointer for each point: the allocation scan touches only it on
	// empty points, one load instead of the in[port].vls[vl] chain.
	points []servicePoint
	bufs   []*vlBuffer

	rr         int // round-robin start for the allocation scan
	arbPending bool

	// occupancy counts packets buffered across every (port, VL) input
	// buffer. An allocation pass over an empty switch — the common case
	// right after the last buffered packet departed — short-circuits on
	// it instead of scanning every service point.
	occupancy int

	// arbFn is the switch's recurring delay-0 event closure, bound once
	// at wiring: evaluating a fresh func literal per kick would allocate
	// on every hop.
	arbFn func()

	// vlOf flattens the SL-to-VL table into one [out*MaxVLs + sl]
	// lookup. The table is programmed at construction and never
	// reprogrammed, so finishWiring snapshots it and the per-hop outVL
	// call skips the table's range-checked error path.
	vlOf []int8

	// candScratch is reused across adaptiveCandidates calls. The slice
	// is consumed synchronously by the selector before the next call,
	// so one scratch buffer per switch suffices.
	candScratch []core.Candidate

	// Wake-arbiter state (see wake.go). pending is the set of service
	// points with an unconsumed wake signal; linkWaiters[port] and
	// creditWaiters[port*NumVLs+vl] hold points blocked on that
	// condition; waitPorts lists (dedup'd via portListed) the ports
	// with link waiters, swept at arbitrate entry; timeParked/parkAt/
	// parkedMask hold points whose head is not servable before a known
	// readyAt; pointIdx maps (port*NumVLs+vl) to the point index.
	// parks counts wait-list registrations (Network.ArbParks). All
	// carved from network-level arenas (Network.initWakeState) once
	// wiring is final; maintained and read only while Network.wake is
	// armed (applyArb re-seeds the pending set on scan->wake
	// transitions).
	pending       pointMask
	linkWaiters   []pointMask
	creditWaiters []pointMask
	waitPorts     []ib.PortID
	portListed    []bool
	timeParked    []int32
	parkAt        []sim.Time
	parkedMask    pointMask
	pointIdx      []int32
	parks         uint64
}

// ID returns the switch's topology ID.
func (sw *Switch) ID() int { return sw.id }

// Enhanced reports whether this switch carries the paper's adaptive
// extensions (§4.2 mixed subnets may contain both kinds).
func (sw *Switch) Enhanced() bool { return sw.enhanced }

// Table exposes the forwarding table for the subnet manager.
func (sw *Switch) Table() *core.AdaptiveTable { return sw.table }

// Dead reports whether the switch has failed whole (SetSwitchDown).
func (sw *Switch) Dead() bool { return sw.dead }

// EscapeOnly reports whether the switch is in the staged-reconfig
// transient where only escape forwarding is trusted.
func (sw *Switch) EscapeOnly() bool { return sw.escapeOnly }

// SetEscapeOnly flips the stale-table transient mode. The subnet
// manager sets it when a staged reconfiguration sweep starts and
// clears it as each switch is reprogrammed.
func (sw *Switch) SetEscapeOnly(v bool) {
	sw.escapeOnly = v
	if !v {
		// Leaving the transient restores the adaptive options, which
		// no wait list tracked while they were suppressed.
		sw.wakeAllPoints()
		sw.kick()
	}
}

// TxPackets sums packets transmitted through all output ports — a
// per-switch progress clock for the forward-progress watchdog.
func (sw *Switch) TxPackets() uint64 {
	var n uint64
	for _, o := range sw.out {
		if o != nil {
			n += o.txPackets
		}
	}
	return n
}

// QueuedPackets counts packets buffered in the switch.
func (sw *Switch) QueuedPackets() int { return sw.queuedPackets() }

// ScanBuffers calls fn for every wired (port, VL) input buffer with
// its current depth and head packet ID (0 when empty), in a fixed
// port-major order. The forward-progress watchdog samples these to
// detect service points whose head packet stopped moving.
func (sw *Switch) ScanBuffers(fn func(port ib.PortID, vl int, depth int, headID uint64)) {
	slab := &sw.ctx.slab
	for p, in := range sw.in {
		if in == nil {
			continue
		}
		for vl, buf := range in.vls {
			var head uint64
			if id := buf.head(); id >= 0 {
				head = slab.pkt[id].ID
			}
			fn(ib.PortID(p), vl, buf.len(), head)
		}
	}
}

// kick schedules an allocation pass at the current time, coalescing
// multiple triggers within one event timestamp.
func (sw *Switch) kick() {
	if sw.arbPending {
		return
	}
	sw.arbPending = true
	sw.ctx.eng.Schedule(0, sw.arbFn)
}

// inlinePass runs the allocation pass synchronously — the hop-fusion
// dispatch substitutes it for kick when engine quiescence proves the
// delay-0 event would execute immediately next anyway (see pool.go).
func (sw *Switch) inlinePass() { sw.arbitrate() }

// finishWiring precomputes the per-switch hot-path state once the
// port wiring is final: the service-point scan order, the recurring
// delay-0 event closure, and each input buffer's pointer to the owning
// context's entry slab (context ownership is fixed by then — sharding
// has already stamped sw.ctx).
func (sw *Switch) finishWiring() {
	sw.points = sw.buildServicePoints()
	sw.vlOf = make([]int8, len(sw.out)*ib.MaxVLs)
	for p := range sw.out {
		for sl := 0; sl < ib.MaxVLs; sl++ {
			vl, err := sw.sl2vl.VL(0, p, sl)
			if err != nil {
				panic(fmt.Sprintf("fabric: switch %d: %v", sw.id, err))
			}
			sw.vlOf[p*ib.MaxVLs+sl] = int8(vl)
		}
	}
	sw.arbFn = func() {
		sw.arbPending = false
		if prof.HotPhasesEnabled() {
			prof.Phase(prof.PhaseArbitrate, sw.arbitrate)
			return
		}
		sw.arbitrate()
	}
	for _, in := range sw.in {
		if in == nil {
			continue
		}
		for _, buf := range in.vls {
			buf.slab = &sw.ctx.slab
		}
	}
}

// receive is the head arrival of a packet on (port, vl). The
// forwarding table is accessed immediately ("as soon as a packet
// arrives at the switch, before reaching the head of the input
// buffer", §4.3); the packet becomes servable after RoutingDelay.
func (sw *Switch) receive(port ib.PortID, vl int, pkt *ib.Packet) {
	if sw.dead {
		// The switch failed while the packet was on the wire: it is
		// discarded at the dead input, and the freed buffer space is
		// reported upstream so credit conservation holds.
		sw.ctx.scheduleCreditReturn(ib.PropagationDelay, sw.in[port].upstream, vl, pkt.Credits())
		sw.ctx.dropPacket(pkt, DropDeadPort)
		return
	}
	now := sw.ctx.eng.Now()
	slab := &sw.ctx.slab
	id := slab.alloc()
	slab.pkt[id] = pkt
	slab.readyAt[id] = now + ib.RoutingDelay
	slab.credits[id] = int32(pkt.Credits())
	slab.sl[id] = int32(pkt.SL)
	if pkt.Adaptive {
		slab.flags[id] = entryPktAdaptive
	}
	if sw.enhanced {
		escape, adaptive, err := sw.table.Lookup(pkt.DLID)
		if err != nil {
			slab.release(id)
			sw.dropUnroutable(port, vl, pkt)
			return
		}
		if sw.net.tamper.AdaptiveDeterministic && len(adaptive) == 0 && sw.table.LMC() > 0 {
			// Mutation model: the service-mode bit is ignored, so a
			// deterministic DLID fetches its block's adaptive options
			// too (DLID|1 stays inside the 2^LMC-aligned block).
			if esc2, ad2, err2 := sw.table.Lookup(pkt.DLID | 1); err2 == nil {
				escape, adaptive = esc2, ad2
			}
		}
		slab.escape[id], slab.adaptive[id] = escape, adaptive
		if !sw.net.Cfg.Selection.AtArbitration {
			sw.selectImmediate(id)
		}
	} else {
		// Plain IBA switch: a linear lookup of the exact DLID yields
		// the single routing option.
		p := sw.table.Get(pkt.DLID)
		if p == ib.InvalidPort {
			slab.release(id)
			sw.dropUnroutable(port, vl, pkt)
			return
		}
		slab.escape[id] = p
	}
	// The SLtoVL mapping of the escape option never changes while the
	// entry is buffered (Reroute recomputes it with the table), so
	// resolve it once here instead of on every escape probe.
	slab.escVL[id] = int8(sw.outVL(int(slab.sl[id]), slab.escape[id]))
	sw.in[port].vls[vl].push(id)
	sw.occupancy++
	if sw.net.wake {
		sw.wakeArrival(port, vl)
	}
	sw.ctx.scheduleSwitchKick(ib.RoutingDelay, sw)
}

// dropUnroutable discards a packet whose DLID has no programmed port
// (a mid-reconfiguration transient) and returns its buffer space to
// the upstream transmitter.
func (sw *Switch) dropUnroutable(port ib.PortID, vl int, pkt *ib.Packet) {
	sw.ctx.scheduleCreditReturn(ib.PropagationDelay, sw.in[port].upstream, vl, pkt.Credits())
	sw.ctx.dropPacket(pkt, DropUnroutable)
}

// selectImmediate fixes the output port right after the table access
// (§4.3 immediate selection). Status-aware immediate selection uses
// the credit/link status at this moment; static selection picks
// uniformly among all returned options.
func (sw *Switch) selectImmediate(id int32) {
	slab := &sw.ctx.slab
	adaptive := slab.adaptive[id]
	if slab.flags[id]&entryPktAdaptive == 0 || len(adaptive) == 0 || sw.escapeOnly {
		slab.chosen[id] = slab.escape[id]
		slab.flags[id] &^= entryChosenAdaptive
		return
	}
	now := sw.ctx.eng.Now()
	if sw.net.Cfg.Selection.StatusAware {
		cands := sw.adaptiveCandidates(id, now)
		if i := core.PickAdaptive(sw.net.Cfg.Selection, cands, sw.net.rng); i >= 0 {
			slab.chosen[id] = cands[i].Port
			slab.flags[id] |= entryChosenAdaptive
			return
		}
		slab.chosen[id] = slab.escape[id]
		slab.flags[id] &^= entryChosenAdaptive
		return
	}
	// Static: uniform over adaptive options plus the escape option.
	k := sw.net.rng.Intn(len(adaptive) + 1)
	if k < len(adaptive) {
		slab.chosen[id] = adaptive[k]
		slab.flags[id] |= entryChosenAdaptive
	} else {
		slab.chosen[id] = slab.escape[id]
		slab.flags[id] &^= entryChosenAdaptive
	}
}

// adaptiveCandidates builds the selector's view of an entry's adaptive
// options: eligibility = output link free now and the next hop's
// adaptive queue can hold the whole packet. The returned slice aliases
// the switch's scratch buffer and is only valid until the next call.
func (sw *Switch) adaptiveCandidates(id int32, now sim.Time) []core.Candidate {
	slab := &sw.ctx.slab
	adaptive := slab.adaptive[id]
	if cap(sw.candScratch) < len(adaptive) {
		sw.candScratch = make([]core.Candidate, len(adaptive))
	}
	cands := sw.candScratch[:len(adaptive)]
	pktCredits := int(slab.credits[id])
	sl := int(slab.sl[id])
	for i, p := range adaptive {
		o := sw.out[p]
		c := core.Candidate{Port: p}
		if o != nil {
			vl := sw.outVL(sl, p)
			avail := o.credits[vl]
			if o.peerHost != nil {
				// Delivery port: the CA drains at line rate and has no
				// queue split; total room is the condition.
				c.AdaptiveCredits = avail
				c.Eligible = o.free(now) && sw.net.Cfg.Split.CanUseEscape(avail, pktCredits)
			} else {
				c.AdaptiveCredits = sw.net.Cfg.Split.Adaptive(avail)
				c.Eligible = o.free(now) && sw.adaptiveRoom(avail, pktCredits)
			}
		}
		cands[i] = c
	}
	return cands
}

// bestAdaptive is the fused fast path for the default selection policy
// (arbitration-time, status-aware): it computes each option's
// eligibility and adaptive credit count exactly as adaptiveCandidates
// does and tracks the first maximum inline, matching
// core.PickAdaptive's strict-greater scan over the same order — same
// winner, no candidate slice materialized, and (like the slow path for
// this policy) no RNG consumption.
func (sw *Switch) bestAdaptive(id int32, now sim.Time) (ib.PortID, bool) {
	slab := &sw.ctx.slab
	pktCredits := int(slab.credits[id])
	sl := int(slab.sl[id])
	best, bestCredits := ib.InvalidPort, -1
	for _, p := range slab.adaptive[id] {
		o := sw.out[p]
		if o == nil || !o.free(now) {
			continue
		}
		avail := o.credits[sw.outVL(sl, p)]
		var credits int
		var eligible bool
		if o.peerHost != nil {
			credits = avail
			eligible = sw.net.Cfg.Split.CanUseEscape(avail, pktCredits)
		} else {
			credits = sw.net.Cfg.Split.Adaptive(avail)
			eligible = sw.adaptiveRoom(avail, pktCredits)
		}
		if eligible && credits > bestCredits {
			best, bestCredits = p, credits
		}
	}
	return best, best != ib.InvalidPort
}

// adaptiveRoom is the §4.4 adaptive-admission condition: the adaptive
// region of the next hop's buffer must hold the whole packet,
// C_XYA = max(0, C_XY − C_0) >= pktCredits. The tamper flag swaps in
// the (wrong) total-room condition for the mutation suite.
func (sw *Switch) adaptiveRoom(avail, pktCredits int) bool {
	if sw.net.tamper.SkipAdaptiveRoomCheck {
		return sw.net.Cfg.Split.CanUseEscape(avail, pktCredits)
	}
	return sw.net.Cfg.Split.CanUseAdaptive(avail, pktCredits)
}

// escapeUsable reports whether the escape option of an entry can fire
// now: link free and the next VL has room for the whole packet. The
// escape VL was resolved once at arrival (slab.escVL), so the probe
// skips the SLtoVL multiply-and-index.
func (sw *Switch) escapeUsable(id int32, now sim.Time) bool {
	slab := &sw.ctx.slab
	o := sw.out[slab.escape[id]]
	if o == nil || !o.free(now) {
		return false
	}
	return sw.net.Cfg.Split.CanUseEscape(o.credits[slab.escVL[id]], int(slab.credits[id]))
}

// outVL computes the VL a packet with service level sl will use on the
// chosen output link via the SLtoVL table. The input port is not
// tracked per entry because the default mapping ignores it; using
// port 0 keeps the lookup well-formed. (Entries could carry their
// input port if a QoS-style SLtoVL configuration ever needs it.)
func (sw *Switch) outVL(sl int, out ib.PortID) int {
	return int(sw.vlOf[int(out)*ib.MaxVLs+sl])
}

// servicePoint identifies one crossbar connection of an input buffer.
type servicePoint struct {
	port ib.PortID
	vl   int
}

// arbitrate is the crossbar allocation pass, dispatching to the
// configured arbiter: the wake-list drain (default) or the full
// round-robin scan (-arb=scan, the differential oracle — also forced
// whenever a tamper model is installed). Both produce byte-identical
// results; see wake.go for the equivalence argument.
func (sw *Switch) arbitrate() {
	if sw.net.wake {
		sw.arbitrateWake()
		return
	}
	sw.arbitrateScan()
}

// arbitrateScan is the scanning crossbar allocation pass: probe
// service points in round-robin order and start every transmission
// whose credit and link conditions hold, repeating until a full scan
// makes no progress.
func (sw *Switch) arbitrateScan() {
	points := sw.points
	n := len(points)
	if n == 0 {
		return
	}
	if sw.occupancy == 0 {
		// Every buffer is empty: a full scan would make no progress and
		// its only side effect is the round-robin advance. This is the
		// common state right after a switch's last buffered packet
		// departs (the trailing ser-kick fires into an empty switch).
		sw.rr++
		if sw.rr == n {
			sw.rr = 0
		}
		return
	}
	now := sw.ctx.eng.Now()
	for progress := true; progress && sw.occupancy > 0; {
		// The occupancy guard cuts the scan short the moment the last
		// buffered packet departs: the remaining points are all empty,
		// so skipping them serves nothing and reads nothing — the pass
		// is observationally identical, including the trailing
		// round-robin advance.
		progress = false
		for i := 0; i < n; i++ {
			j := sw.rr + i
			if j >= n {
				j -= n
			}
			buf := sw.bufs[j]
			if len(buf.ids) == 0 {
				continue
			}
			if sw.tryServe(buf, points[j], now) {
				progress = true
				if sw.occupancy == 0 {
					break
				}
			}
		}
	}
	sw.rr++
	if sw.rr == n {
		sw.rr = 0
	}
}

// tryServe attempts to dispatch from both service points of one
// buffer. It returns true if any packet left.
func (sw *Switch) tryServe(buf *vlBuffer, sp servicePoint, now sim.Time) bool {
	served := false
	slab := buf.slab
	// Buffer head (adaptive-queue head).
	if id := buf.head(); id >= 0 && slab.readyAt[id] <= now {
		if out, asAdaptive, ok := sw.chooseOutput(id, now); ok {
			sw.startTx(buf, 0, sp, out, asAdaptive)
			served = true
		}
	}
	// Escape-queue connection, served independently (§4.4); the
	// in-order pointer may redirect it to the first deterministic
	// packet still in the adaptive region (see escapeService).
	if idx, id := buf.escapeService(); id >= 0 && idx > 0 && slab.readyAt[id] <= now {
		if out, asAdaptive, ok := sw.chooseOutput(id, now); ok {
			sw.startTx(buf, idx, sp, out, asAdaptive)
			served = true
		}
	}
	return served
}

// chooseOutput picks the output port for a servable entry under the
// configured selection policy, returning ok=false when nothing can
// fire now.
func (sw *Switch) chooseOutput(id int32, now sim.Time) (out ib.PortID, asAdaptive bool, ok bool) {
	slab := &sw.ctx.slab
	if chosen := slab.chosen[id]; chosen != ib.InvalidPort {
		// Immediate selection: the decision is fixed; wait until that
		// specific option can fire.
		o := sw.out[chosen]
		if o == nil || !o.free(now) {
			return 0, false, false
		}
		vl := sw.outVL(int(slab.sl[id]), chosen)
		avail := o.credits[vl]
		pktCredits := int(slab.credits[id])
		usable := sw.net.Cfg.Split.CanUseEscape(avail, pktCredits)
		chosenAdaptive := slab.flags[id]&entryChosenAdaptive != 0
		if chosenAdaptive && o.peerHost == nil {
			usable = sw.adaptiveRoom(avail, pktCredits)
		}
		if !usable {
			return 0, false, false
		}
		return chosen, chosenAdaptive, true
	}
	// Arbitration-time selection: adaptive options first (preference
	// for minimal paths, §3), escape as fallback. The staged-reconfig
	// transient (escapeOnly) suppresses adaptive moves computed from a
	// stale table.
	adaptivePkt := slab.flags[id]&entryPktAdaptive != 0 || sw.net.tamper.AdaptiveDeterministic
	if adaptivePkt && len(slab.adaptive[id]) > 0 && sw.enhanced && !sw.escapeOnly {
		if sel := sw.net.Cfg.Selection; sel.StatusAware {
			if p, ok := sw.bestAdaptive(id, now); ok {
				return p, true, true
			}
		} else {
			cands := sw.adaptiveCandidates(id, now)
			if i := core.PickAdaptive(sel, cands, sw.net.rng); i >= 0 {
				return cands[i].Port, true, true
			}
		}
		if sw.net.tamper.NoEscapeFallback {
			// Mutation model: the §4.4 escape fallback is dropped —
			// a blocked adaptive packet just waits for adaptive room.
			return 0, false, false
		}
	}
	if sw.escapeUsable(id, now) {
		return slab.escape[id], false, true
	}
	return 0, false, false
}

// startTx dequeues the entry at idx and begins its transmission on the
// output port (see transmit); when hot-phase profiling is active the
// work is wrapped in the depart pprof label.
func (sw *Switch) startTx(buf *vlBuffer, idx int, sp servicePoint, out ib.PortID, asAdaptive bool) {
	if prof.HotPhasesEnabled() {
		prof.Phase(prof.PhaseDepart, func() { sw.transmit(buf, idx, sp, out, asAdaptive) })
		return
	}
	sw.transmit(buf, idx, sp, out, asAdaptive)
}

// transmit dequeues the entry at idx and begins its transmission on
// the output port: credits are reserved for the whole packet (VCT),
// the link is held for the serialization time, the credit update for
// this switch's own input buffer travels back after the tail leaves,
// and the head arrives at the peer after the propagation delay.
func (sw *Switch) transmit(buf *vlBuffer, idx int, sp servicePoint, out ib.PortID, asAdaptive bool) {
	now := sw.ctx.eng.Now()
	slab := &sw.ctx.slab
	id := buf.removeAt(idx)
	sw.occupancy--
	pkt := slab.pkt[id]
	o := sw.out[out]
	vl := sw.outVL(int(slab.sl[id]), out)
	ser := ib.SerializationTime(pkt.Size)
	credits := int(slab.credits[id])

	o.credits[vl] -= credits
	if o.credits[vl] < 0 {
		panic(fmt.Sprintf("fabric: switch %d port %d vl %d negative credits", sw.id, out, vl))
	}
	o.busyUntil = now + ser
	o.busyAccum += ser
	o.txPackets++
	pkt.Hops++
	sw.ctx.moved++
	if sw.ctx.onHop != nil {
		sw.ctx.onHop(pkt, sw.id, out, asAdaptive)
	} else if sw.net.OnHop != nil {
		sw.net.OnHop(pkt, sw.id, out, asAdaptive)
	}

	// Credit update to our upstream once the tail has left this
	// buffer (ser) and flown back (prop).
	sw.ctx.scheduleCreditReturn(ser+ib.PropagationDelay, sw.in[sp.port].upstream, sp.vl, credits)

	if o.peerHost != nil {
		sw.ctx.scheduleDeliver(ser+ib.PropagationDelay, o.peerHost, pkt)
		// The CA drains at line rate: its buffer frees as the tail
		// arrives, and the credit update flies back one propagation
		// delay later.
		sw.ctx.scheduleCreditReturn(ser+2*ib.PropagationDelay, o, vl, credits)
	} else {
		sw.ctx.scheduleReceive(ib.PropagationDelay, o.peerSwitch, o.peerPort, vl, pkt)
	}
	// The link frees at ser; look for more work then.
	sw.ctx.scheduleSwitchKick(ser, sw)
	// The entry's journey through this switch is over; recycle it.
	slab.release(id)
}

// buildServicePoints enumerates the wired (port, VL) buffers; the
// result is cached in sw.points at wiring time.
func (sw *Switch) buildServicePoints() []servicePoint {
	np := 0
	for _, in := range sw.in {
		if in != nil {
			np += len(in.vls)
		}
	}
	pts := make([]servicePoint, 0, np)
	if cap(sw.bufs) < np {
		sw.bufs = make([]*vlBuffer, 0, np)
	} else {
		sw.bufs = sw.bufs[:0]
	}
	for p, in := range sw.in {
		if in == nil {
			continue
		}
		for vl := range in.vls {
			pts = append(pts, servicePoint{port: ib.PortID(p), vl: vl})
			sw.bufs = append(sw.bufs, in.vls[vl])
		}
	}
	return pts
}

// queuedPackets counts packets buffered in the switch (test hook). It
// recounts from the buffers rather than trusting sw.occupancy, so the
// occupancy-consistency test can cross-check the counter.
func (sw *Switch) queuedPackets() int {
	n := 0
	for _, in := range sw.in {
		if in == nil {
			continue
		}
		for _, b := range in.vls {
			n += b.len()
		}
	}
	return n
}

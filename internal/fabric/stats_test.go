package fabric_test

import (
	"testing"

	"ibasim/internal/fabric"
	"ibasim/internal/sim"
)

func TestLinkStatsRanges(t *testing.T) {
	net := irregularNet(t, 8, 4, 3, fabric.DefaultConfig(), 2, 1)
	rng := sim.NewRNG(1)
	hosts := net.Topo.NumHosts()
	for i := 0; i < 1000; i++ {
		src, dst := rng.Intn(hosts), rng.Intn(hosts)
		if src == dst {
			dst = (dst + 1) % hosts
		}
		net.Hosts[src].Inject(net.NewPacket(src, dst, 32, true))
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	stats := net.LinkStats()
	// 8 switches x 4 links = 16 undirected = 32 directed channels.
	if len(stats) != 32 {
		t.Fatalf("LinkStats returned %d channels, want 32", len(stats))
	}
	var packets uint64
	for _, s := range stats {
		if s.Utilization < 0 || s.Utilization > 1 {
			t.Fatalf("utilization %v out of range: %+v", s.Utilization, s)
		}
		packets += s.Packets
	}
	if packets == 0 {
		t.Fatal("no inter-switch packets counted under uniform traffic")
	}
	// Sorted descending.
	for i := 1; i < len(stats); i++ {
		if stats[i].Utilization > stats[i-1].Utilization {
			t.Fatal("LinkStats not sorted by utilization")
		}
	}
}

func TestUtilizationSummary(t *testing.T) {
	net := irregularNet(t, 8, 4, 5, fabric.DefaultConfig(), 2, 1)
	rng := sim.NewRNG(2)
	hosts := net.Topo.NumHosts()
	for i := 0; i < 2000; i++ {
		src, dst := rng.Intn(hosts), rng.Intn(hosts)
		if src == dst {
			dst = (dst + 1) % hosts
		}
		net.Hosts[src].Inject(net.NewPacket(src, dst, 32, false))
	}
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	u := net.Utilization()
	if u.Mean <= 0 || u.Peak < u.Mean || u.Imbalance < 1 {
		t.Fatalf("implausible summary: %+v", u)
	}
	if u.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestUtilizationEmptyNetwork(t *testing.T) {
	net := irregularNet(t, 8, 4, 7, fabric.DefaultConfig(), 2, 1)
	u := net.Utilization()
	if u.Mean != 0 || u.Peak != 0 {
		t.Fatalf("idle network has utilization %+v", u)
	}
}

// TestRootCongestionVisibleInUtilization reproduces the qualitative
// claim of §5.2.1: under deterministic up*/down* routing, traffic
// concentrates near the root, so peak/mean link imbalance is high;
// adaptive routing spreads it. We assert det imbalance >= adaptive
// imbalance on a larger topology where the effect is pronounced.
func TestRootCongestionVisibleInUtilization(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation comparison")
	}
	imbalance := func(adaptive bool) float64 {
		cfg := fabric.DefaultConfig()
		cfg.AdaptiveSwitches = adaptive
		net := irregularNet(t, 32, 4, 9, cfg, 2, 1)
		rng := sim.NewRNG(3)
		hosts := net.Topo.NumHosts()
		for i := 0; i < 20000; i++ {
			src, dst := rng.Intn(hosts), rng.Intn(hosts)
			if src == dst {
				dst = (dst + 1) % hosts
			}
			net.Hosts[src].Inject(net.NewPacket(src, dst, 32, adaptive))
		}
		if err := net.Drain(); err != nil {
			t.Fatal(err)
		}
		return net.Utilization().Imbalance
	}
	det, ada := imbalance(false), imbalance(true)
	if det < ada*0.95 {
		t.Fatalf("deterministic imbalance %.2f not above adaptive %.2f", det, ada)
	}
}

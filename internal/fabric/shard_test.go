package fabric

// In-package shard tests: the partitioner and the per-shard execution
// plumbing are unexported, and the end-to-end bit-exactness evidence
// lives in internal/experiments/shard_diff_test.go; these cover the
// structural invariants the differential cannot localize.

import (
	"testing"

	"ibasim/internal/ib"
	"ibasim/internal/sim"
	"ibasim/internal/topology"
)

func shardTopo(tb testing.TB, n int) *topology.Topology {
	tb.Helper()
	topo, err := topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches: n, HostsPerSwitch: 4, InterSwitch: 4, Seed: 3,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return topo
}

// TestPartitionersDisjointCover: every strategy must assign every
// switch to exactly one shard in range, with no shard left empty, for
// every shard count up to the switch count.
func TestPartitionersDisjointCover(t *testing.T) {
	topo := shardTopo(t, 16)
	for _, kind := range []string{PartitionBFS, PartitionRoundRobin} {
		for shards := 1; shards <= topo.NumSwitches; shards++ {
			part := partitionSwitches(topo, topo.NumSwitches, shards, kind)
			if len(part) != topo.NumSwitches {
				t.Fatalf("%s/%d: partition covers %d switches", kind, shards, len(part))
			}
			sizes := make([]int, shards)
			for s, p := range part {
				if p < 0 || p >= shards {
					t.Fatalf("%s/%d: switch %d assigned to shard %d", kind, shards, s, p)
				}
				sizes[p]++
			}
			for p, n := range sizes {
				if n == 0 {
					t.Fatalf("%s/%d: shard %d is empty", kind, shards, p)
				}
			}
		}
	}
}

// TestPartitionBFSCutsFewerLinks: the point of the BFS partitioner is
// locality — on a connected irregular topology it should cut no more
// inter-switch links than round-robin (which cuts nearly all of them).
func TestPartitionBFSCutsFewerLinks(t *testing.T) {
	topo := shardTopo(t, 16)
	cut := func(part []int) int {
		n := 0
		for _, l := range topo.Links {
			if part[l.A] != part[l.B] {
				n++
			}
		}
		return n
	}
	for _, shards := range []int{2, 4} {
		bfs := cut(partitionSwitches(topo, topo.NumSwitches, shards, PartitionBFS))
		rr := cut(partitionSwitches(topo, topo.NumSwitches, shards, PartitionRoundRobin))
		if bfs > rr {
			t.Errorf("shards=%d: BFS cuts %d links, round-robin %d", shards, bfs, rr)
		}
	}
}

// TestLookaheadDerivation pins the window width: the propagation delay
// normally, capped by the retry backoff base when a retry policy lets
// dropped packets requeue across arbitrary shard pairs.
func TestLookaheadDerivation(t *testing.T) {
	cfg := DefaultConfig()
	if la := computeLookahead(cfg, 1); la != sim.Forever {
		t.Errorf("single shard lookahead = %v, want Forever", la)
	}
	if la := computeLookahead(cfg, 4); la != sim.Time(ib.PropagationDelay) {
		t.Errorf("lookahead = %v, want propagation delay %d", la, ib.PropagationDelay)
	}
	cfg.Retry = RetryConfig{MaxRetries: 3, BackoffBase: 40}
	if la := computeLookahead(cfg, 4); la != 40 {
		t.Errorf("retry lookahead = %v, want backoff base 40", la)
	}
	cfg.Retry = RetryConfig{MaxRetries: 3, BackoffBase: 1_000_000}
	if la := computeLookahead(cfg, 4); la != sim.Time(ib.PropagationDelay) {
		t.Errorf("slow-retry lookahead = %v, want propagation delay", la)
	}
	cfg.Retry = RetryConfig{SendTimeout: 500} // timeout drops requeue too
	if la := computeLookahead(cfg, 4); la != 1 {
		t.Errorf("zero-base retry lookahead = %v, want 1", la)
	}
}

// TestShardNetworkStructure verifies the wiring NewNetwork does for a
// sharded config: contexts assigned per the partition, hosts following
// their switch, shard count clamped to the switch count.
func TestShardNetworkStructure(t *testing.T) {
	topo := shardTopo(t, 8)
	plan, err := ib.NewAddressPlan(topo.NumHosts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Shards = 64 // clamped to 8 switches
	net, err := NewNetwork(topo, plan, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if net.ShardCount() != 8 {
		t.Fatalf("ShardCount = %d, want 8 (clamped)", net.ShardCount())
	}
	if net.Lookahead() != sim.Time(ib.PropagationDelay) {
		t.Fatalf("Lookahead = %v", net.Lookahead())
	}
	for s, sw := range net.Switches {
		if sw.ctx.id != net.ShardOfSwitch(s) {
			t.Fatalf("switch %d ctx %d != ShardOfSwitch %d", s, sw.ctx.id, net.ShardOfSwitch(s))
		}
		for _, o := range sw.out {
			if o != nil && o.ctx != sw.ctx {
				t.Fatalf("switch %d out port ctx not the switch's", s)
			}
		}
	}
	for h, host := range net.Hosts {
		if want := net.ShardOfSwitch(topo.HostSwitch(h)); host.ctx.id != want {
			t.Fatalf("host %d on shard %d, its switch on %d", h, host.ctx.id, want)
		}
		if host.out.ctx != host.ctx {
			t.Fatalf("host %d out port ctx not the host's", h)
		}
	}
}

// TestShardRecycleReturnsAllQueues is the sweep-arena gate for sharded
// runs: Network.Recycle must hand back every engine's storage — the
// control queue plus one per shard — so the next sweep point reuses
// all of them.
func TestShardRecycleReturnsAllQueues(t *testing.T) {
	topo := shardTopo(t, 8)
	plan, err := ib.NewAddressPlan(topo.NumHosts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	arena := sim.NewQueueArena()
	cfg := DefaultConfig()
	cfg.Shards = 4
	cfg.EngineOpts = []sim.EngineOption{sim.WithArena(arena)}
	net, err := NewNetwork(topo, plan, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	net.Recycle()
	if got := arena.Pooled(); got != 5 {
		t.Fatalf("arena pooled %d queues after Recycle, want 5 (control + 4 shards)", got)
	}
	// A second network with the same config must draw all five back out.
	net2, err := NewNetwork(topo, plan, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := arena.Pooled(); got != 0 {
		t.Fatalf("arena still pools %d queues after rebuild, want 0", got)
	}
	net2.Recycle()
	if got := arena.Pooled(); got != 5 {
		t.Fatalf("arena pooled %d queues after second Recycle, want 5", got)
	}
}

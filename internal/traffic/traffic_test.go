package traffic

import (
	"math"
	"testing"

	"ibasim/internal/sim"
)

func TestUniformNeverSelf(t *testing.T) {
	u := Uniform{NumHosts: 16}
	rng := sim.NewRNG(1)
	for src := 0; src < 16; src++ {
		for i := 0; i < 500; i++ {
			d := u.Dest(src, rng)
			if d == src || d < 0 || d >= 16 {
				t.Fatalf("Dest(%d) = %d", src, d)
			}
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	u := Uniform{NumHosts: 8}
	rng := sim.NewRNG(2)
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		seen[u.Dest(0, rng)] = true
	}
	if len(seen) != 7 {
		t.Fatalf("uniform from host 0 reached %d destinations, want 7", len(seen))
	}
}

func TestUniformSingleHost(t *testing.T) {
	u := Uniform{NumHosts: 1}
	if d := u.Dest(0, sim.NewRNG(1)); d != -1 {
		t.Fatalf("Dest = %d, want -1", d)
	}
}

func TestBitReversalPermutation(t *testing.T) {
	b, err := NewBitReversal(32)
	if err != nil {
		t.Fatal(err)
	}
	// 5-bit reversal: 1 (00001) -> 16 (10000), 3 (00011) -> 24 (11000).
	if d := b.Dest(1, nil); d != 16 {
		t.Fatalf("Dest(1) = %d, want 16", d)
	}
	if d := b.Dest(3, nil); d != 24 {
		t.Fatalf("Dest(3) = %d, want 24", d)
	}
	// Fixed points generate nothing: 0 reverses to 0.
	if d := b.Dest(0, nil); d != -1 {
		t.Fatalf("Dest(0) = %d, want -1", d)
	}
}

func TestBitReversalIsInvolution(t *testing.T) {
	b, err := NewBitReversal(64)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 64; src++ {
		d := b.Dest(src, nil)
		if d == -1 {
			continue
		}
		if back := b.Dest(d, nil); back != src {
			t.Fatalf("reversal not involutive: %d -> %d -> %d", src, d, back)
		}
	}
}

func TestBitReversalRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 1, 12, 100} {
		if _, err := NewBitReversal(n); err == nil {
			t.Fatalf("NumHosts %d accepted", n)
		}
	}
}

func TestHotSpotFraction(t *testing.T) {
	rng := sim.NewRNG(5)
	h, err := NewHotSpot(64, 0.20, rng)
	if err != nil {
		t.Fatal(err)
	}
	hits, total := 0, 50000
	src := (h.Host + 1) % 64
	for i := 0; i < total; i++ {
		if h.Dest(src, rng) == h.Host {
			hits++
		}
	}
	got := float64(hits) / float64(total)
	// 20% direct + ~1/63 of the uniform remainder also lands there.
	want := 0.20 + 0.80/63
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("hot-spot rate %.3f, want ~%.3f", got, want)
	}
}

func TestHotSpotValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := NewHotSpot(1, 0.1, rng); err == nil {
		t.Fatal("single host accepted")
	}
	if _, err := NewHotSpot(8, 1.5, rng); err == nil {
		t.Fatal("fraction 1.5 accepted")
	}
}

func TestHotSpotName(t *testing.T) {
	rng := sim.NewRNG(2)
	h, err := NewHotSpot(16, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "hot-spot-5%" {
		t.Fatalf("Name = %q", h.Name())
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Pattern: Uniform{NumHosts: 4}, PacketSize: 32, AdaptiveFraction: 0.5, LoadBytesPerNsPerHost: 0.01}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{PacketSize: 32, LoadBytesPerNsPerHost: 0.01},
		{Pattern: Uniform{NumHosts: 4}, PacketSize: 0, LoadBytesPerNsPerHost: 0.01},
		{Pattern: Uniform{NumHosts: 4}, PacketSize: 32, AdaptiveFraction: -0.1, LoadBytesPerNsPerHost: 0.01},
		{Pattern: Uniform{NumHosts: 4}, PacketSize: 32, LoadBytesPerNsPerHost: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestOfferedPerSwitch(t *testing.T) {
	c := Config{LoadBytesPerNsPerHost: 0.01}
	if got := c.OfferedPerSwitch(4); math.Abs(got-0.04) > 1e-12 {
		t.Fatalf("OfferedPerSwitch = %v, want 0.04", got)
	}
}

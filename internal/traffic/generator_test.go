package traffic

import (
	"math"
	"testing"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/subnet"
	"ibasim/internal/topology"
)

func testNet(t *testing.T, switches int) *fabric.Network {
	t.Helper()
	topo, err := topology.Ring(switches, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ib.NewAddressPlan(topo.NumHosts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fabric.NewNetwork(topo, plan, fabric.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subnet.Configure(net, subnet.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestGeneratorRateMatchesLoad(t *testing.T) {
	net := testNet(t, 4) // 16 hosts
	cfg := Config{
		Pattern:               Uniform{NumHosts: 16},
		PacketSize:            32,
		AdaptiveFraction:      1,
		LoadBytesPerNsPerHost: 0.01, // one packet per 3200 ns per host
		Seed:                  1,
	}
	g, err := NewGenerator(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 2_000_000
	g.Start(horizon)
	net.Engine.Run(horizon)
	want := float64(16) * horizon * cfg.LoadBytesPerNsPerHost / float64(cfg.PacketSize)
	got := float64(g.Generated())
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("generated %v packets, want ~%v", got, want)
	}
}

func TestGeneratorAdaptiveFraction(t *testing.T) {
	net := testNet(t, 4)
	adaptive, total := 0, 0
	net.OnCreated = func(p *ib.Packet) {
		total++
		if p.Adaptive {
			adaptive++
		}
	}
	cfg := Config{
		Pattern:               Uniform{NumHosts: 16},
		PacketSize:            32,
		AdaptiveFraction:      0.75,
		LoadBytesPerNsPerHost: 0.02,
		Seed:                  2,
	}
	g, err := NewGenerator(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start(1_000_000)
	net.Engine.Run(1_000_000)
	got := float64(adaptive) / float64(total)
	if math.Abs(got-0.75) > 0.03 {
		t.Fatalf("adaptive fraction %.3f, want ~0.75 (n=%d)", got, total)
	}
}

func TestGeneratorStopsAtHorizon(t *testing.T) {
	net := testNet(t, 3)
	cfg := Config{
		Pattern:               Uniform{NumHosts: 12},
		PacketSize:            32,
		LoadBytesPerNsPerHost: 0.05,
		Seed:                  3,
	}
	g, err := NewGenerator(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start(100_000)
	// Run far beyond the stop time: generation must have ceased and
	// the network fully drained.
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	if g.Generated() == 0 {
		t.Fatal("nothing generated")
	}
	var sum uint64
	for _, h := range net.Hosts {
		sum += h.Delivered
	}
	if sum != g.Generated() {
		t.Fatalf("delivered %d != generated %d", sum, g.Generated())
	}
}

func TestGeneratorDeterministicAcrossRuns(t *testing.T) {
	counts := func() uint64 {
		net := testNet(t, 3)
		cfg := Config{
			Pattern:               Uniform{NumHosts: 12},
			PacketSize:            32,
			AdaptiveFraction:      0.5,
			LoadBytesPerNsPerHost: 0.02,
			Seed:                  42,
		}
		g, err := NewGenerator(net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		g.Start(500_000)
		net.Engine.Run(500_000)
		return g.Generated()
	}
	if a, b := counts(), counts(); a != b {
		t.Fatalf("same seed generated %d vs %d packets", a, b)
	}
}

func TestGeneratorRejectsOversizedPackets(t *testing.T) {
	net := testNet(t, 3)
	cfg := Config{
		Pattern:               Uniform{NumHosts: 12},
		PacketSize:            net.Cfg.MTU + 1,
		LoadBytesPerNsPerHost: 0.01,
	}
	if _, err := NewGenerator(net, cfg); err == nil {
		t.Fatal("oversized packets accepted")
	}
}

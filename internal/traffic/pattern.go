// Package traffic generates the synthetic workloads of the paper's
// evaluation: uniform, bit-reversal and hot-spot destination
// distributions, fixed packet sizes (32 or 256 bytes), a configurable
// fraction of adaptive traffic, and exponential inter-arrival times
// scaled to a target injection rate.
package traffic

import (
	"fmt"
	"math/bits"

	"ibasim/internal/sim"
)

// Pattern chooses a destination host for each generated packet.
type Pattern interface {
	// Dest returns the destination for a packet from src, or -1 when
	// the pattern generates no traffic from src (e.g. bit-reversal
	// fixed points). numHosts is fixed for a simulation.
	Dest(src int, rng *sim.RNG) int
	Name() string
}

// Uniform sends each packet to a destination drawn uniformly among
// all other hosts.
type Uniform struct{ NumHosts int }

// Dest implements Pattern.
func (u Uniform) Dest(src int, rng *sim.RNG) int {
	if u.NumHosts < 2 {
		return -1
	}
	d := rng.Intn(u.NumHosts - 1)
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (u Uniform) Name() string { return "uniform" }

// BitReversal sends every packet from src to the host whose index is
// the bit-reversal of src in log2(NumHosts) bits — the permutation
// traffic the paper uses to create stable local congestion. NumHosts
// must be a power of two; fixed points (palindromic indices) generate
// no traffic.
type BitReversal struct{ NumHosts int }

// NewBitReversal validates the host count.
func NewBitReversal(numHosts int) (BitReversal, error) {
	if numHosts < 2 || numHosts&(numHosts-1) != 0 {
		return BitReversal{}, fmt.Errorf("traffic: bit-reversal needs a power-of-two host count, got %d", numHosts)
	}
	return BitReversal{NumHosts: numHosts}, nil
}

// Dest implements Pattern.
func (b BitReversal) Dest(src int, _ *sim.RNG) int {
	width := bits.Len(uint(b.NumHosts)) - 1
	d := int(bits.Reverse(uint(src)) >> (bits.UintSize - width))
	if d == src {
		return -1
	}
	return d
}

// Name implements Pattern.
func (b BitReversal) Name() string { return "bit-reversal" }

// HotSpot sends a fixed fraction of traffic to one randomly chosen
// host and the rest uniformly, per §5.1 ("a node is randomly selected
// and a percentage of traffic is sent to this host").
type HotSpot struct {
	NumHosts int
	Host     int     // the hot destination
	Fraction float64 // e.g. 0.05, 0.10, 0.20
	uniform  Uniform
}

// NewHotSpot picks the hot host with the given RNG, as the paper does.
func NewHotSpot(numHosts int, fraction float64, rng *sim.RNG) (*HotSpot, error) {
	if numHosts < 2 {
		return nil, fmt.Errorf("traffic: hot-spot needs >= 2 hosts")
	}
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("traffic: hot-spot fraction %v out of [0,1]", fraction)
	}
	return &HotSpot{
		NumHosts: numHosts,
		Host:     rng.Intn(numHosts),
		Fraction: fraction,
		uniform:  Uniform{NumHosts: numHosts},
	}, nil
}

// Dest implements Pattern.
func (h *HotSpot) Dest(src int, rng *sim.RNG) int {
	if rng.Bool(h.Fraction) && src != h.Host {
		return h.Host
	}
	return h.uniform.Dest(src, rng)
}

// Name implements Pattern.
func (h *HotSpot) Name() string {
	return fmt.Sprintf("hot-spot-%d%%", int(h.Fraction*100+0.5))
}

package traffic

import (
	"fmt"

	"ibasim/internal/fabric"
	"ibasim/internal/sim"
)

// Config describes one workload.
type Config struct {
	Pattern    Pattern
	PacketSize int // bytes; the paper uses 32 and 256

	// AdaptiveFraction is the share of packets marked for adaptive
	// routing (the paper sweeps 0%..100%). Deterministic packets use
	// the destination's base LID, adaptive ones base+1.
	AdaptiveFraction float64

	// LoadBytesPerNsPerHost is each host's offered injection rate.
	// Packet inter-arrival times are exponential with mean
	// PacketSize / rate.
	LoadBytesPerNsPerHost float64

	Seed uint64
}

// Validate checks the workload shape.
func (c Config) Validate() error {
	if c.Pattern == nil {
		return fmt.Errorf("traffic: nil pattern")
	}
	if c.PacketSize <= 0 {
		return fmt.Errorf("traffic: packet size %d", c.PacketSize)
	}
	if c.AdaptiveFraction < 0 || c.AdaptiveFraction > 1 {
		return fmt.Errorf("traffic: adaptive fraction %v out of [0,1]", c.AdaptiveFraction)
	}
	if c.LoadBytesPerNsPerHost <= 0 {
		return fmt.Errorf("traffic: load %v", c.LoadBytesPerNsPerHost)
	}
	return nil
}

// OfferedPerSwitch converts the per-host rate to the paper's
// bytes/ns/switch unit.
func (c Config) OfferedPerSwitch(hostsPerSwitch int) float64 {
	return c.LoadBytesPerNsPerHost * float64(hostsPerSwitch)
}

// OfferedPerSwitchAvg is OfferedPerSwitch for non-uniform host
// attachment: avgHosts is NumHosts/NumSwitches (fat-trees put hosts
// only on the leaf row, so the average is fractional). For uniform
// topologies the average is the exact integer and the result is
// bit-identical to OfferedPerSwitch.
func (c Config) OfferedPerSwitchAvg(avgHosts float64) float64 {
	return c.LoadBytesPerNsPerHost * avgHosts
}

// Generator drives packet creation on every host of a network until a
// stop time.
type Generator struct {
	cfg     Config
	net     *fabric.Network
	stop    sim.Time
	streams []hostStream
}

// Generated returns the number of packets handed to source queues
// (summed over the per-host streams; call after the run completes).
func (g *Generator) Generated() uint64 {
	var n uint64
	for i := range g.streams {
		n += g.streams[i].generated
	}
	return n
}

// NewGenerator validates the config and binds it to a network.
func NewGenerator(net *fabric.Network, cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PacketSize > net.Cfg.MTU {
		return nil, fmt.Errorf("traffic: packet size %d exceeds MTU %d", cfg.PacketSize, net.Cfg.MTU)
	}
	return &Generator{cfg: cfg, net: net}, nil
}

// hostStream is one host's generation process. Binding the host, its
// RNG stream, and the rescheduling closure in one struct lets the
// recurring generation event reuse a single func value instead of
// allocating a new closure per packet.
type hostStream struct {
	g    *Generator
	host *fabric.Host
	rng  sim.RNG // split per host, held by value to keep streams one block
	mean float64
	fire func()

	// generated is per-stream so sharded runs never share a counter
	// across shard goroutines.
	generated uint64
}

// Start schedules generation on every host from the current simulated
// time until stopAt. Each host draws from an independent RNG stream,
// so per-host processes are uncorrelated but reproducible.
func (g *Generator) Start(stopAt sim.Time) {
	g.stop = stopAt
	mean := float64(g.cfg.PacketSize) / g.cfg.LoadBytesPerNsPerHost
	root := sim.NewRNG(g.cfg.Seed ^ 0x54524146464943)
	// All streams live in one backing array; only the recurring event
	// closure is a per-host allocation.
	g.streams = make([]hostStream, len(g.net.Hosts))
	for i, h := range g.net.Hosts {
		hs := &g.streams[i]
		hs.g, hs.host, hs.rng, hs.mean = g, h, *root.Split(uint64(h.ID()) + 1), mean
		hs.fire = hs.generate
		// Random initial phase avoids all hosts firing in lockstep. The
		// stream's events live on the host's engine — the owning shard's
		// queue in sharded mode — so generation is shard-local work.
		h.Engine().Schedule(hs.rng.ExpTime(mean), hs.fire)
	}
}

func (hs *hostStream) generate() {
	g := hs.g
	eng := hs.host.Engine()
	if eng.Now() >= g.stop {
		return
	}
	if dst := g.cfg.Pattern.Dest(hs.host.ID(), &hs.rng); dst >= 0 {
		adaptive := hs.rng.Bool(g.cfg.AdaptiveFraction)
		pkt := g.net.NewPacket(hs.host.ID(), dst, g.cfg.PacketSize, adaptive)
		hs.host.Inject(pkt)
		hs.generated++
	}
	eng.Schedule(hs.rng.ExpTime(hs.mean), hs.fire)
}

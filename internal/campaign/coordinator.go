package campaign

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ibasim/internal/sim"
)

// Options tunes the coordinator. The zero value is usable: every field
// has a documented default.
type Options struct {
	// Workers is the number of concurrent worker processes (default 2).
	Workers int
	// Timeout is the per-attempt wall-clock budget; a worker past it is
	// killed and the attempt counts as failed (default 5m).
	Timeout time.Duration
	// Retries is the per-job retry budget after the first attempt
	// (default 2, so up to 3 attempts).
	Retries int
	// BackoffBase/BackoffMax shape the exponential backoff between
	// attempts: base doubles per retry, saturates at max, and a
	// deterministic jitter (seeded from the job hash and attempt) keeps
	// co-failing jobs from re-spawning in lockstep. Defaults 250ms/10s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HungAfter kills a worker whose stdout heartbeat goes silent this
	// long (default 10s). This is the layer that catches SIGKILLed,
	// OOM-killed and wedged processes; it sits above the per-job
	// Timeout (live-lock) and the in-sim deadlock watchdog (model
	// wedges), each of which catches what the others cannot.
	HungAfter time.Duration
	// Degrade aggregates whatever completed instead of failing the
	// campaign when jobs exhaust their retry budget; missing seeds are
	// annotated per cell in the table.
	Degrade bool
	// WorkerCmd overrides the worker argv (default: this executable
	// with the single argument "worker"). Tests point it at the test
	// binary's re-exec shim.
	WorkerCmd []string
	// Env appends extra environment entries to spawned workers
	// (IBCAMP_STORE is always set from the store).
	Env []string
	// Log receives human-readable progress; default discard. Never
	// write the table here — stdout must stay byte-stable.
	Log io.Writer

	hooks testHooks
}

// testHooks give the crash tests surgical access to worker processes.
type testHooks struct {
	// onSpawn runs after a worker starts, before its output is read.
	onSpawn func(hash string, attempt int, cmd *exec.Cmd)
	// onHeartbeat runs on every heartbeat line.
	onHeartbeat func(hash string, attempt int, cmd *exec.Cmd)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Minute
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 250 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 10 * time.Second
	}
	if o.HungAfter <= 0 {
		o.HungAfter = 10 * time.Second
	}
	if len(o.WorkerCmd) == 0 {
		exe, err := os.Executable()
		if err != nil {
			exe = os.Args[0]
		}
		o.WorkerCmd = []string{exe, "worker"}
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	o.Log = &syncWriter{w: o.Log}
	return o
}

// syncWriter serializes concurrent log writes from the worker pool.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// Outcome records how one planned job ended.
type Outcome struct {
	Hash     string
	Status   string // "cached", "done", "failed", "skipped"
	Attempts int
	Err      string // last attempt's error for failed/skipped
}

// Report is the campaign run's summary: per-job outcomes (aligned with
// Plan.Jobs), tallies, and the aggregate table when one was computed.
type Report struct {
	Outcomes []Outcome
	Cached   int // valid store entries skipped (resume/dedup)
	Done     int // jobs completed this run
	Failed   int // jobs that exhausted their retry budget
	Skipped  int // jobs not attempted (interrupt)
	Retried  int // extra attempts beyond the first, summed
	Swept    int // torn temp files removed at startup

	Table *Table
}

// Run executes the plan to completion (or interruption): sweeps torn
// temp files, skips every job whose result is already stored and
// verified, evicts corrupt entries for rerun, fans the rest out to
// Workers subprocesses with retry/timeout/hang policies, and — when
// everything needed is present — aggregates the table.
//
// On ctx cancellation Run kills its workers and returns the partial
// report with ctx's error; completed results are durable, so rerunning
// the same plan against the same store resumes where it left off.
func Run(ctx context.Context, plan *Plan, store *Store, opts Options) (*Report, error) {
	o := opts.withDefaults()
	swept, err := store.SweepTorn()
	if err != nil {
		return nil, err
	}
	rep := &Report{Outcomes: make([]Outcome, len(plan.Jobs)), Swept: len(swept)}
	if len(swept) > 0 {
		fmt.Fprintf(o.Log, "ibcamp: swept %d torn temp file(s)\n", len(swept))
	}

	var todo []int
	for i, job := range plan.Jobs {
		rep.Outcomes[i].Hash = job.Hash
		_, gerr := store.Get(job.Hash)
		switch {
		case gerr == nil:
			rep.Outcomes[i].Status = "cached"
		case errors.Is(gerr, ErrNotFound):
			todo = append(todo, i)
		case errors.Is(gerr, ErrCorrupt):
			fmt.Fprintf(o.Log, "ibcamp: evicting corrupt entry %s: %v\n", job.Hash[:12], gerr)
			if rerr := store.Remove(job.Hash); rerr != nil {
				return nil, rerr
			}
			todo = append(todo, i)
		default:
			return nil, gerr
		}
	}
	fmt.Fprintf(o.Log, "ibcamp: %d job(s): %d cached, %d to run on %d worker(s)\n",
		len(plan.Jobs), len(plan.Jobs)-len(todo), len(todo), o.Workers)

	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for _, idx := range todo {
			select {
			case jobs <- idx:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				// Outcome slots are disjoint per index; no lock needed.
				rep.Outcomes[idx] = o.runJob(ctx, store, plan.Jobs[idx])
			}
		}()
	}
	wg.Wait()

	for i := range rep.Outcomes {
		oc := &rep.Outcomes[i]
		if oc.Status == "" { // never dequeued (interrupt)
			oc.Status = "skipped"
		}
		switch oc.Status {
		case "cached":
			rep.Cached++
		case "done":
			rep.Done++
		case "failed":
			rep.Failed++
		case "skipped":
			rep.Skipped++
		}
		if oc.Attempts > 1 {
			rep.Retried += oc.Attempts - 1
		}
	}

	if err := ctx.Err(); err != nil {
		return rep, fmt.Errorf("campaign: interrupted (%d done, %d cached, %d pending): %w",
			rep.Done, rep.Cached, rep.Failed+rep.Skipped, err)
	}
	if rep.Failed > 0 && !o.Degrade {
		var names []string
		for _, oc := range rep.Outcomes {
			if oc.Status == "failed" {
				names = append(names, fmt.Sprintf("%s (%s)", oc.Hash[:12], oc.Err))
				if len(names) == 4 {
					names = append(names, "...")
					break
				}
			}
		}
		return rep, fmt.Errorf("campaign: %d job(s) exhausted their retry budget: %s (completed results are stored; rerun to retry, or pass degrade to aggregate partials)",
			rep.Failed, strings.Join(names, ", "))
	}
	table, err := Aggregate(plan, store.Get, o.Degrade)
	if err != nil {
		return rep, err
	}
	rep.Table = table
	return rep, nil
}

// runJob drives one job through its attempt/backoff loop.
func (o Options) runJob(ctx context.Context, st *Store, job Job) Outcome {
	oc := Outcome{Hash: job.Hash}
	input, err := json.Marshal(job.Spec)
	if err != nil {
		oc.Status, oc.Err = "failed", err.Error()
		return oc
	}
	maxAttempts := 1 + o.Retries
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if ctx.Err() != nil {
			oc.Status, oc.Err = "skipped", ctx.Err().Error()
			return oc
		}
		oc.Attempts = attempt
		err := o.runAttempt(ctx, st, job, input, attempt)
		if err == nil {
			oc.Status = "done"
			return oc
		}
		oc.Err = err.Error()
		if ctx.Err() != nil {
			oc.Status = "skipped"
			return oc
		}
		fmt.Fprintf(o.Log, "ibcamp: job %s attempt %d/%d failed: %v\n", job.Hash[:12], attempt, maxAttempts, err)
		if attempt < maxAttempts {
			select {
			case <-ctx.Done():
				oc.Status = "skipped"
				return oc
			case <-time.After(backoffDelay(job.Hash, attempt, o.BackoffBase, o.BackoffMax)):
			}
		}
	}
	oc.Status = "failed"
	return oc
}

// runAttempt spawns one worker process for the job and supervises it.
// Success is defined by the store, not the exit status: the attempt
// succeeded iff a verified entry for the job's hash exists afterwards.
// That makes every crash mode safe — a worker killed after its atomic
// Put counts as success; one killed before it counts as a clean
// failure with no torn artifact either way.
func (o Options) runAttempt(ctx context.Context, st *Store, job Job, input []byte, attempt int) error {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	var timedOut, hung atomic.Bool
	tmo := time.AfterFunc(o.Timeout, func() { timedOut.Store(true); cancel() })
	defer tmo.Stop()

	cmd := exec.CommandContext(actx, o.WorkerCmd[0], o.WorkerCmd[1:]...)
	cmd.Env = append(os.Environ(), "IBCAMP_STORE="+st.Dir())
	cmd.Env = append(cmd.Env, o.Env...)
	cmd.Stdin = bytes.NewReader(input)
	cmd.Stderr = o.Log
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	// The hung-worker watchdog arms at spawn and re-arms per heartbeat;
	// firing cancels actx, which kills the process group member.
	hang := time.AfterFunc(o.HungAfter, func() { hung.Store(true); cancel() })
	defer hang.Stop()
	if o.hooks.onSpawn != nil {
		o.hooks.onSpawn(job.Hash, attempt, cmd)
	}

	sawOK := false
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "hb":
			hang.Reset(o.HungAfter)
			if o.hooks.onHeartbeat != nil {
				o.hooks.onHeartbeat(job.Hash, attempt, cmd)
			}
		case strings.HasPrefix(line, "ok "):
			sawOK = true
		}
	}
	werr := cmd.Wait()

	if _, gerr := st.Get(job.Hash); gerr == nil {
		return nil
	}
	switch {
	case hung.Load():
		return fmt.Errorf("worker hung: no heartbeat for %v", o.HungAfter)
	case timedOut.Load():
		return fmt.Errorf("worker exceeded the %v attempt timeout", o.Timeout)
	case werr != nil:
		return fmt.Errorf("worker: %v", werr)
	case sawOK:
		return fmt.Errorf("worker reported ok but stored no verifiable result")
	default:
		return fmt.Errorf("worker exited without storing a result")
	}
}

// backoffDelay computes the wait before retry number attempt+1:
// BackoffBase doubled per prior attempt, saturated at BackoffMax, with
// a deterministic jitter drawn from the job hash and attempt number —
// reproducible (no wall-clock entropy) yet decorrelated across jobs,
// so a burst of co-failing jobs doesn't re-spawn in lockstep.
func backoffDelay(hash string, attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 1; i < attempt; i++ {
		if d >= max/2 {
			d = max
			break
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	var seed uint64
	if raw, err := hex.DecodeString(hash[:16]); err == nil && len(raw) == 8 {
		seed = binary.BigEndian.Uint64(raw)
	}
	rng := sim.NewRNG(seed ^ uint64(attempt)*0x9E3779B97F4A7C15)
	if half := d / 2; half > 0 {
		d = half + time.Duration(rng.Uint64()%uint64(half))
	}
	return d
}

package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMain doubles as the worker re-exec shim: when a coordinator
// under test spawns this test binary with IBCAMP_TEST_WORKER set, the
// process becomes a campaign worker (or a misbehaving stand-in)
// instead of running the suite — the same process-isolation boundary
// ibcamp relies on, so tests can SIGKILL workers without touching the
// test process.
func TestMain(m *testing.M) {
	switch os.Getenv("IBCAMP_TEST_WORKER") {
	case "worker":
		os.Exit(WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	case "fail":
		fmt.Fprintln(os.Stderr, "ibcamp test worker: induced failure")
		os.Exit(1)
	case "hang":
		// No heartbeat, no exit: the hung-worker watchdog's prey.
		time.Sleep(time.Minute)
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testOpts builds coordinator options that re-exec this test binary in
// the given worker mode, with fast heartbeats and tight backoff.
func testOpts(t *testing.T, mode string) Options {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Workers:     2,
		Timeout:     time.Minute,
		Retries:     2,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		HungAfter:   10 * time.Second,
		WorkerCmd:   []string{exe},
		Env:         []string{"IBCAMP_TEST_WORKER=" + mode, "IBCAMP_HB_MS=10"},
		Log:         &testLogWriter{t: t},
	}
}

type testLogWriter struct{ t *testing.T }

func (w *testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

func testPlan(t *testing.T) *Plan {
	t.Helper()
	spec, err := ParseSpec([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func tableBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	if rep.Table == nil {
		t.Fatal("report has no table")
	}
	var buf bytes.Buffer
	if err := rep.Table.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignEndToEnd: a two-job campaign completes through real
// worker subprocesses, the rerun serves everything from the store, and
// both aggregate byte-identically.
func TestCampaignEndToEnd(t *testing.T) {
	plan := testPlan(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), plan, st, testOpts(t, "worker"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != len(plan.Jobs) || rep.Cached != 0 {
		t.Fatalf("first run: done=%d cached=%d, want %d/0", rep.Done, rep.Cached, len(plan.Jobs))
	}
	first := tableBytes(t, rep)

	rep2, err := Run(context.Background(), plan, st, testOpts(t, "worker"))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Done != 0 || rep2.Cached != len(plan.Jobs) {
		t.Fatalf("rerun: done=%d cached=%d, want 0/%d", rep2.Done, rep2.Cached, len(plan.Jobs))
	}
	if !bytes.Equal(first, tableBytes(t, rep2)) {
		t.Fatalf("cached rerun table differs:\n%s\nvs\n%s", first, tableBytes(t, rep2))
	}
	if n, torn, err := st.Verify(); err != nil || n != len(plan.Jobs) || len(torn) != 0 {
		t.Fatalf("Verify = (%d, %v, %v)", n, torn, err)
	}
}

// TestWorkerSIGKILLMidJobRetriesCleanly is the crash-path acceptance
// test: SIGKILL a worker mid-job and require (a) the job is retried
// and the campaign completes, (b) the store holds no torn or invalid
// artifact, and (c) the resumed campaign's aggregate is byte-identical
// to an uninterrupted run's.
func TestWorkerSIGKILLMidJobRetriesCleanly(t *testing.T) {
	plan := testPlan(t)

	cleanStore, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cleanRep, err := Run(context.Background(), plan, cleanStore, testOpts(t, "worker"))
	if err != nil {
		t.Fatal(err)
	}
	clean := tableBytes(t, cleanRep)

	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts(t, "worker")
	var killed atomic.Bool
	// The worker heartbeats immediately on start and every 10ms during
	// the simulation, so the first heartbeat is mid-job by protocol.
	opts.hooks.onHeartbeat = func(hash string, attempt int, cmd *exec.Cmd) {
		if killed.CompareAndSwap(false, true) {
			if err := cmd.Process.Kill(); err != nil {
				t.Errorf("kill: %v", err)
			}
		}
	}
	rep, err := Run(context.Background(), plan, st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !killed.Load() {
		t.Fatal("test never killed a worker")
	}
	if rep.Retried < 1 {
		t.Fatalf("killed worker was not retried: %+v", rep.Outcomes)
	}
	if rep.Done != len(plan.Jobs) {
		t.Fatalf("campaign did not complete: %+v", rep)
	}
	n, torn, err := st.Verify()
	if err != nil {
		t.Fatalf("store corrupt after SIGKILL: %v", err)
	}
	if len(torn) != 0 {
		t.Fatalf("torn artifacts after SIGKILL: %v", torn)
	}
	if n != len(plan.Jobs) {
		t.Fatalf("store holds %d entries, want %d", n, len(plan.Jobs))
	}
	if got := tableBytes(t, rep); !bytes.Equal(clean, got) {
		t.Fatalf("post-crash aggregate differs from clean run:\n%s\nvs\n%s", clean, got)
	}
}

// TestResumeSkipsPrepopulatedJobs: results landed by an earlier
// (interrupted) campaign — here, a worker run in-process — are served
// from the store and the finished table still matches a clean run.
func TestResumeSkipsPrepopulatedJobs(t *testing.T) {
	plan := testPlan(t)
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Complete job 0 the way a worker would, then "crash" (do nothing
	// else). WorkerMain is the real entry point, run in-process.
	t.Setenv("IBCAMP_STORE", dir)
	input, err := json.Marshal(plan.Jobs[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := WorkerMain(bytes.NewReader(input), &out, &errb); code != 0 {
		t.Fatalf("WorkerMain = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "ok "+plan.Jobs[0].Hash) {
		t.Fatalf("worker protocol output missing ok line: %q", out.String())
	}

	rep, err := Run(context.Background(), plan, st, testOpts(t, "worker"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cached != 1 || rep.Done != len(plan.Jobs)-1 {
		t.Fatalf("resume: cached=%d done=%d, want 1/%d", rep.Cached, rep.Done, len(plan.Jobs)-1)
	}

	cleanStore, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cleanRep, err := Run(context.Background(), plan, cleanStore, testOpts(t, "worker"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tableBytes(t, cleanRep), tableBytes(t, rep)) {
		t.Fatal("resumed table differs from clean run")
	}
}

// TestCorruptEntryIsEvictedAndRerun: a bit-flipped artifact must not
// be served; the coordinator evicts and reruns it.
func TestCorruptEntryIsEvictedAndRerun(t *testing.T) {
	plan := testPlan(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), plan, st, testOpts(t, "worker")); err != nil {
		t.Fatal(err)
	}
	path := st.entryPath(plan.Jobs[0].Hash)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), plan, st, testOpts(t, "worker"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 1 || rep.Cached != len(plan.Jobs)-1 {
		t.Fatalf("corrupt entry not rerun: done=%d cached=%d", rep.Done, rep.Cached)
	}
	if _, _, err := st.Verify(); err != nil {
		t.Fatalf("store still corrupt: %v", err)
	}
}

// TestDegradeModeAnnotatesMissing: with every worker failing, degrade
// mode still aggregates — empty cells carry explicit missing-seed
// annotations instead of numbers.
func TestDegradeModeAnnotatesMissing(t *testing.T) {
	plan := testPlan(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts(t, "fail")
	opts.Retries = -1 // single attempt per job
	opts.Degrade = true
	rep, err := Run(context.Background(), plan, st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != len(plan.Jobs) {
		t.Fatalf("failed=%d, want %d", rep.Failed, len(plan.Jobs))
	}
	cell := rep.Table.Cells[0]
	if cell.N != 0 || len(cell.MissingSeeds) != 2 {
		t.Fatalf("cell = %+v, want 0 results and 2 missing seeds", cell)
	}
	out := string(tableBytes(t, rep))
	if !strings.Contains(out, "0/2\t1,2\t-\t-\t-\t-\t-\t-") {
		t.Fatalf("degraded table lacks the missing annotation:\n%s", out)
	}
}

// TestFailedJobsFailTheCampaignWithoutDegrade: exhausting the retry
// budget is an error unless degrade was requested, and the message
// points at resume.
func TestFailedJobsFailTheCampaignWithoutDegrade(t *testing.T) {
	plan := testPlan(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts(t, "fail")
	opts.Retries = -1
	rep, err := Run(context.Background(), plan, st, opts)
	if err == nil || !strings.Contains(err.Error(), "exhausted their retry budget") {
		t.Fatalf("Run = %v, want retry-budget error", err)
	}
	if rep == nil || rep.Failed != len(plan.Jobs) {
		t.Fatalf("report = %+v", rep)
	}
}

// TestHungWorkerIsKilled: a worker that stops heartbeating is killed
// by the watchdog and the attempt is classified as hung.
func TestHungWorkerIsKilled(t *testing.T) {
	plan := testPlan(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts(t, "hang")
	opts.Retries = -1
	opts.HungAfter = 50 * time.Millisecond
	opts.Degrade = true
	rep, err := Run(context.Background(), plan, st, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range rep.Outcomes {
		if oc.Status != "failed" || !strings.Contains(oc.Err, "hung") {
			t.Fatalf("outcome = %+v, want hung failure", oc)
		}
	}
}

// TestAttemptTimeoutKills: the per-attempt wall clock fires even when
// heartbeats keep the hang watchdog quiet — here the inverse: a silent
// worker against a generous hang budget still dies at the timeout.
func TestAttemptTimeoutKills(t *testing.T) {
	plan := testPlan(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts(t, "hang")
	opts.Retries = -1
	opts.Timeout = 50 * time.Millisecond
	opts.HungAfter = time.Minute
	opts.Degrade = true
	rep, err := Run(context.Background(), plan, st, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range rep.Outcomes {
		if oc.Status != "failed" || !strings.Contains(oc.Err, "timeout") {
			t.Fatalf("outcome = %+v, want timeout failure", oc)
		}
	}
}

// TestInterruptedRunReportsResumable: a canceled context ends the
// campaign with a resumable error, not a table.
func TestInterruptedRunReportsResumable(t *testing.T) {
	plan := testPlan(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, plan, st, testOpts(t, "worker"))
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("Run on canceled ctx = %v, want interrupted error", err)
	}
	if rep.Skipped != len(plan.Jobs) {
		t.Fatalf("skipped=%d, want %d", rep.Skipped, len(plan.Jobs))
	}
}

// TestBackoffDelayDeterministicAndBounded: the jittered backoff is a
// pure function of (hash, attempt) and stays within [base/2, max].
func TestBackoffDelayDeterministicAndBounded(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	h1, h2 := testHash(1), testHash(2)
	for attempt := 1; attempt <= 8; attempt++ {
		d := backoffDelay(h1, attempt, base, max)
		if d != backoffDelay(h1, attempt, base, max) {
			t.Fatalf("backoff not deterministic at attempt %d", attempt)
		}
		if d < base/2 || d > max {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, base/2, max)
		}
	}
	if backoffDelay(h1, 1, base, max) == backoffDelay(h2, 1, base, max) {
		t.Fatal("different jobs share a jitter (suspicious; seeds should decorrelate)")
	}
}

package campaign

import (
	"strings"
	"testing"
)

const tinySpec = `{
  "name": "tiny",
  "sizes": [8],
  "links": 4,
  "mr": 2,
  "packetSizes": [32],
  "seeds": 2,
  "loadLo": 0.01,
  "warmupNs": 2000,
  "measureNs": 10000,
  "drainGraceNs": 2000
}`

func TestParseSpecStrict(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"unknown-field", `{"name":"x","sizes":[8],"links":4,"mr":2,"packetSizes":[32],"loadLo":0.01,"bogus":1}`, "unknown field"},
		{"trailing-garbage", tinySpec + `{"again":true}`, "trailing data"},
		{"no-sizes", `{"name":"x","sizes":[],"links":4,"mr":2,"packetSizes":[32],"loadLo":0.01}`, "no sizes"},
		{"bad-links", `{"name":"x","sizes":[8],"links":0,"mr":2,"packetSizes":[32],"loadLo":0.01}`, "links 0"},
		{"bad-load", `{"name":"x","sizes":[8],"links":4,"mr":2,"packetSizes":[32],"loadLo":-1}`, "loadLo"},
		{"load-hi-below-lo", `{"name":"x","sizes":[8],"links":4,"mr":2,"packetSizes":[32],"loadLo":0.1,"loadHi":0.01,"loadPoints":3}`, "loadHi"},
		{"bad-pattern", `{"name":"x","sizes":[8],"links":4,"mr":2,"packetSizes":[32],"loadLo":0.01,"patterns":["zipf"]}`, "unknown pattern"},
		{"wrong-schema", `{"schema":9,"name":"x","sizes":[8],"links":4,"mr":2,"packetSizes":[32],"loadLo":0.01}`, "spec schema 9"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.json))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParseSpec = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"name":"d","sizes":[8],"links":4,"mr":2,"packetSizes":[32],"loadLo":0.01}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Schema != SpecSchemaVersion || s.Seeds != 1 || s.FirstSeed != 1 || s.LoadPoints != 1 {
		t.Fatalf("defaults not filled: %+v", s)
	}
	if len(s.Patterns) != 1 || s.Patterns[0] != "uniform" {
		t.Fatalf("default patterns = %v", s.Patterns)
	}
	if len(s.AdaptiveFractions) != 1 || s.AdaptiveFractions[0] != 1 {
		t.Fatalf("default fractions = %v", s.AdaptiveFractions)
	}
	if s.MeasureNs == 0 || s.WarmupNs == 0 {
		t.Fatalf("default window not filled: %+v", s)
	}
}

func TestExpandPlanShape(t *testing.T) {
	s, err := ParseSpec([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 1 size x 1 pkt x 1 pattern x 1 fraction x 1 load x 2 seeds.
	if len(plan.Jobs) != 2 || len(plan.Groups) != 1 {
		t.Fatalf("plan = %d jobs / %d groups, want 2/1", len(plan.Jobs), len(plan.Groups))
	}
	g := plan.Groups[0]
	if len(g.JobIdx) != 2 || g.Seeds[0] != 1 || g.Seeds[1] != 2 {
		t.Fatalf("group deps = %v seeds %v", g.JobIdx, g.Seeds)
	}
	for _, j := range plan.Jobs {
		if j.Hash != j.Spec.Hash() {
			t.Fatalf("planned hash %s does not match spec hash %s", j.Hash, j.Spec.Hash())
		}
	}
}

// TestExpandDedupsIdenticalCells: listing the same adaptive fraction
// twice plans two groups that share the same underlying jobs — dedup
// by content address, the "repeated jobs are free" property.
func TestExpandDedupsIdenticalCells(t *testing.T) {
	s, err := ParseSpec([]byte(`{
	  "name": "dup", "sizes": [8], "links": 4, "mr": 2,
	  "packetSizes": [32], "seeds": 2, "loadLo": 0.01,
	  "adaptiveFractions": [1, 1]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(plan.Groups))
	}
	if len(plan.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2 (the duplicate cell must dedup)", len(plan.Jobs))
	}
	for i := range plan.Groups[0].JobIdx {
		if plan.Groups[0].JobIdx[i] != plan.Groups[1].JobIdx[i] {
			t.Fatalf("duplicate groups do not share jobs: %v vs %v",
				plan.Groups[0].JobIdx, plan.Groups[1].JobIdx)
		}
	}
}

// TestExpandExecDoesNotMoveHashes: the same sweep planned with
// different execution hints must address the same artifacts, so a
// store populated by a sequential campaign satisfies a sharded rerun.
func TestExpandExecDoesNotMoveHashes(t *testing.T) {
	seq, err := ParseSpec([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	shardJSON := strings.Replace(tinySpec, `"name": "tiny",`,
		`"name": "tiny", "exec": {"engine": "shard", "shards": 4},`, 1)
	shard, err := ParseSpec([]byte(shardJSON))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := seq.Expand()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := shard.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Jobs) != len(p2.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(p1.Jobs), len(p2.Jobs))
	}
	for i := range p1.Jobs {
		if p1.Jobs[i].Hash != p2.Jobs[i].Hash {
			t.Fatalf("job %d: exec hints moved the hash: %s vs %s", i, p1.Jobs[i].Hash, p2.Jobs[i].Hash)
		}
	}
}

package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ibasim/internal/experiments"
)

// ArtifactSchemaVersion versions the worker's result encoding stored
// in the store body.
const ArtifactSchemaVersion = 1

// Artifact is the store body a worker writes for a completed job: the
// run's result stamped with the input address it answers for.
// RunResult serializes with ShardStats already cleared (Execute
// guarantees it), so the bytes are engine-invariant.
type Artifact struct {
	Schema int                   `json:"schema"`
	Input  string                `json:"input"`
	Result experiments.RunResult `json:"result"`
}

// EncodeArtifact builds the canonical store body for a result.
func EncodeArtifact(hash string, res experiments.RunResult) ([]byte, error) {
	res.ShardStats = nil
	return json.Marshal(Artifact{Schema: ArtifactSchemaVersion, Input: hash, Result: res})
}

// DecodeArtifact strictly parses a store body and checks that it
// answers for the expected input hash.
func DecodeArtifact(body []byte, wantHash string) (*Artifact, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var a Artifact
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("%w: %s: bad artifact: %v", ErrCorrupt, wantHash, err)
	}
	if a.Schema != ArtifactSchemaVersion {
		return nil, fmt.Errorf("%w: %s: artifact schema %d, want %d", ErrCorrupt, wantHash, a.Schema, ArtifactSchemaVersion)
	}
	if a.Input != wantHash {
		return nil, fmt.Errorf("%w: %s: artifact answers for %s", ErrCorrupt, wantHash, a.Input)
	}
	return &a, nil
}

// Cell is one aggregated row: a group's min/avg/max over the seeds
// whose results were available. In degrade mode missing seeds are
// annotated per cell instead of failing the aggregation.
type Cell struct {
	Group
	N            int      // results aggregated
	MissingSeeds []uint64 // seeds with no stored result (degrade mode)

	AccMin, AccAvg, AccMax float64 // accepted bytes/ns/switch
	LatMin, LatAvg, LatMax float64 // avg latency ns

	// Retry diagnostics summed/maxed over the aggregated seeds.
	Retries     uint64
	MaxAttempts int
}

// Table is the campaign's aggregate artifact.
type Table struct {
	Spec  *Spec
	Cells []Cell
}

// Aggregate folds stored results into the per-group table. get fetches
// an artifact body by content address — the store's Get, or an
// in-memory map for the in-process oracle. A missing result fails the
// aggregation unless degrade is set, in which case the cell records
// the missing seeds and aggregates what exists; a corrupt result
// always fails.
func Aggregate(plan *Plan, get func(hash string) ([]byte, error), degrade bool) (*Table, error) {
	t := &Table{Spec: plan.Spec}
	for _, g := range plan.Groups {
		cell := Cell{Group: g}
		for i, idx := range g.JobIdx {
			job := plan.Jobs[idx]
			body, err := get(job.Hash)
			if err != nil {
				if degrade && errors.Is(err, ErrNotFound) {
					cell.MissingSeeds = append(cell.MissingSeeds, g.Seeds[i])
					continue
				}
				return nil, fmt.Errorf("campaign: aggregate (size %d seed %d): %w", g.Size, g.Seeds[i], err)
			}
			art, err := DecodeArtifact(body, job.Hash)
			if err != nil {
				return nil, fmt.Errorf("campaign: aggregate (size %d seed %d): %w", g.Size, g.Seeds[i], err)
			}
			r := art.Result
			if cell.N == 0 {
				cell.AccMin, cell.AccMax = r.AcceptedPerSwitch, r.AcceptedPerSwitch
				cell.LatMin, cell.LatMax = r.AvgLatencyNs, r.AvgLatencyNs
			} else {
				cell.AccMin = min(cell.AccMin, r.AcceptedPerSwitch)
				cell.AccMax = max(cell.AccMax, r.AcceptedPerSwitch)
				cell.LatMin = min(cell.LatMin, r.AvgLatencyNs)
				cell.LatMax = max(cell.LatMax, r.AvgLatencyNs)
			}
			cell.AccAvg += r.AcceptedPerSwitch
			cell.LatAvg += r.AvgLatencyNs
			cell.Retries += r.Retry.Retries
			if r.Retry.MaxAttempts > cell.MaxAttempts {
				cell.MaxAttempts = r.Retry.MaxAttempts
			}
			cell.N++
		}
		if cell.N > 0 {
			cell.AccAvg /= float64(cell.N)
			cell.LatAvg /= float64(cell.N)
		}
		t.Cells = append(t.Cells, cell)
	}
	return t, nil
}

// missingCol renders a cell's missing-seed annotation: "-" when
// complete, the comma-joined seed list otherwise.
func missingCol(c Cell) string {
	if len(c.MissingSeeds) == 0 {
		return "-"
	}
	parts := make([]string, len(c.MissingSeeds))
	for i, s := range c.MissingSeeds {
		parts[i] = strconv.FormatUint(s, 10)
	}
	return strings.Join(parts, ",")
}

// stat renders an aggregated statistic, "-" when no seed contributed.
func stat(n int, format string, v float64) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf(format, v)
}

// Write prints the table in a fixed, byte-stable layout: an
// interrupted-then-resumed campaign and an uninterrupted one produce
// identical bytes, which the CI smoke test diffs.
func (t *Table) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# campaign %s: min/avg/max over %d seed(s), job schema %d\n",
		t.Spec.Name, t.Spec.Seeds, experiments.JobSchemaVersion); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# size\tpkt\tpattern\tfrac\tload\tok\tmissing\tacc-min\tacc-avg\tacc-max\tlat-min\tlat-avg\tlat-max\tretries\tmax-att"); err != nil {
		return err
	}
	for _, c := range t.Cells {
		_, err := fmt.Fprintf(w, "%d\t%d\t%s\t%.2f\t%.4f\t%d/%d\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%d\t%d\n",
			c.Size, c.PacketSize, c.Pattern.String(), c.AdaptiveFraction, c.Load,
			c.N, len(c.JobIdx), missingCol(c),
			stat(c.N, "%.4f", c.AccMin), stat(c.N, "%.4f", c.AccAvg), stat(c.N, "%.4f", c.AccMax),
			stat(c.N, "%.1f", c.LatMin), stat(c.N, "%.1f", c.LatAvg), stat(c.N, "%.1f", c.LatMax),
			c.Retries, c.MaxAttempts)
		if err != nil {
			return err
		}
	}
	return nil
}

package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"ibasim"
	"ibasim/internal/experiments"
)

// Worker protocol. The coordinator re-execs this binary as
// `ibcamp worker` with the JobSpec JSON on stdin and two environment
// knobs:
//
//	IBCAMP_STORE   result store directory (required)
//	IBCAMP_HB_MS   heartbeat interval in ms (default 500)
//
// The worker emits "hb\n" on stdout immediately and then every
// interval while the simulation runs, writes the artifact to the
// store, prints "ok <hash>\n" and exits 0. Everything human-readable
// goes to stderr. Because the job runs in its own process, a panic,
// OOM kill or SIGKILL costs exactly one attempt of one job — the
// coordinator's watchdog sees the heartbeats stop and retries.

// DefaultHeartbeat is the worker heartbeat interval when IBCAMP_HB_MS
// is unset.
const DefaultHeartbeat = 500 * time.Millisecond

// WorkerMain is the `ibcamp worker` entry point; returns the process
// exit code. Exit 2 marks protocol/spec errors (not worth retrying in
// principle, though the coordinator treats every nonzero exit the
// same: retry up to the budget).
func WorkerMain(stdin io.Reader, stdout, stderr io.Writer) int {
	storeDir := os.Getenv("IBCAMP_STORE")
	if storeDir == "" {
		fmt.Fprintln(stderr, "ibcamp worker: IBCAMP_STORE not set")
		return 2
	}
	hb := DefaultHeartbeat
	if ms := os.Getenv("IBCAMP_HB_MS"); ms != "" {
		v, err := strconv.Atoi(ms)
		if err != nil || v <= 0 {
			fmt.Fprintf(stderr, "ibcamp worker: bad IBCAMP_HB_MS %q\n", ms)
			return 2
		}
		hb = time.Duration(v) * time.Millisecond
	}
	st, err := Open(storeDir)
	if err != nil {
		fmt.Fprintln(stderr, "ibcamp worker:", err)
		return 2
	}
	data, err := io.ReadAll(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "ibcamp worker: reading job:", err)
		return 2
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var job experiments.JobSpec
	if err := dec.Decode(&job); err != nil {
		fmt.Fprintln(stderr, "ibcamp worker: bad job JSON:", err)
		return 2
	}
	job.Normalize()
	if err := job.Validate(); err != nil {
		fmt.Fprintln(stderr, "ibcamp worker:", err)
		return 2
	}
	// The campaign layer owns FeatureSet validation of the execution
	// hints (the experiments package can't import the root package
	// without a cycle).
	fs := ibasim.FeatureSet{
		Engine: job.Exec.Engine, Shards: job.Exec.Shards,
		LagNs: job.LagNs, Check: job.Exec.Check, Campaign: true,
	}
	if err := fs.Validate(); err != nil {
		fmt.Fprintln(stderr, "ibcamp worker:", err)
		return 2
	}
	hash := job.Hash()

	// stdout is the protocol channel; one mutex serializes heartbeats
	// against the final ok line.
	var mu sync.Mutex
	emit := func(line string) {
		mu.Lock()
		fmt.Fprintln(stdout, line)
		mu.Unlock()
	}

	// Worker-level dedup: a previous attempt (or a concurrent
	// campaign sharing the store) may already have landed this entry.
	if _, err := st.Get(hash); err == nil {
		emit("ok " + hash)
		return 0
	}

	emit("hb")
	stop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tick := time.NewTicker(hb)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				emit("hb")
			case <-stop:
				return
			}
		}
	}()

	res, runErr := job.Execute()
	close(stop)
	hbWG.Wait()
	if runErr != nil {
		fmt.Fprintln(stderr, "ibcamp worker:", runErr)
		return 1
	}
	body, err := EncodeArtifact(hash, res)
	if err != nil {
		fmt.Fprintln(stderr, "ibcamp worker: encoding artifact:", err)
		return 1
	}
	if err := st.Put(hash, body); err != nil {
		fmt.Fprintln(stderr, "ibcamp worker:", err)
		return 1
	}
	emit("ok " + hash)
	return 0
}

package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testHash(b byte) string {
	return strings.Repeat(string([]byte{"0123456789abcdef"[b&0xf]}), 64)
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hash := testHash(0xa)
	body := []byte(`{"hello":"world"}`)
	if _, err := st.Get(hash); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store = %v, want ErrNotFound", err)
	}
	if err := st.Put(hash, body); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(hash)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(body) {
		t.Fatalf("Get = %q, want %q", got, body)
	}
	n, torn, err := st.Verify()
	if err != nil || n != 1 || len(torn) != 0 {
		t.Fatalf("Verify = (%d, %v, %v), want (1, [], nil)", n, torn, err)
	}
}

func TestStoreRejectsBadHash(t *testing.T) {
	st, _ := Open(t.TempDir())
	for _, h := range []string{"", "abc", strings.Repeat("g", 64), "../../etc/passwd"} {
		if err := st.Put(h, nil); err == nil {
			t.Fatalf("Put(%q) accepted a bad hash", h)
		}
		if _, err := st.Get(h); err == nil || errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(%q) = %v, want a bad-hash error", h, err)
		}
	}
}

func TestStoreDetectsCorruption(t *testing.T) {
	st, _ := Open(t.TempDir())
	hash := testHash(0xb)
	if err := st.Put(hash, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	path := st.entryPath(hash)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte of the body; the checksum must catch it.
	data[len(data)-2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(hash); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on corrupted entry = %v, want ErrCorrupt", err)
	}
	if _, _, err := st.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify on corrupted store = %v, want ErrCorrupt", err)
	}
	if err := st.Remove(hash); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(hash); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Remove = %v, want ErrNotFound", err)
	}
}

func TestStoreDetectsMisfiledEntry(t *testing.T) {
	st, _ := Open(t.TempDir())
	a, b := testHash(0xc), testHash(0xd)
	if err := st.Put(a, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	// Copy a's entry to b's path: checksums pass, input hash must not.
	data, _ := os.ReadFile(st.entryPath(a))
	os.MkdirAll(filepath.Dir(st.entryPath(b)), 0o755)
	os.WriteFile(st.entryPath(b), data, 0o644)
	if _, err := st.Get(b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on misfiled entry = %v, want ErrCorrupt", err)
	}
}

func TestStoreSweepTorn(t *testing.T) {
	st, _ := Open(t.TempDir())
	hash := testHash(0xe)
	if err := st.Put(hash, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	// A writer died mid-Put: its temp file survives.
	dir := filepath.Dir(st.entryPath(hash))
	tornPath := filepath.Join(dir, tmpPrefix+"12345")
	if err := os.WriteFile(tornPath, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, torn, err := st.Verify()
	if err != nil || n != 1 || len(torn) != 1 {
		t.Fatalf("Verify = (%d, %v, %v), want 1 entry and 1 torn file", n, torn, err)
	}
	removed, err := st.SweepTorn()
	if err != nil || len(removed) != 1 {
		t.Fatalf("SweepTorn = (%v, %v), want 1 removal", removed, err)
	}
	if _, err := os.Stat(tornPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("torn file survived the sweep: %v", err)
	}
	if _, err := st.Get(hash); err != nil {
		t.Fatalf("sweep damaged a real entry: %v", err)
	}
}

package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"ibasim/internal/experiments"
)

// SpecSchemaVersion is the campaign spec format version (independent of
// the job canonical-input schema, which governs the store).
const SpecSchemaVersion = 1

// Spec is the JSON description of a campaign: a cross-product sweep
// over sizes × packet sizes × patterns × adaptive fractions × loads,
// each cell replicated across Seeds random topologies. Expand turns it
// into the job DAG.
type Spec struct {
	Schema int    `json:"schema"`
	Name   string `json:"name"`

	// Topology family.
	Sizes          []int `json:"sizes"`
	HostsPerSwitch int   `json:"hostsPerSwitch,omitempty"` // 0 = 4
	Links          int   `json:"links"`

	// Routing.
	MR int `json:"mr"`
	// Deterministic runs the stock deterministic subnet instead of the
	// paper's enhanced adaptive switches.
	Deterministic bool `json:"deterministic,omitempty"`

	// Workload axes.
	PacketSizes       []int     `json:"packetSizes"`
	Patterns          []string  `json:"patterns,omitempty"`          // ParsePattern grammar; default ["uniform"]
	AdaptiveFractions []float64 `json:"adaptiveFractions,omitempty"` // default [1]

	// Replication: Seeds topologies starting at FirstSeed; the topology
	// seed doubles as the run seed, mirroring the harnesses.
	Seeds     int    `json:"seeds"`
	FirstSeed uint64 `json:"firstSeed,omitempty"` // 0 = 1

	// Load grid (bytes/ns/host), geometric from Lo to Hi.
	LoadLo     float64 `json:"loadLo"`
	LoadHi     float64 `json:"loadHi"`
	LoadPoints int     `json:"loadPoints"`

	// Measurement window (ns); zero values take the quick-scale defaults.
	WarmupNs     int64 `json:"warmupNs,omitempty"`
	MeasureNs    int64 `json:"measureNs,omitempty"`
	DrainGraceNs int64 `json:"drainGraceNs,omitempty"`

	// LagNs opts sharded execution into relaxed exactness (hashed).
	LagNs int64 `json:"lagNs,omitempty"`

	// Faults is a compact fault-campaign spec applied to every run.
	Faults    string `json:"faults,omitempty"`
	FaultSeed uint64 `json:"faultSeed,omitempty"`

	// Exec hints apply to every job; excluded from content hashes.
	Exec experiments.ExecSpec `json:"exec,omitempty"`
}

// ParseSpec strictly decodes a campaign spec: unknown fields and
// trailing garbage are rejected, then defaults are filled and the spec
// validated.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("campaign: bad spec JSON: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("campaign: trailing data after spec JSON")
	}
	s.fillDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func (s *Spec) fillDefaults() {
	if s.Schema == 0 {
		s.Schema = SpecSchemaVersion
	}
	if len(s.Patterns) == 0 {
		s.Patterns = []string{"uniform"}
	}
	if len(s.AdaptiveFractions) == 0 {
		s.AdaptiveFractions = []float64{1}
	}
	if s.Seeds == 0 {
		s.Seeds = 1
	}
	if s.FirstSeed == 0 {
		s.FirstSeed = 1
	}
	if s.LoadPoints == 0 {
		s.LoadPoints = 1
	}
	q := experiments.QuickScale()
	if s.WarmupNs == 0 {
		s.WarmupNs = int64(q.Warmup)
	}
	if s.MeasureNs == 0 {
		s.MeasureNs = int64(q.Measure)
	}
	if s.DrainGraceNs == 0 {
		s.DrainGraceNs = int64(q.DrainGrace)
	}
}

func (s *Spec) validate() error {
	if s.Schema != SpecSchemaVersion {
		return fmt.Errorf("campaign: spec schema %d, this build speaks %d", s.Schema, SpecSchemaVersion)
	}
	if len(s.Sizes) == 0 {
		return fmt.Errorf("campaign: spec has no sizes")
	}
	if len(s.PacketSizes) == 0 {
		return fmt.Errorf("campaign: spec has no packetSizes")
	}
	if s.Links <= 0 {
		return fmt.Errorf("campaign: links %d must be positive", s.Links)
	}
	if s.MR < 1 {
		return fmt.Errorf("campaign: mr %d must be >= 1", s.MR)
	}
	if s.Seeds < 1 {
		return fmt.Errorf("campaign: seeds %d must be >= 1", s.Seeds)
	}
	if math.IsNaN(s.LoadLo) || math.IsInf(s.LoadLo, 0) || s.LoadLo <= 0 {
		return fmt.Errorf("campaign: loadLo %v must be positive and finite", s.LoadLo)
	}
	if s.LoadPoints > 1 && (math.IsNaN(s.LoadHi) || math.IsInf(s.LoadHi, 0) || s.LoadHi < s.LoadLo) {
		return fmt.Errorf("campaign: loadHi %v must be finite and >= loadLo %v", s.LoadHi, s.LoadLo)
	}
	for _, p := range s.Patterns {
		if _, err := experiments.ParsePattern(p); err != nil {
			return fmt.Errorf("campaign: %v", err)
		}
	}
	return nil
}

// Job is one node of the plan: a run job plus its content address.
type Job struct {
	Spec experiments.JobSpec
	Hash string
}

// Group is one aggregate node of the DAG: a parameter cell whose stats
// are computed min/avg/max over seeds once its run jobs complete.
// JobIdx[i] (a Plan.Jobs index) carries seed Seeds[i]; indexes repeat
// when seed replicas dedup to one content address.
type Group struct {
	Size             int
	PacketSize       int
	Pattern          experiments.PatternSpec
	AdaptiveFraction float64
	Load             float64
	JobIdx           []int
	Seeds            []uint64
}

// Plan is the expanded campaign: the deduplicated job list (DAG
// leaves) and the aggregate groups that depend on them. Expansion
// order is deterministic — sizes, packet sizes, patterns, fractions,
// loads, seeds, exactly as the spec lists them — so two coordinators
// expanding the same spec agree on job indexes and table row order.
type Plan struct {
	Spec   *Spec
	Jobs   []Job
	Groups []Group
}

// Expand builds the plan: every parameter cell becomes a Group, every
// (cell, seed) a JobSpec hashed to its content address; jobs that
// collapse to the same address are planned once (dedup for free).
// Every job is validated here, before any worker spawns.
func (s *Spec) Expand() (*Plan, error) {
	loads := experiments.DefaultLoads(s.LoadLo, s.LoadHi, s.LoadPoints)
	plan := &Plan{Spec: s}
	byHash := make(map[string]int)
	for _, size := range s.Sizes {
		for _, pkt := range s.PacketSizes {
			for _, pname := range s.Patterns {
				pat, err := experiments.ParsePattern(pname)
				if err != nil {
					return nil, fmt.Errorf("campaign: %v", err)
				}
				for _, frac := range s.AdaptiveFractions {
					for _, load := range loads {
						g := Group{
							Size: size, PacketSize: pkt, Pattern: pat,
							AdaptiveFraction: frac, Load: load,
						}
						for i := 0; i < s.Seeds; i++ {
							seed := s.FirstSeed + uint64(i)
							js := experiments.JobSpec{
								Switches:       size,
								HostsPerSwitch: s.HostsPerSwitch,
								Links:          s.Links,
								TopoSeed:       seed,
								MR:             s.MR,
								Enhanced:       !s.Deterministic,
								Pattern:        pat,
								PacketSize:     pkt,
								AdaptiveFraction: frac,
								Load:             load,
								Seed:             seed,
								WarmupNs:         s.WarmupNs,
								MeasureNs:        s.MeasureNs,
								DrainGraceNs:     s.DrainGraceNs,
								LagNs:            s.LagNs,
								Faults:           s.Faults,
								FaultSeed:        s.FaultSeed,
								Exec:             s.Exec,
							}
							js.Normalize()
							if err := js.Validate(); err != nil {
								return nil, fmt.Errorf("campaign: job (size %d seed %d): %w", size, seed, err)
							}
							h := js.Hash()
							idx, ok := byHash[h]
							if !ok {
								idx = len(plan.Jobs)
								byHash[h] = idx
								plan.Jobs = append(plan.Jobs, Job{Spec: js, Hash: h})
							}
							g.JobIdx = append(g.JobIdx, idx)
							g.Seeds = append(g.Seeds, seed)
						}
						plan.Groups = append(plan.Groups, g)
					}
				}
			}
		}
	}
	if len(plan.Jobs) == 0 {
		return nil, fmt.Errorf("campaign: spec expands to no jobs")
	}
	return plan, nil
}

// Package campaign is the crash-tolerant orchestration layer over the
// experiments runner: it expands a campaign spec (JSON) into a DAG of
// content-addressed jobs, fans the jobs out to a pool of worker
// subprocesses with per-job timeouts, bounded retries with jittered
// exponential backoff and a hung-worker watchdog, and lands every
// result in an atomic on-disk store keyed by the job's canonical
// input hash. A campaign interrupted at ANY point — worker SIGKILL,
// coordinator SIGTERM, machine power loss — resumes by rerunning the
// same command: completed jobs are skipped byte-exactly, repeated jobs
// dedup for free, and the aggregate artifact is byte-identical to an
// uninterrupted run's.
package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store is the content-addressed result store. Layout:
//
//	<dir>/objects/<hh>/<hash>.json      one entry per completed job
//	<dir>/objects/<hh>/.tmp-*           in-flight writes (never read)
//
// where <hash> is the job's canonical input hash (experiments.JobSpec
// Hash) and <hh> its first two hex digits. An entry is one header line
// — {"ibcampStore":1,"input":<hash>,"bodySha256":<hex>} — followed by
// the artifact body; Get verifies both hashes, so a corrupted or
// misfiled entry can never masquerade as a cached result.
//
// Durability contract: Put writes to a .tmp- file in the final
// directory, fsyncs it, renames it into place and fsyncs the
// directory. A writer killed at any instant therefore leaves either no
// entry (plus an ignored .tmp- file SweepTorn collects) or the
// complete, verified entry — never a torn artifact.
type Store struct {
	dir string
}

const (
	storeSchema = 1
	tmpPrefix   = ".tmp-"
)

var (
	// ErrNotFound reports a hash with no stored entry.
	ErrNotFound = errors.New("campaign: result not in store")
	// ErrCorrupt reports an entry that failed hash verification.
	ErrCorrupt = errors.New("campaign: corrupt store entry")
)

type entryHeader struct {
	Store int    `json:"ibcampStore"`
	Input string `json:"input"`
	Body  string `json:"bodySha256"`
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("campaign: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func validHash(hash string) bool {
	if len(hash) != 64 {
		return false
	}
	_, err := hex.DecodeString(hash)
	return err == nil
}

func (s *Store) entryPath(hash string) string {
	return filepath.Join(s.dir, "objects", hash[:2], hash+".json")
}

// Put stores body under hash atomically: temp file in the destination
// directory (same filesystem, so the rename is atomic), fsync, rename,
// directory fsync. Idempotent — a concurrent Put of the same hash
// leaves one complete entry either way.
func (s *Store) Put(hash string, body []byte) error {
	if !validHash(hash) {
		return fmt.Errorf("campaign: bad store hash %q", hash)
	}
	dir := filepath.Dir(s.entryPath(hash))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("campaign: store put: %w", err)
	}
	sum := sha256.Sum256(body)
	hdr, err := json.Marshal(entryHeader{Store: storeSchema, Input: hash, Body: hex.EncodeToString(sum[:])})
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("campaign: store put: %w", err)
	}
	tmp := f.Name()
	cleanup := func() { os.Remove(tmp) }
	for _, chunk := range [][]byte{hdr, []byte("\n"), body} {
		if _, err := f.Write(chunk); err != nil {
			f.Close()
			cleanup()
			return fmt.Errorf("campaign: store put: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		cleanup()
		return fmt.Errorf("campaign: store put: %w", err)
	}
	if err := f.Close(); err != nil {
		cleanup()
		return fmt.Errorf("campaign: store put: %w", err)
	}
	if err := os.Rename(tmp, s.entryPath(hash)); err != nil {
		cleanup()
		return fmt.Errorf("campaign: store put: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Get returns the stored body for hash after verifying the entry:
// header schema, input-hash match and body checksum. Returns
// ErrNotFound when no entry exists and an ErrCorrupt-wrapped error
// when one exists but fails verification.
func (s *Store) Get(hash string) ([]byte, error) {
	if !validHash(hash) {
		return nil, fmt.Errorf("campaign: bad store hash %q", hash)
	}
	data, err := os.ReadFile(s.entryPath(hash))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, hash)
		}
		return nil, fmt.Errorf("campaign: store get: %w", err)
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: %s: missing header line", ErrCorrupt, hash)
	}
	var hdr entryHeader
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return nil, fmt.Errorf("%w: %s: bad header: %v", ErrCorrupt, hash, err)
	}
	if hdr.Store != storeSchema {
		return nil, fmt.Errorf("%w: %s: store schema %d, want %d", ErrCorrupt, hash, hdr.Store, storeSchema)
	}
	if hdr.Input != hash {
		return nil, fmt.Errorf("%w: %s: entry claims input %s", ErrCorrupt, hash, hdr.Input)
	}
	body := data[nl+1:]
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != hdr.Body {
		return nil, fmt.Errorf("%w: %s: body sha256 %s, header says %s", ErrCorrupt, hash, got, hdr.Body)
	}
	return body, nil
}

// Remove deletes the entry for hash (used to evict a corrupt entry
// before rerunning its job). Missing entries are not an error.
func (s *Store) Remove(hash string) error {
	if !validHash(hash) {
		return fmt.Errorf("campaign: bad store hash %q", hash)
	}
	err := os.Remove(s.entryPath(hash))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// SweepTorn removes leftover temp files from writers that died
// mid-Put. Safe to run at campaign start: a live writer's temp file is
// only ever renamed by that writer, and the coordinator sweeps before
// spawning any. Returns the removed paths.
func (s *Store) SweepTorn() ([]string, error) {
	var removed []string
	err := filepath.WalkDir(filepath.Join(s.dir, "objects"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), tmpPrefix) {
			if err := os.Remove(path); err != nil {
				return err
			}
			removed = append(removed, path)
		}
		return nil
	})
	sort.Strings(removed)
	return removed, err
}

// Verify walks the whole store: every entry must hash-verify, every
// file must be either an entry or a temp file. It returns the number
// of valid entries and the paths of temp (torn-write) files found; err
// is non-nil on the first corrupt or alien file. The CI gate runs this
// after a resumed campaign and requires torn == nil.
func (s *Store) Verify() (entries int, torn []string, err error) {
	err = filepath.WalkDir(filepath.Join(s.dir, "objects"), func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			return nil
		}
		name := d.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			torn = append(torn, path)
			return nil
		}
		hash := strings.TrimSuffix(name, ".json")
		if len(hash) == len(name) || !validHash(hash) {
			return fmt.Errorf("campaign: alien file in store: %s", path)
		}
		if _, gerr := s.Get(hash); gerr != nil {
			return gerr
		}
		entries++
		return nil
	})
	sort.Strings(torn)
	return entries, torn, err
}

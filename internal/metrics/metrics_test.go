package metrics

import (
	"math"
	"testing"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
	"ibasim/internal/subnet"
	"ibasim/internal/topology"
	"ibasim/internal/traffic"
)

func TestLatencyStatsMoments(t *testing.T) {
	var s LatencyStats
	for _, v := range []sim.Time{10, 20, 30, 40} {
		s.Add(v)
	}
	if s.Count != 4 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Avg() != 25 {
		t.Fatalf("Avg = %v, want 25", s.Avg())
	}
	if s.Min != 10 || s.Max != 40 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	want := math.Sqrt(500.0 / 3.0)
	if math.Abs(s.Std()-want) > 1e-9 {
		t.Fatalf("Std = %v, want %v", s.Std(), want)
	}
}

func TestLatencyStatsEmpty(t *testing.T) {
	var s LatencyStats
	if s.Avg() != 0 || s.Std() != 0 {
		t.Fatal("empty stats not zero")
	}
}

func TestLatencyStatsSingle(t *testing.T) {
	var s LatencyStats
	s.Add(7)
	if s.Avg() != 7 || s.Std() != 0 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("single-sample stats wrong: %+v", s)
	}
}

// measureNet runs a uniform workload on a small ring and returns the
// collector, for end-to-end metric checks.
func measureNet(t *testing.T, warmup, end sim.Time, load float64) *Collector {
	t.Helper()
	topo, err := topology.Ring(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ib.NewAddressPlan(topo.NumHosts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fabric.NewNetwork(topo, plan, fabric.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subnet.Configure(net, subnet.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	col := &Collector{WarmupEnd: warmup, MeasureEnd: end}
	col.Attach(net)
	g, err := traffic.NewGenerator(net, traffic.Config{
		Pattern:               traffic.Uniform{NumHosts: topo.NumHosts()},
		PacketSize:            32,
		AdaptiveFraction:      0.5,
		LoadBytesPerNsPerHost: load,
		Seed:                  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(end)
	if err := net.Drain(); err != nil {
		t.Fatal(err)
	}
	return col
}

func TestCollectorAcceptedMatchesOfferedAtLowLoad(t *testing.T) {
	// Far below saturation, accepted traffic must track offered load.
	const load = 0.005 // B/ns/host; offered/switch = 0.02
	col := measureNet(t, 200_000, 1_200_000, load)
	offered := load * 4
	got := col.AcceptedPerSwitch()
	if math.Abs(got-offered)/offered > 0.10 {
		t.Fatalf("accepted %.5f, want ~%.5f", got, offered)
	}
}

func TestCollectorWarmupExcluded(t *testing.T) {
	col := measureNet(t, 500_000, 1_000_000, 0.005)
	all := measureNet(t, 0, 1_000_000, 0.005)
	if col.Latency.Count >= all.Latency.Count {
		t.Fatalf("warmup window did not reduce sample count: %d vs %d",
			col.Latency.Count, all.Latency.Count)
	}
}

func TestCollectorLatencyPlausible(t *testing.T) {
	col := measureNet(t, 100_000, 600_000, 0.005)
	// A 32 B packet needs at least ~428 ns (one switch) and the ring
	// diameter is 2 switches; queueing should keep the average under a
	// few microseconds at this load.
	if col.Latency.Avg() < 400 || col.Latency.Avg() > 5000 {
		t.Fatalf("avg latency %.0f ns implausible", col.Latency.Avg())
	}
	if col.Latency.Min < 428 {
		t.Fatalf("min latency %v below physical floor", col.Latency.Min)
	}
}

func TestCollectorModeSplit(t *testing.T) {
	col := measureNet(t, 100_000, 600_000, 0.005)
	if col.LatencyAdaptive.Count == 0 || col.LatencyDeterministic.Count == 0 {
		t.Fatal("mode-split stats empty with a 50% adaptive workload")
	}
	if col.LatencyAdaptive.Count+col.LatencyDeterministic.Count != col.Latency.Count {
		t.Fatal("mode split does not partition samples")
	}
}

func TestCollectorStringFormatting(t *testing.T) {
	col := measureNet(t, 100_000, 300_000, 0.005)
	if col.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestAcceptedZeroWithoutWindow(t *testing.T) {
	c := &Collector{WarmupEnd: 100, MeasureEnd: 100}
	if c.AcceptedPerSwitch() != 0 {
		t.Fatal("zero-width window produced traffic")
	}
}

package metrics

import (
	"strings"
	"testing"
	"testing/quick"

	"ibasim/internal/sim"
)

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for v := sim.Time(1); v <= 1000; v++ {
		h.Add(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	// The median of 1..1000 is ~500; the bucket upper bound must be
	// >= 500 and within one power of two.
	med := h.Quantile(0.5)
	if med < 500 || med > 1024 {
		t.Fatalf("median bound %v outside [500, 1024]", med)
	}
	p99 := h.Quantile(0.99)
	if p99 < 990 || p99 > 2048 {
		t.Fatalf("p99 bound %v outside [990, 2048]", p99)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
	if !strings.Contains(h.String(), "empty") {
		t.Fatalf("String = %q", h.String())
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Add(100)
	for _, q := range []float64{0.01, 0.5, 1} {
		if b := h.Quantile(q); b < 100 || b > 128 {
			t.Fatalf("Quantile(%v) = %v for single sample 100", q, b)
		}
	}
}

func TestHistogramClampsArguments(t *testing.T) {
	var h Histogram
	h.Add(-5) // clamped to 0
	h.Add(7)
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("clamped quantiles disordered")
	}
}

// TestHistogramQuantileMonotonic: quantiles never decrease in q, and
// every sample is <= the q=1 bound.
func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		max := sim.Time(0)
		for _, v := range raw {
			tv := sim.Time(v % 1_000_000)
			if tv > max {
				max = tv
			}
			h.Add(tv)
		}
		prev := sim.Time(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99, 1} {
			b := h.Quantile(q)
			if b < prev {
				return false
			}
			prev = b
		}
		return h.Quantile(1) >= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramStringListsBuckets(t *testing.T) {
	var h Histogram
	h.Add(3)
	h.Add(100)
	s := h.String()
	if !strings.Contains(s, ":1") {
		t.Fatalf("String = %q", s)
	}
}

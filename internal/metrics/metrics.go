// Package metrics accounts simulation results the way the paper
// reports them: average packet latency (generation to delivery, ns)
// versus accepted traffic (bytes per ns per switch), with a warm-up
// window excluded from both.
package metrics

import (
	"fmt"
	"math"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/reorder"
	"ibasim/internal/sim"
)

// LatencyStats accumulates streaming latency moments.
type LatencyStats struct {
	Count uint64
	Sum   float64
	SumSq float64
	Min   sim.Time
	Max   sim.Time
}

// Add records one latency sample.
func (s *LatencyStats) Add(l sim.Time) {
	if s.Count == 0 || l < s.Min {
		s.Min = l
	}
	if l > s.Max {
		s.Max = l
	}
	s.Count++
	f := float64(l)
	s.Sum += f
	s.SumSq += f * f
}

// Merge folds another accumulator into s. Latencies are integer
// nanoseconds, so Sum is a sum of exactly representable float64s far
// below 2^53 — addition is exact and the merge order does not matter;
// Sum/Count/Min/Max merge bit-identically to sequential accumulation.
// SumSq can round (it only feeds Std, which no result struct exports).
func (s *LatencyStats) Merge(o *LatencyStats) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Count += o.Count
	s.Sum += o.Sum
	s.SumSq += o.SumSq
}

// Avg returns the mean latency in nanoseconds (0 with no samples).
func (s *LatencyStats) Avg() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Std returns the sample standard deviation.
func (s *LatencyStats) Std() float64 {
	if s.Count < 2 {
		return 0
	}
	n := float64(s.Count)
	v := (s.SumSq - s.Sum*s.Sum/n) / (n - 1)
	if v < 0 {
		return 0
	}
	return math.Sqrt(v)
}

// Collector hooks a network's packet callbacks and accumulates the
// paper's two observables over the measurement window. Packets
// created before the warm-up end are ignored entirely; accepted
// traffic counts bytes delivered inside [WarmupEnd, MeasureEnd].
type Collector struct {
	WarmupEnd  sim.Time
	MeasureEnd sim.Time

	numSwitches int
	engine      *sim.Engine

	Latency        LatencyStats
	DeliveredBytes int64
	DeliveredCount uint64
	CreatedCount   uint64

	// Per-mode latency split, for analyzing mixed workloads.
	LatencyAdaptive      LatencyStats
	LatencyDeterministic LatencyStats

	// Hist buckets every measured latency for quantile reporting.
	Hist Histogram

	// Out-of-order accounting (§1: adaptive routing trades in-order
	// delivery for throughput; this quantifies the trade). A delivery
	// is out of order when a higher SeqNo of the same (src, dst) flow
	// was delivered earlier.
	OutOfOrder      uint64
	highestSeq      map[[2]int]uint64
	OrderedDelivery uint64

	// highestSeqDense replaces the highestSeq map when Attach learns
	// the host count: slot src*numHosts+dst holds the flow's highest
	// delivered SeqNo plus one (zero = flow unseen). The order check
	// runs on every delivery; the dense form drops the per-delivery map
	// hash and growth churn. numHosts == 0 falls back to the map.
	highestSeqDense []uint64
	numHosts        int

	// Reorder, when set before Attach, simulates destination-side
	// reordering (§1's sketch): every delivery passes through the
	// buffer and its occupancy/delay statistics quantify what
	// restoring order on top of adaptive routing would cost.
	Reorder *reorder.Buffer

	// Dropped counts packets the fabric discarded, by reason — the
	// degraded-mode view a fault campaign reports. All zero on a
	// healthy run.
	Dropped [fabric.NumDropReasons]uint64

	// children are the per-shard sub-collectors of a sharded run (each
	// touched only by its shard's worker); nil in sequential mode.
	// Finalize folds them into the parent.
	children []*Collector
}

// DroppedTotal sums the per-reason drop counters.
func (c *Collector) DroppedTotal() uint64 {
	var t uint64
	for _, v := range c.Dropped {
		t += v
	}
	return t
}

// Attach registers the collector on the network. It must be called
// before traffic starts; it chains with (replaces) any previous
// callbacks.
func (c *Collector) Attach(net *fabric.Network) {
	c.numSwitches = net.Topo.NumSwitches
	c.engine = net.Engine
	c.numHosts = net.Topo.NumHosts()
	c.highestSeqDense = make([]uint64, c.numHosts*c.numHosts)
	if p := net.ShardCount(); p > 1 {
		c.attachSharded(net, p)
		return
	}
	net.OnCreated = c.onCreated
	net.OnDelivered = c.onDelivered
	net.OnDropped = c.onDropped
}

// attachSharded registers one child collector per shard. Flows
// partition by the shard owning the packet's endpoint (creation and
// delivery happen at the source/destination host's shard), so the
// children count disjoint event sets and Finalize can fold them into
// the parent exactly.
func (c *Collector) attachSharded(net *fabric.Network, shards int) {
	c.children = make([]*Collector, shards)
	for i := range c.children {
		ch := &Collector{
			WarmupEnd:       c.WarmupEnd,
			MeasureEnd:      c.MeasureEnd,
			numSwitches:     c.numSwitches,
			numHosts:        c.numHosts,
			highestSeqDense: make([]uint64, c.numHosts*c.numHosts),
		}
		if c.Reorder != nil {
			ch.Reorder = reorder.NewBufferForHosts(c.numHosts)
			ch.Reorder.TrackSteps = true
		}
		c.children[i] = ch
		net.ChainShardHooks(i, fabric.ShardHooks{
			OnCreated:   ch.onCreated,
			OnDelivered: ch.onDelivered,
			OnDropped:   ch.onDropped,
		})
	}
}

// Finalize folds per-shard children into the parent (no-op beyond
// reorder-peak closing in sequential mode). Call once, after the run
// completes and before reading results. Every merged field is either
// an integer sum over disjoint per-shard event sets or an
// exactly-representable float64 sum (see LatencyStats.Merge), so the
// folded totals are bit-identical to a sequential run's.
func (c *Collector) Finalize() {
	for _, ch := range c.children {
		c.Latency.Merge(&ch.Latency)
		c.LatencyAdaptive.Merge(&ch.LatencyAdaptive)
		c.LatencyDeterministic.Merge(&ch.LatencyDeterministic)
		c.Hist.Merge(&ch.Hist)
		c.DeliveredBytes += ch.DeliveredBytes
		c.DeliveredCount += ch.DeliveredCount
		c.CreatedCount += ch.CreatedCount
		c.OutOfOrder += ch.OutOfOrder
		c.OrderedDelivery += ch.OrderedDelivery
		for r, v := range ch.Dropped {
			c.Dropped[r] += v
		}
	}
	if c.Reorder != nil {
		if len(c.children) > 0 {
			bufs := make([]*reorder.Buffer, len(c.children))
			for i, ch := range c.children {
				ch.Reorder.Finalize()
				bufs[i] = ch.Reorder
				c.Reorder.Parked += ch.Reorder.Parked
				c.Reorder.PassedThru += ch.Reorder.PassedThru
				c.Reorder.ReorderDelay += ch.Reorder.ReorderDelay
				c.Reorder.CurrentHeld += ch.Reorder.CurrentHeld
			}
			c.Reorder.PeakHeld = reorder.MergePeak(bufs)
		} else {
			c.Reorder.Finalize()
		}
	}
	c.children = nil
}

func (c *Collector) onCreated(p *ib.Packet) {
	if p.CreatedAt >= c.WarmupEnd && p.CreatedAt < c.MeasureEnd {
		c.CreatedCount++
	}
}

func (c *Collector) onDropped(p *ib.Packet, reason fabric.DropReason) {
	if reason >= 0 && int(reason) < len(c.Dropped) {
		c.Dropped[reason]++
	}
}

func (c *Collector) onDelivered(p *ib.Packet) {
	now := p.DeliveredAt
	if now >= c.WarmupEnd && now < c.MeasureEnd {
		c.DeliveredBytes += int64(p.Size)
		c.DeliveredCount++
	}
	// Latency is attributed to packets *created* in the window so a
	// tail of slow packets is not silently dropped from the average.
	if p.CreatedAt >= c.WarmupEnd && p.CreatedAt < c.MeasureEnd {
		l := p.Latency()
		c.Latency.Add(l)
		c.Hist.Add(l)
		if p.Adaptive {
			c.LatencyAdaptive.Add(l)
		} else {
			c.LatencyDeterministic.Add(l)
		}
	}
	// Order tracking covers every delivery (not only the window) so
	// flows spanning the warm-up boundary are judged correctly.
	if c.numHosts > 0 {
		di := p.Src*c.numHosts + p.Dst
		if last := c.highestSeqDense[di]; last != 0 && p.SeqNo < last-1 {
			c.OutOfOrder++
		} else {
			c.highestSeqDense[di] = p.SeqNo + 1
			c.OrderedDelivery++
		}
	} else {
		if c.highestSeq == nil {
			c.highestSeq = make(map[[2]int]uint64)
		}
		key := [2]int{p.Src, p.Dst}
		if last, ok := c.highestSeq[key]; ok && p.SeqNo < last {
			c.OutOfOrder++
		} else {
			c.highestSeq[key] = p.SeqNo
			c.OrderedDelivery++
		}
	}
	if c.Reorder != nil {
		c.Reorder.Deliver(p, now)
	}
}

// OutOfOrderFraction returns the share of deliveries that arrived
// after a later packet of their flow.
func (c *Collector) OutOfOrderFraction() float64 {
	total := c.OutOfOrder + c.OrderedDelivery
	if total == 0 {
		return 0
	}
	return float64(c.OutOfOrder) / float64(total)
}

// AcceptedPerSwitch returns the accepted traffic in bytes/ns/switch
// over the measurement window.
func (c *Collector) AcceptedPerSwitch() float64 {
	window := float64(c.MeasureEnd - c.WarmupEnd)
	if window <= 0 || c.numSwitches == 0 {
		return 0
	}
	return float64(c.DeliveredBytes) / window / float64(c.numSwitches)
}

// String summarizes the collected window.
func (c *Collector) String() string {
	return fmt.Sprintf("accepted=%.5f B/ns/sw avgLat=%.0f ns (n=%d)",
		c.AcceptedPerSwitch(), c.Latency.Avg(), c.Latency.Count)
}

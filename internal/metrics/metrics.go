// Package metrics accounts simulation results the way the paper
// reports them: average packet latency (generation to delivery, ns)
// versus accepted traffic (bytes per ns per switch), with a warm-up
// window excluded from both.
package metrics

import (
	"fmt"
	"math"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/reorder"
	"ibasim/internal/sim"
)

// LatencyStats accumulates streaming latency moments.
type LatencyStats struct {
	Count uint64
	Sum   float64
	SumSq float64
	Min   sim.Time
	Max   sim.Time
}

// Add records one latency sample.
func (s *LatencyStats) Add(l sim.Time) {
	if s.Count == 0 || l < s.Min {
		s.Min = l
	}
	if l > s.Max {
		s.Max = l
	}
	s.Count++
	f := float64(l)
	s.Sum += f
	s.SumSq += f * f
}

// Avg returns the mean latency in nanoseconds (0 with no samples).
func (s *LatencyStats) Avg() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Std returns the sample standard deviation.
func (s *LatencyStats) Std() float64 {
	if s.Count < 2 {
		return 0
	}
	n := float64(s.Count)
	v := (s.SumSq - s.Sum*s.Sum/n) / (n - 1)
	if v < 0 {
		return 0
	}
	return math.Sqrt(v)
}

// Collector hooks a network's packet callbacks and accumulates the
// paper's two observables over the measurement window. Packets
// created before the warm-up end are ignored entirely; accepted
// traffic counts bytes delivered inside [WarmupEnd, MeasureEnd].
type Collector struct {
	WarmupEnd  sim.Time
	MeasureEnd sim.Time

	numSwitches int
	engine      *sim.Engine

	Latency        LatencyStats
	DeliveredBytes int64
	DeliveredCount uint64
	CreatedCount   uint64

	// Per-mode latency split, for analyzing mixed workloads.
	LatencyAdaptive      LatencyStats
	LatencyDeterministic LatencyStats

	// Hist buckets every measured latency for quantile reporting.
	Hist Histogram

	// Out-of-order accounting (§1: adaptive routing trades in-order
	// delivery for throughput; this quantifies the trade). A delivery
	// is out of order when a higher SeqNo of the same (src, dst) flow
	// was delivered earlier.
	OutOfOrder      uint64
	highestSeq      map[[2]int]uint64
	OrderedDelivery uint64

	// Reorder, when set before Attach, simulates destination-side
	// reordering (§1's sketch): every delivery passes through the
	// buffer and its occupancy/delay statistics quantify what
	// restoring order on top of adaptive routing would cost.
	Reorder *reorder.Buffer

	// Dropped counts packets the fabric discarded, by reason — the
	// degraded-mode view a fault campaign reports. All zero on a
	// healthy run.
	Dropped [fabric.NumDropReasons]uint64
}

// DroppedTotal sums the per-reason drop counters.
func (c *Collector) DroppedTotal() uint64 {
	var t uint64
	for _, v := range c.Dropped {
		t += v
	}
	return t
}

// Attach registers the collector on the network. It must be called
// before traffic starts; it chains with (replaces) any previous
// callbacks.
func (c *Collector) Attach(net *fabric.Network) {
	c.numSwitches = net.Topo.NumSwitches
	c.engine = net.Engine
	net.OnCreated = func(p *ib.Packet) {
		if p.CreatedAt >= c.WarmupEnd && p.CreatedAt < c.MeasureEnd {
			c.CreatedCount++
		}
	}
	net.OnDelivered = func(p *ib.Packet) { c.onDelivered(p) }
	net.OnDropped = func(p *ib.Packet, reason fabric.DropReason) {
		if reason >= 0 && int(reason) < len(c.Dropped) {
			c.Dropped[reason]++
		}
	}
}

func (c *Collector) onDelivered(p *ib.Packet) {
	now := p.DeliveredAt
	if now >= c.WarmupEnd && now < c.MeasureEnd {
		c.DeliveredBytes += int64(p.Size)
		c.DeliveredCount++
	}
	// Latency is attributed to packets *created* in the window so a
	// tail of slow packets is not silently dropped from the average.
	if p.CreatedAt >= c.WarmupEnd && p.CreatedAt < c.MeasureEnd {
		l := p.Latency()
		c.Latency.Add(l)
		c.Hist.Add(l)
		if p.Adaptive {
			c.LatencyAdaptive.Add(l)
		} else {
			c.LatencyDeterministic.Add(l)
		}
	}
	// Order tracking covers every delivery (not only the window) so
	// flows spanning the warm-up boundary are judged correctly.
	if c.highestSeq == nil {
		c.highestSeq = make(map[[2]int]uint64)
	}
	key := [2]int{p.Src, p.Dst}
	if last, ok := c.highestSeq[key]; ok && p.SeqNo < last {
		c.OutOfOrder++
	} else {
		c.highestSeq[key] = p.SeqNo
		c.OrderedDelivery++
	}
	if c.Reorder != nil {
		c.Reorder.Deliver(p, now)
	}
}

// OutOfOrderFraction returns the share of deliveries that arrived
// after a later packet of their flow.
func (c *Collector) OutOfOrderFraction() float64 {
	total := c.OutOfOrder + c.OrderedDelivery
	if total == 0 {
		return 0
	}
	return float64(c.OutOfOrder) / float64(total)
}

// AcceptedPerSwitch returns the accepted traffic in bytes/ns/switch
// over the measurement window.
func (c *Collector) AcceptedPerSwitch() float64 {
	window := float64(c.MeasureEnd - c.WarmupEnd)
	if window <= 0 || c.numSwitches == 0 {
		return 0
	}
	return float64(c.DeliveredBytes) / window / float64(c.numSwitches)
}

// String summarizes the collected window.
func (c *Collector) String() string {
	return fmt.Sprintf("accepted=%.5f B/ns/sw avgLat=%.0f ns (n=%d)",
		c.AcceptedPerSwitch(), c.Latency.Avg(), c.Latency.Count)
}

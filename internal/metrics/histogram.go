package metrics

import (
	"fmt"
	"math"
	"strings"

	"ibasim/internal/sim"
)

// Histogram accumulates latency samples in logarithmic buckets
// (powers of two nanoseconds), enough resolution for quantiles of a
// distribution spanning hundreds of nanoseconds to milliseconds.
type Histogram struct {
	buckets [64]uint64
	count   uint64
}

// Add records one sample.
func (h *Histogram) Add(v sim.Time) {
	if v < 0 {
		v = 0
	}
	b := 0
	for x := int64(v); x > 0; x >>= 1 {
		b++
	}
	h.buckets[b]++
	h.count++
}

// Merge folds another histogram into h (bucket-wise addition; exact).
func (h *Histogram) Merge(o *Histogram) {
	for b, n := range o.buckets {
		h.buckets[b] += n
	}
	h.count += o.count
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1):
// the top edge of the bucket containing it. Returns 0 with no
// samples.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, n := range h.buckets {
		cum += n
		if cum >= target {
			if b == 0 {
				return 0
			}
			return sim.Time(1) << uint(b) // top edge of bucket b
		}
	}
	return sim.Forever
}

// String renders a compact text sketch of the non-empty buckets.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram{empty}"
	}
	var sb strings.Builder
	sb.WriteString("histogram{")
	first := true
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		if !first {
			sb.WriteString(" ")
		}
		first = false
		lo := sim.Time(0)
		if b > 0 {
			lo = sim.Time(1) << uint(b-1)
		}
		fmt.Fprintf(&sb, "[%d,%d):%d", int64(lo), int64(sim.Time(1)<<uint(b)), n)
	}
	sb.WriteString("}")
	return sb.String()
}

package sim

import (
	"fmt"
	"testing"
)

// nopAction is a placeholder payload for queue-level tests.
type nopAction struct{}

func (nopAction) Do() {}

// driveQueues interprets program as a push/pop script and drives a
// calendar queue and the reference heap side by side, failing at the
// first divergence in length, peek time or popped (at, seq). Opcodes
// are chosen to hit the calendar's edge geometry: equal-timestamp FIFO
// runs, bucket-boundary times, horizon-exact and far-future pushes
// (overflow), and drain/refill cycles. Pushes respect the engine
// contract (never before the last popped timestamp).
func driveQueues(program []byte, slotBits, widthBits uint) error {
	wheel := newCalendarQueue(slotBits, widthBits)
	heap := &heapQueue{}
	width := Time(1) << widthBits
	span := Time(1) << (widthBits + slotBits)
	var now Time
	var seq uint64

	push := func(at Time) {
		e := event{at: at, key: eventKey(at, now, seq), act: nopAction{}}
		seq++
		wheel.push(e)
		heap.push(e)
	}
	pop := func() error {
		if wheel.len() != heap.len() {
			return fmt.Errorf("len: wheel %d, heap %d", wheel.len(), heap.len())
		}
		if pw, ph := wheel.peekTime(), heap.peekTime(); pw != ph {
			return fmt.Errorf("peekTime: wheel %v, heap %v", pw, ph)
		}
		if heap.len() == 0 {
			return nil
		}
		w, h := wheel.pop(), heap.pop()
		if w.at != h.at || w.key != h.key {
			return fmt.Errorf("pop: wheel (%v, %#x), heap (%v, %#x)", w.at, w.key, h.at, h.key)
		}
		now = w.at
		return nil
	}

	for i := 0; i+1 < len(program); i += 2 {
		op, arg := program[i]%8, Time(program[i+1])
		switch op {
		case 0: // near future, inside the window
			push(now + arg)
		case 1: // equal timestamps — FIFO among them
			push(now)
		case 2: // bucket boundary at/above now
			push((now+width-1)/width*width + arg*width)
		case 3: // horizon-exact: first time outside the window
			push(now + span)
		case 4: // far future — overflow territory
			push(now + span + arg*977)
		case 5: // medium spread, crosses several buckets
			push(now + arg*arg)
		case 6:
			if err := pop(); err != nil {
				return err
			}
		case 7: // drain burst
			for j := 0; j < int(arg); j++ {
				if err := pop(); err != nil {
					return err
				}
			}
		}
	}
	for heap.len() > 0 {
		if err := pop(); err != nil {
			return err
		}
	}
	if wheel.len() != 0 {
		return fmt.Errorf("wheel holds %d events after full drain", wheel.len())
	}
	return nil
}

// TestEventQueueDifferential is the scheduler equivalence property
// test: randomized adversarial programs through every geometry from a
// tiny 8-bucket wheel (constant wrapping and overflow) to the default.
func TestEventQueueDifferential(t *testing.T) {
	geometries := []struct{ slotBits, widthBits uint }{
		{3, 0}, {3, 2}, {4, 1}, {6, 3}, {defaultSlotBits, defaultWidthBits},
	}
	r := NewRNG(42)
	for _, g := range geometries {
		for trial := 0; trial < 40; trial++ {
			program := make([]byte, 2048)
			for i := range program {
				program[i] = byte(r.Intn(256))
			}
			if err := driveQueues(program, g.slotBits, g.widthBits); err != nil {
				t.Fatalf("geometry %d/%d trial %d: %v", g.slotBits, g.widthBits, trial, err)
			}
		}
	}
}

// TestEngineSchedulersEquivalent runs the same self-sustaining random
// workload through a calendar engine and a heap engine and compares
// the full dispatch sequence — the engine-level view of the
// differential property, including nested scheduling from inside
// events.
func TestEngineSchedulersEquivalent(t *testing.T) {
	run := func(opts ...EngineOption) []Time {
		e := NewEngine(opts...)
		r := NewRNG(7)
		var fired []Time
		var burst func()
		burst = func() {
			fired = append(fired, e.Now())
			if len(fired) >= 20000 {
				return
			}
			for i, n := 0, r.Intn(3); i < n; i++ {
				switch r.Intn(4) {
				case 0:
					e.Schedule(0, burst) // same-timestamp FIFO
				case 1:
					e.Schedule(Time(r.Intn(64)), burst)
				case 2:
					e.Schedule(Time(r.Intn(100000)), burst)
				default:
					e.Schedule(Time(r.Intn(1000)), burst)
				}
			}
		}
		for i := 0; i < 64; i++ {
			e.Schedule(Time(r.Intn(500)), burst)
		}
		e.Run(Forever)
		return fired
	}
	calendar := run()
	heap := run(WithScheduler(SchedulerHeap))
	if len(calendar) != len(heap) {
		t.Fatalf("dispatched %d events on calendar, %d on heap", len(calendar), len(heap))
	}
	for i := range calendar {
		if calendar[i] != heap[i] {
			t.Fatalf("dispatch %d: calendar at %v, heap at %v", i, calendar[i], heap[i])
		}
	}
}

// TestCalendarHorizonParking reproduces the cursor-parked-ahead case:
// Run with a horizon before the next pending event leaves the wheel
// cursor beyond the engine clock; a later push behind the cursor must
// still dispatch in order (it routes through the overflow internally).
func TestCalendarHorizonParking(t *testing.T) {
	e := NewEngine()
	var order []Time
	rec := func() { order = append(order, e.Now()) }
	e.At(100000, rec) // far ahead
	e.Run(10)         // peeks, parks the cursor, dispatches nothing
	if len(order) != 0 {
		t.Fatalf("dispatched %d events before the horizon", len(order))
	}
	e.At(5000, rec) // behind the parked cursor, after the clock
	e.At(50, rec)
	e.Run(Forever)
	want := []Time{50, 5000, 100000}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

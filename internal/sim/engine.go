package sim

import (
	"fmt"
	"math"
)

// Engine is the discrete-event simulation core. Components schedule
// callbacks at future simulated times; Run dispatches them in
// timestamp order (FIFO among equal timestamps) while advancing the
// clock. The zero value is not usable; call NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	queue     eventQueue
	processed uint64
	running   bool
	arena     *QueueArena

	// imm is the immediate-event FIFO: delay-0 events scheduled while
	// the engine is mid-dispatch. Such an event's packed key carries age
	// ^(at-schedAt) = ^0, the maximum, so it provably orders after
	// every same-timestamp event already in the queue (whose age fields
	// are all smaller) and among its peers by sequence — i.e. exactly
	// FIFO. Keeping them out of the wheel replaces a sorted-bucket
	// insert and cursor pop per delay-0 event (the dominant event kind
	// of a saturated switch: every coalesced allocation-pass kick) with
	// a slice append and read. imm drains completely before Run or
	// RunBefore returns, so it is empty whenever the coordinator peeks
	// or steps an engine between windows.
	imm     []event
	immHead int
}

// NewEngine returns an engine with the clock at zero and an empty
// event queue. With no options it uses the calendar-queue scheduler
// at its default geometry; see EngineOption for the scheduler,
// geometry and storage-reuse knobs.
func NewEngine(opts ...EngineOption) *Engine {
	cfg := engineConfig{
		kind:      SchedulerCalendar,
		slotBits:  defaultSlotBits,
		widthBits: defaultWidthBits,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.kind == SchedulerHeap {
		h := &heapQueue{}
		if cfg.capacity > 0 {
			h.ev = make([]event, 0, cfg.capacity)
		}
		return &Engine{queue: h}
	}
	// Widen buckets until the wheel spans the hinted horizon (capped
	// well short of Time overflow).
	for cfg.spanHint > Time(1)<<(cfg.widthBits+cfg.slotBits) && cfg.widthBits+cfg.slotBits < 40 {
		cfg.widthBits++
	}
	var q *calendarQueue
	if cfg.arena != nil {
		q = cfg.arena.get(cfg.slotBits, cfg.widthBits)
	} else {
		q = newCalendarQueue(cfg.slotBits, cfg.widthBits)
	}
	if cfg.capacity > 0 {
		q.prealloc(cfg.capacity)
	}
	return &Engine{queue: q, arena: cfg.arena}
}

// Recycle returns the engine's queue storage to the arena it was
// built with (WithArena), making it available to the next engine in a
// sweep. The engine must be done dispatching and is unusable
// afterwards. Without an arena Recycle is a no-op and the engine
// stays usable.
func (e *Engine) Recycle() {
	if e.arena == nil {
		return
	}
	if q, ok := e.queue.(*calendarQueue); ok {
		e.arena.put(q)
	}
	e.queue = nil
	e.arena = nil
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events dispatched so far. It is
// exposed for progress reporting and engine benchmarks.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return e.queue.len() + (len(e.imm) - e.immHead) }

// Schedule runs fn after delay nanoseconds of simulated time.
// A negative delay panics: allowing it would silently reorder causality.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at the absolute simulated time t, which must not be in
// the past.
func (e *Engine) At(t Time, fn func()) {
	if fn == nil {
		panic("sim: nil event function")
	}
	e.AtAction(t, funcAction(fn))
}

// ScheduleAction runs a after delay nanoseconds of simulated time.
// It is the allocation-free counterpart of Schedule: the caller owns
// the Action's storage (typically pooled) and the engine never wraps
// it in a closure. FIFO ordering among equal timestamps is shared with
// closure events — both draw from the same sequence counter.
func (e *Engine) ScheduleAction(delay Time, a Action) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.AtAction(e.now+delay, a)
}

// AtAction runs a at the absolute simulated time t, which must not be
// in the past.
func (e *Engine) AtAction(t Time, a Action) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if a == nil {
		panic("sim: nil event action")
	}
	if t == e.now && e.running {
		// Delay-0 mid-dispatch: goes to the immediate FIFO (see the imm
		// field). Outside Run (setup code, merged control phases driven
		// by Step) the event takes the queue path so cross-engine peeks
		// see it.
		e.imm = append(e.imm, event{at: t, key: eventKey(t, e.now, e.nextSeq()), act: a})
		return
	}
	e.queue.push(event{at: t, key: eventKey(t, e.now, e.nextSeq()), act: a})
}

// nextSeq returns the engine's next event sequence number. The packed
// event key stores it in 32 bits; one engine run would have to
// schedule over four billion events to exhaust it — hours of wall
// time beyond any experiment here — so exhaustion is a model bug
// worth a loud stop rather than a silently wrapped dispatch order.
func (e *Engine) nextSeq() uint64 {
	if e.seq > math.MaxUint32 {
		panic("sim: event sequence space exhausted (2^32 events in one engine)")
	}
	s := e.seq
	e.seq++
	return s
}

// PushAt inserts an event with an explicit (at, schedAt) ordering key.
// It is the cross-engine import primitive of the sharded coordinator:
// when an event produced by one shard (or by the control engine) is
// handed to another shard's queue, it must keep the schedule-time key
// it was created with, not the importing engine's clock. at must not
// be in the past of this engine and schedAt must not exceed at.
func (e *Engine) PushAt(at, schedAt Time, a Action) {
	if at < e.now {
		panic(fmt.Sprintf("sim: import at %v before now %v", at, e.now))
	}
	if schedAt > at {
		panic(fmt.Sprintf("sim: import schedAt %v after at %v", schedAt, at))
	}
	if a == nil {
		panic("sim: nil event action")
	}
	e.queue.push(event{at: at, key: eventKey(at, schedAt, e.nextSeq()), act: a})
}

// AdvanceTo moves the clock forward to t without dispatching anything.
// The sharded coordinator uses it to align every shard engine on a
// barrier timestamp before merged execution; it panics if an event
// earlier than t is still pending (advancing past it would violate
// causality) or if t is in the past.
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: AdvanceTo %v before now %v", t, e.now))
	}
	if next := e.queue.peekTime(); next < t {
		panic(fmt.Sprintf("sim: AdvanceTo %v past pending event at %v", t, next))
	}
	e.now = t
}

// NextEventTime returns the timestamp of the earliest pending event,
// or Forever if the queue is empty.
func (e *Engine) NextEventTime() Time {
	if e.immHead < len(e.imm) {
		return e.now // an undrained immediate shares the current timestamp
	}
	return e.queue.peekTime()
}

// Quiescent reports whether no pending event shares the current
// timestamp — the event being dispatched right now is the last one at
// Now on this engine. This is the fabric's hop-fusion precondition:
// when the dispatching event is alone on its timestamp, a delay-0
// follow-up it would schedule must be popped immediately next with no
// intervening dispatch, so running that follow-up inline is
// observationally identical to scheduling it. The probe never moves
// the calendar cursor (see calendarQueue.hasEventAt), so running it
// once per fused hop costs a bucket inspection, not a wheel walk.
func (e *Engine) Quiescent() bool {
	return e.immHead >= len(e.imm) && !e.queue.hasEventAt(e.now)
}

// peekKey returns the full (at, schedAt) dispatch key of the earliest
// pending event. It must not be called on an empty queue; the shard
// coordinator uses it to merge events across engines in canonical
// order during single-threaded barrier phases.
func (e *Engine) peekKey() (at, schedAt Time) {
	switch q := e.queue.(type) {
	case *calendarQueue:
		ev := q.peek()
		return ev.at, keySchedAt(ev.at, ev.key)
	case *heapQueue:
		ev := q.peek()
		return ev.at, keySchedAt(ev.at, ev.key)
	}
	panic("sim: peekKey on unknown queue implementation")
}

// PeekKey is the exported form of peekKey for coordinators living in
// other packages. ok is false when no event is pending.
func (e *Engine) PeekKey() (at, schedAt Time, ok bool) {
	if e.queue.len() == 0 {
		return 0, 0, false
	}
	at, schedAt = e.peekKey()
	return at, schedAt, true
}

// Run dispatches events until the queue is empty or the next event is
// later than horizon. The clock finishes at the time of the last
// dispatched event (or at horizon if the queue drained earlier events
// only). Events scheduled exactly at the horizon are dispatched.
func (e *Engine) Run(horizon Time) {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	e.dispatchLoop(horizon)
	// When the queue drains before the horizon the clock stays at the
	// last dispatched event; callers that need the horizon time read it
	// from their own config.
}

// dispatchLoop is the shared Run/RunBefore body: dispatch queue events
// due at or before horizon, merging the immediate FIFO in at its exact
// key position. An immediate is always at == now <= horizon (it was
// appended while dispatching an event that passed the horizon check),
// so the loop can never return while imm is nonempty — imm is provably
// drained on exit.
func (e *Engine) dispatchLoop(horizon Time) {
	for {
		if e.immHead < len(e.imm) {
			ie := e.imm[e.immHead]
			// A queue event sharing the timestamp dispatches first iff it
			// orders before ie under the full key — which it does unless
			// it is itself a delay-0 event scheduled after ie (impossible:
			// mid-dispatch delay-0s all land in imm). hasEventAt is the
			// cheap guard; popBefore settles the key comparison exactly.
			if e.queue.hasEventAt(e.now) {
				if ev, ok := e.queue.popBefore(ie); ok {
					e.now = ev.at
					e.processed++
					ev.act.Do()
					continue
				}
			}
			e.imm[e.immHead] = event{} // release the action for GC
			e.immHead++
			if e.immHead == len(e.imm) {
				e.imm = e.imm[:0]
				e.immHead = 0
			}
			e.processed++
			ie.act.Do() // ie.at == e.now already
			continue
		}
		ev, ok := e.queue.popAtMost(horizon)
		if !ok {
			return
		}
		e.now = ev.at
		e.processed++
		ev.act.Do()
	}
}

// RunBefore dispatches every pending event strictly earlier than end,
// in order, and returns. Events at or after end stay queued and the
// clock finishes at the last dispatched event (it does not jump to
// end — AdvanceTo does that explicitly). This is the shard worker's
// window primitive: the coordinator guarantees no event before end can
// arrive from another shard, so the window body is safe to run without
// synchronization.
func (e *Engine) RunBefore(end Time) {
	if e.running {
		panic("sim: RunBefore called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	e.dispatchLoop(end - 1)
}

// RunUntilIdle dispatches every scheduled event regardless of time.
// It is intended for drain phases in tests; a simulation with a
// self-sustaining load would never return.
func (e *Engine) RunUntilIdle() {
	e.Run(Forever)
}

// Step dispatches exactly one event if any is pending and reports
// whether it did. It exists for fine-grained engine tests.
func (e *Engine) Step() bool {
	if e.queue.len() == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.at
	e.processed++
	ev.act.Do()
	return true
}

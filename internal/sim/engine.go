package sim

import "fmt"

// Engine is the discrete-event simulation core. Components schedule
// callbacks at future simulated times; Run dispatches them in
// timestamp order (FIFO among equal timestamps) while advancing the
// clock. The zero value is not usable; call NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	queue     eventQueue
	processed uint64
	running   bool
	arena     *QueueArena
}

// NewEngine returns an engine with the clock at zero and an empty
// event queue. With no options it uses the calendar-queue scheduler
// at its default geometry; see EngineOption for the scheduler,
// geometry and storage-reuse knobs.
func NewEngine(opts ...EngineOption) *Engine {
	cfg := engineConfig{
		kind:      SchedulerCalendar,
		slotBits:  defaultSlotBits,
		widthBits: defaultWidthBits,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.kind == SchedulerHeap {
		h := &heapQueue{}
		if cfg.capacity > 0 {
			h.ev = make([]event, 0, cfg.capacity)
		}
		return &Engine{queue: h}
	}
	// Widen buckets until the wheel spans the hinted horizon (capped
	// well short of Time overflow).
	for cfg.spanHint > Time(1)<<(cfg.widthBits+cfg.slotBits) && cfg.widthBits+cfg.slotBits < 40 {
		cfg.widthBits++
	}
	var q *calendarQueue
	if cfg.arena != nil {
		q = cfg.arena.get(cfg.slotBits, cfg.widthBits)
	} else {
		q = newCalendarQueue(cfg.slotBits, cfg.widthBits)
	}
	if cfg.capacity > 0 {
		q.prealloc(cfg.capacity)
	}
	return &Engine{queue: q, arena: cfg.arena}
}

// Recycle returns the engine's queue storage to the arena it was
// built with (WithArena), making it available to the next engine in a
// sweep. The engine must be done dispatching and is unusable
// afterwards. Without an arena Recycle is a no-op and the engine
// stays usable.
func (e *Engine) Recycle() {
	if e.arena == nil {
		return
	}
	if q, ok := e.queue.(*calendarQueue); ok {
		e.arena.put(q)
	}
	e.queue = nil
	e.arena = nil
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events dispatched so far. It is
// exposed for progress reporting and engine benchmarks.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return e.queue.len() }

// Schedule runs fn after delay nanoseconds of simulated time.
// A negative delay panics: allowing it would silently reorder causality.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at the absolute simulated time t, which must not be in
// the past.
func (e *Engine) At(t Time, fn func()) {
	if fn == nil {
		panic("sim: nil event function")
	}
	e.AtAction(t, funcAction(fn))
}

// ScheduleAction runs a after delay nanoseconds of simulated time.
// It is the allocation-free counterpart of Schedule: the caller owns
// the Action's storage (typically pooled) and the engine never wraps
// it in a closure. FIFO ordering among equal timestamps is shared with
// closure events — both draw from the same sequence counter.
func (e *Engine) ScheduleAction(delay Time, a Action) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.AtAction(e.now+delay, a)
}

// AtAction runs a at the absolute simulated time t, which must not be
// in the past.
func (e *Engine) AtAction(t Time, a Action) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if a == nil {
		panic("sim: nil event action")
	}
	e.queue.push(event{at: t, seq: e.seq, act: a})
	e.seq++
}

// Run dispatches events until the queue is empty or the next event is
// later than horizon. The clock finishes at the time of the last
// dispatched event (or at horizon if the queue drained earlier events
// only). Events scheduled exactly at the horizon are dispatched.
func (e *Engine) Run(horizon Time) {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.queue.len() > 0 {
		t := e.queue.peekTime()
		if t > horizon {
			break
		}
		ev := e.queue.pop()
		e.now = ev.at
		e.processed++
		ev.act.Do()
	}
	// When the queue drains before the horizon the clock stays at the
	// last dispatched event; callers that need the horizon time read it
	// from their own config.
}

// RunUntilIdle dispatches every scheduled event regardless of time.
// It is intended for drain phases in tests; a simulation with a
// self-sustaining load would never return.
func (e *Engine) RunUntilIdle() {
	e.Run(Forever)
}

// Step dispatches exactly one event if any is pending and reports
// whether it did. It exists for fine-grained engine tests.
func (e *Engine) Step() bool {
	if e.queue.len() == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.at
	e.processed++
	ev.act.Do()
	return true
}

package sim

import "sync"

// QueueArena recycles calendar-queue backing storage across engines.
// A load sweep runs hundreds of back-to-back simulations, each with
// its own engine; without reuse every run re-grows thousands of
// bucket slices and the overflow heap from zero. An arena shared
// across the sweep hands the drained storage of one finished run to
// the next: build engines with NewEngine(WithArena(a)) and call
// Engine.Recycle when a run completes.
//
// The arena is safe for concurrent use — sweep points run on a worker
// pool — but an individual queue is only ever owned by one engine at
// a time.
type QueueArena struct {
	mu   sync.Mutex
	free []*calendarQueue
}

// NewQueueArena returns an empty arena.
func NewQueueArena() *QueueArena { return &QueueArena{} }

// get returns a recycled queue with the requested geometry, or a
// fresh one. Queues recycled under a different geometry are dropped:
// their bucket ring cannot be reshaped in place.
func (a *QueueArena) get(slotBits, widthBits uint) *calendarQueue {
	a.mu.Lock()
	for n := len(a.free) - 1; n >= 0; n-- {
		q := a.free[n]
		a.free = a.free[:n]
		if q.slotBits == slotBits && q.widthBits == widthBits {
			a.mu.Unlock()
			return q
		}
	}
	a.mu.Unlock()
	return newCalendarQueue(slotBits, widthBits)
}

// put resets a queue and shelves its storage for the next get.
func (a *QueueArena) put(q *calendarQueue) {
	q.reset()
	a.mu.Lock()
	a.free = append(a.free, q)
	a.mu.Unlock()
}

// Pooled reports how many recycled queues the arena currently holds
// (shard tests verify a sharded network returns every engine's
// storage, not just the control engine's).
func (a *QueueArena) Pooled() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.free)
}

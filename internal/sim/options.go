package sim

import "fmt"

// SchedulerKind selects the event-queue implementation behind an
// engine. Both kinds realize the identical (at, seq) dispatch order —
// the choice is purely a performance trade-off, and the differential
// tests in this package enforce the equivalence.
type SchedulerKind int

const (
	// SchedulerCalendar is the default: a two-level calendar queue
	// with O(1) amortized push/pop for the short-horizon event
	// traffic of a saturated subnet. See calendarQueue.
	SchedulerCalendar SchedulerKind = iota
	// SchedulerHeap is the binary min-heap reference: O(log n) but
	// geometry-free, the safer choice for workloads whose event
	// horizon is unbounded or unknown.
	SchedulerHeap
)

// ParseScheduler maps a CLI flag value to a SchedulerKind.
func ParseScheduler(name string) (SchedulerKind, error) {
	switch name {
	case "", "calendar", "wheel":
		return SchedulerCalendar, nil
	case "heap":
		return SchedulerHeap, nil
	}
	return 0, fmt.Errorf("sim: unknown scheduler %q (want calendar or heap)", name)
}

// String returns the flag spelling of the kind.
func (k SchedulerKind) String() string {
	if k == SchedulerHeap {
		return "heap"
	}
	return "calendar"
}

type engineConfig struct {
	kind      SchedulerKind
	slotBits  uint
	widthBits uint
	spanHint  Time
	capacity  int
	arena     *QueueArena
}

// EngineOption configures NewEngine. The zero-option engine uses the
// calendar scheduler at its default geometry.
type EngineOption func(*engineConfig)

// WithScheduler selects the event-queue implementation.
func WithScheduler(k SchedulerKind) EngineOption {
	return func(c *engineConfig) { c.kind = k }
}

// WithSpanHint widens the calendar buckets until one wheel rotation
// covers at least d nanoseconds. Callers that know how far ahead
// their events land (for the fabric: routing + propagation + MTU
// serialization time) pass a multiple of that horizon so steady-state
// traffic never touches the overflow heap. Ignored by the heap
// scheduler; the largest hint wins.
func WithSpanHint(d Time) EngineOption {
	return func(c *engineConfig) {
		if d > c.spanHint {
			c.spanHint = d
		}
	}
}

// WithBucketWidth pins the calendar bucket width to w nanoseconds,
// rounded up to a power of two. Narrow buckets cut per-bucket sorting;
// wide buckets extend the wheel's reach. Most callers should prefer
// WithSpanHint and let the engine derive the width.
func WithBucketWidth(w Time) EngineOption {
	return func(c *engineConfig) {
		bits := uint(0)
		for Time(1)<<bits < w {
			bits++
		}
		c.widthBits = bits
	}
}

// WithWheelGeometry pins the calendar wheel to 1<<slotBits buckets of
// 1<<widthBits ns each, clearing any span hint accumulated so far.
// Tiny wheels wrap and overflow constantly — exactly what the
// scheduler and shard differential tests want to stress; production
// callers should prefer WithSpanHint.
func WithWheelGeometry(slotBits, widthBits uint) EngineOption {
	return func(c *engineConfig) {
		c.slotBits, c.widthBits = slotBits, widthBits
		c.spanHint = 0
	}
}

// WithCapacityHint pre-sizes event storage for roughly n standing
// events, moving slice growth from the first simulated microseconds
// to construction time.
func WithCapacityHint(n int) EngineOption {
	return func(c *engineConfig) {
		if n > c.capacity {
			c.capacity = n
		}
	}
}

// WithArena draws the queue's backing storage from a shared
// QueueArena; Engine.Recycle returns it when the run completes. Used
// by sweep harnesses to stop consecutive runs from re-growing queue
// storage from zero. Ignored by the heap scheduler.
func WithArena(a *QueueArena) EngineOption {
	return func(c *engineConfig) { c.arena = a }
}

package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 produced %d zero outputs in 100 draws", zeros)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(42)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRNG(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestIntnRoughlyUniform(t *testing.T) {
	r := NewRNG(9)
	const buckets = 8
	const draws = 80000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := draws / buckets
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d count %d outside ±10%% of %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(11)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) rate = %v, want ~0.25", got)
	}
}

func TestExpTimeMean(t *testing.T) {
	r := NewRNG(13)
	const mean = 500.0
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += float64(r.ExpTime(mean))
	}
	got := sum / draws
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("ExpTime mean = %v, want ~%v", got, mean)
	}
}

func TestExpTimeFloor(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 10000; i++ {
		if d := r.ExpTime(0.001); d < 1 {
			t.Fatalf("ExpTime returned %v < 1ns", d)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		out := make([]int, n)
		r.Perm(out)
		seen := make([]bool, n)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependentStreams(t *testing.T) {
	root := NewRNG(99)
	a := root.Split(1)
	b := root.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d/100 times", same)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkRNGIntn(b *testing.B) {
	r := NewRNG(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}

// Package sim provides the discrete-event simulation engine used by the
// InfiniBand fabric model: a time type with nanosecond resolution, an
// event queue with deterministic FIFO tie-breaking, a scheduling engine,
// and a deterministic pseudo-random number generator.
//
// Each Engine is single-threaded: network simulations of this kind are
// dominated by fine-grained causal dependencies (a credit return
// unblocks an arbitration which starts a transmission), and a
// sequential event loop with deterministic ordering makes every run
// exactly reproducible from its seed. Parallelism within one run lives
// in the fabric's shard coordinator, which partitions the network
// across several engines and advances them in conservative lookahead
// windows (RunBefore/AdvanceTo/PushAt are the primitives it drives);
// parallelism across runs lives in the experiment harness, which runs
// independent simulations (different topologies, loads, seeds) on
// separate goroutines. Both reproduce the sequential dispatch order
// bit-exactly.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulation timestamp in nanoseconds. The simulated clock
// starts at zero. Using a dedicated type (rather than time.Duration)
// keeps simulated time and wall-clock time from being mixed up.
type Time int64

// Common time constants, in simulation nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a timestamp far beyond any simulated horizon. It is used
// as an "unset"/"never" marker.
const Forever Time = 1<<63 - 1

// Duration converts a simulated interval to a time.Duration for
// human-readable reporting.
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Nanosecond }

// String formats the timestamp as nanoseconds with a unit suffix.
func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	return fmt.Sprintf("%dns", int64(t))
}

package sim

import "slices"

// Calendar-queue geometry defaults. Network DES event traffic is
// short-horizon and bounded-increment — a hop schedules events at most
// routing + propagation + serialization time ahead — so a wheel
// covering a few dozen hop-times catches essentially every push.
// NewNetwork widens the buckets via WithSpanHint to match its link
// timing; these defaults stand alone for bare engines in tests.
const (
	defaultSlotBits  = 12 // 4096 buckets
	defaultWidthBits = 2  // 4 ns per bucket
)

// calendarQueue is the engine's default scheduler: a two-level
// calendar queue (near-future timing wheel + far-future overflow
// heap) with the binary heap's exact (at, seq) dispatch order.
//
// Level 1 is a power-of-two ring of fixed-width time buckets covering
// the window [curStart, curStart+span). A push inside the window
// appends to its bucket in O(1); the cursor advances bucket by bucket
// as the clock does, sorting each bucket once on entry (events with
// equal timestamps arrive in seq order, so the common width-1-ish
// bucket is already sorted and the sort is a linear scan). The bucket
// under the cursor is the only one kept sorted while events arrive:
// delay-0 and other same-bucket reschedules binary-insert into the
// undrained remainder. Drained bucket backing arrays go to a
// freelist and are handed to whichever bucket fills next, so a warm
// queue allocates nothing as the cursor rotates into fresh time
// territory.
//
// Level 2 is a plain binary heap holding events beyond the window
// (exponential inter-arrival tails, reconfiguration timers). pop and
// peekTime always compare the wheel's next event against the overflow
// minimum under the full (at, seq) order, so correctness never
// depends on which level holds an event; when the wheel empties the
// queue re-bases the window at the overflow minimum and migrates the
// new window in, restoring O(1) service. The compare also covers a
// subtle case: peekTime may park the cursor ahead of the engine
// clock (next event far away, Run horizon hit first), after which a
// push may land *behind* the cursor — such events route to the
// overflow and still dispatch in exact order.
type calendarQueue struct {
	slots [][]event // power-of-two ring of buckets
	free  [][]event // drained bucket backings, reused by appendSlot

	mask      int
	slotBits  uint
	widthBits uint

	cur      int  // bucket the cursor is parked on
	curStart Time // inclusive start of slots[cur]'s time window
	head     int  // drain position inside slots[cur]
	count    int  // events currently stored in the wheel

	overflow heapQueue
}

func newCalendarQueue(slotBits, widthBits uint) *calendarQueue {
	return &calendarQueue{
		slots:     make([][]event, 1<<slotBits),
		mask:      1<<slotBits - 1,
		slotBits:  slotBits,
		widthBits: widthBits,
	}
}

func (q *calendarQueue) width() Time { return 1 << q.widthBits }
func (q *calendarQueue) span() Time  { return 1 << (q.widthBits + q.slotBits) }

func (q *calendarQueue) len() int { return q.count + q.overflow.len() }

// slotIndex maps an absolute time to its bucket. curStart is always
// bucket-aligned, so the window maps bijectively onto the ring.
func (q *calendarQueue) slotIndex(t Time) int { return int(t>>q.widthBits) & q.mask }

func (q *calendarQueue) push(e event) {
	if q.count == 0 && q.overflow.len() == 0 {
		// Empty queue: park the window at the event so a lone
		// far-future timer does not detour through the overflow.
		q.rebase(e.at)
	}
	if e.at >= q.curStart && e.at-q.curStart < q.span() {
		if i := q.slotIndex(e.at); i != q.cur {
			q.appendSlot(i, e)
		} else {
			q.insertCurrent(e)
		}
		q.count++
		return
	}
	q.overflow.push(e)
}

func (q *calendarQueue) pop() event {
	if !q.nextWheel() {
		q.migrate() // empty-queue pops panic here, same contract as the heap
	}
	s := q.slots[q.cur]
	e := s[q.head]
	if q.overflow.len() > 0 {
		if o := q.overflow.peek(); eventLess(o, e) {
			return q.overflow.pop()
		}
	}
	q.dropHead(s)
	return e
}

// popAtMost pops the earliest event if due at or before horizon, in
// one cursor walk — the dispatch loop's fused peekTime+pop.
func (q *calendarQueue) popAtMost(horizon Time) (event, bool) {
	if !q.nextWheel() {
		if q.overflow.len() == 0 || q.overflow.peekTime() > horizon {
			return event{}, false
		}
		q.migrate()
	}
	s := q.slots[q.cur]
	e := s[q.head]
	if q.overflow.len() > 0 {
		if o := q.overflow.peek(); eventLess(o, e) {
			if o.at > horizon {
				return event{}, false
			}
			return q.overflow.pop(), true
		}
	}
	if e.at > horizon {
		return event{}, false
	}
	q.dropHead(s)
	return e, true
}

// popBefore pops the earliest event if it orders strictly before bound
// under the full dispatch order. The engine calls it only when
// hasEventAt says something shares the current timestamp, so the
// cursor work here is the same walk the following pop would do anyway.
func (q *calendarQueue) popBefore(bound event) (event, bool) {
	if !q.nextWheel() {
		if q.overflow.len() == 0 || !eventLess(q.overflow.peek(), bound) {
			return event{}, false
		}
		q.migrate()
	}
	s := q.slots[q.cur]
	e := s[q.head]
	if q.overflow.len() > 0 {
		if o := q.overflow.peek(); eventLess(o, e) {
			if !eventLess(o, bound) {
				return event{}, false
			}
			return q.overflow.pop(), true
		}
	}
	if !eventLess(e, bound) {
		return event{}, false
	}
	q.dropHead(s)
	return e, true
}

// dropHead consumes the cursor bucket's head slot after its event has
// been read out, recycling the bucket backing once drained.
func (q *calendarQueue) dropHead(s []event) {
	s[q.head] = event{} // release the action for GC
	q.head++
	if q.head == len(s) {
		q.slots[q.cur] = nil
		q.free = append(q.free, s[:0])
		q.head = 0
	}
	q.count--
}

// peek returns the earliest event without removing it, under the same
// full (at, schedAt, seq) order as pop. It must not be called on an
// empty queue.
func (q *calendarQueue) peek() event {
	if !q.nextWheel() {
		q.migrate()
	}
	e := q.slots[q.cur][q.head]
	if q.overflow.len() > 0 {
		if o := q.overflow.peek(); eventLess(o, e) {
			return o
		}
	}
	return e
}

func (q *calendarQueue) peekTime() Time {
	if !q.nextWheel() {
		if q.overflow.len() == 0 {
			return Forever
		}
		q.migrate()
	}
	t := q.slots[q.cur][q.head].at
	if q.overflow.len() > 0 {
		if o := q.overflow.peekTime(); o < t {
			t = o
		}
	}
	return t
}

// hasEventAt reports whether any pending event is scheduled at or
// before t, WITHOUT advancing the cursor — the hop-fusion quiescence
// probe runs once per fused hop, and paying nextWheel's empty-bucket
// walk there doubled the scan work per event. Under the interface
// precondition (no pending event predates t), an event at <= t can
// only be the overflow minimum or live in the one wheel bucket whose
// window contains t: buckets behind the cursor were drained before the
// cursor passed them, pushes behind a parked cursor route to the
// overflow, and ring-aliased occupants of slotIndex(t) carry at >= t +
// span, which the explicit at <= t filter rejects. The cursor bucket's
// undrained remainder is kept sorted, so there a head inspection
// suffices; any other bucket is unsorted and scanned whole (buckets
// hold a handful of events at steady state).
func (q *calendarQueue) hasEventAt(t Time) bool {
	if q.overflow.len() > 0 && q.overflow.peekTime() <= t {
		return true
	}
	if q.count == 0 {
		return false
	}
	i := q.slotIndex(t)
	s := q.slots[i]
	if i == q.cur {
		return q.head < len(s) && s[q.head].at <= t
	}
	for j := range s {
		if s[j].at <= t {
			return true
		}
	}
	return false
}

// nextWheel parks the cursor on the bucket holding the earliest wheel
// event, sorting it on entry, and reports whether the wheel holds any
// event at all. Advancing past empty buckets is amortized against the
// clock advance that made them reachable.
func (q *calendarQueue) nextWheel() bool {
	if q.count == 0 {
		return false
	}
	for q.head >= len(q.slots[q.cur]) {
		q.head = 0
		q.cur = (q.cur + 1) & q.mask
		q.curStart += q.width()
		if s := q.slots[q.cur]; len(s) > 0 {
			sortEvents(s)
			break
		}
	}
	return true
}

// migrate re-bases the empty wheel at the overflow minimum and pulls
// every overflow event inside the new window into its bucket. Heap
// pops arrive in ascending (at, seq) order, so the per-bucket appends
// stay sorted without extra work.
func (q *calendarQueue) migrate() {
	first := q.overflow.pop()
	q.rebase(first.at)
	q.appendSlot(q.cur, first)
	q.count++
	horizon := q.curStart + q.span()
	if horizon < q.curStart {
		horizon = Forever // alignment overflow near the end of time
	}
	for q.overflow.len() > 0 && q.overflow.peekTime() < horizon {
		e := q.overflow.pop()
		q.appendSlot(q.slotIndex(e.at), e)
		q.count++
	}
}

// rebase parks the cursor on the bucket containing t. The wheel must
// be empty: buckets behind the new cursor would otherwise alias onto
// wrong times.
func (q *calendarQueue) rebase(t Time) {
	q.cur = q.slotIndex(t)
	q.curStart = t &^ (q.width() - 1)
	q.head = 0
}

// appendSlot appends to bucket i, drawing backing storage from the
// freelist of drained buckets so the warm steady state never
// allocates.
func (q *calendarQueue) appendSlot(i int, e event) {
	s := q.slots[i]
	if cap(s) == 0 {
		if n := len(q.free) - 1; n >= 0 {
			s = q.free[n]
			q.free = q.free[:n]
		}
	}
	q.slots[i] = append(s, e)
}

// insertCurrent places e at its sorted position within the undrained
// remainder of the cursor bucket. A locally scheduled event carries
// the largest (schedAt, seq) issued so far, so among equal timestamps
// it lands after every incumbent; imported events (Engine.PushAt) may
// carry an older schedAt and land earlier — the binary search on the
// full (at, schedAt, seq) order covers both.
func (q *calendarQueue) insertCurrent(e event) {
	s := q.slots[q.cur]
	lo, hi := q.head, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventLess(e, s[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	q.appendSlot(q.cur, event{})
	s = q.slots[q.cur]
	copy(s[lo+1:], s[lo:len(s)-1])
	s[lo] = e
}

// sortEvents orders a bucket by (at, schedAt, seq). Keys are unique, so an
// unstable sort yields the exact dispatch order. Buckets fill in seq
// order and mostly in at order, a pattern pdqsort handles in near
// linear time; the call allocates nothing.
func sortEvents(s []event) {
	slices.SortFunc(s, func(a, b event) int {
		if eventLess(a, b) {
			return -1
		}
		return 1
	})
}

// prealloc seeds the bucket freelist and the overflow so roughly n
// standing events fit without growth. The chunks share one backing
// allocation; a bucket outgrowing its chunk falls back to append's
// usual regrow. No-op on storage that is already warm (e.g. a queue
// recycled through a QueueArena).
func (q *calendarQueue) prealloc(n int) {
	if len(q.free) > 0 || cap(q.overflow.ev) > 0 {
		return
	}
	const chunk = 64
	chunks := (n + chunk - 1) / chunk
	if chunks > 256 {
		chunks = 256
	}
	backing := make([]event, chunks*chunk)
	for c := 0; c < chunks; c++ {
		q.free = append(q.free, backing[c*chunk:c*chunk:(c+1)*chunk])
	}
	q.overflow.ev = make([]event, 0, n/4+16)
}

// reset empties the queue for reuse, keeping every backing array (the
// per-bucket slices, the freelist and the overflow heap's array).
func (q *calendarQueue) reset() {
	for i, s := range q.slots {
		if len(s) > 0 {
			clear(s) // release actions for GC
			q.slots[i] = s[:0]
		}
	}
	q.cur = 0
	q.curStart = 0
	q.head = 0
	q.count = 0
	q.overflow.reset()
}

package sim

// Ticker drives a recurring callback on the simulation clock — the
// shared scheduling skeleton of the fault watchdog and the invariant
// auditor. The callback decides termination: returning stop=true ends
// the ticker, and a stopped ticker leaves no event behind (Stop turns
// an already-scheduled fire into a no-op that does not reschedule).
//
// A self-auditing component cannot simply tick forever: once the rest
// of the simulation drains, its own tick would be the only event left
// and an unbounded run would never return. The standard callback
// pattern is therefore "check invariants; report; return stop=true
// when nothing else is pending" (see faults.Watchdog and check.Auditor).
type Ticker struct {
	eng    *Engine
	period Time
	tick   func(now Time) (stop bool)

	running   bool
	scheduled bool // a fire event is sitting in the engine queue
	ticks     uint64
	fn        func()
}

// NewTicker builds a ticker firing tick every period on eng. Call
// Start to schedule the first fire.
func NewTicker(eng *Engine, period Time, tick func(now Time) (stop bool)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{eng: eng, period: period, tick: tick}
	t.fn = t.fire
	return t
}

// Start schedules the first tick one period from now. Starting a
// running ticker is a no-op; a stopped ticker may be restarted.
func (t *Ticker) Start() {
	if t.running {
		return
	}
	t.running = true
	if !t.scheduled {
		t.schedule()
	}
}

// Stop prevents further ticks. An already-scheduled fire becomes a
// no-op (the event still occupies the queue until its timestamp).
func (t *Ticker) Stop() { t.running = false }

// Ticks returns how many times the callback has run.
func (t *Ticker) Ticks() uint64 { return t.ticks }

// Scheduled reports whether a fire event is currently sitting in the
// engine queue — Pending-event accounting that wants to exclude the
// ticker's own bookkeeping (e.g. "is anything besides the auditor
// still alive?") subtracts it.
func (t *Ticker) Scheduled() bool { return t.scheduled }

func (t *Ticker) schedule() {
	t.scheduled = true
	t.eng.Schedule(t.period, t.fn)
}

func (t *Ticker) fire() {
	t.scheduled = false
	if !t.running {
		return
	}
	t.ticks++
	if t.tick(t.eng.Now()) {
		t.running = false
		return
	}
	t.schedule()
}

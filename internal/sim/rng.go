package sim

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded via SplitMix64). The simulator does not use
// math/rand so that results are stable across Go releases: the paper's
// experiments are reported as statistics over seeded runs, and a
// generator change would silently shift every number in
// EXPERIMENTS.md.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
// Distinct seeds, including 0, yield well-separated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 expansion of the seed into the xoshiro state; this is
	// the initialization recommended by the xoshiro authors.
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Split derives an independent generator for a subcomponent. Each call
// with a distinct tag yields a distinct stream, so components (hosts,
// traffic generators, topology builders) can be seeded from one master
// seed without sharing state.
func (r *RNG) Split(tag uint64) *RNG {
	return NewRNG(r.Uint64() ^ (tag * 0x9e3779b97f4a7c15))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and avoids a
	// modulo on the hot path.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// ExpTime returns an exponentially distributed interval with the given
// mean, rounded to nanoseconds with a 1 ns floor so the event loop
// always advances. It is used for packet inter-arrival times.
func (r *RNG) ExpTime(mean float64) Time {
	u := r.Float64()
	// Guard against log(0); Float64 is in [0,1) so 1-u is in (0,1].
	d := -mean * math.Log(1-u)
	if d < 1 {
		return 1
	}
	if d >= math.MaxInt64 {
		return Forever
	}
	return Time(d)
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *RNG) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

package sim

import "testing"

// FuzzEventQueueOrdering fuzzes the scheduler-equivalence property:
// any push/pop program over any wheel geometry must produce the exact
// heap dispatch sequence. The seed corpus pins the known-delicate
// inputs — equal-timestamp FIFO runs, bucket-boundary timestamps,
// horizon-exact pushes and far-future overflow traffic — and the
// fuzzer mutates from there. scripts/ci.sh runs a short smoke pass.
func FuzzEventQueueOrdering(f *testing.F) {
	// Opcode key (see driveQueues): 0 near, 1 equal-timestamp, 2
	// bucket boundary, 3 horizon-exact, 4 far future, 5 spread,
	// 6 pop, 7 drain burst.
	equalFIFO := []byte{1, 0, 1, 0, 1, 0, 1, 0, 6, 0, 6, 0, 1, 0, 1, 0, 7, 8}
	boundaries := []byte{2, 0, 2, 1, 2, 2, 2, 3, 6, 0, 2, 0, 2, 1, 7, 8}
	horizonExact := []byte{3, 0, 0, 5, 3, 0, 6, 0, 6, 0, 3, 0, 7, 8}
	farFuture := []byte{4, 9, 0, 3, 4, 200, 6, 0, 4, 1, 7, 255, 0, 1, 7, 255}
	drainRefill := []byte{0, 10, 0, 20, 7, 255, 0, 3, 1, 0, 7, 255, 4, 50, 7, 255}
	for _, seed := range [][]byte{equalFIFO, boundaries, horizonExact, farFuture, drainRefill} {
		f.Add(seed, uint8(3), uint8(1))
		f.Add(seed, uint8(6), uint8(0))
		f.Add(seed, uint8(defaultSlotBits), uint8(defaultWidthBits))
	}
	f.Fuzz(func(t *testing.T, program []byte, slotBits, widthBits uint8) {
		sb := uint(slotBits%10) + 1 // 2..1024 buckets
		wb := uint(widthBits % 7)   // width 1..64 ns
		if len(program) > 1<<16 {
			program = program[:1<<16]
		}
		if err := driveQueues(program, sb, wb); err != nil {
			t.Fatalf("geometry %d/%d: %v", sb, wb, err)
		}
	})
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	e := NewEngine()
	var fired Time = -1
	e.Schedule(42, func() { fired = e.Now() })
	e.RunUntilIdle()
	if fired != 42 {
		t.Fatalf("event fired at %v, want 42", fired)
	}
	if e.Now() != 42 {
		t.Fatalf("Now() = %v, want 42", e.Now())
	}
}

func TestEventsDispatchInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.RunUntilIdle()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.RunUntilIdle()
	if len(order) != 100 {
		t.Fatalf("dispatched %d events, want 100", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() {
			times = append(times, e.Now())
		})
	})
	e.RunUntilIdle()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v, want [10 15]", times)
	}
}

func TestScheduleAtCurrentTimeRunsAfterCurrentEvent(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(10, func() {
		e.Schedule(0, func() { order = append(order, "child") })
		order = append(order, "parent")
	})
	e.Schedule(10, func() { order = append(order, "sibling") })
	e.RunUntilIdle()
	want := []string{"parent", "sibling", "child"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunHorizonStopsLaterEvents(t *testing.T) {
	e := NewEngine()
	ran := map[Time]bool{}
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { ran[d] = true })
	}
	e.Run(10)
	if !ran[5] || !ran[10] {
		t.Fatalf("events at/before horizon did not run: %v", ran)
	}
	if ran[15] || ran[20] {
		t.Fatalf("events after horizon ran: %v", ran)
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	// A later Run picks the rest up.
	e.Run(Forever)
	if !ran[15] || !ran[20] {
		t.Fatalf("resumed run missed events: %v", ran)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(-1) did not panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.RunUntilIdle()
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestNilEventPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("At with nil fn did not panic")
		}
	}()
	e.At(0, nil)
}

func TestStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() { n++ })
	e.Schedule(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n = %d, want 1", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n = %d, want 2", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 17; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.RunUntilIdle()
	if e.Processed() != 17 {
		t.Fatalf("Processed() = %d, want 17", e.Processed())
	}
}

// TestHeapOrderingProperty feeds random delay sequences through the
// queue and checks the dispatch order is non-decreasing in time.
func TestHeapOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.Schedule(Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.RunUntilIdle()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestManyEventsStress(t *testing.T) {
	e := NewEngine()
	r := NewRNG(1)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		e.Schedule(Time(r.Intn(1000000)), func() { count++ })
	}
	e.RunUntilIdle()
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	r := NewRNG(7)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(r.Intn(1000)), fn)
		if e.Pending() > 1024 {
			e.RunUntilIdle()
		}
	}
	e.RunUntilIdle()
}

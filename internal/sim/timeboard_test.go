package sim

import (
	"sync"
	"testing"
	"unsafe"
)

// TestTimeBoardCellPadding pins the layout property the board exists
// for: one cell per cache line, so concurrent publishes never share.
func TestTimeBoardCellPadding(t *testing.T) {
	if s := unsafe.Sizeof(boardCell{}); s < 64 || s%64 != 0 {
		t.Fatalf("boardCell is %d bytes, want a 64-byte multiple >= 64", s)
	}
}

func TestTimeBoardPublishLoad(t *testing.T) {
	b := NewTimeBoard(3)
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	for i := 0; i < 3; i++ {
		if got := b.Next(i); got != Forever {
			t.Fatalf("cell %d initial next = %v, want Forever", i, got)
		}
		if got := b.Mask(i); got != 0 {
			t.Fatalf("cell %d initial mask = %v, want 0", i, got)
		}
	}
	b.Publish(1, 42, 0b101)
	if got := b.Next(1); got != 42 {
		t.Fatalf("Next(1) = %v, want 42", got)
	}
	if got := b.Mask(1); got != 0b101 {
		t.Fatalf("Mask(1) = %b, want 101", got)
	}
	if got := b.Next(0); got != Forever {
		t.Fatalf("Next(0) perturbed: %v", got)
	}
}

// TestTimeBoardConcurrentPublish exercises disjoint-cell publishes from
// many goroutines; under -race this proves the cells are independently
// writable.
func TestTimeBoardConcurrentPublish(t *testing.T) {
	const n = 8
	b := NewTimeBoard(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				b.Publish(i, Time(i*1000+k), uint64(k))
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if got := b.Next(i); got != Time(i*1000+999) {
			t.Fatalf("cell %d next = %v, want %d", i, got, i*1000+999)
		}
	}
}

package sim

import "sync/atomic"

// TimeBoard is a fixed-size array of cache-line-padded atomic cells,
// one per shard, through which the conservative-parallel coordinator
// and its window workers exchange per-barrier state without bouncing
// each other's cache lines. At the end of a window each worker
// publishes its engine's next-event time plus a bitmask of the
// destination shards it mailed; the coordinator reads one cell per
// shard instead of walking every foreign engine's queue header.
//
// The channel barrier already provides the happens-before edges the
// race detector needs; the atomics exist so the cells stay individually
// readable from the coordinator while padding keeps two workers'
// publishes from sharing a line.
type TimeBoard struct {
	cells []boardCell
}

// boardCell is padded out to 64 bytes so adjacent shards' publishes
// never contend on one cache line.
type boardCell struct {
	next atomic.Int64
	mask atomic.Uint64
	_    [48]byte
}

// NewTimeBoard returns a board with n cells, each initialized to
// (Forever, 0) — "no pending work, nothing mailed".
func NewTimeBoard(n int) *TimeBoard {
	b := &TimeBoard{cells: make([]boardCell, n)}
	for i := range b.cells {
		b.cells[i].next.Store(int64(Forever))
	}
	return b
}

// Publish records shard i's next-event time and outbox-destination
// mask.
func (b *TimeBoard) Publish(i int, next Time, mask uint64) {
	c := &b.cells[i]
	c.next.Store(int64(next))
	c.mask.Store(mask)
}

// Next returns the last next-event time published for shard i.
func (b *TimeBoard) Next(i int) Time { return Time(b.cells[i].next.Load()) }

// Mask returns the last outbox-destination mask published for shard i.
func (b *TimeBoard) Mask(i int) uint64 { return b.cells[i].mask.Load() }

// Len returns the number of cells.
func (b *TimeBoard) Len() int { return len(b.cells) }

package sim

// Action is a schedulable unit of work. The engine accepts either a
// plain closure (Schedule/At) or an Action (ScheduleAction/AtAction);
// the latter is the allocation-free fast path: components keep a pool
// of structs implementing Action and reuse them across events, so the
// per-hop event traffic of a saturated simulation stops allocating a
// fresh closure per event.
type Action interface {
	// Do performs the event. It runs with the engine clock already
	// advanced to the event's timestamp.
	Do()
}

// funcAction adapts a closure to the Action interface. A func value is
// pointer-shaped, so the conversion stores it directly in the
// interface without a heap allocation.
type funcAction func()

func (f funcAction) Do() { f() }

// event is a scheduled callback. Events with equal timestamps fire in
// the order they were scheduled (FIFO), which the seq field enforces;
// without it, dispatch order among equal keys would depend on queue
// internals and simulations would not be reproducible across refactors.
type event struct {
	at  Time
	seq uint64
	act Action
}

// eventLess is the engine's total dispatch order: (at, seq)
// lexicographic. seq values are unique, so two distinct events never
// compare equal and every scheduler implementation must realize the
// exact same sequence.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is the scheduler contract the engine dispatches through.
// Implementations must dispatch in exact (at, seq) order — this is a
// correctness requirement, not an approximation: the determinism
// goldens hash entire experiment artifacts, so any reordering among
// equal timestamps or across bucket boundaries is a test failure.
//
// Two implementations exist: calendarQueue (the default, O(1)
// amortized for the short-horizon event traffic of a saturated
// subnet) and heapQueue (the O(log n) reference, also serving as the
// calendar's far-future overflow level). The differential property
// test and FuzzEventQueueOrdering drive both side by side.
type eventQueue interface {
	len() int
	push(event)
	pop() event
	peekTime() Time
}

// heapQueue is a binary min-heap of events ordered by (at, seq).
// It is hand-rolled rather than built on container/heap to avoid the
// interface boxing and indirect calls on the hot path: a saturated
// 64-switch simulation pushes and pops tens of millions of events.
type heapQueue struct {
	ev []event
}

func (q *heapQueue) len() int { return len(q.ev) }

func (q *heapQueue) less(i, j int) bool { return eventLess(q.ev[i], q.ev[j]) }

// push inserts an event and restores the heap property.
func (q *heapQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

// pop removes and returns the earliest event. It must not be called on
// an empty queue.
func (q *heapQueue) pop() event {
	top := q.ev[0]
	last := len(q.ev) - 1
	q.ev[0] = q.ev[last]
	q.ev[last] = event{} // release the action for GC
	q.ev = q.ev[:last]
	q.siftDown(0)
	return top
}

func (q *heapQueue) siftDown(i int) {
	n := len(q.ev)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.ev[i], q.ev[smallest] = q.ev[smallest], q.ev[i]
		i = smallest
	}
}

// peek returns the earliest event without removing it. It must not be
// called on an empty queue.
func (q *heapQueue) peek() event { return q.ev[0] }

// peekTime returns the timestamp of the earliest event, or Forever if
// the queue is empty.
func (q *heapQueue) peekTime() Time {
	if len(q.ev) == 0 {
		return Forever
	}
	return q.ev[0].at
}

// reset empties the heap for reuse, keeping the backing array.
func (q *heapQueue) reset() {
	clear(q.ev)
	q.ev = q.ev[:0]
}

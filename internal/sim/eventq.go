package sim

import "math"

// Action is a schedulable unit of work. The engine accepts either a
// plain closure (Schedule/At) or an Action (ScheduleAction/AtAction);
// the latter is the allocation-free fast path: components keep a pool
// of structs implementing Action and reuse them across events, so the
// per-hop event traffic of a saturated simulation stops allocating a
// fresh closure per event.
type Action interface {
	// Do performs the event. It runs with the engine clock already
	// advanced to the event's timestamp.
	Do()
}

// funcAction adapts a closure to the Action interface. A func value is
// pointer-shaped, so the conversion stores it directly in the
// interface without a heap allocation.
type funcAction func()

func (f funcAction) Do() { f() }

// event is a scheduled callback. The logical dispatch order is
// (at, schedAt, seq) lexicographic: earlier timestamps first, equal
// timestamps in schedule-time order, FIFO among events scheduled at
// the same instant. schedAt exists for the sharded engine — when
// events from several shard queues merge, (at, schedAt) is a causally
// meaningful cross-shard key where per-queue seq values are not
// comparable. Within a single engine schedAt is nondecreasing in seq
// (the clock never runs backwards), so for sequential runs the order
// coincides with the historical (at, seq) order.
//
// The (schedAt, seq) tiebreak is packed into one word (see eventKey)
// so the struct stays at 32 bytes and the comparator at two integer
// compares: carrying schedAt as a third field measurably slowed the
// bucket sorts of saturated sequential runs (~20% wall time at 64
// switches).
type event struct {
	at  Time
	key uint64
	act Action
}

// eventKey packs (schedAt, seq) into a single uint64 that compares in
// (schedAt ascending, seq ascending) order among events with equal
// at: the high half holds the bit-inverted schedule distance
// at-schedAt (older schedAt → larger distance → smaller inverted
// half), the low half the engine's 32-bit sequence number.
//
// The distance saturates at MaxUint32 ns (~4.3 s of simulated time).
// Saturation preserves the exact dispatch order: within one engine
// schedAt is nondecreasing in seq, so ties created by the clamp fall
// back to seq, which already equals schedule order; across engines
// the shard coordinator only merges events scheduled within one
// lookahead window of their timestamp, far below the clamp. Nothing
// in the model schedules seconds ahead — the clamp is a safety rail,
// not a working regime.
func eventKey(at, schedAt Time, seq uint64) uint64 {
	delta := uint64(at - schedAt)
	if delta > math.MaxUint32 {
		delta = math.MaxUint32
	}
	return uint64(^uint32(delta))<<32 | seq
}

// keySchedAt recovers the schedule time encoded in an event's key
// (saturated distances decode to at - MaxUint32).
func keySchedAt(at Time, key uint64) Time {
	return at - Time(^uint32(key>>32))
}

// eventLess is the engine's total dispatch order: (at, schedAt, seq)
// lexicographic via the packed key. Sequence numbers are unique
// within an engine, so two distinct events never compare equal and
// every scheduler implementation must realize the exact same
// sequence.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.key < b.key
}

// eventQueue is the scheduler contract the engine dispatches through.
// Implementations must dispatch in exact (at, seq) order — this is a
// correctness requirement, not an approximation: the determinism
// goldens hash entire experiment artifacts, so any reordering among
// equal timestamps or across bucket boundaries is a test failure.
//
// Two implementations exist: calendarQueue (the default, O(1)
// amortized for the short-horizon event traffic of a saturated
// subnet) and heapQueue (the O(log n) reference, also serving as the
// calendar's far-future overflow level). The differential property
// test and FuzzEventQueueOrdering drive both side by side.
type eventQueue interface {
	len() int
	push(event)
	pop() event
	// popAtMost pops and returns the earliest event if its timestamp is
	// at or before horizon; otherwise it leaves the queue untouched and
	// reports false. It fuses the peekTime+pop pair the dispatch loop
	// would otherwise issue — for the calendar that is one cursor walk
	// instead of two per dispatched event.
	popAtMost(horizon Time) (event, bool)
	// popBefore pops and returns the earliest event if it orders
	// strictly before bound under the full (at, key) dispatch order.
	// The engine uses it to merge its immediate-event FIFO (see
	// Engine.imm) against the queue.
	popBefore(bound event) (event, bool)
	peekTime() Time
	// hasEventAt reports whether any pending event is scheduled at or
	// before t. Callers pass the engine clock mid-dispatch, so every
	// pending event satisfies at >= t and the probe is really "does
	// anything share the current timestamp" — which implementations can
	// answer without the full earliest-event search peekTime performs.
	hasEventAt(t Time) bool
}

// heapQueue is a binary min-heap of events ordered by (at, seq).
// It is hand-rolled rather than built on container/heap to avoid the
// interface boxing and indirect calls on the hot path: a saturated
// 64-switch simulation pushes and pops tens of millions of events.
type heapQueue struct {
	ev []event
}

func (q *heapQueue) len() int { return len(q.ev) }

func (q *heapQueue) less(i, j int) bool { return eventLess(q.ev[i], q.ev[j]) }

// push inserts an event and restores the heap property.
func (q *heapQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

// pop removes and returns the earliest event. It must not be called on
// an empty queue.
func (q *heapQueue) pop() event {
	top := q.ev[0]
	last := len(q.ev) - 1
	q.ev[0] = q.ev[last]
	q.ev[last] = event{} // release the action for GC
	q.ev = q.ev[:last]
	q.siftDown(0)
	return top
}

func (q *heapQueue) siftDown(i int) {
	n := len(q.ev)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.ev[i], q.ev[smallest] = q.ev[smallest], q.ev[i]
		i = smallest
	}
}

// peek returns the earliest event without removing it. It must not be
// called on an empty queue.
func (q *heapQueue) peek() event { return q.ev[0] }

// popAtMost pops the root if it is due at or before horizon.
func (q *heapQueue) popAtMost(horizon Time) (event, bool) {
	if len(q.ev) == 0 || q.ev[0].at > horizon {
		return event{}, false
	}
	return q.pop(), true
}

// popBefore pops the root if it orders strictly before bound.
func (q *heapQueue) popBefore(bound event) (event, bool) {
	if len(q.ev) == 0 || !eventLess(q.ev[0], bound) {
		return event{}, false
	}
	return q.pop(), true
}

// peekTime returns the timestamp of the earliest event, or Forever if
// the queue is empty.
func (q *heapQueue) peekTime() Time {
	if len(q.ev) == 0 {
		return Forever
	}
	return q.ev[0].at
}

// hasEventAt reports whether any event is scheduled at or before t —
// for the heap just a root inspection.
func (q *heapQueue) hasEventAt(t Time) bool {
	return len(q.ev) > 0 && q.ev[0].at <= t
}

// reset empties the heap for reuse, keeping the backing array.
func (q *heapQueue) reset() {
	clear(q.ev)
	q.ev = q.ev[:0]
}

package sim

import (
	"fmt"
	"testing"
)

// countAction is a minimal pooled-style Action.
type countAction struct{ n int }

func (a *countAction) Do() { a.n++ }

func TestActionFIFOWithClosures(t *testing.T) {
	// Actions and closures scheduled at one timestamp share the same
	// sequence counter, so they interleave in scheduling order.
	e := NewEngine()
	var order []int
	a := &appendAction{order: &order, v: 1}
	e.Schedule(0, func() { order = append(order, 0) })
	e.ScheduleAction(0, a)
	e.Schedule(0, func() { order = append(order, 2) })
	e.RunUntilIdle()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("dispatch order %v, want [0 1 2]", order)
	}
}

type appendAction struct {
	order *[]int
	v     int
}

func (a *appendAction) Do() { *a.order = append(*a.order, a.v) }

func TestScheduleActionNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil action accepted")
		}
	}()
	NewEngine().ScheduleAction(0, nil)
}

// TestSchedulePopZeroAllocsWarm is the alloc regression gate for the
// engine itself: once the queue's backing array has grown, a
// schedule/dispatch cycle of a reused Action — and of a reused closure
// — must not allocate.
func TestSchedulePopZeroAllocsWarm(t *testing.T) {
	e := NewEngine()
	a := &countAction{}
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the queue's backing array
		e.ScheduleAction(Time(i), a)
	}
	e.RunUntilIdle()
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleAction(1, a)
		e.Schedule(2, fn)
		e.Step()
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("warm schedule/dispatch allocates %v objects, want 0", allocs)
	}
}

// TestQueueArenaReuseZeroAllocs is the sweep-reuse gate: once a
// QueueArena holds the drained storage of a completed run, building
// the next engine from it and pushing a comparable standing load must
// not grow queue storage. The two allocations left are fixed-size
// construction costs — the Engine struct and the option-applied
// engineConfig that escapes through the EngineOption closures — so
// anything above 2 means per-run storage is being regrown.
func TestQueueArenaReuseZeroAllocs(t *testing.T) {
	arena := NewQueueArena()
	a := &countAction{}
	opts := []EngineOption{WithArena(arena)}
	allocs := testing.AllocsPerRun(20, func() {
		e := NewEngine(opts...)
		for i := 0; i < 2048; i++ {
			e.ScheduleAction(Time(i%512), a)
		}
		e.RunUntilIdle()
		e.Recycle()
	})
	if allocs > 2 {
		t.Fatalf("arena-recycled run allocates %v objects, want ≤ 2 (Engine struct + engineConfig)", allocs)
	}
}

// TestEngineHeapSchedulerZeroAllocsWarm keeps the heap fallback under
// the same alloc discipline as the default scheduler.
func TestEngineHeapSchedulerZeroAllocsWarm(t *testing.T) {
	e := NewEngine(WithScheduler(SchedulerHeap))
	a := &countAction{}
	for i := 0; i < 64; i++ {
		e.ScheduleAction(Time(i), a)
	}
	e.RunUntilIdle()
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleAction(1, a)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("warm heap schedule/dispatch allocates %v objects, want 0", allocs)
	}
}

// BenchmarkEnginePushPop measures a schedule+dispatch cycle through
// the typed-action fast path.
func BenchmarkEnginePushPop(b *testing.B) {
	e := NewEngine()
	a := &countAction{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleAction(1, a)
		e.Step()
	}
}

// BenchmarkEnginePushPopDepth measures the heap at a realistic standing
// queue depth (a saturated 64-switch subnet keeps thousands of events
// pending).
func BenchmarkEnginePushPopDepth(b *testing.B) {
	e := NewEngine()
	a := &countAction{}
	const depth = 4096
	for i := 0; i < depth; i++ {
		e.ScheduleAction(Time(i%64), a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleAction(Time(i%64)+1, a)
		e.Step()
	}
}

// BenchmarkEventQueueDepth sweeps the standing queue depth for both
// scheduler implementations on a hop-like delay distribution (0..4095
// ns ahead, the fabric's routing+propagation+serialization horizon).
// scripts/bench.sh records the grid as BENCH_eventq.json; the
// calendar's flat curve against the heap's log-n climb is the
// tentpole win of the scheduler PR.
func BenchmarkEventQueueDepth(b *testing.B) {
	impls := []struct {
		name string
		opts []EngineOption
	}{
		{"calendar", nil},
		{"heap", []EngineOption{WithScheduler(SchedulerHeap)}},
	}
	for _, impl := range impls {
		for _, depth := range []int{1 << 10, 1 << 14, 1 << 18} {
			b.Run(fmt.Sprintf("%s/depth=%d", impl.name, depth), func(b *testing.B) {
				e := NewEngine(impl.opts...)
				a := &countAction{}
				r := NewRNG(11)
				for i := 0; i < depth; i++ {
					e.ScheduleAction(Time(r.Intn(4096)), a)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.ScheduleAction(Time(r.Intn(4096))+1, a)
					e.Step()
				}
			})
		}
	}
}

package sim

import "testing"

// countAction is a minimal pooled-style Action.
type countAction struct{ n int }

func (a *countAction) Do() { a.n++ }

func TestActionFIFOWithClosures(t *testing.T) {
	// Actions and closures scheduled at one timestamp share the same
	// sequence counter, so they interleave in scheduling order.
	e := NewEngine()
	var order []int
	a := &appendAction{order: &order, v: 1}
	e.Schedule(0, func() { order = append(order, 0) })
	e.ScheduleAction(0, a)
	e.Schedule(0, func() { order = append(order, 2) })
	e.RunUntilIdle()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("dispatch order %v, want [0 1 2]", order)
	}
}

type appendAction struct {
	order *[]int
	v     int
}

func (a *appendAction) Do() { *a.order = append(*a.order, a.v) }

func TestScheduleActionNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil action accepted")
		}
	}()
	NewEngine().ScheduleAction(0, nil)
}

// TestSchedulePopZeroAllocsWarm is the alloc regression gate for the
// engine itself: once the queue's backing array has grown, a
// schedule/dispatch cycle of a reused Action — and of a reused closure
// — must not allocate.
func TestSchedulePopZeroAllocsWarm(t *testing.T) {
	e := NewEngine()
	a := &countAction{}
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the queue's backing array
		e.ScheduleAction(Time(i), a)
	}
	e.RunUntilIdle()
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleAction(1, a)
		e.Schedule(2, fn)
		e.Step()
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("warm schedule/dispatch allocates %v objects, want 0", allocs)
	}
}

// BenchmarkEnginePushPop measures a schedule+dispatch cycle through
// the typed-action fast path.
func BenchmarkEnginePushPop(b *testing.B) {
	e := NewEngine()
	a := &countAction{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleAction(1, a)
		e.Step()
	}
}

// BenchmarkEnginePushPopDepth measures the heap at a realistic standing
// queue depth (a saturated 64-switch subnet keeps thousands of events
// pending).
func BenchmarkEnginePushPopDepth(b *testing.B) {
	e := NewEngine()
	a := &countAction{}
	const depth = 4096
	for i := 0; i < depth; i++ {
		e.ScheduleAction(Time(i%64), a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleAction(Time(i%64)+1, a)
		e.Step()
	}
}

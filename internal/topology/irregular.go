package topology

import (
	"fmt"

	"ibasim/internal/sim"
)

// IrregularSpec describes a randomly generated irregular topology with
// the paper's constraints (§5.1): every switch has the same total port
// count and the same number of attached hosts, neighbouring switches
// are connected by exactly one link, and the switch graph is connected.
// The inter-switch degree is SwitchPorts - HostsPerSwitch for every
// switch, i.e. the graph is regular (the paper's "4 links" / "6 links"
// configurations).
type IrregularSpec struct {
	NumSwitches    int
	HostsPerSwitch int    // paper: 4
	InterSwitch    int    // links to other switches per switch: 4 or 6
	Seed           uint64 // generation seed; same seed, same topology
}

// SwitchPorts returns the total ports per switch implied by the spec.
func (s IrregularSpec) SwitchPorts() int { return s.HostsPerSwitch + s.InterSwitch }

// GenerateIrregular builds a random connected InterSwitch-regular
// simple graph. It starts from a circulant graph (always connected and
// regular) and randomizes it with double-edge swaps — the standard
// degree-preserving Markov chain — rejecting swaps that would create
// self-loops or duplicate links and re-randomizing if the result is
// disconnected. Unlike the configuration model this works at any edge
// density, including the paper's near-complete 6-regular 8-switch case.
func GenerateIrregular(spec IrregularSpec) (*Topology, error) {
	n, k := spec.NumSwitches, spec.InterSwitch
	if n <= 0 || k < 0 || spec.HostsPerSwitch < 0 {
		return nil, fmt.Errorf("topology: invalid spec %+v", spec)
	}
	if k >= n {
		return nil, fmt.Errorf("topology: degree %d impossible with %d switches", k, n)
	}
	if n*k%2 != 0 {
		return nil, fmt.Errorf("topology: %d switches of degree %d (odd stub count)", n, k)
	}
	rng := sim.NewRNG(spec.Seed ^ 0x49424153) // mix a package tag into the seed
	t, err := circulant(spec)
	if err != nil {
		return nil, err
	}
	// Mix well past the chain's empirical mixing time, then keep
	// swapping in smaller batches until connectivity holds.
	swaps := 20 * len(t.Links)
	const maxRounds = 200
	for round := 0; round < maxRounds; round++ {
		doubleEdgeSwaps(t, rng, swaps)
		if t.Connected() {
			return t, nil
		}
		swaps = 2 * len(t.Links)
	}
	return nil, fmt.Errorf("topology: no connected %d-regular graph on %d switches after %d rounds",
		k, n, maxRounds)
}

// circulant builds the connected k-regular circulant graph on n
// vertices: vertex v connects to v±1, v±2, ..., v±k/2 (mod n), plus
// v+n/2 when k is odd (n must then be even, which the parity check in
// GenerateIrregular guarantees).
func circulant(spec IrregularSpec) (*Topology, error) {
	n, k := spec.NumSwitches, spec.InterSwitch
	t := New(n, spec.HostsPerSwitch, spec.SwitchPorts())
	for off := 1; off <= k/2; off++ {
		for v := 0; v < n; v++ {
			a, b := v, (v+off)%n
			if a > b {
				a, b = b, a
			}
			if !t.HasLink(a, b) {
				if err := t.AddLink(a, b); err != nil {
					return nil, err
				}
			}
		}
	}
	if k%2 == 1 {
		for v := 0; v < n/2; v++ {
			if err := t.AddLink(v, v+n/2); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// doubleEdgeSwaps performs up to attempts random degree-preserving
// rewires: links (a,b) and (c,d) become (a,d) and (c,b) when that
// introduces no self-loop or duplicate.
func doubleEdgeSwaps(t *Topology, rng *sim.RNG, attempts int) {
	m := len(t.Links)
	if m < 2 {
		return
	}
	for s := 0; s < attempts; s++ {
		i := rng.Intn(m)
		j := rng.Intn(m)
		if i == j {
			continue
		}
		l1, l2 := t.Links[i], t.Links[j]
		a, b, c, d := l1.A, l1.B, l2.A, l2.B
		// Randomly choose one of the two rewirings to keep the chain
		// symmetric.
		if rng.Bool(0.5) {
			c, d = d, c
		}
		// Proposed new links: (a,d) and (c,b).
		if a == d || c == b {
			continue
		}
		n1 := Link{A: min(a, d), B: max(a, d)}
		n2 := Link{A: min(c, b), B: max(c, b)}
		if n1 == n2 || t.HasLink(n1.A, n1.B) || t.HasLink(n2.A, n2.B) {
			continue
		}
		t.Links[i] = n1
		t.Links[j] = n2
		t.adj = nil
	}
}

// MustGenerateIrregular is GenerateIrregular for specs known to be
// feasible (experiment harnesses, examples); it panics on error.
func MustGenerateIrregular(spec IrregularSpec) *Topology {
	t, err := GenerateIrregular(spec)
	if err != nil {
		panic(err)
	}
	return t
}

// GenerateSeedSet builds count topologies from consecutive seeds
// starting at firstSeed, as the paper does ("ten different topologies
// randomly generated for each network size").
func GenerateSeedSet(spec IrregularSpec, firstSeed uint64, count int) ([]*Topology, error) {
	out := make([]*Topology, 0, count)
	for i := 0; i < count; i++ {
		s := spec
		s.Seed = firstSeed + uint64(i)
		t, err := GenerateIrregular(s)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", s.Seed, err)
		}
		out = append(out, t)
	}
	return out, nil
}

package topology

import (
	"testing"
	"testing/quick"
)

func TestGenerateIrregularPaperSizes(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		for _, k := range []int{4, 6} {
			spec := IrregularSpec{NumSwitches: n, HostsPerSwitch: 4, InterSwitch: k, Seed: 1}
			top, err := GenerateIrregular(spec)
			if err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			if err := top.Validate(); err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			for s := 0; s < n; s++ {
				if d := top.Degree(s); d != k {
					t.Fatalf("n=%d k=%d: switch %d degree %d", n, k, s, d)
				}
			}
		}
	}
}

func TestGenerateIrregularDeterministic(t *testing.T) {
	spec := IrregularSpec{NumSwitches: 16, HostsPerSwitch: 4, InterSwitch: 4, Seed: 42}
	a := MustGenerateIrregular(spec)
	b := MustGenerateIrregular(spec)
	if len(a.Links) != len(b.Links) {
		t.Fatalf("link counts differ: %d vs %d", len(a.Links), len(b.Links))
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, a.Links[i], b.Links[i])
		}
	}
}

func TestGenerateIrregularSeedsDiffer(t *testing.T) {
	spec := IrregularSpec{NumSwitches: 16, HostsPerSwitch: 4, InterSwitch: 4}
	spec.Seed = 1
	a := MustGenerateIrregular(spec)
	spec.Seed = 2
	b := MustGenerateIrregular(spec)
	same := true
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical topologies")
	}
}

func TestGenerateIrregularRejectsInfeasible(t *testing.T) {
	cases := []IrregularSpec{
		{NumSwitches: 0, HostsPerSwitch: 4, InterSwitch: 4},
		{NumSwitches: 4, HostsPerSwitch: 4, InterSwitch: 4},  // degree >= n
		{NumSwitches: 5, HostsPerSwitch: 4, InterSwitch: 3},  // odd stub count
		{NumSwitches: 8, HostsPerSwitch: -1, InterSwitch: 4}, // negative hosts
	}
	for _, spec := range cases {
		if _, err := GenerateIrregular(spec); err == nil {
			t.Fatalf("spec %+v accepted", spec)
		}
	}
}

func TestGenerateIrregularLinkCount(t *testing.T) {
	// A k-regular graph on n vertices has nk/2 edges.
	top := MustGenerateIrregular(IrregularSpec{NumSwitches: 32, HostsPerSwitch: 4, InterSwitch: 6, Seed: 3})
	if want := 32 * 6 / 2; len(top.Links) != want {
		t.Fatalf("links = %d, want %d", len(top.Links), want)
	}
}

func TestGenerateSeedSet(t *testing.T) {
	spec := IrregularSpec{NumSwitches: 8, HostsPerSwitch: 4, InterSwitch: 4}
	set, err := GenerateSeedSet(spec, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 10 {
		t.Fatalf("set size = %d, want 10", len(set))
	}
	// At least two of the ten should differ (overwhelmingly likely).
	distinct := false
	for i := 1; i < len(set); i++ {
		for j := range set[0].Links {
			if set[0].Links[j] != set[i].Links[j] {
				distinct = true
			}
		}
	}
	if !distinct {
		t.Fatal("all seeded topologies identical")
	}
}

// TestIrregularPropertyInvariants checks generator invariants across
// random seeds: regular degree, connected, single link per pair.
func TestIrregularPropertyInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		top, err := GenerateIrregular(IrregularSpec{
			NumSwitches: 16, HostsPerSwitch: 4, InterSwitch: 4, Seed: seed,
		})
		if err != nil {
			return false
		}
		if top.Validate() != nil || !top.Connected() {
			return false
		}
		for s := 0; s < top.NumSwitches; s++ {
			if top.Degree(s) != 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerateIrregular64(b *testing.B) {
	spec := IrregularSpec{NumSwitches: 64, HostsPerSwitch: 4, InterSwitch: 4}
	for i := 0; i < b.N; i++ {
		spec.Seed = uint64(i)
		if _, err := GenerateIrregular(spec); err != nil {
			b.Fatal(err)
		}
	}
}

package topology

import "fmt"

// FatTreeSpec describes a k-ary n-tree: n levels of k^(n-1) switches,
// k^n hosts attached to the level-0 (leaf) switches, every switch
// with k down ports and k up ports (2k ports total; the root level
// leaves its up ports unwired). This is the structured fabric the
// related work evaluates D-mod-K and adaptive routing on
// (Rocher-Gonzalez et al.).
type FatTreeSpec struct {
	Arity  int // k: down links (and hosts per leaf)
	Levels int // n: tree levels, >= 2
}

// NumSwitches returns n * k^(n-1).
func (s FatTreeSpec) NumSwitches() int { return s.Levels * pow(s.Arity, s.Levels-1) }

// NumHosts returns k^n.
func (s FatTreeSpec) NumHosts() int { return pow(s.Arity, s.Levels) }

// SwitchesPerLevel returns k^(n-1).
func (s FatTreeSpec) SwitchesPerLevel() int { return pow(s.Arity, s.Levels-1) }

// Validate rejects degenerate shapes.
func (s FatTreeSpec) Validate() error {
	if s.Arity < 2 || s.Levels < 2 {
		return fmt.Errorf("topology: fat-tree needs arity >= 2 and levels >= 2, got k=%d n=%d", s.Arity, s.Levels)
	}
	// Bound the size with overflow-safe arithmetic: computing
	// NumSwitches() first would wrap for huge shapes and slip past
	// the cap (found by FuzzFatTreeTopology).
	const limit = 1 << 16
	size := s.Levels
	for i := 0; i < s.Levels-1; i++ {
		if size > limit/s.Arity {
			return fmt.Errorf("topology: fat-tree k=%d n=%d exceeds %d switches (too large)", s.Arity, s.Levels, limit)
		}
		size *= s.Arity
	}
	if size > limit {
		return fmt.Errorf("topology: fat-tree k=%d n=%d has %d switches (too large)", s.Arity, s.Levels, size)
	}
	return nil
}

// String renders the spec in the -topo flag grammar.
func (s FatTreeSpec) String() string { return fmt.Sprintf("fattree:%d,%d", s.Arity, s.Levels) }

// Switch identity: a switch is (level l, position w) with l in
// [0, n) — level 0 is the leaf row, level n-1 the root row — and w in
// [0, k^(n-1)). Written in base k, w has digits w_0..w_{n-2}. The
// switch ID is l*k^(n-1) + w.
//
// Wiring rule: <l, w> and <l+1, w'> are connected iff their digits
// agree everywhere except position l, which is free. Each switch thus
// has exactly k up neighbours (vary digit l from level l) and k down
// neighbours (vary digit l seen from level l+1); ascending from a leaf
// can rewrite digits 0..n-2 one per level, so every root is reachable
// from every leaf and the graph is connected.

// SwitchID returns the ID of the switch at (level, pos).
func (s FatTreeSpec) SwitchID(level, pos int) int { return level*s.SwitchesPerLevel() + pos }

// SwitchLevel returns the level of a switch ID.
func (s FatTreeSpec) SwitchLevel(id int) int { return id / s.SwitchesPerLevel() }

// SwitchPos returns the within-level position of a switch ID.
func (s FatTreeSpec) SwitchPos(id int) int { return id % s.SwitchesPerLevel() }

// Digit returns digit i (base k) of the within-level position of id.
func (s FatTreeSpec) Digit(id, i int) int { return s.SwitchPos(id) / pow(s.Arity, i) % s.Arity }

// SetDigit returns the within-level position pos with digit i set to v.
func (s FatTreeSpec) SetDigit(pos, i, v int) int {
	p := pow(s.Arity, i)
	return pos + (v-pos/p%s.Arity)*p
}

// Name renders a switch as "Ll.d_{n-2}..d_0" — level and base-k
// digits, the family-aware label diagnostics use.
func (s FatTreeSpec) Name(id int) string {
	out := fmt.Sprintf("L%d.", s.SwitchLevel(id))
	for i := s.Levels - 2; i >= 0; i-- {
		out += fmt.Sprintf("%d", s.Digit(id, i))
	}
	return out
}

// GenerateFatTree builds the k-ary n-tree topology: hosts attach only
// to the leaf row (k per leaf), SwitchPorts is 2k for every switch.
func GenerateFatTree(spec FatTreeSpec) (*Topology, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	k, n := spec.Arity, spec.Levels
	perLevel := spec.SwitchesPerLevel()
	t := New(spec.NumSwitches(), 0, 2*k)
	t.HostsAt = make([]int, t.NumSwitches)
	t.Names = make([]string, t.NumSwitches)
	for id := 0; id < t.NumSwitches; id++ {
		t.Names[id] = spec.Name(id)
		if spec.SwitchLevel(id) == 0 {
			t.HostsAt[id] = k
		}
	}
	for l := 0; l+1 < n; l++ {
		for w := 0; w < perLevel; w++ {
			for v := 0; v < k; v++ {
				up := spec.SetDigit(w, l, v)
				if err := t.AddLink(spec.SwitchID(l, w), spec.SwitchID(l+1, up)); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MatchesFatTree reports whether topo is exactly the pristine fabric
// GenerateFatTree(spec) produces — same shape, same link set. Routing
// engines use it to detect a degraded fabric (failed links) and fall
// back to a topology-agnostic escape routing.
func MatchesFatTree(topo *Topology, spec FatTreeSpec) bool {
	pristine, err := GenerateFatTree(spec)
	if err != nil {
		return false
	}
	return sameShape(topo, pristine)
}

// sameShape reports structural equality: switch count, host
// attachment, and link set.
func sameShape(a, b *Topology) bool {
	if a.NumSwitches != b.NumSwitches || a.NumHosts() != b.NumHosts() || len(a.Links) != len(b.Links) {
		return false
	}
	for s := 0; s < a.NumSwitches; s++ {
		if a.HostCount(s) != b.HostCount(s) {
			return false
		}
	}
	for _, l := range b.Links {
		if !a.HasLink(l.A, l.B) {
			return false
		}
	}
	return true
}

// pow is integer exponentiation for the small shape arithmetic above.
func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// Package topology models InfiniBand subnet topologies: switches,
// hosts (end-node ports) attached to switches, and the point-to-point
// links between them. It provides the irregular random generator used
// throughout the paper's evaluation plus analysis helpers (distances,
// diameter, connectivity checks).
package topology

import (
	"fmt"
	"sort"
)

// Link is an undirected inter-switch cable between switches A and B.
// A < B always holds, so a link has a canonical representation and the
// "at most one link between neighbouring switches" constraint from the
// paper is checkable by set membership.
type Link struct {
	A, B int
}

// Topology describes a subnet: NumSwitches switches, HostsPerSwitch
// end-node ports attached to every switch, and the inter-switch links.
// Switch IDs are 0..NumSwitches-1. Host h (0..NumHosts-1) is attached
// to switch h / HostsPerSwitch.
type Topology struct {
	NumSwitches    int
	HostsPerSwitch int
	// SwitchPorts is the total port count of each switch (inter-switch
	// ports + host ports). It bounds the inter-switch degree.
	SwitchPorts int
	Links       []Link

	adj [][]int // adjacency lists, built lazily by Adjacency
}

// New returns a topology with the given shape and no links.
func New(numSwitches, hostsPerSwitch, switchPorts int) *Topology {
	return &Topology{
		NumSwitches:    numSwitches,
		HostsPerSwitch: hostsPerSwitch,
		SwitchPorts:    switchPorts,
	}
}

// NumHosts returns the total number of end-node ports in the subnet.
func (t *Topology) NumHosts() int { return t.NumSwitches * t.HostsPerSwitch }

// HostSwitch returns the switch a host is attached to.
func (t *Topology) HostSwitch(host int) int { return host / t.HostsPerSwitch }

// SwitchHosts returns the host IDs attached to switch s.
func (t *Topology) SwitchHosts(s int) []int {
	out := make([]int, t.HostsPerSwitch)
	for i := range out {
		out[i] = s*t.HostsPerSwitch + i
	}
	return out
}

// AddLink inserts the undirected link (a, b). It returns an error if
// the link is a self-loop, duplicates an existing link, or would exceed
// either endpoint's inter-switch port budget.
func (t *Topology) AddLink(a, b int) error {
	if a == b {
		return fmt.Errorf("topology: self-loop on switch %d", a)
	}
	if a < 0 || b < 0 || a >= t.NumSwitches || b >= t.NumSwitches {
		return fmt.Errorf("topology: link (%d,%d) out of range", a, b)
	}
	if a > b {
		a, b = b, a
	}
	if t.HasLink(a, b) {
		return fmt.Errorf("topology: duplicate link (%d,%d)", a, b)
	}
	budget := t.SwitchPorts - t.HostsPerSwitch
	if t.Degree(a) >= budget || t.Degree(b) >= budget {
		return fmt.Errorf("topology: link (%d,%d) exceeds port budget %d", a, b, budget)
	}
	t.Links = append(t.Links, Link{A: a, B: b})
	t.adj = nil
	return nil
}

// HasLink reports whether switches a and b are directly connected.
func (t *Topology) HasLink(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	for _, l := range t.Links {
		if l.A == a && l.B == b {
			return true
		}
	}
	return false
}

// Degree returns the inter-switch degree of switch s.
func (t *Topology) Degree(s int) int {
	n := 0
	for _, l := range t.Links {
		if l.A == s || l.B == s {
			n++
		}
	}
	return n
}

// Adjacency returns the neighbour list of every switch, sorted
// ascending for determinism. The result is cached; callers must not
// mutate it.
func (t *Topology) Adjacency() [][]int {
	if t.adj != nil {
		return t.adj
	}
	adj := make([][]int, t.NumSwitches)
	for _, l := range t.Links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	for _, ns := range adj {
		sort.Ints(ns)
	}
	t.adj = adj
	return adj
}

// Neighbors returns the sorted neighbour switches of s.
func (t *Topology) Neighbors(s int) []int { return t.Adjacency()[s] }

// Connected reports whether the switch graph is connected. An empty
// graph and a single switch are connected.
func (t *Topology) Connected() bool {
	if t.NumSwitches <= 1 {
		return true
	}
	seen := make([]bool, t.NumSwitches)
	stack := []int{0}
	seen[0] = true
	count := 1
	adj := t.Adjacency()
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range adj[s] {
			if !seen[n] {
				seen[n] = true
				count++
				stack = append(stack, n)
			}
		}
	}
	return count == t.NumSwitches
}

// Validate checks the structural invariants the paper's generator
// promises: connectivity, degree within the port budget, no duplicate
// links (AddLink enforces the latter two; Validate re-checks for
// topologies built by other means).
func (t *Topology) Validate() error {
	if t.NumSwitches <= 0 {
		return fmt.Errorf("topology: %d switches", t.NumSwitches)
	}
	if t.HostsPerSwitch < 0 || t.SwitchPorts < t.HostsPerSwitch {
		return fmt.Errorf("topology: %d ports cannot host %d end nodes",
			t.SwitchPorts, t.HostsPerSwitch)
	}
	seen := map[Link]bool{}
	for _, l := range t.Links {
		if l.A >= l.B || l.B >= t.NumSwitches || l.A < 0 {
			return fmt.Errorf("topology: malformed link %+v", l)
		}
		if seen[l] {
			return fmt.Errorf("topology: duplicate link %+v", l)
		}
		seen[l] = true
	}
	budget := t.SwitchPorts - t.HostsPerSwitch
	for s := 0; s < t.NumSwitches; s++ {
		if d := t.Degree(s); d > budget {
			return fmt.Errorf("topology: switch %d degree %d exceeds budget %d", s, d, budget)
		}
	}
	if !t.Connected() {
		return fmt.Errorf("topology: disconnected")
	}
	return nil
}

// Without returns a copy of the topology with the given links removed.
// Switch count, host attachment and port budget are unchanged — the
// copy describes the same physical network with some cables failed, so
// routing can be recomputed while port numbering (derived from the
// ORIGINAL adjacency) stays valid.
func (t *Topology) Without(failed ...Link) *Topology {
	dead := map[Link]bool{}
	for _, l := range failed {
		if l.A > l.B {
			l.A, l.B = l.B, l.A
		}
		dead[l] = true
	}
	out := New(t.NumSwitches, t.HostsPerSwitch, t.SwitchPorts)
	for _, l := range t.Links {
		if !dead[l] {
			out.Links = append(out.Links, l)
		}
	}
	return out
}

// Distances returns the hop distance from src to every switch (BFS on
// the switch graph). Unreachable switches get -1.
func (t *Topology) Distances(src int) []int {
	dist := make([]int, t.NumSwitches)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	adj := t.Adjacency()
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, n := range adj[s] {
			if dist[n] == -1 {
				dist[n] = dist[s] + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// AllDistances returns the full switch-to-switch hop distance matrix.
func (t *Topology) AllDistances() [][]int {
	out := make([][]int, t.NumSwitches)
	for s := range out {
		out[s] = t.Distances(s)
	}
	return out
}

// Diameter returns the longest shortest path between any two switches,
// or -1 if the graph is disconnected.
func (t *Topology) Diameter() int {
	max := 0
	for s := 0; s < t.NumSwitches; s++ {
		for _, d := range t.Distances(s) {
			if d == -1 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// AvgDistance returns the mean hop distance over ordered switch pairs
// (s != d), or 0 for a single switch.
func (t *Topology) AvgDistance() float64 {
	if t.NumSwitches < 2 {
		return 0
	}
	sum, n := 0, 0
	for s := 0; s < t.NumSwitches; s++ {
		for d, v := range t.Distances(s) {
			if d != s && v > 0 {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// String summarizes the topology shape.
func (t *Topology) String() string {
	return fmt.Sprintf("topology{switches: %d, hosts/switch: %d, ports: %d, links: %d}",
		t.NumSwitches, t.HostsPerSwitch, t.SwitchPorts, len(t.Links))
}

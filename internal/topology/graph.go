// Package topology models InfiniBand subnet topologies: switches,
// hosts (end-node ports) attached to switches, and the point-to-point
// links between them. It provides the irregular random generator used
// throughout the paper's evaluation plus analysis helpers (distances,
// diameter, connectivity checks).
package topology

import (
	"fmt"
	"sort"
)

// Link is an undirected inter-switch cable between switches A and B.
// A < B always holds, so a link has a canonical representation and the
// "at most one link between neighbouring switches" constraint from the
// paper is checkable by set membership.
type Link struct {
	A, B int
}

// Topology describes a subnet: NumSwitches switches, end-node ports
// attached to switches, and the inter-switch links. Switch IDs are
// 0..NumSwitches-1.
//
// Host attachment comes in two shapes. The uniform shape (HostsAt nil)
// attaches HostsPerSwitch hosts to every switch, so host h lives on
// switch h / HostsPerSwitch — the paper's irregular networks and the
// torus family. The explicit shape (HostsAt non-nil) gives every
// switch its own host count — fat-trees, where only leaf switches
// carry hosts. Host IDs are dense either way: switch s owns hosts
// [hostBase(s), hostBase(s)+HostCount(s)).
type Topology struct {
	NumSwitches    int
	HostsPerSwitch int
	// SwitchPorts is the total port count of each switch (inter-switch
	// ports + host ports). It bounds the inter-switch degree.
	SwitchPorts int
	Links       []Link

	// HostsAt, when non-nil, overrides the uniform host attachment:
	// HostsAt[s] hosts sit on switch s. Its length must equal
	// NumSwitches. HostsPerSwitch is ignored when set.
	HostsAt []int

	// Names, when non-nil, gives every switch a family-aware label
	// (tree level/position, torus coordinates) used by diagnostics:
	// cycle reports, DOT output, the ibtopo report.
	Names []string

	adj      [][]int // adjacency lists, built lazily by Adjacency
	hostBase []int   // prefix sums over HostsAt, built lazily
}

// New returns a topology with the given shape and no links.
func New(numSwitches, hostsPerSwitch, switchPorts int) *Topology {
	return &Topology{
		NumSwitches:    numSwitches,
		HostsPerSwitch: hostsPerSwitch,
		SwitchPorts:    switchPorts,
	}
}

// NumHosts returns the total number of end-node ports in the subnet.
func (t *Topology) NumHosts() int {
	if t.HostsAt == nil {
		return t.NumSwitches * t.HostsPerSwitch
	}
	base := t.hostBases()
	return base[len(base)-1]
}

// hostBases returns the cached prefix sums of HostsAt: hostBase[s] is
// the first host ID on switch s and hostBase[NumSwitches] the total.
// Only meaningful with explicit attachment (HostsAt non-nil).
func (t *Topology) hostBases() []int {
	if t.hostBase != nil {
		return t.hostBase
	}
	base := make([]int, t.NumSwitches+1)
	for s, h := range t.HostsAt {
		base[s+1] = base[s] + h
	}
	t.hostBase = base
	return base
}

// HostCount returns the number of hosts attached to switch s.
func (t *Topology) HostCount(s int) int {
	if t.HostsAt == nil {
		return t.HostsPerSwitch
	}
	return t.HostsAt[s]
}

// HostSwitch returns the switch a host is attached to.
func (t *Topology) HostSwitch(host int) int {
	if t.HostsAt == nil {
		return host / t.HostsPerSwitch
	}
	base := t.hostBases()
	// Binary search the prefix sums: the switch whose range holds host.
	lo, hi := 0, t.NumSwitches-1
	for lo < hi {
		mid := (lo + hi) / 2
		if base[mid+1] <= host {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// HostPortIndex returns the index of the host among its switch's
// hosts, which is also the switch port the host occupies (host ports
// come first: 0..HostCount-1, inter-switch ports follow).
func (t *Topology) HostPortIndex(host int) int {
	if t.HostsAt == nil {
		return host % t.HostsPerSwitch
	}
	return host - t.hostBases()[t.HostSwitch(host)]
}

// InterSwitchPortBase returns the first inter-switch port index of
// switch s: its host ports occupy 0..InterSwitchPortBase-1.
func (t *Topology) InterSwitchPortBase(s int) int { return t.HostCount(s) }

// SwitchHosts returns the host IDs attached to switch s.
func (t *Topology) SwitchHosts(s int) []int {
	if t.HostsAt == nil {
		out := make([]int, t.HostsPerSwitch)
		for i := range out {
			out[i] = s*t.HostsPerSwitch + i
		}
		return out
	}
	base := t.hostBases()
	out := make([]int, t.HostsAt[s])
	for i := range out {
		out[i] = base[s] + i
	}
	return out
}

// NodeName returns the family-aware label of switch s, falling back
// to the bare switch ID when the topology carries no names.
func (t *Topology) NodeName(s int) string {
	if t.Names != nil && s >= 0 && s < len(t.Names) {
		return t.Names[s]
	}
	return fmt.Sprintf("%d", s)
}

// AddLink inserts the undirected link (a, b). It returns an error if
// the link is a self-loop, duplicates an existing link, or would exceed
// either endpoint's inter-switch port budget.
func (t *Topology) AddLink(a, b int) error {
	if a == b {
		return fmt.Errorf("topology: self-loop on switch %d", a)
	}
	if a < 0 || b < 0 || a >= t.NumSwitches || b >= t.NumSwitches {
		return fmt.Errorf("topology: link (%d,%d) out of range", a, b)
	}
	if a > b {
		a, b = b, a
	}
	if t.HasLink(a, b) {
		return fmt.Errorf("topology: duplicate link (%d,%d)", a, b)
	}
	if t.Degree(a) >= t.SwitchPorts-t.HostCount(a) || t.Degree(b) >= t.SwitchPorts-t.HostCount(b) {
		return fmt.Errorf("topology: link (%d,%d) exceeds port budget %d/%d",
			a, b, t.SwitchPorts-t.HostCount(a), t.SwitchPorts-t.HostCount(b))
	}
	t.Links = append(t.Links, Link{A: a, B: b})
	t.adj = nil
	return nil
}

// HasLink reports whether switches a and b are directly connected.
func (t *Topology) HasLink(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	for _, l := range t.Links {
		if l.A == a && l.B == b {
			return true
		}
	}
	return false
}

// Degree returns the inter-switch degree of switch s.
func (t *Topology) Degree(s int) int {
	n := 0
	for _, l := range t.Links {
		if l.A == s || l.B == s {
			n++
		}
	}
	return n
}

// Adjacency returns the neighbour list of every switch, sorted
// ascending for determinism. The result is cached; callers must not
// mutate it.
func (t *Topology) Adjacency() [][]int {
	if t.adj != nil {
		return t.adj
	}
	adj := make([][]int, t.NumSwitches)
	for _, l := range t.Links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	for _, ns := range adj {
		sort.Ints(ns)
	}
	t.adj = adj
	return adj
}

// Neighbors returns the sorted neighbour switches of s.
func (t *Topology) Neighbors(s int) []int { return t.Adjacency()[s] }

// Connected reports whether the switch graph is connected. An empty
// graph and a single switch are connected.
func (t *Topology) Connected() bool {
	if t.NumSwitches <= 1 {
		return true
	}
	seen := make([]bool, t.NumSwitches)
	stack := []int{0}
	seen[0] = true
	count := 1
	adj := t.Adjacency()
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range adj[s] {
			if !seen[n] {
				seen[n] = true
				count++
				stack = append(stack, n)
			}
		}
	}
	return count == t.NumSwitches
}

// Validate checks the structural invariants the paper's generator
// promises: connectivity, degree within the port budget, no duplicate
// links (AddLink enforces the latter two; Validate re-checks for
// topologies built by other means).
func (t *Topology) Validate() error {
	if t.NumSwitches <= 0 {
		return fmt.Errorf("topology: %d switches", t.NumSwitches)
	}
	if t.HostsAt != nil && len(t.HostsAt) != t.NumSwitches {
		return fmt.Errorf("topology: HostsAt has %d entries for %d switches",
			len(t.HostsAt), t.NumSwitches)
	}
	if t.Names != nil && len(t.Names) != t.NumSwitches {
		return fmt.Errorf("topology: Names has %d entries for %d switches",
			len(t.Names), t.NumSwitches)
	}
	for s := 0; s < t.NumSwitches; s++ {
		if h := t.HostCount(s); h < 0 || t.SwitchPorts < h {
			return fmt.Errorf("topology: switch %d: %d ports cannot host %d end nodes",
				s, t.SwitchPorts, h)
		}
	}
	seen := map[Link]bool{}
	for _, l := range t.Links {
		if l.A >= l.B || l.B >= t.NumSwitches || l.A < 0 {
			return fmt.Errorf("topology: malformed link %+v", l)
		}
		if seen[l] {
			return fmt.Errorf("topology: duplicate link %+v", l)
		}
		seen[l] = true
	}
	for s := 0; s < t.NumSwitches; s++ {
		if d, budget := t.Degree(s), t.SwitchPorts-t.HostCount(s); d > budget {
			return fmt.Errorf("topology: switch %d degree %d exceeds budget %d", s, d, budget)
		}
	}
	if !t.Connected() {
		return fmt.Errorf("topology: disconnected")
	}
	return nil
}

// Without returns a copy of the topology with the given links removed.
// Switch count, host attachment and port budget are unchanged — the
// copy describes the same physical network with some cables failed, so
// routing can be recomputed while port numbering (derived from the
// ORIGINAL adjacency) stays valid.
func (t *Topology) Without(failed ...Link) *Topology {
	dead := map[Link]bool{}
	for _, l := range failed {
		if l.A > l.B {
			l.A, l.B = l.B, l.A
		}
		dead[l] = true
	}
	out := New(t.NumSwitches, t.HostsPerSwitch, t.SwitchPorts)
	out.HostsAt = t.HostsAt
	out.Names = t.Names
	for _, l := range t.Links {
		if !dead[l] {
			out.Links = append(out.Links, l)
		}
	}
	return out
}

// Distances returns the hop distance from src to every switch (BFS on
// the switch graph). Unreachable switches get -1.
func (t *Topology) Distances(src int) []int {
	dist := make([]int, t.NumSwitches)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	adj := t.Adjacency()
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, n := range adj[s] {
			if dist[n] == -1 {
				dist[n] = dist[s] + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// AllDistances returns the full switch-to-switch hop distance matrix.
func (t *Topology) AllDistances() [][]int {
	out := make([][]int, t.NumSwitches)
	for s := range out {
		out[s] = t.Distances(s)
	}
	return out
}

// Diameter returns the longest shortest path between any two switches,
// or -1 if the graph is disconnected.
func (t *Topology) Diameter() int {
	max := 0
	for s := 0; s < t.NumSwitches; s++ {
		for _, d := range t.Distances(s) {
			if d == -1 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// AvgDistance returns the mean hop distance over ordered switch pairs
// (s != d), or 0 for a single switch.
func (t *Topology) AvgDistance() float64 {
	if t.NumSwitches < 2 {
		return 0
	}
	sum, n := 0, 0
	for s := 0; s < t.NumSwitches; s++ {
		for d, v := range t.Distances(s) {
			if d != s && v > 0 {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// String summarizes the topology shape.
func (t *Topology) String() string {
	return fmt.Sprintf("topology{switches: %d, hosts/switch: %d, ports: %d, links: %d}",
		t.NumSwitches, t.HostsPerSwitch, t.SwitchPorts, len(t.Links))
}

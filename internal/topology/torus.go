package topology

import (
	"fmt"
	"strings"
)

// TorusSpec describes a 2D/3D torus: Dims[i] switches along dimension
// i, neighbours at ±1 in each dimension with wraparound, and
// HostsPerSwitch hosts on every switch (tori attach compute uniformly,
// unlike fat-trees). This is the structured fabric the OutFlank line
// of related work evaluates adaptive deadlock-free routing on.
type TorusSpec struct {
	Dims           []int // 2 or 3 entries, each >= 2
	HostsPerSwitch int
}

// NumSwitches returns the product of the dimensions.
func (s TorusSpec) NumSwitches() int {
	out := 1
	for _, d := range s.Dims {
		out *= d
	}
	return out
}

// Validate rejects degenerate shapes.
func (s TorusSpec) Validate() error {
	if len(s.Dims) != 2 && len(s.Dims) != 3 {
		return fmt.Errorf("topology: torus needs 2 or 3 dimensions, got %v", s.Dims)
	}
	for _, d := range s.Dims {
		if d < 2 {
			return fmt.Errorf("topology: torus dimension %d < 2 in %v", d, s.Dims)
		}
	}
	if s.HostsPerSwitch < 1 {
		return fmt.Errorf("topology: torus needs >= 1 host/switch, got %d", s.HostsPerSwitch)
	}
	// Overflow-safe size bound: the raw product of three fuzz-sized
	// dimensions can wrap and slip past the cap.
	const limit = 1 << 16
	size := 1
	for _, d := range s.Dims {
		if size > limit/d {
			return fmt.Errorf("topology: torus %v exceeds %d switches (too large)", s.Dims, limit)
		}
		size *= d
	}
	return nil
}

// String renders the spec in the -topo flag grammar ("torus:4x4x2").
func (s TorusSpec) String() string {
	parts := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return "torus:" + strings.Join(parts, "x")
}

// SwitchID maps coordinates to a switch ID (dimension 0 fastest).
func (s TorusSpec) SwitchID(coord []int) int {
	id, stride := 0, 1
	for i, c := range coord {
		id += c * stride
		stride *= s.Dims[i]
	}
	return id
}

// Coord returns the coordinates of a switch ID.
func (s TorusSpec) Coord(id int) []int {
	out := make([]int, len(s.Dims))
	for i, d := range s.Dims {
		out[i] = id % d
		id /= d
	}
	return out
}

// Name renders a switch as "(x,y)" / "(x,y,z)".
func (s TorusSpec) Name(id int) string {
	c := s.Coord(id)
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// IsWrapLink reports whether the link crosses a dimension's wraparound
// boundary (coordinate max back to 0). The torus escape routing avoids
// these links; adaptive options use them freely.
func (s TorusSpec) IsWrapLink(a, b int) bool {
	ca, cb := s.Coord(a), s.Coord(b)
	for i := range ca {
		if ca[i] != cb[i] {
			lo, hi := ca[i], cb[i]
			if lo > hi {
				lo, hi = hi, lo
			}
			return lo == 0 && hi == s.Dims[i]-1 && s.Dims[i] > 2
		}
	}
	return false
}

// GenerateTorus builds the torus: every switch links to its ±1
// neighbour in each dimension, with the wrap link closing each ring.
// Dimensions of size 2 contribute a single link (the mesh edge and the
// wrap edge would be the same cable; IBA forbids duplicate links).
func GenerateTorus(spec TorusSpec) (*Topology, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	degree := 0
	for _, d := range spec.Dims {
		if d == 2 {
			degree++
		} else {
			degree += 2
		}
	}
	t := New(spec.NumSwitches(), spec.HostsPerSwitch, spec.HostsPerSwitch+degree)
	t.Names = make([]string, t.NumSwitches)
	for id := 0; id < t.NumSwitches; id++ {
		t.Names[id] = spec.Name(id)
	}
	for id := 0; id < t.NumSwitches; id++ {
		coord := spec.Coord(id)
		for i, d := range spec.Dims {
			next := make([]int, len(coord))
			copy(next, coord)
			next[i] = (coord[i] + 1) % d
			n := spec.SwitchID(next)
			if !t.HasLink(id, n) {
				if err := t.AddLink(id, n); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MatchesTorus reports whether topo is exactly the pristine fabric
// GenerateTorus(spec) produces.
func MatchesTorus(topo *Topology, spec TorusSpec) bool {
	pristine, err := GenerateTorus(spec)
	if err != nil {
		return false
	}
	return sameShape(topo, pristine)
}

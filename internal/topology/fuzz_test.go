package topology_test

// FuzzIrregularTopology lives outside the package so it can close the
// loop through the routing layer: topology cannot import routing (the
// dependency points the other way), but the property worth fuzzing is
// end to end — every generated graph must route deadlock-free.

import (
	"testing"

	"ibasim/internal/routing"
	"ibasim/internal/topology"
)

// FuzzIrregularTopology fuzzes the paper's random irregular generator
// (§5.1) over its whole evaluation envelope: any (switches, links,
// seed) in range must produce a connected, exactly links-regular
// simple graph whose up*/down* escape tables pass Duato's acyclicity
// condition. The corpus seeds are the Figure 3 geometries (8–64
// switches, 4 links) plus Table 2's 6-link variant, so a plain `go
// test` replays them as regression cases.
func FuzzIrregularTopology(f *testing.F) {
	for _, sw := range []int{8, 16, 32, 64} {
		f.Add(sw, 4, uint64(1))
	}
	f.Add(16, 6, uint64(3))
	f.Fuzz(func(t *testing.T, switches, links int, seed uint64) {
		if switches < 8 || switches > 64 || links < 2 || links > 6 {
			t.Skip("outside the paper's geometry envelope")
		}
		if links >= switches || switches*links%2 != 0 {
			t.Skip("no regular graph exists (degree or stub parity)")
		}
		spec := topology.IrregularSpec{
			NumSwitches: switches, HostsPerSwitch: 4, InterSwitch: links, Seed: seed,
		}
		topo, err := topology.GenerateIrregular(spec)
		if err != nil {
			t.Fatalf("feasible spec %+v rejected: %v", spec, err)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("spec %+v: %v", spec, err)
		}
		if !topo.Connected() {
			t.Fatalf("spec %+v: disconnected", spec)
		}
		for s := 0; s < topo.NumSwitches; s++ {
			if d := topo.Degree(s); d != links {
				t.Fatalf("spec %+v: switch %d degree %d, want %d (regular)", spec, s, d, links)
			}
		}
		ud, err := routing.NewUpDown(topo)
		if err != nil {
			t.Fatalf("spec %+v: up*/down* failed: %v", spec, err)
		}
		if err := routing.VerifyDeadlockFree(ud.Tables()); err != nil {
			t.Fatalf("spec %+v: escape CDG cyclic: %v", spec, err)
		}
	})
}

// checkFamily runs the structural and routing properties every
// generated fabric must satisfy regardless of family: a valid,
// connected graph whose family engine produces legal escape tables
// with an acyclic escape CDG (checked through FindCycle directly, the
// same walk VerifyDeadlockFree wraps) and valid adaptive options.
func checkFamily(t *testing.T, topo *topology.Topology, build routing.Builder, engine string) {
	t.Helper()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if !topo.Connected() {
		t.Fatal("disconnected")
	}
	eng, err := build(topo)
	if err != nil {
		t.Fatalf("engine build failed: %v", err)
	}
	if eng.Name() != engine {
		t.Fatalf("pristine fabric built engine %q, want %q", eng.Name(), engine)
	}
	det := eng.Deterministic()
	if cycle := routing.FindCycle(routing.EscapeCDG(det)); cycle != nil {
		t.Fatalf("escape CDG cyclic:%s",
			routing.FormatCycleNamed(cycle, topo.NumSwitches, topo.NodeName))
	}
	if err := det.Validate(); err != nil {
		t.Fatalf("escape tables invalid: %v", err)
	}
	if err := eng.Adaptive().Validate(); err != nil {
		t.Fatalf("adaptive options invalid: %v", err)
	}
}

// FuzzFatTreeTopology fuzzes the k-ary n-tree generator over its shape
// envelope: every (arity, levels) pair must produce a connected fabric
// with hosts only on the leaf row, the expected per-row link structure,
// and acyclic D-mod-K escape tables. The corpus replays the shapes the
// conformance suite pins.
func FuzzFatTreeTopology(f *testing.F) {
	f.Add(2, 2)
	f.Add(2, 3)
	f.Add(3, 2)
	f.Add(3, 3)
	f.Fuzz(func(t *testing.T, arity, levels int) {
		spec := topology.FatTreeSpec{Arity: arity, Levels: levels}
		if spec.Validate() != nil || spec.NumSwitches() > 300 {
			t.Skip("outside the fuzz envelope")
		}
		topo, err := topology.GenerateFatTree(spec)
		if err != nil {
			t.Fatalf("feasible spec %v rejected: %v", spec, err)
		}
		for id := 0; id < topo.NumSwitches; id++ {
			wantHosts := 0
			if spec.SwitchLevel(id) == 0 {
				wantHosts = arity
			}
			if got := topo.HostCount(id); got != wantHosts {
				t.Fatalf("switch %s has %d hosts, want %d", spec.Name(id), got, wantHosts)
			}
			wantDeg := 2 * arity // k up + k down
			if l := spec.SwitchLevel(id); l == 0 || l == levels-1 {
				wantDeg = arity // leaves have no down links, roots no up links
			}
			if got := topo.Degree(id); got != wantDeg {
				t.Fatalf("switch %s degree %d, want %d", spec.Name(id), got, wantDeg)
			}
		}
		checkFamily(t, topo, routing.FatTreeBuilder(spec), "fattree")
	})
}

// FuzzTorusTopology fuzzes the torus generator over 2D and 3D shapes
// with varying host attachment: every shape must produce a connected
// fabric whose dimension-order escape tables are acyclic — including
// the size-2 dimensions where mesh and wrap edges collapse into one
// link. dimZ <= 1 selects a 2D torus.
func FuzzTorusTopology(f *testing.F) {
	f.Add(4, 4, 0, 1)
	f.Add(3, 5, 0, 2)
	f.Add(2, 3, 4, 1)
	f.Add(2, 2, 2, 1)
	f.Fuzz(func(t *testing.T, dimX, dimY, dimZ, hosts int) {
		dims := []int{dimX, dimY}
		if dimZ > 1 {
			dims = append(dims, dimZ)
		}
		spec := topology.TorusSpec{Dims: dims, HostsPerSwitch: hosts}
		if spec.Validate() != nil || spec.NumSwitches() > 300 || hosts > 4 {
			t.Skip("outside the fuzz envelope")
		}
		topo, err := topology.GenerateTorus(spec)
		if err != nil {
			t.Fatalf("feasible spec %v rejected: %v", spec, err)
		}
		wantDeg := 0
		for _, d := range dims {
			if d == 2 {
				wantDeg++ // mesh and wrap edge are the same cable
			} else {
				wantDeg += 2
			}
		}
		for id := 0; id < topo.NumSwitches; id++ {
			if got := topo.Degree(id); got != wantDeg {
				t.Fatalf("switch %s degree %d, want %d", spec.Name(id), got, wantDeg)
			}
			if got := topo.HostCount(id); got != hosts {
				t.Fatalf("switch %s has %d hosts, want %d", spec.Name(id), got, hosts)
			}
		}
		checkFamily(t, topo, routing.TorusBuilder(spec), "torus")
	})
}

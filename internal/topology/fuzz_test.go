package topology_test

// FuzzIrregularTopology lives outside the package so it can close the
// loop through the routing layer: topology cannot import routing (the
// dependency points the other way), but the property worth fuzzing is
// end to end — every generated graph must route deadlock-free.

import (
	"testing"

	"ibasim/internal/routing"
	"ibasim/internal/topology"
)

// FuzzIrregularTopology fuzzes the paper's random irregular generator
// (§5.1) over its whole evaluation envelope: any (switches, links,
// seed) in range must produce a connected, exactly links-regular
// simple graph whose up*/down* escape tables pass Duato's acyclicity
// condition. The corpus seeds are the Figure 3 geometries (8–64
// switches, 4 links) plus Table 2's 6-link variant, so a plain `go
// test` replays them as regression cases.
func FuzzIrregularTopology(f *testing.F) {
	for _, sw := range []int{8, 16, 32, 64} {
		f.Add(sw, 4, uint64(1))
	}
	f.Add(16, 6, uint64(3))
	f.Fuzz(func(t *testing.T, switches, links int, seed uint64) {
		if switches < 8 || switches > 64 || links < 2 || links > 6 {
			t.Skip("outside the paper's geometry envelope")
		}
		if links >= switches || switches*links%2 != 0 {
			t.Skip("no regular graph exists (degree or stub parity)")
		}
		spec := topology.IrregularSpec{
			NumSwitches: switches, HostsPerSwitch: 4, InterSwitch: links, Seed: seed,
		}
		topo, err := topology.GenerateIrregular(spec)
		if err != nil {
			t.Fatalf("feasible spec %+v rejected: %v", spec, err)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("spec %+v: %v", spec, err)
		}
		if !topo.Connected() {
			t.Fatalf("spec %+v: disconnected", spec)
		}
		for s := 0; s < topo.NumSwitches; s++ {
			if d := topo.Degree(s); d != links {
				t.Fatalf("spec %+v: switch %d degree %d, want %d (regular)", spec, s, d, links)
			}
		}
		ud, err := routing.NewUpDown(topo)
		if err != nil {
			t.Fatalf("spec %+v: up*/down* failed: %v", spec, err)
		}
		if err := routing.VerifyDeadlockFree(ud.Tables()); err != nil {
			t.Fatalf("spec %+v: escape CDG cyclic: %v", spec, err)
		}
	})
}

package topology

import "fmt"

// The paper evaluates only irregular networks, but regular shapes are
// invaluable for testing (known diameters, known path counts) and give
// library users familiar reference topologies.

// Ring returns a cycle of n switches (degree 2).
func Ring(n, hostsPerSwitch int) (*Topology, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs >= 3 switches, got %d", n)
	}
	t := New(n, hostsPerSwitch, hostsPerSwitch+2)
	for s := 0; s < n; s++ {
		if err := t.AddLink(s, (s+1)%n); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Line returns a linear array of n switches (internal degree 2).
func Line(n, hostsPerSwitch int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: line needs >= 2 switches, got %d", n)
	}
	t := New(n, hostsPerSwitch, hostsPerSwitch+2)
	for s := 0; s+1 < n; s++ {
		if err := t.AddLink(s, s+1); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Mesh2D returns a rows x cols 2-D mesh (internal degree up to 4).
func Mesh2D(rows, cols, hostsPerSwitch int) (*Topology, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("topology: mesh %dx%d too small", rows, cols)
	}
	t := New(rows*cols, hostsPerSwitch, hostsPerSwitch+4)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := t.AddLink(id(r, c), id(r, c+1)); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := t.AddLink(id(r, c), id(r+1, c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return t, nil
}

// FullyConnected returns a complete graph on n switches.
func FullyConnected(n, hostsPerSwitch int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: complete graph needs >= 2 switches, got %d", n)
	}
	t := New(n, hostsPerSwitch, hostsPerSwitch+n-1)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if err := t.AddLink(a, b); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

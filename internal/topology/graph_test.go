package topology

import (
	"testing"
	"testing/quick"
)

func mustRing(t *testing.T, n int) *Topology {
	t.Helper()
	top, err := Ring(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestAddLinkRejectsSelfLoop(t *testing.T) {
	top := New(4, 4, 8)
	if err := top.AddLink(2, 2); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestAddLinkRejectsDuplicate(t *testing.T) {
	top := New(4, 4, 8)
	if err := top.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := top.AddLink(1, 0); err == nil {
		t.Fatal("duplicate (reversed) link accepted")
	}
}

func TestAddLinkRejectsOutOfRange(t *testing.T) {
	top := New(4, 4, 8)
	for _, pair := range [][2]int{{-1, 0}, {0, 4}, {7, 8}} {
		if err := top.AddLink(pair[0], pair[1]); err == nil {
			t.Fatalf("out-of-range link %v accepted", pair)
		}
	}
}

func TestAddLinkEnforcesPortBudget(t *testing.T) {
	// 4 hosts + 8 ports total = 4 inter-switch ports per switch.
	top := New(6, 4, 8)
	for _, b := range []int{1, 2, 3, 4} {
		if err := top.AddLink(0, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := top.AddLink(0, 5); err == nil {
		t.Fatal("fifth inter-switch link accepted with budget 4")
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	top := mustRing(t, 5)
	for s := 0; s < 5; s++ {
		if d := top.Degree(s); d != 2 {
			t.Fatalf("ring degree(%d) = %d, want 2", s, d)
		}
	}
	ns := top.Neighbors(0)
	if len(ns) != 2 || ns[0] != 1 || ns[1] != 4 {
		t.Fatalf("Neighbors(0) = %v, want [1 4]", ns)
	}
}

func TestHostMapping(t *testing.T) {
	top := New(3, 4, 8)
	if top.NumHosts() != 12 {
		t.Fatalf("NumHosts = %d, want 12", top.NumHosts())
	}
	if top.HostSwitch(0) != 0 || top.HostSwitch(4) != 1 || top.HostSwitch(11) != 2 {
		t.Fatal("HostSwitch mapping wrong")
	}
	hosts := top.SwitchHosts(1)
	want := []int{4, 5, 6, 7}
	for i := range want {
		if hosts[i] != want[i] {
			t.Fatalf("SwitchHosts(1) = %v, want %v", hosts, want)
		}
	}
}

func TestConnected(t *testing.T) {
	top := mustRing(t, 6)
	if !top.Connected() {
		t.Fatal("ring reported disconnected")
	}
	disc := New(4, 4, 8)
	if err := disc.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := disc.AddLink(2, 3); err != nil {
		t.Fatal(err)
	}
	if disc.Connected() {
		t.Fatal("two components reported connected")
	}
}

func TestDistancesRing(t *testing.T) {
	top := mustRing(t, 6)
	d := top.Distances(0)
	want := []int{0, 1, 2, 3, 2, 1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Distances(0) = %v, want %v", d, want)
		}
	}
}

func TestDiameter(t *testing.T) {
	ring := mustRing(t, 8)
	if got := ring.Diameter(); got != 4 {
		t.Fatalf("ring-8 diameter = %d, want 4", got)
	}
	line, err := Line(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := line.Diameter(); got != 4 {
		t.Fatalf("line-5 diameter = %d, want 4", got)
	}
	full, err := FullyConnected(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := full.Diameter(); got != 1 {
		t.Fatalf("K6 diameter = %d, want 1", got)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	disc := New(3, 4, 8)
	if err := disc.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := disc.Diameter(); got != -1 {
		t.Fatalf("disconnected diameter = %d, want -1", got)
	}
}

func TestAvgDistanceCompleteGraph(t *testing.T) {
	full, err := FullyConnected(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := full.AvgDistance(); got != 1 {
		t.Fatalf("K5 avg distance = %v, want 1", got)
	}
}

func TestValidateAcceptsGoodTopology(t *testing.T) {
	if err := mustRing(t, 5).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsDisconnected(t *testing.T) {
	disc := New(4, 4, 8)
	_ = disc.AddLink(0, 1)
	_ = disc.AddLink(2, 3)
	if err := disc.Validate(); err == nil {
		t.Fatal("Validate accepted disconnected topology")
	}
}

func TestMesh2DShape(t *testing.T) {
	m, err := Mesh2D(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSwitches != 12 {
		t.Fatalf("mesh switches = %d, want 12", m.NumSwitches)
	}
	// 3x4 mesh: 3*(4-1) horizontal + 4*(3-1) vertical = 9 + 8 = 17.
	if len(m.Links) != 17 {
		t.Fatalf("mesh links = %d, want 17", len(m.Links))
	}
	if m.Diameter() != 5 {
		t.Fatalf("mesh diameter = %d, want 5", m.Diameter())
	}
}

func TestMeshCornerAndCenterDegrees(t *testing.T) {
	m, err := Mesh2D(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Degree(0); d != 2 {
		t.Fatalf("corner degree = %d, want 2", d)
	}
	if d := m.Degree(4); d != 4 {
		t.Fatalf("center degree = %d, want 4", d)
	}
}

func TestWithoutRemovesLinks(t *testing.T) {
	top := mustRing(t, 6)
	reduced := top.Without(Link{A: 0, B: 1}, Link{A: 5, B: 0})
	if len(reduced.Links) != 4 {
		t.Fatalf("links = %d, want 4", len(reduced.Links))
	}
	if reduced.HasLink(0, 1) || reduced.HasLink(0, 5) {
		t.Fatal("removed links still present")
	}
	// Ring minus two adjacent links: node 0 isolated -> disconnected.
	if reduced.Connected() {
		t.Fatal("reduced ring with isolated node reported connected")
	}
	// The original is untouched.
	if len(top.Links) != 6 {
		t.Fatal("Without mutated the original")
	}
}

func TestWithoutNormalizesLinkOrder(t *testing.T) {
	top := mustRing(t, 5)
	// Pass the link reversed; it must still match.
	reduced := top.Without(Link{A: 1, B: 0})
	if reduced.HasLink(0, 1) {
		t.Fatal("reversed link spec not removed")
	}
	if len(reduced.Links) != 4 {
		t.Fatalf("links = %d, want 4", len(reduced.Links))
	}
}

func TestWithoutNothing(t *testing.T) {
	top := mustRing(t, 4)
	reduced := top.Without()
	if len(reduced.Links) != len(top.Links) {
		t.Fatal("Without() changed link count")
	}
}

// TestDistancesSymmetry: hop distance is symmetric on undirected graphs.
func TestDistancesSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		top := MustGenerateIrregular(IrregularSpec{
			NumSwitches: 8, HostsPerSwitch: 4, InterSwitch: 4, Seed: seed,
		})
		all := top.AllDistances()
		for a := 0; a < top.NumSwitches; a++ {
			for b := 0; b < top.NumSwitches; b++ {
				if all[a][b] != all[b][a] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

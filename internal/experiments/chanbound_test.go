package experiments

import (
	"fmt"
	"testing"

	"ibasim/internal/fabric"
	"ibasim/internal/faults"
	"ibasim/internal/sim"
)

// These tests check the channel delay matrix against live traffic:
// every cross-shard mail the coordinator actually moves must carry at
// least the delay the matrix promised for its (src, dst) channel —
// (at - schedAt) >= bounds[src][dst]. The fabric package proves the
// matrix analytically; this is the end-to-end soundness check the
// window formula rests on, swept across the calendar geometries the
// other differentials use and a retry-heavy fault campaign.

// auditMailBounds runs the spec sharded and returns descriptions of
// every mail that undercut its channel bound, plus how many mails were
// checked.
func auditMailBounds(t *testing.T, spec RunSpec, shards int) (violations []string, mails int) {
	t.Helper()
	s := spec
	s.Fabric.Shards = shards
	s.Fabric.Partition = fabric.PartitionBFS
	_, err := RunObserved(s, func(net *fabric.Network) {
		bounds := net.ChannelBounds()
		if bounds == nil {
			t.Fatal("sharded network has no channel bounds")
		}
		net.SetMailObserver(func(src, dst int, at, schedAt sim.Time) {
			mails++
			if delay := at - schedAt; delay < bounds[src][dst] {
				if len(violations) < 10 {
					violations = append(violations, fmt.Sprintf(
						"mail %d->%d at=%d schedAt=%d delay=%d < bound %d",
						src, dst, at, schedAt, delay, bounds[src][dst]))
				}
			}
		})
	})
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return violations, mails
}

func TestChannelBoundsSoundLive(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations per wheel geometry")
	}
	topo := shardDiffTopo(t)
	geometries := []struct{ slotBits, widthBits uint }{
		{3, 0}, {3, 2}, {4, 1}, {6, 3}, {12, 2},
	}
	for _, g := range geometries {
		t.Run(fmt.Sprintf("wheel-%d-%d", g.slotBits, g.widthBits), func(t *testing.T) {
			spec := shardDiffSpec(topo, sim.WithWheelGeometry(g.slotBits, g.widthBits))
			for _, shards := range []int{2, 4, 7} {
				violations, mails := auditMailBounds(t, spec, shards)
				if mails == 0 {
					t.Fatalf("shards=%d: no cross-shard mail observed — test is vacuous", shards)
				}
				for _, msg := range violations {
					t.Errorf("shards=%d: %s", shards, msg)
				}
			}
		})
	}
}

// TestChannelBoundsSoundFaults repeats the audit under a fault
// campaign: link flaps put drop/retry paths on the cross-shard
// channels, whose delays (credit return after exactly the propagation
// delay, requeue after the backoff floor) are the matrix's tightest
// edges. Downed links must never produce mail faster than the
// full-topology matrix promised.
func TestChannelBoundsSoundFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full fault campaigns")
	}
	topo := shardDiffTopo(t)
	l0, l1 := topo.Links[0], topo.Links[1]
	camp := &faults.Campaign{
		Events: []faults.Event{
			{At: 40_000, Kind: faults.LinkDown, A: l0.A, B: l0.B},
			{At: 70_000, Kind: faults.LinkUp, A: l0.A, B: l0.B},
			{At: 80_000, Kind: faults.LinkDown, A: l1.A, B: l1.B},
			{At: 130_000, Kind: faults.LinkUp, A: l1.A, B: l1.B},
		},
		AutoReconfig: 5_000,
		Watchdog:     faults.WatchdogConfig{SampleEvery: 5_000, Horizon: 120_000},
	}
	spec := shardDiffSpec(topo)
	spec.Measure = 150_000
	spec.DrainGrace = 80_000
	spec.Faults = camp
	spec.FaultSeed = 3
	for _, shards := range []int{2, 4, 7} {
		violations, mails := auditMailBounds(t, spec, shards)
		if mails == 0 {
			t.Fatalf("shards=%d: no cross-shard mail observed", shards)
		}
		for _, msg := range violations {
			t.Errorf("shards=%d: %s", shards, msg)
		}
	}
}

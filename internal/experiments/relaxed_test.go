package experiments

import (
	"math"
	"reflect"
	"testing"

	"ibasim/internal/fabric"
	"ibasim/internal/sim"
)

// The relaxed-exactness mode (fabric.Config.Lag > 0) widens every
// shard's conservative window and clamps late cross-shard arrivals to
// the local clock. It abandons bit-exactness by design, so its
// contract is statistical instead: deterministic for a fixed (config,
// lag, shards), invariant-clean under the always-on auditor, and with
// aggregate observables within a small tolerance of the exact oracle.
// These tests are that validation (scripts/ci.sh runs them as the
// relaxed-mode smoke).

func relaxedVariant(t *testing.T, spec RunSpec, shards int, lag int64) RunResult {
	t.Helper()
	s := spec
	s.Fabric.Shards = shards
	s.Fabric.Partition = fabric.PartitionBFS
	s.Fabric.Lag = sim.Time(lag)
	res, err := Run(s)
	if err != nil {
		t.Fatalf("shards=%d lag=%d: %v", shards, lag, err)
	}
	res.ShardStats = nil
	return res
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestRelaxedModeStatistical compares relaxed runs against the exact
// sequential oracle across seeds. The mode's measured error profile
// (EXPERIMENTS.md): throughput is nearly unbiased at any lag (the
// clamp delays events, it never creates or destroys packets), while
// latency carries a positive bias that grows roughly linearly with
// lag — each clamped import can push a packet up to lag ns later. So
// the contract splits: at operating lags (up to ~2× the 100 ns channel
// delay) both metrics must track the oracle; at an abusive lag (10×)
// throughput must still hold while latency is only sanity-bounded.
// Every run must stay invariant-clean. Tight enough that a broken
// import clamp or a window overrun (which drop or duplicate traffic
// wholesale) fails immediately.
func TestRelaxedModeStatistical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations across seeds")
	}
	topo := shardDiffTopo(t)
	seeds := []uint64{11, 12, 13, 14}
	for _, tc := range []struct {
		lag          int64
		accTol       float64 // mean |rel err| on accepted throughput
		latTol       float64 // mean |rel err| on average latency
		perSeedAccer float64 // per-seed ceiling on throughput error
	}{
		{lag: 100, accTol: 0.02, latTol: 0.05, perSeedAccer: 0.05},
		{lag: 200, accTol: 0.02, latTol: 0.10, perSeedAccer: 0.05},
		// 10× the channel delay: latency bias ~lag-sized, throughput
		// still sound.
		{lag: 1_000, accTol: 0.05, latTol: 1.00, perSeedAccer: 0.10},
	} {
		var accErr, latErr float64
		for _, seed := range seeds {
			spec := shardDiffSpec(topo)
			spec.Seed = seed
			spec.Traffic.Seed = seed
			exact := relaxedVariant(t, spec, 0, 0)
			relaxed := relaxedVariant(t, spec, 4, tc.lag)
			if relaxed.Audit.Violations != 0 {
				t.Fatalf("lag=%d seed=%d: auditor found %d violations: %s",
					tc.lag, seed, relaxed.Audit.Violations, relaxed.Audit.First)
			}
			if relaxed.PacketsMeasured == 0 {
				t.Fatalf("lag=%d seed=%d: empty relaxed run", tc.lag, seed)
			}
			ae := relErr(relaxed.AcceptedPerSwitch, exact.AcceptedPerSwitch)
			le := relErr(relaxed.AvgLatencyNs, exact.AvgLatencyNs)
			if ae > tc.perSeedAccer {
				t.Errorf("lag=%d seed=%d: accepted %.5f vs exact %.5f (%.1f%% off)",
					tc.lag, seed, relaxed.AcceptedPerSwitch, exact.AcceptedPerSwitch, ae*100)
			}
			// The latency bias must be a delay, never a speedup beyond
			// noise: relaxed clamps push events later.
			if relaxed.AvgLatencyNs < exact.AvgLatencyNs*0.95 {
				t.Errorf("lag=%d seed=%d: relaxed latency %.0f faster than exact %.0f — clamp direction broken",
					tc.lag, seed, relaxed.AvgLatencyNs, exact.AvgLatencyNs)
			}
			accErr += ae
			latErr += le
		}
		accErr /= float64(len(seeds))
		latErr /= float64(len(seeds))
		if accErr > tc.accTol {
			t.Errorf("lag=%d: mean throughput error %.1f%% > %.0f%%", tc.lag, accErr*100, tc.accTol*100)
		}
		if latErr > tc.latTol {
			t.Errorf("lag=%d: mean latency error %.1f%% > %.0f%%", tc.lag, latErr*100, tc.latTol*100)
		}
		t.Logf("lag=%d: mean throughput err %.2f%%, mean latency err %.2f%%", tc.lag, accErr*100, latErr*100)
	}
}

// TestRelaxedModeDeterministic pins the mode's reproducibility: two
// runs with the same (config, lag, shards) must agree bit-for-bit,
// execution artifacts included — relaxation trades exactness versus
// the sequential engine, never determinism versus itself.
func TestRelaxedModeDeterministic(t *testing.T) {
	topo := shardDiffTopo(t)
	spec := shardDiffSpec(topo)
	run := func() RunResult {
		s := spec
		s.Fabric.Shards = 4
		s.Fabric.Partition = fabric.PartitionBFS
		s.Fabric.Lag = 500
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("relaxed runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestRelaxedLagZeroIsExact pins lag=0 as the bit-exact mode through
// the same code path the relaxed runs take: a sharded run with
// Config.Lag explicitly zero must equal the sequential oracle exactly.
func TestRelaxedLagZeroIsExact(t *testing.T) {
	topo := shardDiffTopo(t)
	spec := shardDiffSpec(topo)
	want := relaxedVariant(t, spec, 0, 0)
	got := relaxedVariant(t, spec, 4, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lag=0 sharded diverged from sequential:\n got %+v\nwant %+v", got, want)
	}
}

// TestRelaxedModeValidation pins the configuration gates: negative lag
// and lag on a sequential run are rejected up front.
func TestRelaxedModeValidation(t *testing.T) {
	cfg := fabric.DefaultConfig()
	cfg.Shards = 4
	cfg.Lag = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative lag accepted")
	}
	cfg = fabric.DefaultConfig()
	cfg.Lag = 500 // Shards 0: sequential
	if err := cfg.Validate(); err == nil {
		t.Fatal("lag on sequential config accepted")
	}
	cfg = fabric.DefaultConfig()
	cfg.Shards = 2
	cfg.Lag = 500
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid relaxed config rejected: %v", err)
	}
}

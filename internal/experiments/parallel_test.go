package experiments

import (
	"errors"
	"sync/atomic"
	"testing"

	"ibasim/internal/topology"
	"ibasim/internal/traffic"
)

func TestRunParallelOrderAndValues(t *testing.T) {
	out, err := runParallel(50, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestRunParallelPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := runParallel(20, func(i int) (int, error) {
		if i == 13 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestRunParallelAbortsEarly: after a failure, jobs not yet started
// must be skipped (GOMAXPROCS may be 1 in CI, where the sequential
// path aborts trivially; with workers the feeder stops on the flag).
func TestRunParallelAbortsEarly(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := runParallel(10_000, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The feeder re-checks the failure flag before every handoff, so at
	// most the jobs already in flight when job 0 failed can still run —
	// far fewer than the full batch.
	if n := ran.Load(); n > 1_000 {
		t.Fatalf("%d of 10000 jobs ran after early failure", n)
	}
}

// TestRunParallelReturnsLowestIndexError: the error surfaced must be
// the lowest-indexed one, matching what a sequential loop would have
// returned, regardless of wall-clock completion order.
func TestRunParallelReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	// Both failing jobs are dispatched before either can fail (indices
	// 0 and 1 are fed immediately to the first two workers when
	// GOMAXPROCS >= 2; sequentially index 0 fails first anyway).
	_, err := runParallel(2, func(i int) (int, error) {
		if i == 0 {
			return 0, errA
		}
		return 0, errB
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want lowest-index error %v", err, errA)
	}
}

func TestRunParallelZeroJobs(t *testing.T) {
	out, err := runParallel(0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out = %v, err = %v", out, err)
	}
}

// TestLoadSweepParallelMatchesSequential: the pool must not change
// results — every simulation is self-contained and deterministic.
func TestLoadSweepParallelMatchesSequential(t *testing.T) {
	sc := tinyScale()
	topo := topology.MustGenerateIrregular(topology.IrregularSpec{
		NumSwitches: 8, HostsPerSwitch: 4, InterSwitch: 4, Seed: 4,
	})
	spec := sc.Spec(topo, 2, 32, 1, traffic.Uniform{NumHosts: topo.NumHosts()}, 3, true)
	loads := []float64{0.005, 0.02, 0.05}
	a, err := LoadSweep(spec, loads)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reference.
	var b []SweepPoint
	for _, l := range loads {
		s := spec
		s.Traffic.LoadBytesPerNsPerHost = l
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		b = append(b, SweepPoint{Offered: res.OfferedPerSwitch, Accepted: res.AcceptedPerSwitch, AvgLatency: res.AvgLatencyNs})
	}
	for i := range loads {
		if a[i] != b[i] {
			t.Fatalf("point %d differs: parallel %+v vs sequential %+v", i, a[i], b[i])
		}
	}
}

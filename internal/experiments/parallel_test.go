package experiments

import (
	"errors"
	"testing"

	"ibasim/internal/topology"
	"ibasim/internal/traffic"
)

func TestRunParallelOrderAndValues(t *testing.T) {
	out, err := runParallel(50, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestRunParallelPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := runParallel(20, func(i int) (int, error) {
		if i == 13 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunParallelZeroJobs(t *testing.T) {
	out, err := runParallel(0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out = %v, err = %v", out, err)
	}
}

// TestLoadSweepParallelMatchesSequential: the pool must not change
// results — every simulation is self-contained and deterministic.
func TestLoadSweepParallelMatchesSequential(t *testing.T) {
	sc := tinyScale()
	topo := topology.MustGenerateIrregular(topology.IrregularSpec{
		NumSwitches: 8, HostsPerSwitch: 4, InterSwitch: 4, Seed: 4,
	})
	spec := sc.Spec(topo, 2, 32, 1, traffic.Uniform{NumHosts: topo.NumHosts()}, 3, true)
	loads := []float64{0.005, 0.02, 0.05}
	a, err := LoadSweep(spec, loads)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reference.
	var b []SweepPoint
	for _, l := range loads {
		s := spec
		s.Traffic.LoadBytesPerNsPerHost = l
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		b = append(b, SweepPoint{Offered: res.OfferedPerSwitch, Accepted: res.AcceptedPerSwitch, AvgLatency: res.AvgLatencyNs})
	}
	for i := range loads {
		if a[i] != b[i] {
			t.Fatalf("point %d differs: parallel %+v vs sequential %+v", i, a[i], b[i])
		}
	}
}

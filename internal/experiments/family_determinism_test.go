package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// Per-family golden hashes: the SHA-256 of the serialized Figure-3
// style sweep for one canonical shape per structured family, captured
// from the engine-interface seed implementation. Like figure3Golden,
// they pin the simulation bit-exactly across refactors; regenerate
// only for an intentional model change, never to make a refactor pass.
const (
	fatTreeGolden = "40541fcf6f53bf620fe3a2a3855a119da6907028fd45dd1cec72fba7fb28cb97"
	torusGolden   = "82591d9643cc1fdb22459666b2594194c3c3c5f17c6130c83d07ca84cc87babc"
)

// familyScale mirrors the QuickScale geometry the irregular golden
// uses, shortened the same way.
func familyScale() Scale {
	sc := QuickScale()
	sc.Topologies = 1
	return sc
}

// familyArtifact serializes one canonical structured-family sweep:
// fattree:2,3 (12 switches, 8 hosts, D-mod-K escape) or torus:3x3
// (9 switches, 2 hosts each, dimension-order escape). mutate adjusts
// the Scale for engine/auditor variants.
func familyArtifact(t *testing.T, topo string, mutate func(*Scale)) []byte {
	t.Helper()
	fam, err := ParseFamily(topo)
	if err != nil {
		t.Fatal(err)
	}
	sc := familyScale()
	if topo == "torus:3x3" {
		sc.HostsPerSw = 2
	}
	if mutate != nil {
		mutate(&sc)
	}
	res, err := Figure3Family(sc, fam)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func familyHash(t *testing.T, topo string, mutate func(*Scale)) string {
	t.Helper()
	sum := sha256.Sum256(familyArtifact(t, topo, mutate))
	return hex.EncodeToString(sum[:])
}

// TestFamilySweepsDeterministic guards the determinism contract for
// the structured families exactly as TestFigure3Deterministic does for
// the irregular panel: same seed, byte-identical artifact run-to-run,
// pinned by a committed golden hash.
func TestFamilySweepsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four structured-family sweeps")
	}
	for _, tc := range []struct{ topo, golden string }{
		{"fattree:2,3", fatTreeGolden},
		{"torus:3x3", torusGolden},
	} {
		t.Run(tc.topo, func(t *testing.T) {
			first := familyArtifact(t, tc.topo, nil)
			second := familyArtifact(t, tc.topo, nil)
			if !bytes.Equal(first, second) {
				t.Fatal("two runs with the same seed differ")
			}
			sum := sha256.Sum256(first)
			if got := hex.EncodeToString(sum[:]); got != tc.golden {
				t.Fatalf("artifact hash %s, want golden %s (simulation output drifted)", got, tc.golden)
			}
		})
	}
}

// TestFamilySweepsEngineInvariant pins the structured-family sweeps to
// the same golden on the conservative-parallel sharded engine and
// under the heavy invariant auditor: execution strategy and auditing
// must never perturb results, on any topology family.
func TestFamilySweepsEngineInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six structured-family sweeps")
	}
	variants := []struct {
		name   string
		mutate func(*Scale)
	}{
		{"shard3", func(sc *Scale) { sc.Shards = 3 }},
		{"check", func(sc *Scale) { sc.Check = true }},
		{"unfused", func(sc *Scale) { sc.Unfused = true }},
	}
	for _, tc := range []struct{ topo, golden string }{
		{"fattree:2,3", fatTreeGolden},
		{"torus:3x3", torusGolden},
	} {
		for _, v := range variants {
			t.Run(tc.topo+"/"+v.name, func(t *testing.T) {
				if got := familyHash(t, tc.topo, v.mutate); got != tc.golden {
					t.Fatalf("%s artifact hash %s, want golden %s", v.name, got, tc.golden)
				}
			})
		}
	}
}

package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"ibasim/internal/sim"
	"ibasim/internal/traffic"
)

// PatternSpec names a traffic pattern for the harness. It serializes
// into campaign job specs, so the JSON field names are part of the
// canonical job encoding.
type PatternSpec struct {
	Kind     string  `json:"kind"`               // "uniform", "bit-reversal", "hot-spot"
	Fraction float64 `json:"fraction,omitempty"` // hot-spot share (0.05, 0.10, 0.20)
}

// ParsePattern reads the CLI/campaign string form of a pattern:
// "uniform", "bit-reversal", or "hot-spot:F" with F the hot fraction.
func ParsePattern(s string) (PatternSpec, error) {
	switch {
	case s == "uniform" || s == "bit-reversal":
		return PatternSpec{Kind: s}, nil
	case strings.HasPrefix(s, "hot-spot:"):
		f, err := strconv.ParseFloat(strings.TrimPrefix(s, "hot-spot:"), 64)
		if err != nil {
			return PatternSpec{}, fmt.Errorf("experiments: bad hot-spot fraction in %q", s)
		}
		return PatternSpec{Kind: "hot-spot", Fraction: f}, nil
	}
	return PatternSpec{}, fmt.Errorf("experiments: unknown pattern %q", s)
}

func (ps PatternSpec) String() string {
	if ps.Kind == "hot-spot" {
		return fmt.Sprintf("hot-spot-%d%%", int(ps.Fraction*100+0.5))
	}
	return ps.Kind
}

// build instantiates the pattern for a host count. The hot host is
// drawn from the run seed, as the paper randomly selects it.
func (ps PatternSpec) build(numHosts int, seed uint64) (traffic.Pattern, error) {
	switch ps.Kind {
	case "uniform":
		return traffic.Uniform{NumHosts: numHosts}, nil
	case "bit-reversal":
		return traffic.NewBitReversal(numHosts)
	case "hot-spot":
		return traffic.NewHotSpot(numHosts, ps.Fraction, sim.NewRNG(seed^0x484F54))
	default:
		return nil, fmt.Errorf("experiments: unknown pattern %q", ps.Kind)
	}
}

// BuildPattern instantiates a PatternSpec for a host count; the public
// facade uses it to translate pattern names.
func BuildPattern(ps PatternSpec, numHosts int, seed uint64) (traffic.Pattern, error) {
	return ps.build(numHosts, seed)
}

// Table1Patterns is the paper's pattern list for Table 1 (left).
var Table1Patterns = []PatternSpec{
	{Kind: "uniform"},
	{Kind: "bit-reversal"},
	{Kind: "hot-spot", Fraction: 0.05},
	{Kind: "hot-spot", Fraction: 0.10},
	{Kind: "hot-spot", Fraction: 0.20},
}

// Table1Row is one row of Table 1: min/max/avg throughput-increase
// factor of 100% adaptive traffic over the deterministic baseline,
// across a set of random topologies.
type Table1Row struct {
	Switches   int
	Links      int
	MR         int
	PacketSize int
	Pattern    string
	Min, Max   float64
	Avg        float64
	Factors    []float64
}

// Table1 computes throughput-increase rows for every network size in
// the scale, at the given connectivity (links per switch) and routing
// options (MR), for the given patterns and packet sizes. For each
// topology it sweeps offered load twice — plain deterministic switches
// vs enhanced switches with 100% adaptive traffic — and takes the
// ratio of saturation throughputs.
func Table1(sc Scale, links, mr int, patterns []PatternSpec, pktSizes []int) ([]Table1Row, error) {
	var rows []Table1Row
	loads := DefaultLoads(sc.LoadLo, sc.LoadHi, sc.LoadPoints)
	for _, size := range sc.Sizes {
		topos, err := sc.topoSet(size, links)
		if err != nil {
			return nil, err
		}
		for _, pkt := range pktSizes {
			for _, ps := range patterns {
				row := Table1Row{
					Switches: size, Links: links, MR: mr,
					PacketSize: pkt, Pattern: ps.String(),
					Min: -1,
				}
				for ti, topo := range topos {
					seed := sc.FirstSeed + uint64(ti)
					pattern, err := ps.build(topo.NumHosts(), seed)
					if err != nil {
						return nil, err
					}
					det := sc.Spec(topo, mr, pkt, 0, pattern, seed, false)
					ada := sc.Spec(topo, mr, pkt, 1, pattern, seed, true)
					detPts, err := LoadSweep(det, loads)
					if err != nil {
						return nil, err
					}
					adaPts, err := LoadSweep(ada, loads)
					if err != nil {
						return nil, err
					}
					dt, at := Throughput(detPts), Throughput(adaPts)
					if dt <= 0 {
						return nil, fmt.Errorf("experiments: zero deterministic throughput (size %d seed %d)", size, seed)
					}
					f := at / dt
					row.Factors = append(row.Factors, f)
					if row.Min < 0 || f < row.Min {
						row.Min = f
					}
					if f > row.Max {
						row.Max = f
					}
					row.Avg += f
				}
				row.Avg /= float64(len(row.Factors))
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// WriteTable1 prints rows in the paper's layout.
func WriteTable1(w io.Writer, rows []Table1Row) error {
	if _, err := fmt.Fprintf(w, "# Table 1: throughput increase factor (100%% adaptive vs deterministic)\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-4s %-6s %-3s %-5s %-14s %8s %8s %8s\n",
		"sw", "links", "MR", "bytes", "pattern", "min", "max", "avg"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-4d %-6d %-3d %-5d %-14s %8.2f %8.2f %8.2f\n",
			r.Switches, r.Links, r.MR, r.PacketSize, r.Pattern, r.Min, r.Max, r.Avg); err != nil {
			return err
		}
	}
	return nil
}

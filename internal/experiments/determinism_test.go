package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// figure3Golden is the SHA-256 of the serialized Figure 3 panel below,
// captured from the pre-pooling seed implementation. It pins the
// simulation bit-exactly across hot-path refactors (event pooling,
// table caching, closure reuse must not perturb event ordering or RNG
// consumption). Regenerate it only for an intentional model change,
// never to make a refactor pass.
const figure3Golden = "a175e89e1385594e72cfa8e4d2a8aa9e9ac24a5d9f0b9a84713c5e72d560219f"

func figure3Artifact(t *testing.T) []byte { return figure3ArtifactSharded(t, 0) }

// figure3ArtifactSharded builds the golden panel on the sharded engine
// (shards = 0 selects the sequential default).
func figure3ArtifactSharded(t *testing.T, shards int) []byte {
	t.Helper()
	sc := QuickScale()
	sc.Sizes = []int{8}
	sc.Topologies = 1
	sc.Shards = shards
	res, err := Figure3(sc, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFigure3Deterministic guards the determinism contract: the same
// seed must yield byte-identical experiment artifacts run-to-run,
// through the parallel harness, and across hot-path refactors (via the
// committed golden hash).
func TestFigure3Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four QuickScale sweeps")
	}
	first := figure3Artifact(t)
	second := figure3Artifact(t)
	if !bytes.Equal(first, second) {
		t.Fatal("two sequential runs with the same seed differ")
	}
	// Concurrent execution must not change results either: the worker
	// pool only reorders wall-clock execution, never simulated events.
	parallel, err := runParallel(2, func(i int) ([]byte, error) {
		return figure3Artifact(t), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parallel {
		if !bytes.Equal(first, p) {
			t.Fatalf("parallel run %d differs from sequential run", i)
		}
	}
	sum := sha256.Sum256(first)
	if got := hex.EncodeToString(sum[:]); got != figure3Golden {
		t.Fatalf("artifact hash %s, want golden %s (simulation output drifted)", got, figure3Golden)
	}
}

// TestFigure3GoldenSharded pins the sharded engine to the same golden
// hash: the conservative-parallel engine must reproduce the committed
// artifact byte-for-byte, not merely match the sequential engine of
// the same build.
func TestFigure3GoldenSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two QuickScale sweeps")
	}
	for _, shards := range []int{3, 8} {
		sum := sha256.Sum256(figure3ArtifactSharded(t, shards))
		if got := hex.EncodeToString(sum[:]); got != figure3Golden {
			t.Fatalf("shards=%d artifact hash %s, want golden %s", shards, got, figure3Golden)
		}
	}
}

// TestFigure3GoldenUnfused pins the -fuse=false oracle engine to the
// same golden hash: hop fusion is a scheduling optimization, so fused
// (the default artifact test above) and unfused builds must both
// reproduce the committed bytes exactly.
func TestFigure3GoldenUnfused(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a QuickScale sweep")
	}
	sc := QuickScale()
	sc.Sizes = []int{8}
	sc.Topologies = 1
	sc.Unfused = true
	res, err := Figure3(sc, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	if got := hex.EncodeToString(sum[:]); got != figure3Golden {
		t.Fatalf("unfused artifact hash %s, want golden %s (fusion changed results)", got, figure3Golden)
	}
}

// TestFigure3GoldenScanArb pins the -arb=scan oracle to the same
// golden hash: the wake-list arbiter (the default, covered by the
// artifact tests above) and the full round-robin rescan must both
// reproduce the committed bytes exactly — arbitration strategy is a
// work-finding optimization, never a model change.
func TestFigure3GoldenScanArb(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a QuickScale sweep")
	}
	sc := QuickScale()
	sc.Sizes = []int{8}
	sc.Topologies = 1
	sc.Arb = "scan"
	res, err := Figure3(sc, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	if got := hex.EncodeToString(sum[:]); got != figure3Golden {
		t.Fatalf("scan-arbiter artifact hash %s, want golden %s (arbiter changed results)", got, figure3Golden)
	}
}

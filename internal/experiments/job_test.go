package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func testJob() JobSpec {
	return JobSpec{
		Switches: 8, Links: 4, TopoSeed: 1,
		MR: 2, Enhanced: true,
		Pattern: PatternSpec{Kind: "uniform"}, PacketSize: 32,
		AdaptiveFraction: 1, Load: 0.01, Seed: 1,
		WarmupNs: 5_000, MeasureNs: 20_000, DrainGraceNs: 5_000,
	}
}

// TestJobHashIgnoresExec pins canonicalization rule 2: execution hints
// never move the content address, so a sharded run dedups against the
// same run executed sequentially.
func TestJobHashIgnoresExec(t *testing.T) {
	base := testJob()
	variants := []ExecSpec{
		{},
		{Engine: "seq", Sched: "heap"},
		{Engine: "shard", Shards: 4, Partition: "roundrobin"},
		{Check: true, Unfused: true},
	}
	want := base.Hash()
	for _, ex := range variants {
		j := base
		j.Exec = ex
		if got := j.Hash(); got != want {
			t.Fatalf("Exec %+v moved the hash: %s != %s", ex, got, want)
		}
	}
}

// TestJobHashNormalizationEquivalence pins rule 1: a tersely written
// spec and its fully explicit form share one content address.
func TestJobHashNormalizationEquivalence(t *testing.T) {
	terse := testJob()
	terse.Schema = 0
	terse.HostsPerSwitch = 0
	terse.Pattern.Kind = ""

	explicit := testJob()
	explicit.Schema = JobSchemaVersion
	explicit.HostsPerSwitch = 4
	explicit.Pattern.Kind = "uniform"

	if terse.Hash() != explicit.Hash() {
		t.Fatalf("normalized forms hash apart: %s != %s", terse.Hash(), explicit.Hash())
	}
}

// TestJobHashCoversResultInputs: every result-determining field must
// move the hash (rule 3 makes LagNs the interesting case).
func TestJobHashCoversResultInputs(t *testing.T) {
	base := testJob()
	mutations := map[string]func(*JobSpec){
		"switches":   func(j *JobSpec) { j.Switches = 16 },
		"links":      func(j *JobSpec) { j.Links = 6 },
		"topoSeed":   func(j *JobSpec) { j.TopoSeed = 2 },
		"mr":         func(j *JobSpec) { j.MR = 4 },
		"enhanced":   func(j *JobSpec) { j.Enhanced = false },
		"pattern":    func(j *JobSpec) { j.Pattern = PatternSpec{Kind: "bit-reversal"} },
		"packetSize": func(j *JobSpec) { j.PacketSize = 256 },
		"fraction":   func(j *JobSpec) { j.AdaptiveFraction = 0.5 },
		"load":       func(j *JobSpec) { j.Load = 0.02 },
		"seed":       func(j *JobSpec) { j.Seed = 7 },
		"measure":    func(j *JobSpec) { j.MeasureNs = 30_000 },
		"lag":        func(j *JobSpec) { j.LagNs = 500 },
		"faults":     func(j *JobSpec) { j.Faults = "rand:1:1000@2000-3000" },
		"faultSeed":  func(j *JobSpec) { j.FaultSeed = 9 },
	}
	seen := map[string]string{base.Hash(): "base"}
	for name, mut := range mutations {
		j := base
		mut(&j)
		h := j.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("mutation %q collides with %q: hash %s", name, prev, h)
		}
		seen[h] = name
	}
}

func TestJobValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*JobSpec)
		want string
	}{
		{"schema-mismatch", func(j *JobSpec) { j.Schema = 99 }, "job schema 99"},
		{"zero-switches", func(j *JobSpec) { j.Switches = 0 }, "must be positive"},
		{"bad-mr", func(j *JobSpec) { j.MR = 0 }, "must be >= 1"},
		{"bad-pattern", func(j *JobSpec) { j.Pattern.Kind = "zipf" }, `pattern "zipf" unknown`},
		{"hot-spot-no-fraction", func(j *JobSpec) { j.Pattern = PatternSpec{Kind: "hot-spot"} }, "hot-spot fraction"},
		{"nan-load", func(j *JobSpec) { j.Load = nan() }, "load"},
		{"negative-lag", func(j *JobSpec) { j.LagNs = -1 }, "lag"},
		{"bad-faults", func(j *JobSpec) { j.Faults = "florp:1" }, "fault spec"},
		{"zero-measure", func(j *JobSpec) { j.MeasureNs = 0 }, "measurement window"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := testJob()
			tc.mut(&j)
			err := j.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
	j := testJob()
	if err := j.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
}

// TestJobExecuteDeterministic: the same spec executed twice serializes
// to identical bytes with ShardStats cleared — the property that makes
// content addressing byte-exact across resumes.
func TestJobExecuteDeterministic(t *testing.T) {
	j := testJob()
	r1, err := j.Execute()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := j.Execute()
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Fatalf("Execute is not reproducible:\n%s\n%s", b1, b2)
	}
	if r1.ShardStats != nil {
		t.Fatal("Execute leaked ShardStats into the result")
	}
	if r1.PacketsMeasured == 0 {
		t.Fatal("job measured no packets; spec too small to mean anything")
	}
}

// TestJobExecuteEngineInvariant: rule 2's soundness — the sharded
// engine must produce the byte-identical artifact for the same address.
func TestJobExecuteEngineInvariant(t *testing.T) {
	seq := testJob()
	shard := testJob()
	shard.Exec = ExecSpec{Engine: "shard", Shards: 2}
	if seq.Hash() != shard.Hash() {
		t.Fatalf("hashes differ: %s vs %s", seq.Hash(), shard.Hash())
	}
	r1, err := seq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := shard.Execute()
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Fatalf("seq and shard artifacts differ for one content address:\n%s\n%s", b1, b2)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

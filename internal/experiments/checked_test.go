package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"reflect"
	"testing"

	"ibasim/internal/traffic"
)

// TestFigure3GoldenChecked pins the invariant auditor's heavy scans to
// the committed golden hash on BOTH engines: -check re-verifies the
// model while the run executes but only ever reads state, so enabling
// it must not perturb a single event. A drift here means an audit
// mutated the simulation (or scheduled into its event order) — exactly
// the bug class this test exists to block.
func TestFigure3GoldenChecked(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two QuickScale sweeps")
	}
	for _, shards := range []int{0, 3} {
		sc := QuickScale()
		sc.Sizes = []int{8}
		sc.Topologies = 1
		sc.Shards = shards
		sc.Check = true
		res, err := Figure3(sc, 8)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var buf bytes.Buffer
		if err := res.Write(&buf); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(buf.Bytes())
		if got := hex.EncodeToString(sum[:]); got != figure3Golden {
			t.Fatalf("shards=%d checked artifact hash %s, want golden %s (auditor perturbed the simulation)", shards, got, figure3Golden)
		}
	}
}

// TestAuditStatsPopulated asserts a checked run actually audited:
// nonzero hop checks and heavy scans, zero violations, and identical
// observables with the auditor's heavy scans on and off.
func TestAuditStatsPopulated(t *testing.T) {
	sc := QuickScale()
	topos, err := sc.topoSet(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	spec := sc.Spec(topos[0], 2, 32, 1.0, traffic.Uniform{NumHosts: topos[0].NumHosts()}, 1, true)
	spec.Traffic.LoadBytesPerNsPerHost = 0.02

	plain, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Check = true
	checked, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	if plain.Audit.HopChecks == 0 || checked.Audit.HopChecks == 0 {
		t.Fatalf("hop checks not running: plain=%d checked=%d", plain.Audit.HopChecks, checked.Audit.HopChecks)
	}
	if plain.Audit.HeavyTicks != 0 {
		t.Fatalf("heavy scans ran without Check: %d", plain.Audit.HeavyTicks)
	}
	if checked.Audit.HeavyTicks == 0 {
		t.Fatal("Check set but no heavy scans ran")
	}
	if plain.Audit.Violations != 0 || checked.Audit.Violations != 0 {
		t.Fatalf("clean model reported violations: plain=%d checked=%d", plain.Audit.Violations, checked.Audit.Violations)
	}

	// The observables must be bit-identical; only the audit bookkeeping
	// and execution artifacts may differ.
	plain.Audit, checked.Audit = AuditStats{}, AuditStats{}
	plain.ShardStats, checked.ShardStats = nil, nil
	if !reflect.DeepEqual(plain, checked) {
		t.Fatalf("heavy audits changed results:\nplain:   %+v\nchecked: %+v", plain, checked)
	}
}

package experiments

import (
	"fmt"
	"io"

	"ibasim/internal/traffic"
)

// MotivationRow compares the routing schemes of the paper's
// introduction on one network size: deterministic up*/down*,
// source-selected multipath with 2 and 4 alternative paths ("by using
// alternative paths selected at the source node, the overall network
// performance is hardly improved"), and the proposed fully adaptive
// scheme. Values are saturation throughputs in bytes/ns/switch,
// averaged over the scale's topology set.
type MotivationRow struct {
	Switches      int
	Deterministic float64
	SourcePath2   float64
	SourcePath4   float64
	FullyAdaptive float64
}

// Motivation runs the comparison for every size in the scale with
// uniform 32-byte traffic, 4 inter-switch links, two routing options
// for FA (the Figure 3 setup).
func Motivation(sc Scale) ([]MotivationRow, error) {
	loads := DefaultLoads(sc.LoadLo, sc.LoadHi, sc.LoadPoints)
	var rows []MotivationRow
	for _, size := range sc.Sizes {
		topos, err := sc.topoSet(size, 4)
		if err != nil {
			return nil, err
		}
		row := MotivationRow{Switches: size}
		for ti, topo := range topos {
			seed := sc.FirstSeed + uint64(ti)
			u := traffic.Uniform{NumHosts: topo.NumHosts()}

			det := sc.Spec(topo, 2, 32, 0, u, seed, false)
			fa := sc.Spec(topo, 2, 32, 1, u, seed, true)
			sp2 := sc.Spec(topo, 2, 32, 0, u, seed, false)
			sp2.SourceMultipath = 2
			sp2.Fabric.SourceMultipath = 2
			sp4 := sc.Spec(topo, 4, 32, 0, u, seed, false)
			sp4.SourceMultipath = 4
			sp4.Fabric.SourceMultipath = 4

			for _, c := range []struct {
				spec RunSpec
				into *float64
			}{
				{det, &row.Deterministic},
				{sp2, &row.SourcePath2},
				{sp4, &row.SourcePath4},
				{fa, &row.FullyAdaptive},
			} {
				pts, err := LoadSweep(c.spec, loads)
				if err != nil {
					return nil, err
				}
				*c.into += Throughput(pts)
			}
		}
		n := float64(len(topos))
		row.Deterministic /= n
		row.SourcePath2 /= n
		row.SourcePath4 /= n
		row.FullyAdaptive /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteMotivation prints the comparison with per-scheme factors over
// the deterministic baseline.
func WriteMotivation(w io.Writer, rows []MotivationRow) error {
	if _, err := fmt.Fprintf(w, "# Motivation: saturation throughput by routing scheme (bytes/ns/switch)\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-4s %12s %12s %12s %12s %8s %8s %8s\n",
		"sw", "determ.", "src-path-2", "src-path-4", "fully-adapt",
		"x(sp2)", "x(sp4)", "x(FA)"); err != nil {
		return err
	}
	for _, r := range rows {
		f := func(v float64) float64 {
			if r.Deterministic <= 0 {
				return 0
			}
			return v / r.Deterministic
		}
		if _, err := fmt.Fprintf(w, "%-4d %12.4f %12.4f %12.4f %12.4f %8.2f %8.2f %8.2f\n",
			r.Switches, r.Deterministic, r.SourcePath2, r.SourcePath4, r.FullyAdaptive,
			f(r.SourcePath2), f(r.SourcePath4), f(r.FullyAdaptive)); err != nil {
			return err
		}
	}
	return nil
}

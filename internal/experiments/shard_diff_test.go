package experiments

import (
	"reflect"
	"testing"

	"ibasim/internal/fabric"
	"ibasim/internal/faults"
	"ibasim/internal/sim"
	"ibasim/internal/topology"
	"ibasim/internal/traffic"
)

// The sharded engine's whole value rests on one claim: for any shard
// count, partitioner and queue geometry, a run produces byte-identical
// results to the sequential engine. These tests are the claim's
// enforcement. They run full simulations (warmup + measured window +
// drain) on an irregular topology and compare complete RunResults —
// floats included, which only works because every merged quantity is
// either an integer counter over disjoint per-shard event sets or an
// exactly-representable float64 sum.

func shardDiffTopo(t testing.TB) *topology.Topology {
	t.Helper()
	topo, err := topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches: 8, HostsPerSwitch: 4, InterSwitch: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func shardDiffSpec(topo *topology.Topology, opts ...sim.EngineOption) RunSpec {
	cfg := fabric.DefaultConfig()
	cfg.EngineOpts = opts
	return RunSpec{
		Topo:    topo,
		LMC:     1,
		MR:      2,
		Fabric:  cfg,
		Traffic: traffic.Config{Pattern: traffic.Uniform{NumHosts: topo.NumHosts()}, PacketSize: 32, AdaptiveFraction: 0.75, LoadBytesPerNsPerHost: 0.03, Seed: 11},
		Warmup:  20_000, Measure: 100_000, DrainGrace: 30_000,
		Seed: 11,
	}
}

func runShardVariant(t *testing.T, spec RunSpec, shards int, partition string) RunResult {
	t.Helper()
	s := spec
	s.Fabric.Shards = shards
	s.Fabric.Partition = partition
	res, err := Run(s)
	if err != nil {
		t.Fatalf("shards=%d partition=%q: %v", shards, partition, err)
	}
	// ShardStats is an execution artifact (how the work was scheduled),
	// not a simulation observable; the bit-exactness contract compares
	// results with it cleared.
	res.ShardStats = nil
	return res
}

// TestShardEngineBitExact sweeps shard counts and both partitioners
// across the calendar geometries the scheduler differential uses (tiny
// wheels wrap and overflow constantly, so window boundaries land in
// every structural regime), comparing complete RunResults against the
// sequential engine.
func TestShardEngineBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many full simulations")
	}
	topo := shardDiffTopo(t)
	geometries := []struct{ slotBits, widthBits uint }{
		{3, 0}, {3, 2}, {4, 1}, {6, 3}, {12, 2},
	}
	for _, g := range geometries {
		spec := shardDiffSpec(topo, sim.WithWheelGeometry(g.slotBits, g.widthBits))
		want := runShardVariant(t, spec, 0, "")
		for _, shards := range []int{1, 2, 4, 7} {
			for _, partition := range []string{fabric.PartitionBFS, fabric.PartitionRoundRobin} {
				got := runShardVariant(t, spec, shards, partition)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("geometry %d/%d shards=%d partition=%s diverged:\n got %+v\nwant %+v",
						g.slotBits, g.widthBits, shards, partition, got, want)
				}
			}
		}
	}
}

// TestShardEngineBitExactHeap repeats the check on the heap scheduler:
// the shard coordinator must be scheduler-agnostic.
func TestShardEngineBitExactHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	spec := shardDiffSpec(shardDiffTopo(t), sim.WithScheduler(sim.SchedulerHeap))
	want := runShardVariant(t, spec, 0, "")
	for _, shards := range []int{2, 7} {
		got := runShardVariant(t, spec, shards, fabric.PartitionBFS)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("heap shards=%d diverged:\n got %+v\nwant %+v", shards, got, want)
		}
	}
}

// TestShardEngineBitExactFaults runs a full fault campaign — link
// flaps, a whole-switch failure, staged SM recoveries, retries, the
// invariant watchdog — under every shard count. Degraded-mode
// observables (drop/retry counters, recovery latency, watchdog
// samples) must match the sequential run exactly too.
func TestShardEngineBitExactFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full fault campaigns")
	}
	topo := shardDiffTopo(t)
	l0, l1 := topo.Links[0], topo.Links[1]
	camp := &faults.Campaign{
		Events: []faults.Event{
			{At: 40_000, Kind: faults.LinkDown, A: l0.A, B: l0.B},
			{At: 70_000, Kind: faults.LinkUp, A: l0.A, B: l0.B},
			// Whole-switch deaths disconnect the dead switch's hosts, so
			// staged recovery would (correctly) refuse the topology; the
			// campaign sticks to link faults, which still exercise drops,
			// retries and cross-shard requeues.
			{At: 80_000, Kind: faults.LinkDown, A: l1.A, B: l1.B},
			{At: 130_000, Kind: faults.LinkUp, A: l1.A, B: l1.B},
		},
		AutoReconfig: 5_000,
		Watchdog:     faults.WatchdogConfig{SampleEvery: 5_000, Horizon: 120_000},
	}
	spec := shardDiffSpec(topo)
	spec.Measure = 150_000
	spec.DrainGrace = 80_000
	spec.Faults = camp
	spec.FaultSeed = 3
	want := runShardVariant(t, spec, 0, "")
	if want.Degraded.FaultsInjected == 0 || want.Degraded.Reconfigs == 0 {
		t.Fatalf("campaign did not exercise faults: %+v", want.Degraded)
	}
	for _, shards := range []int{1, 2, 4, 7} {
		got := runShardVariant(t, spec, shards, fabric.PartitionBFS)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("faults shards=%d diverged:\n got %+v\nwant %+v", shards, got, want)
		}
	}
}

// TestShardModeValidation pins the configuration gate: forwarding
// paths that draw the shared network RNG cannot shard.
func TestShardModeValidation(t *testing.T) {
	cfg := fabric.DefaultConfig()
	cfg.Shards = 4
	cfg.Selection.StatusAware = false
	if err := cfg.Validate(); err == nil {
		t.Error("static selection + shards validated")
	}
	cfg = fabric.DefaultConfig()
	cfg.Shards = 4
	cfg.Partition = "metis"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown partitioner validated")
	}
	cfg = fabric.DefaultConfig()
	cfg.Shards = 4
	if err := cfg.Validate(); err != nil {
		t.Errorf("default adaptive config + shards rejected: %v", err)
	}
}

package experiments

import (
	"reflect"
	"testing"

	"ibasim/internal/fabric"
	"ibasim/internal/faults"
	"ibasim/internal/sim"
	"ibasim/internal/trace"
	"ibasim/internal/traffic"
)

// Hop fusion's whole value rests on the same claim the shard engine
// makes: the fused fast path is an optimization of the event schedule,
// not of the results. These tests enforce it with the unfused engine
// (-fuse=false) as the differential oracle, comparing complete
// RunResults — floats included — across queue geometries, schedulers,
// shard counts, the invariant auditor, fault campaigns and a
// contention storm that forces constant de-fused fallbacks.

func fuseVariant(t *testing.T, spec RunSpec, fuse bool, shards int) RunResult {
	t.Helper()
	s := spec
	s.Fabric.Fuse = fuse
	if shards > 0 {
		s.Fabric.Shards = shards
		s.Fabric.Partition = fabric.PartitionBFS
	}
	res, err := Run(s)
	if err != nil {
		t.Fatalf("fuse=%v shards=%d: %v", fuse, shards, err)
	}
	// ShardStats is an execution artifact, not a simulation observable;
	// the differential compares results with it cleared.
	res.ShardStats = nil
	return res
}

// TestFusionBitExact sweeps the calendar geometries of the scheduler
// differential (tiny wheels wrap and overflow constantly, so fused
// dispatches land in every structural regime) plus the heap scheduler,
// comparing fused runs — sequential and sharded — against the unfused
// sequential oracle.
func TestFusionBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many full simulations")
	}
	topo := shardDiffTopo(t)
	variants := []struct {
		name string
		opts []sim.EngineOption
	}{
		{"wheel-3-0", []sim.EngineOption{sim.WithWheelGeometry(3, 0)}},
		{"wheel-3-2", []sim.EngineOption{sim.WithWheelGeometry(3, 2)}},
		{"wheel-4-1", []sim.EngineOption{sim.WithWheelGeometry(4, 1)}},
		{"wheel-6-3", []sim.EngineOption{sim.WithWheelGeometry(6, 3)}},
		{"wheel-12-2", []sim.EngineOption{sim.WithWheelGeometry(12, 2)}},
		{"heap", []sim.EngineOption{sim.WithScheduler(sim.SchedulerHeap)}},
	}
	for _, v := range variants {
		spec := shardDiffSpec(topo, v.opts...)
		want := fuseVariant(t, spec, false, 0)
		if got := fuseVariant(t, spec, true, 0); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: fused sequential diverged from unfused:\n got %+v\nwant %+v", v.name, got, want)
		}
		for _, shards := range []int{1, 2, 4} {
			if got := fuseVariant(t, spec, true, shards); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: fused shards=%d diverged from unfused:\n got %+v\nwant %+v", v.name, shards, got, want)
			}
		}
	}
}

// TestFusionBitExactChecked repeats the differential with the heavy
// invariant auditor on: fusion must neither perturb results under
// audit nor trip the auditor, and the audit counters themselves (hop
// checks, heavy ticks) must match event for event.
func TestFusionBitExactChecked(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	spec := shardDiffSpec(shardDiffTopo(t))
	spec.Check = true
	want := fuseVariant(t, spec, false, 0)
	if want.Audit.HopChecks == 0 || want.Audit.HeavyTicks == 0 {
		t.Fatalf("auditor did not run: %+v", want.Audit)
	}
	if want.Audit.Violations != 0 {
		t.Fatalf("unfused oracle run is not clean: %+v", want.Audit)
	}
	for _, shards := range []int{0, 2} {
		if got := fuseVariant(t, spec, true, shards); !reflect.DeepEqual(got, want) {
			t.Errorf("checked fused shards=%d diverged:\n got %+v\nwant %+v", shards, got, want)
		}
	}
}

// TestFusionBitExactFaults runs the shard differential's fault
// campaign fused and unfused: kick events around dead ports, staged
// recoveries and retry re-injections all cross the fusion quiescence
// test, and every degraded-mode observable must still match.
func TestFusionBitExactFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full fault campaigns")
	}
	topo := shardDiffTopo(t)
	l0, l1 := topo.Links[0], topo.Links[1]
	camp := &faults.Campaign{
		Events: []faults.Event{
			{At: 40_000, Kind: faults.LinkDown, A: l0.A, B: l0.B},
			{At: 70_000, Kind: faults.LinkUp, A: l0.A, B: l0.B},
			{At: 80_000, Kind: faults.LinkDown, A: l1.A, B: l1.B},
			{At: 130_000, Kind: faults.LinkUp, A: l1.A, B: l1.B},
		},
		AutoReconfig: 5_000,
		Watchdog:     faults.WatchdogConfig{SampleEvery: 5_000, Horizon: 120_000},
	}
	spec := shardDiffSpec(topo)
	spec.Measure = 150_000
	spec.DrainGrace = 80_000
	spec.Faults = camp
	spec.FaultSeed = 3
	want := fuseVariant(t, spec, false, 0)
	if want.Degraded.FaultsInjected == 0 || want.Degraded.Reconfigs == 0 {
		t.Fatalf("campaign did not exercise faults: %+v", want.Degraded)
	}
	for _, shards := range []int{0, 2} {
		if got := fuseVariant(t, spec, true, shards); !reflect.DeepEqual(got, want) {
			t.Errorf("faults fused shards=%d diverged:\n got %+v\nwant %+v", shards, got, want)
		}
	}
}

// TestFusionBitExactContentionStorm overloads a hot-spot destination
// far past saturation, the regime where the quiescence precondition
// fails most of the time and fused/unfused dispatch constantly
// interleaves with queued same-timestamp events — the hardest case for
// the exact-timing argument.
func TestFusionBitExactContentionStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("runs saturated simulations")
	}
	topo := shardDiffTopo(t)
	hot, err := traffic.NewHotSpot(topo.NumHosts(), 0.4, sim.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	spec := shardDiffSpec(topo)
	spec.Traffic.Pattern = hot
	spec.Traffic.LoadBytesPerNsPerHost = 0.25 // deep saturation
	want := fuseVariant(t, spec, false, 0)
	got := fuseVariant(t, spec, true, 0)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("contention storm fused diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestFusionTraceIdentical pins the tracer contract: attaching a
// recorder de-fuses the network (FusedKicks stays zero even with
// Cfg.Fuse on), and the recorded per-hop event sequence is identical
// with fusion configured on or off.
func TestFusionTraceIdentical(t *testing.T) {
	spec := shardDiffSpec(shardDiffTopo(t))
	runTraced := func(fuse bool) (*trace.Recorder, uint64) {
		s := spec
		s.Fabric.Fuse = fuse
		rec := trace.NewRecorder(4096)
		var fusedKicks uint64
		var netRef *fabric.Network
		_, err := RunObserved(s, func(n *fabric.Network) {
			rec.Attach(n)
			netRef = n
		})
		if err != nil {
			t.Fatalf("fuse=%v: %v", fuse, err)
		}
		fusedKicks = netRef.FusedKicks()
		return rec, fusedKicks
	}
	recOn, kicksOn := runTraced(true)
	recOff, kicksOff := runTraced(false)
	if kicksOn != 0 || kicksOff != 0 {
		t.Errorf("tracer attached but kicks fused: fuse-on=%d fuse-off=%d, want 0", kicksOn, kicksOff)
	}
	if recOn.Total() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	if recOn.Total() != recOff.Total() {
		t.Errorf("event totals differ: fuse-on=%d fuse-off=%d", recOn.Total(), recOff.Total())
	}
	if recOn.AdaptiveHops != recOff.AdaptiveHops || recOn.EscapeHops != recOff.EscapeHops {
		t.Errorf("hop aggregates differ: on=%d/%d off=%d/%d",
			recOn.AdaptiveHops, recOn.EscapeHops, recOff.AdaptiveHops, recOff.EscapeHops)
	}
	on, off := recOn.Events(), recOff.Events()
	if !reflect.DeepEqual(on, off) {
		for i := range on {
			if i >= len(off) || on[i] != off[i] {
				t.Fatalf("traced sequences diverge at event %d:\n fuse-on  %s\n fuse-off %s", i, on[i], off[i])
			}
		}
		t.Fatalf("traced sequences differ in length: %d vs %d", len(on), len(off))
	}
}

// TestFusionKicksEngageInRealRuns complements the trace test from the
// other side: a plain fused run (no tracer) on the same spec must
// actually exercise the fast path.
func TestFusionKicksEngageInRealRuns(t *testing.T) {
	spec := shardDiffSpec(shardDiffTopo(t))
	spec.Fabric.Fuse = true
	var netRef *fabric.Network
	if _, err := RunObserved(spec, func(n *fabric.Network) { netRef = n }); err != nil {
		t.Fatal(err)
	}
	if k := netRef.FusedKicks(); k == 0 {
		t.Error("fused run recorded no fused kicks")
	}
}

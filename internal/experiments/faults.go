package experiments

import (
	"fmt"
	"io"

	"ibasim/internal/faults"
	"ibasim/internal/traffic"
)

// FaultRow is one campaign run's degraded-mode summary.
type FaultRow struct {
	Size     int
	Seed     uint64
	Accepted float64
	Degraded DegradedStats
}

// FaultCampaign runs the campaign on every network size of the scale,
// over the scale's topology seed set, and reports each run's
// degraded-mode behavior: drops by reason, retries, losses, staged
// recovery latency, and the watchdog verdict. The workload is uniform
// traffic at the scale's low load so the fabric has headroom to
// absorb re-routed packets (EXPERIMENTS.md records the methodology).
func FaultCampaign(sc Scale, links, mr int, c *faults.Campaign, faultSeed uint64) ([]FaultRow, error) {
	var rows []FaultRow
	for _, size := range sc.Sizes {
		topoSet, err := sc.topoSet(size, links)
		if err != nil {
			return nil, err
		}
		for i, topo := range topoSet {
			seed := sc.FirstSeed + uint64(i)
			spec := sc.Spec(topo, mr, sc.PacketSizes[0], 1.0,
				traffic.Uniform{NumHosts: topo.NumHosts()}, seed, true)
			spec.Faults = c
			spec.FaultSeed = faultSeed + seed
			res, err := Run(spec)
			if err != nil {
				return nil, fmt.Errorf("size %d seed %d: %w", size, seed, err)
			}
			rows = append(rows, FaultRow{
				Size:     size,
				Seed:     seed,
				Accepted: res.AcceptedPerSwitch,
				Degraded: res.Degraded,
			})
		}
	}
	return rows, nil
}

// WriteFaultTable prints campaign rows as tab-separated text.
func WriteFaultTable(w io.Writer, rows []FaultRow) error {
	if _, err := fmt.Fprintf(w, "# size\tseed\taccepted\tfaults\treconfigs\tdropped\tretries\tlost\trecovery-ns\twd-violations\n"); err != nil {
		return err
	}
	for _, r := range rows {
		d := r.Degraded
		if _, err := fmt.Fprintf(w, "%d\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Size, r.Seed, fmtFloat(r.Accepted), d.FaultsInjected, d.Reconfigs,
			d.Dropped(), d.Retries, d.Lost, d.RecoveryLatencyNs, d.WatchdogViolations); err != nil {
			return err
		}
	}
	return nil
}

package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ibasim/internal/topology"
	"ibasim/internal/traffic"
)

// tinyScale keeps experiment smoke tests fast while preserving the
// qualitative comparisons.
func tinyScale() Scale {
	sc := QuickScale()
	sc.Sizes = []int{8}
	sc.Topologies = 2
	sc.LoadPoints = 4
	sc.Warmup = 20_000
	sc.Measure = 80_000
	sc.DrainGrace = 20_000
	sc.LoadLo = 0.01
	sc.LoadHi = 0.30 // push past saturation so Throughput is meaningful
	return sc
}

func TestRunProducesTraffic(t *testing.T) {
	sc := tinyScale()
	topo := topology.MustGenerateIrregular(topology.IrregularSpec{
		NumSwitches: 8, HostsPerSwitch: 4, InterSwitch: 4, Seed: 1,
	})
	spec := sc.Spec(topo, 2, 32, 1, traffic.Uniform{NumHosts: topo.NumHosts()}, 1, true)
	spec.Traffic.LoadBytesPerNsPerHost = 0.01
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsMeasured == 0 {
		t.Fatal("no packets measured")
	}
	if res.AcceptedPerSwitch <= 0 {
		t.Fatal("no accepted traffic")
	}
	if res.AvgLatencyNs < 400 {
		t.Fatalf("latency %v below physical floor", res.AvgLatencyNs)
	}
}

func TestRunDeterministicReproducible(t *testing.T) {
	sc := tinyScale()
	topo := topology.MustGenerateIrregular(topology.IrregularSpec{
		NumSwitches: 8, HostsPerSwitch: 4, InterSwitch: 4, Seed: 2,
	})
	spec := sc.Spec(topo, 2, 32, 0.5, traffic.Uniform{NumHosts: topo.NumHosts()}, 5, true)
	spec.Traffic.LoadBytesPerNsPerHost = 0.02
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical specs diverged:\n%+v\n%+v", a, b)
	}
}

func TestAcceptedTracksOfferedBelowSaturation(t *testing.T) {
	sc := tinyScale()
	topo := topology.MustGenerateIrregular(topology.IrregularSpec{
		NumSwitches: 8, HostsPerSwitch: 4, InterSwitch: 4, Seed: 3,
	})
	spec := sc.Spec(topo, 2, 32, 0, traffic.Uniform{NumHosts: topo.NumHosts()}, 1, false)
	pts, err := LoadSweep(spec, []float64{0.005, 0.02})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Accepted < 0.85*p.Offered {
			t.Fatalf("below saturation accepted %.4f << offered %.4f", p.Accepted, p.Offered)
		}
	}
	if pts[1].AvgLatency < pts[0].AvgLatency*0.8 {
		t.Fatalf("latency decreased sharply with load: %v -> %v", pts[0].AvgLatency, pts[1].AvgLatency)
	}
}

func TestThroughputHelpers(t *testing.T) {
	pts := []SweepPoint{{Accepted: 0.1}, {Accepted: 0.3}, {Accepted: 0.25}}
	if Throughput(pts) != 0.3 {
		t.Fatalf("Throughput = %v", Throughput(pts))
	}
	if Throughput(nil) != 0 {
		t.Fatal("Throughput(nil) != 0")
	}
	loads := DefaultLoads(0.01, 0.16, 5)
	if len(loads) != 5 || loads[0] != 0.01 {
		t.Fatalf("loads = %v", loads)
	}
	if loads[4] < 0.159 || loads[4] > 0.161 {
		t.Fatalf("geometric grid endpoint %v, want ~0.16", loads[4])
	}
}

func TestLmcFor(t *testing.T) {
	cases := map[int]uint{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3}
	for mr, want := range cases {
		if got := lmcFor(mr); got != want {
			t.Fatalf("lmcFor(%d) = %d, want %d", mr, got, want)
		}
	}
}

// TestAdaptiveBeatsDeterministic8Switches is the paper's core claim at
// smoke-test scale: enhanced switches with 100% adaptive traffic reach
// at least the deterministic baseline's throughput (the paper finds
// ~1.2x at 8 switches).
func TestAdaptiveBeatsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	sc := tinyScale()
	topo := topology.MustGenerateIrregular(topology.IrregularSpec{
		NumSwitches: 8, HostsPerSwitch: 4, InterSwitch: 4, Seed: 1,
	})
	loads := DefaultLoads(sc.LoadLo, sc.LoadHi, sc.LoadPoints)
	u := traffic.Uniform{NumHosts: topo.NumHosts()}
	detPts, err := LoadSweep(sc.Spec(topo, 2, 32, 0, u, 1, false), loads)
	if err != nil {
		t.Fatal(err)
	}
	adaPts, err := LoadSweep(sc.Spec(topo, 2, 32, 1, u, 1, true), loads)
	if err != nil {
		t.Fatal(err)
	}
	det, ada := Throughput(detPts), Throughput(adaPts)
	if ada < det {
		t.Fatalf("adaptive throughput %.4f below deterministic %.4f", ada, det)
	}
}

func TestFigure3SmokeAndFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	sc := tinyScale()
	sc.LoadPoints = 3
	res, err := Figure3(sc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != len(Figure3Fractions) {
		t.Fatalf("series = %d, want %d", len(res.Series), len(Figure3Fractions))
	}
	for _, s := range res.Series {
		if len(s.Points) != 3 {
			t.Fatalf("series %v has %d points", s.AdaptiveFraction, len(s.Points))
		}
	}
	var buf bytes.Buffer
	if err := res.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 3", "adaptive traffic: 0%", "adaptive traffic: 100%", "factor="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1SmokeAndFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	sc := tinyScale()
	sc.Topologies = 1
	sc.LoadPoints = 3
	rows, err := Table1(sc, 4, 2, []PatternSpec{{Kind: "uniform"}}, []int{32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.Min > r.Avg || r.Avg > r.Max {
		t.Fatalf("min/avg/max disordered: %+v", r)
	}
	if r.Avg < 0.8 {
		t.Fatalf("throughput factor %.2f implausibly low", r.Avg)
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "uniform") {
		t.Fatalf("table output missing pattern column:\n%s", buf.String())
	}
}

func TestTable1PatternSpecs(t *testing.T) {
	for _, ps := range Table1Patterns {
		p, err := ps.build(64, 1)
		if err != nil {
			t.Fatalf("%v: %v", ps, err)
		}
		if p.Name() == "" {
			t.Fatalf("%v: empty name", ps)
		}
	}
	if _, err := (PatternSpec{Kind: "nonsense"}).build(64, 1); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

func TestTable2RowsAndInvariants(t *testing.T) {
	sc := tinyScale()
	sc.Sizes = []int{16}
	sc.Topologies = 3
	rows, err := Table2(sc, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // MR = 2, 3, 4
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		sum := 0.0
		for k := 1; k <= r.MR; k++ {
			if r.Percent[k] < 0 || r.Percent[k] > 100 {
				t.Fatalf("percent out of range: %+v", r)
			}
			sum += r.Percent[k]
		}
		if sum < 99.9 || sum > 100.1 {
			t.Fatalf("percentages sum to %.2f: %+v", sum, r)
		}
	}
	// The k=1 share must agree across MR caps (capping can't change
	// how many pairs have exactly one option).
	if d := rows[0].Percent[1] - rows[2].Percent[1]; d > 0.01 || d < -0.01 {
		t.Fatalf("k=1 share differs across MR: %v vs %v", rows[0].Percent[1], rows[2].Percent[1])
	}
}

func TestTable2ConnectivityIncreasesOptions(t *testing.T) {
	sc := tinyScale()
	sc.Sizes = []int{16}
	sc.Topologies = 3
	r4, err := Table2(sc, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	r6, err := Table2(sc, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	// §5.2.2: higher connectivity -> more multi-option pairs.
	if r6[0].Percent[2] <= r4[0].Percent[2] {
		t.Fatalf("6-link multi-option share %.2f not above 4-link %.2f",
			r6[0].Percent[2], r4[0].Percent[2])
	}
}

func TestMotivationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	sc := tinyScale()
	sc.Topologies = 1
	sc.LoadPoints = 3
	rows, err := Motivation(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Deterministic <= 0 || r.SourcePath2 <= 0 || r.SourcePath4 <= 0 || r.FullyAdaptive <= 0 {
		t.Fatalf("zero throughputs: %+v", r)
	}
	// The paper's ordering at smoke scale: FA at least matches the
	// deterministic baseline.
	if r.FullyAdaptive < r.Deterministic*0.95 {
		t.Fatalf("FA %.4f below deterministic %.4f", r.FullyAdaptive, r.Deterministic)
	}
	var buf bytes.Buffer
	if err := WriteMotivation(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fully-adapt") {
		t.Fatalf("missing column header:\n%s", buf.String())
	}
}

func TestRunReportsReorderAndOrderStats(t *testing.T) {
	sc := tinyScale()
	topo := topology.MustGenerateIrregular(topology.IrregularSpec{
		NumSwitches: 8, HostsPerSwitch: 4, InterSwitch: 4, Seed: 9,
	})
	spec := sc.Spec(topo, 2, 32, 1, traffic.Uniform{NumHosts: topo.NumHosts()}, 2, true)
	spec.Traffic.LoadBytesPerNsPerHost = 0.05
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutOfOrderFraction < 0 || res.OutOfOrderFraction > 1 {
		t.Fatalf("OutOfOrderFraction = %v", res.OutOfOrderFraction)
	}
	if res.P99LatencyNs < res.AvgLatencyNs {
		t.Fatalf("p99 %v below avg %v", res.P99LatencyNs, res.AvgLatencyNs)
	}
	if res.ReorderPeakHeld < 0 {
		t.Fatalf("ReorderPeakHeld = %d", res.ReorderPeakHeld)
	}
}

func TestTable2Format(t *testing.T) {
	sc := tinyScale()
	sc.Sizes = []int{8}
	sc.Topologies = 1
	rows, err := Table2(sc, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatalf("missing header:\n%s", buf.String())
	}
}

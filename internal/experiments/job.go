package experiments

// Job extraction: a JobSpec is the fully serializable description of
// one simulation run — the unit of work a campaign coordinator hands
// to a worker subprocess. Unlike RunSpec it contains no pointers or
// live objects: the topology is named by its generation parameters and
// seed, the traffic pattern by a PatternSpec, the fault schedule by
// its compact spec string. Everything a run's result depends on is in
// the spec, so its canonical sha256 hash is a sound content address
// for the run's artifact: same hash, byte-identical RunResult.
//
// Canonicalization rules (DESIGN.md §17 records them normatively):
//
//  1. The hash covers exactly the fields of canonicalInput, marshaled
//     with encoding/json in declaration order, every field present
//     (no omitempty), after Normalize filled defaults in.
//  2. Execution hints that cannot change the result — engine choice,
//     shard count, partitioner, scheduler, heavy checks, fusion, the
//     arbiter —
//     live in ExecSpec and are EXCLUDED: a run executed sharded
//     dedups against the same run executed sequentially, which is
//     sound because the shard engine is bit-exact (DESIGN.md §13).
//  3. LagNs > 0 relaxes exactness and so does change results; it is
//     part of the hash.
//  4. Schema is bumped whenever run semantics change, orphaning every
//     previously cached artifact at once.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"ibasim/internal/fabric"
	"ibasim/internal/faults"
	"ibasim/internal/sim"
	"ibasim/internal/topology"
	"ibasim/internal/traffic"
)

// topoFor regenerates the job's topology from its parameters; the
// generator is seed-deterministic, so the same spec always yields the
// identical graph.
func topoFor(j JobSpec) (*topology.Topology, error) {
	return topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches:    j.Switches,
		HostsPerSwitch: j.HostsPerSwitch,
		InterSwitch:    j.Links,
		Seed:           j.TopoSeed,
	})
}

// JobSchemaVersion is the current canonical-input schema. Bump it when
// a change makes old cached results non-reproducible (engine semantics,
// default config values, RNG streams).
const JobSchemaVersion = 1

// ExecSpec carries the execution hints of a job: knobs that select how
// the run executes but provably cannot change what it computes. They
// are excluded from the canonical input hash (see the package comment)
// and validated against the FeatureSet table by the campaign layer.
type ExecSpec struct {
	Engine    string `json:"engine,omitempty"`    // "", "seq" or "shard"
	Shards    int    `json:"shards,omitempty"`    // shard count for Engine "shard"
	Partition string `json:"partition,omitempty"` // "", "bfs" or "roundrobin"
	Sched     string `json:"sched,omitempty"`     // "", "calendar" or "heap"
	Check     bool   `json:"check,omitempty"`     // heavy invariant scans
	Unfused   bool   `json:"unfused,omitempty"`   // disable hop fusion
	Arb       string `json:"arb,omitempty"`       // "", "wake" or "scan" arbiter
}

// JobSpec describes one run completely. The zero value is invalid;
// fill every field (Normalize supplies the documented defaults) and
// call Validate before Execute.
type JobSpec struct {
	Schema int `json:"schema"`

	// Topology: a connected random irregular network (the paper's
	// evaluation shape), named by its generation parameters.
	Switches       int    `json:"switches"`
	HostsPerSwitch int    `json:"hostsPerSwitch"` // 0 = 4 (the paper's value)
	Links          int    `json:"links"`          // inter-switch links per switch
	TopoSeed       uint64 `json:"topoSeed"`

	// Routing: MR options per destination; Enhanced selects the
	// paper's adaptive switches vs the stock deterministic subnet.
	MR       int  `json:"mr"`
	Enhanced bool `json:"enhanced"`

	// Workload.
	Pattern          PatternSpec `json:"pattern"`
	PacketSize       int         `json:"packetSize"`
	AdaptiveFraction float64     `json:"adaptiveFraction"`
	Load             float64     `json:"load"` // bytes/ns/host
	Seed             uint64      `json:"seed"`

	// Measurement window, simulated nanoseconds.
	WarmupNs     int64 `json:"warmupNs"`
	MeasureNs    int64 `json:"measureNs"`
	DrainGraceNs int64 `json:"drainGraceNs"`

	// LagNs opts sharded execution into the relaxed-exactness mode;
	// it changes results and is therefore hashed (rule 3).
	LagNs int64 `json:"lagNs"`

	// Faults is a compact fault-campaign spec string (faults.Parse
	// grammar; "" = fault-free). File references are deliberately not
	// allowed here: a job must be self-contained to hash soundly.
	Faults    string `json:"faults"`
	FaultSeed uint64 `json:"faultSeed"`

	// Exec is excluded from the canonical hash (rule 2).
	Exec ExecSpec `json:"exec"`
}

// canonicalInput is the exact structure hashed into a job's content
// address — JobSpec minus ExecSpec, every field explicit. Field order
// is normative; encoding/json preserves declaration order.
type canonicalInput struct {
	Schema           int     `json:"schema"`
	Switches         int     `json:"switches"`
	HostsPerSwitch   int     `json:"hostsPerSwitch"`
	Links            int     `json:"links"`
	TopoSeed         uint64  `json:"topoSeed"`
	MR               int     `json:"mr"`
	Enhanced         bool    `json:"enhanced"`
	PatternKind      string  `json:"pattern"`
	PatternFraction  float64 `json:"patternFraction"`
	PacketSize       int     `json:"packetSize"`
	AdaptiveFraction float64 `json:"adaptiveFraction"`
	Load             float64 `json:"load"`
	Seed             uint64  `json:"seed"`
	WarmupNs         int64   `json:"warmupNs"`
	MeasureNs        int64   `json:"measureNs"`
	DrainGraceNs     int64   `json:"drainGraceNs"`
	LagNs            int64   `json:"lagNs"`
	Faults           string  `json:"faults"`
	FaultSeed        uint64  `json:"faultSeed"`
}

// Normalize fills the documented defaults in place: the current schema
// version, the paper's 4 hosts per switch, uniform traffic. Hashing
// and execution both normalize first, so a spec written tersely and
// the same spec written explicitly share one content address.
func (j *JobSpec) Normalize() {
	if j.Schema == 0 {
		j.Schema = JobSchemaVersion
	}
	if j.HostsPerSwitch == 0 {
		j.HostsPerSwitch = 4
	}
	if j.Pattern.Kind == "" {
		j.Pattern.Kind = "uniform"
	}
}

// CanonicalInput returns the canonical byte encoding of the job's
// result-determining inputs — the preimage of Hash.
func (j JobSpec) CanonicalInput() []byte {
	j.Normalize()
	data, err := json.Marshal(canonicalInput{
		Schema:           j.Schema,
		Switches:         j.Switches,
		HostsPerSwitch:   j.HostsPerSwitch,
		Links:            j.Links,
		TopoSeed:         j.TopoSeed,
		MR:               j.MR,
		Enhanced:         j.Enhanced,
		PatternKind:      j.Pattern.Kind,
		PatternFraction:  j.Pattern.Fraction,
		PacketSize:       j.PacketSize,
		AdaptiveFraction: j.AdaptiveFraction,
		Load:             j.Load,
		Seed:             j.Seed,
		WarmupNs:         j.WarmupNs,
		MeasureNs:        j.MeasureNs,
		DrainGraceNs:     j.DrainGraceNs,
		LagNs:            j.LagNs,
		Faults:           j.Faults,
		FaultSeed:        j.FaultSeed,
	})
	if err != nil {
		// Only non-finite floats can fail here; Validate rejects them.
		panic(fmt.Sprintf("experiments: canonical encoding failed: %v", err))
	}
	return data
}

// Hash returns the job's content address: the lowercase hex sha256 of
// CanonicalInput.
func (j JobSpec) Hash() string {
	sum := sha256.Sum256(j.CanonicalInput())
	return hex.EncodeToString(sum[:])
}

// Validate checks the result-determining fields structurally. It does
// not consult the FeatureSet compatibility table (that would cycle the
// import graph); the campaign layer validates Exec against it before
// dispatch.
func (j JobSpec) Validate() error {
	k := j // normalized view
	k.Normalize()
	if k.Schema != JobSchemaVersion {
		return fmt.Errorf("experiments: job schema %d, this build speaks %d", k.Schema, JobSchemaVersion)
	}
	if k.Switches <= 0 || k.Links <= 0 || k.HostsPerSwitch <= 0 {
		return fmt.Errorf("experiments: job topology %d switches / %d links / %d hosts-per-switch must be positive",
			k.Switches, k.Links, k.HostsPerSwitch)
	}
	if k.MR < 1 {
		return fmt.Errorf("experiments: job MR %d must be >= 1", k.MR)
	}
	if k.PacketSize <= 0 {
		return fmt.Errorf("experiments: job packet size %d must be positive", k.PacketSize)
	}
	switch k.Pattern.Kind {
	case "uniform", "bit-reversal":
	case "hot-spot":
		if math.IsNaN(k.Pattern.Fraction) || k.Pattern.Fraction <= 0 || k.Pattern.Fraction > 1 {
			return fmt.Errorf("experiments: job hot-spot fraction %v out of (0,1]", k.Pattern.Fraction)
		}
	default:
		return fmt.Errorf("experiments: job pattern %q unknown", k.Pattern.Kind)
	}
	if math.IsNaN(k.AdaptiveFraction) || k.AdaptiveFraction < 0 || k.AdaptiveFraction > 1 {
		return fmt.Errorf("experiments: job adaptive fraction %v out of [0,1]", k.AdaptiveFraction)
	}
	if math.IsNaN(k.Load) || math.IsInf(k.Load, 0) || k.Load <= 0 {
		return fmt.Errorf("experiments: job load %v must be positive and finite", k.Load)
	}
	if k.MeasureNs <= 0 {
		return fmt.Errorf("experiments: job measurement window %dns must be positive", k.MeasureNs)
	}
	if k.WarmupNs < 0 || k.DrainGraceNs < 0 {
		return fmt.Errorf("experiments: job warmup %dns / drain grace %dns must be non-negative", k.WarmupNs, k.DrainGraceNs)
	}
	if k.LagNs < 0 {
		return fmt.Errorf("experiments: job lag %dns must be non-negative", k.LagNs)
	}
	if k.Faults != "" {
		if _, err := faults.Parse(k.Faults); err != nil {
			return fmt.Errorf("experiments: job fault spec: %w", err)
		}
	}
	return nil
}

// Execute runs the job and returns its result with execution artifacts
// (ShardStats) cleared, so the result serializes identically no matter
// which engine produced it — the property that makes the Exec-excluded
// content address sound.
func (j JobSpec) Execute() (RunResult, error) {
	j.Normalize()
	if err := j.Validate(); err != nil {
		return RunResult{}, err
	}
	topo, err := topoFor(j)
	if err != nil {
		return RunResult{}, err
	}
	pattern, err := j.Pattern.build(topo.NumHosts(), j.Seed)
	if err != nil {
		return RunResult{}, err
	}
	fcfg := fabric.DefaultConfig()
	fcfg.AdaptiveSwitches = j.Enhanced
	if j.Exec.Sched != "" {
		kind, err := sim.ParseScheduler(j.Exec.Sched)
		if err != nil {
			return RunResult{}, err
		}
		fcfg.EngineOpts = []sim.EngineOption{sim.WithScheduler(kind)}
	}
	if j.Exec.Engine == "shard" {
		fcfg.Shards = j.Exec.Shards
		if fcfg.Shards < 2 {
			fcfg.Shards = 2
		}
		fcfg.Partition = j.Exec.Partition
		fcfg.Lag = sim.Time(j.LagNs)
	}
	fcfg.Fuse = !j.Exec.Unfused
	fcfg.Arb = j.Exec.Arb
	spec := RunSpec{
		Topo:       topo,
		LMC:        lmcFor(j.MR),
		MR:         j.MR,
		Fabric:     fcfg,
		Traffic:    traffic.Config{Pattern: pattern, PacketSize: j.PacketSize, AdaptiveFraction: j.AdaptiveFraction, LoadBytesPerNsPerHost: j.Load, Seed: j.Seed},
		Warmup:     sim.Time(j.WarmupNs),
		Measure:    sim.Time(j.MeasureNs),
		DrainGrace: sim.Time(j.DrainGraceNs),
		Seed:       j.Seed,
		Check:      j.Exec.Check,
	}
	if j.Faults != "" {
		camp, err := faults.Parse(j.Faults)
		if err != nil {
			return RunResult{}, err
		}
		spec.Faults = camp
		spec.FaultSeed = j.FaultSeed
	}
	res, err := Run(spec)
	if err != nil {
		return RunResult{}, err
	}
	res.ShardStats = nil
	return res, nil
}

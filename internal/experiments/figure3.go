package experiments

import (
	"fmt"
	"io"

	"ibasim/internal/fabric"
	"ibasim/internal/traffic"
)

// Figure3Series is one latency-vs-traffic curve: a fixed percentage of
// adaptive traffic on one topology.
type Figure3Series struct {
	AdaptiveFraction float64
	Points           []SweepPoint
}

// Figure3Result reproduces one panel (one network size) of Figure 3.
type Figure3Result struct {
	Switches int
	// Family names the structured topology family of a Figure3Family
	// panel ("fattree:2,3", "torus:4x4"); empty for the paper's
	// irregular panels, whose output stays byte-identical.
	Family string
	Series []Figure3Series
}

// Figure3Fractions are the paper's adaptive-traffic percentages.
var Figure3Fractions = []float64{0, 0.25, 0.50, 0.75, 1.00}

// Figure3 reproduces Figure 3 for one network size: average packet
// latency versus accepted traffic while the share of adaptive traffic
// sweeps 0%..100%, on a representative topology (the scale's first
// seed), forwarding tables with two routing options, 4 inter-switch
// links, uniform traffic, 32-byte packets.
func Figure3(sc Scale, switches int) (*Figure3Result, error) {
	topos, err := sc.topoSet(switches, 4)
	if err != nil {
		return nil, err
	}
	topo := topos[0]
	loads := DefaultLoads(sc.LoadLo, sc.LoadHi, sc.LoadPoints)
	res := &Figure3Result{Switches: switches}
	// One packet arena for the whole panel: each fraction's sweep
	// reuses the previous one's packet blocks (see LoadSweep).
	pktArena := fabric.NewPacketArena()
	for _, frac := range Figure3Fractions {
		pattern := traffic.Uniform{NumHosts: topo.NumHosts()}
		// Switches stay enhanced throughout; the share of packets
		// requesting adaptive service is what varies (§4.2: the
		// source enables adaptivity per packet).
		spec := sc.Spec(topo, 2, 32, frac, pattern, sc.FirstSeed, true)
		spec.Fabric.PacketArena = pktArena
		points, err := LoadSweep(spec, loads)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, Figure3Series{AdaptiveFraction: frac, Points: points})
	}
	return res, nil
}

// Write prints the panel in a gnuplot-friendly layout, one block per
// adaptive fraction with the paper's axes (accepted bytes/ns/switch,
// latency ns).
func (r *Figure3Result) Write(w io.Writer) error {
	header := fmt.Sprintf("# Figure 3: %d switches, uniform, 32B, 2 routing options\n", r.Switches)
	if r.Family != "" {
		header = fmt.Sprintf("# Figure 3 (%s): %d switches, uniform, 32B, 2 routing options\n", r.Family, r.Switches)
	}
	if _, err := io.WriteString(w, header); err != nil {
		return err
	}
	for _, s := range r.Series {
		if _, err := fmt.Fprintf(w, "\n# adaptive traffic: %.0f%%\n# offered\taccepted\tavg-latency-ns\n", s.AdaptiveFraction*100); err != nil {
			return err
		}
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s\t%s\t%.0f\n", fmtFloat(p.Offered), fmtFloat(p.Accepted), p.AvgLatency); err != nil {
				return err
			}
		}
	}
	// The paper's headline per-panel number: throughput gain of 100%
	// adaptive over 0%.
	det := Throughput(r.Series[0].Points)
	ada := Throughput(r.Series[len(r.Series)-1].Points)
	factor := 0.0
	if det > 0 {
		factor = ada / det
	}
	_, err := fmt.Fprintf(w, "\n# throughput: deterministic=%s adaptive=%s factor=%.2f\n",
		fmtFloat(det), fmtFloat(ada), factor)
	return err
}

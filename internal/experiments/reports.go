package experiments

import (
	"fmt"
	"io"

	"ibasim/internal/fabric"
	"ibasim/internal/traffic"
)

// ShardImbalanceReport runs one representative saturated simulation —
// the Figure 3 setup (uniform traffic, 32-byte packets, MR 2, 100%
// adaptive) at the scale's highest load on its first topology — under
// the scale's shard settings and returns the per-shard execution
// counters. It is the diagnostic behind ibbench -v: when a sharded
// sweep scales poorly, this shows whether the partitioner starved a
// shard (Events skew), the conservative windows were too tight
// (Stalled, Held), or cross-shard traffic dominated (MailsOut/In).
func ShardImbalanceReport(sc Scale, switches int) ([]fabric.ShardStat, error) {
	if sc.Shards <= 1 {
		return nil, fmt.Errorf("experiments: shard imbalance report needs Shards > 1 (have %d)", sc.Shards)
	}
	topos, err := sc.topoSet(switches, 4)
	if err != nil {
		return nil, err
	}
	topo := topos[0]
	spec := sc.Spec(topo, 2, 32, 1.0, traffic.Uniform{NumHosts: topo.NumHosts()}, sc.FirstSeed, true)
	spec.Traffic.LoadBytesPerNsPerHost = sc.LoadHi
	res, err := Run(spec)
	if err != nil {
		return nil, err
	}
	return res.ShardStats, nil
}

// WriteShardStats prints a per-shard imbalance table in the repo's
// tab-separated, #-commented format, followed by the two summary
// ratios that matter for scaling: event imbalance (max/mean events —
// 1.00 is a perfect partition; the slowest shard gates every window)
// and the stall fraction (share of activated windows a shard hit its
// conservative bound with work still pending).
func WriteShardStats(w io.Writer, stats []fabric.ShardStat) error {
	if len(stats) == 0 {
		_, err := fmt.Fprintln(w, "# shard stats: sequential run (no shards)")
		return err
	}
	if _, err := fmt.Fprintln(w, "# shard\tswitches\thosts\tevents\twindows\tstalled\theld\tmails-out\tmails-in"); err != nil {
		return err
	}
	var totalEvents, maxEvents, totalWindows, totalStalled uint64
	for _, s := range stats {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			s.Shard, s.Switches, s.Hosts, s.Events, s.Windows, s.Stalled, s.Held, s.MailsOut, s.MailsIn); err != nil {
			return err
		}
		totalEvents += s.Events
		if s.Events > maxEvents {
			maxEvents = s.Events
		}
		totalWindows += s.Windows
		totalStalled += s.Stalled
	}
	mean := float64(totalEvents) / float64(len(stats))
	imbalance := 0.0
	if mean > 0 {
		imbalance = float64(maxEvents) / mean
	}
	stallFrac := 0.0
	if totalWindows > 0 {
		stallFrac = float64(totalStalled) / float64(totalWindows)
	}
	_, err := fmt.Fprintf(w, "# event imbalance (max/mean): %.2f, stalled windows: %.1f%%\n",
		imbalance, stallFrac*100)
	return err
}

package experiments

import (
	"reflect"
	"testing"

	"ibasim/internal/fabric"
	"ibasim/internal/faults"
	"ibasim/internal/sim"
	"ibasim/internal/trace"
	"ibasim/internal/traffic"
)

// The wake-list arbiter makes the same claim hop fusion and the shard
// engine make: it optimizes how arbitration work is found, not what
// arbitration decides. These tests enforce it with the scanning
// arbiter (-arb=scan) as the differential oracle, comparing complete
// RunResults — floats included — across queue geometries, schedulers,
// shard counts, fused and unfused engines, the invariant auditor,
// fault campaigns and a hot-spot contention storm that keeps most
// service points parked on the wait lists.

func arbVariant(t *testing.T, spec RunSpec, arb string, shards int, unfused bool) RunResult {
	t.Helper()
	s := spec
	s.Fabric.Arb = arb
	s.Fabric.Fuse = !unfused
	if shards > 0 {
		s.Fabric.Shards = shards
		s.Fabric.Partition = fabric.PartitionBFS
	}
	res, err := Run(s)
	if err != nil {
		t.Fatalf("arb=%s shards=%d unfused=%v: %v", arb, shards, unfused, err)
	}
	// ShardStats is an execution artifact, not a simulation observable;
	// the differential compares results with it cleared.
	res.ShardStats = nil
	return res
}

// TestArbBitExact sweeps the calendar geometries of the scheduler
// differential (tiny wheels wrap and overflow constantly, so kicks and
// credit returns land in every structural regime) plus the heap
// scheduler, comparing wake-arbiter runs — sequential, sharded, fused
// and unfused — against the scan-arbiter sequential oracle.
func TestArbBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many full simulations")
	}
	topo := shardDiffTopo(t)
	variants := []struct {
		name string
		opts []sim.EngineOption
	}{
		{"wheel-3-0", []sim.EngineOption{sim.WithWheelGeometry(3, 0)}},
		{"wheel-3-2", []sim.EngineOption{sim.WithWheelGeometry(3, 2)}},
		{"wheel-4-1", []sim.EngineOption{sim.WithWheelGeometry(4, 1)}},
		{"wheel-6-3", []sim.EngineOption{sim.WithWheelGeometry(6, 3)}},
		{"wheel-12-2", []sim.EngineOption{sim.WithWheelGeometry(12, 2)}},
		{"heap", []sim.EngineOption{sim.WithScheduler(sim.SchedulerHeap)}},
	}
	for _, v := range variants {
		spec := shardDiffSpec(topo, v.opts...)
		want := arbVariant(t, spec, fabric.ArbScan, 0, false)
		if got := arbVariant(t, spec, fabric.ArbWake, 0, false); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: wake sequential diverged from scan:\n got %+v\nwant %+v", v.name, got, want)
		}
		if got := arbVariant(t, spec, fabric.ArbWake, 0, true); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: wake unfused diverged from scan:\n got %+v\nwant %+v", v.name, got, want)
		}
		for _, shards := range []int{1, 2, 4} {
			if got := arbVariant(t, spec, fabric.ArbWake, shards, false); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: wake shards=%d diverged from scan:\n got %+v\nwant %+v", v.name, shards, got, want)
			}
		}
	}
}

// TestArbBitExactChecked repeats the differential with the heavy
// invariant auditor on: the wake arbiter must neither perturb results
// under audit nor trip the auditor, and the audit counters themselves
// must match event for event.
func TestArbBitExactChecked(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	spec := shardDiffSpec(shardDiffTopo(t))
	spec.Check = true
	want := arbVariant(t, spec, fabric.ArbScan, 0, false)
	if want.Audit.HopChecks == 0 || want.Audit.HeavyTicks == 0 {
		t.Fatalf("auditor did not run: %+v", want.Audit)
	}
	if want.Audit.Violations != 0 {
		t.Fatalf("scan oracle run is not clean: %+v", want.Audit)
	}
	for _, shards := range []int{0, 2} {
		if got := arbVariant(t, spec, fabric.ArbWake, shards, false); !reflect.DeepEqual(got, want) {
			t.Errorf("checked wake shards=%d diverged:\n got %+v\nwant %+v", shards, got, want)
		}
	}
}

// TestArbBitExactFaults runs the shard differential's fault campaign
// under both arbiters: dead ports leave stale link-waiter entries,
// repairs wake wholesale, and Reroute rewrites the escape VL cache —
// every degraded-mode observable must still match.
func TestArbBitExactFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full fault campaigns")
	}
	topo := shardDiffTopo(t)
	l0, l1 := topo.Links[0], topo.Links[1]
	camp := &faults.Campaign{
		Events: []faults.Event{
			{At: 40_000, Kind: faults.LinkDown, A: l0.A, B: l0.B},
			{At: 70_000, Kind: faults.LinkUp, A: l0.A, B: l0.B},
			{At: 80_000, Kind: faults.LinkDown, A: l1.A, B: l1.B},
			{At: 130_000, Kind: faults.LinkUp, A: l1.A, B: l1.B},
		},
		AutoReconfig: 5_000,
		Watchdog:     faults.WatchdogConfig{SampleEvery: 5_000, Horizon: 120_000},
	}
	spec := shardDiffSpec(topo)
	spec.Measure = 150_000
	spec.DrainGrace = 80_000
	spec.Faults = camp
	spec.FaultSeed = 3
	want := arbVariant(t, spec, fabric.ArbScan, 0, false)
	if want.Degraded.FaultsInjected == 0 || want.Degraded.Reconfigs == 0 {
		t.Fatalf("campaign did not exercise faults: %+v", want.Degraded)
	}
	for _, shards := range []int{0, 2} {
		if got := arbVariant(t, spec, fabric.ArbWake, shards, false); !reflect.DeepEqual(got, want) {
			t.Errorf("faults wake shards=%d diverged:\n got %+v\nwant %+v", shards, got, want)
		}
	}
}

// TestArbBitExactContentionStorm overloads a hot-spot destination far
// past saturation — the regime where nearly every service point is
// parked on a credit or link wait list most of the time, and a single
// missed or spurious wake would shift the delivery order.
func TestArbBitExactContentionStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("runs saturated simulations")
	}
	topo := shardDiffTopo(t)
	hot, err := traffic.NewHotSpot(topo.NumHosts(), 0.4, sim.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	spec := shardDiffSpec(topo)
	spec.Traffic.Pattern = hot
	spec.Traffic.LoadBytesPerNsPerHost = 0.25 // deep saturation
	want := arbVariant(t, spec, fabric.ArbScan, 0, false)
	got := arbVariant(t, spec, fabric.ArbWake, 0, false)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("contention storm wake diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestArbTraceIdentical pins the strongest equivalence: the recorded
// per-hop event sequence — every receive, adaptive/escape selection
// and delivery, in order — is identical under both arbiters. Unlike
// fusion, attaching the tracer does NOT force the scan arbiter: the
// wake arbiter serves the same entries at the same times, so traced
// runs keep the fast path.
func TestArbTraceIdentical(t *testing.T) {
	spec := shardDiffSpec(shardDiffTopo(t))
	runTraced := func(arb string) (*trace.Recorder, bool) {
		s := spec
		s.Fabric.Arb = arb
		rec := trace.NewRecorder(4096)
		var netRef *fabric.Network
		_, err := RunObserved(s, func(n *fabric.Network) {
			rec.Attach(n)
			netRef = n
		})
		if err != nil {
			t.Fatalf("arb=%s: %v", arb, err)
		}
		return rec, netRef.ArbWake()
	}
	recWake, wakeArmed := runTraced(fabric.ArbWake)
	recScan, scanArmed := runTraced(fabric.ArbScan)
	if !wakeArmed {
		t.Error("tracer attachment disarmed the wake arbiter; tracing composes with wake mode")
	}
	if scanArmed {
		t.Error("scan-arbiter traced run reports wake mode")
	}
	if recWake.Total() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	if recWake.Total() != recScan.Total() {
		t.Errorf("event totals differ: wake=%d scan=%d", recWake.Total(), recScan.Total())
	}
	wake, scan := recWake.Events(), recScan.Events()
	if !reflect.DeepEqual(wake, scan) {
		for i := range wake {
			if i >= len(scan) || wake[i] != scan[i] {
				t.Fatalf("traced sequences diverge at event %d:\n wake %s\n scan %s", i, wake[i], scan[i])
			}
		}
		t.Fatalf("traced sequences differ in length: %d vs %d", len(wake), len(scan))
	}
}

// TestArbWakeEngagesInRealRuns complements the differentials: a plain
// default-config run must actually run the wake arbiter and park
// service points — otherwise every equivalence above is vacuous.
func TestArbWakeEngagesInRealRuns(t *testing.T) {
	spec := shardDiffSpec(shardDiffTopo(t))
	var netRef *fabric.Network
	if _, err := RunObserved(spec, func(n *fabric.Network) { netRef = n }); err != nil {
		t.Fatal(err)
	}
	if !netRef.ArbWake() {
		t.Error("default run does not use the wake arbiter")
	}
	if netRef.ArbParks() == 0 {
		t.Error("default run parked no service points")
	}
}

package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"ibasim/internal/fabric"
	"ibasim/internal/routing"
	"ibasim/internal/topology"
	"ibasim/internal/traffic"
)

// FamilySpec selects a topology family plus its shape, the value behind
// the CLIs' -topo flag. The grammar:
//
//	irregular        the paper's random irregular networks (default;
//	                 shape comes from the usual switches/links/hosts knobs)
//	fattree:K,N      k-ary n-tree: N levels of K^(N-1) switches, K^N
//	                 hosts on the leaf row, D-mod-K escape routing
//	torus:AxB[xC]    2D/3D torus with wraparound, dimension-order escape
//	                 routing (hosts per switch from the hosts knob)
type FamilySpec struct {
	Kind    string // "irregular", "fattree" or "torus"
	FatTree topology.FatTreeSpec
	Torus   topology.TorusSpec // Dims only; HostsPerSwitch is filled at build time
}

// ParseFamily parses the -topo grammar. The empty string means
// irregular.
func ParseFamily(s string) (FamilySpec, error) {
	switch {
	case s == "" || s == "irregular":
		return FamilySpec{Kind: "irregular"}, nil
	case strings.HasPrefix(s, "fattree:"):
		parts := strings.Split(strings.TrimPrefix(s, "fattree:"), ",")
		if len(parts) != 2 {
			return FamilySpec{}, fmt.Errorf("experiments: bad fat-tree shape %q (want fattree:K,N)", s)
		}
		k, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		n, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil {
			return FamilySpec{}, fmt.Errorf("experiments: bad fat-tree shape %q (want fattree:K,N)", s)
		}
		spec := topology.FatTreeSpec{Arity: k, Levels: n}
		if err := spec.Validate(); err != nil {
			return FamilySpec{}, err
		}
		return FamilySpec{Kind: "fattree", FatTree: spec}, nil
	case strings.HasPrefix(s, "torus:"):
		parts := strings.Split(strings.TrimPrefix(s, "torus:"), "x")
		dims := make([]int, 0, len(parts))
		for _, p := range parts {
			d, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return FamilySpec{}, fmt.Errorf("experiments: bad torus shape %q (want torus:AxB[xC])", s)
			}
			dims = append(dims, d)
		}
		spec := topology.TorusSpec{Dims: dims, HostsPerSwitch: 1}
		if err := spec.Validate(); err != nil {
			return FamilySpec{}, err
		}
		spec.HostsPerSwitch = 0 // filled from the hosts knob at build time
		return FamilySpec{Kind: "torus", Torus: spec}, nil
	default:
		return FamilySpec{}, fmt.Errorf("experiments: unknown topology family %q (want irregular, fattree:K,N or torus:AxB[xC])", s)
	}
}

// Irregular reports whether the spec selects the irregular family.
func (f FamilySpec) Irregular() bool { return f.Kind == "" || f.Kind == "irregular" }

// String renders the spec back in the -topo grammar.
func (f FamilySpec) String() string {
	switch f.Kind {
	case "fattree":
		return f.FatTree.String()
	case "torus":
		return f.Torus.String()
	default:
		return "irregular"
	}
}

// Topology generates the pristine fabric. The irregular spec supplies
// the irregular family's shape; structured families only borrow its
// HostsPerSwitch (the torus attachment; fat-trees fix their own).
func (f FamilySpec) Topology(irr topology.IrregularSpec) (*topology.Topology, error) {
	switch f.Kind {
	case "", "irregular":
		return topology.GenerateIrregular(irr)
	case "fattree":
		return topology.GenerateFatTree(f.FatTree)
	case "torus":
		spec := f.Torus
		spec.HostsPerSwitch = irr.HostsPerSwitch
		if spec.HostsPerSwitch <= 0 {
			spec.HostsPerSwitch = 1
		}
		return topology.GenerateTorus(spec)
	default:
		return nil, fmt.Errorf("experiments: unknown topology family %q", f.Kind)
	}
}

// Routing returns the family's routing.Builder — nil for irregular,
// which keeps the subnet manager on its up*/down* default (and every
// existing result bit-identical). The torus builder resolves host
// attachment from the topology it configures, so the spec's
// HostsPerSwitch needs no plumbing here.
func (f FamilySpec) Routing() routing.Builder {
	switch f.Kind {
	case "fattree":
		return routing.FatTreeBuilder(f.FatTree)
	case "torus":
		return routing.TorusBuilder(f.Torus)
	default:
		return nil
	}
}

// Figure3Family runs the Figure-3 protocol — latency versus accepted
// traffic while the adaptive-traffic share sweeps 0%..100% — on one
// structured-family topology with its native escape routing. The
// irregular family keeps its dedicated harness (Figure3); asking for it
// here is an error, not a silent fallback, so goldens never cross
// families by accident.
func Figure3Family(sc Scale, fam FamilySpec) (*Figure3Result, error) {
	if fam.Irregular() {
		return nil, fmt.Errorf("experiments: Figure3Family needs a structured family; use Figure3 for irregular")
	}
	topo, err := fam.Topology(topology.IrregularSpec{HostsPerSwitch: sc.HostsPerSw})
	if err != nil {
		return nil, err
	}
	loads := DefaultLoads(sc.LoadLo, sc.LoadHi, sc.LoadPoints)
	res := &Figure3Result{Switches: topo.NumSwitches, Family: fam.String()}
	pktArena := fabric.NewPacketArena()
	for _, frac := range Figure3Fractions {
		pattern := traffic.Uniform{NumHosts: topo.NumHosts()}
		spec := sc.Spec(topo, 2, 32, frac, pattern, sc.FirstSeed, true)
		spec.Routing = fam.Routing()
		spec.Fabric.PacketArena = pktArena
		points, err := LoadSweep(spec, loads)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, Figure3Series{AdaptiveFraction: frac, Points: points})
	}
	return res, nil
}

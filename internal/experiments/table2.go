package experiments

import (
	"fmt"
	"io"

	"ibasim/internal/routing"
	"ibasim/internal/topology"
)

// Table2Row gives, for one (network size, connectivity, MR), the
// average percentage of (switch, destination-switch) pairs that have
// exactly k routing options, k = 1..MR — the paper's Table 2. No
// simulation is involved: the census is a property of the topology
// and the FA routing function.
type Table2Row struct {
	Switches int
	Links    int
	MR       int
	// Percent[k] is the share (0..100) of pairs with exactly k
	// options; Percent[0] is unused.
	Percent []float64
}

// Table2 computes the census for every size in the scale at the given
// connectivity, averaged over the scale's topology seed set, for
// MR = 2..maxMR.
func Table2(sc Scale, links, maxMR int) ([]Table2Row, error) {
	var rows []Table2Row
	for _, size := range sc.Sizes {
		topos, err := sc.topoSet(size, links)
		if err != nil {
			return nil, err
		}
		for mr := 2; mr <= maxMR; mr++ {
			row := Table2Row{Switches: size, Links: links, MR: mr, Percent: make([]float64, mr+1)}
			total := 0
			for _, topo := range topos {
				hist, err := optionsHistogram(topo, mr)
				if err != nil {
					return nil, err
				}
				for k := 1; k <= mr; k++ {
					row.Percent[k] += float64(hist[k])
				}
				for _, c := range hist {
					total += c
				}
			}
			for k := 1; k <= mr; k++ {
				row.Percent[k] *= 100 / float64(total)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func optionsHistogram(topo *topology.Topology, mr int) ([]int, error) {
	ud, err := routing.NewUpDown(topo)
	if err != nil {
		return nil, err
	}
	fa := routing.NewFA(ud.Tables())
	return fa.OptionsHistogram(mr), nil
}

// WriteTable2 prints the census in the paper's layout.
func WriteTable2(w io.Writer, rows []Table2Row) error {
	if _, err := fmt.Fprintf(w, "# Table 2: %% of (switch,destination) pairs with k routing options\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-4s %-6s %-3s  %s\n", "sw", "links", "MR", "k=1 .. k=MR"); err != nil {
		return err
	}
	for _, r := range rows {
		line := fmt.Sprintf("%-4d %-6d %-3d ", r.Switches, r.Links, r.MR)
		for k := 1; k <= r.MR; k++ {
			line += fmt.Sprintf(" %6.2f", r.Percent[k])
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

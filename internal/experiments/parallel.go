package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runParallel executes n independent jobs on a bounded worker pool and
// returns their results in job order. Each simulation owns its engine
// and RNG streams, so concurrent runs stay bit-identical to sequential
// ones; only wall-clock time changes.
//
// A job failure aborts the run early: jobs not yet handed to a worker
// are skipped (a fault-campaign sweep whose first point trips the
// watchdog should not grind through the remaining points first). Jobs
// already running finish, and the error returned is the
// lowest-indexed one recorded — the same error a sequential loop
// would have surfaced, regardless of which job failed first on the
// wall clock.
func runParallel[T any](n int, job func(i int) (T, error)) ([]T, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		out := make([]T, n)
		for i := 0; i < n; i++ {
			v, err := job(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	out := make([]T, n)
	errs := make([]error, n)
	next := make(chan int)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = job(i)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if failed.Load() {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

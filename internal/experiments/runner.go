// Package experiments regenerates the paper's evaluation artifacts:
// the latency/accepted-traffic curves of Figure 3, the
// throughput-increase factors of Table 1, and the routing-option
// census of Table 2. Each harness prints the same rows/series the
// paper reports; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"math"

	"ibasim/internal/check"
	"ibasim/internal/fabric"
	"ibasim/internal/faults"
	"ibasim/internal/ib"
	"ibasim/internal/metrics"
	"ibasim/internal/reorder"
	"ibasim/internal/routing"
	"ibasim/internal/sim"
	"ibasim/internal/subnet"
	"ibasim/internal/topology"
	"ibasim/internal/traffic"
)

// RunSpec describes one simulation run.
type RunSpec struct {
	Topo *topology.Topology

	// LMC and MR configure the addressing plan and table contents.
	LMC uint
	MR  int

	// SourceMultipath switches the run to the source-selected
	// multipath baseline with this many alternative deterministic
	// paths (plain switches; Fabric.SourceMultipath must match).
	SourceMultipath int

	// Routing selects the routing-engine family the subnet manager
	// builds tables from (fat-tree D-mod-K, torus dimension-order).
	// nil keeps the up*/down* default — the paper's configuration.
	Routing routing.Builder

	Fabric  fabric.Config
	Traffic traffic.Config

	// Warmup and Measure bound the measurement window
	// [Warmup, Warmup+Measure); generation stops at the window's end
	// and the run drains for DrainGrace to complete in-flight
	// measured packets.
	Warmup     sim.Time
	Measure    sim.Time
	DrainGrace sim.Time

	Seed uint64

	// Faults, when non-nil, injects the campaign's failures on the sim
	// clock and starts the invariant watchdog; FaultSeed drives the
	// campaign's randomized elements (flap placement). A campaign also
	// enables the host retry/timeout policy (fabric.DefaultRetry) if
	// the Fabric config left it zero.
	Faults    *faults.Campaign
	FaultSeed uint64

	// Check enables the invariant auditor's heavy periodic scans
	// (whole-fabric credit audit, live-table escape-CDG acyclicity) in
	// addition to the always-on cheap checks. The scans only read
	// state, so results — including the Figure 3 golden hash — are
	// bit-identical with or without it, on both engines.
	Check bool
}

// RunResult is the paper's pair of observables plus bookkeeping.
type RunResult struct {
	OfferedPerSwitch  float64
	AcceptedPerSwitch float64
	AvgLatencyNs      float64
	P99LatencyNs      float64
	PacketsMeasured   uint64

	// OutOfOrderFraction is the share of deliveries overtaken by a
	// later packet of their flow — the in-order cost of adaptivity.
	OutOfOrderFraction float64
	// ReorderPeakHeld and ReorderAvgDelayNs report what a
	// destination-side reorder buffer (§1's sketch) would need to
	// restore order: its peak occupancy and mean added delay.
	ReorderPeakHeld   int
	ReorderAvgDelayNs float64

	// Retry reports the host retry machinery's work on this run,
	// populated whenever a retry policy was configured — fault campaign
	// or not — so orchestration layers can surface flaky-run
	// diagnostics (a run that needed many re-injections, or whose worst
	// packet brushed the retry budget) without parsing DegradedStats.
	// All zero when Fabric.Retry is disabled. Engine-invariant: the
	// sharded engine reproduces these counters bit-exactly.
	Retry RetryStats

	// Degraded-mode observables; all zero unless RunSpec.Faults ran a
	// campaign.
	Degraded DegradedStats

	// Audit summarizes the invariant auditor's pass over the run.
	Audit AuditStats

	// ShardStats is the per-shard imbalance report of a sharded run
	// (nil on the sequential engine): events dispatched, windows run
	// and stalled, mail volume. An execution artifact, not a simulation
	// observable — the same physical result reached at a different
	// shard count reports different stats, so the bit-exactness
	// differentials compare results with this field cleared and the
	// artifact writer never serializes it.
	ShardStats []fabric.ShardStat
}

// AuditStats condenses the auditor's report for result plumbing. The
// counters are engine-invariant: hop checks count forwarding
// decisions, which the sharded engine reproduces bit-exactly.
type AuditStats struct {
	HopChecks  uint64
	HeavyTicks uint64 // 0 unless RunSpec.Check
	Violations int
	// First is the first violation's message ("" when clean).
	First string
}

// RetryStats condenses the fabric's retry counters for result
// plumbing. BackoffCapNs is the effective ceiling the exponential
// backoff saturated at (RetryConfig.BackoffMax, or
// fabric.DefaultBackoffCap when unset).
type RetryStats struct {
	Retries        uint64
	Lost           uint64
	DroppedTimeout uint64
	// MaxAttempts is the worst single packet's re-injection count;
	// compare against the policy's MaxRetries budget.
	MaxAttempts  int
	BackoffCapNs int64
}

// DegradedStats reports how a run behaved under a fault campaign.
type DegradedStats struct {
	// Fault-event bookkeeping: failures executed, repairs executed,
	// staged reconfigurations completed.
	FaultsInjected int
	Repairs        int
	Reconfigs      int

	// Drop/retry accounting from the fabric.
	DroppedUnroutable uint64
	DroppedOnDeadPort uint64
	DroppedTimeout    uint64
	Retries           uint64
	Lost              uint64

	// RerouteDrops counts buffered packets staged recovery discarded
	// while reprogramming tables.
	RerouteDrops int

	// RecoveryLatencyNs is the time from the first injected fault to
	// the first delivery after the (last) staged reconfiguration
	// completed; -1 if never observed.
	RecoveryLatencyNs int64

	// Watchdog outcome: audit ticks run and invariant breaches seen.
	WatchdogSamples    uint64
	WatchdogViolations int
	// FirstViolation is the first breach's message ("" when clean).
	FirstViolation string
}

// Dropped sums the per-reason drop counters.
func (d DegradedStats) Dropped() uint64 {
	return d.DroppedUnroutable + d.DroppedOnDeadPort + d.DroppedTimeout
}

// Run executes one simulation.
func Run(spec RunSpec) (RunResult, error) { return RunObserved(spec, nil) }

// RunObserved executes one simulation, calling observe (if non-nil)
// with the wired network after the metrics collector attaches and
// before traffic starts — the hook tracers and custom probes use.
func RunObserved(spec RunSpec, observe func(*fabric.Network)) (RunResult, error) {
	plan, err := ib.NewAddressPlan(spec.Topo.NumHosts(), spec.LMC)
	if err != nil {
		return RunResult{}, err
	}
	fcfg := spec.Fabric
	if spec.Faults != nil && !fcfg.Retry.Enabled() {
		fcfg.Retry = fabric.DefaultRetry()
	}
	net, err := fabric.NewNetwork(spec.Topo, plan, fcfg, spec.Seed)
	if err != nil {
		return RunResult{}, err
	}
	ropts := subnet.Options{
		MaxRoutingOptions: spec.MR,
		Root:              -1,
		SourceMultipath:   spec.SourceMultipath,
		Engine:            spec.Routing,
	}
	if _, err := subnet.Configure(net, ropts); err != nil {
		return RunResult{}, err
	}
	col := &metrics.Collector{
		WarmupEnd:  spec.Warmup,
		MeasureEnd: spec.Warmup + spec.Measure,
		Reorder:    reorder.NewBufferForHosts(spec.Topo.NumHosts()),
	}
	col.Attach(net)
	if observe != nil {
		observe(net)
	}
	// The invariant auditor's cheap checks ride along on every run; it
	// chains last so collector and observe-installed tracers keep their
	// hooks. Heavy whole-fabric scans only with spec.Check.
	aud := check.Attach(net, check.Config{Heavy: spec.Check})
	var inj *faults.Injector
	var dog *faults.Watchdog
	if spec.Faults != nil {
		inj, err = faults.Apply(net, spec.Faults, spec.FaultSeed, ropts)
		if err != nil {
			return RunResult{}, err
		}
		dog = faults.NewWatchdog(net, spec.Faults.Watchdog)
		dog.Start()
	}
	gen, err := traffic.NewGenerator(net, spec.Traffic)
	if err != nil {
		return RunResult{}, err
	}
	end := spec.Warmup + spec.Measure
	if err := runEngine(net, gen, end, end+spec.DrainGrace); err != nil {
		return RunResult{}, err
	}
	col.Finalize()
	res := RunResult{
		OfferedPerSwitch:   spec.Traffic.OfferedPerSwitchAvg(float64(spec.Topo.NumHosts()) / float64(spec.Topo.NumSwitches)),
		AcceptedPerSwitch:  col.AcceptedPerSwitch(),
		AvgLatencyNs:       col.Latency.Avg(),
		P99LatencyNs:       float64(col.Hist.Quantile(0.99)),
		PacketsMeasured:    col.Latency.Count,
		OutOfOrderFraction: col.OutOfOrderFraction(),
		ReorderPeakHeld:    col.Reorder.PeakHeld,
		ReorderAvgDelayNs:  col.Reorder.AvgReorderDelay(),
	}
	if fcfg.Retry.Enabled() {
		fs := net.FaultTotals()
		res.Retry = RetryStats{
			Retries:        fs.Retries,
			Lost:           fs.Lost,
			DroppedTimeout: fs.DroppedTimeout,
			MaxAttempts:    fs.MaxAttempts,
			BackoffCapNs:   int64(fcfg.Retry.EffectiveBackoffCap()),
		}
	}
	if inj != nil {
		dog.Stop()
		inj.Finalize()
		fs := net.FaultTotals()
		res.Degraded = DegradedStats{
			FaultsInjected:    inj.FaultsInjected,
			Repairs:           inj.Repairs,
			Reconfigs:         inj.ReconfigsDone,
			DroppedUnroutable: fs.DroppedUnroutable,
			DroppedOnDeadPort: fs.DroppedOnDeadPort,
			DroppedTimeout:    fs.DroppedTimeout,
			Retries:           fs.Retries,
			Lost:              fs.Lost,
			RerouteDrops:      inj.RerouteDrops,
			RecoveryLatencyNs: int64(inj.RecoveryLatency),
			WatchdogSamples:   dog.Samples(),
		}
		if vs := dog.Violations(); len(vs) > 0 {
			res.Degraded.WatchdogViolations = len(vs)
			res.Degraded.FirstViolation = vs[0].Error()
		}
		if err := inj.Err(); err != nil {
			return res, err
		}
	}
	res.ShardStats = net.ShardStats()
	arep := aud.Finalize()
	res.Audit = AuditStats{
		HopChecks:  arep.HopChecks,
		HeavyTicks: arep.HeavyTicks,
		Violations: int(arep.ViolationCount),
	}
	if err := arep.Err(); err != nil {
		res.Audit.First = err.Error()
		return res, err
	}
	// Hand the drained queue storage back to the sweep's arena — every
	// engine's, shard queues included (no-op unless the spec carried
	// sim.WithArena).
	net.Recycle()
	return res, nil
}

// runEngine starts traffic and runs the engine to the horizon,
// converting a fatal watchdog Violation (panic) into a returned error
// so campaign runs fail loudly but cleanly.
func runEngine(net *fabric.Network, gen *traffic.Generator, genEnd, horizon sim.Time) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if v, ok := r.(faults.Violation); ok {
				err = v
				return
			}
			panic(r)
		}
	}()
	gen.Start(genEnd)
	net.Run(horizon)
	return nil
}

// SweepPoint is one load point of a latency/throughput curve.
type SweepPoint struct {
	Offered    float64 // bytes/ns/switch
	Accepted   float64 // bytes/ns/switch
	AvgLatency float64 // ns
}

// LoadSweep runs the spec at each per-host load and returns the
// curve. Load points are independent simulations, so they execute on
// a worker pool sized to GOMAXPROCS; results are identical to a
// sequential sweep.
func LoadSweep(spec RunSpec, loads []float64) ([]SweepPoint, error) {
	// Load points share a queue arena: each finished run's drained
	// event-queue storage seeds the next instead of regrowing from
	// zero. The arena is thread-safe, so the worker pool can pass
	// storage between points freely; results stay bit-identical (the
	// scheduler is unchanged, only its allocation source).
	arena := sim.NewQueueArena()
	// Packet slab blocks recycle the same way (the sweep's dominant
	// allocation); by the time Recycle runs every observer of the
	// finished point has drained, so no packet reference survives.
	// Multi-sweep experiments (Figure 3's per-fraction series) pass one
	// arena in via the spec so blocks carry across sweeps — points
	// within one sweep run concurrently and mostly miss each other.
	pktArena := spec.Fabric.PacketArena
	if pktArena == nil {
		pktArena = fabric.NewPacketArena()
	}
	return runParallel(len(loads), func(i int) (SweepPoint, error) {
		s := spec
		s.Traffic.LoadBytesPerNsPerHost = loads[i]
		s.Fabric.PacketArena = pktArena
		s.Fabric.EngineOpts = append(append([]sim.EngineOption{}, s.Fabric.EngineOpts...),
			sim.WithCapacityHint(256*s.Topo.NumSwitches), sim.WithArena(arena))
		res, err := Run(s)
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{
			Offered:    res.OfferedPerSwitch,
			Accepted:   res.AcceptedPerSwitch,
			AvgLatency: res.AvgLatencyNs,
		}, nil
	})
}

// Throughput extracts the network throughput from a sweep: the highest
// accepted traffic observed, the standard reading of the
// accepted-vs-offered plateau.
func Throughput(points []SweepPoint) float64 {
	best := 0.0
	for _, p := range points {
		if p.Accepted > best {
			best = p.Accepted
		}
	}
	return best
}

// DefaultLoads builds a geometric load grid (bytes/ns/host) from lo to
// hi with n points, covering the under- to over-saturation range.
func DefaultLoads(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	return out
}

// Scale selects how much work the experiment harnesses do. The paper's
// full protocol (10 topologies, long windows, 4 network sizes) takes
// hours; Quick keeps every qualitative comparison while fitting in CI.
type Scale struct {
	Sizes       []int // network sizes (switches)
	Topologies  int   // seeds per configuration
	LoadPoints  int
	Warmup      sim.Time
	Measure     sim.Time
	DrainGrace  sim.Time
	HostsPerSw  int
	FirstSeed   uint64
	LoadLo      float64 // per-host bytes/ns
	LoadHi      float64
	PacketSizes []int

	// EngineOpts flows into every run's fabric config — the harness
	// hook for scheduler selection (sim.WithScheduler) and geometry
	// overrides. Empty means the engine defaults (calendar queue).
	EngineOpts []sim.EngineOption

	// Shards > 1 runs every simulation on the conservative-parallel
	// sharded engine (bit-exact with the sequential default);
	// Partition selects the switch partitioner (fabric.PartitionBFS
	// when empty).
	Shards    int
	Partition string

	// Lag opts sharded runs into the relaxed-exactness mode: window
	// bounds widen by this many simulated nanoseconds and late imports
	// clamp to the local clock (fabric.Config.Lag). 0 keeps sharded
	// runs bit-identical to sequential.
	Lag sim.Time

	// Check enables the invariant auditor's heavy scans on every run
	// (the -check CLI flag); results stay bit-identical.
	Check bool

	// Unfused disables the hop-fusion fast path (the -fuse=false CLI
	// flag), keeping every coalesced pass as a scheduled delay-0 event.
	// Results stay bit-identical either way; the unfused engine is the
	// differential oracle the fusion conformance tests compare against.
	Unfused bool

	// Arb selects the crossbar arbiter (the -arb CLI flag):
	// fabric.ArbWake ("" defaults to it) or fabric.ArbScan, the
	// rescanning oracle the arbiter conformance tests compare against.
	// Results stay bit-identical either way.
	Arb string
}

// QuickScale is sized for smoke tests and benchmarks.
func QuickScale() Scale {
	return Scale{
		Sizes:       []int{8, 16},
		Topologies:  2,
		LoadPoints:  5,
		Warmup:      30_000,
		Measure:     150_000,
		DrainGrace:  30_000,
		HostsPerSw:  4,
		FirstSeed:   1,
		LoadLo:      0.004,
		LoadHi:      0.10,
		PacketSizes: []int{32},
	}
}

// FullScale approximates the paper's protocol.
func FullScale() Scale {
	return Scale{
		Sizes:       []int{8, 16, 32, 64},
		Topologies:  10,
		LoadPoints:  10,
		Warmup:      100_000,
		Measure:     500_000,
		DrainGrace:  100_000,
		HostsPerSw:  4,
		FirstSeed:   1,
		LoadLo:      0.002,
		LoadHi:      0.15,
		PacketSizes: []int{32, 256},
	}
}

// topoSet generates the scale's topology seed set for one size/degree.
func (sc Scale) topoSet(size, links int) ([]*topology.Topology, error) {
	return topology.GenerateSeedSet(topology.IrregularSpec{
		NumSwitches: size, HostsPerSwitch: sc.HostsPerSw, InterSwitch: links,
	}, sc.FirstSeed, sc.Topologies)
}

// lmcFor returns the smallest LMC whose block holds MR options.
func lmcFor(mr int) uint {
	lmc := uint(0)
	for 1<<lmc < mr {
		lmc++
	}
	if lmc == 0 {
		lmc = 1 // always leave room for the adaptive bit
	}
	return lmc
}

// Spec assembles a RunSpec from the scale and explicit knobs; the
// harnesses and the CLI build every run through it.
func (sc Scale) Spec(topo *topology.Topology, mr, pktSize int, adaptiveFrac float64, pattern traffic.Pattern, seed uint64, enhanced bool) RunSpec {
	fcfg := fabric.DefaultConfig()
	fcfg.AdaptiveSwitches = enhanced
	fcfg.EngineOpts = sc.EngineOpts
	fcfg.Shards = sc.Shards
	fcfg.Partition = sc.Partition
	fcfg.Lag = sc.Lag
	fcfg.Fuse = !sc.Unfused
	fcfg.Arb = sc.Arb
	return RunSpec{
		Topo:    topo,
		LMC:     lmcFor(mr),
		MR:      mr,
		Fabric:  fcfg,
		Traffic: traffic.Config{Pattern: pattern, PacketSize: pktSize, AdaptiveFraction: adaptiveFrac, LoadBytesPerNsPerHost: sc.LoadLo, Seed: seed},
		Warmup:  sc.Warmup, Measure: sc.Measure, DrainGrace: sc.DrainGrace,
		Seed:  seed,
		Check: sc.Check,
	}
}

// fmtFloat prints with the compact precision the report tables use.
func fmtFloat(v float64) string { return fmt.Sprintf("%.4f", v) }

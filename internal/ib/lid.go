package ib

import "fmt"

// LID is an InfiniBand local identifier: the subnet-unique address of
// a channel adapter port, assigned by the subnet manager. IBA encodes
// LIDs in 16 bits; LID 0 is reserved and 0xFFFF is the permissive LID.
type LID uint16

// MaxLMC is the largest LID Mask Control value the spec allows: a port
// may be assigned up to 2^7 = 128 consecutive LIDs (§4.1 of the paper
// notes this caps the routing options the mechanism can encode).
const MaxLMC = 7

// AddressPlan maps end-node ports (hosts) to LID ranges under a common
// LMC. Host h owns the 2^LMC consecutive LIDs starting at
// (h+1) << LMC; the +1 keeps LID 0 unused, and the shift aligns every
// range so the low LMC bits select the routing option — the alignment
// the paper's interleaved forwarding table relies on.
type AddressPlan struct {
	LMC      uint
	NumHosts int
}

// NewAddressPlan validates the shape and returns the plan. The
// 16-bit LID space bounds NumHosts << LMC.
func NewAddressPlan(numHosts int, lmc uint) (*AddressPlan, error) {
	if lmc > MaxLMC {
		return nil, fmt.Errorf("ib: LMC %d exceeds spec maximum %d", lmc, MaxLMC)
	}
	if numHosts <= 0 {
		return nil, fmt.Errorf("ib: address plan needs at least one host")
	}
	top := (uint64(numHosts) + 1) << lmc
	if top >= 0xFFFF {
		return nil, fmt.Errorf("ib: %d hosts with LMC %d overflow the 16-bit LID space", numHosts, lmc)
	}
	return &AddressPlan{LMC: lmc, NumHosts: numHosts}, nil
}

// RangeSize returns the number of LIDs each host owns (2^LMC).
func (p *AddressPlan) RangeSize() int { return 1 << p.LMC }

// BaseLID returns the first (deterministic-routing) LID of a host.
func (p *AddressPlan) BaseLID(host int) LID {
	return LID((host + 1) << p.LMC)
}

// AdaptiveLID returns the LID a source uses to request adaptive
// routing for the host (base + 1, §4.2: the least-significant DLID bit
// enables adaptivity). With LMC 0 there is no adaptive address and the
// base LID is returned.
func (p *AddressPlan) AdaptiveLID(host int) LID {
	if p.LMC == 0 {
		return p.BaseLID(host)
	}
	return p.BaseLID(host) + 1
}

// DLIDFor returns the DLID a source should put in the packet header
// for the destination host, selecting deterministic or adaptive
// service (§4.2).
func (p *AddressPlan) DLIDFor(host int, adaptive bool) LID {
	if adaptive {
		return p.AdaptiveLID(host)
	}
	return p.BaseLID(host)
}

// HostOf decodes which host owns a LID, applying the LMC mask exactly
// as a CA port does when validating that a packet DLID matches its
// assigned LID. The second result is false for LIDs outside every
// host's range (including LID 0).
func (p *AddressPlan) HostOf(lid LID) (int, bool) {
	if lid == 0 {
		return 0, false
	}
	host := int(lid>>p.LMC) - 1
	if host < 0 || host >= p.NumHosts {
		return 0, false
	}
	return host, true
}

// IsAdaptive reports whether a DLID requests adaptive routing: the
// least-significant masked bit is set (§4.2). With LMC 0 adaptivity
// cannot be encoded and the result is always false.
func (p *AddressPlan) IsAdaptive(lid LID) bool {
	if p.LMC == 0 {
		return false
	}
	return lid&1 == 1
}

// MaxLID returns the highest LID the plan assigns; forwarding tables
// must cover indices up to and including it.
func (p *AddressPlan) MaxLID() LID {
	return p.BaseLID(p.NumHosts-1) + LID(p.RangeSize()) - 1
}

package ib

import "fmt"

// VLArbEntry is one slot of an IBA VL arbitration table: the VL it
// names may send up to Weight × 64 bytes before the arbiter moves on.
type VLArbEntry struct {
	VL     int
	Weight int // 0..255, in units of 64 bytes; 0 skips the entry
}

// VLArbTable is the spec's two-priority weighted round-robin arbiter
// configuration for one output port: the high-priority table is
// consulted first (up to Limit high-priority units per low-priority
// opportunity), then the low-priority table. The paper's evaluation
// uses a single data VL, so its runs never exercise weighting, but the
// substrate is part of the IBA switch model and the multi-VL
// configurations use it.
type VLArbTable struct {
	High  []VLArbEntry
	Low   []VLArbEntry
	Limit int // high-priority limit (units of 64 bytes x 4..; spec: 0..255)

	hi, lo     int // rotating indices
	hiBudget   int // remaining weight units of the current high entry
	loBudget   int
	highSpent  int // units sent from High since the last Low grant
	numVLs     int
	everWeight bool
}

// NewVLArbTable builds a fair single-priority arbiter: every VL in the
// low-priority table with equal weight — the default behaviour an
// unconfigured subnet gets.
func NewVLArbTable(numVLs int) (*VLArbTable, error) {
	if numVLs < 1 || numVLs > MaxVLs {
		return nil, fmt.Errorf("ib: VLArb with %d VLs", numVLs)
	}
	t := &VLArbTable{Limit: 255, numVLs: numVLs}
	for vl := 0; vl < numVLs; vl++ {
		t.Low = append(t.Low, VLArbEntry{VL: vl, Weight: 16})
	}
	t.resetBudgets()
	return t, nil
}

// Configure replaces both tables. Entries naming VLs outside the
// port's range or zero-weight entries are rejected/skipped per spec.
func (t *VLArbTable) Configure(high, low []VLArbEntry, limit int) error {
	check := func(entries []VLArbEntry) error {
		for _, e := range entries {
			if e.VL < 0 || e.VL >= t.numVLs {
				return fmt.Errorf("ib: VLArb entry names VL %d of %d", e.VL, t.numVLs)
			}
			if e.Weight < 0 || e.Weight > 255 {
				return fmt.Errorf("ib: VLArb weight %d out of range", e.Weight)
			}
		}
		return nil
	}
	if err := check(high); err != nil {
		return err
	}
	if err := check(low); err != nil {
		return err
	}
	if limit < 0 || limit > 255 {
		return fmt.Errorf("ib: VLArb limit %d out of range", limit)
	}
	t.High, t.Low, t.Limit = high, low, limit
	t.hi, t.lo, t.highSpent = 0, 0, 0
	t.resetBudgets()
	return nil
}

func (t *VLArbTable) resetBudgets() {
	t.hiBudget = 0
	if len(t.High) > 0 {
		t.hiBudget = t.High[t.hi].Weight
	}
	t.loBudget = 0
	if len(t.Low) > 0 {
		t.loBudget = t.Low[t.lo].Weight
	}
}

// Next picks the VL that may transmit a packet of pktCredits units,
// given which VLs currently have a packet ready (ready[vl] == true).
// It returns -1 when no ready VL is eligible. The returned VL's
// budget is charged; weights realize bandwidth shares over time.
func (t *VLArbTable) Next(ready []bool, pktCredits int) int {
	if len(ready) < t.numVLs {
		return -1
	}
	// High-priority table first, unless its limit since the last
	// low-priority grant is exhausted.
	if len(t.High) > 0 && t.highSpent < t.Limit {
		if vl := t.scan(t.High, &t.hi, &t.hiBudget, ready, pktCredits); vl >= 0 {
			t.highSpent += pktCredits
			return vl
		}
	}
	if len(t.Low) > 0 {
		if vl := t.scan(t.Low, &t.lo, &t.loBudget, ready, pktCredits); vl >= 0 {
			t.highSpent = 0
			return vl
		}
	}
	return -1
}

// scan walks one table round-robin from the current index, charging
// the entry's weight budget; an exhausted or not-ready entry passes
// its turn. Per the spec's accounting, a packet may start whenever
// the current entry has any budget left — the charge saturates at
// zero, so large packets borrow against the next turn rather than
// starve. The bound is len+1 positions: the starting entry may be
// revisited once with a refreshed budget.
func (t *VLArbTable) scan(entries []VLArbEntry, idx, budget *int, ready []bool, pktCredits int) int {
	for tries := 0; tries <= len(entries); tries++ {
		e := entries[*idx]
		if e.Weight > 0 && ready[e.VL] && *budget > 0 {
			*budget -= pktCredits
			if *budget < 0 {
				*budget = 0
			}
			return e.VL
		}
		*idx = (*idx + 1) % len(entries)
		*budget = entries[*idx].Weight
	}
	return -1
}

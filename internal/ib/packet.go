package ib

import (
	"fmt"

	"ibasim/internal/sim"
)

// Packet is one IBA data packet traversing the simulated subnet. The
// simulator works at packet granularity (virtual cut-through forwards
// and buffers whole packets), so no flit structure is modelled.
type Packet struct {
	ID uint64 // globally unique, for tracing and loss accounting

	Src int // source host
	Dst int // destination host

	SLID LID // source port LID (base address of the source)
	DLID LID // destination LID; low bit encodes the adaptivity request
	SL   int // service level (selects the VL via the SLtoVL table)

	Size int // bytes on the wire

	// SeqNo numbers packets per (Src, Dst) flow in generation order;
	// deterministic packets must be delivered in SeqNo order.
	SeqNo uint64

	// Adaptive mirrors DLID's low bit for convenience; it is set by
	// the traffic generator and must agree with the address plan.
	Adaptive bool

	CreatedAt   sim.Time // when the generator produced it
	InjectedAt  sim.Time // when the source CA started transmitting it
	DeliveredAt sim.Time // when the tail reached the destination CA

	Hops int // switches traversed so far

	// Attempts counts fault-recovery retries: each time the fabric
	// drops the packet and the source re-injects it, Attempts grows by
	// one. Zero for packets that never met a fault.
	Attempts int

	// QueuedAt is when the packet last entered its source queue
	// (initial injection or a retry); the host's send timeout is
	// measured against it.
	QueuedAt sim.Time
}

// Credits returns the flow-control credits the packet consumes.
func (p *Packet) Credits() int { return Credits(p.Size) }

// Latency returns the end-to-end packet latency: generation at the
// source host to delivery at the destination end node, matching the
// paper's latency definition (footnote 4).
func (p *Packet) Latency() sim.Time { return p.DeliveredAt - p.CreatedAt }

// String identifies the packet for traces and test failures.
func (p *Packet) String() string {
	mode := "det"
	if p.Adaptive {
		mode = "adp"
	}
	return fmt.Sprintf("pkt#%d %d->%d %s %dB seq=%d", p.ID, p.Src, p.Dst, mode, p.Size, p.SeqNo)
}

// Package ib provides the InfiniBand Architecture (IBA) primitives the
// simulator is built from: local identifiers (LIDs) with LID Mask
// Control (LMC) ranges, packets, the spec's linear forwarding table,
// the SLtoVL table, credit arithmetic, and the link/switch timing
// parameters of the paper's evaluation (§5.1).
package ib

import "ibasim/internal/sim"

// Timing and sizing constants from the paper's subnet model (§5.1).
const (
	// CreditBytes is the credit granularity of the IBA flow-control
	// scheme: buffer space is accounted in 64-byte units.
	CreditBytes = 64

	// DefaultMTU is the Maximum Transfer Unit used in the evaluation
	// (IBA allows 256..4096 bytes; the paper uses 256).
	DefaultMTU = 256

	// RoutingDelay is the switch routing time: forwarding-table
	// access + crossbar arbitration + crossbar setup.
	RoutingDelay sim.Time = 100

	// PropagationDelay is the cable flight time: 20 m of copper at
	// 5 ns/m.
	PropagationDelay sim.Time = 100

	// LinkNsPerByte is the serialization time of one byte on a 1X
	// link: 2.5 Gbps with 8b/10b coding carries 2.0 Gbps of data,
	// i.e. 0.25 bytes/ns, i.e. 4 ns/byte.
	LinkNsPerByte sim.Time = 4

	// MaxVLs is the largest number of data virtual lanes an IBA
	// switch may implement.
	MaxVLs = 16
)

// SerializationTime returns how long a packet of the given size
// occupies a 1X link.
func SerializationTime(sizeBytes int) sim.Time {
	return sim.Time(sizeBytes) * LinkNsPerByte
}

// Credits returns the number of 64-byte credits a packet of the given
// size consumes (rounded up, minimum 1).
func Credits(sizeBytes int) int {
	if sizeBytes <= 0 {
		return 1
	}
	return (sizeBytes + CreditBytes - 1) / CreditBytes
}

package ib

import (
	"testing"
	"testing/quick"
)

func TestCredits(t *testing.T) {
	cases := []struct{ size, want int }{
		{0, 1}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {256, 4}, {4096, 64},
	}
	for _, c := range cases {
		if got := Credits(c.size); got != c.want {
			t.Errorf("Credits(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestSerializationTime(t *testing.T) {
	// 32 bytes at 4 ns/byte = 128 ns; 256 bytes = 1024 ns.
	if got := SerializationTime(32); got != 128 {
		t.Fatalf("SerializationTime(32) = %v, want 128", got)
	}
	if got := SerializationTime(256); got != 1024 {
		t.Fatalf("SerializationTime(256) = %v, want 1024", got)
	}
}

func TestAddressPlanBasics(t *testing.T) {
	p, err := NewAddressPlan(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.RangeSize() != 2 {
		t.Fatalf("RangeSize = %d, want 2", p.RangeSize())
	}
	if p.BaseLID(0) != 2 {
		t.Fatalf("BaseLID(0) = %d, want 2 (LID 0 reserved)", p.BaseLID(0))
	}
	if p.AdaptiveLID(0) != 3 {
		t.Fatalf("AdaptiveLID(0) = %d, want 3", p.AdaptiveLID(0))
	}
	if p.DLIDFor(5, false) != p.BaseLID(5) || p.DLIDFor(5, true) != p.AdaptiveLID(5) {
		t.Fatal("DLIDFor disagrees with Base/Adaptive LIDs")
	}
}

func TestAddressPlanRejectsBadShapes(t *testing.T) {
	if _, err := NewAddressPlan(10, MaxLMC+1); err == nil {
		t.Fatal("LMC 8 accepted")
	}
	if _, err := NewAddressPlan(0, 1); err == nil {
		t.Fatal("zero hosts accepted")
	}
	if _, err := NewAddressPlan(40000, 1); err == nil {
		t.Fatal("LID space overflow accepted")
	}
}

func TestAddressPlanLIDZeroUnowned(t *testing.T) {
	p, err := NewAddressPlan(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.HostOf(0); ok {
		t.Fatal("LID 0 decoded to a host")
	}
}

func TestAddressPlanHostOfRoundTrip(t *testing.T) {
	for _, lmc := range []uint{0, 1, 2, 3, 7} {
		p, err := NewAddressPlan(100, lmc)
		if err != nil {
			t.Fatal(err)
		}
		for host := 0; host < 100; host++ {
			for off := 0; off < p.RangeSize(); off++ {
				lid := p.BaseLID(host) + LID(off)
				got, ok := p.HostOf(lid)
				if !ok || got != host {
					t.Fatalf("lmc=%d HostOf(%d) = (%d,%v), want (%d,true)", lmc, lid, got, ok, host)
				}
			}
		}
	}
}

func TestAddressPlanRangesDisjoint(t *testing.T) {
	p, err := NewAddressPlan(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	owner := map[LID]int{}
	for host := 0; host < 64; host++ {
		for off := 0; off < p.RangeSize(); off++ {
			lid := p.BaseLID(host) + LID(off)
			if prev, dup := owner[lid]; dup {
				t.Fatalf("LID %d owned by hosts %d and %d", lid, prev, host)
			}
			owner[lid] = host
		}
	}
}

func TestAddressPlanAdaptiveBit(t *testing.T) {
	p, err := NewAddressPlan(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for host := 0; host < 32; host++ {
		if p.IsAdaptive(p.BaseLID(host)) {
			t.Fatalf("base LID of host %d reads adaptive", host)
		}
		if !p.IsAdaptive(p.AdaptiveLID(host)) {
			t.Fatalf("adaptive LID of host %d reads deterministic", host)
		}
	}
}

func TestAddressPlanLMCZeroNoAdaptive(t *testing.T) {
	p, err := NewAddressPlan(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.AdaptiveLID(3) != p.BaseLID(3) {
		t.Fatal("LMC 0 produced a distinct adaptive LID")
	}
	if p.IsAdaptive(p.BaseLID(3)) {
		t.Fatal("LMC 0 LID reads adaptive")
	}
}

func TestAddressPlanHostOfProperty(t *testing.T) {
	p, err := NewAddressPlan(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		lid := LID(raw)
		host, ok := p.HostOf(lid)
		if !ok {
			// Outside every range: below first base or above max.
			return lid < p.BaseLID(0) || lid > p.MaxLID()
		}
		return lid >= p.BaseLID(host) && lid < p.BaseLID(host)+LID(p.RangeSize())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearForwardingTable(t *testing.T) {
	tab := NewLinearForwardingTable(100)
	if tab.Len() != 101 {
		t.Fatalf("Len = %d, want 101", tab.Len())
	}
	if tab.Get(5) != InvalidPort {
		t.Fatal("fresh entry not invalid")
	}
	if err := tab.Set(5, 3); err != nil {
		t.Fatal(err)
	}
	if tab.Get(5) != 3 {
		t.Fatalf("Get(5) = %d, want 3", tab.Get(5))
	}
	if err := tab.Set(101, 0); err == nil {
		t.Fatal("out-of-range Set accepted")
	}
	if tab.Get(200) != InvalidPort {
		t.Fatal("out-of-range Get not invalid")
	}
}

func TestSLtoVLDefaultMapping(t *testing.T) {
	tab, err := NewSLtoVLTable(8, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for sl := 0; sl < 16; sl++ {
		vl, err := tab.VL(0, 1, sl)
		if err != nil {
			t.Fatal(err)
		}
		if vl != sl%4 {
			t.Fatalf("VL(0,1,%d) = %d, want %d", sl, vl, sl%4)
		}
	}
}

func TestSLtoVLSetOverride(t *testing.T) {
	tab, err := NewSLtoVLTable(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Set(1, 2, 3, 1); err != nil {
		t.Fatal(err)
	}
	vl, err := tab.VL(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if vl != 1 {
		t.Fatalf("override VL = %d, want 1", vl)
	}
	// Other entries untouched.
	if vl, _ := tab.VL(2, 1, 3); vl != 3%2 {
		t.Fatalf("unrelated entry changed to %d", vl)
	}
}

func TestSLtoVLRejectsBadShapesAndLookups(t *testing.T) {
	if _, err := NewSLtoVLTable(0, 1, 1); err == nil {
		t.Fatal("zero ports accepted")
	}
	if _, err := NewSLtoVLTable(4, 4, MaxVLs+1); err == nil {
		t.Fatal("17 VLs accepted")
	}
	tab, err := NewSLtoVLTable(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.VL(4, 0, 0); err == nil {
		t.Fatal("out-of-range input port accepted")
	}
	if err := tab.Set(0, 0, 0, MaxVLs); err == nil {
		t.Fatal("VL 16 accepted")
	}
}

func TestPacketLatencyAndCredits(t *testing.T) {
	p := &Packet{Size: 100, CreatedAt: 10, DeliveredAt: 510}
	if p.Latency() != 500 {
		t.Fatalf("Latency = %v, want 500", p.Latency())
	}
	if p.Credits() != 2 {
		t.Fatalf("Credits = %d, want 2", p.Credits())
	}
}

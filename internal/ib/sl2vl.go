package ib

import "fmt"

// SLtoVLTable is the IBA table that maps (input port, output port,
// service level) to the virtual lane a packet uses on the next link.
// The paper's mechanism keeps this table untouched: the adaptive and
// escape queues live inside a single VL's buffer, so VL selection
// stays exactly as the spec defines it.
type SLtoVLTable struct {
	numPorts int
	numSLs   int
	vl       []int // [inPort][outPort][sl] flattened
}

// NewSLtoVLTable builds a table for a switch with numPorts ports,
// mapping every (in, out, sl) to sl modulo numVLs — the identity-style
// default an unconfigured subnet uses. Entries can be overridden with
// Set for QoS experiments.
func NewSLtoVLTable(numPorts, numSLs, numVLs int) (*SLtoVLTable, error) {
	if numPorts <= 0 || numSLs <= 0 || numVLs <= 0 || numVLs > MaxVLs {
		return nil, fmt.Errorf("ib: bad SLtoVL shape ports=%d sls=%d vls=%d", numPorts, numSLs, numVLs)
	}
	t := &SLtoVLTable{
		numPorts: numPorts,
		numSLs:   numSLs,
		vl:       make([]int, numPorts*numPorts*numSLs),
	}
	for in := 0; in < numPorts; in++ {
		for out := 0; out < numPorts; out++ {
			for sl := 0; sl < numSLs; sl++ {
				t.vl[t.index(in, out, sl)] = sl % numVLs
			}
		}
	}
	return t, nil
}

func (t *SLtoVLTable) index(in, out, sl int) int {
	return (in*t.numPorts+out)*t.numSLs + sl
}

func (t *SLtoVLTable) check(in, out, sl int) error {
	if in < 0 || in >= t.numPorts || out < 0 || out >= t.numPorts || sl < 0 || sl >= t.numSLs {
		return fmt.Errorf("ib: SLtoVL lookup (%d,%d,%d) out of range", in, out, sl)
	}
	return nil
}

// Set overrides the VL for one (input port, output port, SL) triple.
func (t *SLtoVLTable) Set(in, out, sl, vl int) error {
	if err := t.check(in, out, sl); err != nil {
		return err
	}
	if vl < 0 || vl >= MaxVLs {
		return fmt.Errorf("ib: VL %d out of range", vl)
	}
	t.vl[t.index(in, out, sl)] = vl
	return nil
}

// VL returns the virtual lane for a packet with the given service
// level crossing from input port in to output port out.
func (t *SLtoVLTable) VL(in, out, sl int) (int, error) {
	if err := t.check(in, out, sl); err != nil {
		return 0, err
	}
	return t.vl[t.index(in, out, sl)], nil
}

package ib

import "fmt"

// PortID numbers the ports of one switch (0-based). The fabric package
// assigns host-facing ports first, then inter-switch ports.
type PortID int

// InvalidPort marks unprogrammed forwarding-table entries.
const InvalidPort PortID = -1

// LinearForwardingTable is the spec's linear forwarding table: a plain
// array of output ports indexed by DLID ("the LID acts as an index
// into the table"). This is the only view the subnet manager has; the
// adaptive extension in internal/core wraps it without changing this
// interface, which is how the paper's proposal stays spec-compatible.
type LinearForwardingTable struct {
	ports []PortID
}

// NewLinearForwardingTable returns a table covering LIDs [0, maxLID],
// all entries invalid.
func NewLinearForwardingTable(maxLID LID) *LinearForwardingTable {
	ports := make([]PortID, int(maxLID)+1)
	for i := range ports {
		ports[i] = InvalidPort
	}
	return &LinearForwardingTable{ports: ports}
}

// Len returns the number of entries (MaxLID+1).
func (t *LinearForwardingTable) Len() int { return len(t.ports) }

// Set programs the output port for a LID, as the subnet manager does
// at initialization time.
func (t *LinearForwardingTable) Set(lid LID, port PortID) error {
	if int(lid) >= len(t.ports) {
		return fmt.Errorf("ib: LID %d beyond table size %d", lid, len(t.ports))
	}
	t.ports[lid] = port
	return nil
}

// Get returns the programmed port for a LID (InvalidPort if none).
func (t *LinearForwardingTable) Get(lid LID) PortID {
	if int(lid) >= len(t.ports) {
		return InvalidPort
	}
	return t.ports[lid]
}

package ib

import "testing"

func TestVLArbDefaultFairness(t *testing.T) {
	arb, err := NewVLArbTable(4)
	if err != nil {
		t.Fatal(err)
	}
	ready := []bool{true, true, true, true}
	counts := map[int]int{}
	for i := 0; i < 4000; i++ {
		vl := arb.Next(ready, 1)
		if vl < 0 {
			t.Fatal("no grant with all VLs ready")
		}
		counts[vl]++
	}
	for vl := 0; vl < 4; vl++ {
		if counts[vl] < 900 || counts[vl] > 1100 {
			t.Fatalf("unfair default arbitration: %v", counts)
		}
	}
}

func TestVLArbRespectsWeights(t *testing.T) {
	arb, err := NewVLArbTable(2)
	if err != nil {
		t.Fatal(err)
	}
	// VL0 gets 3x the weight of VL1.
	if err := arb.Configure(nil, []VLArbEntry{{VL: 0, Weight: 12}, {VL: 1, Weight: 4}}, 255); err != nil {
		t.Fatal(err)
	}
	ready := []bool{true, true}
	counts := map[int]int{}
	for i := 0; i < 1600; i++ {
		counts[arb.Next(ready, 1)]++
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weight ratio %v, want ~3 (counts %v)", ratio, counts)
	}
}

func TestVLArbSkipsNotReady(t *testing.T) {
	arb, err := NewVLArbTable(2)
	if err != nil {
		t.Fatal(err)
	}
	ready := []bool{false, true}
	for i := 0; i < 100; i++ {
		if vl := arb.Next(ready, 1); vl != 1 {
			t.Fatalf("granted VL %d while only VL1 ready", vl)
		}
	}
}

func TestVLArbNoneReady(t *testing.T) {
	arb, err := NewVLArbTable(2)
	if err != nil {
		t.Fatal(err)
	}
	if vl := arb.Next([]bool{false, false}, 1); vl != -1 {
		t.Fatalf("granted VL %d with nothing ready", vl)
	}
}

func TestVLArbHighPriorityPreempts(t *testing.T) {
	arb, err := NewVLArbTable(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := arb.Configure(
		[]VLArbEntry{{VL: 0, Weight: 255}},
		[]VLArbEntry{{VL: 1, Weight: 16}},
		64,
	); err != nil {
		t.Fatal(err)
	}
	ready := []bool{true, true}
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		counts[arb.Next(ready, 1)]++
	}
	if counts[0] <= counts[1] {
		t.Fatalf("high-priority VL0 not favoured: %v", counts)
	}
	if counts[1] == 0 {
		t.Fatal("low-priority VL starved despite the high-priority limit")
	}
}

func TestVLArbConfigureValidation(t *testing.T) {
	arb, err := NewVLArbTable(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := arb.Configure([]VLArbEntry{{VL: 5, Weight: 1}}, nil, 10); err == nil {
		t.Fatal("out-of-range VL accepted")
	}
	if err := arb.Configure(nil, []VLArbEntry{{VL: 0, Weight: 300}}, 10); err == nil {
		t.Fatal("weight 300 accepted")
	}
	if err := arb.Configure(nil, nil, -1); err == nil {
		t.Fatal("negative limit accepted")
	}
}

func TestVLArbRejectsBadShape(t *testing.T) {
	if _, err := NewVLArbTable(0); err == nil {
		t.Fatal("0 VLs accepted")
	}
	if _, err := NewVLArbTable(MaxVLs + 1); err == nil {
		t.Fatal("17 VLs accepted")
	}
}

package core

import (
	"testing"
	"testing/quick"

	"ibasim/internal/sim"
)

func TestSplitHalf(t *testing.T) {
	s := SplitHalf(16)
	if s.CEscape != 8 || s.CAdaptiveCap() != 8 {
		t.Fatalf("SplitHalf(16) = %+v", s)
	}
}

func TestNewCreditSplitValidation(t *testing.T) {
	for _, c := range []struct{ cmax, cesc int }{{0, 0}, {8, 0}, {8, 8}, {8, 9}, {-1, -2}} {
		if _, err := NewCreditSplit(c.cmax, c.cesc); err == nil {
			t.Fatalf("split %+v accepted", c)
		}
	}
	if _, err := NewCreditSplit(16, 4); err != nil {
		t.Fatal(err)
	}
}

func TestCreditFormulasMatchPaper(t *testing.T) {
	// C_XYA = max(0, C - Cmax/2); C_XYE = min(Cmax/2, C), Cmax = 16.
	s := SplitHalf(16)
	cases := []struct{ c, wantA, wantE int }{
		{16, 8, 8}, // empty buffer
		{12, 4, 8},
		{8, 0, 8}, // adaptive region exactly full
		{5, 0, 5},
		{0, 0, 0}, // buffer full
	}
	for _, c := range cases {
		if got := s.Adaptive(c.c); got != c.wantA {
			t.Errorf("Adaptive(%d) = %d, want %d", c.c, got, c.wantA)
		}
		if got := s.Escape(c.c); got != c.wantE {
			t.Errorf("Escape(%d) = %d, want %d", c.c, got, c.wantE)
		}
	}
}

// TestCreditSplitInvariants: for any occupancy, the two logical queues
// partition the available credits: A + E == C, 0 <= A <= Cmax-C0,
// 0 <= E <= C0.
func TestCreditSplitInvariants(t *testing.T) {
	f := func(cmaxRaw, cescRaw, cRaw uint8) bool {
		cmax := int(cmaxRaw%63) + 2
		cesc := int(cescRaw)%(cmax-1) + 1
		s, err := NewCreditSplit(cmax, cesc)
		if err != nil {
			return false
		}
		c := int(cRaw) % (cmax + 1)
		a, e := s.Adaptive(c), s.Escape(c)
		if a+e != c {
			return false
		}
		if a < 0 || a > s.CAdaptiveCap() {
			return false
		}
		return e >= 0 && e <= s.CEscape
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCanUseAdaptiveRequiresAdaptiveRoom(t *testing.T) {
	s := SplitHalf(16)
	// Packet of 4 credits: adaptive region must have >= 4 free.
	if !s.CanUseAdaptive(16, 4) {
		t.Fatal("empty buffer rejected adaptive")
	}
	if !s.CanUseAdaptive(12, 4) {
		t.Fatal("12 credits free (4 adaptive) rejected adaptive 4-credit packet")
	}
	if s.CanUseAdaptive(11, 4) {
		t.Fatal("11 credits free (3 adaptive) accepted adaptive 4-credit packet")
	}
	if s.CanUseAdaptive(8, 1) {
		t.Fatal("full adaptive region accepted adaptive packet")
	}
}

func TestCanUseEscapeRequiresTotalRoom(t *testing.T) {
	s := SplitHalf(16)
	if !s.CanUseEscape(4, 4) {
		t.Fatal("4 free credits rejected a 4-credit escape packet")
	}
	if s.CanUseEscape(3, 4) {
		t.Fatal("3 free credits accepted a 4-credit escape packet")
	}
	// Escape option usable even when only adaptive-region space is
	// left (§4.4: the packet lands wherever there is room).
	if !s.CanUseEscape(16, 4) {
		t.Fatal("empty buffer rejected escape")
	}
}

func TestAdaptiveStricterThanEscape(t *testing.T) {
	// Whenever the adaptive condition holds, the escape condition
	// holds too (adaptive credits are a subset of total credits).
	f := func(cRaw, pktRaw uint8) bool {
		s := SplitHalf(16)
		c := int(cRaw) % 17
		pkt := int(pktRaw)%8 + 1
		if s.CanUseAdaptive(c, pkt) && !s.CanUseEscape(c, pkt) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPickAdaptiveStatusAware(t *testing.T) {
	cfg := SelectionConfig{AtArbitration: true, StatusAware: true}
	cands := []Candidate{
		{Port: 1, Eligible: true, AdaptiveCredits: 2},
		{Port: 2, Eligible: true, AdaptiveCredits: 7},
		{Port: 3, Eligible: false, AdaptiveCredits: 99},
	}
	if got := PickAdaptive(cfg, cands, sim.NewRNG(1)); got != 1 {
		t.Fatalf("PickAdaptive = %d, want 1 (most credits among eligible)", got)
	}
}

func TestPickAdaptiveNoneEligible(t *testing.T) {
	for _, aware := range []bool{true, false} {
		cfg := SelectionConfig{StatusAware: aware}
		cands := []Candidate{{Port: 1}, {Port: 2}}
		if got := PickAdaptive(cfg, cands, sim.NewRNG(1)); got != -1 {
			t.Fatalf("aware=%v: PickAdaptive = %d, want -1", aware, got)
		}
	}
}

func TestPickAdaptiveStaticUniform(t *testing.T) {
	cfg := SelectionConfig{StatusAware: false}
	cands := []Candidate{
		{Port: 1, Eligible: true},
		{Port: 2, Eligible: true},
		{Port: 3, Eligible: true},
	}
	rng := sim.NewRNG(3)
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		counts[PickAdaptive(cfg, cands, rng)]++
	}
	for i := 0; i < 3; i++ {
		if counts[i] < 800 || counts[i] > 1200 {
			t.Fatalf("static pick skewed: %v", counts)
		}
	}
}

func TestPickAdaptiveTieBreaksToFirst(t *testing.T) {
	cfg := SelectionConfig{StatusAware: true}
	cands := []Candidate{
		{Port: 4, Eligible: true, AdaptiveCredits: 5},
		{Port: 5, Eligible: true, AdaptiveCredits: 5},
	}
	if got := PickAdaptive(cfg, cands, sim.NewRNG(1)); got != 0 {
		t.Fatalf("tie pick = %d, want 0 (table order)", got)
	}
}

func TestPickStatic(t *testing.T) {
	if got := PickStatic(nil, sim.NewRNG(1)); got != -1 {
		t.Fatalf("PickStatic(nil) = %d, want -1", got)
	}
	cands := []Candidate{{Port: 1}, {Port: 2}}
	rng := sim.NewRNG(5)
	for i := 0; i < 100; i++ {
		got := PickStatic(cands, rng)
		if got < 0 || got > 1 {
			t.Fatalf("PickStatic out of range: %d", got)
		}
	}
}

func TestSelectionConfigString(t *testing.T) {
	if s := DefaultSelection().String(); s != "arbitration/status-aware" {
		t.Fatalf("String = %q", s)
	}
	if s := (SelectionConfig{}).String(); s != "immediate/static" {
		t.Fatalf("String = %q", s)
	}
}

package core

import (
	"testing"

	"ibasim/internal/ib"
)

// programBlock fills host 5's LID block with the given ports.
func programBlock(t *testing.T, tab *AdaptiveTable, base ib.LID, ports []ib.PortID) {
	t.Helper()
	for off, port := range ports {
		if err := tab.Set(base+ib.LID(off), port); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSetInvalidatesCachedBlock(t *testing.T) {
	plan, tab := plan2(t)
	base := plan.BaseLID(5)
	programBlock(t, tab, base, []ib.PortID{7, 2, 3, 4})
	dlid := plan.DLIDFor(5, true)

	escape, adaptive, err := tab.Lookup(dlid) // warms the block cache
	if err != nil {
		t.Fatal(err)
	}
	if escape != 7 || len(adaptive) != 3 {
		t.Fatalf("warm lookup = (%d, %v), want (7, [2 3 4])", escape, adaptive)
	}
	old := adaptive

	// Re-program the whole block the way the subnet manager does on a
	// reconfiguration sweep: every slot, including a duplicate option.
	programBlock(t, tab, base, []ib.PortID{9, 8, 8, 9})
	escape, adaptive, err = tab.Lookup(dlid)
	if err != nil {
		t.Fatal(err)
	}
	if escape != 9 {
		t.Fatalf("escape after reprogram = %d, want 9", escape)
	}
	if len(adaptive) != 2 || adaptive[0] != 8 || adaptive[1] != 9 {
		t.Fatalf("adaptive after reprogram = %v, want [8 9]", adaptive)
	}

	// In-flight holders of the superseded option set must be unharmed:
	// the old slice keeps its pre-reconfiguration contents.
	if old[0] != 2 || old[1] != 3 || old[2] != 4 {
		t.Fatalf("superseded option slice mutated: %v", old)
	}

	// The deterministic view follows the same invalidation.
	if esc, _, err := tab.Lookup(plan.DLIDFor(5, false)); err != nil || esc != 9 {
		t.Fatalf("deterministic lookup after reprogram = (%d, %v), want (9, nil)", esc, err)
	}
}

func TestSetInvalidatesOnlyItsBlock(t *testing.T) {
	plan, tab := plan2(t)
	programBlock(t, tab, plan.BaseLID(3), []ib.PortID{1, 2, 2, 2})
	programBlock(t, tab, plan.BaseLID(4), []ib.PortID{5, 6, 6, 6})
	if _, _, err := tab.Lookup(plan.DLIDFor(3, true)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tab.Lookup(plan.DLIDFor(4, true)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Set(plan.BaseLID(4), 7); err != nil {
		t.Fatal(err)
	}
	escape, adaptive, err := tab.Lookup(plan.DLIDFor(3, true))
	if err != nil {
		t.Fatal(err)
	}
	if escape != 1 || len(adaptive) != 1 || adaptive[0] != 2 {
		t.Fatalf("unrelated block changed: (%d, %v), want (1, [2])", escape, adaptive)
	}
	if esc, _, err := tab.Lookup(plan.DLIDFor(4, false)); err != nil || esc != 7 {
		t.Fatalf("reprogrammed block = (%d, %v), want (7, nil)", esc, err)
	}
}

// TestLookupZeroAllocsWarm is the alloc regression gate for the
// forwarding-table access: after the first lookup decodes a block,
// every further lookup of it must be allocation-free.
func TestLookupZeroAllocsWarm(t *testing.T) {
	plan, tab := plan2(t)
	programBlock(t, tab, plan.BaseLID(5), []ib.PortID{7, 2, 3, 4})
	adaptiveDLID := plan.DLIDFor(5, true)
	detDLID := plan.DLIDFor(5, false)
	if _, _, err := tab.Lookup(adaptiveDLID); err != nil { // warm
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, err := tab.Lookup(adaptiveDLID); err != nil {
			t.Fatal(err)
		}
		if _, _, err := tab.Lookup(detDLID); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Lookup allocates %v objects per call pair, want 0", allocs)
	}
}

// BenchmarkLookup measures the warm forwarding-table access, the
// operation every packet head arrival performs.
func BenchmarkLookup(b *testing.B) {
	plan, err := ib.NewAddressPlan(64, 2)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := NewAdaptiveTable(plan.MaxLID(), 2)
	if err != nil {
		b.Fatal(err)
	}
	for h := 0; h < 64; h++ {
		base := plan.BaseLID(h)
		for off := 0; off < plan.RangeSize(); off++ {
			if err := tab.Set(base+ib.LID(off), ib.PortID(1+(h+off)%7)); err != nil {
				b.Fatal(err)
			}
		}
	}
	dlids := make([]ib.LID, 64)
	for h := range dlids {
		dlids[h] = plan.DLIDFor(h, h%2 == 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tab.Lookup(dlids[i%len(dlids)]); err != nil {
			b.Fatal(err)
		}
	}
}

package core

import (
	"testing"
	"testing/quick"

	"ibasim/internal/ib"
)

// plan2 returns a standard test fixture: 16 hosts, LMC 2 (4 routing
// options), and an AdaptiveTable sized for the plan.
func plan2(t *testing.T) (*ib.AddressPlan, *AdaptiveTable) {
	t.Helper()
	plan, err := ib.NewAddressPlan(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewAdaptiveTable(plan.MaxLID(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return plan, tab
}

func TestAdaptiveTableRejectsBigLMC(t *testing.T) {
	if _, err := NewAdaptiveTable(100, ib.MaxLMC+1); err == nil {
		t.Fatal("LMC 8 accepted")
	}
}

func TestLookupDeterministicReturnsOnlyEscape(t *testing.T) {
	plan, tab := plan2(t)
	base := plan.BaseLID(3)
	for off, port := range []ib.PortID{7, 2, 3, 4} {
		if err := tab.Set(base+ib.LID(off), port); err != nil {
			t.Fatal(err)
		}
	}
	escape, adaptive, err := tab.Lookup(plan.DLIDFor(3, false))
	if err != nil {
		t.Fatal(err)
	}
	if escape != 7 {
		t.Fatalf("escape = %d, want 7", escape)
	}
	if adaptive != nil {
		t.Fatalf("deterministic lookup returned adaptive options %v", adaptive)
	}
}

func TestLookupAdaptiveReturnsAllOptions(t *testing.T) {
	plan, tab := plan2(t)
	base := plan.BaseLID(3)
	for off, port := range []ib.PortID{7, 2, 3, 4} {
		if err := tab.Set(base+ib.LID(off), port); err != nil {
			t.Fatal(err)
		}
	}
	escape, adaptive, err := tab.Lookup(plan.DLIDFor(3, true))
	if err != nil {
		t.Fatal(err)
	}
	if escape != 7 {
		t.Fatalf("escape = %d, want 7", escape)
	}
	want := []ib.PortID{2, 3, 4}
	if len(adaptive) != len(want) {
		t.Fatalf("adaptive = %v, want %v", adaptive, want)
	}
	for i := range want {
		if adaptive[i] != want[i] {
			t.Fatalf("adaptive = %v, want %v", adaptive, want)
		}
	}
}

func TestLookupAnyAddressInBlockSameResult(t *testing.T) {
	// Any adaptive-bit address of the block routes with the full
	// option set; the table access is keyed on the aligned base.
	plan, tab := plan2(t)
	base := plan.BaseLID(5)
	for off, port := range []ib.PortID{1, 2, 3, 4} {
		if err := tab.Set(base+ib.LID(off), port); err != nil {
			t.Fatal(err)
		}
	}
	e1, a1, err := tab.Lookup(base + 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, a2, err := tab.Lookup(base + 3)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 || len(a1) != len(a2) {
		t.Fatalf("block addresses disagree: (%v,%v) vs (%v,%v)", e1, a1, e2, a2)
	}
}

func TestLookupDeduplicatesAdaptiveSlots(t *testing.T) {
	// The subnet manager cycle-fills unused slots, so duplicates among
	// adaptive slots collapse; a port equal to the escape port stays,
	// because the adaptive queue of the escape link is a distinct
	// routing option.
	plan, tab := plan2(t)
	base := plan.BaseLID(2)
	for off, port := range []ib.PortID{9, 9, 5, 5} {
		if err := tab.Set(base+ib.LID(off), port); err != nil {
			t.Fatal(err)
		}
	}
	escape, adaptive, err := tab.Lookup(plan.DLIDFor(2, true))
	if err != nil {
		t.Fatal(err)
	}
	if escape != 9 {
		t.Fatalf("escape = %d, want 9", escape)
	}
	if len(adaptive) != 2 || adaptive[0] != 9 || adaptive[1] != 5 {
		t.Fatalf("adaptive = %v, want [9 5]", adaptive)
	}
}

func TestLookupSkipsUnprogrammedOptionSlots(t *testing.T) {
	plan, tab := plan2(t)
	base := plan.BaseLID(4)
	if err := tab.Set(base, 5); err != nil {
		t.Fatal(err)
	}
	if err := tab.Set(base+1, 6); err != nil {
		t.Fatal(err)
	}
	// Slots base+2, base+3 left invalid.
	escape, adaptive, err := tab.Lookup(plan.DLIDFor(4, true))
	if err != nil {
		t.Fatal(err)
	}
	if escape != 5 || len(adaptive) != 1 || adaptive[0] != 6 {
		t.Fatalf("lookup = (%d, %v), want (5, [6])", escape, adaptive)
	}
}

func TestLookupUnprogrammedBaseErrors(t *testing.T) {
	plan, tab := plan2(t)
	if _, _, err := tab.Lookup(plan.BaseLID(7)); err == nil {
		t.Fatal("lookup of unprogrammed destination succeeded")
	}
}

func TestLMCZeroTableActsLinear(t *testing.T) {
	plan, err := ib.NewAddressPlan(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewAdaptiveTable(plan.MaxLID(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Set(plan.BaseLID(0), 4); err != nil {
		t.Fatal(err)
	}
	escape, adaptive, err := tab.Lookup(plan.BaseLID(0))
	if err != nil {
		t.Fatal(err)
	}
	if escape != 4 || adaptive != nil {
		t.Fatalf("LMC0 lookup = (%d,%v), want (4,nil)", escape, adaptive)
	}
}

// TestLinearViewEquivalence is the Figure-1 compatibility property:
// the subnet manager's linear view (Get) and the enhanced lookup see
// the same stored ports, for arbitrary programming sequences.
func TestLinearViewEquivalence(t *testing.T) {
	plan, tab := plan2(t)
	f := func(hostRaw uint8, ports [4]uint8) bool {
		host := int(hostRaw) % 16
		base := plan.BaseLID(host)
		for off := 0; off < 4; off++ {
			if tab.Set(base+ib.LID(off), ib.PortID(ports[off]%8)) != nil {
				return false
			}
		}
		// Linear view returns exactly what was stored.
		for off := 0; off < 4; off++ {
			if tab.Get(base+ib.LID(off)) != ib.PortID(ports[off]%8) {
				return false
			}
		}
		// Enhanced view: escape = slot 0; adaptive ⊆ slots 1..3.
		escape, adaptive, err := tab.Lookup(base + 1)
		if err != nil || escape != ib.PortID(ports[0]%8) {
			return false
		}
		stored := map[ib.PortID]bool{}
		for off := 1; off < 4; off++ {
			stored[ib.PortID(ports[off]%8)] = true
		}
		for _, p := range adaptive {
			if !stored[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

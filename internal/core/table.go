// Package core implements the paper's primary contribution: IBA
// switch extensions that support fully adaptive routing while staying
// compatible with the InfiniBand specification.
//
// Three mechanisms make it up:
//
//   - AdaptiveTable (§4.1, Figure 1): the linear forwarding table is
//     physically arranged as an interleaved memory of 2^LMC modules so
//     that one access returns every routing option of a destination,
//     while the subnet manager keeps seeing a plain linear table.
//   - The DLID low-bit convention (§4.2): sources pick the base
//     address of the destination's LID range for deterministic
//     service or base+1 for adaptive service; switches inspect one
//     bit to decide whether to return one option or all of them.
//   - The adaptive/escape queue split with credit accounting (§4.4,
//     Figure 2): each VL buffer is divided into a logical adaptive
//     queue (first half) and escape queue (second half), and the
//     per-VL credit count is split as
//     C_A = max(0, C - C_max/2), C_E = min(C_max/2, C)
//     so the sender can tell whether the *adaptive* region of the
//     next-hop buffer can hold a whole packet — the condition that
//     keeps the fully adaptive algorithm deadlock-free.
package core

import (
	"fmt"

	"ibasim/internal/ib"
)

// blockOptions is the decoded option set of one 2^LMC-aligned LID
// block: the single table access the enhanced switch performs, cached.
// The adaptive slice is allocated once per decode and handed out to
// every Lookup of the block; callers must treat it as read-only.
type blockOptions struct {
	escape   ib.PortID
	adaptive []ib.PortID
	valid    bool
}

// AdaptiveTable is the interleaved multi-option forwarding table. It
// embeds the spec's linear table as its subnet-manager-facing view:
// Set and Get behave exactly like a plain linear forwarding table
// (IBA compatibility), while Lookup is the enhanced-switch access
// returning all options for a destination in a single operation.
//
// Lookup results are cached per aligned block and invalidated by Set,
// so the steady-state forwarding path (tables programmed once, then
// millions of lookups) performs no heap allocation after the first
// access to each block — mirroring the hardware, where the decode is
// a wiring pattern of the interleaved memory, not per-packet work.
type AdaptiveTable struct {
	linear *ib.LinearForwardingTable
	lmc    uint
	blocks []blockOptions // one per 2^lmc-aligned block, decoded lazily
}

// NewAdaptiveTable builds a table for LIDs [0, maxLID] organized as
// 2^lmc interleaved modules.
func NewAdaptiveTable(maxLID ib.LID, lmc uint) (*AdaptiveTable, error) {
	if lmc > ib.MaxLMC {
		return nil, fmt.Errorf("core: LMC %d exceeds spec maximum %d", lmc, ib.MaxLMC)
	}
	linear := ib.NewLinearForwardingTable(maxLID)
	block := 1 << lmc
	return &AdaptiveTable{
		linear: linear,
		lmc:    lmc,
		blocks: make([]blockOptions, (linear.Len()+block-1)/block),
	}, nil
}

// LMC returns the table's LID Mask Control.
func (t *AdaptiveTable) LMC() uint { return t.lmc }

// Set programs one linear entry (subnet-manager view) and invalidates
// the cached decode of the entry's block, so re-programming during
// subnet reconfiguration is visible to the very next Lookup.
func (t *AdaptiveTable) Set(lid ib.LID, port ib.PortID) error {
	if err := t.linear.Set(lid, port); err != nil {
		return err
	}
	t.blocks[int(lid)>>t.lmc].valid = false
	return nil
}

// Get reads one linear entry (subnet-manager view).
func (t *AdaptiveTable) Get(lid ib.LID) ib.PortID { return t.linear.Get(lid) }

// Len returns the number of linear entries.
func (t *AdaptiveTable) Len() int { return t.linear.Len() }

// Lookup is the enhanced switch's routing access. It returns:
//
//   - escape: the deterministic/escape output port stored at the base
//     address of the DLID's aligned 2^LMC block;
//   - adaptive: the remaining programmed options of the block, in
//     address order, when the DLID's low bit requests adaptive service
//     (nil otherwise, per §4.2). Duplicate ports among the adaptive
//     slots are collapsed (the subnet manager cycle-fills unused
//     slots), but a port equal to the escape port is kept: routing
//     options are (port, queue) pairs, and the adaptive queue of the
//     escape link is a genuinely different option (§4.4).
//
// The interleaved-memory organization means hardware obtains all of
// this in one table access; the simulator returns it from one cached
// decode. The adaptive slice is shared across lookups of the same
// block and must not be mutated by the caller; it stays stable until
// the subnet manager re-programs the block (Set), after which in-flight
// holders keep the superseded slice and fresh lookups see the new one.
func (t *AdaptiveTable) Lookup(dlid ib.LID) (escape ib.PortID, adaptive []ib.PortID, err error) {
	bi := int(dlid) >> t.lmc
	if bi >= len(t.blocks) {
		return ib.InvalidPort, nil, fmt.Errorf("core: DLID %d unprogrammed", dlid)
	}
	b := &t.blocks[bi]
	if !b.valid {
		t.decode(bi)
	}
	if b.escape == ib.InvalidPort {
		return ib.InvalidPort, nil, fmt.Errorf("core: DLID %d unprogrammed", dlid)
	}
	if t.lmc == 0 || dlid&1 == 0 {
		return b.escape, nil, nil // deterministic service: one option
	}
	return b.escape, b.adaptive, nil
}

// decode rebuilds the cached option set of block bi from the linear
// view. A fresh adaptive slice is allocated on every decode — never
// reused — because bufEntry holders may still reference the previous
// one across a reconfiguration.
func (t *AdaptiveTable) decode(bi int) {
	block := 1 << t.lmc
	base := ib.LID(bi << t.lmc)
	b := &t.blocks[bi]
	b.escape = t.linear.Get(base)
	b.adaptive = nil
	for off := 1; off < block; off++ {
		p := t.linear.Get(base + ib.LID(off))
		if p == ib.InvalidPort || containsPort(b.adaptive, p) {
			continue
		}
		if b.adaptive == nil {
			b.adaptive = make([]ib.PortID, 0, block-1)
		}
		b.adaptive = append(b.adaptive, p)
	}
	b.valid = true
}

// containsPort is the fixed-size dedup scan replacing the per-lookup
// map: blocks hold at most 2^LMC-1 options (≤127, typically ≤3), so a
// linear scan beats any hashed structure and allocates nothing.
func containsPort(ports []ib.PortID, p ib.PortID) bool {
	for _, q := range ports {
		if q == p {
			return true
		}
	}
	return false
}

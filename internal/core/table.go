// Package core implements the paper's primary contribution: IBA
// switch extensions that support fully adaptive routing while staying
// compatible with the InfiniBand specification.
//
// Three mechanisms make it up:
//
//   - AdaptiveTable (§4.1, Figure 1): the linear forwarding table is
//     physically arranged as an interleaved memory of 2^LMC modules so
//     that one access returns every routing option of a destination,
//     while the subnet manager keeps seeing a plain linear table.
//   - The DLID low-bit convention (§4.2): sources pick the base
//     address of the destination's LID range for deterministic
//     service or base+1 for adaptive service; switches inspect one
//     bit to decide whether to return one option or all of them.
//   - The adaptive/escape queue split with credit accounting (§4.4,
//     Figure 2): each VL buffer is divided into a logical adaptive
//     queue (first half) and escape queue (second half), and the
//     per-VL credit count is split as
//     C_A = max(0, C - C_max/2), C_E = min(C_max/2, C)
//     so the sender can tell whether the *adaptive* region of the
//     next-hop buffer can hold a whole packet — the condition that
//     keeps the fully adaptive algorithm deadlock-free.
package core

import (
	"fmt"

	"ibasim/internal/ib"
)

// AdaptiveTable is the interleaved multi-option forwarding table. It
// embeds the spec's linear table as its subnet-manager-facing view:
// Set and Get behave exactly like a plain linear forwarding table
// (IBA compatibility), while Lookup is the enhanced-switch access
// returning all options for a destination in a single operation.
type AdaptiveTable struct {
	linear *ib.LinearForwardingTable
	lmc    uint
}

// NewAdaptiveTable builds a table for LIDs [0, maxLID] organized as
// 2^lmc interleaved modules.
func NewAdaptiveTable(maxLID ib.LID, lmc uint) (*AdaptiveTable, error) {
	if lmc > ib.MaxLMC {
		return nil, fmt.Errorf("core: LMC %d exceeds spec maximum %d", lmc, ib.MaxLMC)
	}
	return &AdaptiveTable{
		linear: ib.NewLinearForwardingTable(maxLID),
		lmc:    lmc,
	}, nil
}

// LMC returns the table's LID Mask Control.
func (t *AdaptiveTable) LMC() uint { return t.lmc }

// Set programs one linear entry (subnet-manager view).
func (t *AdaptiveTable) Set(lid ib.LID, port ib.PortID) error { return t.linear.Set(lid, port) }

// Get reads one linear entry (subnet-manager view).
func (t *AdaptiveTable) Get(lid ib.LID) ib.PortID { return t.linear.Get(lid) }

// Len returns the number of linear entries.
func (t *AdaptiveTable) Len() int { return t.linear.Len() }

// Lookup is the enhanced switch's routing access. It returns:
//
//   - escape: the deterministic/escape output port stored at the base
//     address of the DLID's aligned 2^LMC block;
//   - adaptive: the remaining programmed options of the block, in
//     address order, when the DLID's low bit requests adaptive service
//     (nil otherwise, per §4.2). Duplicate ports among the adaptive
//     slots are collapsed (the subnet manager cycle-fills unused
//     slots), but a port equal to the escape port is kept: routing
//     options are (port, queue) pairs, and the adaptive queue of the
//     escape link is a genuinely different option (§4.4).
//
// The interleaved-memory organization means hardware obtains all of
// this in one table access; the simulator returns it from one call.
func (t *AdaptiveTable) Lookup(dlid ib.LID) (escape ib.PortID, adaptive []ib.PortID, err error) {
	block := 1 << t.lmc
	base := dlid &^ ib.LID(block-1)
	escape = t.linear.Get(base)
	if escape == ib.InvalidPort {
		return ib.InvalidPort, nil, fmt.Errorf("core: DLID %d unprogrammed", dlid)
	}
	if t.lmc == 0 || dlid&1 == 0 {
		return escape, nil, nil // deterministic service: one option
	}
	seen := map[ib.PortID]bool{}
	for off := 1; off < block; off++ {
		p := t.linear.Get(base + ib.LID(off))
		if p == ib.InvalidPort || seen[p] {
			continue
		}
		seen[p] = true
		adaptive = append(adaptive, p)
	}
	return escape, adaptive, nil
}

package core

import "fmt"

// CreditSplit implements §4.4's division of one VL's credit count into
// the adaptive and escape logical queues. CMax is the total buffer
// capacity in credits; CEscape is the escape queue's reserve (the
// paper uses CMax/2, which SplitHalf constructs; other splits are
// supported for the ablation study).
type CreditSplit struct {
	CMax    int
	CEscape int
}

// SplitHalf returns the paper's equal split ("if the buffer associated
// to a VL is divided into two equally sized queues").
func SplitHalf(cMax int) CreditSplit { return CreditSplit{CMax: cMax, CEscape: cMax / 2} }

// NewCreditSplit validates a custom split.
func NewCreditSplit(cMax, cEscape int) (CreditSplit, error) {
	if cMax <= 0 || cEscape <= 0 || cEscape >= cMax {
		return CreditSplit{}, fmt.Errorf("core: invalid credit split cmax=%d cescape=%d", cMax, cEscape)
	}
	return CreditSplit{CMax: cMax, CEscape: cEscape}, nil
}

// CAdaptiveCap returns the adaptive queue's capacity in credits.
func (s CreditSplit) CAdaptiveCap() int { return s.CMax - s.CEscape }

// Adaptive returns C_XYA, the credits available in the adaptive queue
// when the VL as a whole has c credits available:
//
//	C_XYA = max(0, C_XY − C_0)
//
// with C_0 the escape reserve (CMax/2 in the paper).
func (s CreditSplit) Adaptive(c int) int {
	a := c - s.CEscape
	if a < 0 {
		return 0
	}
	return a
}

// Escape returns C_XYE, the credits available in the escape queue:
//
//	C_XYE = min(C_0, C_XY)
func (s CreditSplit) Escape(c int) int {
	if c < s.CEscape {
		return c
	}
	return s.CEscape
}

// CanUseAdaptive reports whether a packet of pktCredits may be sent
// through an *adaptive* routing option: the adaptive queue of the
// next-hop VL must be able to hold the entire packet (§4.4's deadlock
// condition, combined with VCT's whole-packet buffering).
func (s CreditSplit) CanUseAdaptive(c, pktCredits int) bool {
	return s.Adaptive(c) >= pktCredits
}

// CanUseEscape reports whether a packet of pktCredits may be sent
// through the escape routing option: the paper allows this whenever
// the VL has room for the whole packet — the packet lands in the
// adaptive or escape region depending on occupancy.
func (s CreditSplit) CanUseEscape(c, pktCredits int) bool {
	return c >= pktCredits
}

package core

import (
	"fmt"

	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// SelectionConfig captures the two design axes of §4.3 for choosing
// the final output port among the options a Lookup returns:
//
//   - AtArbitration: when true, the choice is (re-)made each time the
//     switch arbitrates, using up-to-date port status (the paper notes
//     this "may lead to better performance"); when false, the choice
//     is made once, immediately after the forwarding-table access, and
//     the packet then waits for that specific port.
//   - StatusAware: when true, the switch prefers the option whose
//     next-hop adaptive queue has the most free credits ("selecting
//     the output port with more buffer space"); when false, the
//     selection is static (pseudo-random among the options).
type SelectionConfig struct {
	AtArbitration bool
	StatusAware   bool
}

// DefaultSelection is the configuration the paper's evaluation uses:
// "the output port is selected at arbitration time considering the
// status of the requested output ports and the number of credits
// available" (§5.1).
func DefaultSelection() SelectionConfig {
	return SelectionConfig{AtArbitration: true, StatusAware: true}
}

func (c SelectionConfig) String() string {
	when, how := "immediate", "static"
	if c.AtArbitration {
		when = "arbitration"
	}
	if c.StatusAware {
		how = "status-aware"
	}
	return fmt.Sprintf("%s/%s", when, how)
}

// Candidate is one adaptive routing option presented to the selector.
type Candidate struct {
	Port ib.PortID
	// Eligible means the option can be used right now: the output
	// link is free and the next-hop VL's adaptive queue has room for
	// the whole packet (CreditSplit.CanUseAdaptive).
	Eligible bool
	// AdaptiveCredits is C_XYA at the next hop, the status signal a
	// status-aware selector maximizes.
	AdaptiveCredits int
}

// PickAdaptive chooses among adaptive candidates and returns the index
// of the winner, or -1 when no candidate is eligible. Status-aware
// selection takes the eligible option with the most free adaptive
// credits (ties to the first in table order, matching the
// lowest-address option); static selection picks uniformly at random
// among eligible options.
func PickAdaptive(cfg SelectionConfig, cands []Candidate, rng *sim.RNG) int {
	if cfg.StatusAware {
		best, bestCredits := -1, -1
		for i, c := range cands {
			if c.Eligible && c.AdaptiveCredits > bestCredits {
				best, bestCredits = i, c.AdaptiveCredits
			}
		}
		return best
	}
	// Count-then-index keeps the static pick allocation-free; the RNG
	// consumption (one Intn over the eligible count) is unchanged.
	eligible := 0
	for _, c := range cands {
		if c.Eligible {
			eligible++
		}
	}
	if eligible == 0 {
		return -1
	}
	k := rng.Intn(eligible)
	for i, c := range cands {
		if c.Eligible {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

// PickStatic chooses an option without any status information, for
// immediate selection at routing time (§4.3's simplest variant): a
// uniform pick over all options, eligible or not — the packet will
// wait for the chosen port if it is busy.
func PickStatic(cands []Candidate, rng *sim.RNG) int {
	if len(cands) == 0 {
		return -1
	}
	return rng.Intn(len(cands))
}

package core

import "testing"

// TestCreditSplitEdgeCases pins §4.4's two formulas on the boundary
// geometries a refactor is most likely to bend:
//
//	C_XYA = max(0, C_XY − C_0)
//	C_XYE = min(C_0, C_XY)
//
// odd C_max (integer division places the extra credit in the adaptive
// region), a packet of exactly C_0 credits, a packet larger than the
// adaptive half (must be forced onto the escape path), and the
// zero-credit stall where neither queue admits anything.
func TestCreditSplitEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		split      CreditSplit
		c          int // C_XY, observed availability
		pkt        int // packet size in credits
		wantA      int // C_XYA
		wantE      int // C_XYE
		wantAdmitA bool
		wantAdmitE bool
	}{
		{
			// SplitHalf(17) → C_0 = 8, adaptive cap 9: the odd credit
			// belongs to the adaptive region.
			name:  "odd-cmax-full",
			split: SplitHalf(17), c: 17, pkt: 9,
			wantA: 9, wantE: 8, wantAdmitA: true, wantAdmitE: true,
		},
		{
			name:  "odd-cmax-adaptive-exhausted",
			split: SplitHalf(17), c: 8, pkt: 1,
			wantA: 0, wantE: 8, wantAdmitA: false, wantAdmitE: true,
		},
		{
			// Packet of exactly C_0 = CMax/2 credits: admitted adaptively
			// only when the buffer is completely free.
			name:  "packet-exactly-half-free-buffer",
			split: SplitHalf(16), c: 16, pkt: 8,
			wantA: 8, wantE: 8, wantAdmitA: true, wantAdmitE: true,
		},
		{
			name:  "packet-exactly-half-one-credit-used",
			split: SplitHalf(16), c: 15, pkt: 8,
			wantA: 7, wantE: 8, wantAdmitA: false, wantAdmitE: true,
		},
		{
			// Packet larger than the adaptive half can NEVER go adaptive
			// — the whole-packet VCT rule forces the escape path even
			// with the buffer idle.
			name:  "packet-larger-than-adaptive-half",
			split: SplitHalf(16), c: 16, pkt: 9,
			wantA: 8, wantE: 8, wantAdmitA: false, wantAdmitE: true,
		},
		{
			// Asymmetric ablation split: escape reserve 3 of 10, so the
			// adaptive region holds 7.
			name:  "asymmetric-split",
			split: CreditSplit{CMax: 10, CEscape: 3}, c: 6, pkt: 3,
			wantA: 3, wantE: 3, wantAdmitA: true, wantAdmitE: true,
		},
		{
			// Zero credits: both formulas bottom out, nothing is
			// admitted anywhere — the stall state.
			name:  "zero-credit-stall",
			split: SplitHalf(16), c: 0, pkt: 1,
			wantA: 0, wantE: 0, wantAdmitA: false, wantAdmitE: false,
		},
		{
			name:  "escape-reserve-only",
			split: SplitHalf(16), c: 4, pkt: 4,
			wantA: 0, wantE: 4, wantAdmitA: false, wantAdmitE: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.split
			if got := s.Adaptive(tc.c); got != tc.wantA {
				t.Errorf("Adaptive(%d) = %d, want %d", tc.c, got, tc.wantA)
			}
			if got := s.Escape(tc.c); got != tc.wantE {
				t.Errorf("Escape(%d) = %d, want %d", tc.c, got, tc.wantE)
			}
			if got := s.CanUseAdaptive(tc.c, tc.pkt); got != tc.wantAdmitA {
				t.Errorf("CanUseAdaptive(%d, %d) = %v, want %v", tc.c, tc.pkt, got, tc.wantAdmitA)
			}
			if got := s.CanUseEscape(tc.c, tc.pkt); got != tc.wantAdmitE {
				t.Errorf("CanUseEscape(%d, %d) = %v, want %v", tc.c, tc.pkt, got, tc.wantAdmitE)
			}
			// The paper's formulas verbatim, against the implementation.
			wantA := tc.c - s.CEscape
			if wantA < 0 {
				wantA = 0
			}
			wantE := s.CEscape
			if tc.c < wantE {
				wantE = tc.c
			}
			if s.Adaptive(tc.c) != wantA || s.Escape(tc.c) != wantE {
				t.Errorf("formula mismatch: C_XYA=%d want max(0,%d-%d)=%d, C_XYE=%d want min(%d,%d)=%d",
					s.Adaptive(tc.c), tc.c, s.CEscape, wantA, s.Escape(tc.c), s.CEscape, tc.c, wantE)
			}
			// Partition identity: the two regions tile the availability.
			if s.Adaptive(tc.c)+s.Escape(tc.c) != tc.c {
				t.Errorf("C_XYA + C_XYE = %d, want C_XY = %d", s.Adaptive(tc.c)+s.Escape(tc.c), tc.c)
			}
		})
	}
}

// Package check is the simulator's correctness-tooling layer: a
// runtime invariant auditor that re-verifies the paper's model rules
// while a simulation runs, and (in the test files) a conformance
// harness — metamorphic properties, property-based generators and a
// mutation smoke suite — that proves the auditor would notice if an
// optimization bent the model.
//
// The auditor hooks the same observer seams the metrics collector
// uses: Network-level callbacks sequentially, one single-threaded
// child per shard (fabric.ChainShardHooks) under the sharded engine,
// folded exactly at Finalize. Cheap per-event checks are always on;
// whole-fabric scans (credit audit, live-table escape-CDG acyclicity)
// run on a periodic control-engine tick only when Config.Heavy is set
// (the -check flag of ibsim/ibbench). Heavy ticks execute during the
// single-threaded merged phases of a sharded run and only read state,
// so enabling them never perturbs simulation results — the Figure 3
// golden hash holds with -check on, on both engines.
package check

import (
	"fmt"

	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
)

// Invariant names. Every Violation carries one of these; the mutation
// smoke suite asserts each deliberate model break trips the named
// invariant it targets.
const (
	// InvCreditBound: per (channel, VL), 0 <= credits and
	// credits + peer occupancy <= CMax. (§4.4 flow control: in-flight
	// packets and updates can only lower availability, never invent it.)
	InvCreditBound = fabric.AuditCreditBound
	// InvCreditSplit: the §4.4 identities C_XYA = max(0, C_XY − C_0),
	// C_XYE = min(C_0, C_XY), C_XYA + C_XYE = C_XY, and well-formedness
	// of the configured split (0 < C_0 < CMax = BufferCredits).
	InvCreditSplit = fabric.AuditCreditSplit
	// InvCreditOccupancy: a VL buffer's occupancy counter equals the
	// sum of its entries' credits.
	InvCreditOccupancy = fabric.AuditCreditOccupancy
	// InvCreditsIntact: with the network fully drained, every channel
	// sees its full credit count again (credits were neither lost nor
	// duplicated over the run).
	InvCreditsIntact = "credits-intact"
	// InvAdaptiveAdmission: an adaptive routing option is only taken
	// when the next hop's ADAPTIVE queue has room for the whole packet:
	// C_XYA = max(0, C_XY − C_0) >= packet credits (§4.4).
	InvAdaptiveAdmission = "adaptive-admission"
	// InvEscapeAdmission: any other hop (escape, or delivery into a CA)
	// requires total room for the whole packet: C_XY >= packet credits
	// (virtual cut-through, §4.4).
	InvEscapeAdmission = "escape-admission"
	// InvEscapeCDGAcyclic: the escape paths programmed in the LIVE
	// forwarding tables form an acyclic channel dependency graph —
	// Duato's deadlock-freedom condition (§3), re-checked against what
	// the switches actually execute rather than what the subnet manager
	// computed.
	InvEscapeCDGAcyclic = "escape-cdg-acyclic"
	// InvDeterministicOrder: packets of a flow sent with deterministic
	// service (DLID LSB 0, §4.2) are delivered in injection order.
	InvDeterministicOrder = "deterministic-order"
	// InvPacketConservation: once drained, every injected packet is
	// delivered, lost with a counted cause, or still queued — nothing
	// vanishes (injected = delivered + lost + in-flight).
	InvPacketConservation = "packet-conservation"
	// InvDeadlock: the event queue drained while packets were still
	// buffered — nothing can ever move them again.
	InvDeadlock = "deadlock"
)

// Config controls the auditor. The zero value enables exactly the
// cheap always-on checks.
type Config struct {
	// Heavy enables the periodic whole-fabric scans (credit audit,
	// live-table escape-CDG acyclicity) on a control-engine tick.
	Heavy bool
	// Every is the heavy tick period (default 5_000 ns, matching the
	// fault watchdog's sampling cadence).
	Every sim.Time
	// MaxViolations caps recorded violations per context so a systemic
	// breach doesn't balloon memory (default 64); counting continues.
	MaxViolations int
}

func (c Config) withDefaults() Config {
	if c.Every <= 0 {
		c.Every = 5_000
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 64
	}
	return c
}

// Violation is one observed invariant breach.
type Violation struct {
	At        sim.Time
	Invariant string
	Detail    string
}

// Error implements error so runners can surface the first violation
// directly.
func (v Violation) Error() string {
	return fmt.Sprintf("check: %s at t=%d: %s", v.Invariant, v.At, v.Detail)
}

// Report is the auditor's folded end-of-run summary.
type Report struct {
	// Created and Delivered count packets over the whole run (not a
	// measurement window — conservation needs totals).
	Created   uint64
	Delivered uint64
	// HopChecks counts per-hop admission verifications performed.
	HopChecks uint64
	// HeavyTicks counts whole-fabric scan ticks (0 unless Config.Heavy).
	HeavyTicks uint64
	// Violations lists recorded breaches, per-shard children first in
	// shard order, then control-engine (heavy/finalize) findings.
	// ViolationCount keeps counting past the MaxViolations cap.
	Violations     []Violation
	ViolationCount uint64
}

// Err returns the first violation as an error, or nil when clean.
func (r Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return r.Violations[0]
}

// Has reports whether any recorded violation carries the named
// invariant (mutation-suite assertion helper).
func (r Report) Has(invariant string) bool {
	for _, v := range r.Violations {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

// flowKey identifies one (source, destination) packet flow.
type flowKey struct{ src, dst int }

// child is the per-execution-context auditor state. Sequentially there
// is one; under the shard engine one per shard, each driven only by
// its own shard's single-threaded event loop, merged at Finalize.
// Deliveries of a flow all execute at the destination host's shard, so
// each child observes complete flows and the in-order check needs no
// cross-child state.
type child struct {
	a          *Auditor
	created    uint64
	delivered  uint64
	hopChecks  uint64
	violations []Violation
	count      uint64
	lastDetSeq map[flowKey]uint64
}

// Auditor re-verifies model invariants from the fabric's observer
// hooks. Build with Attach; read results with Finalize.
type Auditor struct {
	net *fabric.Network
	cfg Config

	children []*child
	ticker   *sim.Ticker

	// Control-context findings (heavy ticks, finalize checks).
	violations []Violation
	count      uint64

	final     Report
	finalized bool

	// orderExempt disables the in-order check when the configuration
	// legitimately reorders deterministic packets: source multipath
	// spreads one flow over several paths, and drop/retry re-injects
	// packets behind their successors.
	orderExempt bool
}

// Attach hooks an auditor onto net. Sequentially it chains the
// Network-level callbacks (after whatever collector/tracer is already
// there); under the shard engine it registers one child per shard via
// ChainShardHooks, exactly like the metrics collector. With cfg.Heavy
// it also starts the whole-fabric scan ticker on the control engine.
// Attach must come after other observers so their callbacks keep
// running even when an audit panics under test harnesses.
func Attach(net *fabric.Network, cfg Config) *Auditor {
	a := &Auditor{
		net:         net,
		cfg:         cfg.withDefaults(),
		orderExempt: net.Cfg.SourceMultipath > 1 || net.Cfg.Retry.Enabled(),
	}
	if sc := net.ShardCount(); sc > 1 {
		for i := 0; i < sc; i++ {
			ch := a.newChild()
			net.ChainShardHooks(i, fabric.ShardHooks{
				OnCreated:   ch.onCreated,
				OnDelivered: ch.onDelivered,
				OnHop:       ch.onHop,
			})
		}
	} else {
		ch := a.newChild()
		prevCreated, prevDelivered, prevHop := net.OnCreated, net.OnDelivered, net.OnHop
		net.OnCreated = func(p *ib.Packet) {
			if prevCreated != nil {
				prevCreated(p)
			}
			ch.onCreated(p)
		}
		net.OnDelivered = func(p *ib.Packet) {
			if prevDelivered != nil {
				prevDelivered(p)
			}
			ch.onDelivered(p)
		}
		net.OnHop = func(p *ib.Packet, sw int, out ib.PortID, adaptive bool) {
			if prevHop != nil {
				prevHop(p, sw, out, adaptive)
			}
			ch.onHop(p, sw, out, adaptive)
		}
	}
	if a.cfg.Heavy {
		a.ticker = sim.NewTicker(net.Engine, a.cfg.Every, a.heavyTick)
		a.ticker.Start()
	}
	return a
}

func (a *Auditor) newChild() *child {
	ch := &child{a: a, lastDetSeq: make(map[flowKey]uint64)}
	a.children = append(a.children, ch)
	return ch
}

func (c *child) report(v Violation) {
	c.count++
	if len(c.violations) < c.a.cfg.MaxViolations {
		c.violations = append(c.violations, v)
	}
}

func (a *Auditor) report(v Violation) {
	a.count++
	if len(a.violations) < a.cfg.MaxViolations {
		a.violations = append(a.violations, v)
	}
}

func (c *child) onCreated(p *ib.Packet) { c.created++ }

// onDelivered counts the delivery and enforces InvDeterministicOrder:
// within a flow, the subsequence of deterministic-service deliveries
// must carry nondecreasing sequence numbers. Adaptive packets may
// legitimately overtake (§1 names that the price of adaptivity).
func (c *child) onDelivered(p *ib.Packet) {
	c.delivered++
	if c.a.orderExempt || p.Adaptive {
		return
	}
	k := flowKey{src: p.Src, dst: p.Dst}
	last, seen := c.lastDetSeq[k]
	if seen && p.SeqNo < last {
		c.report(Violation{
			At:        p.DeliveredAt,
			Invariant: InvDeterministicOrder,
			Detail: fmt.Sprintf("flow %d->%d: deterministic packet seq %d delivered after seq %d",
				p.Src, p.Dst, p.SeqNo, last),
		})
		return
	}
	c.lastDetSeq[k] = p.SeqNo
}

// onHop re-checks the §4.4 admission rule for every forwarding
// decision. OnHop fires synchronously inside the switch's startTx with
// no intervening event, so AuditHopView's post-decrement credits plus
// the packet's own credits reconstruct exactly the availability the
// selector saw.
func (c *child) onHop(p *ib.Packet, sw int, out ib.PortID, adaptive bool) {
	c.hopChecks++
	now, credits, hostFacing, ok := c.a.net.Switches[sw].AuditHopView(out, p.SL)
	if !ok {
		return
	}
	pre := credits + p.Credits()
	split := c.a.net.Cfg.Split
	if adaptive && !hostFacing {
		if !split.CanUseAdaptive(pre, p.Credits()) {
			c.report(Violation{
				At:        now,
				Invariant: InvAdaptiveAdmission,
				Detail: fmt.Sprintf("switch %d port %d: packet %d (%d credits) admitted adaptively with C_XY=%d, C_XYA=%d (C_0=%d)",
					sw, out, p.ID, p.Credits(), pre, split.Adaptive(pre), split.CEscape),
			})
		}
		return
	}
	if !split.CanUseEscape(pre, p.Credits()) {
		c.report(Violation{
			At:        now,
			Invariant: InvEscapeAdmission,
			Detail: fmt.Sprintf("switch %d port %d: packet %d (%d credits) sent with only %d credits available",
				sw, out, p.ID, p.Credits(), pre),
		})
	}
}

// heavyTick runs the whole-fabric scans. It executes on the control
// engine — single-threaded merged phases under the shard engine, so
// scanning every shard's state is safe — and follows the watchdog's
// self-stop protocol: once nothing else is pending, the auditor is the
// only thing left alive and stops rescheduling (reporting a deadlock
// if packets are still buffered).
func (a *Auditor) heavyTick(now sim.Time) (stop bool) {
	a.net.AuditCredits(func(class, detail string) {
		a.report(Violation{At: now, Invariant: class, Detail: detail})
	})
	a.checkEscapeCDG(now)
	if a.net.PendingEvents() == 0 {
		if inFlight := a.net.InFlight(); inFlight > 0 {
			a.report(Violation{
				At:        now,
				Invariant: InvDeadlock,
				Detail:    fmt.Sprintf("event queue empty with %d packets in flight", inFlight),
			})
		}
		return true
	}
	return false
}

// Finalize stops the heavy ticker, folds the per-shard children and
// runs the end-of-run checks, returning the combined report. The fold
// is exact for the same reason the metrics collector's is: the
// children's counters sum disjoint event sets, so totals are
// bit-identical to a sequential accumulation; violation lists
// concatenate in shard order (each list is internally ordered by its
// shard's event stream). Calling Finalize twice returns the same
// report.
//
// The strict end-state checks (deadlock, packet conservation, credit
// restoration) need a decided end state: they run only when no event
// is pending anywhere beyond the auditor's own parked tick. A run cut
// off at its horizon with traffic still in flight — or sharing the
// engine with a still-armed fault watchdog — skips them rather than
// guessing.
func (a *Auditor) Finalize() Report {
	if a.finalized {
		return a.final
	}
	a.finalized = true
	if a.ticker != nil {
		a.ticker.Stop()
	}
	r := Report{}
	for _, ch := range a.children {
		r.Created += ch.created
		r.Delivered += ch.delivered
		r.HopChecks += ch.hopChecks
		r.ViolationCount += ch.count
		r.Violations = append(r.Violations, ch.violations...)
	}
	a.children = nil

	now := a.net.Engine.Now()
	split := a.net.Cfg.Split
	if split.CEscape <= 0 || split.CEscape >= split.CMax || split.CMax != a.net.Cfg.BufferCredits {
		a.report(Violation{
			At:        now,
			Invariant: InvCreditSplit,
			Detail: fmt.Sprintf("split ill-formed: CMax=%d CEscape=%d BufferCredits=%d (want 0 < C_0 < CMax = BufferCredits)",
				split.CMax, split.CEscape, a.net.Cfg.BufferCredits),
		})
	}
	pending := a.net.PendingEvents()
	if a.ticker != nil && a.ticker.Scheduled() {
		pending--
	}
	if pending == 0 {
		inFlight := a.net.InFlight()
		if inFlight > 0 {
			a.report(Violation{
				At:        now,
				Invariant: InvDeadlock,
				Detail:    fmt.Sprintf("event queue empty with %d packets in flight", inFlight),
			})
		}
		lost := a.net.FaultTotals().Lost
		if r.Created != r.Delivered+lost+uint64(inFlight) {
			a.report(Violation{
				At:        now,
				Invariant: InvPacketConservation,
				Detail: fmt.Sprintf("created %d != delivered %d + lost %d + in-flight %d",
					r.Created, r.Delivered, lost, inFlight),
			})
		}
		if inFlight == 0 {
			if err := a.net.CreditsIntact(); err != nil {
				a.report(Violation{At: now, Invariant: InvCreditsIntact, Detail: err.Error()})
			}
		}
	}
	if a.ticker != nil {
		r.HeavyTicks = a.ticker.Ticks()
	}
	r.ViolationCount += a.count
	if room := a.cfg.MaxViolations - len(r.Violations); room > 0 {
		if len(a.violations) > room {
			a.violations = a.violations[:room]
		}
		r.Violations = append(r.Violations, a.violations...)
	}
	a.violations = nil
	a.final = r
	return r
}

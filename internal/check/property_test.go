package check_test

// Property-based conformance: generated geometries and workloads —
// including a fault campaign with staged reconfiguration — run under
// the full heavy auditor and must come back clean. The generators
// explore corners no curated test pins (odd degrees, mixed adaptive
// fractions, recovering fabrics); the auditor supplies the oracle.

import (
	"testing"

	"ibasim/internal/experiments"
	"ibasim/internal/faults"
	"ibasim/internal/topology"
	"ibasim/internal/traffic"
)

// propertySpec builds a short checked run over a generated topology.
func propertySpec(t *testing.T, switches, links, mr int, topoSeed, seed uint64, frac float64) experiments.RunSpec {
	t.Helper()
	topo, err := topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches: switches, HostsPerSwitch: 4, InterSwitch: links, Seed: topoSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := metaScale()
	spec := sc.Spec(topo, mr, 32, frac, traffic.Uniform{NumHosts: topo.NumHosts()}, seed, true)
	spec.Traffic.LoadBytesPerNsPerHost = 0.05
	spec.Check = true
	return spec
}

// TestPropertyRandomTopologiesAudited sweeps generated configurations
// across the evaluation envelope; every run must finish with zero
// violations and a demonstrably active auditor.
func TestPropertyRandomTopologiesAudited(t *testing.T) {
	cases := []struct {
		switches, links, mr int
		topoSeed, seed      uint64
		frac                float64
	}{
		{8, 4, 2, 11, 1, 1},
		{16, 4, 4, 12, 2, 0.5},
		{16, 6, 2, 13, 3, 0.25},
		{24, 4, 2, 14, 4, 0},
		{32, 5, 3, 15, 5, 0.9},
	}
	for _, c := range cases {
		spec := propertySpec(t, c.switches, c.links, c.mr, c.topoSeed, c.seed, c.frac)
		res, err := experiments.Run(spec)
		if err != nil {
			t.Fatalf("case %+v: %v", c, err)
		}
		if res.Audit.Violations != 0 {
			t.Fatalf("case %+v: %d violations, first: %s", c, res.Audit.Violations, res.Audit.First)
		}
		if res.Audit.HopChecks == 0 || res.Audit.HeavyTicks == 0 {
			t.Fatalf("case %+v: auditor idle: %+v", c, res.Audit)
		}
	}
}

// TestPropertyFaultCampaignAudited runs a randomized link-flap
// campaign with staged SM recovery under the heavy auditor: drops,
// retries and mid-flight reconfigurations must never breach a credit,
// admission or CDG invariant. (The drained end-state checks stand
// down here by design — the watchdog shares the engine — so this
// exercises the runtime checks under the most state transitions.)
func TestPropertyFaultCampaignAudited(t *testing.T) {
	spec := propertySpec(t, 16, 4, 2, 21, 6, 0.75)
	camp, err := faults.Load("rand:2:15000@40000-90000; autoreconfig:8000")
	if err != nil {
		t.Fatal(err)
	}
	spec.Faults = camp
	spec.FaultSeed = 7
	res, err := experiments.Run(spec)
	if err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	if res.Audit.Violations != 0 {
		t.Fatalf("campaign run: %d violations, first: %s", res.Audit.Violations, res.Audit.First)
	}
	if res.Degraded.WatchdogViolations != 0 {
		t.Fatalf("watchdog breaches: %d, first: %s", res.Degraded.WatchdogViolations, res.Degraded.FirstViolation)
	}
	if res.Degraded.FaultsInjected == 0 || res.Degraded.Reconfigs == 0 {
		t.Fatalf("campaign did not exercise recovery: %+v", res.Degraded)
	}
}

package check_test

import (
	"testing"

	"ibasim/internal/check"
	"ibasim/internal/topology"
)

// TestInjectZeroAllocsWithAuditor extends the fabric's injection
// alloc gate across the auditor's always-on hooks: with the cheap
// checks attached (the default in every experiments run), creating a
// packet, injecting it and running it through to delivery must stay
// at the slab-refill amortized allocation rate. The hop re-check and
// the in-order bookkeeping both run on warm, fixed-size state.
func TestInjectZeroAllocsWithAuditor(t *testing.T) {
	topo, err := topology.Line(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	net := buildNet(t, topo, 1, 2, true)
	check.Attach(net, check.Config{})

	for name, adaptive := range map[string]bool{"adaptive": true, "deterministic": false} {
		adaptive := adaptive
		t.Run(name, func(t *testing.T) {
			h := net.Hosts[0]
			inject := func() {
				h.Inject(net.NewPacket(0, 7, 32, adaptive))
				net.Engine.RunUntilIdle()
			}
			for i := 0; i < 600; i++ { // warm pools and span a slab boundary
				inject()
			}
			if allocs := testing.AllocsPerRun(512, inject); allocs > 0.02 {
				t.Fatalf("steady-state injection with auditor allocates %v objects per packet, want amortized slab refill only", allocs)
			}
		})
	}
}

package check

import (
	"ibasim/internal/ib"
	"ibasim/internal/routing"
	"ibasim/internal/sim"
)

// checkEscapeCDG re-verifies Duato's deadlock-freedom condition (§3)
// against the LIVE forwarding tables: follow the escape slot (LID
// block base, §4.1) of every switch toward every destination, build
// the channel dependency graph those hops induce, and demand it stay
// acyclic. The subnet manager proves this for the tables it COMPUTES
// (routing.VerifyDeadlockFree); this check proves it for the tables
// the switches EXECUTE — catching anything that corrupts them after
// programming (a botched reconfiguration, a misordered slot write).
//
// During a staged reconfiguration some switches deliberately run the
// old table while others run the new one; mixing the two epochs in a
// single CDG would flag cycles the escape-only drain protocol makes
// unreachable, so the scan skips ticks where any switch is still in
// its escape-only transition. Dead switches keep their (stale, still
// acyclic) tables and need no special case.
func (a *Auditor) checkEscapeCDG(now sim.Time) {
	net := a.net
	for _, sw := range net.Switches {
		if sw.EscapeOnly() {
			return
		}
	}
	n := net.Topo.NumSwitches
	dep := routing.CDGFromNextHops(n, net.Topo.NumHosts(), func(s, h int) (int, bool) {
		if net.Topo.HostSwitch(h) == s {
			return 0, false
		}
		port := net.Switches[s].Table().Get(net.Plan.BaseLID(h))
		if port == ib.InvalidPort {
			return 0, false
		}
		return net.NeighborAt(s, port)
	})
	if cycle := routing.FindCycle(dep); cycle != nil {
		a.report(Violation{
			At:        now,
			Invariant: InvEscapeCDGAcyclic,
			Detail:    "live escape tables form a cyclic channel dependency:" + routing.FormatCycle(cycle, n),
		})
	}
}

package check_test

// The mutation smoke suite: each test deliberately breaks one paper
// rule — through the fabric's Tamper hooks, built for exactly this —
// and asserts the invariant auditor reports the breach under its
// expected name. This is the proof that the auditor is not
// vacuous: a future refactor that introduces one of these bug classes
// will trip the same named invariant in any -check run.

import (
	"testing"

	"ibasim/internal/check"
	"ibasim/internal/fabric"
	"ibasim/internal/ib"
	"ibasim/internal/sim"
	"ibasim/internal/subnet"
	"ibasim/internal/topology"
	"ibasim/internal/traffic"
)

// buildNet wires a configured fabric over topo: address plan with the
// given LMC, subnet tables with MR routing options, enhanced switches.
func buildNet(t *testing.T, topo *topology.Topology, lmc uint, mr int, enhanced bool) *fabric.Network {
	t.Helper()
	plan, err := ib.NewAddressPlan(topo.NumHosts(), lmc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fabric.DefaultConfig()
	cfg.AdaptiveSwitches = enhanced
	net, err := fabric.NewNetwork(topo, plan, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subnet.Configure(net, subnet.Options{MaxRoutingOptions: mr, Root: -1}); err != nil {
		t.Fatal(err)
	}
	return net
}

// irregularNet builds the paper's standard evaluation fabric: a random
// irregular topology with 4 inter-switch links and 4 hosts per switch.
func irregularNet(t *testing.T, switches int, lmc uint, mr int) *fabric.Network {
	t.Helper()
	topo, err := topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches: switches, HostsPerSwitch: 4, InterSwitch: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buildNet(t, topo, lmc, mr, true)
}

// runTraffic drives a generator workload to genEnd and lets the run
// drain until horizon.
func runTraffic(t *testing.T, net *fabric.Network, tc traffic.Config, genEnd, horizon sim.Time) {
	t.Helper()
	gen, err := traffic.NewGenerator(net, tc)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start(genEnd)
	net.Run(horizon)
}

// expect asserts the report contains the named invariant and the run
// was not silently clean.
func expect(t *testing.T, rep check.Report, invariant string) {
	t.Helper()
	if rep.Has(invariant) {
		return
	}
	names := make([]string, 0, len(rep.Violations))
	for _, v := range rep.Violations {
		names = append(names, v.Invariant)
	}
	t.Fatalf("mutation not detected: want invariant %q, got %d violations %v", invariant, rep.ViolationCount, names)
}

// TestMutationBaseline pins the suite's control: the exact fabric and
// workload the mutations corrupt reports ZERO violations when honest,
// so a detection below can only come from the seeded bug.
func TestMutationBaseline(t *testing.T) {
	net := irregularNet(t, 16, 1, 2)
	aud := check.Attach(net, check.Config{Heavy: true})
	runTraffic(t, net, traffic.Config{
		Pattern: traffic.Uniform{NumHosts: net.Topo.NumHosts()}, PacketSize: 256,
		AdaptiveFraction: 1, LoadBytesPerNsPerHost: 0.06, Seed: 7,
	}, 60_000, 120_000)
	rep := aud.Finalize()
	if rep.ViolationCount != 0 {
		t.Fatalf("honest run reported %d violations, first: %v", rep.ViolationCount, rep.Err())
	}
	if rep.HopChecks == 0 || rep.HeavyTicks == 0 || rep.Created == 0 || rep.Delivered == 0 {
		t.Fatalf("auditor idle: %+v", rep)
	}
}

// Mutation 1: forge credits a transmitter never earned (+delta). The
// §4.4 counter now exceeds the physical buffer; the heavy scan's
// bound check c <= CMax catches it.
func TestMutationForgedCredits(t *testing.T) {
	net := irregularNet(t, 8, 1, 2)
	s := 0
	nb := net.Topo.Neighbors(s)[0]
	if err := net.TamperCredits(s, nb, 0, +5); err != nil {
		t.Fatal(err)
	}
	aud := check.Attach(net, check.Config{Heavy: true})
	net.Run(6_000)
	expect(t, aud.Finalize(), check.InvCreditBound)
}

// Mutation 2: leak credits (-delta), the classic "drop path forgot to
// return buffer space" bug. Every runtime bound still holds — only
// the drained end-state check sees the channel never recover its full
// credit count. Cheap checks alone (no Heavy) must catch it.
func TestMutationLeakedCredits(t *testing.T) {
	net := irregularNet(t, 8, 1, 2)
	s := 0
	nb := net.Topo.Neighbors(s)[0]
	if err := net.TamperCredits(s, nb, 0, -3); err != nil {
		t.Fatal(err)
	}
	aud := check.Attach(net, check.Config{})
	net.Run(100)
	expect(t, aud.Finalize(), check.InvCreditsIntact)
}

// Mutation 3: corrupt a buffer's occupancy counter so it disagrees
// with the credits its entries actually hold.
func TestMutationCorruptOccupancy(t *testing.T) {
	net := irregularNet(t, 8, 1, 2)
	s := 0
	nb := net.Topo.Neighbors(s)[0]
	if err := net.TamperOccupancy(nb, s, 0, +2); err != nil {
		t.Fatal(err)
	}
	aud := check.Attach(net, check.Config{Heavy: true})
	net.Run(6_000)
	expect(t, aud.Finalize(), check.InvCreditOccupancy)
}

// Mutation 4: misorder the §4.1 interleaved table by one slot — every
// block's escape entry now holds a minimal adaptive hop. Minimal
// routing on an irregular network carries cyclic channel dependencies,
// so the live-table escape-CDG scan must flag Duato's condition.
func TestMutationSwappedTableSlots(t *testing.T) {
	net := irregularNet(t, 16, 1, 2)
	net.TamperSwapTableSlots()
	aud := check.Attach(net, check.Config{Heavy: true})
	net.Run(6_000)
	expect(t, aud.Finalize(), check.InvEscapeCDGAcyclic)
}

// Mutation 5: skip the whole-packet adaptive-room check — admit a
// packet to an adaptive queue on TOTAL room (C_XY) instead of
// adaptive room (C_XYA, §4.4). Under congestion packets get admitted
// into the escape reserve; the per-hop admission re-check fires.
func TestMutationSkipAdaptiveRoomCheck(t *testing.T) {
	net := irregularNet(t, 8, 1, 2)
	net.SetTamper(fabric.Tamper{SkipAdaptiveRoomCheck: true})
	aud := check.Attach(net, check.Config{})
	runTraffic(t, net, traffic.Config{
		Pattern: traffic.Uniform{NumHosts: net.Topo.NumHosts()}, PacketSize: 256,
		AdaptiveFraction: 1, LoadBytesPerNsPerHost: 0.12, Seed: 3,
	}, 60_000, 150_000)
	expect(t, aud.Finalize(), check.InvAdaptiveAdmission)
}

// Mutation 6: drop the escape fallback — adaptive packets whose
// options are all busy just wait instead of taking the up*/down*
// escape path. On a credit cycle (a ring with antipodal traffic, the
// textbook construction) the adaptive sub-network alone deadlocks;
// the auditor must call it by name once the event queue starves.
func TestMutationNoEscapeFallback(t *testing.T) {
	const n = 8
	ring := topology.New(n, 1, 3)
	for i := 0; i < n; i++ {
		if err := ring.AddLink(i, (i+1)%n); err != nil {
			t.Fatal(err)
		}
	}
	net := buildNet(t, ring, 1, 2, true)
	net.SetTamper(fabric.Tamper{NoEscapeFallback: true})
	aud := check.Attach(net, check.Config{Heavy: true})
	for i := range net.Hosts {
		h := net.Hosts[i]
		dst := (h.ID() + n/2) % n
		h.Engine().Schedule(0, func() {
			for k := 0; k < 64; k++ {
				h.Inject(net.NewPacket(h.ID(), dst, 256, true))
			}
		})
	}
	net.Run(400_000)
	expect(t, aud.Finalize(), check.InvDeadlock)
}

// Mutation 7: ignore the §4.2 service-mode bit and route deterministic
// (DLID LSB 0) packets through their block's adaptive options. Under
// congestion flows diverge across paths and deliveries overtake; the
// in-order check fires.
func TestMutationAdaptiveDeterministic(t *testing.T) {
	net := irregularNet(t, 16, 2, 4)
	net.SetTamper(fabric.Tamper{AdaptiveDeterministic: true})
	aud := check.Attach(net, check.Config{})
	runTraffic(t, net, traffic.Config{
		Pattern: traffic.Uniform{NumHosts: net.Topo.NumHosts()}, PacketSize: 256,
		AdaptiveFraction: 0, LoadBytesPerNsPerHost: 0.12, Seed: 5,
	}, 60_000, 150_000)
	expect(t, aud.Finalize(), check.InvDeterministicOrder)
}

// Mutation 8: misconfigure the credit split so the escape reserve
// swallows the whole buffer (C_0 = CMax), bypassing Config.Validate.
// The split well-formedness check runs unconditionally at Finalize.
func TestMutationIllFormedSplit(t *testing.T) {
	net := irregularNet(t, 8, 1, 2)
	net.TamperSplit(16, 16)
	aud := check.Attach(net, check.Config{})
	net.Run(100)
	expect(t, aud.Finalize(), check.InvCreditSplit)
}

package check_test

// Metamorphic properties: transformations of a run whose effect on
// the observables is known a priori — equality or a one-sided
// inequality — without knowing the right absolute numbers. They catch
// model bugs that per-event invariants cannot (a plausible-looking
// result that shifts when it must not).

import (
	"reflect"
	"testing"

	"ibasim/internal/experiments"
	"ibasim/internal/topology"
	"ibasim/internal/traffic"
)

// metaScale is QuickScale with shorter windows; these tests run whole
// simulations several times over.
func metaScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.Warmup = 20_000
	sc.Measure = 80_000
	sc.DrainGrace = 20_000
	return sc
}

func metaTopo(t *testing.T, switches int, seed uint64) *topology.Topology {
	t.Helper()
	topo, err := topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches: switches, HostsPerSwitch: 4, InterSwitch: 4, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestMetamorphicLMCInvariance: widening the LMC relabels every
// destination into a larger LID block, but at fixed MR the subnet
// manager fills the extra slots by cycling the SAME adaptive options
// (§4.1) — so LID addressing is a pure relabeling and every
// observable must be bit-identical. A drift means LID layout leaked
// into routing or arbitration somewhere it must not.
func TestMetamorphicLMCInvariance(t *testing.T) {
	topo := metaTopo(t, 16, 2)
	sc := metaScale()
	pattern := traffic.Uniform{NumHosts: topo.NumHosts()}

	base := sc.Spec(topo, 2, 32, 0.75, pattern, 9, true)
	base.Traffic.LoadBytesPerNsPerHost = 0.05
	wide := base
	wide.LMC = 2 // base.LMC is 1 (lmcFor(MR 2)); 4-slot blocks, same options

	resBase, err := experiments.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	resWide, err := experiments.Run(wide)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resBase, resWide) {
		t.Fatalf("LMC widening changed observables:\nLMC1: %+v\nLMC2: %+v", resBase, resWide)
	}
}

// TestMetamorphicLMCInvarianceFamilies: the LMC-widening relabeling
// argument is family-independent — D-mod-K fat-tree and
// dimension-order torus escape routings program the same options into
// the wider LID blocks, so their observables must be bit-identical
// too. This closes the loop on the structured families through the
// same seam the irregular test uses.
func TestMetamorphicLMCInvarianceFamilies(t *testing.T) {
	sc := metaScale()
	for _, name := range []string{"fattree:2,3", "torus:3x3"} {
		t.Run(name, func(t *testing.T) {
			fam, err := experiments.ParseFamily(name)
			if err != nil {
				t.Fatal(err)
			}
			topo, err := fam.Topology(topology.IrregularSpec{HostsPerSwitch: 2})
			if err != nil {
				t.Fatal(err)
			}
			pattern := traffic.Uniform{NumHosts: topo.NumHosts()}
			base := sc.Spec(topo, 2, 32, 0.75, pattern, 9, true)
			base.Routing = fam.Routing()
			base.Traffic.LoadBytesPerNsPerHost = 0.05
			wide := base
			wide.LMC = 2

			resBase, err := experiments.Run(base)
			if err != nil {
				t.Fatal(err)
			}
			resWide, err := experiments.Run(wide)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(resBase, resWide) {
				t.Fatalf("LMC widening changed observables on %s:\nLMC1: %+v\nLMC2: %+v", name, resBase, resWide)
			}
		})
	}
}

// TestMetamorphicMRWideningThroughput: at a saturating load, raising
// MR (more adaptive options per destination) must not reduce accepted
// traffic — the paper's central claim, Figure 3/Table 1. MR 1 is the
// degenerate escape-only (deterministic) subnet.
func TestMetamorphicMRWideningThroughput(t *testing.T) {
	topo := metaTopo(t, 16, 1)
	sc := metaScale()
	pattern := traffic.Uniform{NumHosts: topo.NumHosts()}

	accepted := func(mr int) float64 {
		spec := sc.Spec(topo, mr, 32, 1, pattern, 4, true)
		spec.Traffic.LoadBytesPerNsPerHost = 0.08 // past the deterministic knee
		res, err := experiments.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.AcceptedPerSwitch
	}

	mr1, mr4 := accepted(1), accepted(4)
	if mr4 < mr1 {
		t.Fatalf("MR widening reduced throughput: MR1 accepted %.5f, MR4 accepted %.5f", mr1, mr4)
	}
}

// TestMetamorphicSeedPermutation: runs with different seeds are
// independent simulations, so executing them in any order — or
// interleaved by the sweep's worker pool — must give each seed the
// identical result. Hidden global state (a shared RNG, a leaked
// cache) is exactly what this catches.
func TestMetamorphicSeedPermutation(t *testing.T) {
	topo := metaTopo(t, 8, 3)
	sc := metaScale()
	pattern := traffic.Uniform{NumHosts: topo.NumHosts()}
	seeds := []uint64{1, 2, 3}

	runSeed := func(seed uint64) experiments.RunResult {
		spec := sc.Spec(topo, 2, 32, 1, pattern, seed, true)
		spec.Traffic.LoadBytesPerNsPerHost = 0.04
		res, err := experiments.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	forward := make(map[uint64]experiments.RunResult)
	for _, s := range seeds {
		forward[s] = runSeed(s)
	}
	for i := len(seeds) - 1; i >= 0; i-- {
		s := seeds[i]
		if again := runSeed(s); !reflect.DeepEqual(again, forward[s]) {
			t.Fatalf("seed %d result depends on run order:\nfirst:  %+v\nsecond: %+v", s, forward[s], again)
		}
	}
}

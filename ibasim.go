// Package ibasim is a discrete-event simulator of InfiniBand (IBA)
// subnets that reproduces "Supporting Fully Adaptive Routing in
// InfiniBand Networks" (Martínez, Flich, Robles, López, Duato — IPDPS
// 2003): a spec-compatible switch extension that adds fully adaptive
// routing to IBA via LMC virtual addressing, interleaved forwarding
// tables, and adaptive/escape logical queues inside each VL buffer.
//
// The package offers a high-level API over the internal packages:
// build a workload with Config, run it with Simulate, sweep offered
// load with Sweep, and compare enhanced against stock switches with
// CompareRouting. The experiment harnesses that regenerate the paper's
// Figure 3, Table 1 and Table 2 are exposed through RunFigure3,
// RunTable1 and RunTable2 (also available as the ibbench command).
package ibasim

import (
	"fmt"
	"io"

	"ibasim/internal/core"
	"ibasim/internal/experiments"
	"ibasim/internal/faults"
	"ibasim/internal/sim"
	"ibasim/internal/topology"
	"ibasim/internal/trace"
	"ibasim/internal/traffic"
)

// simTime converts a nanosecond count into the engine's time type.
func simTime(ns int64) sim.Time { return sim.Time(ns) }

// Config describes one simulation: topology shape, routing setup and
// workload. Zero values are invalid; start from DefaultConfig.
type Config struct {
	// Topology selects the topology family in the -topo grammar:
	// "" or "irregular" (the paper's random irregular networks, shaped
	// by the fields below), "fattree:K,N" (k-ary n-tree with D-mod-K
	// escape routing; hosts attach to the leaf row only), or
	// "torus:AxB[xC]" (2D/3D torus with dimension-order escape routing;
	// HostsPerSwitch applies). Structured families ignore Switches,
	// LinksPerSwitch and TopologySeed — their shape is the spec.
	Topology string

	// Irregular shape: a connected random irregular network with
	// LinksPerSwitch inter-switch links per switch (the paper uses 4
	// or 6) and HostsPerSwitch end nodes per switch (the paper uses
	// 4). TopologySeed makes the topology reproducible.
	Switches       int
	HostsPerSwitch int
	LinksPerSwitch int
	TopologySeed   uint64

	// RoutingOptions is the paper's MR: total routing options stored
	// per destination at each switch (1 escape + MR-1 adaptive).
	RoutingOptions int

	// AdaptiveSwitches selects enhanced switches (true) or a stock
	// deterministic IBA subnet (false).
	AdaptiveSwitches bool

	// SourceMultipath (>1) switches the run to the baseline the
	// paper's introduction discusses: plain switches, with this many
	// alternative deterministic paths per destination, one picked at
	// random by the source for each packet. Requires AdaptiveSwitches
	// to be false.
	SourceMultipath int

	// Workload.
	Pattern          string  // "uniform", "bit-reversal", "hot-spot"
	HotSpotFraction  float64 // used when Pattern == "hot-spot"
	PacketSize       int     // bytes (paper: 32 or 256)
	AdaptiveFraction float64 // share of packets requesting adaptive service
	Load             float64 // offered load, bytes/ns/host

	// Measurement window (ns): [Warmup, Warmup+Measure), plus a drain
	// grace for in-flight packets.
	WarmupNs  int64
	MeasureNs int64
	DrainNs   int64

	Seed uint64

	// Scheduler selects the engine's event-queue implementation:
	// "calendar" (the default two-level calendar queue, O(1)
	// amortized) or "heap" (the binary-heap reference). Both dispatch
	// in the identical (at, seq) order; results are bit-exact either
	// way.
	Scheduler string

	// Engine selects the execution engine: "seq" (the default single
	// event loop) or "shard", the conservative-parallel engine that
	// partitions the fabric into Shards shards advancing in windowed
	// lockstep on worker goroutines. Results are bit-exact across
	// engines and shard counts; only wall-clock time changes. Shards
	// defaults to 2 when Engine is "shard"; Partition selects the
	// switch partitioner ("bfs", the locality-preserving default, or
	// "roundrobin").
	Engine    string
	Shards    int
	Partition string

	// LagNs opts a sharded run into relaxed exactness: each shard's
	// conservative window is widened by this many simulated
	// nanoseconds and late cross-shard arrivals are clamped to the
	// receiving shard's clock. 0 (the default) keeps sharded runs
	// bit-identical to the sequential engine; positive lag trades
	// bounded, statistically validated metric error for fewer
	// barriers. Runs stay deterministic for a fixed (Config, LagNs,
	// Shards). Requires Engine "shard".
	LagNs int64

	// Check enables the invariant auditor's heavy periodic scans
	// (whole-fabric credit audit, live-table escape-CDG acyclicity) on
	// top of the always-on cheap checks. Results are bit-identical
	// with or without it, on both engines; Result.Audit reports the
	// verdict.
	Check bool

	// Fuse arms the hop-fusion fast path (on in DefaultConfig): the
	// uncongested arrival→route→arbitrate→depart chain of a hop runs
	// as one fused dispatch instead of a string of delay-0 events.
	// Results are bit-identical either way; turning it off (the
	// -fuse=false CLI flag) keeps the per-hop event engine as the
	// differential oracle. Fusion disarms itself at runtime whenever a
	// packet tracer or tamper model needs to observe individual hops.
	Fuse bool

	// Arb selects the crossbar arbiter: "wake" ("" defaults to it)
	// drains event-driven wait lists, "scan" (the -arb=scan CLI flag)
	// is the full round-robin rescan kept as the differential oracle.
	// Results are bit-identical either way.
	Arb string

	// Ablation knobs (§4.3 and §4.4 design axes). Zero values give
	// the paper's evaluation setup.

	// ImmediateSelection fixes the output port right after the
	// forwarding-table access instead of re-selecting at arbitration
	// time.
	ImmediateSelection bool
	// StaticSelection picks among routing options pseudo-randomly
	// instead of preferring the option with the most free credits.
	StaticSelection bool
	// EscapeReserveCredits overrides the escape queue's share of each
	// VL buffer (default: half of the buffer, the paper's split).
	EscapeReserveCredits int

	// Faults, when non-empty, runs a fault-injection campaign during
	// the simulation: either a spec string ("flap@60000:0-1:20000;
	// autoreconfig:10000") or "@path" naming a JSON campaign file —
	// see faults.Parse for the grammar. A campaign enables host-side
	// send timeouts and bounded retry, staged SM reconfiguration, and
	// the invariant watchdog; Result.Degraded reports the outcome.
	// FaultSeed drives the campaign's randomized elements.
	Faults    string
	FaultSeed uint64
}

// DefaultConfig returns a 16-switch quick-run configuration with the
// paper's switch parameters.
func DefaultConfig() Config {
	return Config{
		Switches:         16,
		HostsPerSwitch:   4,
		LinksPerSwitch:   4,
		TopologySeed:     1,
		RoutingOptions:   2,
		AdaptiveSwitches: true,
		Pattern:          "uniform",
		PacketSize:       32,
		AdaptiveFraction: 1.0,
		Load:             0.02,
		WarmupNs:         50_000,
		MeasureNs:        250_000,
		DrainNs:          50_000,
		Seed:             1,
		Fuse:             true,
	}
}

// Result reports the paper's observables for one run.
type Result struct {
	// OfferedPerSwitch and AcceptedPerSwitch are in bytes/ns/switch.
	OfferedPerSwitch  float64
	AcceptedPerSwitch float64
	// AvgLatencyNs is the mean generation-to-delivery latency;
	// P99LatencyNs bounds the 99th percentile.
	AvgLatencyNs float64
	P99LatencyNs float64
	// PacketsMeasured counts packets in the measurement window.
	PacketsMeasured uint64
	// OutOfOrderFraction is the share of deliveries overtaken by a
	// later packet of their (src, dst) flow — adaptivity's in-order
	// cost (§1).
	OutOfOrderFraction float64
	// ReorderPeakHeld and ReorderAvgDelayNs describe the
	// destination-side reorder buffer that would restore full
	// ordering: peak packets parked and mean added delay.
	ReorderPeakHeld   int
	ReorderAvgDelayNs float64

	// Degraded reports fault-campaign observables (drops by reason,
	// retries, losses, staged-recovery latency, watchdog verdict).
	// Zero unless Config.Faults ran a campaign.
	Degraded Degraded

	// Audit reports the invariant auditor's pass over the run.
	Audit Audit

	// ShardStats is the per-shard imbalance report of a sharded run
	// (Engine "shard"): how evenly the partitioner spread the work and
	// how often the conservative barrier stalled each shard. Nil for
	// sequential runs. An execution artifact — it describes how the
	// run was scheduled, not what the simulation observed.
	ShardStats []ShardStat
}

// ShardStat is one shard's row of the imbalance report.
type ShardStat struct {
	Shard    int    // shard index
	Switches int    // switches owned
	Hosts    int    // hosts owned
	Events   uint64 // events dispatched by this shard's engine
	Windows  uint64 // windows the coordinator activated it for
	Stalled  uint64 // barriers sat out with work pending
	MailsOut uint64 // cross-shard events produced
	MailsIn  uint64 // cross-shard events imported
	Held     uint64 // windows cut short by the held-mail exactness rule
}

// Audit summarizes the invariant auditor: how many per-hop admission
// checks and heavy whole-fabric scans ran, and what they found.
type Audit struct {
	HopChecks  uint64
	HeavyTicks uint64 // 0 unless Config.Check
	Violations int
	// First is the first violation's message ("" when clean).
	First string
}

// Degraded reports how a run behaved under a fault campaign.
type Degraded struct {
	// FaultsInjected, Repairs and Reconfigs count executed failure
	// events, repair events, and completed staged reconfigurations.
	FaultsInjected int
	Repairs        int
	Reconfigs      int

	// Packet drops by reason, plus source-side retries and packets
	// lost for good (retry budget exhausted).
	DroppedUnroutable uint64
	DroppedOnDeadPort uint64
	DroppedTimeout    uint64
	Retries           uint64
	Lost              uint64

	// RerouteDrops counts buffered packets staged recovery discarded.
	RerouteDrops int

	// RecoveryLatencyNs: first fault to first post-reconfiguration
	// delivery; -1 if never observed.
	RecoveryLatencyNs int64

	// Watchdog verdict: audit ticks run, invariant breaches seen, and
	// the first breach's message ("" when clean).
	WatchdogSamples    uint64
	WatchdogViolations int
	FirstViolation     string
}

// Dropped sums the per-reason drop counters.
func (d Degraded) Dropped() uint64 {
	return d.DroppedUnroutable + d.DroppedOnDeadPort + d.DroppedTimeout
}

func degradedFrom(d experiments.DegradedStats) Degraded {
	return Degraded{
		FaultsInjected:     d.FaultsInjected,
		Repairs:            d.Repairs,
		Reconfigs:          d.Reconfigs,
		DroppedUnroutable:  d.DroppedUnroutable,
		DroppedOnDeadPort:  d.DroppedOnDeadPort,
		DroppedTimeout:     d.DroppedTimeout,
		Retries:            d.Retries,
		Lost:               d.Lost,
		RerouteDrops:       d.RerouteDrops,
		RecoveryLatencyNs:  d.RecoveryLatencyNs,
		WatchdogSamples:    d.WatchdogSamples,
		WatchdogViolations: d.WatchdogViolations,
		FirstViolation:     d.FirstViolation,
	}
}

// Point is one load point of a sweep.
type Point struct {
	Offered    float64
	Accepted   float64
	AvgLatency float64
}

// spec translates the public Config into an internal RunSpec.
func (c Config) spec() (experiments.RunSpec, error) {
	if err := c.features(false).Validate(); err != nil {
		return experiments.RunSpec{}, err
	}
	fam, err := experiments.ParseFamily(c.Topology)
	if err != nil {
		return experiments.RunSpec{}, err
	}
	if fam.Irregular() && (c.Switches < 2 || c.HostsPerSwitch < 1 || c.LinksPerSwitch < 1) {
		return experiments.RunSpec{}, fmt.Errorf("ibasim: invalid topology shape %d/%d/%d",
			c.Switches, c.HostsPerSwitch, c.LinksPerSwitch)
	}
	topo, err := fam.Topology(topology.IrregularSpec{
		NumSwitches:    c.Switches,
		HostsPerSwitch: c.HostsPerSwitch,
		InterSwitch:    c.LinksPerSwitch,
		Seed:           c.TopologySeed,
	})
	if err != nil {
		return experiments.RunSpec{}, err
	}
	pattern, err := patternFor(c, topo.NumHosts())
	if err != nil {
		return experiments.RunSpec{}, err
	}
	sc := experiments.QuickScale()
	sc.Warmup = simTime(c.WarmupNs)
	sc.Measure = simTime(c.MeasureNs)
	sc.DrainGrace = simTime(c.DrainNs)
	sc.Unfused = !c.Fuse
	sc.Arb = c.Arb
	mr := c.RoutingOptions
	if c.SourceMultipath > mr {
		mr = c.SourceMultipath // the LID block must hold every path
	}
	spec := sc.Spec(topo, mr, c.PacketSize, c.AdaptiveFraction, pattern, c.Seed, c.AdaptiveSwitches)
	spec.Routing = fam.Routing()
	spec.MR = c.RoutingOptions
	spec.SourceMultipath = c.SourceMultipath
	spec.Fabric.SourceMultipath = c.SourceMultipath
	spec.Traffic.LoadBytesPerNsPerHost = c.Load
	spec.Fabric.Selection.AtArbitration = !c.ImmediateSelection
	spec.Fabric.Selection.StatusAware = !c.StaticSelection
	if c.EscapeReserveCredits > 0 {
		split, err := core.NewCreditSplit(spec.Fabric.BufferCredits, c.EscapeReserveCredits)
		if err != nil {
			return experiments.RunSpec{}, err
		}
		spec.Fabric.Split = split
	}
	if c.Scheduler != "" {
		kind, err := sim.ParseScheduler(c.Scheduler)
		if err != nil {
			return experiments.RunSpec{}, err
		}
		spec.Fabric.EngineOpts = append(spec.Fabric.EngineOpts, sim.WithScheduler(kind))
	}
	// Engine compatibility was already settled by the FeatureSet table
	// above; here only the shard geometry remains to apply.
	if c.Engine == "shard" {
		shards := c.Shards
		if shards == 0 {
			shards = 2
		}
		spec.Fabric.Shards = shards
		spec.Fabric.Partition = c.Partition
		spec.Fabric.Lag = simTime(c.LagNs)
	}
	spec.Check = c.Check
	if c.Faults != "" {
		camp, err := faults.Load(c.Faults)
		if err != nil {
			return experiments.RunSpec{}, err
		}
		spec.Faults = camp
		spec.FaultSeed = c.FaultSeed
	}
	return spec, nil
}

func patternFor(c Config, numHosts int) (traffic.Pattern, error) {
	ps := experiments.PatternSpec{Kind: c.Pattern, Fraction: c.HotSpotFraction}
	return experiments.BuildPattern(ps, numHosts, c.Seed)
}

// resultFrom converts an internal run result to the public shape.
func resultFrom(res experiments.RunResult) Result {
	var stats []ShardStat
	for _, s := range res.ShardStats {
		stats = append(stats, ShardStat{
			Shard:    s.Shard,
			Switches: s.Switches,
			Hosts:    s.Hosts,
			Events:   s.Events,
			Windows:  s.Windows,
			Stalled:  s.Stalled,
			MailsOut: s.MailsOut,
			MailsIn:  s.MailsIn,
			Held:     s.Held,
		})
	}
	return Result{
		ShardStats:         stats,
		OfferedPerSwitch:   res.OfferedPerSwitch,
		AcceptedPerSwitch:  res.AcceptedPerSwitch,
		AvgLatencyNs:       res.AvgLatencyNs,
		P99LatencyNs:       res.P99LatencyNs,
		PacketsMeasured:    res.PacketsMeasured,
		OutOfOrderFraction: res.OutOfOrderFraction,
		ReorderPeakHeld:    res.ReorderPeakHeld,
		ReorderAvgDelayNs:  res.ReorderAvgDelayNs,
		Degraded:           degradedFrom(res.Degraded),
		Audit: Audit{
			HopChecks:  res.Audit.HopChecks,
			HeavyTicks: res.Audit.HeavyTicks,
			Violations: res.Audit.Violations,
			First:      res.Audit.First,
		},
	}
}

// Simulate runs one simulation and returns its observables. Under a
// fault campaign (Config.Faults) a non-nil error with a partial
// Result means the campaign itself failed — e.g. a reconfiguration
// found the surviving topology disconnected.
func Simulate(c Config) (Result, error) {
	spec, err := c.spec()
	if err != nil {
		return Result{}, err
	}
	res, err := experiments.Run(spec)
	if err != nil {
		return resultFrom(res), err
	}
	return resultFrom(res), nil
}

// TraceResult augments a Result with tracer aggregates.
type TraceResult struct {
	Result
	// AdaptiveShare is the fraction of switch forwarding decisions
	// that used an adaptive routing option (vs the escape option).
	AdaptiveShare float64
	// EventsRecorded counts lifecycle events seen (created, per-hop,
	// delivered), including those evicted from the bounded ring.
	EventsRecorded uint64
}

// SimulateTraced runs one simulation with a packet tracer attached,
// writing the last `capacity` lifecycle events to w (pass nil to only
// collect aggregates).
func SimulateTraced(c Config, capacity int, w io.Writer) (TraceResult, error) {
	if err := c.features(true).Validate(); err != nil {
		return TraceResult{}, err
	}
	spec, err := c.spec()
	if err != nil {
		return TraceResult{}, err
	}
	rec := trace.NewRecorder(capacity)
	res, err := experiments.RunObserved(spec, rec.Attach)
	if err != nil {
		return TraceResult{}, err
	}
	if w != nil {
		if err := rec.Dump(w); err != nil {
			return TraceResult{}, err
		}
	}
	return TraceResult{
		Result:         resultFrom(res),
		AdaptiveShare:  rec.AdaptiveShare(),
		EventsRecorded: rec.Total(),
	}, nil
}

// Sweep runs the configuration at each per-host load (bytes/ns) and
// returns the latency/accepted-traffic curve.
func Sweep(c Config, loads []float64) ([]Point, error) {
	spec, err := c.spec()
	if err != nil {
		return nil, err
	}
	pts, err := experiments.LoadSweep(spec, loads)
	if err != nil {
		return nil, err
	}
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point{Offered: p.Offered, Accepted: p.Accepted, AvgLatency: p.AvgLatency}
	}
	return out, nil
}

// Throughput reads the saturation throughput (max accepted traffic)
// off a sweep.
func Throughput(points []Point) float64 {
	best := 0.0
	for _, p := range points {
		if p.Accepted > best {
			best = p.Accepted
		}
	}
	return best
}

// Loads builds a geometric per-host load grid, a convenient argument
// for Sweep.
func Loads(lo, hi float64, n int) []float64 { return experiments.DefaultLoads(lo, hi, n) }

// Comparison is the outcome of CompareRouting.
type Comparison struct {
	Deterministic float64 // saturation throughput, bytes/ns/switch
	Adaptive      float64
	Factor        float64 // Adaptive / Deterministic
}

// CompareRouting runs the paper's headline comparison on one
// configuration: saturation throughput of a stock deterministic subnet
// versus enhanced switches carrying 100% adaptive traffic, over the
// given load grid.
func CompareRouting(c Config, loads []float64) (Comparison, error) {
	det := c
	det.AdaptiveSwitches = false
	det.AdaptiveFraction = 0
	ada := c
	ada.AdaptiveSwitches = true
	ada.AdaptiveFraction = 1

	detPts, err := Sweep(det, loads)
	if err != nil {
		return Comparison{}, err
	}
	adaPts, err := Sweep(ada, loads)
	if err != nil {
		return Comparison{}, err
	}
	cmp := Comparison{
		Deterministic: Throughput(detPts),
		Adaptive:      Throughput(adaPts),
	}
	if cmp.Deterministic > 0 {
		cmp.Factor = cmp.Adaptive / cmp.Deterministic
	}
	return cmp, nil
}

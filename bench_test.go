package ibasim

// One benchmark per evaluation artifact of the paper, plus ablation
// benches for the design axes DESIGN.md calls out. Each iteration
// regenerates the artifact at a reduced scale; reported metrics are
// ns/op of the whole regeneration (the artifact values themselves are
// printed by cmd/ibbench and recorded in EXPERIMENTS.md).

import (
	"fmt"
	"io"
	"testing"

	"ibasim/internal/experiments"
	"ibasim/internal/sim"
	"ibasim/internal/topology"
	"ibasim/internal/traffic"
)

// benchScale keeps benchmark iterations to roughly a second.
func benchScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.Sizes = []int{8}
	sc.Topologies = 1
	sc.LoadPoints = 3
	sc.Warmup = 20_000
	sc.Measure = 60_000
	sc.DrainGrace = 20_000
	sc.LoadLo = 0.01
	sc.LoadHi = 0.25
	return sc
}

// BenchmarkFigure3 regenerates one Figure 3 panel (latency vs accepted
// traffic across adaptive-traffic fractions).
func BenchmarkFigure3(b *testing.B) {
	sc := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(sc, 8)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Unfused regenerates the same panel with hop fusion
// off (-fuse=false): the per-hop event oracle. The delta against
// BenchmarkFigure3 is the end-to-end win of the fused hot path;
// scripts/bench.sh records both in BENCH_fusion.{txt,json}.
func BenchmarkFigure3Unfused(b *testing.B) {
	sc := benchScale()
	sc.Unfused = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(sc, 8)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3ArbScan regenerates the panel with the scanning
// arbiter (-arb=scan): the full round-robin rescan oracle. The delta
// against BenchmarkFigure3 is the end-to-end win of the wake-list
// arbiter; scripts/bench.sh records both — plus hot-spot congested
// variants — in BENCH_arb.{txt,json}.
func BenchmarkFigure3ArbScan(b *testing.B) {
	sc := benchScale()
	sc.Arb = "scan"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(sc, 8)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Shards regenerates the Figure 3 panel on a
// 64-switch fabric under each engine: the sequential baseline, then
// the conservative-parallel engine at 2/4/8 shards. Results are
// bit-identical across sub-benchmarks (the shard differential suite
// enforces it); only wall-clock time may differ. scripts/bench.sh
// parses this sweep into BENCH_shard.{txt,json} with speedup and
// parallel-efficiency columns — on a single-core host the sharded
// engine takes its inline path and the sweep measures pure
// coordination overhead instead of speedup.
func BenchmarkFigure3Shards(b *testing.B) {
	run := func(name string, shards int, lag int64) {
		b.Run(name, func(b *testing.B) {
			sc := benchScale()
			sc.Shards = shards
			sc.Lag = sim.Time(lag)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := experiments.Figure3(sc, 64)
				if err != nil {
					b.Fatal(err)
				}
				if err := res.Write(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("seq", 0, 0)
	for _, shards := range []int{2, 4, 8} {
		run(fmt.Sprintf("shards=%d", shards), shards, 0)
	}
	// The relaxed-exactness mode at the validated operating lag (2× the
	// cross-shard channel delay): fewer barriers on the same partition.
	run("shards=4-lag=200", 4, 200)
}

// BenchmarkTable1Left regenerates Table 1's left side configuration
// (4 inter-switch links, 2 routing options, uniform traffic).
func BenchmarkTable1Left(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(sc, 4, 2, []experiments.PatternSpec{{Kind: "uniform"}}, []int{32})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteTable1(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Right regenerates Table 1's right side configuration
// (6 inter-switch links, up to 4 routing options).
func BenchmarkTable1Right(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(sc, 6, 4, []experiments.PatternSpec{{Kind: "uniform"}}, []int{32})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteTable1(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1HotSpot covers the hot-spot rows of Table 1.
func BenchmarkTable1HotSpot(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(sc, 4, 2,
			[]experiments.PatternSpec{{Kind: "hot-spot", Fraction: 0.10}}, []int{32})
		if err != nil {
			b.Fatal(err)
		}
		_ = rows
	}
}

// BenchmarkTable1BitReversal covers the bit-reversal rows of Table 1.
func BenchmarkTable1BitReversal(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(sc, 4, 2,
			[]experiments.PatternSpec{{Kind: "bit-reversal"}}, []int{32}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1LongPackets covers Table 1's 256-byte rows.
func BenchmarkTable1LongPackets(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(sc, 4, 2,
			[]experiments.PatternSpec{{Kind: "uniform"}}, []int{256}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates the routing-option census at both
// connectivities (pure analysis, no simulation).
func BenchmarkTable2(b *testing.B) {
	sc := benchScale()
	sc.Sizes = []int{8, 16}
	sc.Topologies = 3
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, links := range []int{4, 6} {
			rows, err := experiments.Table2(sc, links, 4)
			if err != nil {
				b.Fatal(err)
			}
			if err := experiments.WriteTable2(io.Discard, rows); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationSelection compares §4.3's four selection policies
// on one saturated run each.
func BenchmarkAblationSelection(b *testing.B) {
	for _, c := range []struct {
		name        string
		imm, static bool
	}{
		{"arbitration-aware", false, false},
		{"arbitration-static", false, true},
		{"immediate-aware", true, false},
		{"immediate-static", true, true},
	} {
		b.Run(c.name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Switches = 8
			cfg.WarmupNs = 20_000
			cfg.MeasureNs = 60_000
			cfg.DrainNs = 20_000
			cfg.Load = 0.15 // past saturation, where policies differ
			cfg.ImmediateSelection = c.imm
			cfg.StaticSelection = c.static
			for i := 0; i < b.N; i++ {
				res, err := Simulate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AcceptedPerSwitch, "accepted-B/ns/sw")
			}
		})
	}
}

// BenchmarkAblationSplit sweeps the escape queue reserve (§4.4 uses
// half the buffer).
func BenchmarkAblationSplit(b *testing.B) {
	for _, reserve := range []int{4, 8, 12} {
		b.Run(map[int]string{4: "quarter", 8: "half", 12: "three-quarter"}[reserve], func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Switches = 8
			cfg.WarmupNs = 20_000
			cfg.MeasureNs = 60_000
			cfg.DrainNs = 20_000
			cfg.Load = 0.15
			cfg.EscapeReserveCredits = reserve
			for i := 0; i < b.N; i++ {
				res, err := Simulate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AcceptedPerSwitch, "accepted-B/ns/sw")
			}
		})
	}
}

// BenchmarkMotivation regenerates the §1 motivation comparison
// (deterministic vs source-selected multipath vs fully adaptive).
func BenchmarkMotivation(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Motivation(sc)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.WriteMotivation(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReorderCost measures the destination reorder buffer's
// bookkeeping on a saturated adaptive run (§1 extension).
func BenchmarkReorderCost(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Switches = 8
	cfg.WarmupNs = 20_000
	cfg.MeasureNs = 60_000
	cfg.DrainNs = 20_000
	cfg.Load = 0.15
	for i := 0; i < b.N; i++ {
		res, err := Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OutOfOrderFraction, "ooo-fraction")
		b.ReportMetric(float64(res.ReorderPeakHeld), "reorder-peak")
	}
}

// BenchmarkArbHotSpot measures each arbiter on a saturated hot-spot
// run — the congested regime the wake lists target, where the scan
// re-probes a tree of blocked heads on every kick while the wake
// arbiter probes each only when its blocking condition changes.
// Results are bit-identical across sub-benchmarks (the arbiter
// differential suite enforces it); only wall-clock time may differ.
func BenchmarkArbHotSpot(b *testing.B) {
	topo := topology.MustGenerateIrregular(topology.IrregularSpec{
		NumSwitches: 16, HostsPerSwitch: 4, InterSwitch: 4, Seed: 1,
	})
	hot, err := traffic.NewHotSpot(topo.NumHosts(), 0.3, sim.NewRNG(7))
	if err != nil {
		b.Fatal(err)
	}
	for _, arb := range []string{"wake", "scan"} {
		b.Run(arb, func(b *testing.B) {
			sc := benchScale()
			sc.Arb = arb
			spec := sc.Spec(topo, 2, 32, 1, hot, 1, true)
			spec.Traffic.LoadBytesPerNsPerHost = 0.15 // past saturation
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Run(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulationEngine measures raw simulation speed: events per
// second on a saturated 16-switch subnet (the simulator's own
// performance, not a paper artifact).
func BenchmarkSimulationEngine(b *testing.B) {
	topo := topology.MustGenerateIrregular(topology.IrregularSpec{
		NumSwitches: 16, HostsPerSwitch: 4, InterSwitch: 4, Seed: 1,
	})
	sc := benchScale()
	spec := sc.Spec(topo, 2, 32, 1, traffic.Uniform{NumHosts: topo.NumHosts()}, 1, true)
	spec.Traffic.LoadBytesPerNsPerHost = 0.05
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

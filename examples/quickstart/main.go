// Quickstart: simulate a 16-switch irregular InfiniBand subnet with
// enhanced (fully adaptive) switches and print the paper's
// observables. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ibasim"
)

func main() {
	cfg := ibasim.DefaultConfig() // 16 switches, uniform 32 B, 100% adaptive
	res, err := ibasim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offered  %.5f bytes/ns/switch\n", res.OfferedPerSwitch)
	fmt.Printf("accepted %.5f bytes/ns/switch\n", res.AcceptedPerSwitch)
	fmt.Printf("latency  %.0f ns (avg over %d packets)\n", res.AvgLatencyNs, res.PacketsMeasured)

	// Raise the load toward saturation and watch latency grow.
	fmt.Println("\nload sweep:")
	points, err := ibasim.Sweep(cfg, ibasim.Loads(0.005, 0.08, 5))
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("  offered %.4f -> accepted %.4f, latency %6.0f ns\n",
			p.Offered, p.Accepted, p.AvgLatency)
	}
	fmt.Printf("saturation throughput: %.4f bytes/ns/switch\n", ibasim.Throughput(points))
}

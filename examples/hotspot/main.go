// Hot-spot traffic: a randomly chosen host receives a fixed share of
// all packets, spreading congestion that adaptive routing cannot
// dodge. The paper (Table 1) finds smaller throughput gains as the
// hot-spot share rises — this example reproduces that trend. Run with:
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"

	"ibasim"
)

func main() {
	loads := ibasim.Loads(0.005, 0.20, 6)
	fmt.Println("16 switches, 32 B packets, throughput factor (adaptive/deterministic):")
	for _, share := range []float64{0, 0.05, 0.10, 0.20} {
		cfg := ibasim.DefaultConfig()
		cfg.MeasureNs = 150_000
		if share > 0 {
			cfg.Pattern = "hot-spot"
			cfg.HotSpotFraction = share
		}
		cmp, err := ibasim.CompareRouting(cfg, loads)
		if err != nil {
			log.Fatal(err)
		}
		name := "uniform"
		if share > 0 {
			name = fmt.Sprintf("hot-spot %2.0f%%", share*100)
		}
		fmt.Printf("  %-13s det %.4f  ada %.4f  factor %.2f\n",
			name, cmp.Deterministic, cmp.Adaptive, cmp.Factor)
	}
	fmt.Println("\nExpected: the factor shrinks as more traffic funnels into the hot spot.")
}

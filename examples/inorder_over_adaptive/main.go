// In-order delivery over adaptive routing: §1 of the paper notes that
// adaptive routing sacrifices in-order delivery, and that ordered
// traffic could still use it "if packets were reordered at the
// destination host before being delivered". This example measures
// that trade as load rises: how many deliveries arrive out of order,
// and what a destination reorder buffer needs (peak occupancy, extra
// delay) to hide it. Run with:
//
//	go run ./examples/inorder_over_adaptive
package main

import (
	"fmt"
	"log"

	"ibasim"
)

func main() {
	fmt.Println("16 switches, 100% adaptive, uniform 32 B packets:")
	fmt.Printf("%-10s %-12s %-14s %-14s %-12s\n",
		"load", "accepted", "out-of-order", "reorder-peak", "added-ns")
	for _, load := range []float64{0.01, 0.05, 0.10, 0.15} {
		cfg := ibasim.DefaultConfig()
		cfg.Load = load
		res, err := ibasim.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.2f %-12.4f %-14s %-14d %-12.0f\n",
			load, res.AcceptedPerSwitch,
			fmt.Sprintf("%.2f%%", res.OutOfOrderFraction*100),
			res.ReorderPeakHeld, res.ReorderAvgDelayNs)
	}
	fmt.Println("\nBelow saturation almost everything arrives in order (minimal paths")
	fmt.Println("have equal length); near saturation escape detours reorder flows and")
	fmt.Println("the destination buffer pays for restoring sequence order.")
}

// The paper's headline experiment on one topology: compare the
// saturation throughput of a stock deterministic IBA subnet against
// enhanced switches carrying 100% adaptive traffic (Figure 3's
// endpoints; Table 1's per-topology factor). Run with:
//
//	go run ./examples/adaptive_vs_deterministic
package main

import (
	"fmt"
	"log"

	"ibasim"
)

func main() {
	for _, switches := range []int{8, 16} {
		cfg := ibasim.DefaultConfig()
		cfg.Switches = switches
		cfg.MeasureNs = 150_000

		cmp, err := ibasim.CompareRouting(cfg, ibasim.Loads(0.005, 0.25, 7))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d switches: deterministic %.4f, adaptive %.4f bytes/ns/switch -> factor %.2f\n",
			switches, cmp.Deterministic, cmp.Adaptive, cmp.Factor)
	}
	fmt.Println("\nThe factor grows with network size (paper: 1.2 at 8 switches up to")
	fmt.Println("3.3 at 64 switches with 2 routing options; 3.9 with 6 links and 4 options).")
}

// Topology explorer: generate the paper's random irregular networks
// and print the routing-option census behind Table 2 — how many
// minimal routing options each switch has per destination, and how
// connectivity changes that. Run with:
//
//	go run ./examples/topology_explorer
package main

import (
	"log"
	"os"

	"ibasim"
)

func main() {
	// Table 2 at quick scale: 8- and 16-switch networks, MR up to 4,
	// at both connectivities the paper evaluates.
	if err := ibasim.RunTable2(ibasim.Quick, 4, 4, os.Stdout); err != nil {
		log.Fatal(err)
	}
	os.Stdout.WriteString("\n")
	if err := ibasim.RunTable2(ibasim.Quick, 6, 4, os.Stdout); err != nil {
		log.Fatal(err)
	}
	os.Stdout.WriteString(`
Reading the rows: with 4 links per switch roughly half the
switch/destination pairs have a single minimal option; moving to 6
links shifts weight toward 2-4 options, which is why Table 1's
6-link configurations benefit more from adaptivity (§5.2.2).
`)
}

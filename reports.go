package ibasim

import (
	"fmt"
	"io"

	"ibasim/internal/experiments"
)

// ScaleName selects how much work the paper-reproduction harnesses do.
type ScaleName string

// Scales. Quick runs in seconds to a couple of minutes and preserves
// every qualitative comparison; Full approximates the paper's protocol
// (10 topologies per size, sizes 8-64, both packet sizes) and takes
// hours.
const (
	Quick ScaleName = "quick"
	Full  ScaleName = "full"
)

func scaleFor(name ScaleName) (experiments.Scale, error) {
	switch name {
	case Quick, "":
		return experiments.QuickScale(), nil
	case Full:
		return experiments.FullScale(), nil
	default:
		return experiments.Scale{}, fmt.Errorf("ibasim: unknown scale %q", name)
	}
}

// RunFigure3 regenerates one panel of the paper's Figure 3 (average
// packet latency vs accepted traffic for 0-100% adaptive traffic) for
// the given network size and writes the series to w.
func RunFigure3(scale ScaleName, switches int, w io.Writer) error {
	sc, err := scaleFor(scale)
	if err != nil {
		return err
	}
	res, err := experiments.Figure3(sc, switches)
	if err != nil {
		return err
	}
	return res.Write(w)
}

// RunTable1 regenerates the paper's Table 1 (min/max/avg throughput
// increase of 100% adaptive traffic over deterministic routing) for
// the given connectivity and routing-option count, writing rows to w.
// Patterns and packet sizes follow the scale (quick: uniform 32 B;
// full: the paper's five patterns and both packet sizes).
func RunTable1(scale ScaleName, links, mr int, w io.Writer) error {
	sc, err := scaleFor(scale)
	if err != nil {
		return err
	}
	patterns := []experiments.PatternSpec{{Kind: "uniform"}}
	if scale == Full {
		patterns = experiments.Table1Patterns
	}
	rows, err := experiments.Table1(sc, links, mr, patterns, sc.PacketSizes)
	if err != nil {
		return err
	}
	return experiments.WriteTable1(w, rows)
}

// RunTable2 regenerates the paper's Table 2 (percentage of
// switch/destination pairs with k routing options) for the given
// connectivity, MR = 2..maxMR, writing rows to w.
func RunTable2(scale ScaleName, links, maxMR int, w io.Writer) error {
	sc, err := scaleFor(scale)
	if err != nil {
		return err
	}
	rows, err := experiments.Table2(sc, links, maxMR)
	if err != nil {
		return err
	}
	return experiments.WriteTable2(w, rows)
}

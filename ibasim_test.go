package ibasim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// tiny returns a fast test configuration.
func tiny() Config {
	cfg := DefaultConfig()
	cfg.Switches = 8
	cfg.WarmupNs = 20_000
	cfg.MeasureNs = 60_000
	cfg.DrainNs = 20_000
	cfg.Load = 0.01
	return cfg
}

func TestSimulateBasics(t *testing.T) {
	res, err := Simulate(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsMeasured == 0 || res.AcceptedPerSwitch <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.AvgLatencyNs < 400 {
		t.Fatalf("latency %v below physical floor", res.AvgLatencyNs)
	}
}

func TestSimulateReproducible(t *testing.T) {
	a, err := Simulate(tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config diverged: %+v vs %+v", a, b)
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	bad := tiny()
	bad.Switches = 1
	if _, err := Simulate(bad); err == nil {
		t.Fatal("1-switch topology accepted")
	}
	bad = tiny()
	bad.Pattern = "nonsense"
	if _, err := Simulate(bad); err == nil {
		t.Fatal("unknown pattern accepted")
	}
	bad = tiny()
	bad.RoutingOptions = 300 // exceeds LMC ceiling
	if _, err := Simulate(bad); err == nil {
		t.Fatal("MR 300 accepted")
	}
}

func TestSweepAndThroughput(t *testing.T) {
	pts, err := Sweep(tiny(), []float64{0.005, 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].Offered <= pts[0].Offered {
		t.Fatal("offered not increasing")
	}
	if Throughput(pts) <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestLoadsGrid(t *testing.T) {
	l := Loads(0.01, 0.04, 3)
	if len(l) != 3 || l[0] != 0.01 {
		t.Fatalf("Loads = %v", l)
	}
	if l[1] < 0.019 || l[1] > 0.021 {
		t.Fatalf("geometric midpoint %v, want ~0.02", l[1])
	}
}

func TestCompareRoutingFavorsAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := tiny()
	cfg.MeasureNs = 100_000
	cmp, err := CompareRouting(cfg, Loads(0.01, 0.30, 4))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Deterministic <= 0 || cmp.Adaptive <= 0 {
		t.Fatalf("zero throughputs: %+v", cmp)
	}
	if cmp.Factor < 0.95 {
		t.Fatalf("adaptive factor %.2f < deterministic baseline", cmp.Factor)
	}
}

func TestSelectionAblationRuns(t *testing.T) {
	for _, c := range []struct{ imm, static bool }{
		{false, false}, {false, true}, {true, false}, {true, true},
	} {
		cfg := tiny()
		cfg.ImmediateSelection = c.imm
		cfg.StaticSelection = c.static
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if res.PacketsMeasured == 0 {
			t.Fatalf("%+v: no packets", c)
		}
	}
}

func TestEscapeReserveOverride(t *testing.T) {
	cfg := tiny()
	cfg.EscapeReserveCredits = 4 // MTU's worth, minimum legal reserve
	if _, err := Simulate(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.EscapeReserveCredits = 1000 // exceeds the buffer
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("oversized escape reserve accepted")
	}
}

func TestSimulateTraced(t *testing.T) {
	var buf bytes.Buffer
	res, err := SimulateTraced(tiny(), 256, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsMeasured == 0 {
		t.Fatal("no packets measured")
	}
	if res.EventsRecorded == 0 {
		t.Fatal("tracer recorded nothing")
	}
	if res.AdaptiveShare <= 0 || res.AdaptiveShare > 1 {
		t.Fatalf("AdaptiveShare = %v with 100%% adaptive traffic", res.AdaptiveShare)
	}
	for _, want := range []string{"created", "hop", "delivered"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("trace dump missing %q", want)
		}
	}
}

func TestSimulateTracedNilWriter(t *testing.T) {
	if _, err := SimulateTraced(tiny(), 16, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSourceMultipathConfig(t *testing.T) {
	cfg := tiny()
	cfg.AdaptiveSwitches = false
	cfg.AdaptiveFraction = 0
	cfg.SourceMultipath = 2
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsMeasured == 0 {
		t.Fatal("multipath run produced nothing")
	}
	// Enhanced switches + source multipath is contradictory.
	cfg.AdaptiveSwitches = true
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("multipath with enhanced switches accepted")
	}
}

func TestResultObservables(t *testing.T) {
	res, err := Simulate(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.P99LatencyNs < res.AvgLatencyNs {
		t.Fatalf("p99 %v below avg %v", res.P99LatencyNs, res.AvgLatencyNs)
	}
	if res.OutOfOrderFraction < 0 || res.OutOfOrderFraction > 1 {
		t.Fatalf("OutOfOrderFraction = %v", res.OutOfOrderFraction)
	}
}

func TestRunTable2Writers(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable2(Quick, 4, 3, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatalf("missing header:\n%s", buf.String())
	}
}

func TestScaleValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable2("bogus", 4, 3, &buf); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

// Command ibsim runs one InfiniBand subnet simulation and prints the
// paper's observables: offered and accepted traffic (bytes/ns/switch)
// and average packet latency (ns).
//
// Examples:
//
//	ibsim -switches 16 -load 0.02
//	ibsim -switches 64 -links 6 -mr 4 -adaptive-frac 1 -pattern hot-spot -hotspot 0.10
//	ibsim -plain -adaptive-frac 0        # stock deterministic subnet
//
// Fault-injection campaigns (see the faults package for the grammar):
//
//	ibsim -faults 'flap@60000:0-1:20000; autoreconfig:10000'
//	ibsim -faults 'rand:4:15000@50000-200000; autoreconfig:10000' -fault-seed 7
//	ibsim -faults @campaign.json
package main

import (
	"flag"
	"fmt"
	"os"

	"ibasim"
	"ibasim/internal/prof"
)

func main() {
	cfg := ibasim.DefaultConfig()
	flag.StringVar(&cfg.Topology, "topo", "irregular", "topology family: irregular, fattree:K,N or torus:AxB[xC] (structured families bring their own routing engine)")
	flag.IntVar(&cfg.Switches, "switches", cfg.Switches, "number of switches (irregular family)")
	flag.IntVar(&cfg.HostsPerSwitch, "hosts", cfg.HostsPerSwitch, "hosts per switch")
	flag.IntVar(&cfg.LinksPerSwitch, "links", cfg.LinksPerSwitch, "inter-switch links per switch (4 or 6 in the paper)")
	flag.Uint64Var(&cfg.TopologySeed, "topo-seed", cfg.TopologySeed, "topology generation seed")
	flag.IntVar(&cfg.RoutingOptions, "mr", cfg.RoutingOptions, "routing options per destination (1 escape + MR-1 adaptive)")
	plain := flag.Bool("plain", false, "use stock deterministic switches (baseline)")
	flag.StringVar(&cfg.Pattern, "pattern", cfg.Pattern, "traffic pattern: uniform, bit-reversal, hot-spot")
	flag.Float64Var(&cfg.HotSpotFraction, "hotspot", 0.10, "hot-spot traffic share (with -pattern hot-spot)")
	flag.IntVar(&cfg.PacketSize, "size", cfg.PacketSize, "packet size in bytes")
	flag.Float64Var(&cfg.AdaptiveFraction, "adaptive-frac", cfg.AdaptiveFraction, "fraction of packets requesting adaptive routing")
	flag.Float64Var(&cfg.Load, "load", cfg.Load, "offered load per host, bytes/ns")
	flag.Int64Var(&cfg.WarmupNs, "warmup", cfg.WarmupNs, "warm-up time, ns")
	flag.Int64Var(&cfg.MeasureNs, "measure", cfg.MeasureNs, "measurement window, ns")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "traffic/selection seed")
	flag.StringVar(&cfg.Scheduler, "sched", "calendar", "event scheduler: calendar (O(1) wheel) or heap (binary-heap reference); results are bit-identical")
	flag.StringVar(&cfg.Engine, "engine", "seq", "execution engine: seq (single event loop) or shard (conservative-parallel; bit-identical results)")
	flag.IntVar(&cfg.Shards, "shards", 0, "shard count for -engine shard (default 2; clamped to the switch count)")
	flag.StringVar(&cfg.Partition, "partition", "", "shard partitioner: bfs (locality, default) or roundrobin")
	flag.Int64Var(&cfg.LagNs, "lag", 0, "relaxed-exactness window slack in simulated ns for -engine shard (0 = bit-exact; positive trades bounded metric error for fewer barriers)")
	flag.StringVar(&cfg.Faults, "faults", "", "fault campaign: spec string (e.g. 'flap@60000:0-1:20000; autoreconfig:10000') or @file.json")
	flag.Uint64Var(&cfg.FaultSeed, "fault-seed", 0, "seed for the campaign's randomized elements (rand: flaps)")
	flag.BoolVar(&cfg.Check, "check", false, "enable heavy invariant audits (whole-fabric credit and escape-CDG scans; results are bit-identical)")
	flag.BoolVar(&cfg.Fuse, "fuse", cfg.Fuse, "hop-fusion fast path; -fuse=false runs the per-hop event engine (results are bit-identical)")
	flag.StringVar(&cfg.Arb, "arb", "wake", "crossbar arbiter: wake (event-driven wait lists) or scan (round-robin rescan oracle); results are bit-identical")
	traceN := flag.Int("packet-trace", 0, "record and print the last N packet lifecycle events")
	sweep := flag.Bool("sweep", false, "sweep offered load and print the full curve")
	loadLo := flag.Float64("load-lo", 0.002, "sweep: lowest per-host load")
	loadHi := flag.Float64("load-hi", 0.20, "sweep: highest per-host load")
	loadN := flag.Int("load-n", 10, "sweep: number of load points")
	pcfg := prof.Flags()
	flag.Parse()

	// Reject unsupported flag combinations before any work starts; the
	// FeatureSet table is the single source of truth for what composes.
	features := ibasim.FeatureSet{Engine: cfg.Engine, Shards: cfg.Shards, LagNs: cfg.LagNs, PacketTrace: *traceN > 0, Check: cfg.Check, Arb: cfg.Arb, Topo: cfg.Topology}
	if err := features.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ibsim:", err)
		os.Exit(1)
	}

	stopProf, err := pcfg.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibsim:", err)
		os.Exit(1)
	}
	defer stopProf()

	cfg.AdaptiveSwitches = !*plain

	if *sweep {
		pts, err := ibasim.Sweep(cfg, ibasim.Loads(*loadLo, *loadHi, *loadN))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ibsim:", err)
			os.Exit(1)
		}
		fmt.Printf("# offered\taccepted\tavg-latency-ns\n")
		for _, p := range pts {
			fmt.Printf("%.5f\t%.5f\t%.0f\n", p.Offered, p.Accepted, p.AvgLatency)
		}
		fmt.Printf("# saturation throughput: %.5f bytes/ns/switch\n", ibasim.Throughput(pts))
		return
	}

	var res ibasim.Result
	if *traceN > 0 {
		traced, err := ibasim.SimulateTraced(cfg, *traceN, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ibsim:", err)
			os.Exit(1)
		}
		res = traced.Result
		fmt.Printf("adaptive hops:   %.1f%% of %d forwarding decisions\n",
			traced.AdaptiveShare*100, traced.EventsRecorded)
	} else {
		r, err := ibasim.Simulate(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ibsim:", err)
			os.Exit(1)
		}
		res = r
	}
	mode := "enhanced (adaptive)"
	if *plain {
		mode = "stock (deterministic)"
	}
	if cfg.Topology != "" && cfg.Topology != "irregular" {
		fmt.Printf("topology:        %s\n", cfg.Topology)
	} else {
		fmt.Printf("switches:        %d (%d links/switch, %d hosts/switch)\n",
			cfg.Switches, cfg.LinksPerSwitch, cfg.HostsPerSwitch)
	}
	fmt.Printf("switch mode:     %s, MR=%d\n", mode, cfg.RoutingOptions)
	fmt.Printf("workload:        %s, %d B packets, %.0f%% adaptive\n",
		cfg.Pattern, cfg.PacketSize, cfg.AdaptiveFraction*100)
	fmt.Printf("offered traffic: %.5f bytes/ns/switch\n", res.OfferedPerSwitch)
	fmt.Printf("accepted:        %.5f bytes/ns/switch\n", res.AcceptedPerSwitch)
	fmt.Printf("avg latency:     %.0f ns over %d packets\n", res.AvgLatencyNs, res.PacketsMeasured)
	if cfg.Check {
		fmt.Printf("audit:           %d hop checks, %d heavy scans, %d violations\n",
			res.Audit.HopChecks, res.Audit.HeavyTicks, res.Audit.Violations)
	}
	if cfg.Faults != "" {
		d := res.Degraded
		fmt.Printf("faults:          %d injected, %d repairs, %d reconfigs\n",
			d.FaultsInjected, d.Repairs, d.Reconfigs)
		fmt.Printf("drops:           %d (unroutable %d, dead-port %d, timeout %d), %d retries, %d lost\n",
			d.Dropped(), d.DroppedUnroutable, d.DroppedOnDeadPort, d.DroppedTimeout, d.Retries, d.Lost)
		if d.RecoveryLatencyNs >= 0 {
			fmt.Printf("recovery:        %d ns (first fault to first post-reconfig delivery)\n", d.RecoveryLatencyNs)
		} else {
			fmt.Printf("recovery:        not observed\n")
		}
		fmt.Printf("watchdog:        %d samples, %d violations\n", d.WatchdogSamples, d.WatchdogViolations)
		if d.WatchdogViolations > 0 {
			fmt.Fprintf(os.Stderr, "ibsim: %s\n", d.FirstViolation)
			os.Exit(1)
		}
	}
}

// Command ibbench regenerates the paper's evaluation artifacts.
//
//	ibbench -exp fig3   -switches 16          # Figure 3 panel
//	ibbench -exp table1 -links 4 -mr 2        # Table 1 rows
//	ibbench -exp table1 -links 6 -mr 4 -scale full
//	ibbench -exp table2 -links 4 -mr 4        # Table 2 census
//	ibbench -exp all                          # everything at quick scale
//	ibbench -exp faults -faults 'rand:4:15000@50000-150000; autoreconfig:10000'
//
// The -scale presets (quick, full) can be overridden field by field
// with -sizes, -topos, -loads, -measure, -warmup, -load-lo, -load-hi,
// -sizes-bytes and -patterns. Output is tab-separated text with #
// comment headers, directly gnuplot-able; EXPERIMENTS.md records
// reference outputs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ibasim"
	"ibasim/internal/campaign"
	"ibasim/internal/experiments"
	"ibasim/internal/faults"
	"ibasim/internal/prof"
	"ibasim/internal/sim"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parsePatterns(s string) ([]experiments.PatternSpec, error) {
	var out []experiments.PatternSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ps, err := experiments.ParsePattern(part)
		if err != nil {
			return nil, err
		}
		out = append(out, ps)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// patString renders a pattern back into the ParsePattern grammar
// (PatternSpec.String is a display form and does not round-trip).
func patString(ps experiments.PatternSpec) string {
	if ps.Kind == "hot-spot" {
		return fmt.Sprintf("hot-spot:%g", ps.Fraction)
	}
	return ps.Kind
}

func main() {
	exp := flag.String("exp", "all", "experiment: fig3, table1, table2, motivation, faults, campaign, all")
	topoFam := flag.String("topo", "irregular", "topology family for -exp fig3: irregular, fattree:K,N or torus:AxB[xC] (structured families use their native escape routing)")
	scaleName := flag.String("scale", "quick", "preset: quick or full")
	switches := flag.Int("switches", 16, "fig3: network size")
	links := flag.Int("links", 4, "inter-switch links per switch")
	mr := flag.Int("mr", 2, "routing options per destination")
	sizes := flag.String("sizes", "", "override: network sizes, e.g. 8,16,32,64")
	topos := flag.Int("topos", 0, "override: topologies per configuration")
	loadPoints := flag.Int("loads", 0, "override: load points per sweep")
	warmup := flag.Int64("warmup", 0, "override: warm-up ns")
	measure := flag.Int64("measure", 0, "override: measurement window ns")
	loadLo := flag.Float64("load-lo", 0, "override: lowest per-host load (bytes/ns)")
	loadHi := flag.Float64("load-hi", 0, "override: highest per-host load (bytes/ns)")
	pktSizes := flag.String("bytes", "", "override: packet sizes, e.g. 32,256")
	patterns := flag.String("patterns", "", "table1 patterns: uniform,bit-reversal,hot-spot:0.1,...")
	sched := flag.String("sched", "calendar", "event scheduler: calendar (O(1) wheel) or heap (binary-heap reference); results are bit-identical")
	engine := flag.String("engine", "seq", "execution engine: seq (single event loop) or shard (conservative-parallel; bit-identical results)")
	shards := flag.Int("shards", 0, "shard count for -engine shard (default 2; clamped to the switch count)")
	partition := flag.String("partition", "", "shard partitioner: bfs (locality, default) or roundrobin")
	lag := flag.Int64("lag", 0, "relaxed-exactness window slack in simulated ns for -engine shard (0 = bit-exact)")
	verbose := flag.Bool("v", false, "with -engine shard: append the per-shard imbalance report (events, stalls, cross-shard mail)")
	check := flag.Bool("check", false, "enable heavy invariant audits on every run (results are bit-identical)")
	fuse := flag.Bool("fuse", true, "hop-fusion fast path; -fuse=false runs the per-hop event engine (results are bit-identical)")
	arb := flag.String("arb", "wake", "crossbar arbiter: wake (event-driven wait lists) or scan (round-robin rescan oracle); results are bit-identical")
	faultSpec := flag.String("faults", "rand:4:15000@50000-150000; autoreconfig:10000", "faults: campaign spec string or @file.json")
	faultSeed := flag.Uint64("fault-seed", 1, "faults: seed for the campaign's randomized elements")
	emitCampaign := flag.String("emit-campaign", "", "write an ibcamp campaign spec built from the current flags to FILE and exit")
	campaignFile := flag.String("campaign", "", "-exp campaign: spec file to run in-process (sequential differential oracle for ibcamp)")
	fractions := flag.String("fractions", "1", "campaign emit: adaptive fractions, e.g. 0,0.5,1")
	pcfg := prof.Flags()
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ibbench:", err)
		os.Exit(1)
	}

	// Reject unsupported flag combinations before any work starts; the
	// FeatureSet table is the single source of truth for what composes.
	if err := (ibasim.FeatureSet{Engine: *engine, Shards: *shards, LagNs: *lag, Check: *check, Arb: *arb, Topo: *topoFam}).Validate(); err != nil {
		fail(err)
	}
	fam, err := experiments.ParseFamily(*topoFam)
	if err != nil {
		fail(err)
	}
	if !fam.Irregular() && *exp != "fig3" {
		fail(fmt.Errorf("-topo %s only supports -exp fig3 (the family sweep); table1/table2/faults run on the irregular corpus", fam))
	}

	stopProf, err := pcfg.Start()
	if err != nil {
		fail(err)
	}
	defer stopProf()

	var sc experiments.Scale
	switch *scaleName {
	case "quick":
		sc = experiments.QuickScale()
	case "full":
		sc = experiments.FullScale()
	default:
		fail(fmt.Errorf("unknown scale %q", *scaleName))
	}
	if *sizes != "" {
		v, err := parseInts(*sizes)
		if err != nil {
			fail(err)
		}
		sc.Sizes = v
	}
	if *topos > 0 {
		sc.Topologies = *topos
	}
	if *loadPoints > 0 {
		sc.LoadPoints = *loadPoints
	}
	if *warmup > 0 {
		sc.Warmup = sim.Time(*warmup)
	}
	if *measure > 0 {
		sc.Measure = sim.Time(*measure)
		sc.DrainGrace = sim.Time(*measure / 5)
	}
	if *loadLo > 0 {
		sc.LoadLo = *loadLo
	}
	if *loadHi > 0 {
		sc.LoadHi = *loadHi
	}
	if *pktSizes != "" {
		v, err := parseInts(*pktSizes)
		if err != nil {
			fail(err)
		}
		sc.PacketSizes = v
	}
	kind, err := sim.ParseScheduler(*sched)
	if err != nil {
		fail(err)
	}
	sc.EngineOpts = []sim.EngineOption{sim.WithScheduler(kind)}
	if *engine == "shard" {
		sc.Shards = *shards
		if sc.Shards == 0 {
			sc.Shards = 2
		}
		sc.Partition = *partition
		sc.Lag = sim.Time(*lag)
	}
	sc.Check = *check
	sc.Unfused = !*fuse
	sc.Arb = *arb
	pats := []experiments.PatternSpec{{Kind: "uniform"}}
	if *scaleName == "full" {
		pats = experiments.Table1Patterns
	}
	if *patterns != "" {
		v, err := parsePatterns(*patterns)
		if err != nil {
			fail(err)
		}
		pats = v
	}

	if *emitCampaign != "" {
		pstrs := make([]string, len(pats))
		for i, p := range pats {
			pstrs[i] = patString(p)
		}
		fracs, err := parseFloats(*fractions)
		if err != nil {
			fail(err)
		}
		spec := campaign.Spec{
			Schema:            campaign.SpecSchemaVersion,
			Name:              "ibbench-" + *scaleName,
			Sizes:             sc.Sizes,
			HostsPerSwitch:    sc.HostsPerSw,
			Links:             *links,
			MR:                *mr,
			PacketSizes:       sc.PacketSizes,
			Patterns:          pstrs,
			AdaptiveFractions: fracs,
			Seeds:             sc.Topologies,
			FirstSeed:         sc.FirstSeed,
			LoadLo:            sc.LoadLo,
			LoadHi:            sc.LoadHi,
			LoadPoints:        sc.LoadPoints,
			WarmupNs:          int64(sc.Warmup),
			MeasureNs:         int64(sc.Measure),
			DrainGraceNs:      int64(sc.DrainGrace),
			LagNs:             *lag,
			Exec: experiments.ExecSpec{
				Engine: *engine, Shards: sc.Shards, Partition: sc.Partition,
				Sched: *sched, Check: *check, Unfused: !*fuse, Arb: *arb,
			},
		}
		if *exp == "faults" {
			if strings.HasPrefix(*faultSpec, "@") {
				fail(fmt.Errorf("campaign jobs need a self-contained fault spec, not the file reference %q", *faultSpec))
			}
			spec.Faults = *faultSpec
			spec.FaultSeed = *faultSeed
		}
		data, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			fail(err)
		}
		data = append(data, '\n')
		// Round-trip through the strict parser so an emitted spec is
		// guaranteed to load.
		if _, err := campaign.ParseSpec(data); err != nil {
			fail(err)
		}
		if err := os.WriteFile(*emitCampaign, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "ibbench: wrote campaign spec %q to %s\n", spec.Name, *emitCampaign)
		return
	}

	// runCampaign is the in-process differential oracle for ibcamp: the
	// same spec expansion and aggregation, executed sequentially with no
	// store or subprocesses. Its stdout must match `ibcamp run` byte for
	// byte.
	runCampaign := func(path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		spec, err := campaign.ParseSpec(data)
		if err != nil {
			fail(err)
		}
		plan, err := spec.Expand()
		if err != nil {
			fail(err)
		}
		results := make(map[string][]byte, len(plan.Jobs))
		for _, job := range plan.Jobs {
			res, err := job.Spec.Execute()
			if err != nil {
				fail(err)
			}
			body, err := campaign.EncodeArtifact(job.Hash, res)
			if err != nil {
				fail(err)
			}
			results[job.Hash] = body
		}
		table, err := campaign.Aggregate(plan, func(h string) ([]byte, error) {
			b, ok := results[h]
			if !ok {
				return nil, campaign.ErrNotFound
			}
			return b, nil
		}, false)
		if err != nil {
			fail(err)
		}
		if err := table.Write(os.Stdout); err != nil {
			fail(err)
		}
	}

	runFig3 := func(size int) {
		var res *experiments.Figure3Result
		var err error
		if fam.Irregular() {
			res, err = experiments.Figure3(sc, size)
		} else {
			res, err = experiments.Figure3Family(sc, fam)
		}
		if err != nil {
			fail(err)
		}
		if err := res.Write(os.Stdout); err != nil {
			fail(err)
		}
	}
	runTable1 := func(links, mr int) {
		rows, err := experiments.Table1(sc, links, mr, pats, sc.PacketSizes)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteTable1(os.Stdout, rows); err != nil {
			fail(err)
		}
	}
	runTable2 := func(links, maxMR int) {
		rows, err := experiments.Table2(sc, links, maxMR)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteTable2(os.Stdout, rows); err != nil {
			fail(err)
		}
	}

	runFaults := func(links, mr int) {
		camp, err := faults.Load(*faultSpec)
		if err != nil {
			fail(err)
		}
		rows, err := experiments.FaultCampaign(sc, links, mr, camp, *faultSeed)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteFaultTable(os.Stdout, rows); err != nil {
			fail(err)
		}
	}

	runMotivation := func() {
		rows, err := experiments.Motivation(sc)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteMotivation(os.Stdout, rows); err != nil {
			fail(err)
		}
	}

	switch *exp {
	case "fig3":
		runFig3(*switches)
	case "motivation":
		runMotivation()
	case "table1":
		runTable1(*links, *mr)
	case "table2":
		runTable2(*links, *mr)
	case "faults":
		runFaults(*links, *mr)
	case "campaign":
		if *campaignFile == "" {
			fail(fmt.Errorf("-exp campaign needs -campaign FILE"))
		}
		runCampaign(*campaignFile)
	case "all":
		fmt.Println("== Figure 3 ==")
		runFig3(*switches)
		fmt.Println("\n== Table 1 (4 links, MR 2) ==")
		runTable1(4, 2)
		fmt.Println("\n== Table 2 (4 links) ==")
		runTable2(4, 4)
		fmt.Println("\n== Table 2 (6 links) ==")
		runTable2(6, 4)
	default:
		fail(fmt.Errorf("unknown experiment %q", *exp))
	}

	if *verbose && sc.Shards > 1 {
		fmt.Printf("\n== shard imbalance (%d switches, %d shards, %s partition) ==\n",
			*switches, sc.Shards, partitionName(*partition))
		stats, err := experiments.ShardImbalanceReport(sc, *switches)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteShardStats(os.Stdout, stats); err != nil {
			fail(err)
		}
	}
}

func partitionName(p string) string {
	if p == "" {
		return "bfs"
	}
	return p
}

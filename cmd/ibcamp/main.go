// Command ibcamp runs simulation campaigns crash-tolerantly.
//
//	ibcamp run -spec sweep.json -store ./results            # run (or resume) a campaign
//	ibcamp run -spec sweep.json -store ./results -degrade   # aggregate partials, annotate holes
//	ibcamp expand -spec sweep.json                          # list the job DAG without running
//	ibcamp verify -store ./results                          # audit every stored artifact
//	ibcamp worker                                           # internal: one job, spec on stdin
//
// The coordinator re-execs this binary as `ibcamp worker` per job
// attempt, so a worker crash (panic, OOM kill, SIGKILL) costs one
// attempt of one job, never the campaign. Results live in a
// content-addressed store keyed by each job's canonical input hash;
// interrupting the coordinator (SIGINT/SIGTERM) and rerunning the same
// command resumes, skipping completed jobs and reproducing the
// aggregate table byte-identically. Only the table goes to stdout —
// progress and diagnostics go to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ibasim/internal/campaign"
)

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: ibcamp <run|expand|verify|worker> [flags]")
	fmt.Fprintln(w, "  run    -spec FILE -store DIR [-workers N] [-timeout D] [-retries N]")
	fmt.Fprintln(w, "         [-backoff D] [-backoff-max D] [-hung-after D] [-degrade] [-q]")
	fmt.Fprintln(w, "  expand -spec FILE")
	fmt.Fprintln(w, "  verify -store DIR")
	fmt.Fprintln(w, "  worker (internal; job JSON on stdin, IBCAMP_STORE set)")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ibcamp:", err)
	os.Exit(1)
}

func loadPlan(specPath string) (*campaign.Plan, error) {
	data, err := os.ReadFile(specPath)
	if err != nil {
		return nil, err
	}
	spec, err := campaign.ParseSpec(data)
	if err != nil {
		return nil, err
	}
	return spec.Expand()
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("ibcamp run", flag.ExitOnError)
	specPath := fs.String("spec", "", "campaign spec JSON file")
	storeDir := fs.String("store", "", "result store directory (created if missing)")
	workers := fs.Int("workers", 2, "concurrent worker processes")
	timeout := fs.Duration("timeout", 5*time.Minute, "per-attempt wall-clock limit")
	retries := fs.Int("retries", 2, "retries per job after the first attempt")
	backoff := fs.Duration("backoff", 250*time.Millisecond, "base retry backoff (doubles per attempt, jittered)")
	backoffMax := fs.Duration("backoff-max", 10*time.Second, "retry backoff ceiling")
	hungAfter := fs.Duration("hung-after", 10*time.Second, "kill a worker silent this long")
	degrade := fs.Bool("degrade", false, "aggregate partial results, annotating missing seeds per cell")
	quiet := fs.Bool("q", false, "suppress progress output")
	fs.Parse(args)
	if *specPath == "" || *storeDir == "" {
		fail(errors.New("run needs -spec and -store"))
	}
	plan, err := loadPlan(*specPath)
	if err != nil {
		fail(err)
	}
	store, err := campaign.Open(*storeDir)
	if err != nil {
		fail(err)
	}
	var log io.Writer = os.Stderr
	if *quiet {
		log = io.Discard
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := campaign.Run(ctx, plan, store, campaign.Options{
		Workers: *workers, Timeout: *timeout, Retries: *retries,
		BackoffBase: *backoff, BackoffMax: *backoffMax, HungAfter: *hungAfter,
		Degrade: *degrade, Log: log,
	})
	if err != nil {
		if rep != nil && ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "ibcamp:", err)
			fmt.Fprintln(os.Stderr, "ibcamp: completed jobs are stored; rerun the same command to resume")
			os.Exit(3)
		}
		fail(err)
	}
	if err := rep.Table.Write(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "ibcamp: done: %d job(s) — %d run, %d cached, %d retried attempt(s)\n",
		len(rep.Outcomes), rep.Done, rep.Cached, rep.Retried)
}

func cmdExpand(args []string) {
	fs := flag.NewFlagSet("ibcamp expand", flag.ExitOnError)
	specPath := fs.String("spec", "", "campaign spec JSON file")
	fs.Parse(args)
	if *specPath == "" {
		fail(errors.New("expand needs -spec"))
	}
	plan, err := loadPlan(*specPath)
	if err != nil {
		fail(err)
	}
	fmt.Printf("# campaign %s: %d job(s), %d group(s)\n", plan.Spec.Name, len(plan.Jobs), len(plan.Groups))
	fmt.Println("# hash\tsize\tpkt\tpattern\tfrac\tload\tseed")
	for _, j := range plan.Jobs {
		s := j.Spec
		fmt.Printf("%s\t%d\t%d\t%s\t%.2f\t%.4f\t%d\n",
			j.Hash, s.Switches, s.PacketSize, s.Pattern.String(), s.AdaptiveFraction, s.Load, s.Seed)
	}
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("ibcamp verify", flag.ExitOnError)
	storeDir := fs.String("store", "", "result store directory")
	fs.Parse(args)
	if *storeDir == "" {
		fail(errors.New("verify needs -store"))
	}
	store, err := campaign.Open(*storeDir)
	if err != nil {
		fail(err)
	}
	entries, torn, err := store.Verify()
	if err != nil {
		fail(err)
	}
	fmt.Printf("store %s: %d verified entr%s, %d torn temp file(s)\n",
		*storeDir, entries, plural(entries, "y", "ies"), len(torn))
	for _, t := range torn {
		fmt.Println("torn:", t)
	}
	if len(torn) > 0 {
		os.Exit(1)
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "expand":
		cmdExpand(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "worker":
		os.Exit(campaign.WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "ibcamp: unknown command %q\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
}

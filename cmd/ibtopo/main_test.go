package main

import (
	"bytes"
	"strings"
	"testing"
)

// reportGolden is the full report for the paper's standard 16-switch,
// 4-link geometry at seed 1. The topology generator and up*/down*
// routing are deterministic, so this output is stable; a drift means
// the generator, the routing, or the census changed behavior.
const reportGolden = `topology:          16 switches, 4 links/switch, 4 hosts/switch (seed 1)
links:             32
diameter:          3
avg distance:      1.967
up*/down* root:    switch 0
avg path length:   2.092 table vs 1.967 shortest (inflation 6.4%)
escape CDG:        acyclic (deadlock-free)
routing options (cap 4), share of switch/destination pairs:
  1 option(s):  64.17%
  2 option(s):  22.50%
  3 option(s):  11.67%
  4 option(s):   1.67%
`

func TestReportGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-switches", "16", "-links", "4", "-seed", "1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Fatalf("unexpected stderr: %s", stderr.String())
	}
	if got := stdout.String(); got != reportGolden {
		t.Fatalf("report drifted:\n--- got ---\n%s--- want ---\n%s", got, reportGolden)
	}
}

func TestDotOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-switches", "8", "-seed", "1", "-dot"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.HasPrefix(out, "graph subnet {\n") || !strings.HasSuffix(out, "}\n") {
		t.Fatalf("not a DOT graph:\n%s", out)
	}
	// 8 switches × 4 links / 2 endpoints = 16 edges.
	if edges := strings.Count(out, " -- "); edges != 16 {
		t.Fatalf("%d edges in DOT output, want 16", edges)
	}
}

// fatTreeReportGolden pins the structured-family report: the D-mod-K
// fat-tree engine is minimal (0.0% inflation, by construction) and the
// option census reflects the tree's up-path multiplicity.
const fatTreeReportGolden = `topology:          fattree:2,3, 12 switches, 8 hosts
links:             16
diameter:          4
avg distance:      2.303
routing engine:    fattree escape (minimal)
avg path length:   2.364 table vs 2.364 shortest (inflation 0.0%)
escape CDG:        acyclic (deadlock-free)
routing options (cap 4), share of switch/destination pairs:
  1 option(s):  54.55%
  2 option(s):  45.45%
  3 option(s):   0.00%
  4 option(s):   0.00%
`

// torusReportGolden pins the torus report: dimension-order escape
// refuses wrap links, so the table is longer than the wrapped shortest
// path (the 33.3% inflation is the price of an acyclic escape CDG
// without extra virtual channels).
const torusReportGolden = `topology:          torus:3x3, 9 switches, 18 hosts
links:             18
diameter:          2
avg distance:      1.500
routing engine:    torus escape
avg path length:   2.000 table vs 1.500 shortest (inflation 33.3%)
escape CDG:        acyclic (deadlock-free)
routing options (cap 4), share of switch/destination pairs:
  1 option(s):  50.00%
  2 option(s):  50.00%
  3 option(s):   0.00%
  4 option(s):   0.00%
`

func TestFamilyReportGolden(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		golden string
	}{
		{"fattree", []string{"-topo", "fattree:2,3"}, fatTreeReportGolden},
		{"torus", []string{"-topo", "torus:3x3", "-hosts", "2"}, torusReportGolden},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr.String())
			}
			if got := stdout.String(); got != tc.golden {
				t.Fatalf("report drifted:\n--- got ---\n%s--- want ---\n%s", got, tc.golden)
			}
		})
	}
}

// TestFamilyDotOutput: structured families label DOT nodes with their
// family-aware names (torus coordinates, fat-tree level.digits) so the
// rendered graph is legible; irregular output keeps the bare s<N> form
// (pinned by TestDotOutput above).
func TestFamilyDotOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-topo", "torus:2x3", "-dot"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.HasPrefix(out, "graph subnet {\n") || !strings.HasSuffix(out, "}\n") {
		t.Fatalf("not a DOT graph:\n%s", out)
	}
	// 2x3 torus: 3 + 2*3 = 9 edges (the size-2 dimension has single links).
	if edges := strings.Count(out, " -- "); edges != 9 {
		t.Fatalf("%d edges in DOT output, want 9", edges)
	}
	if !strings.Contains(out, `"(0,0)" -- "(1,0)";`) {
		t.Fatalf("DOT output lacks coordinate-labelled edges:\n%s", out)
	}

	stdout.Reset()
	if code := run([]string{"-topo", "fattree:2,2", "-dot"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"L0.0" -- "L1.0";`) {
		t.Fatalf("fat-tree DOT output lacks level-labelled edges:\n%s", stdout.String())
	}
}

// TestBadInputsFailLoudly: every invalid invocation must exit
// non-zero with a diagnostic on stderr and nothing on stdout.
func TestBadInputsFailLoudly(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		msg  string // required substring of stderr
	}{
		{"unknown-flag", []string{"-nonsense"}, 2, "flag provided but not defined"},
		{"malformed-value", []string{"-switches", "many"}, 2, "invalid value"},
		{"zero-switches", []string{"-switches", "0"}, 1, "ibtopo: topology: invalid spec"},
		{"degree-exceeds-switches", []string{"-switches", "4", "-links", "6"}, 1, "ibtopo: topology: degree 6 impossible"},
		{"odd-stub-parity", []string{"-switches", "9", "-links", "5"}, 1, "ibtopo: topology:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.msg) {
				t.Fatalf("stderr %q does not contain %q", stderr.String(), tc.msg)
			}
			if stdout.Len() != 0 {
				t.Fatalf("failed run wrote to stdout: %s", stdout.String())
			}
		})
	}
}

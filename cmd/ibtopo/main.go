// Command ibtopo generates the paper's random irregular topologies and
// reports their structural and routing properties: degree, diameter,
// average distance, up*/down* path inflation, and the routing-option
// census behind Table 2.
//
//	ibtopo -switches 16 -links 4 -seed 1
//	ibtopo -switches 64 -links 6 -seed 3 -dot   # Graphviz output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ibasim/internal/routing"
	"ibasim/internal/topology"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its environment injected so tests can drive the
// command end to end: flag errors return 2 (the flag package's own
// convention), generation/verification failures return 1 after an
// "ibtopo: ..." line on stderr, success prints the report to stdout
// and returns 0.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ibtopo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	switches := fs.Int("switches", 16, "number of switches")
	hosts := fs.Int("hosts", 4, "hosts per switch")
	links := fs.Int("links", 4, "inter-switch links per switch")
	seed := fs.Uint64("seed", 1, "generation seed")
	mr := fs.Int("mr", 4, "cap for the routing-option census")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of the report")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	topo, err := topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches:    *switches,
		HostsPerSwitch: *hosts,
		InterSwitch:    *links,
		Seed:           *seed,
	})
	if err != nil {
		fmt.Fprintln(stderr, "ibtopo:", err)
		return 1
	}

	if *dot {
		fmt.Fprintln(stdout, "graph subnet {")
		for _, l := range topo.Links {
			fmt.Fprintf(stdout, "  s%d -- s%d;\n", l.A, l.B)
		}
		fmt.Fprintln(stdout, "}")
		return 0
	}

	ud, err := routing.NewUpDown(topo)
	if err != nil {
		fmt.Fprintln(stderr, "ibtopo:", err)
		return 1
	}
	det := ud.Tables()
	if err := routing.VerifyDeadlockFree(det); err != nil {
		fmt.Fprintln(stderr, "ibtopo: deadlock check FAILED:", err)
		return 1
	}
	fa := routing.NewFA(det)

	fmt.Fprintf(stdout, "topology:          %d switches, %d links/switch, %d hosts/switch (seed %d)\n",
		*switches, *links, *hosts, *seed)
	fmt.Fprintf(stdout, "links:             %d\n", len(topo.Links))
	fmt.Fprintf(stdout, "diameter:          %d\n", topo.Diameter())
	fmt.Fprintf(stdout, "avg distance:      %.3f\n", topo.AvgDistance())
	fmt.Fprintf(stdout, "up*/down* root:    switch %d\n", ud.Root)
	table, shortest := det.AvgPathLength()
	fmt.Fprintf(stdout, "avg path length:   %.3f table vs %.3f shortest (inflation %.1f%%)\n",
		table, shortest, 100*(table/shortest-1))
	fmt.Fprintf(stdout, "escape CDG:        acyclic (deadlock-free)\n")

	hist := fa.OptionsHistogram(*mr)
	total := 0
	for _, c := range hist {
		total += c
	}
	fmt.Fprintf(stdout, "routing options (cap %d), share of switch/destination pairs:\n", *mr)
	for k := 1; k < len(hist); k++ {
		fmt.Fprintf(stdout, "  %d option(s): %6.2f%%\n", k, 100*float64(hist[k])/float64(total))
	}
	return 0
}

// Command ibtopo generates the paper's random irregular topologies and
// reports their structural and routing properties: degree, diameter,
// average distance, up*/down* path inflation, and the routing-option
// census behind Table 2.
//
//	ibtopo -switches 16 -links 4 -seed 1
//	ibtopo -switches 64 -links 6 -seed 3 -dot   # Graphviz output
package main

import (
	"flag"
	"fmt"
	"os"

	"ibasim/internal/routing"
	"ibasim/internal/topology"
)

func main() {
	switches := flag.Int("switches", 16, "number of switches")
	hosts := flag.Int("hosts", 4, "hosts per switch")
	links := flag.Int("links", 4, "inter-switch links per switch")
	seed := flag.Uint64("seed", 1, "generation seed")
	mr := flag.Int("mr", 4, "cap for the routing-option census")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of the report")
	flag.Parse()

	topo, err := topology.GenerateIrregular(topology.IrregularSpec{
		NumSwitches:    *switches,
		HostsPerSwitch: *hosts,
		InterSwitch:    *links,
		Seed:           *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibtopo:", err)
		os.Exit(1)
	}

	if *dot {
		fmt.Println("graph subnet {")
		for _, l := range topo.Links {
			fmt.Printf("  s%d -- s%d;\n", l.A, l.B)
		}
		fmt.Println("}")
		return
	}

	ud, err := routing.NewUpDown(topo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ibtopo:", err)
		os.Exit(1)
	}
	det := ud.Tables()
	if err := routing.VerifyDeadlockFree(det); err != nil {
		fmt.Fprintln(os.Stderr, "ibtopo: deadlock check FAILED:", err)
		os.Exit(1)
	}
	fa := routing.NewFA(det)

	fmt.Printf("topology:          %d switches, %d links/switch, %d hosts/switch (seed %d)\n",
		*switches, *links, *hosts, *seed)
	fmt.Printf("links:             %d\n", len(topo.Links))
	fmt.Printf("diameter:          %d\n", topo.Diameter())
	fmt.Printf("avg distance:      %.3f\n", topo.AvgDistance())
	fmt.Printf("up*/down* root:    switch %d\n", ud.Root)
	table, shortest := det.AvgPathLength()
	fmt.Printf("avg path length:   %.3f table vs %.3f shortest (inflation %.1f%%)\n",
		table, shortest, 100*(table/shortest-1))
	fmt.Printf("escape CDG:        acyclic (deadlock-free)\n")

	hist := fa.OptionsHistogram(*mr)
	total := 0
	for _, c := range hist {
		total += c
	}
	fmt.Printf("routing options (cap %d), share of switch/destination pairs:\n", *mr)
	for k := 1; k < len(hist); k++ {
		fmt.Printf("  %d option(s): %6.2f%%\n", k, 100*float64(hist[k])/float64(total))
	}
}

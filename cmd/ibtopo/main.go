// Command ibtopo generates the simulator's topologies — the paper's
// random irregular networks plus the structured families (k-ary n-tree
// fat-trees, 2D/3D tori) — and reports their structural and routing
// properties: degree, diameter, average distance, escape-path
// inflation, and the routing-option census behind Table 2.
//
//	ibtopo -switches 16 -links 4 -seed 1
//	ibtopo -switches 64 -links 6 -seed 3 -dot   # Graphviz output
//	ibtopo -topo fattree:2,3                    # D-mod-K fat-tree report
//	ibtopo -topo torus:4x4 -dot                 # coordinate-labelled DOT
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ibasim/internal/experiments"
	"ibasim/internal/routing"
	"ibasim/internal/topology"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its environment injected so tests can drive the
// command end to end: flag errors return 2 (the flag package's own
// convention), generation/verification failures return 1 after an
// "ibtopo: ..." line on stderr, success prints the report to stdout
// and returns 0.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ibtopo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	topoFam := fs.String("topo", "irregular", "topology family: irregular, fattree:K,N or torus:AxB[xC]")
	switches := fs.Int("switches", 16, "number of switches (irregular family)")
	hosts := fs.Int("hosts", 4, "hosts per switch (irregular and torus families)")
	links := fs.Int("links", 4, "inter-switch links per switch (irregular family)")
	seed := fs.Uint64("seed", 1, "generation seed (irregular family)")
	mr := fs.Int("mr", 4, "cap for the routing-option census")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of the report")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fam, err := experiments.ParseFamily(*topoFam)
	if err != nil {
		fmt.Fprintln(stderr, "ibtopo:", err)
		return 1
	}
	topo, err := fam.Topology(topology.IrregularSpec{
		NumSwitches:    *switches,
		HostsPerSwitch: *hosts,
		InterSwitch:    *links,
		Seed:           *seed,
	})
	if err != nil {
		fmt.Fprintln(stderr, "ibtopo:", err)
		return 1
	}

	if *dot {
		fmt.Fprintln(stdout, "graph subnet {")
		for _, l := range topo.Links {
			if fam.Irregular() {
				fmt.Fprintf(stdout, "  s%d -- s%d;\n", l.A, l.B)
			} else {
				// Family-aware labels: tree level/position, torus
				// coordinates.
				fmt.Fprintf(stdout, "  %q -- %q;\n", topo.NodeName(l.A), topo.NodeName(l.B))
			}
		}
		fmt.Fprintln(stdout, "}")
		return 0
	}

	build := fam.Routing()
	if build == nil {
		build = routing.UpDownBuilder(-1)
	}
	eng, err := build(topo)
	if err != nil {
		fmt.Fprintln(stderr, "ibtopo:", err)
		return 1
	}
	det := eng.Deterministic()
	if err := eng.Verify(); err != nil {
		fmt.Fprintln(stderr, "ibtopo: deadlock check FAILED:", err)
		return 1
	}
	fa := eng.Adaptive()

	if fam.Irregular() {
		fmt.Fprintf(stdout, "topology:          %d switches, %d links/switch, %d hosts/switch (seed %d)\n",
			*switches, *links, *hosts, *seed)
	} else {
		fmt.Fprintf(stdout, "topology:          %s, %d switches, %d hosts\n",
			fam, topo.NumSwitches, topo.NumHosts())
	}
	fmt.Fprintf(stdout, "links:             %d\n", len(topo.Links))
	fmt.Fprintf(stdout, "diameter:          %d\n", topo.Diameter())
	fmt.Fprintf(stdout, "avg distance:      %.3f\n", topo.AvgDistance())
	if det.UD != nil {
		fmt.Fprintf(stdout, "up*/down* root:    switch %d\n", det.UD.Root)
	} else {
		minimal := ""
		if eng.MinimalEscape() {
			minimal = " (minimal)"
		}
		fmt.Fprintf(stdout, "routing engine:    %s escape%s\n", eng.Name(), minimal)
	}
	table, shortest := det.AvgPathLength()
	fmt.Fprintf(stdout, "avg path length:   %.3f table vs %.3f shortest (inflation %.1f%%)\n",
		table, shortest, 100*(table/shortest-1))
	fmt.Fprintf(stdout, "escape CDG:        acyclic (deadlock-free)\n")

	hist := fa.OptionsHistogram(*mr)
	total := 0
	for _, c := range hist {
		total += c
	}
	fmt.Fprintf(stdout, "routing options (cap %d), share of switch/destination pairs:\n", *mr)
	for k := 1; k < len(hist); k++ {
		fmt.Fprintf(stdout, "  %d option(s): %6.2f%%\n", k, 100*float64(hist[k])/float64(total))
	}
	return 0
}

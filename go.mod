module ibasim

go 1.22

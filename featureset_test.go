package ibasim

import (
	"io"
	"strings"
	"testing"
)

// TestFeatureSetTable walks the compatibility table: every supported
// combination validates, every conflict fails with its canonical
// message, and -check composes with everything (the auditor only
// reads state, so no feature can exclude it).
func TestFeatureSetTable(t *testing.T) {
	cases := []struct {
		name string
		f    FeatureSet
		err  string // "" = valid; otherwise required substring
	}{
		{"zero", FeatureSet{}, ""},
		{"seq", FeatureSet{Engine: "seq"}, ""},
		{"shard-default", FeatureSet{Engine: "shard"}, ""},
		{"shard-counted", FeatureSet{Engine: "shard", Shards: 4}, ""},
		{"trace-seq", FeatureSet{Engine: "seq", PacketTrace: true}, ""},
		{"trace-default-engine", FeatureSet{PacketTrace: true}, ""},

		{"lag-shard", FeatureSet{Engine: "shard", Shards: 4, LagNs: 500}, ""},
		{"lag-zero-seq", FeatureSet{Engine: "seq"}, ""},

		{"check-seq", FeatureSet{Engine: "seq", Check: true}, ""},
		{"check-shard", FeatureSet{Engine: "shard", Shards: 3, Check: true}, ""},
		{"check-trace", FeatureSet{PacketTrace: true, Check: true}, ""},

		{"unknown-engine", FeatureSet{Engine: "warp"}, `unknown engine "warp"`},
		{"unknown-engine-wins", FeatureSet{Engine: "warp", Shards: 4}, `unknown engine "warp"`},
		{"shards-on-seq", FeatureSet{Engine: "seq", Shards: 2}, `shards=2 requires engine "shard"`},
		{"shards-on-default", FeatureSet{Shards: 3}, `shards=3 requires engine "shard"`},
		{"lag-on-seq", FeatureSet{Engine: "seq", LagNs: 500}, `lag=500ns requires engine "shard"`},
		{"lag-on-default", FeatureSet{LagNs: 200}, `lag=200ns requires engine "shard"`},
		{"lag-negative", FeatureSet{Engine: "shard", Shards: 2, LagNs: -1}, "negative lag -1ns"},
		{"lag-negative-wins-engine", FeatureSet{Engine: "seq", LagNs: -5}, "negative lag -5ns"},
		{"trace-on-shard", FeatureSet{Engine: "shard", PacketTrace: true}, "packet tracing requires the sequential engine"},
		{"trace-on-shard-with-check", FeatureSet{Engine: "shard", PacketTrace: true, Check: true}, "packet tracing requires the sequential engine"},

		{"campaign-seq", FeatureSet{Engine: "seq", Campaign: true}, ""},
		{"campaign-shard", FeatureSet{Engine: "shard", Shards: 4, Campaign: true}, ""},
		{"campaign-check", FeatureSet{Campaign: true, Check: true}, ""},
		{"trace-in-campaign", FeatureSet{Campaign: true, PacketTrace: true}, "packet tracing is unsupported inside campaign workers"},
		{"trace-in-campaign-shard-wins", FeatureSet{Engine: "shard", Campaign: true, PacketTrace: true}, "packet tracing requires the sequential engine"},

		// The arbiter composes with everything — engines, shards, lag,
		// tracing, campaigns, Check — so its only conflict is an unknown
		// name, and earlier rows win over it.
		{"arb-wake", FeatureSet{Arb: "wake"}, ""},
		{"arb-scan", FeatureSet{Arb: "scan"}, ""},
		{"arb-scan-shard", FeatureSet{Engine: "shard", Shards: 4, Arb: "scan"}, ""},
		{"arb-wake-lag-shard", FeatureSet{Engine: "shard", Shards: 2, LagNs: 500, Arb: "wake"}, ""},
		{"arb-wake-trace", FeatureSet{PacketTrace: true, Arb: "wake"}, ""},
		{"arb-scan-trace", FeatureSet{PacketTrace: true, Arb: "scan"}, ""},
		{"arb-campaign-check", FeatureSet{Campaign: true, Check: true, Arb: "wake"}, ""},
		{"arb-unknown", FeatureSet{Arb: "ticket"}, `unknown arbiter "ticket"`},
		{"arb-unknown-with-check", FeatureSet{Arb: "ticket", Check: true}, `unknown arbiter "ticket"`},
		{"arb-unknown-loses-to-engine", FeatureSet{Engine: "warp", Arb: "ticket"}, `unknown engine "warp"`},
		{"arb-unknown-loses-to-trace", FeatureSet{Engine: "shard", PacketTrace: true, Arb: "ticket"}, "packet tracing requires the sequential engine"},

		// Topology families compose with every engine and with Check;
		// conflicts are a malformed grammar or the irregular-only
		// source-multipath baseline on a structured family.
		{"topo-empty", FeatureSet{Topo: ""}, ""},
		{"topo-irregular", FeatureSet{Topo: "irregular"}, ""},
		{"topo-fattree", FeatureSet{Topo: "fattree:2,3"}, ""},
		{"topo-torus", FeatureSet{Topo: "torus:4x4"}, ""},
		{"topo-torus-3d-shard", FeatureSet{Engine: "shard", Shards: 4, Topo: "torus:2x3x4"}, ""},
		{"topo-fattree-check", FeatureSet{Topo: "fattree:2,2", Check: true}, ""},
		{"topo-unknown", FeatureSet{Topo: "hypercube:4"}, "unknown topology family"},
		{"topo-bad-shape", FeatureSet{Topo: "fattree:2"}, "bad fat-tree shape"},
		{"topo-degenerate", FeatureSet{Topo: "torus:1x4"}, "dimension 1 < 2"},
		{"topo-unknown-loses-to-engine", FeatureSet{Engine: "warp", Topo: "hypercube:4"}, `unknown engine "warp"`},
		{"multipath-irregular", FeatureSet{Topo: "irregular", SourceMultipath: 2}, ""},
		{"multipath-default-topo", FeatureSet{SourceMultipath: 3}, ""},
		{"multipath-fattree", FeatureSet{Topo: "fattree:2,3", SourceMultipath: 2}, "source multipath requires the irregular family"},
		{"multipath-torus", FeatureSet{Topo: "torus:4x4", SourceMultipath: 2}, "source multipath requires the irregular family"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f.Validate()
			if tc.err == "" {
				if err != nil {
					t.Fatalf("Validate(%+v) = %v, want nil", tc.f, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Fatalf("Validate(%+v) = %v, want error containing %q", tc.f, err, tc.err)
			}
		})
	}
}

// TestCheckHasNoConflictRow pins the design decision that Check is
// universally compatible: flipping Check on any feature combination
// must never change the verdict.
func TestCheckHasNoConflictRow(t *testing.T) {
	engines := []string{"", "seq", "shard", "warp"}
	for _, eng := range engines {
		for _, shards := range []int{0, 1, 2} {
			for _, lag := range []int64{-1, 0, 100} {
				for _, tr := range []bool{false, true} {
					for _, arb := range []string{"", "wake", "scan", "ticket"} {
						base := FeatureSet{Engine: eng, Shards: shards, LagNs: lag, PacketTrace: tr, Arb: arb}
						withCheck := base
						withCheck.Check = true
						errBase, errCheck := base.Validate(), withCheck.Validate()
						if (errBase == nil) != (errCheck == nil) {
							t.Fatalf("Check changed verdict for %+v: %v vs %v", base, errBase, errCheck)
						}
					}
				}
			}
		}
	}
}

// TestFeatureValidationUpFront: the library entry points reject bad
// combinations before building topologies or engines.
func TestFeatureValidationUpFront(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine = "shard"
	cfg.Shards = 2
	if _, err := SimulateTraced(cfg, 8, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "packet tracing requires the sequential engine") {
		t.Fatalf("SimulateTraced on shard engine: %v", err)
	}

	cfg = DefaultConfig()
	cfg.Shards = 4 // engine left "" (seq)
	if _, err := Simulate(cfg); err == nil || !strings.Contains(err.Error(), `requires engine "shard"`) {
		t.Fatalf("Simulate with orphan shards: %v", err)
	}

	cfg = DefaultConfig()
	cfg.Engine = "warp"
	if _, err := Simulate(cfg); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("Simulate with unknown engine: %v", err)
	}
}
